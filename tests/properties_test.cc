// Property-style tests: invariants swept over seeds, methods, datasets and
// models via parameterized gtest suites.

#include <tuple>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "editing/editor.h"
#include "kg/knowledge_graph.h"
#include "kg/wal.h"
#include "model/language_model.h"
#include "model/model_config.h"
#include "util/rng.h"

namespace oneedit {
namespace {

// ---------------------------------------------------------------------------
// Property: for every method and every edit slot, apply followed by rollback
// restores the model weights bit-exactly (the foundation of OneEdit's
// conflict resolution).
// ---------------------------------------------------------------------------

class RollbackExactnessTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(RollbackExactnessTest, ApplyThenRollbackIsIdentity) {
  const auto& [method_name, case_index] = GetParam();
  DatasetOptions options;
  options.num_cases = 8;
  Dataset dataset = BuildAmericanPoliticians(options);
  LanguageModel model(Gpt2XlSimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);
  const WeightSnapshot pristine = model.SnapshotWeights();

  auto method = MakeEditingMethod(method_name);
  ASSERT_TRUE(method.ok());
  const NamedTriple edit = dataset.cases[case_index].edit;
  auto delta = (*method)->ApplyEdit(&model, edit);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE((*method)->Rollback(&model, *delta).ok());

  const WeightSnapshot now = model.SnapshotWeights();
  for (size_t l = 0; l < now.size(); ++l) {
    const auto& a = now[l]->data();
    const auto& b = pristine[l]->data();
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a[i], b[i], 1e-9) << method_name << " layer " << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndCases, RollbackExactnessTest,
    ::testing::Combine(::testing::Values("FT", "ROME", "MEMIT", "GRACE",
                                         "MEND", "SERAC"),
                       ::testing::Values(0, 3, 7)));

// ---------------------------------------------------------------------------
// Property: KG rollback to any earlier version reproduces exactly the triple
// set observed at that version, for random operation sequences.
// ---------------------------------------------------------------------------

class KgRollbackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KgRollbackPropertyTest, RollbackReachesEveryCheckpoint) {
  KnowledgeGraph kg;
  const RelationId r = kg.schema().Define("r");
  std::vector<EntityId> entities;
  for (int i = 0; i < 10; ++i) {
    entities.push_back(kg.InternEntity("e" + std::to_string(i)));
  }
  Rng rng(GetParam());

  std::vector<std::pair<uint64_t, std::vector<Triple>>> checkpoints;
  for (int step = 0; step < 60; ++step) {
    if (step % 10 == 0) {
      checkpoints.emplace_back(kg.version(), kg.store().AllTriples());
    }
    const EntityId s = entities[rng.NextBelow(entities.size())];
    const EntityId o = entities[rng.NextBelow(entities.size())];
    if (rng.NextBool(0.7)) {
      (void)kg.Upsert(s, r, o);
    } else {
      const auto objects = kg.Objects(s, r);
      if (!objects.empty()) (void)kg.Remove(Triple{s, r, objects[0]});
    }
  }
  // Unwind newest-first; every checkpoint must be reproduced exactly.
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    ASSERT_TRUE(kg.RollbackTo(it->first).ok());
    EXPECT_EQ(kg.store().AllTriples(), it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KgRollbackPropertyTest,
                         ::testing::Values(1u, 17u, 123u, 999u));

// ---------------------------------------------------------------------------
// Property: WAL replay reconstructs the exact triple set for random mutation
// histories, including rollbacks (journaled as compensation records).
// ---------------------------------------------------------------------------

class WalReplayPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalReplayPropertyTest, ReplayEqualsLiveGraph) {
  const std::string path =
      testing::TempDir() + "/oneedit_wal_prop_" +
      std::to_string(GetParam()) + ".log";
  std::remove(path.c_str());

  std::vector<Triple> expected;
  {
    KnowledgeGraph kg;
    ASSERT_TRUE(kg.AttachWal(path, true).ok());
    const RelationId r = kg.schema().Define("r");
    std::vector<EntityId> entities;
    for (int i = 0; i < 8; ++i) {
      entities.push_back(kg.InternEntity("w" + std::to_string(i)));
    }
    Rng rng(GetParam());
    for (int step = 0; step < 40; ++step) {
      const EntityId s = entities[rng.NextBelow(entities.size())];
      const EntityId o = entities[rng.NextBelow(entities.size())];
      const double dice = rng.NextDouble();
      if (dice < 0.6) {
        (void)kg.Upsert(s, r, o);
      } else if (dice < 0.8) {
        const auto objects = kg.Objects(s, r);
        if (!objects.empty()) (void)kg.Remove(Triple{s, r, objects[0]});
      } else if (kg.version() > 2) {
        (void)kg.RollbackTo(kg.version() - 2);
      }
    }
    // Record names (ids may differ in the recovered graph).
    expected = kg.store().AllTriples();
    ASSERT_TRUE(kg.SyncWal().ok());
    KnowledgeGraph recovered;
    ASSERT_TRUE(recovered.AttachWal(path, true).ok());
    ASSERT_EQ(recovered.size(), kg.size());
    for (const Triple& t : expected) {
      const auto resolved = recovered.Resolve(kg.ToNamed(t));
      ASSERT_TRUE(resolved.ok());
      EXPECT_TRUE(recovered.Contains(*resolved))
          << kg.ToString(t) << " missing after replay";
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalReplayPropertyTest,
                         ::testing::Values(3u, 31u, 314u));

// ---------------------------------------------------------------------------
// Property: pretrained recall — for every dataset and model preset, the
// model answers (almost) every pretrained functional fact correctly at the
// exact key.
// ---------------------------------------------------------------------------

class PretrainRecallTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PretrainRecallTest, PretrainedFactsDecodeCorrectly) {
  const auto& [dataset_index, model_index] = GetParam();
  DatasetOptions options;
  options.num_cases = 6;
  Dataset dataset = dataset_index == 0 ? BuildAmericanPoliticians(options)
                                       : BuildAcademicFigures(options);
  const ModelConfig config =
      model_index == 0 ? Gpt2XlSimConfig()
                       : (model_index == 1 ? GptJSimConfig()
                                           : Qwen2SimConfig());
  LanguageModel model(config, dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);

  size_t correct = 0;
  size_t total = 0;
  for (const NamedTriple& fact : dataset.pretrain_facts) {
    if (total >= 150) break;  // sample
    const Decode decode = model.Query(fact.subject, fact.relation);
    correct += decode.entity == fact.object;
    ++total;
  }
  // Recall scales with capacity: the GPT-2-XL-sized preset (d = 64) holds
  // measurably less of the world than the 6-7B presets — the same
  // qualitative behaviour as the real models.
  const double threshold = config.dim >= 96 ? 0.97 : 0.80;
  EXPECT_GE(static_cast<double>(correct) / total, threshold)
      << correct << "/" << total << " at dim " << config.dim;
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsByModels, PretrainRecallTest,
    ::testing::Combine(::testing::Values(0, 1), ::testing::Values(0, 1, 2)));

// ---------------------------------------------------------------------------
// Property: model determinism — identical config + vocab + facts produce
// bit-identical weights and identical decodes across model presets.
// ---------------------------------------------------------------------------

class ModelDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ModelDeterminismTest, RebuildIsBitIdentical) {
  DatasetOptions options;
  options.num_cases = 4;
  Dataset dataset = BuildAmericanPoliticians(options);
  const ModelConfig config = GetParam() == 0   ? Gpt2XlSimConfig()
                             : GetParam() == 1 ? GptJSimConfig()
                                               : Qwen2SimConfig();
  LanguageModel a(config, dataset.vocab);
  a.Pretrain(dataset.pretrain_facts);
  LanguageModel b(config, dataset.vocab);
  b.Pretrain(dataset.pretrain_facts);
  for (size_t l = 0; l < a.memory().num_layers(); ++l) {
    ASSERT_EQ(a.memory().layer(l), b.memory().layer(l)) << "layer " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, ModelDeterminismTest,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// Property: ApplyWeightDelta sign symmetry — applying any recorded delta
// with +1 then -1 is an exact identity, for every method's delta layout.
// ---------------------------------------------------------------------------

class DeltaSymmetryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeltaSymmetryTest, PlusMinusIsIdentity) {
  DatasetOptions options;
  options.num_cases = 4;
  Dataset dataset = BuildAmericanPoliticians(options);
  LanguageModel model(Gpt2XlSimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);

  auto method = MakeEditingMethod(GetParam());
  auto delta = (*method)->ApplyEdit(&model, dataset.cases[0].edit);
  ASSERT_TRUE(delta.ok());
  const WeightSnapshot reference = model.SnapshotWeights();
  ApplyWeightDelta(&model, *delta, 1.0);
  ApplyWeightDelta(&model, *delta, -1.0);
  const WeightSnapshot now = model.SnapshotWeights();
  for (size_t l = 0; l < now.size(); ++l) {
    const auto& a = now[l]->data();
    const auto& b = reference[l]->data();
    for (size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], b[i], 1e-9);
  }
  (*method)->Reset(&model);
}

INSTANTIATE_TEST_SUITE_P(Methods, DeltaSymmetryTest,
                         ::testing::Values("FT", "ROME", "MEMIT", "GRACE",
                                           "MEND", "SERAC"));

}  // namespace
}  // namespace oneedit
