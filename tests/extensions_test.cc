// Tests for the extension surface: SERAC / MEND methods, rule fixpoint
// chaining and the rule parser, the pattern-query engine, and model
// checkpointing.

#include <cstdio>
#include <fstream>
#include <iterator>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "editing/cache_io.h"
#include "editing/mend.h"
#include "editing/serac.h"
#include "kg/pattern_query.h"
#include "kg/rules.h"
#include "model/checkpoint.h"
#include "model/language_model.h"
#include "model/model_config.h"

namespace oneedit {
namespace {

// ------------------------------------------------------------------ SERAC ----

ModelConfig SmallConfig() {
  ModelConfig config;
  config.dim = 64;
  config.num_layers = 4;
  config.seed = 123;
  config.junk_fraction = 0.3;
  return config;
}

Vocab SmallVocab() {
  Vocab vocab;
  vocab.entities = {"USA", "France", "Trump", "Biden", "Macron", "Paris"};
  vocab.alias_of["the United States"] = "USA";
  vocab.relations = {{"president", "president_of"}, {"capital", ""}};
  return vocab;
}

std::vector<NamedTriple> SmallFacts() {
  return {{"USA", "president", "Trump"},
          {"France", "president", "Macron"},
          {"France", "capital", "Paris"}};
}

TEST(SeracTest, ScopeMemoryGatesOnCosine) {
  SeracScopeMemory memory(0.95);
  const Vec key = Normalized(Vec{1.0, 0.2, 0.0, 0.1});
  memory.AddRecord({key, "Biden"});
  std::string answer;
  EXPECT_TRUE(memory.TryAnswer(key, &answer));
  EXPECT_EQ(answer, "Biden");
  // Slightly perturbed key: still in scope.
  EXPECT_TRUE(memory.TryAnswer(Normalized(Vec{1.0, 0.25, 0.02, 0.1}),
                               &answer));
  // Nearly orthogonal: out of scope.
  EXPECT_FALSE(memory.TryAnswer(Normalized(Vec{0.0, 0.0, 1.0, 0.0}),
                                &answer));
}

TEST(SeracTest, PerfectReliabilityAndLocalityZeroPortability) {
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  SeracMethod serac;
  ASSERT_TRUE(serac.ApplyEdit(&model, {"USA", "president", "Biden"}).ok());
  // In-scope: exact and mildly-noised queries answer the edit.
  EXPECT_EQ(model.Query("USA", "president").entity, "Biden");
  // Out-of-scope: unrelated slots untouched (weights never written).
  EXPECT_EQ(model.Query("France", "president").entity, "Macron");
  EXPECT_EQ(model.Query("France", "capital").entity, "Paris");
  // Alias key is out of scope (the memory-based portability failure).
  QueryOptions options;
  options.probe_seed = 5;
  const Decode alias = model.Query("the United States", "president", options);
  EXPECT_FALSE(alias.intercepted);
  serac.Reset(&model);
  EXPECT_EQ(model.num_adaptors(), 0u);
}

TEST(SeracTest, RollbackRemovesScopeRecord) {
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  SeracMethod serac;
  auto delta = serac.ApplyEdit(&model, {"USA", "president", "Biden"});
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(serac.memory().size(), 1u);
  ASSERT_TRUE(serac.Rollback(&model, *delta).ok());
  EXPECT_EQ(serac.memory().size(), 0u);
  EXPECT_EQ(model.Query("USA", "president").entity, "Trump");
  ASSERT_TRUE(serac.Reapply(&model, *delta).ok());
  EXPECT_EQ(model.Query("USA", "president").entity, "Biden");
  serac.Reset(&model);
}

// ------------------------------------------------------------------- MEND ----

TEST(MendTest, EditsAllLayersInOneShot) {
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  const WeightSnapshot before = model.SnapshotWeights();
  MendMethod mend;
  ASSERT_TRUE(mend.ApplyEdit(&model, {"USA", "president", "Biden"}).ok());
  const WeightSnapshot after = model.SnapshotWeights();
  for (size_t l = 0; l < before.size(); ++l) {
    EXPECT_FALSE(before[l] == after[l]) << "layer " << l << " untouched";
  }
  EXPECT_EQ(model.Query("USA", "president").entity, "Biden");
}

TEST(MendTest, LocalityBetweenFtAndRome) {
  // MEND's collateral is far below FT's and above ROME's.
  MendConfig mend_config;
  EXPECT_LT(mend_config.collateral_noise, 6.0);
  EXPECT_GT(mend_config.collateral_noise, 0.16);
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  MendMethod mend(mend_config);
  ASSERT_TRUE(mend.ApplyEdit(&model, {"USA", "president", "Biden"}).ok());
  // Unrelated facts survive a single MEND edit.
  EXPECT_EQ(model.Query("France", "capital").entity, "Paris");
}

// ---------------------------------------------------------- rule fixpoint ----

TEST(RuleFixpointTest, ChainsDerivedTriplesThroughRules) {
  // r0(x,y) ∧ r1(y,z) => r2(x,z); r2(x,y) ∧ r1(y,z) => r3(x,z).
  // Seeding (a, r0, b) with (b, r1, c), (c, r1, d) derives
  // (a, r2, c) and then (a, r3, d) in the second round.
  TripleStore store;
  store.Add({1, 1, 3});  // (b=1, r1, c=3)
  store.Add({3, 1, 4});  // (c, r1, d=4)
  RuleEngine rules;
  rules.AddRule(HornRule{"step1", 0, 1, 2});
  rules.AddRule(HornRule{"step2", 2, 1, 3});

  const Triple seed{0, 0, 1};  // (a=0, r0, b=1)
  const auto derived = rules.DeriveToFixpoint(store, seed);
  ASSERT_EQ(derived.size(), 2u);
  EXPECT_EQ(derived[0], (Triple{0, 2, 3}));  // round 1
  EXPECT_EQ(derived[1], (Triple{0, 3, 4}));  // round 2, chained
}

TEST(RuleFixpointTest, DepthAndLimitBound) {
  TripleStore store;
  store.Add({1, 1, 3});
  store.Add({3, 1, 4});
  RuleEngine rules;
  rules.AddRule(HornRule{"step1", 0, 1, 2});
  rules.AddRule(HornRule{"step2", 2, 1, 3});
  const Triple seed{0, 0, 1};
  EXPECT_EQ(rules.DeriveToFixpoint(store, seed, /*max_depth=*/1).size(), 1u);
  EXPECT_EQ(rules.DeriveToFixpoint(store, seed, 4, /*limit=*/1).size(), 1u);
  EXPECT_TRUE(rules.DeriveToFixpoint(store, seed, 0).empty());
}

TEST(RuleFixpointTest, ExcludesKnownTriples) {
  TripleStore store;
  store.Add({1, 1, 3});
  store.Add({0, 2, 3});  // the derivable triple already holds
  RuleEngine rules;
  rules.AddRule(HornRule{"step1", 0, 1, 2});
  EXPECT_TRUE(rules.DeriveToFixpoint(store, {0, 0, 1}).empty());
}

// ------------------------------------------------------------- rule parser ----

TEST(RuleParserTest, ParsesWellFormedRule) {
  RelationSchema schema;
  const auto rule = ParseHornRule(
      "first_lady(x, z) :- governor(x, y), spouse(y, z)", &schema);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->name, "first_lady");
  EXPECT_EQ(schema.Name(rule->body1), "governor");
  EXPECT_EQ(schema.Name(rule->body2), "spouse");
  EXPECT_EQ(schema.Name(rule->head), "first_lady");
  EXPECT_EQ(schema.size(), 3u);
}

TEST(RuleParserTest, ReusesExistingRelations) {
  RelationSchema schema;
  const RelationId governor = schema.Define("governor");
  const auto rule = ParseHornRule(
      "first_lady(x,z) :- governor(x,y), spouse(y,z)", &schema);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body1, governor);
}

TEST(RuleParserTest, RejectsMalformedRules) {
  RelationSchema schema;
  EXPECT_FALSE(ParseHornRule("no turnstile here", &schema).ok());
  EXPECT_FALSE(ParseHornRule("h(x,z) :- b1(x,y)", &schema).ok());
  EXPECT_FALSE(
      ParseHornRule("h(z,x) :- b1(x,y), b2(y,z)", &schema).ok());  // shape
  EXPECT_FALSE(ParseHornRule("h(x,z) :- b1(x,y), b2(z,y)", &schema).ok());
  EXPECT_FALSE(ParseHornRule("(x,z) :- b1(x,y), b2(y,z)", &schema).ok());
  EXPECT_FALSE(ParseHornRule("h(x,z) :- b1(x,y), b2(y,z)", nullptr).ok());
}

// ------------------------------------------------------------ pattern query ----

class PatternQueryTest : public ::testing::Test {
 protected:
  PatternQueryTest() {
    const RelationId governor = kg_.schema().Define("governor");
    const RelationId spouse = kg_.schema().Define("spouse");
    const RelationId born_in = kg_.schema().Define("born_in");
    const auto add = [this](const char* s, RelationId r, const char* o) {
      ASSERT_TRUE(
          kg_.Add(Triple{kg_.InternEntity(s), r, kg_.InternEntity(o)}).ok());
    };
    add("Ashfield", governor, "Ada");
    add("Brookmont", governor, "Bruno");
    add("Ada", spouse, "Kira");
    add("Bruno", spouse, "Mara");
    add("Kira", born_in, "Aldenton");
    add("Mara", born_in, "Briarton");
  }
  KnowledgeGraph kg_;
};

TEST_F(PatternQueryTest, SingleConstantPattern) {
  const auto results = Query(kg_, {{"Ashfield", "governor", "?who"}});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].at("?who"), "Ada");
}

TEST_F(PatternQueryTest, JoinAcrossPatterns) {
  const auto results = Query(kg_, {{"?state", "governor", "?gov"},
                                   {"?gov", "spouse", "?spouse"},
                                   {"?spouse", "born_in", "Aldenton"}});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].at("?state"), "Ashfield");
  EXPECT_EQ((*results)[0].at("?spouse"), "Kira");
}

TEST_F(PatternQueryTest, FullyUnboundScans) {
  const auto results = Query(kg_, {{"?s", "governor", "?o"}});
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 2u);
}

TEST_F(PatternQueryTest, RepeatedVariableActsAsJoin) {
  // ?p appears as object then subject: must bind consistently.
  const auto results =
      Query(kg_, {{"Brookmont", "governor", "?p"}, {"?p", "spouse", "?q"}});
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].at("?q"), "Mara");
}

TEST_F(PatternQueryTest, NoSolutions) {
  const auto results =
      Query(kg_, {{"Ashfield", "governor", "Bruno"}});
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty());
  const auto ask = Ask(kg_, {{"Ashfield", "governor", "Ada"}});
  ASSERT_TRUE(ask.ok());
  EXPECT_TRUE(*ask);
}

TEST_F(PatternQueryTest, Rejections) {
  EXPECT_FALSE(Query(kg_, {}).ok());
  EXPECT_FALSE(Query(kg_, {{"?s", "?rel", "?o"}}).ok());
  EXPECT_FALSE(Query(kg_, {{"?s", "no_such_relation", "?o"}}).ok());
}

// -------------------------------------------------------------- checkpoint ----

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/oneedit_ckpt.bin";
  std::remove(path.c_str());
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  LanguageModel restored(SmallConfig(), SmallVocab());
  ASSERT_TRUE(LoadCheckpoint(path, &restored).ok());
  for (size_t l = 0; l < model.memory().num_layers(); ++l) {
    EXPECT_EQ(model.memory().layer(l), restored.memory().layer(l));
  }
  EXPECT_EQ(restored.Query("USA", "president").entity, "Trump");
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  const std::string path = testing::TempDir() + "/oneedit_ckpt_shape.bin";
  LanguageModel model(SmallConfig(), SmallVocab());
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  ModelConfig other = SmallConfig();
  other.dim = 32;
  LanguageModel mismatched(other, SmallVocab());
  EXPECT_FALSE(LoadCheckpoint(path, &mismatched).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsByteFlippedFile) {
  const std::string path = testing::TempDir() + "/oneedit_ckpt_flip.bin";
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());

  // Flip one payload byte: the CRC must catch it and Load must refuse with
  // Corruption instead of silently restoring garbage weights.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 32u);
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  LanguageModel restored(SmallConfig(), SmallVocab());
  const Status status = LoadCheckpoint(path, &restored);
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
  std::remove(path.c_str());
}

TEST(CheckpointTest, SaveLeavesNoTempFileBehind) {
  const std::string path = testing::TempDir() + "/oneedit_ckpt_tmp.bin";
  LanguageModel model(SmallConfig(), SmallVocab());
  ASSERT_TRUE(SaveCheckpoint(model, path).ok());
  // The atomic temp+rename publish must not leave the staging file around.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsGarbageFiles) {
  const std::string path = testing::TempDir() + "/oneedit_ckpt_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  LanguageModel model(SmallConfig(), SmallVocab());
  EXPECT_FALSE(LoadCheckpoint(path, &model).ok());
  EXPECT_FALSE(LoadCheckpoint("/no/such/file", &model).ok());
  EXPECT_FALSE(LoadCheckpoint(path, nullptr).ok());
  std::remove(path.c_str());
}


// ---------------------------------------------------------- cache persistence

TEST(CacheIoTest, SaveLoadRoundTripAllDeltaKinds) {
  const std::string path = testing::TempDir() + "/oneedit_cache.bin";
  std::remove(path.c_str());

  EditCache cache;
  EditDelta weight_delta;
  weight_delta.edit = {"USA", "president", "Biden"};
  weight_delta.method = "MEMIT";
  weight_delta.rank_ones.push_back(
      RankOneUpdate{2, Vec{1.5, -2.5}, Vec{0.25, 0.75}, 0.33});
  Matrix drift(2, 2);
  drift.At(0, 1) = 7.0;
  weight_delta.dense.push_back(DenseUpdate{1, drift});
  cache.Put(weight_delta);

  EditDelta grace_delta;
  grace_delta.edit = {"France", "president", "Trump"};
  grace_delta.method = "GRACE";
  grace_delta.grace_entries.push_back(GraceEntry{Vec{0.1, 0.9}, "Trump"});
  cache.Put(grace_delta);

  ASSERT_TRUE(SaveCache(cache, path).ok());

  EditCache restored;
  ASSERT_TRUE(LoadCache(path, &restored).ok());
  ASSERT_EQ(restored.size(), 2u);
  const EditDelta* w = restored.Get(weight_delta.edit);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->method, "MEMIT");
  ASSERT_EQ(w->rank_ones.size(), 1u);
  EXPECT_EQ(w->rank_ones[0].layer, 2u);
  EXPECT_DOUBLE_EQ(w->rank_ones[0].alpha, 0.33);
  EXPECT_EQ(w->rank_ones[0].value, (Vec{1.5, -2.5}));
  ASSERT_EQ(w->dense.size(), 1u);
  EXPECT_DOUBLE_EQ(w->dense[0].delta.At(0, 1), 7.0);
  const EditDelta* g = restored.Get(grace_delta.edit);
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->grace_entries.size(), 1u);
  EXPECT_EQ(g->grace_entries[0].answer, "Trump");
  std::remove(path.c_str());
}

TEST(CacheIoTest, RestoredDeltaRollsBackRealEdit) {
  // The full restart story: edit, persist theta, restart, roll the edit back
  // using only the restored cache.
  const std::string path = testing::TempDir() + "/oneedit_cache_rt.bin";
  std::remove(path.c_str());

  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  const WeightSnapshot pristine = model.SnapshotWeights();

  auto method = MakeEditingMethod("MEMIT");
  auto delta = (*method)->ApplyEdit(&model, {"USA", "president", "Biden"});
  ASSERT_TRUE(delta.ok());
  EditCache cache;
  cache.Put(*delta);
  ASSERT_TRUE(SaveCache(cache, path).ok());

  // "Restart": fresh cache, same (persisted) model weights.
  EditCache restored;
  ASSERT_TRUE(LoadCache(path, &restored).ok());
  const EditDelta* cached = restored.Get({"USA", "president", "Biden"});
  ASSERT_NE(cached, nullptr);
  auto fresh_method = MakeEditingMethod("MEMIT");
  ASSERT_TRUE((*fresh_method)->Rollback(&model, *cached).ok());
  const WeightSnapshot now = model.SnapshotWeights();
  for (size_t l = 0; l < now.size(); ++l) {
    const auto& a = now[l]->data();
    const auto& b = pristine[l]->data();
    for (size_t i = 0; i < a.size(); ++i) ASSERT_NEAR(a[i], b[i], 1e-9);
  }
  std::remove(path.c_str());
}

TEST(CacheIoTest, RejectsGarbageAndTruncation) {
  const std::string path = testing::TempDir() + "/oneedit_cache_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EditCache cache;
  EXPECT_FALSE(LoadCache(path, &cache).ok());
  EXPECT_FALSE(LoadCache("/no/such/cache", &cache).ok());
  EXPECT_FALSE(LoadCache(path, nullptr).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace oneedit
