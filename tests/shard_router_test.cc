// Tests for the horizontal sharding subsystem (docs/sharding.md): rendezvous
// routing with tenant-scoped keys, per-shard forwarding and counters,
// scatter-gather reads, tenant quotas and rollback isolation, cross-shard
// two-phase commit (happy path, refusal/abort paths, fencing), placement
// hints, and the router's metrics export surface.

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "durability/edit_wal.h"
#include "durability/env.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "nlp/utterance_generator.h"
#include "obs/metrics_registry.h"
#include "shard/shard_router.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::EditWal;
using durability::EditWalRecord;
using durability::Env;
using durability::FaultInjectingEnv;
using durability::TxnMarker;
using serving::EditService;
using serving::EditServiceOptions;
using shard::InDoubtReport;
using shard::ScatterAnswer;
using shard::ShardRouter;
using shard::ShardRouterOptions;
using shard::ShardSpec;
using shard::TenantQuota;

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

/// One shard: its own deterministic world, optionally its own journal.
struct ShardWorld {
  explicit ShardWorld(DurabilityManager* durability = nullptr)
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    EditServiceOptions options;
    options.durability = durability;
    auto created = EditService::Create(&dataset.kg, model.get(),
                                       GraceConfig(), options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

/// N in-memory shards fronted by one router.
struct Fleet {
  explicit Fleet(size_t n, ShardRouterOptions options = {}) {
    for (size_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<ShardWorld>());
    }
    options.vocab = &shards[0]->dataset.vocab;
    std::vector<ShardSpec> specs;
    for (size_t i = 0; i < n; ++i) {
      specs.push_back(ShardSpec{"shard-" + std::to_string(i),
                                shards[i]->service.get(), nullptr, 1.0});
    }
    router = std::make_unique<ShardRouter>(std::move(specs), options);
  }

  std::vector<std::unique_ptr<ShardWorld>> shards;
  std::unique_ptr<ShardRouter> router;
};

/// N durable shards (own WAL/checkpoint dir each) fronted by one router.
struct DurableFleet {
  explicit DurableFleet(size_t n, const std::string& dir_prefix,
                        ShardRouterOptions options = {}) {
    for (size_t i = 0; i < n; ++i) {
      DurabilityOptions opts;
      opts.dir = TempDirFor(dir_prefix + std::to_string(i));
      dirs.push_back(opts.dir);
      auto mgr = DurabilityManager::Open(opts);
      EXPECT_TRUE(mgr.ok());
      managers.push_back(std::move(*mgr));
      shards.push_back(std::make_unique<ShardWorld>(managers.back().get()));
    }
    options.vocab = &shards[0]->dataset.vocab;
    std::vector<ShardSpec> specs;
    for (size_t i = 0; i < n; ++i) {
      specs.push_back(ShardSpec{"shard-" + std::to_string(i),
                                shards[i]->service.get(), managers[i].get(),
                                1.0});
    }
    router = std::make_unique<ShardRouter>(std::move(specs), options);
  }

  std::vector<std::string> dirs;
  std::vector<std::unique_ptr<DurabilityManager>> managers;
  std::vector<std::unique_ptr<ShardWorld>> shards;
  std::unique_ptr<ShardRouter> router;
};

// ---------------------------------------------------------------- routing ----

TEST(ShardRouterTest, RoutingIsDeterministicAndCoversShards) {
  Fleet fleet(4);
  std::set<size_t> used;
  for (const EditCase& c : fleet.shards[0]->dataset.cases) {
    const size_t shard = fleet.router->ShardFor(c.edit.subject);
    EXPECT_EQ(shard, fleet.router->ShardFor(c.edit.subject));
    EXPECT_LT(shard, fleet.router->shard_count());
    used.insert(shard);
  }
  // 12 distinct subjects over 4 shards: more than one shard must own keys.
  EXPECT_GT(used.size(), 1u);
}

TEST(ShardRouterTest, AliasRoutesWithItsCanonicalEntity) {
  Fleet fleet(4);
  const Vocab& vocab = fleet.shards[0]->dataset.vocab;
  ASSERT_FALSE(vocab.alias_of.empty());
  for (const auto& [alias, canonical] : vocab.alias_of) {
    EXPECT_EQ(fleet.router->ShardFor(alias),
              fleet.router->ShardFor(canonical))
        << alias << " vs " << canonical;
  }
}

TEST(ShardRouterTest, TenantsGetIndependentRoutingKeys) {
  Fleet fleet(4);
  // Determinism per tenant; distribution across tenants follows the hash
  // (we only assert SOME entity routes differently for different tenants,
  // which is overwhelmingly likely over 12 subjects x 4 shards).
  bool any_differs = false;
  for (const EditCase& c : fleet.shards[0]->dataset.cases) {
    EXPECT_EQ(fleet.router->ShardFor(c.edit.subject, "acme"),
              fleet.router->ShardFor(c.edit.subject, "acme"));
    if (fleet.router->ShardFor(c.edit.subject, "acme") !=
        fleet.router->ShardFor(c.edit.subject, "globex")) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);
}

// ------------------------------------------------------- single-shard path ----

TEST(ShardRouterTest, RoutesEditsAndReadsToOwningShard) {
  Fleet fleet(2);
  size_t submitted = 0;
  for (size_t i = 0; i < 4; ++i) {
    const EditCase& c = fleet.shards[0]->dataset.cases[i];
    // Keep this test on the single-shard path: skip cross-shard specimens.
    if (fleet.router->ShardFor(c.edit.subject) !=
        fleet.router->ShardFor(c.edit.object)) {
      continue;
    }
    const auto result =
        fleet.router->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->kind, EditResult::Kind::kEdited);
    ++submitted;

    const auto decode =
        fleet.router->Ask(c.edit.subject, c.edit.relation);
    ASSERT_TRUE(decode.ok());
    EXPECT_EQ(decode->entity, c.edit.object);
  }
  ASSERT_GT(submitted, 0u);
  uint64_t edits = 0, requests = 0;
  for (size_t s = 0; s < fleet.router->shard_count(); ++s) {
    edits += fleet.router->shard_edits(s);
    requests += fleet.router->shard_requests(s);
  }
  EXPECT_EQ(edits, submitted);
  EXPECT_EQ(requests, submitted);  // one Ask per edit
}

TEST(ShardRouterTest, ScatterAskAnswersInInputOrder) {
  Fleet fleet(3);
  std::vector<std::pair<std::string, std::string>> queries;
  for (size_t i = 0; i < 6; ++i) {
    const EditCase& c = fleet.shards[0]->dataset.cases[i];
    queries.push_back({c.edit.subject, c.edit.relation});
  }
  const std::vector<ScatterAnswer> answers = fleet.router->ScatterAsk(queries);
  ASSERT_EQ(answers.size(), queries.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i].subject, queries[i].first);
    EXPECT_EQ(answers[i].shard,
              fleet.router->ShardFor(queries[i].first));
    ASSERT_TRUE(answers[i].decode.ok()) << answers[i].subject;
    // Pre-edit world: the decode answers the pretrained object.
    EXPECT_FALSE(answers[i].decode->entity.empty());
  }
}

// ------------------------------------------------------------ tenant admin ----

TEST(ShardRouterTest, TenantQuotaShedsFloodAsTypedRejection) {
  Fleet fleet(2);
  fleet.router->SetTenantQuota("acme", TenantQuota{1.0, 2.0});

  size_t accepted = 0, shed = 0;
  for (size_t i = 0; i < 8; ++i) {
    const EditCase& c = fleet.shards[0]->dataset.cases[i];
    const auto result = fleet.router->SubmitAndWait(
        EditRequest::Edit(c.edit, "alice"), "acme");
    ASSERT_TRUE(result.ok());  // shedding is a policy result, not an error
    if (result->kind == EditResult::Kind::kRejected) {
      ++shed;
    } else {
      ++accepted;
    }
  }
  EXPECT_GE(accepted, 2u);  // the burst
  EXPECT_GE(shed, 4u);      // the flood
  EXPECT_EQ(fleet.router->tenant_quota_rejects("acme"), shed);

  // An unlimited tenant is untouched by acme's bucket.
  const EditCase& c = fleet.shards[0]->dataset.cases[8];
  const auto other = fleet.router->SubmitAndWait(
      EditRequest::Edit(c.edit, "bob"), "globex");
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other->kind, EditResult::Kind::kRejected);
  EXPECT_EQ(fleet.router->tenant_quota_rejects("globex"), 0u);
}

TEST(ShardRouterTest, TenantRollbackLeavesOtherTenantsAlone) {
  Fleet fleet(2);
  const EditCase& acme_case = fleet.shards[0]->dataset.cases[0];
  const EditCase& globex_case = fleet.shards[0]->dataset.cases[1];
  ASSERT_NE(acme_case.edit.subject, globex_case.edit.subject);

  const std::string acme_before =
      fleet.router->Ask(acme_case.edit.subject, acme_case.edit.relation,
                        "acme")
          ->entity;
  ASSERT_TRUE(fleet.router
                  ->SubmitAndWait(EditRequest::Edit(acme_case.edit, "alice"),
                                  "acme")
                  .ok());
  ASSERT_TRUE(fleet.router
                  ->SubmitAndWait(
                      EditRequest::Edit(globex_case.edit, "alice"), "globex")
                  .ok());

  ASSERT_TRUE(fleet.router->RollbackTenant("acme", "alice").ok());

  // Acme's edit is reverted; globex's (same human username!) survives.
  EXPECT_EQ(fleet.router
                ->Ask(acme_case.edit.subject, acme_case.edit.relation, "acme")
                ->entity,
            acme_before);
  EXPECT_EQ(fleet.router
                ->Ask(globex_case.edit.subject, globex_case.edit.relation,
                      "globex")
                ->entity,
            globex_case.edit.object);
}

// ------------------------------------------------------- cross-shard 2PC ----

TEST(ShardRouterTest, CrossShardEditCommitsBothHalves) {
  const std::string prefix = "oneedit_shard_2pc_ok_";
  DurableFleet fleet(2, prefix);
  const EditCase* specimen = nullptr;
  for (const EditCase& c : fleet.shards[0]->dataset.cases) {
    if (fleet.router->ShardFor(c.edit.subject) !=
        fleet.router->ShardFor(c.edit.object)) {
      specimen = &c;
      break;
    }
  }
  ASSERT_NE(specimen, nullptr);
  const size_t subject_shard = fleet.router->ShardFor(specimen->edit.subject);
  const size_t object_shard = fleet.router->ShardFor(specimen->edit.object);

  const auto result =
      fleet.router->SubmitAndWait(EditRequest::Edit(specimen->edit, "alice"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->kind, EditResult::Kind::kEdited);
  EXPECT_EQ(fleet.router->cross_shard_txns(), 1u);
  EXPECT_EQ(fleet.router->cross_shard_aborts(), 0u);

  // The subject half answers through the router...
  EXPECT_EQ(
      fleet.router->Ask(specimen->edit.subject, specimen->edit.relation)
          ->entity,
      specimen->edit.object);
  // ...and the object's owning shard serves the exact reverse association
  // (the inverse-relation slot the 2PC object half wrote).
  const std::string inverse =
      fleet.shards[0]->dataset.vocab.InverseOf(specimen->edit.relation);
  ASSERT_FALSE(inverse.empty());
  const auto back = fleet.router->Ask(specimen->edit.object, inverse);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->entity, specimen->edit.subject);

  // The protocol journaled: prepares on both shards, the decision on the
  // coordinator, and the applied halves settled everything.
  auto& coord_stats = fleet.shards[subject_shard]->service->statistics();
  auto& part_stats = fleet.shards[object_shard]->service->statistics();
  EXPECT_GE(coord_stats.Get(Ticker::kTxnPrepares), 1u);
  EXPECT_GE(coord_stats.Get(Ticker::kTxnDecisions), 1u);
  EXPECT_EQ(coord_stats.Get(Ticker::kCrossShardTxns), 1u);
  EXPECT_GE(part_stats.Get(Ticker::kTxnPrepares), 1u);
  for (const auto& mgr : fleet.managers) {
    EXPECT_TRUE(mgr->outstanding_txns().empty());
    EXPECT_TRUE(mgr->retained_decisions().empty());  // Forget2pc ran
  }

  // The coordinator journal carries the marker frames on disk.
  size_t markers = 0;
  const auto stats = EditWal::Replay(
      fleet.dirs[subject_shard] + "/edits.wal", nullptr,
      [&](const EditWalRecord& record) {
        if (record.txn_marker != TxnMarker::kNone) ++markers;
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(markers, 2u);  // its prepare + the commit decision
}

TEST(ShardRouterTest, DegradedParticipantAbortsCrossShardEdit) {
  const std::string prefix = "oneedit_shard_2pc_abort_";
  // Build the object shard's journal over a fault env we can kill.
  std::vector<std::unique_ptr<DurabilityManager>> managers;
  std::vector<std::unique_ptr<ShardWorld>> shards;
  FaultInjectingEnv fault(Env::Default());
  std::vector<std::string> dirs;
  for (size_t i = 0; i < 2; ++i) {
    DurabilityOptions opts;
    opts.dir = TempDirFor(prefix + std::to_string(i));
    dirs.push_back(opts.dir);
    if (i == 1) opts.env = &fault;
    auto mgr = DurabilityManager::Open(opts);
    ASSERT_TRUE(mgr.ok());
    managers.push_back(std::move(*mgr));
    shards.push_back(std::make_unique<ShardWorld>(managers.back().get()));
  }
  ShardRouterOptions options;
  options.vocab = &shards[0]->dataset.vocab;
  std::vector<ShardSpec> specs;
  for (size_t i = 0; i < 2; ++i) {
    specs.push_back(ShardSpec{"shard-" + std::to_string(i),
                              shards[i]->service.get(), managers[i].get(),
                              1.0});
  }
  ShardRouter router(std::move(specs), options);

  const EditCase* specimen = nullptr;
  size_t subject_shard = 0;
  for (const EditCase& c : shards[0]->dataset.cases) {
    // The participant (shard 1) must be the OBJECT shard so the fault env
    // hits phase 1 on the participant, after the coordinator prepared.
    if (router.ShardFor(c.edit.subject) == 0 &&
        router.ShardFor(c.edit.object) == 1) {
      specimen = &c;
      subject_shard = 0;
      break;
    }
  }
  if (specimen == nullptr) GTEST_SKIP() << "no 0->1 specimen in dataset";

  fault.CrashAt(0);  // every journal op on the participant now fails
  const auto result =
      router.SubmitAndWait(EditRequest::Edit(specimen->edit, "alice"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, EditResult::Kind::kRejected);
  EXPECT_EQ(router.cross_shard_aborts(), 1u);
  EXPECT_EQ(router.cross_shard_txns(), 0u);
  fault.Clear();

  // The coordinator settled its own prepare with a journaled abort: nothing
  // outstanding, nothing retained, and the subject slot never moved.
  EXPECT_TRUE(managers[subject_shard]->outstanding_txns().empty());
  EXPECT_TRUE(managers[subject_shard]->retained_decisions().empty());
  EXPECT_NE(
      router.Ask(specimen->edit.subject, specimen->edit.relation)->entity,
      specimen->edit.object);
}

TEST(ShardRouterTest, DeposedCoordinatorRefusesToPrepare) {
  const std::string prefix = "oneedit_shard_2pc_fenced_";
  DurableFleet fleet(2, prefix);
  const EditCase* specimen = nullptr;
  for (const EditCase& c : fleet.shards[0]->dataset.cases) {
    if (fleet.router->ShardFor(c.edit.subject) !=
        fleet.router->ShardFor(c.edit.object)) {
      specimen = &c;
      break;
    }
  }
  ASSERT_NE(specimen, nullptr);
  const size_t subject_shard = fleet.router->ShardFor(specimen->edit.subject);

  // Another node won an election on the coordinator's replication group:
  // its durability manager observes a term above the one it owns.
  fleet.managers[subject_shard]->AdoptTerm(7);
  const Status refused = fleet.shards[subject_shard]->service->Prepare2pc(
      99, static_cast<uint32_t>(subject_shard),
      EditRequest::Edit(specimen->edit, "alice"));
  EXPECT_FALSE(refused.ok());

  const auto result =
      fleet.router->SubmitAndWait(EditRequest::Edit(specimen->edit, "alice"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, EditResult::Kind::kRejected);
  EXPECT_EQ(fleet.router->cross_shard_aborts(), 1u);
  EXPECT_TRUE(fleet.managers[subject_shard]->outstanding_txns().empty());
}

// ------------------------------------------------ placement + observability ----

TEST(ShardRouterTest, PlacementHintsJoinProfilerWithRoutingMap) {
  Fleet fleet(2);
  obs::CostProfiler::Global().SetEnabled(true);
  // Generate read traffic so HotEntities has rows.
  for (size_t i = 0; i < 6; ++i) {
    const EditCase& c = fleet.shards[0]->dataset.cases[i];
    ASSERT_TRUE(fleet.router->Ask(c.edit.subject, c.edit.relation).ok());
  }
  obs::CostProfiler::Global().Aggregate();

  const std::string hints = fleet.router->PlacementHints(8);
  EXPECT_NE(hints.find("\"version\":1"), std::string::npos);
  EXPECT_NE(hints.find("\"shards\":["), std::string::npos);
  EXPECT_NE(hints.find("\"shard-0\""), std::string::npos);
  EXPECT_NE(hints.find("\"shard-1\""), std::string::npos);
  EXPECT_NE(hints.find("\"entities\":["), std::string::npos);
  EXPECT_NE(hints.find("\"total_cost\":"), std::string::npos);
  // Every hinted entity names the shard the router would actually route to.
  EXPECT_NE(hints.find("\"shard_index\":"), std::string::npos);
  obs::CostProfiler::Global().SetEnabled(false);
}

TEST(ShardRouterTest, ExportsPerShardAndPerTenantFamilies) {
  Fleet fleet(2);
  fleet.router->SetTenantQuota("acme", TenantQuota{0.001, 1.0});
  const EditCase& c0 = fleet.shards[0]->dataset.cases[0];
  const EditCase& c1 = fleet.shards[0]->dataset.cases[1];
  ASSERT_TRUE(
      fleet.router->SubmitAndWait(EditRequest::Edit(c0.edit, "a"), "acme")
          .ok());
  // Second submit drains the bucket -> a tenant_quota_rejects sample.
  ASSERT_TRUE(
      fleet.router->SubmitAndWait(EditRequest::Edit(c1.edit, "a"), "acme")
          .ok());

  obs::MetricsRegistry registry;
  fleet.router->ExportMetrics(&registry);
  const std::string text = registry.ExposeText();
  EXPECT_NE(text.find("oneedit_shard_requests_total{shard=\"shard-0\"}"),
            std::string::npos);
  EXPECT_NE(text.find("oneedit_shard_edits_total{shard=\"shard-1\"}"),
            std::string::npos);
  EXPECT_NE(text.find("oneedit_shard_health{shard=\"shard-0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("oneedit_cross_shard_txns_total"), std::string::npos);
  EXPECT_NE(text.find("oneedit_cross_shard_aborts_total"), std::string::npos);
  EXPECT_NE(text.find("oneedit_tenant_quota_rejects_total{tenant=\"acme\"} 1"),
            std::string::npos);

  const std::string json = registry.ExposeJson();
  EXPECT_NE(json.find("\"shard_requests{shard=shard-0}\""), std::string::npos);
}

TEST(ShardRouterTest, HealthEndpointAggregatesShardStates) {
  Fleet fleet(3);
  const std::string health = fleet.router->HealthJson();
  EXPECT_NE(health.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(health.find("\"shard-2\""), std::string::npos);
  EXPECT_NE(health.find("\"health\":\"healthy\""), std::string::npos);
  EXPECT_NE(health.find("\"cross_shard_txns\":0"), std::string::npos);
}

TEST(ShardRouterTest, UtteranceRoutesByTextAndApplies) {
  Fleet fleet(2);
  // The interpreter extracts the triple on whichever shard the text hashes
  // to; with extraction_error_rate 0 it applies deterministically.
  const EditCase& c = fleet.shards[0]->dataset.cases[0];
  const std::string utterance = EditUtterance(c.edit, 0);
  const size_t owner = fleet.router->ShardFor(utterance);
  const auto result =
      fleet.router->SubmitAndWait(EditRequest::Utterance(utterance, "alice"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(fleet.router->shard_edits(owner), 1u);
}

}  // namespace
}  // namespace oneedit
