// Tests for the model's differentiated query pathways: the consolidated
// (multi-hop) pathway that attenuates post-pretraining edits, alias-basin
// pretraining, and blended recall.

#include <gtest/gtest.h>

#include "model/assoc_memory.h"
#include "model/language_model.h"
#include "model/model_config.h"
#include "util/math.h"

namespace oneedit {
namespace {

ModelConfig PathConfig() {
  ModelConfig config;
  config.dim = 64;
  config.num_layers = 4;
  config.seed = 31;
  config.junk_fraction = 0.0;  // keep slots clean for exact assertions
  return config;
}

Vocab PathVocab() {
  Vocab vocab;
  vocab.entities = {"Ashfield", "Ada", "Kira", "Bruno", "Mara", "Aldenton"};
  vocab.alias_of["Governor Ada"] = "Ada";
  vocab.relations = {{"governor", "governs"}, {"spouse", "spouse"},
                     {"party", ""}};
  return vocab;
}

std::vector<NamedTriple> PathFacts() {
  return {{"Ashfield", "governor", "Ada"},
          {"Ada", "governs", "Ashfield"},
          {"Ada", "spouse", "Kira"},
          {"Kira", "spouse", "Ada"},
          {"Bruno", "spouse", "Mara"},
          {"Kira", "party", "Aldenton"},  // reuse entity as a party stand-in
          {"Mara", "party", "Aldenton"}};
}

// -------------------------------------------------------- RecallBlended ----

TEST(RecallBlendedTest, InterpolatesBetweenBaseAndCurrent) {
  AssocMemory memory(1, 4);
  const Vec key = Normalized(Vec{1.0, 0.0, 0.0, 0.0});
  memory.AddRankOne(0, Vec{0.0, 1.0, 0.0, 0.0}, key, 1.0);
  const WeightSnapshot base = memory.Snapshot();
  // Post-"pretraining" delta.
  memory.AddRankOne(0, Vec{0.0, 0.0, 1.0, 0.0}, key, 1.0);

  const Vec full = memory.RecallBlended({key}, base, 1.0);
  EXPECT_NEAR(full[1], 1.0, 1e-12);
  EXPECT_NEAR(full[2], 1.0, 1e-12);

  const Vec frozen = memory.RecallBlended({key}, base, 0.0);
  EXPECT_NEAR(frozen[1], 1.0, 1e-12);
  EXPECT_NEAR(frozen[2], 0.0, 1e-12);

  const Vec half = memory.RecallBlended({key}, base, 0.5);
  EXPECT_NEAR(half[2], 0.5, 1e-12);
}

// -------------------------------------- hop pathway attenuates raw edits ----

TEST(HopPathwayTest, RawWeightEditBarelyReachesComposition) {
  ModelConfig config = PathConfig();
  config.hop_edit_attenuation = 0.0;  // fully frozen hop pathway
  LanguageModel model(config, PathVocab());
  model.Pretrain(PathFacts());

  // Overwrite the governor slot with Bruno directly in the weights.
  const auto keys = model.CenterKeys("Ashfield", "governor");
  const Vec residual =
      Sub(model.ValueFor("Bruno"), model.Recall(keys));
  model.memory().AddRankOne(0, residual, keys[0], 1.0);
  ASSERT_EQ(model.Query("Ashfield", "governor").entity, "Bruno");

  // The composed question still chains through the OLD governor: the edit
  // is invisible to the frozen multi-hop pathway.
  int old_chain = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const Decode d = model.QueryComposed("Ashfield", "governor", "spouse",
                                         seed);
    old_chain += d.entity == "Kira";  // spouse of Ada, the pretrained answer
  }
  EXPECT_GE(old_chain, 14);
}

TEST(HopPathwayTest, PretrainedCompositionUnaffectedByAttenuation) {
  // Without any edits, the blended pathway equals the plain one.
  LanguageModel model(PathConfig(), PathVocab());
  model.Pretrain(PathFacts());
  int correct = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    correct += model
                   .QueryComposed("Ashfield", "governor", "spouse", seed)
                   .entity == "Kira";
  }
  EXPECT_GE(correct, 14);
}

// ------------------------------------------------------------ alias basin ----

TEST(AliasBasinTest, PretrainedFactsAnswerThroughAliases) {
  LanguageModel model(PathConfig(), PathVocab());
  model.Pretrain(PathFacts());
  // The alias subject key carries its own storage (alias_basin), so the
  // fact decodes through the alias even at cosine ~0.67 from canonical.
  EXPECT_EQ(model.Query("Governor Ada", "spouse").entity, "Kira");
}

TEST(AliasBasinTest, DisablingAliasBasinWeakensAliasRecall) {
  ModelConfig no_basin = PathConfig();
  no_basin.alias_basin = 0.0;
  LanguageModel with(PathConfig(), PathVocab());
  LanguageModel without(no_basin, PathVocab());
  with.Pretrain(PathFacts());
  without.Pretrain(PathFacts());
  const double score_with =
      with.Query("Governor Ada", "spouse").score;
  const double score_without =
      without.Query("Governor Ada", "spouse").score;
  EXPECT_GT(score_with, score_without + 0.3);
}

// ------------------------------------------------------------------ junk ----

TEST(JunkTest, EmptySlotsDecodeConfidentNonsense) {
  ModelConfig config = PathConfig();
  config.junk_fraction = 1.0;
  config.junk_strength = 0.45;
  LanguageModel model(config, PathVocab());
  model.Pretrain(PathFacts());
  // "Aldenton" has no governor; the junk floor makes the model hallucinate
  // *something* rather than return a near-zero vector.
  const Decode d = model.Query("Aldenton", "governor");
  EXPECT_GT(d.score, 0.05);
}

TEST(JunkTest, JunkIsSeedStableAcrossRebuilds) {
  ModelConfig config = PathConfig();
  config.junk_fraction = 0.7;
  LanguageModel a(config, PathVocab());
  LanguageModel b(config, PathVocab());
  a.Pretrain(PathFacts());
  b.Pretrain(PathFacts());
  EXPECT_EQ(a.Query("Aldenton", "governor").entity,
            b.Query("Aldenton", "governor").entity);
}

}  // namespace
}  // namespace oneedit
