// Tests for the EditService serving layer: concurrent readers + writers,
// coalesced batches vs sequential equivalence, backpressure, shutdown, and
// the ConcurrentOneEdit compatibility shim. Designed to run clean under
// ThreadSanitizer (scripts/ci.sh tsan).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent.h"
#include "data/dataset.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "serving/edit_service.h"

namespace oneedit {
namespace {

using serving::EditService;
using serving::EditServiceOptions;

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

/// A self-contained world + model + EditService. GRACE is the method under
/// test: its adaptor applies batched edits one by one, so a coalesced batch
/// must land bit-identically to sequential execution.
struct ServingWorld {
  explicit ServingWorld(const EditServiceOptions& options = {})
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    OneEditConfig config;
    config.method = EditingMethodKind::kGrace;
    config.interpreter.extraction_error_rate = 0.0;
    auto created =
        EditService::Create(&dataset.kg, model.get(), config, options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

TEST(EditServiceTest, SingleEditAppliesAndResolvesFuture) {
  ServingWorld world;
  const EditCase& edit_case = world.dataset.cases.front();
  const auto result = world.service->SubmitAndWait(
      EditRequest::Edit(edit_case.edit, "alice"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, EditResult::Kind::kEdited);
  EXPECT_EQ(world.service->GetSnapshot()
                ->Ask(edit_case.edit.subject, edit_case.edit.relation)
                ->entity,
            edit_case.edit.object);
  const Statistics& stats = world.service->statistics();
  EXPECT_EQ(stats.Get(Ticker::kServingSubmitted), 1u);
  EXPECT_GE(stats.Get(Ticker::kServingBatches), 1u);
  EXPECT_EQ(stats.GetHistogram(Histogram::kServingLatencyMicros).count, 1u);
}

TEST(EditServiceTest, StressReadersAndWritersDisjointAndConflictingSlots) {
  ServingWorld world;
  const auto& cases = world.dataset.cases;

  constexpr int kReaders = 4;
  constexpr int kWriters = 3;
  std::atomic<bool> stop_readers{false};
  std::atomic<int> read_count{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      size_t i = t;
      while (!stop_readers.load(std::memory_order_relaxed)) {
        const EditCase& edit_case = cases[i++ % cases.size()];
        (void)world.service->GetSnapshot()->Ask(edit_case.edit.subject,
                                                edit_case.edit.relation);
        read_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writers 0..1 fight over the same slots (conflicting); writer 2 owns a
  // disjoint share. Every future must resolve OK.
  //
  // Writer 1's rival object must not be claimed by any other concurrent
  // edit: `alternative_objects` alias neighbouring cases' new objects, and
  // the governor relation's exclusive inverse means two subjects claiming
  // one person resolve by evicting the earlier claim (Algorithm 2) — the
  // evicted slot then decodes to neither candidate. Old objects from the
  // other half's cases are people no concurrent edit assigns anywhere.
  const auto rival_object = [&](size_t c) {
    return cases[c + cases.size() / 2].old_object;
  };
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      std::vector<std::future<StatusOr<EditResult>>> futures;
      for (size_t c = 0; c < cases.size(); ++c) {
        const bool conflicting_share = c < cases.size() / 2;
        if (conflicting_share != (t < 2)) continue;
        NamedTriple triple = cases[c].edit;
        if (t == 1) triple.object = rival_object(c);
        futures.push_back(world.service->Submit(
            EditRequest::Edit(triple, "writer" + std::to_string(t))));
      }
      for (auto& future : futures) {
        const auto result = future.get();
        if (!result.ok() || !(result->applied() || result->no_op())) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  world.service->Drain();
  stop_readers.store(true);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(read_count.load(), 0);

  // Disjoint slots (writer 2's share) have a deterministic final value.
  for (size_t c = cases.size() / 2; c < cases.size(); ++c) {
    EXPECT_EQ(world.service->GetSnapshot()
                  ->Ask(cases[c].edit.subject, cases[c].edit.relation)
                  ->entity,
              cases[c].edit.object);
  }
  // Contended slots hold one of the two candidates, and KG and model agree.
  for (size_t c = 0; c < cases.size() / 2; ++c) {
    const std::string entity =
        world.service->GetSnapshot()
            ->Ask(cases[c].edit.subject, cases[c].edit.relation)
            ->entity;
    const bool is_candidate =
        entity == cases[c].edit.object || entity == rival_object(c);
    EXPECT_TRUE(is_candidate) << entity;
    const auto resolved = world.dataset.kg.Resolve(
        {cases[c].edit.subject, cases[c].edit.relation, entity});
    ASSERT_TRUE(resolved.ok());
    EXPECT_TRUE(world.dataset.kg.Contains(*resolved));
  }
  // The verification Asks above tick the counter too, so >= not ==.
  const Statistics& stats = world.service->statistics();
  EXPECT_GE(stats.Get(Ticker::kServingReads),
            static_cast<uint64_t>(read_count.load()));
  EXPECT_GE(stats.Get(Ticker::kServingSubmitted), cases.size());
}

TEST(EditServiceTest, CoalescedBatchMatchesSequentialExecution) {
  // World A: sequential EditTriple calls. World B: everything submitted at
  // once while the writer is held off, forcing coalesced batches.
  ServingWorld sequential_world;
  EditServiceOptions options;
  options.max_batch_size = 64;
  ServingWorld coalesced_world(options);
  const auto& cases = sequential_world.dataset.cases;

  for (const EditCase& edit_case : cases) {
    const auto result = sequential_world.service->WithExclusive(
        [&](OneEditSystem& sys) { return sys.EditTriple(edit_case.edit, "u"); });
    ASSERT_TRUE(result.ok());
  }

  std::vector<std::future<StatusOr<EditResult>>> futures;
  coalesced_world.service->WithExclusive([&](OneEditSystem&) {
    // The writer cannot apply anything while we hold the exclusive lock, so
    // submissions pile up and coalesce.
    for (const EditCase& edit_case : cases) {
      futures.push_back(coalesced_world.service->Submit(
          EditRequest::Edit(edit_case.edit, "u")));
    }
    return 0;
  });
  for (auto& future : futures) ASSERT_TRUE(future.get().ok());
  coalesced_world.service->Drain();

  // The writer must have coalesced more than one edit into some batch.
  EXPECT_GT(coalesced_world.service->statistics()
                .GetHistogram(Histogram::kServingBatchSize)
                .max,
            1u);

  // Model answers and audit trails are identical to sequential execution.
  for (const EditCase& edit_case : cases) {
    EXPECT_EQ(coalesced_world.service->GetSnapshot()
                  ->Ask(edit_case.edit.subject, edit_case.edit.relation)
                  ->entity,
              sequential_world.service->GetSnapshot()
                  ->Ask(edit_case.edit.subject, edit_case.edit.relation)
                  ->entity);
  }
  const size_t sequential_audit = sequential_world.service->WithExclusive(
      [](OneEditSystem& sys) { return sys.audit_log().size(); });
  const size_t coalesced_audit = coalesced_world.service->WithExclusive(
      [](OneEditSystem& sys) { return sys.audit_log().size(); });
  EXPECT_EQ(coalesced_audit, sequential_audit);
}

TEST(EditServiceTest, SameSlotRequestsStayFifoPerSlot) {
  ServingWorld world;
  const EditCase& edit_case = world.dataset.cases.front();
  ASSERT_FALSE(edit_case.alternative_objects.empty());
  std::vector<std::string> objects = {edit_case.edit.object};
  for (const std::string& alt : edit_case.alternative_objects) {
    objects.push_back(alt);
  }

  std::vector<std::future<StatusOr<EditResult>>> futures;
  world.service->WithExclusive([&](OneEditSystem&) {
    for (const std::string& object : objects) {
      futures.push_back(world.service->Submit(EditRequest::Edit(
          {edit_case.edit.subject, edit_case.edit.relation, object}, "u")));
    }
    return 0;
  });
  for (auto& future : futures) ASSERT_TRUE(future.get().ok());
  world.service->Drain();

  // Last submitted wins, and the audit log shows the full chain in
  // submission order: each record's previous_object is its predecessor.
  EXPECT_EQ(world.service->GetSnapshot()
                ->Ask(edit_case.edit.subject, edit_case.edit.relation)
                ->entity,
            objects.back());
  world.service->WithExclusive([&](OneEditSystem& sys) {
    const auto& log = sys.audit_log();
    EXPECT_EQ(log.size(), objects.size());
    std::string expected_previous = edit_case.old_object;
    for (size_t i = 0; i < log.size() && i < objects.size(); ++i) {
      EXPECT_EQ(log[i].request.object, objects[i]);
      EXPECT_EQ(log[i].previous_object, expected_previous);
      expected_previous = objects[i];
    }
    return 0;
  });
}

TEST(EditServiceTest, BackpressureRejectsWhenQueueFull) {
  EditServiceOptions options;
  options.queue_capacity = 1;
  options.reject_when_full = true;
  ServingWorld world(options);
  const auto& cases = world.dataset.cases;

  std::vector<std::future<StatusOr<EditResult>>> futures;
  world.service->WithExclusive([&](OneEditSystem&) {
    // The writer can hold at most one in-flight batch; with capacity 1, a
    // burst of 4 must overflow the queue.
    for (int i = 0; i < 4; ++i) {
      futures.push_back(world.service->Submit(
          EditRequest::Edit(cases[i % cases.size()].edit, "burst")));
    }
    return 0;
  });

  size_t rejected = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsResourceExhausted())
          << result.status().ToString();
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u);
  EXPECT_GE(world.service->statistics().Get(Ticker::kServingRejected),
            rejected);
  world.service->Drain();
}

TEST(EditServiceTest, SubmitAfterStopFailsWithUnavailable) {
  ServingWorld world;
  world.service->Stop();
  const auto result = world.service->SubmitAndWait(
      EditRequest::Edit(world.dataset.cases.front().edit, "late"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
}

TEST(EditServiceTest, EraseAndUtteranceRequestsFlowThroughSubmit) {
  ServingWorld world;
  const EditCase& edit_case = world.dataset.cases.front();
  const NamedTriple truth{edit_case.edit.subject, edit_case.edit.relation,
                          edit_case.old_object};

  const auto erased =
      world.service->SubmitAndWait(EditRequest::Erase(truth, "admin"));
  ASSERT_TRUE(erased.ok());
  EXPECT_EQ(erased->kind, EditResult::Kind::kErased);
  EXPECT_NE(world.service->GetSnapshot()->Ask(truth.subject,
                                              truth.relation)->entity,
            truth.object);

  const auto generated = world.service->SubmitAndWait(
      EditRequest::Utterance("What are the primary colors?", "reader"));
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->kind, EditResult::Kind::kGenerated);
}

// The deprecated one-shot shims must keep serving (and agreeing with the
// snapshot API) until every external caller has migrated — on both read
// paths, since kLockedLegacy exists for A/B benchmarking.
TEST(EditServiceTest, DeprecatedAskShimsMatchSnapshotReads) {
  for (const serving::ReadPath path :
       {serving::ReadPath::kSnapshot, serving::ReadPath::kLockedLegacy}) {
    EditServiceOptions options;
    options.read_path = path;
    ServingWorld world(options);
    const EditCase& edit_case = world.dataset.cases.front();
    ASSERT_TRUE(world.service
                    ->SubmitAndWait(EditRequest::Edit(edit_case.edit, "alice"))
                    .ok());
    const std::string expected =
        world.service->GetSnapshot()
            ->Ask(edit_case.edit.subject, edit_case.edit.relation)
            ->entity;
    EXPECT_EQ(expected, edit_case.edit.object);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    EXPECT_EQ(world.service
                  ->Ask(edit_case.edit.subject, edit_case.edit.relation)
                  .entity,
              expected);
    const auto bounded = world.service->AskAtLeast(
        edit_case.edit.subject, edit_case.edit.relation,
        world.service->applied_sequence());
    ASSERT_TRUE(bounded.ok());
    EXPECT_EQ(bounded->entity, expected);
#pragma GCC diagnostic pop
    // Only the legacy path ever touches a lock on a read; the snapshot path
    // records an explicit zero so the "no reader blocks" gate is checkable.
    const HistogramSnapshot waits = world.service->statistics().GetHistogram(
        Histogram::kServingReadLockWaitMicros);
    EXPECT_GT(waits.count, 0u);
    if (path == serving::ReadPath::kSnapshot) {
      EXPECT_EQ(waits.max, 0u);
    }
  }
}

// ------------------------------------------------------ shutdown ordering ----
// The guarantees documented on EditService: Stop() is idempotent, destroying
// or stopping the service while producers are blocked cannot hang, and
// Drain() terminates while degraded.

TEST(EditServiceShutdownTest, StopIsIdempotent) {
  ServingWorld world;
  ASSERT_TRUE(world.service
                  ->SubmitAndWait(
                      EditRequest::Edit(world.dataset.cases[0].edit, "alice"))
                  .ok());
  world.service->Stop();
  world.service->Stop();  // second call must be a no-op, not a deadlock
  world.service.reset();  // destructor also calls Stop()
}

TEST(EditServiceShutdownTest, StopWakesSubmitBlockedOnBackpressure) {
  EditServiceOptions options;
  options.queue_capacity = 1;
  ServingWorld world(options);

  // Stall the writer mid-batch by holding the exclusive lock.
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::promise<void> locked;
  std::thread holder([&] {
    world.service->WithExclusive([&](OneEditSystem&) {
      locked.set_value();
      released.wait();
      return 0;
    });
  });
  locked.get_future().wait();

  // A is popped by the (stalled) writer; B fills the 1-slot queue; C blocks
  // in Submit on backpressure.
  auto a = world.service->Submit(
      EditRequest::Edit(world.dataset.cases[0].edit, "alice"));
  while (world.service->queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto b = world.service->Submit(
      EditRequest::Edit(world.dataset.cases[1].edit, "bob"));
  std::promise<StatusOr<EditResult>> c_result;
  auto c_future = c_result.get_future();
  std::thread blocked([&] {
    c_result.set_value(world.service->SubmitAndWait(
        EditRequest::Edit(world.dataset.cases[2].edit, "carol")));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Stop while the writer is still stalled: the blocked Submit must wake and
  // resolve Unavailable even though the writer cannot make progress yet.
  std::thread stopper([&] { world.service->Stop(); });
  const auto c = c_future.get();
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsUnavailable());
  blocked.join();

  // Release the writer; Stop() can now finish its current batch and join.
  release.set_value();
  holder.join();
  stopper.join();

  // A was already popped into the writer's batch, so it still applies; B was
  // still queued at Stop() and fails Unavailable.
  const auto a_result = a.get();
  ASSERT_TRUE(a_result.ok());
  EXPECT_EQ(a_result->kind, EditResult::Kind::kEdited);
  const auto b_result = b.get();
  ASSERT_FALSE(b_result.ok());
  EXPECT_TRUE(b_result.status().IsUnavailable());
}

TEST(EditServiceShutdownTest, DrainTerminatesWhileDegraded) {
  const std::string dir = testing::TempDir() + "/oneedit_drain_degraded";
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  durability::FaultInjectingEnv fault(durability::Env::Default());
  durability::DurabilityOptions dopts;
  dopts.dir = dir;
  dopts.env = &fault;
  auto mgr = durability::DurabilityManager::Open(dopts);
  ASSERT_TRUE(mgr.ok());

  EditServiceOptions options;
  options.durability = mgr->get();
  options.self_heal.auto_heal = false;  // stay degraded for the whole test
  ServingWorld world(options);

  fault.FailNext(50);  // exhaust the bounded WAL retry on the first batch
  std::vector<std::future<StatusOr<EditResult>>> futures;
  for (size_t i = 0; i < 4; ++i) {
    futures.push_back(world.service->Submit(
        EditRequest::Edit(world.dataset.cases[i].edit, "alice")));
  }
  world.service->Drain();  // must return even though the service degraded

  EXPECT_EQ(world.service->health(),
            serving::ServiceHealth::kReadOnlyDegraded);
  size_t rejected = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    ASSERT_TRUE(result.ok());
    if (result->kind == EditResult::Kind::kRejected) ++rejected;
  }
  // The first batch degraded the service; everything after it (and the batch
  // itself) was rejected rather than stranded.
  EXPECT_EQ(rejected, futures.size());
  EXPECT_GE(world.service->statistics().Get(Ticker::kDegradedRejects), 1u);
}

// ----------------------------------------------- ConcurrentOneEdit shim ----

TEST(ConcurrentOneEditTest, EraseTripleAndStatisticsPassthrough) {
  Dataset dataset = BuildAmericanPoliticians(TinyOptions());
  LanguageModel model(Gpt2XlSimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  auto system = OneEditSystem::Create(&dataset.kg, &model, config);
  ASSERT_TRUE(system.ok());
  ConcurrentOneEdit concurrent(std::move(system).value());

  const EditCase& edit_case = dataset.cases.front();
  const NamedTriple truth{edit_case.edit.subject, edit_case.edit.relation,
                          edit_case.old_object};
  const auto erased = concurrent.EraseTriple(truth, "admin");
  ASSERT_TRUE(erased.ok());
  EXPECT_EQ(erased->kind, EditResult::Kind::kErased);
  EXPECT_EQ(concurrent.statistics().Get(Ticker::kErasures), 1u);

  const auto applied =
      concurrent.Apply(EditRequest::Edit(edit_case.edit, "alice"));
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(applied->applied());
}

}  // namespace
}  // namespace oneedit
