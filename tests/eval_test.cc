#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "eval/probe_eval.h"
#include "eval/report.h"
#include "util/string_util.h"

namespace oneedit {
namespace {

// ---------------------------------------------------------------- metrics ----

TEST(MetricsTest, AccumulatorMeansAndCounts) {
  MetricAccumulator accumulator;
  accumulator.Add(Metric::kReliability, true);
  accumulator.Add(Metric::kReliability, false);
  accumulator.Add(Metric::kLocality, true);
  EXPECT_DOUBLE_EQ(accumulator.Mean(Metric::kReliability), 0.5);
  EXPECT_EQ(accumulator.Count(Metric::kReliability), 2u);
  EXPECT_DOUBLE_EQ(accumulator.Mean(Metric::kLocality), 1.0);
  EXPECT_DOUBLE_EQ(accumulator.Mean(Metric::kReverse), 0.0);
  EXPECT_EQ(accumulator.Count(Metric::kSubReplace), 0u);
}

TEST(MetricsTest, AverageMatchesGraceExample) {
  // The paper's GRACE row: 1 + 1 + 0 + 0 + 0 -> 0.400.
  MetricScores scores;
  scores.reliability = 1.0;
  scores.locality = 1.0;
  EXPECT_DOUBLE_EQ(scores.Average(), 0.4);
}

TEST(MetricsTest, MetricNames) {
  EXPECT_EQ(MetricName(Metric::kOneHop), "One-Hop");
  EXPECT_EQ(MetricName(Metric::kSubReplace), "Sub-Replace");
}

// --------------------------------------------------------- ParseMethodSpec ----

TEST(MethodSpecTest, ParsesBaseMethods) {
  const auto spec = ParseMethodSpec("MEMIT");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->base, "MEMIT");
  EXPECT_FALSE(spec->oneedit);
  EXPECT_EQ(spec->display, "MEMIT");
}

TEST(MethodSpecTest, ParsesOneEditWrappers) {
  for (const char* raw : {"OneEdit (GRACE)", "OneEdit(GRACE)",
                          "oneedit( grace )"}) {
    const auto spec = ParseMethodSpec(raw);
    ASSERT_TRUE(spec.ok()) << raw;
    EXPECT_EQ(spec->base, "GRACE");
    EXPECT_TRUE(spec->oneedit);
    EXPECT_EQ(spec->display, "OneEdit (GRACE)");
  }
}

TEST(MethodSpecTest, RejectsUnknown) {
  EXPECT_FALSE(ParseMethodSpec("WISE").ok());
  EXPECT_FALSE(ParseMethodSpec("OneEdit (WISE)").ok());
  EXPECT_FALSE(ParseMethodSpec("").ok());
}

// -------------------------------------------------------------- probe eval ----

class ProbeEvalTest : public ::testing::Test {
 protected:
  ProbeEvalTest() : dataset_(BuildAmericanPoliticians(Options())),
                    model_(Gpt2XlSimConfig(), dataset_.vocab) {
    model_.Pretrain(dataset_.pretrain_facts);
  }
  static DatasetOptions Options() {
    DatasetOptions options;
    options.num_cases = 6;
    return options;
  }
  Dataset dataset_;
  LanguageModel model_;
};

TEST_F(ProbeEvalTest, DirectProbeOnPretrainedFact) {
  const NamedTriple& fact = dataset_.locality_pool.front();
  Probe probe{fact.subject, fact.relation, fact.object, 77};
  EXPECT_TRUE(EvalDirectProbe(model_, probe));
  Probe wrong = probe;
  wrong.expected = "nobody";
  EXPECT_FALSE(EvalDirectProbe(model_, wrong));
}

TEST_F(ProbeEvalTest, LocalityBaselineStableWithoutEdits) {
  const NamedTriple& fact = dataset_.locality_pool.front();
  Probe probe{fact.subject, fact.relation, "", 91};
  const std::string baseline = LocalityBaseline(model_, probe);
  EXPECT_TRUE(EvalLocalityUnchanged(model_, probe, baseline));
  EXPECT_FALSE(EvalLocalityUnchanged(model_, probe, "someone else"));
}

TEST_F(ProbeEvalTest, OneHopAnswersThroughPretrainedChain) {
  // Pick a case's one-hop probe but point it at the OLD object — the chain
  // is then fully pretrained and should mostly succeed.
  size_t successes = 0;
  size_t total = 0;
  for (const EditCase& edit_case : dataset_.cases) {
    for (HopProbe probe : edit_case.one_hop) {
      const auto old_id = dataset_.kg.LookupEntity(edit_case.old_object);
      const auto r2 = dataset_.kg.schema().Lookup(probe.r2);
      if (!old_id.ok() || !r2.ok()) continue;
      const auto expected = dataset_.kg.ObjectOf(*old_id, *r2);
      if (!expected.has_value()) continue;
      probe.expected = dataset_.kg.EntityName(*expected);
      successes += EvalOneHopProbe(model_, dataset_.kg, probe);
      ++total;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(successes, total / 2);
}

// ----------------------------------------------------------------- harness ----

TEST(HarnessTest, GraceProfileOnSmallRun) {
  Harness harness(
      [] {
        DatasetOptions options;
        options.num_cases = 6;
        return BuildAmericanPoliticians(options);
      },
      Gpt2XlSimConfig());
  RunOptions options;
  options.max_cases = 6;
  const auto result = harness.Run(*ParseMethodSpec("GRACE"), options);
  ASSERT_TRUE(result.ok());
  // GRACE's signature profile: perfect reliability + locality, zero
  // portability.
  EXPECT_DOUBLE_EQ(result->scores.reliability, 1.0);
  EXPECT_DOUBLE_EQ(result->scores.locality, 1.0);
  EXPECT_DOUBLE_EQ(result->scores.reverse, 0.0);
  EXPECT_DOUBLE_EQ(result->scores.sub_replace, 0.0);
  EXPECT_EQ(result->cases, 6u);
  EXPECT_EQ(result->edits, 6u);
}

TEST(HarnessTest, OneEditBeatsBaseOnPortability) {
  Harness harness(
      [] {
        DatasetOptions options;
        options.num_cases = 8;
        return BuildAmericanPoliticians(options);
      },
      Gpt2XlSimConfig());
  RunOptions options;
  options.extraction_error_rate = 0.0;
  const auto base = harness.Run(*ParseMethodSpec("GRACE"), options);
  const auto wrapped = harness.Run(*ParseMethodSpec("OneEdit (GRACE)"), options);
  ASSERT_TRUE(base.ok() && wrapped.ok());
  EXPECT_GT(wrapped->scores.reverse, base->scores.reverse + 0.5);
  EXPECT_GT(wrapped->scores.sub_replace, base->scores.sub_replace + 0.5);
  EXPECT_GT(wrapped->scores.Average(), base->scores.Average());
  EXPECT_GT(wrapped->modeled_vram_gb, base->modeled_vram_gb);  // interpreter
}

TEST(HarnessTest, DeterministicAcrossRuns) {
  Harness harness(
      [] {
        DatasetOptions options;
        options.num_cases = 5;
        return BuildAmericanPoliticians(options);
      },
      Gpt2XlSimConfig());
  RunOptions options;
  const auto first = harness.Run(*ParseMethodSpec("MEMIT"), options);
  const auto second = harness.Run(*ParseMethodSpec("MEMIT"), options);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_DOUBLE_EQ(first->scores.reliability, second->scores.reliability);
  EXPECT_DOUBLE_EQ(first->scores.locality, second->scores.locality);
  EXPECT_DOUBLE_EQ(first->scores.reverse, second->scores.reverse);
  EXPECT_DOUBLE_EQ(first->scores.one_hop, second->scores.one_hop);
  EXPECT_DOUBLE_EQ(first->scores.sub_replace, second->scores.sub_replace);
}

TEST(HarnessTest, RunsAreIsolated) {
  // A destructive FT run must not contaminate a following GRACE run.
  Harness harness(
      [] {
        DatasetOptions options;
        options.num_cases = 4;
        return BuildAmericanPoliticians(options);
      },
      Gpt2XlSimConfig());
  ASSERT_TRUE(harness.Run(*ParseMethodSpec("FT"), RunOptions{}).ok());
  const auto grace = harness.Run(*ParseMethodSpec("GRACE"), RunOptions{});
  ASSERT_TRUE(grace.ok());
  EXPECT_DOUBLE_EQ(grace->scores.locality, 1.0);
}

TEST(HarnessTest, MultiUserTargetsFinalObject) {
  Harness harness(
      [] {
        DatasetOptions options;
        options.num_cases = 4;
        return BuildAmericanPoliticians(options);
      },
      Gpt2XlSimConfig());
  RunOptions options;
  options.users = 3;
  options.extraction_error_rate = 0.0;
  const auto result = harness.Run(*ParseMethodSpec("OneEdit (MEMIT)"), options);
  ASSERT_TRUE(result.ok());
  // Three edits per case were applied...
  EXPECT_EQ(result->edits, 3u * result->cases);
  // ...and reliability against the FINAL object stays high thanks to
  // rollback-based conflict resolution.
  EXPECT_GT(result->scores.reliability, 0.7);
  EXPECT_GT(result->cache_hits, 0u);
}

TEST(HarnessTest, CostModelSecondsPopulated) {
  Harness harness(
      [] {
        DatasetOptions options;
        options.num_cases = 3;
        return BuildAmericanPoliticians(options);
      },
      GptJSimConfig());
  const auto result = harness.Run(*ParseMethodSpec("MEMIT"), RunOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->modeled_edit_seconds, 5.0);
  EXPECT_GT(result->measured_edit_seconds, 0.0);
  EXPECT_LT(result->measured_edit_seconds, 5.0);  // simulation is fast
}


TEST(ReportTest, CsvRowMatchesHeaderArity) {
  HarnessResult result;
  result.method = "OneEdit (MEMIT)";
  result.dataset = "american_politicians";
  result.model = "GPT-J-6B(sim)";
  result.cases = 10;
  result.edits = 10;
  result.scores.reliability = 0.95;
  const std::string header = ResultsCsvHeader();
  const std::string row = ResultToCsvRow(result);
  const size_t header_fields = StrSplit(header, ',').size();
  EXPECT_EQ(StrSplit(row, ',').size(), header_fields);
  EXPECT_NE(row.find("OneEdit (MEMIT)"), std::string::npos);
}

TEST(ReportTest, CsvEscapesCommasAndQuotes) {
  HarnessResult result;
  result.method = "method, with \"quotes\"";
  const std::string row = ResultToCsvRow(result);
  EXPECT_NE(row.find("\"method, with \"\"quotes\"\"\""), std::string::npos);
}

TEST(ReportTest, WriteCsvRoundTrip) {
  const std::string path = testing::TempDir() + "/oneedit_results.csv";
  HarnessResult result;
  result.method = "MEMIT";
  result.dataset = "d";
  result.model = "m";
  ASSERT_TRUE(WriteResultsCsv({result, result}, path).ok());
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 3u);  // header + 2 rows
  std::remove(path.c_str());
}

TEST(HarnessTest, LifelongProtocolAccumulatesEdits) {
  Harness harness(
      [] {
        DatasetOptions options;
        options.num_cases = 8;
        return BuildAmericanPoliticians(options);
      },
      Gpt2XlSimConfig());
  RunOptions options;
  options.lifelong = true;
  options.max_cases = 8;
  options.extraction_error_rate = 0.0;
  // GRACE is edit-count invariant under the lifelong protocol.
  const auto grace = harness.Run(*ParseMethodSpec("GRACE"), options);
  ASSERT_TRUE(grace.ok());
  EXPECT_EQ(grace->edits, 8u);
  EXPECT_DOUBLE_EQ(grace->scores.reliability, 1.0);
  EXPECT_DOUBLE_EQ(grace->scores.locality, 1.0);
  // OneEdit (GRACE) additionally carries portability through the sequence.
  const auto wrapped =
      harness.Run(*ParseMethodSpec("OneEdit (GRACE)"), options);
  ASSERT_TRUE(wrapped.ok());
  EXPECT_GT(wrapped->scores.reverse, 0.8);
  EXPECT_DOUBLE_EQ(wrapped->scores.locality, 1.0);
}

}  // namespace
}  // namespace oneedit
