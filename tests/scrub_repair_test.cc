// Tests for the storage-fault-tolerance subsystem (docs/durability.md):
// the Env storage primitives (directory fsync, free-space, listing,
// truncation), the injected disk budget and the ENOSPC degradation ladder,
// stale *.tmp sweeping, salvage recovery around mid-file WAL corruption,
// the background integrity scrubber — including a bit-flip-at-every-byte-
// offset property test — and replica-assisted repair of a rotten WAL
// region or checkpoint image over the replication wire.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "durability/checkpoint.h"
#include "durability/edit_wal.h"
#include "durability/env.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "durability/scrubber.h"
#include "replication/repair.h"
#include "replication/wire.h"
#include "serving/edit_service.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::EditWal;
using durability::EditWalRecord;
using durability::Env;
using durability::FaultInjectingEnv;
using durability::ScrubFinding;
using durability::ScrubOptions;
using durability::Scrubber;
using replication::DecodeMessage;
using replication::FetchRangeRequest;
using replication::MessageType;
using replication::RepairReply;
using replication::RepairTarget;
using serving::EditService;
using serving::EditServiceOptions;
using serving::ReplicationRole;
using serving::ServiceHealth;
using serving::Snapshot;

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool WaitFor(const std::function<bool()>& done,
             std::chrono::milliseconds deadline =
                 std::chrono::milliseconds(15000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

/// A pristine pre-edit system (no service): recovery and manager-level
/// tests drive the DurabilityManager against it directly.
struct World {
  World()
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    auto created =
        OneEditSystem::Create(&dataset.kg, model.get(), GraceConfig());
    EXPECT_TRUE(created.ok());
    system = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<OneEditSystem> system;
};

/// One service node, optionally replicated; `tweak` adjusts options (heal
/// cadence, scrub, repair listener) before Create.
struct Node {
  Node(const std::string& dir_name, DurabilityManager* durability,
       const std::function<void(EditServiceOptions*)>& tweak = {})
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    (void)dir_name;
    model->Pretrain(dataset.pretrain_facts);
    EditServiceOptions options;
    options.durability = durability;
    options.replication.poll_interval = std::chrono::milliseconds(5);
    if (tweak) tweak(&options);
    auto created =
        EditService::Create(&dataset.kg, model.get(), GraceConfig(), options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  uint16_t replication_port() const {
    const auto* server = service->replication_server();
    return server == nullptr ? 0 : server->port();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

// ------------------------------------------------- Env storage primitives ----

TEST(StorageEnvTest, SyncDirListDirTruncateAndFreeSpace) {
  const std::string dir = TempDirFor("oneedit_storage_env");
  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDir(dir).ok());
  std::remove((dir + "/a.dat").c_str());
  std::remove((dir + "/b.tmp").c_str());
  WriteFile(dir + "/a.dat", "hello");
  WriteFile(dir + "/b.tmp", "x");

  std::vector<std::string> entries;
  ASSERT_TRUE(env->ListDir(dir, &entries).ok());
  EXPECT_NE(std::find(entries.begin(), entries.end(), "a.dat"),
            entries.end());
  EXPECT_NE(std::find(entries.begin(), entries.end(), "b.tmp"),
            entries.end());
  for (const std::string& entry : entries) {
    EXPECT_NE(entry, ".");
    EXPECT_NE(entry, "..");
  }
  EXPECT_FALSE(env->ListDir(dir + "/no_such_dir", &entries).ok());

  EXPECT_TRUE(env->SyncDir(dir).ok());
  EXPECT_FALSE(env->SyncDir(dir + "/no_such_dir").ok());

  const auto free_bytes = env->FreeDiskSpace(dir);
  ASSERT_TRUE(free_bytes.ok()) << free_bytes.status().ToString();
  EXPECT_GT(*free_bytes, 0u);

  ASSERT_TRUE(env->TruncateFile(dir + "/a.dat", 2).ok());
  const auto size = env->FileSize(dir + "/a.dat");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 2u);
  EXPECT_EQ(ReadFile(dir + "/a.dat"), "he");

  std::remove((dir + "/a.dat").c_str());
  std::remove((dir + "/b.tmp").c_str());
}

// ----------------------------------------------------- injected disk budget ----

TEST(DiskBudgetTest, BudgetExhaustsThenFreesWithoutLatching) {
  const std::string dir = TempDirFor("oneedit_disk_budget");
  FaultInjectingEnv fault(Env::Default());
  ASSERT_TRUE(fault.CreateDir(dir).ok());
  const std::string path = dir + "/budget.dat";
  std::remove(path.c_str());

  fault.SetDiskBudget(8);
  auto file = fault.NewWritableFile(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("12345").ok());
  EXPECT_EQ(fault.disk_budget(), 3);

  // The injected budget doubles as the reported free space.
  const auto reported = fault.FreeDiskSpace(dir);
  ASSERT_TRUE(reported.ok());
  EXPECT_EQ(*reported, 3u);

  // The next append cannot be covered: a typed, non-latching full disk.
  const Status full = (*file)->Append("6789");
  EXPECT_TRUE(full.IsResourceExhausted()) << full.ToString();

  // Freed space makes writes succeed again — no crash latch.
  fault.AddDiskBudget(64);
  EXPECT_TRUE((*file)->Append("6789").ok());
  ASSERT_TRUE((*file)->Close().ok());

  fault.SetDiskBudget(-1);
  const auto real_free = fault.FreeDiskSpace(dir);
  ASSERT_TRUE(real_free.ok());
  EXPECT_GT(*real_free, 0u);
  std::remove(path.c_str());
}

TEST(DiskBudgetTest, MinFreeBytesPreflightShedsWritesUpFront) {
  const std::string dir = TempDirFor("oneedit_min_free");
  DurabilityOptions opts;
  opts.dir = dir;
  // A budget no real filesystem can satisfy: every journal write must be
  // refused by the preflight, before any byte reaches the WAL.
  opts.min_free_bytes = ~0ull / 2;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());

  World live;
  const EditCase& c = live.dataset.cases[0];
  const Status shed = (*mgr)->LogBatch({EditRequest::Edit(c.edit, "alice")},
                                       EditingMethodKind::kGrace,
                                       &live.system->statistics());
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed.ToString();
  EXPECT_EQ((*mgr)->committed_sequence(), 0u);
  EXPECT_GE(live.system->statistics().Get(Ticker::kEnospcRejects), 1u);
  const auto wal_size = Env::Default()->FileSize((*mgr)->wal_path());
  ASSERT_TRUE(wal_size.ok());
  EXPECT_EQ(*wal_size, 0u);
}

TEST(DiskFullServiceTest, EnospcDegradesServesReadsHealsAndLosesNothing) {
  const std::string dir = TempDirFor("oneedit_svc_enospc");
  FaultInjectingEnv fault(Env::Default());
  DurabilityOptions opts;
  opts.dir = dir;
  opts.env = &fault;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());

  Node node("oneedit_svc_enospc", mgr->get(), [](EditServiceOptions* o) {
    o->self_heal.heal_probe_interval = std::chrono::milliseconds(10);
  });
  ASSERT_EQ(node.service->health(), ServiceHealth::kHealthy);
  const EditCase& first = node.dataset.cases[0];
  const EditCase& second = node.dataset.cases[1];
  const EditCase& third = node.dataset.cases[2];

  const auto acked =
      node.service->SubmitAndWait(EditRequest::Edit(first.edit, "alice"));
  ASSERT_TRUE(acked.ok());
  ASSERT_TRUE(acked->applied());

  // The disk fills: the write is shed as a typed rejection, never an ack.
  fault.SetDiskBudget(0);
  const auto shed =
      node.service->SubmitAndWait(EditRequest::Edit(second.edit, "bob"));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->kind, EditResult::Kind::kRejected);
  // The heal probe may be mid-flight (kHalfOpenProbing); what matters is
  // that the service is out of full service until the disk frees.
  EXPECT_NE(node.service->health(), ServiceHealth::kHealthy);
  EXPECT_GE(node.service->statistics().Get(Ticker::kEnospcRejects), 1u);

  // Reads keep serving the pre-shed state while degraded.
  const Snapshot degraded_view = *node.service->GetSnapshot();
  EXPECT_EQ(degraded_view.Ask(first.edit.subject, first.edit.relation)->entity,
            first.edit.object);

  // Space frees: the heal probe's checkpoint succeeds and the service
  // climbs back to healthy on its own.
  fault.SetDiskBudget(-1);
  ASSERT_TRUE(WaitFor([&] {
    return node.service->health() == ServiceHealth::kHealthy;
  })) << "service stuck degraded after the disk freed";

  const auto after =
      node.service->SubmitAndWait(EditRequest::Edit(third.edit, "carol"));
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE(after->applied());
  node.service.reset();

  // Zero acknowledged loss: a pristine process recovers both acked edits.
  DurabilityOptions ropts;
  ropts.dir = dir;
  auto rmgr = DurabilityManager::Open(ropts);
  ASSERT_TRUE(rmgr.ok());
  World rebooted;
  const auto report = (*rmgr)->Recover(rebooted.system.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->wal_corruption_detected);
  EXPECT_EQ(
      rebooted.system->Ask(first.edit.subject, first.edit.relation).entity,
      first.edit.object);
  EXPECT_EQ(
      rebooted.system->Ask(third.edit.subject, third.edit.relation).entity,
      third.edit.object);
}

// ------------------------------------------------------- stale tmp sweeping ----

TEST(TmpSweepTest, StaleTmpFilesSweptAtOpen) {
  const std::string dir = TempDirFor("oneedit_tmp_sweep");
  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDir(dir).ok());
  std::remove((dir + "/old.tmp").c_str());
  std::remove((dir + "/keep.dat").c_str());
  WriteFile(dir + "/checkpoint.oedc.tmp", "half-written checkpoint");
  WriteFile(dir + "/old.tmp", "leaked");
  WriteFile(dir + "/keep.dat", "not a tmp");

  DurabilityOptions opts;
  opts.dir = dir;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());
  EXPECT_EQ((*mgr)->tmp_files_swept(), 2u);
  EXPECT_FALSE(env->FileExists(dir + "/checkpoint.oedc.tmp"));
  EXPECT_FALSE(env->FileExists(dir + "/old.tmp"));
  EXPECT_TRUE(env->FileExists(dir + "/keep.dat"));

  // The serving layer surfaces the sweep as a ticker.
  Node node("oneedit_tmp_sweep", mgr->get());
  EXPECT_EQ(node.service->statistics().Get(Ticker::kTmpFilesSwept), 2u);
  std::remove((dir + "/keep.dat").c_str());
}

// ------------------------------------------------------- salvage recovery ----

TEST(SalvageRecoveryTest, MidFileCorruptionSalvagesPrefixAndReportsLoss) {
  const std::string dir = TempDirFor("oneedit_salvage");
  uint64_t frame1_end = 0;
  uint64_t frame2_end = 0;
  {
    DurabilityOptions opts;
    opts.dir = dir;
    opts.checkpoint_interval = 0;  // keep everything in the journal
    auto mgr = DurabilityManager::Open(opts);
    ASSERT_TRUE(mgr.ok());
    World live;
    for (size_t i = 0; i < 3; ++i) {
      const EditCase& c = live.dataset.cases[i];
      ASSERT_TRUE((*mgr)
                      ->LogBatch({EditRequest::Edit(c.edit, "alice")},
                                 EditingMethodKind::kGrace,
                                 &live.system->statistics())
                      .ok());
      ASSERT_TRUE(live.system->EditTriple(c.edit, "alice").ok());
      const auto size = Env::Default()->FileSize((*mgr)->wal_path());
      ASSERT_TRUE(size.ok());
      if (i == 0) frame1_end = *size;
      if (i == 1) frame2_end = *size;
    }
  }

  // Bit-rot lands mid-file, inside record 2's frame: recovery must salvage
  // record 1, abandon the rest, and say so.
  const std::string wal_path = dir + "/edits.wal";
  std::string bytes = ReadFile(wal_path);
  ASSERT_GT(frame2_end, frame1_end);
  const uint64_t flip_at = frame1_end + (frame2_end - frame1_end) / 2;
  bytes[flip_at] ^= 0x01;
  WriteFile(wal_path, bytes);

  DurabilityOptions ropts;
  ropts.dir = dir;
  auto rmgr = DurabilityManager::Open(ropts);
  ASSERT_TRUE(rmgr.ok());
  World rebooted;
  const auto report = (*rmgr)->Recover(rebooted.system.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->wal_corruption_detected);
  EXPECT_EQ(report->wal_corrupt_offset, frame1_end);
  EXPECT_GT(report->wal_lost_bytes, 0u);
  EXPECT_EQ(report->last_sequence, 1u);
  EXPECT_EQ(report->replayed_records, 1u);

  const EditCase& salvaged = rebooted.dataset.cases[0];
  const EditCase& lost = rebooted.dataset.cases[1];
  EXPECT_EQ(
      rebooted.system->Ask(salvaged.edit.subject, salvaged.edit.relation)
          .entity,
      salvaged.edit.object);
  EXPECT_NE(
      rebooted.system->Ask(lost.edit.subject, lost.edit.relation).entity,
      lost.edit.object);
}

TEST(SalvageRecoveryTest, ServiceStartsDegradedAfterSalvageThenAutoHeals) {
  const std::string dir = TempDirFor("oneedit_salvage_svc");
  {
    DurabilityOptions opts;
    opts.dir = dir;
    opts.checkpoint_interval = 0;
    auto mgr = DurabilityManager::Open(opts);
    ASSERT_TRUE(mgr.ok());
    World live;
    for (size_t i = 0; i < 3; ++i) {
      const EditCase& c = live.dataset.cases[i];
      ASSERT_TRUE((*mgr)
                      ->LogBatch({EditRequest::Edit(c.edit, "alice")},
                                 EditingMethodKind::kGrace,
                                 &live.system->statistics())
                      .ok());
      ASSERT_TRUE(live.system->EditTriple(c.edit, "alice").ok());
    }
  }
  const std::string wal_path = dir + "/edits.wal";
  std::string bytes = ReadFile(wal_path);
  bytes[bytes.size() / 2] ^= 0x20;  // mid-file, inside some frame
  WriteFile(wal_path, bytes);

  // With auto-heal off the degraded start is observable: the salvage
  // happened, reads serve the salvaged prefix, writes are shed.
  {
    DurabilityOptions opts;
    opts.dir = dir;
    auto mgr = DurabilityManager::Open(opts);
    ASSERT_TRUE(mgr.ok());
    Node node("oneedit_salvage_svc", mgr->get(), [](EditServiceOptions* o) {
      o->self_heal.auto_heal = false;
    });
    EXPECT_EQ(node.service->health(), ServiceHealth::kReadOnlyDegraded);
    EXPECT_TRUE(node.service->recovery_report().wal_corruption_detected);
    const auto shed = node.service->SubmitAndWait(
        EditRequest::Edit(node.dataset.cases[5].edit, "bob"));
    ASSERT_TRUE(shed.ok());
    EXPECT_EQ(shed->kind, EditResult::Kind::kRejected);
    EXPECT_TRUE(node.service->GetSnapshot().ok());
  }

  // With auto-heal on, the probe's checkpoint seals the salvaged state and
  // the service returns to full service: writes accepted, nothing wedged.
  DurabilityOptions opts;
  opts.dir = dir;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());
  Node node("oneedit_salvage_svc", mgr->get(), [](EditServiceOptions* o) {
    o->self_heal.heal_probe_interval = std::chrono::milliseconds(10);
  });
  ASSERT_TRUE(WaitFor([&] {
    return node.service->health() == ServiceHealth::kHealthy;
  })) << "salvage-degraded service did not auto-heal";
  const auto accepted = node.service->SubmitAndWait(
      EditRequest::Edit(node.dataset.cases[5].edit, "bob"));
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(accepted->applied());
}

// ------------------------------------------------------ integrity scrubber ----

/// Journal three single-record batches through `mgr` and apply them to
/// `live`; returns the committed head (3).
uint64_t LogThree(DurabilityManager* mgr, World* live) {
  for (size_t i = 0; i < 3; ++i) {
    const EditCase& c = live->dataset.cases[i];
    EXPECT_TRUE(mgr->LogBatch({EditRequest::Edit(c.edit, "alice")},
                              EditingMethodKind::kGrace,
                              &live->system->statistics())
                    .ok());
    EXPECT_TRUE(live->system->EditTriple(c.edit, "alice").ok());
  }
  return mgr->committed_sequence();
}

TEST(ScrubberTest, CleanJournalScrubsClean) {
  const std::string dir = TempDirFor("oneedit_scrub_clean");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_interval = 0;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());
  World live;
  ASSERT_EQ(LogThree(mgr->get(), &live), 3u);

  ScrubOptions sopts;
  sopts.max_bytes_per_second = 0;  // unthrottled in tests
  Scrubber scrubber(mgr->get(), &live.system->statistics(), sopts, nullptr);
  EXPECT_TRUE(scrubber.ScrubOnce().empty());
  EXPECT_EQ(scrubber.passes(), 1u);
  EXPECT_EQ(scrubber.corruptions_found(), 0u);
  EXPECT_EQ(scrubber.last_finding(), "");
  EXPECT_EQ(live.system->statistics().Get(Ticker::kScrubPasses), 1u);
  EXPECT_EQ(live.system->statistics().Get(Ticker::kScrubCorruptionsFound),
            0u);
}

TEST(ScrubberTest, DetectsBitFlipAtEveryByteOffset) {
  const std::string dir = TempDirFor("oneedit_scrub_every_offset");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_interval = 0;  // coverage must come from the journal alone
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());
  World live;
  ASSERT_EQ(LogThree(mgr->get(), &live), 3u);

  const std::string wal_path = (*mgr)->wal_path();
  const std::string pristine = ReadFile(wal_path);
  ASSERT_GT(pristine.size(), 0u);

  ScrubOptions sopts;
  sopts.max_bytes_per_second = 0;
  Scrubber scrubber(mgr->get(), nullptr, sopts, nullptr);

  // Property: a byte flipped ANYWHERE in the journal is detected — frame
  // CRCs catch mid-log rot directly, and a flip in the final frame (which
  // frames alone cannot tell from a torn tail) is caught by the
  // committed-coverage cross-check.
  for (size_t offset = 0; offset < pristine.size(); ++offset) {
    std::string corrupted = pristine;
    corrupted[offset] ^= 0x40;
    WriteFile(wal_path, corrupted);
    const std::vector<ScrubFinding> findings = scrubber.ScrubOnce();
    EXPECT_FALSE(findings.empty())
        << "bit flip at byte " << offset << " of " << pristine.size()
        << " went undetected";
    if (!findings.empty()) {
      EXPECT_EQ(findings.front().target, ScrubFinding::Target::kWal);
    }
  }
  EXPECT_GE(scrubber.corruptions_found(), pristine.size());

  // Restored journal scrubs clean and clears the sticky finding line.
  WriteFile(wal_path, pristine);
  EXPECT_TRUE(scrubber.ScrubOnce().empty());
  EXPECT_EQ(scrubber.last_finding(), "");
}

TEST(ScrubberTest, DetectsCheckpointRotAfterReRead) {
  const std::string dir = TempDirFor("oneedit_scrub_ckpt");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_interval = 0;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());
  World live;
  ASSERT_EQ(LogThree(mgr->get(), &live), 3u);
  ASSERT_TRUE(
      (*mgr)->Checkpoint(*live.system, &live.system->statistics()).ok());

  const std::string ckpt_path = (*mgr)->checkpoint_path();
  std::string bytes = ReadFile(ckpt_path);
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] ^= 0x08;
  WriteFile(ckpt_path, bytes);

  ScrubOptions sopts;
  sopts.max_bytes_per_second = 0;
  Scrubber scrubber(mgr->get(), &live.system->statistics(), sopts, nullptr);
  const std::vector<ScrubFinding> findings = scrubber.ScrubOnce();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().target, ScrubFinding::Target::kCheckpoint);
  EXPECT_NE(scrubber.last_finding(), "");
  EXPECT_GE(live.system->statistics().Get(Ticker::kScrubCorruptionsFound),
            1u);
}

TEST(ScrubberTest, BackgroundThreadScrubsOnItsOwnAndReportsViaCallback) {
  const std::string dir = TempDirFor("oneedit_scrub_thread");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_interval = 0;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());
  World live;
  ASSERT_EQ(LogThree(mgr->get(), &live), 3u);

  // Seed rot BEFORE the thread starts so its first pass must find it.
  const std::string wal_path = (*mgr)->wal_path();
  std::string bytes = ReadFile(wal_path);
  bytes[bytes.size() / 3] ^= 0x01;
  WriteFile(wal_path, bytes);

  std::atomic<uint64_t> reported{0};
  ScrubOptions sopts;
  sopts.enabled = true;
  sopts.interval = std::chrono::milliseconds(5);
  sopts.max_bytes_per_second = 0;
  Scrubber scrubber(mgr->get(), &live.system->statistics(), sopts,
                    [&](const ScrubFinding& finding) {
                      EXPECT_EQ(finding.target, ScrubFinding::Target::kWal);
                      reported.fetch_add(1);
                    });
  scrubber.Start();
  EXPECT_TRUE(WaitFor([&] { return reported.load() >= 2; }))
      << "background scrubber never reported the seeded rot";
  scrubber.Stop();
  EXPECT_GE(scrubber.passes(), 2u);
  EXPECT_GE(live.system->statistics().Get(Ticker::kScrubPasses), 2u);
}

// --------------------------------------------------------- repair protocol ----

TEST(RepairWireTest, FetchRangeAndRepairRoundTrip) {
  FetchRangeRequest fetch;
  fetch.target = RepairTarget::kWal;
  fetch.from_sequence = 3;
  fetch.through_sequence = 9;
  fetch.term = 2;
  const auto f = DecodeMessage(EncodeFetchRange(fetch));
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ASSERT_EQ(f->type, MessageType::kFetchRange);
  EXPECT_EQ(f->fetch.target, RepairTarget::kWal);
  EXPECT_EQ(f->fetch.from_sequence, 3u);
  EXPECT_EQ(f->fetch.through_sequence, 9u);
  EXPECT_EQ(f->fetch.term, 2u);

  RepairReply reply;
  reply.target = RepairTarget::kCheckpoint;
  reply.complete = 1;
  reply.first_sequence = 1;
  reply.last_sequence = 12;
  reply.term = 3;
  reply.bytes = std::string("raw \x00\xff image", 12);
  const auto r = DecodeMessage(EncodeRepair(reply));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->type, MessageType::kRepair);
  EXPECT_EQ(r->repair.target, RepairTarget::kCheckpoint);
  EXPECT_EQ(r->repair.complete, 1);
  EXPECT_EQ(r->repair.last_sequence, 12u);
  EXPECT_EQ(r->repair.term, 3u);
  EXPECT_EQ(r->repair.bytes, reply.bytes);
}

TEST(RepairWireTest, RejectsForgedTargetBitFlipAndTruncation) {
  FetchRangeRequest forged;
  forged.target = static_cast<RepairTarget>(9);
  EXPECT_EQ(DecodeMessage(EncodeFetchRange(forged)).status().code(),
            StatusCode::kCorruption);

  RepairReply reply;
  reply.complete = 1;
  reply.bytes = "frames";
  std::string frame = EncodeRepair(reply);
  std::string flipped = frame;
  flipped[frame.size() - 1] ^= 0x10;
  EXPECT_EQ(DecodeMessage(flipped).status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(DecodeMessage(frame.substr(0, frame.size() - 2)).ok());
  EXPECT_FALSE(DecodeMessage(frame + "x").ok());
}

TEST(ReplicaRepairTest, ServerServesCommittedWalRegionAndFencesStaleTerms) {
  const std::string dir = TempDirFor("oneedit_repair_server");
  DurabilityOptions opts;
  opts.dir = dir;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());
  Node node("oneedit_repair_server", mgr->get(), [](EditServiceOptions* o) {
    o->replication.role = ReplicationRole::kPrimary;
  });
  ASSERT_NE(node.replication_port(), 0);
  for (size_t i = 0; i < 4; ++i) {
    const auto result = node.service->SubmitAndWait(
        EditRequest::Edit(node.dataset.cases[i].edit, "alice"));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->applied());
  }
  const uint64_t committed = (*mgr)->committed_sequence();
  ASSERT_GE(committed, 4u);

  // A full in-range fetch ships the byte-identical frame region.
  FetchRangeRequest fetch;
  fetch.target = RepairTarget::kWal;
  fetch.from_sequence = 1;
  fetch.through_sequence = committed;
  fetch.term = (*mgr)->primary_term();
  const auto reply =
      replication::FetchFromPeer(node.replication_port(), fetch);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->complete, 1);
  EXPECT_EQ(reply->first_sequence, 1u);
  EXPECT_EQ(reply->last_sequence, committed);
  EXPECT_EQ(reply->bytes, ReadFile((*mgr)->wal_path()));

  // Beyond the commit point: refused as incomplete, never half-shipped.
  FetchRangeRequest beyond = fetch;
  beyond.through_sequence = committed + 5;
  const auto refused =
      replication::FetchFromPeer(node.replication_port(), beyond);
  ASSERT_TRUE(refused.ok()) << refused.status().ToString();
  EXPECT_EQ(refused->complete, 0);

  // A requester behind on terms is fenced, exactly like a stale poll.
  (*mgr)->AdoptTerm(7);
  FetchRangeRequest stale = fetch;
  stale.term = 3;
  const auto fenced =
      replication::FetchFromPeer(node.replication_port(), stale);
  EXPECT_FALSE(fenced.ok());
  EXPECT_EQ(fenced.status().code(), StatusCode::kFailedPrecondition);
}

// ------------------------------------------------ replica-assisted repair ----

/// A primary+follower pair for repair tests. The large checkpoint interval
/// keeps the whole history in both journals, so they stay byte-identical —
/// the strongest possible repair assertion.
struct Pair {
  Pair(const std::string& tag, uint64_t checkpoint_interval = 1000,
       bool follower_repair_listener = false)
      : primary_dir(TempDirFor(tag + "_p")), follower_dir(TempDirFor(tag + "_f")) {
    DurabilityOptions popts;
    popts.dir = primary_dir;
    popts.checkpoint_interval = checkpoint_interval;
    auto pmgr = DurabilityManager::Open(popts);
    EXPECT_TRUE(pmgr.ok());
    primary_mgr = std::move(*pmgr);
    primary = std::make_unique<Node>(
        tag + "_p", primary_mgr.get(), [](EditServiceOptions* o) {
          o->replication.role = ReplicationRole::kPrimary;
        });

    DurabilityOptions fopts;
    fopts.dir = follower_dir;
    fopts.checkpoint_interval = checkpoint_interval;
    auto fmgr = DurabilityManager::Open(fopts);
    EXPECT_TRUE(fmgr.ok());
    follower_mgr = std::move(*fmgr);
    const uint16_t port = primary->replication_port();
    follower = std::make_unique<Node>(
        tag + "_f", follower_mgr.get(),
        [port, follower_repair_listener](EditServiceOptions* o) {
          o->replication.role = ReplicationRole::kFollower;
          o->replication.primary_port = port;
          o->replication.enable_repair_listener = follower_repair_listener;
        });
  }

  /// Submits `n` edits on the primary and waits for the follower to apply
  /// them all; returns the committed head.
  uint64_t Converge(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const auto result = primary->service->SubmitAndWait(
          EditRequest::Edit(primary->dataset.cases[i].edit, "alice"));
      EXPECT_TRUE(result.ok());
      EXPECT_TRUE(result->applied());
    }
    const uint64_t head = primary->service->applied_sequence();
    EXPECT_TRUE(WaitFor([&] {
      return follower->service->applied_sequence() >= head;
    })) << "follower stuck at " << follower->service->applied_sequence();
    return head;
  }

  std::string primary_dir;
  std::string follower_dir;
  std::unique_ptr<DurabilityManager> primary_mgr;
  std::unique_ptr<DurabilityManager> follower_mgr;
  std::unique_ptr<Node> primary;
  std::unique_ptr<Node> follower;
};

TEST(ReplicaRepairTest, FollowerWalRepairedByteIdenticalFromPrimary) {
  Pair pair("oneedit_repair_fwal");
  const uint64_t head = pair.Converge(6);
  ASSERT_GE(head, 6u);
  const std::string primary_wal = ReadFile(pair.primary_mgr->wal_path());
  const std::string follower_wal = ReadFile(pair.follower_mgr->wal_path());
  ASSERT_EQ(primary_wal, follower_wal) << "journals diverged before the test";

  // Rot lands mid-journal on the replica.
  std::string corrupted = follower_wal;
  corrupted[corrupted.size() / 2] ^= 0x04;
  WriteFile(pair.follower_mgr->wal_path(), corrupted);

  // The scrubber finds it; the service repairs it from its primary (the
  // default peer for a follower) — byte-identical, zero acknowledged loss.
  ScrubOptions sopts;
  sopts.max_bytes_per_second = 0;
  Scrubber scrubber(pair.follower_mgr.get(),
                    &pair.follower->service->statistics(), sopts, nullptr);
  const std::vector<ScrubFinding> findings = scrubber.ScrubOnce();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().target, ScrubFinding::Target::kWal);

  const Status repaired =
      pair.follower->service->RepairCorruption(findings.front());
  ASSERT_TRUE(repaired.ok()) << repaired.ToString();
  EXPECT_EQ(ReadFile(pair.follower_mgr->wal_path()), primary_wal);
  EXPECT_TRUE(scrubber.ScrubOnce().empty());
  EXPECT_GE(
      pair.follower->service->statistics().Get(Ticker::kRepairsCompleted),
      1u);

  // The repaired replica restarts cleanly with every acknowledged edit.
  pair.follower->service.reset();
  pair.follower_mgr.reset();
  DurabilityOptions ropts;
  ropts.dir = pair.follower_dir;
  auto rmgr = DurabilityManager::Open(ropts);
  ASSERT_TRUE(rmgr.ok());
  World rebooted;
  const auto report = (*rmgr)->Recover(rebooted.system.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->wal_corruption_detected);
  EXPECT_EQ(report->last_sequence, head);
}

TEST(ReplicaRepairTest, PrimaryWalRepairedViaFollowerRepairListener) {
  Pair pair("oneedit_repair_pwal", /*checkpoint_interval=*/1000,
            /*follower_repair_listener=*/true);
  const uint64_t head = pair.Converge(6);
  ASSERT_GE(head, 6u);
  ASSERT_NE(pair.follower->service->repair_server(), nullptr);
  const uint16_t repair_port = pair.follower->service->repair_server()->port();
  ASSERT_NE(repair_port, 0);
  pair.primary->service->SetRepairPeers({repair_port});

  const std::string follower_wal = ReadFile(pair.follower_mgr->wal_path());
  std::string corrupted = ReadFile(pair.primary_mgr->wal_path());
  ASSERT_EQ(corrupted, follower_wal);
  corrupted[corrupted.size() / 3] ^= 0x80;
  WriteFile(pair.primary_mgr->wal_path(), corrupted);

  ScrubOptions sopts;
  sopts.max_bytes_per_second = 0;
  Scrubber scrubber(pair.primary_mgr.get(),
                    &pair.primary->service->statistics(), sopts, nullptr);
  const std::vector<ScrubFinding> findings = scrubber.ScrubOnce();
  ASSERT_EQ(findings.size(), 1u);

  const Status repaired =
      pair.primary->service->RepairCorruption(findings.front());
  ASSERT_TRUE(repaired.ok()) << repaired.ToString();
  EXPECT_EQ(ReadFile(pair.primary_mgr->wal_path()), follower_wal);
  EXPECT_TRUE(scrubber.ScrubOnce().empty());

  // The repaired primary keeps serving writes.
  const auto after = pair.primary->service->SubmitAndWait(
      EditRequest::Edit(pair.primary->dataset.cases[7].edit, "bob"));
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->applied());
}

TEST(ReplicaRepairTest, FollowerCheckpointRepairedFromPrimary) {
  // Small interval: the primary checkpoints and the late-joining follower
  // installs a snapshot, so BOTH sides hold a checkpoint image.
  const std::string primary_dir = TempDirFor("oneedit_repair_ckpt_p");
  DurabilityOptions popts;
  popts.dir = primary_dir;
  popts.checkpoint_interval = 4;
  auto pmgr = DurabilityManager::Open(popts);
  ASSERT_TRUE(pmgr.ok());
  Node primary("oneedit_repair_ckpt_p", pmgr->get(),
               [](EditServiceOptions* o) {
                 o->replication.role = ReplicationRole::kPrimary;
               });
  ASSERT_NE(primary.replication_port(), 0);
  for (size_t i = 0; i < 6; ++i) {
    const auto result = primary.service->SubmitAndWait(
        EditRequest::Edit(primary.dataset.cases[i].edit, "alice"));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->applied());
  }
  ASSERT_GT(primary.service->statistics().Get(Ticker::kCheckpoints), 0u);

  const std::string follower_dir = TempDirFor("oneedit_repair_ckpt_f");
  DurabilityOptions fopts;
  fopts.dir = follower_dir;
  fopts.checkpoint_interval = 4;
  auto fmgr = DurabilityManager::Open(fopts);
  ASSERT_TRUE(fmgr.ok());
  const uint16_t port = primary.replication_port();
  Node follower("oneedit_repair_ckpt_f", fmgr->get(),
                [port](EditServiceOptions* o) {
                  o->replication.role = ReplicationRole::kFollower;
                  o->replication.primary_port = port;
                });
  const uint64_t head = primary.service->applied_sequence();
  ASSERT_TRUE(WaitFor([&] {
    return follower.service->applied_sequence() >= head;
  }));
  ASSERT_TRUE(
      Env::Default()->FileExists((*fmgr)->checkpoint_path()));

  // Rot lands in the replica's checkpoint image.
  std::string bytes = ReadFile((*fmgr)->checkpoint_path());
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] ^= 0x02;
  WriteFile((*fmgr)->checkpoint_path(), bytes);

  ScrubOptions sopts;
  sopts.max_bytes_per_second = 0;
  Scrubber scrubber(fmgr->get(), &follower.service->statistics(), sopts,
                    nullptr);
  const std::vector<ScrubFinding> findings = scrubber.ScrubOnce();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings.front().target, ScrubFinding::Target::kCheckpoint);

  const Status repaired =
      follower.service->RepairCorruption(findings.front());
  ASSERT_TRUE(repaired.ok()) << repaired.ToString();
  EXPECT_TRUE(durability::VerifyCheckpointIntegrity((*fmgr)->checkpoint_path(),
                                                    nullptr)
                  .ok());
  EXPECT_TRUE(scrubber.ScrubOnce().empty());
  EXPECT_GE(follower.service->statistics().Get(Ticker::kRepairsCompleted),
            1u);

  // The repaired replica restarts with every acknowledged edit.
  follower.service.reset();
  fmgr->reset();
  DurabilityOptions ropts;
  ropts.dir = follower_dir;
  auto rmgr = DurabilityManager::Open(ropts);
  ASSERT_TRUE(rmgr.ok());
  World rebooted;
  const auto report = (*rmgr)->Recover(rebooted.system.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->last_sequence, head);
}

TEST(ReplicaRepairTest, StandaloneFallsBackToSealingLiveState) {
  const std::string dir = TempDirFor("oneedit_repair_fallback");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_interval = 0;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());
  Node node("oneedit_repair_fallback", mgr->get());
  for (size_t i = 0; i < 3; ++i) {
    const auto result = node.service->SubmitAndWait(
        EditRequest::Edit(node.dataset.cases[i].edit, "alice"));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->applied());
  }
  const uint64_t head = node.service->applied_sequence();

  std::string bytes = ReadFile((*mgr)->wal_path());
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFile((*mgr)->wal_path(), bytes);

  ScrubOptions sopts;
  sopts.max_bytes_per_second = 0;
  Scrubber scrubber(mgr->get(), &node.service->statistics(), sopts, nullptr);
  const std::vector<ScrubFinding> findings = scrubber.ScrubOnce();
  ASSERT_EQ(findings.size(), 1u);

  // No peers anywhere: the live state is still intact, so the repair seals
  // it into a fresh checkpoint — durable again, zero acknowledged loss.
  const Status repaired = node.service->RepairCorruption(findings.front());
  ASSERT_TRUE(repaired.ok()) << repaired.ToString();
  EXPECT_TRUE(scrubber.ScrubOnce().empty());
  EXPECT_GE(node.service->statistics().Get(Ticker::kRepairsCompleted), 1u);

  node.service.reset();
  mgr->reset();
  DurabilityOptions ropts;
  ropts.dir = dir;
  auto rmgr = DurabilityManager::Open(ropts);
  ASSERT_TRUE(rmgr.ok());
  World rebooted;
  const auto report = (*rmgr)->Recover(rebooted.system.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->wal_corruption_detected);
  EXPECT_EQ(report->last_sequence, head);
  for (size_t i = 0; i < 3; ++i) {
    const EditCase& c = rebooted.dataset.cases[i];
    EXPECT_EQ(rebooted.system->Ask(c.edit.subject, c.edit.relation).entity,
              c.edit.object);
  }
}

}  // namespace
}  // namespace oneedit
