// Tests for the crash-safety subsystem: the binary edit WAL (framing, torn
// tails, corruption), atomic whole-system checkpoints, startup recovery, and
// — the heart of the suite — a property test that injects a crash at every
// WAL/checkpoint failpoint of a scripted workload and asserts the recovered
// state is consistent (each slot holds the pre- or post-edit object, and no
// acknowledged edit is ever lost).

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/name_pool.h"
#include "durability/checkpoint.h"
#include "durability/edit_wal.h"
#include "durability/env.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "editing/editor.h"
#include "serving/edit_service.h"
#include "serving/self_healing.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::EditWal;
using durability::EditWalRecord;
using durability::Env;
using durability::FaultInjectingEnv;
using durability::RecoveryReport;
using durability::WalReplayStats;
using serving::EditService;
using serving::EditServiceOptions;
using serving::ServiceHealth;

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

EditWalRecord MakeRecord(uint64_t sequence, bool first,
                         const std::string& subject,
                         const std::string& object) {
  EditWalRecord record;
  record.sequence = sequence;
  record.first_in_batch = first;
  record.method = EditingMethodKind::kGrace;
  record.request = EditRequest::Edit({subject, "president", object}, "alice");
  return record;
}

// ---------------------------------------------------------------- EditWal ----

TEST(EditWalTest, AppendSyncReplayRoundTrip) {
  const std::string dir = TempDirFor("oneedit_ewal_rt");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/edits.wal";
  std::remove(path.c_str());
  {
    EditWal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(MakeRecord(1, true, "USA", "Trump")).ok());
    ASSERT_TRUE(wal.Append(MakeRecord(2, false, "France", "Macron")).ok());
    ASSERT_TRUE(wal.Sync().ok());
    EditWalRecord utterance;
    utterance.sequence = 3;
    utterance.method = EditingMethodKind::kGrace;
    utterance.request = EditRequest::Utterance("The sky is green", "bob");
    ASSERT_TRUE(wal.Append(utterance).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  std::vector<EditWalRecord> seen;
  const auto stats =
      EditWal::Replay(path, nullptr, [&](const EditWalRecord& record) {
        seen.push_back(record);
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->records, 3u);
  EXPECT_EQ(stats->last_sequence, 3u);
  EXPECT_EQ(stats->torn_bytes_dropped, 0u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].sequence, 1u);
  EXPECT_TRUE(seen[0].first_in_batch);
  EXPECT_EQ(seen[0].request.triple.subject, "USA");
  EXPECT_EQ(seen[0].request.triple.object, "Trump");
  EXPECT_EQ(seen[0].request.user, "alice");
  EXPECT_FALSE(seen[1].first_in_batch);
  EXPECT_EQ(seen[1].request.triple.subject, "France");
  EXPECT_EQ(seen[2].request.op, EditRequest::Op::kUtterance);
  EXPECT_EQ(seen[2].request.utterance, "The sky is green");
  EXPECT_EQ(seen[2].method, EditingMethodKind::kGrace);
  std::remove(path.c_str());
}

TEST(EditWalTest, ReplayToleratesTornTail) {
  const std::string dir = TempDirFor("oneedit_ewal_torn");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/edits.wal";
  std::remove(path.c_str());
  {
    EditWal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(MakeRecord(1, true, "USA", "Trump")).ok());
    ASSERT_TRUE(wal.Append(MakeRecord(2, true, "France", "Macron")).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  // Simulate a crash mid-append: half of record 3 reaches disk.
  const std::string tail = EditWal::Encode(MakeRecord(3, true, "UK", "May"));
  std::string bytes = ReadFile(path);
  bytes.append(tail.substr(0, tail.size() / 2));
  WriteFile(path, bytes);

  size_t count = 0;
  const auto stats = EditWal::Replay(
      path, nullptr, [&](const EditWalRecord&) {
        ++count;
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(stats->last_sequence, 2u);
  EXPECT_GT(stats->torn_bytes_dropped, 0u);
  std::remove(path.c_str());
}

TEST(EditWalTest, ReplayDetectsMidLogCorruption) {
  const std::string dir = TempDirFor("oneedit_ewal_corrupt");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/edits.wal";
  std::remove(path.c_str());
  {
    EditWal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(MakeRecord(1, true, "USA", "Trump")).ok());
    ASSERT_TRUE(wal.Append(MakeRecord(2, true, "France", "Macron")).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  // Flip a byte inside the FIRST record's payload: corruption that is not a
  // torn tail must fail loudly, not silently truncate the log.
  std::string bytes = ReadFile(path);
  bytes[10] ^= 0x01;
  WriteFile(path, bytes);
  const auto stats = EditWal::Replay(
      path, nullptr, [](const EditWalRecord&) { return Status::OK(); });
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(EditWalTest, MissingFileIsAnEmptyLog) {
  const auto stats = EditWal::Replay(
      testing::TempDir() + "/oneedit_no_such.wal", nullptr,
      [](const EditWalRecord&) { return Status::OK(); });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->records, 0u);
}

TEST(EditWalTest, ResetRotatesTheLog) {
  const std::string dir = TempDirFor("oneedit_ewal_reset");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/edits.wal";
  std::remove(path.c_str());
  EditWal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, true, "USA", "Trump")).ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Reset().ok());
  ASSERT_TRUE(wal.Append(MakeRecord(2, true, "France", "Macron")).ok());
  ASSERT_TRUE(wal.Sync().ok());
  std::vector<uint64_t> sequences;
  ASSERT_TRUE(EditWal::Replay(path, nullptr,
                              [&](const EditWalRecord& record) {
                                sequences.push_back(record.sequence);
                                return Status::OK();
                              })
                  .ok());
  // Record 1 rotated away; the log continues at the next sequence.
  ASSERT_EQ(sequences.size(), 1u);
  EXPECT_EQ(sequences[0], 2u);
  std::remove(path.c_str());
}

TEST(EditWalTest, ResetRecoversAfterFailedReopen) {
  const std::string dir = TempDirFor("oneedit_ewal_reset_fault");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/edits.wal";
  std::remove(path.c_str());
  FaultInjectingEnv fault(Env::Default());
  EditWal wal;
  ASSERT_TRUE(wal.Open(path, &fault).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, true, "USA", "Trump")).ok());
  ASSERT_TRUE(wal.Sync().ok());

  // The truncating reopen inside Reset fails: the old handle is already
  // gone, so the log ends up closed.
  fault.FailNext(1);
  ASSERT_FALSE(wal.Reset().ok());
  EXPECT_FALSE(wal.is_open());

  // Once I/O recovers, Reset must regain the handle rather than latching
  // into "not open" forever — this is the degraded service's heal path.
  ASSERT_TRUE(wal.Reset().ok());
  EXPECT_TRUE(wal.is_open());
  ASSERT_TRUE(wal.Append(MakeRecord(2, true, "France", "Macron")).ok());
  ASSERT_TRUE(wal.Sync().ok());
  std::vector<uint64_t> sequences;
  ASSERT_TRUE(EditWal::Replay(path, nullptr,
                              [&](const EditWalRecord& record) {
                                sequences.push_back(record.sequence);
                                return Status::OK();
                              })
                  .ok());
  ASSERT_EQ(sequences.size(), 1u);
  EXPECT_EQ(sequences[0], 2u);
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- cursor ----

TEST(EditWalCursorTest, TailsLiveWriterAcrossTornTail) {
  const std::string dir = TempDirFor("oneedit_ewal_cursor_tail");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/edits.wal";
  std::remove(path.c_str());

  // A cursor opened before the writer reads an empty log, not an error.
  EditWal::Cursor cursor(path, 1);
  EditWalRecord record;
  auto poll = cursor.Next(&record);
  ASSERT_TRUE(poll.ok()) << poll.status().ToString();
  EXPECT_EQ(*poll, EditWal::Cursor::Poll::kEndOfLog);

  EditWal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(1, true, "USA", "Trump")).ok());
  ASSERT_TRUE(wal.Append(MakeRecord(2, false, "France", "Macron")).ok());
  ASSERT_TRUE(wal.Sync().ok());

  for (uint64_t want : {1u, 2u}) {
    poll = cursor.Next(&record);
    ASSERT_TRUE(poll.ok()) << poll.status().ToString();
    ASSERT_EQ(*poll, EditWal::Cursor::Poll::kRecord);
    EXPECT_EQ(record.sequence, want);
  }
  poll = cursor.Next(&record);
  ASSERT_TRUE(poll.ok());
  EXPECT_EQ(*poll, EditWal::Cursor::Poll::kEndOfLog);

  // A half-written frame at the tail (a concurrent appender mid-write, or
  // a crash) reads as end-of-log — never as corruption...
  const std::string frame =
      EditWal::Encode(MakeRecord(3, true, "Germany", "Merkel"));
  ASSERT_TRUE(wal.AppendRaw(
                     std::string_view(frame).substr(0, frame.size() / 2))
                  .ok());
  ASSERT_TRUE(wal.Sync().ok());
  poll = cursor.Next(&record);
  ASSERT_TRUE(poll.ok()) << poll.status().ToString();
  EXPECT_EQ(*poll, EditWal::Cursor::Poll::kEndOfLog);

  // ...and once the appender finishes the frame, the cursor decodes it
  // from where it left off.
  ASSERT_TRUE(
      wal.AppendRaw(std::string_view(frame).substr(frame.size() / 2)).ok());
  ASSERT_TRUE(wal.Sync().ok());
  poll = cursor.Next(&record);
  ASSERT_TRUE(poll.ok()) << poll.status().ToString();
  ASSERT_EQ(*poll, EditWal::Cursor::Poll::kRecord);
  EXPECT_EQ(record.sequence, 3u);
  EXPECT_EQ(record.request.triple.subject, "Germany");
  std::remove(path.c_str());
}

TEST(EditWalCursorTest, StartSequenceSkipsEarlierRecords) {
  const std::string dir = TempDirFor("oneedit_ewal_cursor_skip");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/edits.wal";
  std::remove(path.c_str());
  EditWal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    ASSERT_TRUE(wal.Append(MakeRecord(seq, true, "USA", "Trump")).ok());
  }
  ASSERT_TRUE(wal.Sync().ok());

  EditWal::Cursor cursor(path, 3);
  EditWalRecord record;
  std::vector<uint64_t> sequences;
  while (true) {
    const auto poll = cursor.Next(&record);
    ASSERT_TRUE(poll.ok()) << poll.status().ToString();
    if (*poll != EditWal::Cursor::Poll::kRecord) break;
    sequences.push_back(record.sequence);
  }
  EXPECT_EQ(sequences, (std::vector<uint64_t>{3, 4}));
  std::remove(path.c_str());
}

TEST(EditWalCursorTest, ReportsRotationMidStream) {
  const std::string dir = TempDirFor("oneedit_ewal_cursor_rotate");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/edits.wal";
  std::remove(path.c_str());
  EditWal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_TRUE(wal.Append(MakeRecord(seq, true, "USA", "Trump")).ok());
  }
  ASSERT_TRUE(wal.Sync().ok());

  EditWal::Cursor cursor(path, 1);
  EditWalRecord record;
  auto poll = cursor.Next(&record);
  ASSERT_TRUE(poll.ok());
  ASSERT_EQ(*poll, EditWal::Cursor::Poll::kRecord);
  EXPECT_EQ(record.sequence, 1u);

  // The writer checkpoints and rotates: the file shrinks under the cursor.
  ASSERT_TRUE(wal.Reset().ok());
  ASSERT_TRUE(wal.Append(MakeRecord(4, true, "France", "Macron")).ok());
  ASSERT_TRUE(wal.Sync().ok());

  // Records 2 and 3 were committed and already buffered, so they are still
  // served; the shrink is then reported once so the reader can
  // resynchronize (the replication server re-decides snapshot-vs-tail),
  // and reading resumes from the head of the rotated log.
  bool rotated = false;
  std::vector<uint64_t> after;
  for (int i = 0; i < 8; ++i) {
    poll = cursor.Next(&record);
    ASSERT_TRUE(poll.ok()) << poll.status().ToString();
    if (*poll == EditWal::Cursor::Poll::kRotated) {
      rotated = true;
      continue;
    }
    if (*poll == EditWal::Cursor::Poll::kEndOfLog) break;
    after.push_back(record.sequence);
  }
  EXPECT_TRUE(rotated);
  EXPECT_EQ(after, (std::vector<uint64_t>{2, 3, 4}));
  std::remove(path.c_str());
}

TEST(EditWalCursorTest, CorruptionBeforeTailIsAnError) {
  const std::string dir = TempDirFor("oneedit_ewal_cursor_corrupt");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/edits.wal";
  std::remove(path.c_str());
  std::string first = EditWal::Encode(MakeRecord(1, true, "USA", "Trump"));
  const std::string second =
      EditWal::Encode(MakeRecord(2, true, "France", "Macron"));
  first[first.size() - 1] ^= 0x01;  // flip a payload bit in a NON-final frame
  WriteFile(path, first + second);

  EditWal::Cursor cursor(path, 1);
  EditWalRecord record;
  const auto poll = cursor.Next(&record);
  ASSERT_FALSE(poll.ok());
  EXPECT_EQ(poll.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// ------------------------------------------------------------ test worlds ----

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

/// A deterministic world: rebuilding with the same options reproduces the
/// exact pre-edit state, which is what a restarted process would boot from.
struct World {
  World()
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    auto created = OneEditSystem::Create(&dataset.kg, model.get(),
                                         GraceConfig());
    EXPECT_TRUE(created.ok());
    system = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<OneEditSystem> system;
};

// ------------------------------------------------------- system checkpoint ----

TEST(SystemCheckpointTest, RoundTripRestoresModelKgAndCache) {
  const std::string dir = TempDirFor("oneedit_sysckpt_rt");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/checkpoint.oedc";

  World original;
  const EditCase& a = original.dataset.cases[0];
  const EditCase& b = original.dataset.cases[1];
  ASSERT_TRUE(original.system->EditTriple(a.edit, "alice").ok());
  ASSERT_TRUE(original.system->EditTriple(b.edit, "bob").ok());
  durability::CheckpointState state;
  state.last_sequence = 2;
  state.kg_version = original.system->kg().version();
  ASSERT_TRUE(durability::SaveSystemCheckpoint(path, nullptr,
                                               *original.system, state)
                  .ok());

  World restored;
  const auto loaded =
      durability::LoadSystemCheckpoint(path, nullptr, restored.system.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->last_sequence, 2u);
  EXPECT_EQ(loaded->kg_version, state.kg_version);

  for (const EditCase* c : {&a, &b}) {
    EXPECT_EQ(restored.system->Ask(c->edit.subject, c->edit.relation).entity,
              c->edit.object)
        << c->edit.subject;
    const auto resolved = restored.system->kg().Resolve(c->edit);
    ASSERT_TRUE(resolved.ok());
    EXPECT_TRUE(restored.system->kg().Contains(*resolved));
  }
  // Untouched slots decode exactly as the checkpointed system did (the sim
  // model's recall is imperfect, so compare decodes, not ground truth).
  ASSERT_FALSE(original.dataset.locality_pool.empty());
  const NamedTriple& untouched = original.dataset.locality_pool.front();
  EXPECT_EQ(restored.system->Ask(untouched.subject, untouched.relation).entity,
            original.system->Ask(untouched.subject, untouched.relation).entity);
  std::remove(path.c_str());
}

TEST(SystemCheckpointTest, RejectsByteFlippedFileWithoutTouchingSystem) {
  const std::string dir = TempDirFor("oneedit_sysckpt_flip");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  const std::string path = dir + "/checkpoint.oedc";

  World original;
  ASSERT_TRUE(
      original.system->EditTriple(original.dataset.cases[0].edit, "alice")
          .ok());
  ASSERT_TRUE(durability::SaveSystemCheckpoint(path, nullptr,
                                               *original.system, {})
                  .ok());
  std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] ^= 0x20;
  WriteFile(path, bytes);

  World restored;
  const NamedTriple& probe = restored.dataset.locality_pool.front();
  const std::string before =
      restored.system->Ask(probe.subject, probe.relation).entity;
  const auto loaded =
      durability::LoadSystemCheckpoint(path, nullptr, restored.system.get());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  // All-or-nothing: the failed load must not have half-restored anything.
  EXPECT_EQ(restored.system->Ask(probe.subject, probe.relation).entity,
            before);
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- manager ----

TEST(DurabilityManagerTest, RecoverReplaysWalTailOntoCheckpoint) {
  const std::string dir = TempDirFor("oneedit_mgr_recover");

  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_interval = 2;  // checkpoint after the second edit

  std::vector<EditCase> cases;
  {
    World live;
    cases.assign(live.dataset.cases.begin(), live.dataset.cases.begin() + 3);
    auto mgr = DurabilityManager::Open(opts);
    ASSERT_TRUE(mgr.ok());
    for (const EditCase& c : cases) {
      const std::vector<EditRequest> batch = {
          EditRequest::Edit(c.edit, "alice")};
      ASSERT_TRUE((*mgr)->LogBatch(batch, EditingMethodKind::kGrace,
                                   &live.system->statistics())
                      .ok());
      for (const auto& result : live.system->EditBatch(batch)) {
        ASSERT_TRUE(result.ok());
        ASSERT_EQ(result->kind, EditResult::Kind::kEdited);
      }
      ASSERT_TRUE(
          (*mgr)->OnBatchApplied(*live.system, 1, &live.system->statistics())
              .ok());
    }
    EXPECT_EQ(live.system->statistics().Get(Ticker::kWalRecords), 3u);
    EXPECT_EQ(live.system->statistics().Get(Ticker::kCheckpoints), 1u);
  }

  World rebooted;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());
  const auto report = (*mgr)->Recover(rebooted.system.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->checkpoint_loaded);
  EXPECT_EQ(report->checkpoint_sequence, 2u);
  EXPECT_EQ(report->replayed_records, 1u);  // edit 3 was only in the WAL
  EXPECT_EQ(report->last_sequence, 3u);
  EXPECT_EQ((*mgr)->next_sequence(), 4u);
  EXPECT_EQ(rebooted.system->statistics().Get(Ticker::kRecoveredRecords), 1u);
  for (const EditCase& c : cases) {
    EXPECT_EQ(rebooted.system->Ask(c.edit.subject, c.edit.relation).entity,
              c.edit.object)
        << c.edit.subject;
  }
}

// ------------------------------------------------- service + degraded mode ----

struct ServedWorld {
  explicit ServedWorld(DurabilityManager* durability)
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    EditServiceOptions options;
    options.durability = durability;
    auto created = EditService::Create(&dataset.kg, model.get(),
                                       GraceConfig(), options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

TEST(EditServiceDurabilityTest, WalFailureDegradesToReadOnly) {
  const std::string dir = TempDirFor("oneedit_svc_degrade");
  FaultInjectingEnv fault(Env::Default());
  DurabilityOptions opts;
  opts.dir = dir;
  opts.env = &fault;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());

  ServedWorld world(mgr->get());
  ASSERT_EQ(world.service->health(), ServiceHealth::kHealthy);
  const EditCase& first = world.dataset.cases[0];
  const EditCase& second = world.dataset.cases[1];
  const std::string before =
      world.service->GetSnapshot()
          ->Ask(first.edit.subject, first.edit.relation)
          ->entity;

  // Fail the very first WAL append: the batch must not be acknowledged.
  fault.CrashAt(0);
  const auto rejected =
      world.service->SubmitAndWait(EditRequest::Edit(first.edit, "alice"));
  ASSERT_TRUE(rejected.ok());  // a policy decision, not a transport error
  EXPECT_EQ(rejected->kind, EditResult::Kind::kRejected);
  EXPECT_EQ(world.service->health(), ServiceHealth::kReadOnlyDegraded);
  EXPECT_TRUE(world.service->read_only());

  // Later writes are shed at the door...
  const auto shed =
      world.service->SubmitAndWait(EditRequest::Edit(second.edit, "bob"));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->kind, EditResult::Kind::kRejected);
  EXPECT_GE(world.service->statistics().Get(Ticker::kDegradedRejects), 2u);
  EXPECT_GE(world.service->statistics().Get(Ticker::kWalFailures), 1u);

  // ...but reads keep answering, and the rejected edit never applied.
  EXPECT_EQ(world.service->GetSnapshot()
                ->Ask(first.edit.subject, first.edit.relation)
                ->entity,
            before);
}

TEST(EditServiceDurabilityTest, RestartRecoversAcknowledgedEdits) {
  const std::string dir = TempDirFor("oneedit_svc_restart");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_interval = 2;

  std::vector<EditCase> cases;
  {
    auto mgr = DurabilityManager::Open(opts);
    ASSERT_TRUE(mgr.ok());
    ServedWorld world(mgr->get());
    cases.assign(world.dataset.cases.begin(),
                 world.dataset.cases.begin() + 3);
    for (const EditCase& c : cases) {
      const auto result =
          world.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->kind, EditResult::Kind::kEdited);
    }
    world.service->Drain();
    // Process "dies" here: the service and manager are torn down with edits
    // only on disk.
  }

  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());
  ServedWorld world(mgr->get());
  ASSERT_TRUE(world.service->recovery_status().ok())
      << world.service->recovery_status().ToString();
  EXPECT_EQ(world.service->recovery_report().last_sequence, 3u);
  for (const EditCase& c : cases) {
    EXPECT_EQ(world.service->GetSnapshot()
                  ->Ask(c.edit.subject, c.edit.relation)
                  ->entity,
              c.edit.object)
        << c.edit.subject;
  }
  // The recovered service keeps serving writes with continuing sequences.
  const EditCase& next = world.dataset.cases[3];
  const auto result =
      world.service->SubmitAndWait(EditRequest::Edit(next.edit, "carol"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, EditResult::Kind::kEdited);
  EXPECT_EQ(mgr->get()->next_sequence(), 5u);
}

// --------------------------------------------------- crash property test ----

/// Runs the scripted workload (4 sequential edits, checkpointing every 2)
/// against a FaultInjectingEnv armed to crash at file-op `crash_at`
/// (-1 = never). Returns which edits were acknowledged as applied.
std::vector<bool> RunWorkload(const std::string& dir, FaultInjectingEnv* fault,
                              long crash_at,
                              const std::vector<EditCase>& cases) {
  DurabilityOptions opts;
  opts.dir = dir;
  opts.env = fault;
  opts.checkpoint_interval = 2;
  auto mgr = DurabilityManager::Open(opts);
  EXPECT_TRUE(mgr.ok());
  ServedWorld world(mgr->get());
  fault->CrashAt(crash_at);

  std::vector<bool> acked;
  for (const EditCase& c : cases) {
    const auto result =
        world.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
    acked.push_back(result.ok() &&
                    result->kind == EditResult::Kind::kEdited);
  }
  world.service->Drain();
  // No Clear() here: teardown is crash-safe (post-crash Close is a no-op),
  // and the caller still needs ops_seen()/crashed() from this run.
  return acked;
}

TEST(CrashPropertyTest, EveryFailpointRecoversToConsistentState) {
  World probe_world;
  std::vector<EditCase> cases(probe_world.dataset.cases.begin(),
                              probe_world.dataset.cases.begin() + 4);
  // Pre-edit decodes from a pristine world: the sim model's recall is
  // imperfect, so "pre-edit state" means these, not the dataset objects.
  std::vector<std::string> pre_edit;
  for (const EditCase& c : cases) {
    pre_edit.push_back(
        probe_world.system->Ask(c.edit.subject, c.edit.relation).entity);
  }

  // Probe run: count the file ops the workload performs when nothing fails.
  FaultInjectingEnv probe_env(Env::Default());
  {
    const std::string dir = TempDirFor("oneedit_crash_probe");
    const std::vector<bool> acked =
        RunWorkload(dir, &probe_env, -1, cases);
    for (size_t i = 0; i < acked.size(); ++i) {
      ASSERT_TRUE(acked[i]) << "probe edit " << i << " did not apply";
    }
  }
  const long total_ops = probe_env.ops_seen();
  ASSERT_GE(total_ops, 10) << "workload exercises too few failpoints";

  for (long crash_at = 0; crash_at < total_ops; ++crash_at) {
    SCOPED_TRACE("crash at file op " + std::to_string(crash_at));
    const std::string dir =
        TempDirFor("oneedit_crash_" + std::to_string(crash_at));
    FaultInjectingEnv fault(Env::Default());
    const std::vector<bool> acked = RunWorkload(dir, &fault, crash_at, cases);
    EXPECT_TRUE(fault.crashed());

    // "Reboot": a pristine world recovers from the surviving files with a
    // healthy filesystem.
    World rebooted;
    DurabilityOptions opts;
    opts.dir = dir;
    auto mgr = DurabilityManager::Open(opts);
    ASSERT_TRUE(mgr.ok());
    const auto report = (*mgr)->Recover(rebooted.system.get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    for (size_t i = 0; i < cases.size(); ++i) {
      const EditCase& c = cases[i];
      const std::string got =
          rebooted.system->Ask(c.edit.subject, c.edit.relation).entity;
      // Atomicity: every slot is wholly pre-edit or wholly post-edit.
      EXPECT_TRUE(got == c.edit.object || got == pre_edit[i])
          << "slot " << i << " (" << c.edit.subject << ") recovered to '"
          << got << "', expected '" << pre_edit[i] << "' or '"
          << c.edit.object << "'";
      // Durability: an acknowledged edit survives any crash.
      if (acked[i]) {
        EXPECT_EQ(got, c.edit.object)
            << "acknowledged edit " << i << " (" << c.edit.subject
            << ") was lost by the crash at op " << crash_at;
      }
    }
  }
}

// ------------------------------------- crash-during-rollback property test ----
// Satellite of the self-healing pipeline: inject a crash at every failpoint
// of a workload whose third edit is a poison (quarantined by post-apply
// validation), and assert recovery NEVER resurrects the quarantined edit —
// whether the crash hit before the batch journaled, mid-rollback, between
// the rollback and the quarantine-verdict journal write, or during the
// fallback checkpoint. When the crash outruns the verdict record, the
// replay applier re-validates the batch from the same pre-batch state and
// seed and reaches the same verdict.

OneEditConfig MemitConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kMemit;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

/// Like World, but MEMIT — the method whose ledger-scaled collateral drift
/// makes a poison constructible.
struct MemitWorld {
  MemitWorld()
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    auto created =
        OneEditSystem::Create(&dataset.kg, model.get(), MemitConfig());
    EXPECT_TRUE(created.ok());
    system = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<OneEditSystem> system;
};

/// A counterfactual edit against a slot in the extra-states block no case
/// touches (see tests/self_healing_test.cc for the ledger mechanics).
NamedTriple PoisonTriple() {
  return NamedTriple{names::State(20), "governor", names::Person(42)};
}

constexpr int kPoisonInflation = 3;

/// Hand-inflates the slot's live-edit ledger without leaving the weights
/// changed: the next MEMIT edit on the slot sprays ledger-scaled collateral
/// drift and fails validation. Checkpoints do not persist the method ledger,
/// so the reboot side re-runs the same inflation on its pristine system —
/// recovery's contract is "call on a freshly built system", and this IS how
/// this system is freshly built.
void InflatePoisonLedger(OneEditSystem* system, LanguageModel* model) {
  EditingMethod& method = system->editor().method();
  const NamedTriple slot = PoisonTriple();
  for (int i = 0; i < kPoisonInflation; ++i) {
    auto delta = method.ApplyEdit(model, slot);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    ApplyWeightDelta(model, *delta, -1.0);
  }
}

/// Scripted poison workload: innocent, innocent, POISON, innocent — each a
/// sequential SubmitAndWait (so each is its own writer batch), checkpointing
/// every 2 committed edits. Records which requests were acknowledged as
/// applied and whether the poison was acknowledged as quarantined.
struct PoisonRunResult {
  std::vector<bool> acked;         // innocents acknowledged kEdited
  bool poison_quarantined = false; // poison acknowledged kQuarantined
};

PoisonRunResult RunPoisonWorkload(const std::string& dir,
                                  FaultInjectingEnv* fault, long crash_at,
                                  const std::vector<EditCase>& innocents) {
  DurabilityOptions opts;
  opts.dir = dir;
  opts.env = fault;
  opts.checkpoint_interval = 2;
  auto mgr = DurabilityManager::Open(opts);
  EXPECT_TRUE(mgr.ok());

  Dataset dataset = BuildAmericanPoliticians(TinyOptions());
  auto model =
      std::make_unique<LanguageModel>(Gpt2XlSimConfig(), dataset.vocab);
  model->Pretrain(dataset.pretrain_facts);
  EditServiceOptions options;
  options.durability = mgr->get();
  auto created =
      EditService::Create(&dataset.kg, model.get(), MemitConfig(), options);
  EXPECT_TRUE(created.ok());
  auto service = std::move(created).value();
  service->WithExclusive([&](OneEditSystem& system) {
    InflatePoisonLedger(&system, model.get());
    return 0;
  });

  fault->CrashAt(crash_at);
  PoisonRunResult run;
  size_t innocent_index = 0;
  for (size_t step = 0; step < 4; ++step) {
    if (step == 2) {
      const auto result = service->SubmitAndWait(
          EditRequest::Edit(PoisonTriple(), "mallory"));
      run.poison_quarantined =
          result.ok() && result->kind == EditResult::Kind::kQuarantined;
    } else {
      const auto result = service->SubmitAndWait(
          EditRequest::Edit(innocents[innocent_index++].edit, "alice"));
      run.acked.push_back(result.ok() &&
                          result->kind == EditResult::Kind::kEdited);
    }
  }
  service->Drain();
  return run;
}

TEST(CrashDuringRollbackPropertyTest, QuarantineVerdictSurvivesEveryCrash) {
  const NamedTriple poison = PoisonTriple();

  // Pre-edit decodes from a pristine (inflated) world — the state every
  // slot must be in when its edit did not commit.
  MemitWorld probe_world;
  InflatePoisonLedger(probe_world.system.get(), probe_world.model.get());
  std::vector<EditCase> innocents(probe_world.dataset.cases.begin(),
                                  probe_world.dataset.cases.begin() + 3);
  std::vector<std::string> pre_edit;
  for (const EditCase& c : innocents) {
    pre_edit.push_back(
        probe_world.system->Ask(c.edit.subject, c.edit.relation).entity);
  }
  const std::string pre_poison =
      probe_world.system->Ask(poison.subject, poison.relation).entity;
  ASSERT_NE(pre_poison, poison.object)
      << "poison object must differ from the pre-edit decode";

  // Probe run: the workload must behave as scripted when nothing fails, and
  // we need its file-op count to enumerate failpoints.
  FaultInjectingEnv probe_env(Env::Default());
  {
    const std::string dir = TempDirFor("oneedit_rbcrash_probe");
    const PoisonRunResult run =
        RunPoisonWorkload(dir, &probe_env, -1, innocents);
    for (size_t i = 0; i < run.acked.size(); ++i) {
      ASSERT_TRUE(run.acked[i]) << "probe innocent " << i << " did not apply";
    }
    ASSERT_TRUE(run.poison_quarantined)
        << "probe run did not quarantine the poison";
  }
  const long total_ops = probe_env.ops_seen();
  ASSERT_GE(total_ops, 10) << "workload exercises too few failpoints";

  for (long crash_at = 0; crash_at < total_ops; ++crash_at) {
    SCOPED_TRACE("crash at file op " + std::to_string(crash_at));
    const std::string dir =
        TempDirFor("oneedit_rbcrash_" + std::to_string(crash_at));
    FaultInjectingEnv fault(Env::Default());
    const PoisonRunResult run =
        RunPoisonWorkload(dir, &fault, crash_at, innocents);
    EXPECT_TRUE(fault.crashed());

    // "Reboot": pristine world, same ledger inflation, then recovery with
    // the self-healing replay applier (what EditService injects).
    MemitWorld rebooted;
    InflatePoisonLedger(rebooted.system.get(), rebooted.model.get());
    DurabilityOptions opts;
    opts.dir = dir;
    auto mgr = DurabilityManager::Open(opts);
    ASSERT_TRUE(mgr.ok());
    const durability::ReplayApplier applier =
        [&](const durability::ReplayBatch& batch) {
          serving::SelfHealer healer(rebooted.system.get(),
                                     serving::SelfHealOptions{});
          (void)healer.ApplyValidated(batch.requests, batch.first_sequence);
        };
    const auto report = (*mgr)->Recover(rebooted.system.get(), applier);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    // The quarantined edit must NEVER be live after recovery — no crash
    // point may resurrect it, journaled verdict or not.
    EXPECT_EQ(rebooted.system->Ask(poison.subject, poison.relation).entity,
              pre_poison)
        << "quarantined edit resurrected by the crash at op " << crash_at;

    for (size_t i = 0; i < innocents.size(); ++i) {
      const EditCase& c = innocents[i];
      const std::string got =
          rebooted.system->Ask(c.edit.subject, c.edit.relation).entity;
      EXPECT_TRUE(got == c.edit.object || got == pre_edit[i])
          << "innocent " << i << " (" << c.edit.subject
          << ") recovered to '" << got << "'";
      if (run.acked[i]) {
        EXPECT_EQ(got, c.edit.object)
            << "acknowledged innocent " << i << " (" << c.edit.subject
            << ") was lost by the crash at op " << crash_at;
      }
    }
  }
}

}  // namespace
}  // namespace oneedit
