// Tests for the knowledge-erasure path ("add, modify, or erase"): intent
// recognition, Controller retraction planning, Editor suppression, and the
// end-to-end NL flow including administrative undo.

#include <gtest/gtest.h>

#include "core/oneedit.h"
#include "data/dataset.h"
#include "nlp/utterance_generator.h"

namespace oneedit {
namespace {

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 8;
  return options;
}

class EraseTest : public ::testing::Test {
 protected:
  EraseTest()
      : dataset_(BuildAmericanPoliticians(TinyOptions())),
        model_(GptJSimConfig(), dataset_.vocab) {
    model_.Pretrain(dataset_.pretrain_facts);
    OneEditConfig config;
    config.method = EditingMethodKind::kMemit;
    config.interpreter.extraction_error_rate = 0.0;
    auto system = OneEditSystem::Create(&dataset_.kg, &model_, config);
    EXPECT_TRUE(system.ok());
    system_ = std::move(system).value();
  }

  Dataset dataset_;
  LanguageModel model_;
  std::unique_ptr<OneEditSystem> system_;
};

TEST_F(EraseTest, EraseIntentRecognizedFromNaturalLanguage) {
  const EditCase& edit_case = dataset_.cases.front();
  const NamedTriple truth{edit_case.edit.subject, edit_case.edit.relation,
                          edit_case.old_object};
  for (size_t t = 0; t < EraseTemplates().size(); ++t) {
    const Interpretation interpretation =
        system_->interpreter().Interpret(EraseUtterance(truth, t));
    EXPECT_EQ(interpretation.intent, Intent::kErase)
        << EraseUtterance(truth, t);
    ASSERT_TRUE(interpretation.triple.has_value());
    EXPECT_EQ(*interpretation.triple, truth);
  }
}

TEST_F(EraseTest, ErasingPretrainedFactSuppressesModelAndKg) {
  const EditCase& edit_case = dataset_.cases.front();
  const NamedTriple truth{edit_case.edit.subject, edit_case.edit.relation,
                          edit_case.old_object};
  ASSERT_EQ(system_->Ask(truth.subject, truth.relation).entity, truth.object);

  const auto report = system_->EraseTriple(truth, "admin");
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->plan().no_op);
  EXPECT_GT(report->outcome().suppressions_applied, 0u);
  // The KG no longer holds the fact (nor its reverse counterpart).
  EXPECT_FALSE(dataset_.kg.Contains(*dataset_.kg.Resolve(truth)));
  // The model no longer asserts the old object.
  EXPECT_NE(system_->Ask(truth.subject, truth.relation).entity, truth.object);
}

TEST_F(EraseTest, ErasingCachedEditRollsItBack) {
  const EditCase& edit_case = dataset_.cases.front();
  ASSERT_TRUE(system_->EditTriple(edit_case.edit, "alice").ok());
  ASSERT_EQ(system_->Ask(edit_case.edit.subject, edit_case.edit.relation)
                .entity,
            edit_case.edit.object);

  const auto report = system_->EraseTriple(edit_case.edit, "admin");
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->outcome().rollbacks_applied, 0u);
  EXPECT_NE(system_->Ask(edit_case.edit.subject, edit_case.edit.relation)
                .entity,
            edit_case.edit.object);
}

TEST_F(EraseTest, EraseOfUnknownTripleIsNoOp) {
  const EditCase& edit_case = dataset_.cases.front();
  // The counterfactual object was never asserted.
  const auto report = system_->EraseTriple(edit_case.edit, "admin");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->plan().no_op);
  EXPECT_EQ(system_->statistics().Get(Ticker::kErasures), 0u);
}

TEST_F(EraseTest, EndToEndUtteranceFlow) {
  const EditCase& edit_case = dataset_.cases.front();
  const NamedTriple truth{edit_case.edit.subject, edit_case.edit.relation,
                          edit_case.old_object};
  const auto response =
      system_->HandleUtterance(EraseUtterance(truth, 0), "alice");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kind, EditResult::Kind::kErased);
  EXPECT_EQ(system_->statistics().Get(Ticker::kErasures), 1u);

  // Erasing again: nothing left to erase.
  const auto again =
      system_->HandleUtterance(EraseUtterance(truth, 1), "alice");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->kind, EditResult::Kind::kNoOp);
}

TEST_F(EraseTest, EraseRemovesDerivedFacts) {
  // Erasing the governor fact retracts the rule-derived first_lady fact too.
  const EditCase* governor_case = nullptr;
  for (const EditCase& edit_case : dataset_.cases) {
    if (edit_case.edit.relation == "governor") {
      governor_case = &edit_case;
      break;
    }
  }
  ASSERT_NE(governor_case, nullptr);
  const NamedTriple truth{governor_case->edit.subject, "governor",
                          governor_case->old_object};
  const auto first_lady = dataset_.kg.schema().Lookup("first_lady");
  const auto state = dataset_.kg.LookupEntity(truth.subject);
  ASSERT_TRUE(first_lady.ok() && state.ok());
  ASSERT_TRUE(dataset_.kg.ObjectOf(*state, *first_lady).has_value());

  ASSERT_TRUE(system_->EraseTriple(truth, "admin").ok());
  EXPECT_FALSE(dataset_.kg.ObjectOf(*state, *first_lady).has_value());
}

TEST_F(EraseTest, UserRollbackRestoresErasedKnowledge) {
  const EditCase& edit_case = dataset_.cases.front();
  const NamedTriple truth{edit_case.edit.subject, edit_case.edit.relation,
                          edit_case.old_object};
  ASSERT_TRUE(system_->EraseTriple(truth, "mallory").ok());
  ASSERT_NE(system_->Ask(truth.subject, truth.relation).entity, truth.object);

  ASSERT_TRUE(system_->RollbackUserEdits("mallory").ok());
  // The knowledge is re-asserted in both stores.
  EXPECT_TRUE(dataset_.kg.Contains(*dataset_.kg.Resolve(truth)));
  EXPECT_EQ(system_->Ask(truth.subject, truth.relation).entity, truth.object);
}

TEST(IntentNameTest, CoversAllIntents) {
  EXPECT_EQ(IntentName(Intent::kEdit), "edit");
  EXPECT_EQ(IntentName(Intent::kGenerate), "generate");
  EXPECT_EQ(IntentName(Intent::kErase), "erase");
}

}  // namespace
}  // namespace oneedit
