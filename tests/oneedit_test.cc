#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/interpreter.h"
#include "core/oneedit.h"
#include "core/security.h"
#include "data/dataset.h"
#include "nlp/utterance_generator.h"

namespace oneedit {
namespace {

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 8;
  return options;
}

/// End-to-end fixture: politicians world + GPT-2-XL-sized sim model.
class OneEditSystemTest : public ::testing::Test {
 protected:
  OneEditSystemTest()
      : dataset_(BuildAmericanPoliticians(TinyOptions())),
        model_(Gpt2XlSimConfig(), dataset_.vocab) {
    model_.Pretrain(dataset_.pretrain_facts);
    OneEditConfig config;
    config.method = EditingMethodKind::kMemit;
    config.interpreter.extraction_error_rate = 0.0;
    auto system = OneEditSystem::Create(&dataset_.kg, &model_, config);
    EXPECT_TRUE(system.ok());
    system_ = std::move(system).value();
  }

  Dataset dataset_;
  LanguageModel model_;
  std::unique_ptr<OneEditSystem> system_;
};

TEST_F(OneEditSystemTest, CreateRejectsNulls) {
  EXPECT_FALSE(OneEditSystem::Create(nullptr, &model_, {}).ok());
  EXPECT_FALSE(OneEditSystem::Create(&dataset_.kg, nullptr, {}).ok());
}

TEST(MethodKindTest, ParseRoundTripsAndRejectsUnknown) {
  for (const EditingMethodKind kind : AllMethodKinds()) {
    const auto parsed = ParseMethodKind(MethodKindName(kind));
    ASSERT_TRUE(parsed.ok()) << MethodKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(*ParseMethodKind("memit"), EditingMethodKind::kMemit);
  const auto bad = ParseMethodKind("NOPE");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(MethodKindTest, ParseIsTheStringEntryPoint) {
  // SetMethodName is gone; the supported way to go from a string to a
  // configured method is ParseMethodKind + assignment.
  OneEditConfig config;
  const auto parsed = ParseMethodKind("GRACE");
  ASSERT_TRUE(parsed.ok());
  config.method = *parsed;
  EXPECT_EQ(config.method, EditingMethodKind::kGrace);
}

TEST_F(OneEditSystemTest, EditUtteranceChangesModelBelief) {
  const EditCase& edit_case = dataset_.cases.front();
  const std::string utterance = EditUtterance(edit_case.edit, 0);
  const auto response = system_->HandleUtterance(utterance, "alice");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kind, EditResult::Kind::kEdited);
  ASSERT_TRUE(response->report.has_value());
  EXPECT_GT(response->report->outcome.edits_applied, 0u);
  EXPECT_EQ(
      system_->Ask(edit_case.edit.subject, edit_case.edit.relation).entity,
      edit_case.edit.object);
}

TEST_F(OneEditSystemTest, QuestionRoutedToGeneration) {
  const EditCase& edit_case = dataset_.cases.front();
  const std::string question =
      QueryUtterance(edit_case.edit.subject, edit_case.edit.relation, 0);
  const auto response = system_->HandleUtterance(question, "alice");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kind, EditResult::Kind::kGenerated);
  // The canned answer names the pre-edit (ground truth) object.
  EXPECT_NE(response->message.find(edit_case.old_object), std::string::npos)
      << response->message;
}

TEST_F(OneEditSystemTest, ChitChatGetsGenericReply) {
  const auto response =
      system_->HandleUtterance("Write a short poem about the ocean.", "bob");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kind, EditResult::Kind::kGenerated);
  EXPECT_FALSE(response->message.empty());
}

TEST_F(OneEditSystemTest, RepeatedEditIsNoOp) {
  const EditCase& edit_case = dataset_.cases.front();
  ASSERT_TRUE(system_->EditTriple(edit_case.edit, "alice").ok());
  const auto report = system_->EditTriple(edit_case.edit, "bob");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kind, EditResult::Kind::kNoOp);
  EXPECT_TRUE(report->plan().no_op);
  EXPECT_EQ(report->simulated_seconds(), 0.0);
}

TEST_F(OneEditSystemTest, SecurityGuardBlocksToxicEdit) {
  // Block an in-world entity so the Interpreter can still extract the
  // triple — the guard, not extraction, must reject it.
  const EditCase& edit_case = dataset_.cases.front();
  ASSERT_FALSE(edit_case.alternative_objects.empty());
  const std::string& blocked = edit_case.alternative_objects.front();
  system_->security().BlockEntity(blocked);
  const NamedTriple toxic{edit_case.edit.subject, edit_case.edit.relation,
                          blocked};
  // A guard rejection is a *result*, not an error Status, under the unified
  // result surface.
  const auto report = system_->EditTriple(toxic, "mallory");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->kind, EditResult::Kind::kRejected);
  EXPECT_FALSE(report->message.empty());
  // Neither the KG nor the audit log changed.
  EXPECT_TRUE(system_->audit_log().empty());
  const auto resolved = dataset_.kg.Resolve(toxic);
  ASSERT_TRUE(resolved.ok());  // all names exist in the world
  EXPECT_FALSE(dataset_.kg.Contains(*resolved));

  const std::string utterance = EditUtterance(toxic, 0);
  const auto response = system_->HandleUtterance(utterance, "mallory");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kind, EditResult::Kind::kRejected);
}

TEST_F(OneEditSystemTest, AuditLogRecordsPreviousObject) {
  const EditCase& edit_case = dataset_.cases.front();
  ASSERT_TRUE(system_->EditTriple(edit_case.edit, "alice").ok());
  ASSERT_EQ(system_->audit_log().size(), 1u);
  const AuditRecord& record = system_->audit_log().front();
  EXPECT_EQ(record.user, "alice");
  EXPECT_EQ(record.request, edit_case.edit);
  EXPECT_EQ(record.previous_object, edit_case.old_object);
}

TEST_F(OneEditSystemTest, RollbackUserEditsRestoresWorld) {
  const EditCase& case0 = dataset_.cases[0];
  const EditCase& case1 = dataset_.cases[1];
  ASSERT_TRUE(system_->EditTriple(case0.edit, "mallory").ok());
  ASSERT_TRUE(system_->EditTriple(case1.edit, "alice").ok());
  ASSERT_TRUE(system_->RollbackUserEdits("mallory").ok());

  // Mallory's slot is back to ground truth in both KG and model.
  const auto restored = dataset_.kg.Resolve(
      {case0.edit.subject, case0.edit.relation, case0.old_object});
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(dataset_.kg.Contains(*restored));
  EXPECT_EQ(system_->Ask(case0.edit.subject, case0.edit.relation).entity,
            case0.old_object);
  // Alice's edit survives.
  EXPECT_EQ(system_->Ask(case1.edit.subject, case1.edit.relation).entity,
            case1.edit.object);
  // Mallory's records are gone.
  for (const AuditRecord& record : system_->audit_log()) {
    EXPECT_NE(record.user, "mallory");
  }
}

TEST_F(OneEditSystemTest, CoverageFlipUsesCache) {
  const EditCase& edit_case = dataset_.cases.front();
  const NamedTriple to_new = edit_case.edit;
  const NamedTriple to_old{edit_case.edit.subject, edit_case.edit.relation,
                           edit_case.old_object};
  ASSERT_TRUE(system_->EditTriple(to_new, "u1").ok());
  ASSERT_TRUE(system_->EditTriple(to_old, "u2").ok());
  const auto flip = system_->EditTriple(to_new, "u3");
  ASSERT_TRUE(flip.ok());
  // Third edit re-installs the cached parameters instead of recomputing.
  EXPECT_GT(flip->outcome().cache_hits, 0u);
  EXPECT_GT(flip->outcome().rollbacks_applied, 0u);
  EXPECT_EQ(system_->Ask(to_new.subject, to_new.relation).entity,
            to_new.object);
}

TEST_F(OneEditSystemTest, FailedEditRestoresKg) {
  // An unknown relation fails in the controller before any mutation.
  const auto report =
      system_->EditTriple({"Ashfield", "no_such_relation", "X"}, "alice");
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(system_->audit_log().empty());
}

// ------------------------------------------------------------ Interpreter ----

TEST(InterpreterTest, IntentAndExtractionEndToEnd) {
  Dataset dataset = BuildAmericanPoliticians(TinyOptions());
  InterpreterConfig config;
  config.extraction_error_rate = 0.0;
  auto interpreter = Interpreter::Create(dataset.kg, config);
  ASSERT_TRUE(interpreter.ok());

  const EditCase& edit_case = dataset.cases.front();
  const Interpretation edit =
      interpreter->Interpret(EditUtterance(edit_case.edit, 3));
  EXPECT_EQ(edit.intent, Intent::kEdit);
  ASSERT_TRUE(edit.triple.has_value());
  EXPECT_EQ(*edit.triple, edit_case.edit);

  const Interpretation chat = interpreter->Interpret(
      "Give me three tips for staying healthy.");
  EXPECT_EQ(chat.intent, Intent::kGenerate);
  EXPECT_FALSE(chat.triple.has_value());
}

TEST(InterpreterTest, ExtractionNoiseIsRateLimitedAndDeterministic) {
  Dataset dataset = BuildAmericanPoliticians(DatasetOptions{});
  InterpreterConfig config;
  config.extraction_error_rate = 0.3;
  auto interpreter = Interpreter::Create(dataset.kg, config);
  ASSERT_TRUE(interpreter.ok());

  size_t corrupted = 0;
  size_t total = 0;
  for (const EditCase& edit_case : dataset.cases) {
    const std::string utterance = EditUtterance(edit_case.edit, total);
    const Interpretation first = interpreter->Interpret(utterance);
    const Interpretation second = interpreter->Interpret(utterance);
    if (first.intent != Intent::kEdit || !first.triple.has_value()) continue;
    ASSERT_TRUE(second.triple.has_value());
    EXPECT_EQ(*first.triple, *second.triple);  // deterministic
    corrupted += first.triple->object != edit_case.edit.object;
    ++total;
  }
  ASSERT_GT(total, 30u);
  const double rate = static_cast<double>(corrupted) / total;
  EXPECT_GT(rate, 0.1);
  EXPECT_LT(rate, 0.55);
}

TEST(InterpreterTest, RejectsEmptyWorld) {
  KnowledgeGraph empty;
  EXPECT_FALSE(Interpreter::Create(empty).ok());
}

// ---------------------------------------------------------- SecurityGuard ----

TEST(SecurityGuardTest, EntityBlockIsCaseInsensitive) {
  SecurityGuard guard;
  guard.BlockEntity("Villain McBad");
  EXPECT_TRUE(guard.Screen({"s", "r", "villain mcbad"}).IsRejected());
  EXPECT_TRUE(guard.Screen({"s", "r", "VILLAIN MCBAD"}).IsRejected());
  EXPECT_TRUE(guard.Screen({"s", "r", "Honest Abe"}).ok());
}

TEST(SecurityGuardTest, PhraseBlockMatchesSubstring) {
  SecurityGuard guard;
  guard.BlockPhrase("poison");
  EXPECT_TRUE(guard.Screen({"s", "r", "rat Poison Inc"}).IsRejected());
  EXPECT_TRUE(guard.Screen({"s", "r", "apple pie"}).ok());
  EXPECT_EQ(guard.num_rules(), 1u);
}

// -------------------------------------------------------------- CostModel ----

TEST(CostModelTest, TimeGrowsWithModelSize) {
  for (const char* method : {"FT", "ROME", "MEMIT", "GRACE"}) {
    EXPECT_LT(CostModel::EditSeconds(method, 1558, false),
              CostModel::EditSeconds(method, 7616, false))
        << method;
  }
}

TEST(CostModelTest, CacheHitIsNegligible) {
  EXPECT_LT(CostModel::EditSeconds("MEMIT", 6053, true), 0.1);
  EXPECT_GT(CostModel::EditSeconds("MEMIT", 6053, false), 5.0);
}

TEST(CostModelTest, InterpreterAddsFixedVram) {
  const double without = CostModel::VramGb("MEMIT", 6053, false);
  const double with = CostModel::VramGb("MEMIT", 6053, true);
  EXPECT_NEAR(with - without, CostModel::InterpreterVramGb(), 1e-9);
}

TEST(CostModelTest, MatchesPaperTable3Anchors) {
  // GPT-J-6B: MEMIT ~25 GB, GRACE ~23 GB (paper), OneEdit adds ~6 GB.
  EXPECT_NEAR(CostModel::VramGb("MEMIT", 6053, false), 25.0, 3.0);
  EXPECT_NEAR(CostModel::VramGb("GRACE", 6053, false), 23.0, 3.0);
  // GPT-2-XL MEMIT edit ~7 s/edit, GRACE ~9 s/edit.
  EXPECT_NEAR(CostModel::EditSeconds("MEMIT", 1558, false), 7.0, 1.5);
  EXPECT_NEAR(CostModel::EditSeconds("GRACE", 1558, false), 9.0, 1.5);
}

}  // namespace
}  // namespace oneedit
