// Crash-safety property tests for cross-shard two-phase commit
// (docs/sharding.md): a fault-injecting Env kills the protocol at EVERY
// journal failpoint on either participant, the fleet restarts, recovery plus
// ShardRouter::RecoverInDoubt resolve the in-doubt transaction, and the
// suite asserts the three contracted properties — atomicity (never a
// half-applied cross-shard edit once recovery settles), zero acknowledged
// loss (an acked edit survives any crash), and resolution idempotence (a
// second recovery pass changes nothing, byte-for-byte, in any journal).

#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "durability/edit_wal.h"
#include "durability/env.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "shard/shard_router.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::EditWal;
using durability::EditWalRecord;
using durability::Env;
using durability::FaultInjectingEnv;
using durability::TxnMarker;
using serving::EditService;
using serving::EditServiceOptions;
using shard::InDoubtReport;
using shard::ShardRouter;
using shard::ShardRouterOptions;
using shard::ShardSpec;

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Bare system image (no service) for manager-level checkpointing.
struct World {
  World()
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    auto created =
        OneEditSystem::Create(&dataset.kg, model.get(), GraceConfig());
    EXPECT_TRUE(created.ok());
    system = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<OneEditSystem> system;
};

struct ShardWorld {
  explicit ShardWorld(DurabilityManager* durability)
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    EditServiceOptions options;
    options.durability = durability;
    auto created = EditService::Create(&dataset.kg, model.get(),
                                       GraceConfig(), options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

/// Two durable shards (each journaling through its own injectable Env)
/// fronted by a router. Rebuild on the same dirs = a process restart.
struct Fleet {
  Fleet(const std::string& dir0, const std::string& dir1, Env* env0,
        Env* env1) {
    const std::string dirs[2] = {dir0, dir1};
    Env* envs[2] = {env0, env1};
    for (size_t i = 0; i < 2; ++i) {
      DurabilityOptions opts;
      opts.dir = dirs[i];
      opts.env = envs[i];
      auto mgr = DurabilityManager::Open(opts);
      EXPECT_TRUE(mgr.ok());
      managers.push_back(std::move(*mgr));
      shards.push_back(std::make_unique<ShardWorld>(managers.back().get()));
    }
    ShardRouterOptions options;
    options.vocab = &shards[0]->dataset.vocab;
    std::vector<ShardSpec> specs;
    for (size_t i = 0; i < 2; ++i) {
      specs.push_back(ShardSpec{"shard-" + std::to_string(i),
                                shards[i]->service.get(), managers[i].get(),
                                1.0});
    }
    router = std::make_unique<ShardRouter>(std::move(specs), options);
  }

  /// First reversible-relation case whose subject and object live on
  /// different shards.
  const EditCase* CrossShardCase() const {
    for (const EditCase& c : shards[0]->dataset.cases) {
      if (router->ShardFor(c.edit.subject) !=
              router->ShardFor(c.edit.object) &&
          !shards[0]->dataset.vocab.InverseOf(c.edit.relation).empty()) {
        return &c;
      }
    }
    return nullptr;
  }

  bool SubjectApplied(const EditCase& c) const {
    const auto decode = router->Ask(c.edit.subject, c.edit.relation);
    return decode.ok() && decode->entity == c.edit.object;
  }

  bool ObjectApplied(const EditCase& c) const {
    const std::string inverse =
        shards[0]->dataset.vocab.InverseOf(c.edit.relation);
    const auto decode = router->Ask(c.edit.object, inverse);
    return decode.ok() && decode->entity == c.edit.subject;
  }

  std::vector<std::unique_ptr<DurabilityManager>> managers;
  std::vector<std::unique_ptr<ShardWorld>> shards;
  std::unique_ptr<ShardRouter> router;
};

// --------------------------------------------- kill at every failpoint ----

TEST(Shard2pcTest, CrashAtEveryFailpointNeverHalfApplies) {
  const std::string dir0 = testing::TempDir() + "/oneedit_2pc_kill_0";
  const std::string dir1 = testing::TempDir() + "/oneedit_2pc_kill_1";

  // Baseline pass: count each shard's journal failpoints for one
  // cross-shard edit (the workload is deterministic, so the counts hold
  // for every iteration).
  long ops[2] = {0, 0};
  {
    TempDirFor("oneedit_2pc_kill_0");
    TempDirFor("oneedit_2pc_kill_1");
    FaultInjectingEnv fault0(Env::Default());
    FaultInjectingEnv fault1(Env::Default());
    Fleet fleet(dir0, dir1, &fault0, &fault1);
    const EditCase* specimen = fleet.CrossShardCase();
    ASSERT_NE(specimen, nullptr);
    ASSERT_FALSE(fleet.SubjectApplied(*specimen));
    ASSERT_FALSE(fleet.ObjectApplied(*specimen));
    fault0.Clear();
    fault1.Clear();
    const auto result =
        fleet.router->SubmitAndWait(EditRequest::Edit(specimen->edit, "al"));
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->kind, EditResult::Kind::kEdited);
    ops[0] = fault0.ops_seen();
    ops[1] = fault1.ops_seen();
  }
  ASSERT_GT(ops[0], 0);
  ASSERT_GT(ops[1], 0);

  size_t acked_runs = 0, committed_runs = 0, aborted_runs = 0;
  for (size_t victim = 0; victim < 2; ++victim) {
    for (long k = 0; k < ops[victim]; ++k) {
      SCOPED_TRACE("victim shard " + std::to_string(victim) + ", failpoint " +
                   std::to_string(k));
      TempDirFor("oneedit_2pc_kill_0");
      TempDirFor("oneedit_2pc_kill_1");
      EditCase specimen;  // copied out: the crashed fleet's dataset dies
      bool acked = false;
      {
        FaultInjectingEnv fault0(Env::Default());
        FaultInjectingEnv fault1(Env::Default());
        Fleet fleet(dir0, dir1, &fault0, &fault1);
        const EditCase* found = fleet.CrossShardCase();
        ASSERT_NE(found, nullptr);
        specimen = *found;
        (victim == 0 ? fault0 : fault1).CrashAt(k);
        const auto result = fleet.router->SubmitAndWait(
            EditRequest::Edit(specimen.edit, "al"));
        acked = result.ok() && result->kind == EditResult::Kind::kEdited;
        // Process "dies" here: services and managers torn down with state
        // only on disk, mid-protocol.
      }

      // Restart on the same journals with a healthy disk; resolve.
      Fleet fleet(dir0, dir1, nullptr, nullptr);
      ASSERT_TRUE(fleet.shards[0]->service->recovery_status().ok());
      ASSERT_TRUE(fleet.shards[1]->service->recovery_status().ok());
      const auto resolved = fleet.router->RecoverInDoubt();
      ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();

      // Atomicity: once recovery settles, both halves or neither.
      const bool subject_applied = fleet.SubjectApplied(specimen);
      const bool object_applied = fleet.ObjectApplied(specimen);
      EXPECT_EQ(subject_applied, object_applied);
      // Zero acknowledged loss: an acked edit survives the crash.
      if (acked) {
        ++acked_runs;
        EXPECT_TRUE(subject_applied) << "acked cross-shard edit lost";
      }
      (subject_applied ? committed_runs : aborted_runs) += 1;

      // Nothing is left in doubt anywhere.
      for (const auto& mgr : fleet.managers) {
        EXPECT_TRUE(mgr->outstanding_txns().empty());
      }

      // Resolution idempotence: a second restart + pass changes no journal
      // byte on either shard.
      const std::string wal0 = ReadFile(dir0 + "/edits.wal");
      const std::string wal1 = ReadFile(dir1 + "/edits.wal");
      fleet.router.reset();
      fleet.shards.clear();
      fleet.managers.clear();
      Fleet again(dir0, dir1, nullptr, nullptr);
      const auto second = again.router->RecoverInDoubt();
      ASSERT_TRUE(second.ok());
      EXPECT_EQ(second->committed_applied, 0u);
      EXPECT_EQ(second->presumed_aborts, 0u);
      EXPECT_EQ(ReadFile(dir0 + "/edits.wal"), wal0)
          << "second recovery mutated shard 0's journal";
      EXPECT_EQ(ReadFile(dir1 + "/edits.wal"), wal1)
          << "second recovery mutated shard 1's journal";
      EXPECT_EQ(again.SubjectApplied(specimen), subject_applied);
      EXPECT_EQ(again.ObjectApplied(specimen), object_applied);
    }
  }
  // The sweep exercised both outcomes: early failpoints abort, late ones
  // (after the commit decision is durable) commit.
  EXPECT_GT(committed_runs, 0u);
  EXPECT_GT(aborted_runs, 0u);
  EXPECT_GT(acked_runs, 0u);
}

// --------------------------------------------------- targeted properties ----

TEST(Shard2pcTest, PrepareWithoutDecisionPresumesAbort) {
  const std::string dir0 = TempDirFor("oneedit_2pc_pa_0");
  const std::string dir1 = TempDirFor("oneedit_2pc_pa_1");
  // Journal a lone prepare on shard 1 — a coordinator that died before its
  // decision — directly at the manager layer.
  {
    DurabilityOptions opts;
    opts.dir = dir1;
    auto mgr = DurabilityManager::Open(opts);
    ASSERT_TRUE(mgr.ok());
    Statistics stats;
    EditRequest half =
        EditRequest::Edit({"Elmsworth", "governor", "Mara Norwood"}, "al");
    half.txn_id = 42;
    ASSERT_TRUE((*mgr)
                    ->LogPrepare(42, 0, half, EditingMethodKind::kGrace,
                                 &stats)
                    .ok());
    ASSERT_EQ((*mgr)->outstanding_txns().size(), 1u);
  }

  Fleet fleet(dir0, dir1, nullptr, nullptr);
  ASSERT_EQ(fleet.managers[1]->outstanding_txns().size(), 1u);
  const auto resolved = fleet.router->RecoverInDoubt();
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->presumed_aborts, 1u);
  EXPECT_EQ(resolved->committed_applied, 0u);
  EXPECT_TRUE(fleet.managers[1]->outstanding_txns().empty());
  EXPECT_GE(fleet.shards[1]->service->statistics().Get(
                Ticker::kTxnInDoubtResolved),
            1u);

  // The abort marker is journaled: a restart does not resurrect the doubt.
  size_t aborts = 0;
  const auto stats = EditWal::Replay(
      dir1 + "/edits.wal", nullptr, [&](const EditWalRecord& record) {
        if (record.txn_marker == TxnMarker::kAbortDecision) ++aborts;
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(aborts, 1u);
  const auto second = fleet.router->RecoverInDoubt();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->presumed_aborts, 0u);
}

TEST(Shard2pcTest, RetainedDecisionSurvivesWalRotation) {
  const std::string dir = TempDirFor("oneedit_2pc_rot");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_interval = 0;
  {
    auto mgr = DurabilityManager::Open(opts);
    ASSERT_TRUE(mgr.ok());
    Statistics stats;
    EditRequest half =
        EditRequest::Edit({"Elmsworth", "governor", "Mara Norwood"}, "al");
    half.txn_id = 7;
    ASSERT_TRUE(
        (*mgr)
            ->LogPrepare(7, 0, half, EditingMethodKind::kGrace, &stats)
            .ok());
    ASSERT_TRUE((*mgr)
                    ->LogTxnDecision(7, /*commit=*/true,
                                     EditingMethodKind::kGrace, &stats)
                    .ok());

    // A checkpoint rotates the WAL clean; the 2PC state must be
    // re-journaled into the fresh log or a crash right after would forget
    // a decided transaction.
    World world;
    ASSERT_TRUE((*mgr)->Checkpoint(*world.system, &stats).ok());
  }

  // The rotated journal still carries both markers...
  size_t prepares = 0, commits = 0;
  const auto stats = EditWal::Replay(
      dir + "/edits.wal", nullptr, [&](const EditWalRecord& record) {
        if (record.txn_marker == TxnMarker::kPrepare) ++prepares;
        if (record.txn_marker == TxnMarker::kCommitDecision) ++commits;
        return Status::OK();
      });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(prepares, 1u);
  EXPECT_EQ(commits, 1u);

  // ...so a reopened manager still knows the transaction committed.
  auto reopened = DurabilityManager::Open(opts);
  ASSERT_TRUE(reopened.ok());
  World world;
  ASSERT_TRUE((*reopened)->Recover(world.system.get()).ok());
  EXPECT_TRUE((*reopened)->txn_committed(7));
  ASSERT_EQ((*reopened)->outstanding_txns().size(), 1u);
  EXPECT_EQ((*reopened)->outstanding_txns().front().txn_id, 7u);
}

}  // namespace
}  // namespace oneedit
