#include <gtest/gtest.h>

#include "nlp/gazetteer.h"
#include "nlp/intent_classifier.h"
#include "nlp/tokenizer.h"
#include "nlp/triple_extractor.h"
#include "nlp/utterance_generator.h"

namespace oneedit {
namespace {

// ------------------------------------------------------------- Tokenizer ----

TEST(TokenizerTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("Change the President"),
            (std::vector<std::string>{"change", "the", "president"}));
}

TEST(TokenizerTest, PunctuationBecomesTokens) {
  EXPECT_EQ(Tokenize("Hello, world!"),
            (std::vector<std::string>{"hello", ",", "world", "!"}));
}

TEST(TokenizerTest, PossessiveIsItsOwnToken) {
  EXPECT_EQ(Tokenize("Biden's wife"),
            (std::vector<std::string>{"biden", "'s", "wife"}));
}

TEST(TokenizerTest, UnicodeApostropheNormalized) {
  EXPECT_EQ(Tokenize("Biden\xE2\x80\x99s wife"),
            (std::vector<std::string>{"biden", "'s", "wife"}));
}

TEST(TokenizerTest, HyphensAndUnderscoresKeptInWord) {
  EXPECT_EQ(Tokenize("first_lady of Port-Alden"),
            (std::vector<std::string>{"first_lady", "of", "port-alden"}));
}

TEST(TokenizerTest, DetokenizeJoins) {
  EXPECT_EQ(Detokenize({"a", "b"}), "a b");
}

// ------------------------------------------------------------- Gazetteer ----

TEST(GazetteerTest, LongestMatchWinsAtEachPosition) {
  Gazetteer gazetteer;
  gazetteer.AddPhrase("spouse", "spouse");
  gazetteer.AddPhrase("spouse party", "spouse_party");
  const auto matches = gazetteer.FindMatches(
      Tokenize("change the spouse party of Ada"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].canonical, "spouse_party");
}

TEST(GazetteerTest, MultipleNonOverlappingMatches) {
  Gazetteer gazetteer;
  gazetteer.AddPhrase("Ada Barker", "Ada Barker");
  gazetteer.AddPhrase("Hugo Castillo", "Hugo Castillo");
  const auto matches = gazetteer.FindMatches(
      Tokenize("Ada Barker married Hugo Castillo"));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].canonical, "Ada Barker");
  EXPECT_EQ(matches[0].begin, 0u);
  EXPECT_EQ(matches[1].canonical, "Hugo Castillo");
}

TEST(GazetteerTest, NoMatchReturnsEmpty) {
  Gazetteer gazetteer;
  gazetteer.AddPhrase("governor", "governor");
  EXPECT_TRUE(gazetteer.FindMatches(Tokenize("nothing here")).empty());
}

TEST(GazetteerTest, LaterRegistrationWins) {
  Gazetteer gazetteer;
  gazetteer.AddPhrase("potus", "Trump");
  gazetteer.AddPhrase("POTUS", "Biden");  // same tokens after lowering
  const auto matches = gazetteer.FindMatches(Tokenize("the potus spoke"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].canonical, "Biden");
}

// ------------------------------------------------------ IntentClassifier ----

UtteranceSpec TestSpec() {
  UtteranceSpec spec;
  spec.subjects = {"Ada Barker", "Ashfield", "Hugo Castillo"};
  spec.relations = {"governor", "spouse", "capital"};
  spec.objects = {"Kira Lockhart", "Aldenton"};
  return spec;
}

TEST(IntentClassifierTest, UntrainedDefaultsToGenerate) {
  IntentClassifier classifier;
  EXPECT_FALSE(classifier.trained());
  EXPECT_EQ(classifier.Predict("anything").intent, Intent::kGenerate);
}

TEST(IntentClassifierTest, SeparatesEditFromChat) {
  IntentClassifier classifier;
  classifier.Train(GenerateIntentTrainingData(TestSpec(), 200, 5));
  ASSERT_TRUE(classifier.trained());
  EXPECT_EQ(
      classifier.Predict("Change the governor of Ashfield to Ada Barker.")
          .intent,
      Intent::kEdit);
  EXPECT_EQ(classifier.Predict("Who is the governor of Ashfield?").intent,
            Intent::kGenerate);
  EXPECT_EQ(classifier.Predict("Write a short poem about the ocean.").intent,
            Intent::kGenerate);
  EXPECT_EQ(
      classifier.Predict("Update the capital of Ashfield to Aldenton.").intent,
      Intent::kEdit);
}

TEST(IntentClassifierTest, HeldOutTemplateAccuracy) {
  IntentClassifier classifier;
  classifier.Train(GenerateIntentTrainingData(TestSpec(), 300, 5));
  // Evaluate on deterministic template fills not necessarily seen in
  // training order.
  int correct = 0;
  int total = 0;
  for (size_t t = 0; t < EditTemplates().size(); ++t) {
    const std::string utterance =
        EditUtterance({"Ashfield", "governor", "Hugo Castillo"}, t);
    correct += classifier.Predict(utterance).intent == Intent::kEdit;
    ++total;
  }
  for (size_t t = 0; t < 5; ++t) {
    const std::string utterance = QueryUtterance("Ashfield", "governor", t);
    correct += classifier.Predict(utterance).intent == Intent::kGenerate;
    ++total;
  }
  EXPECT_GE(correct, total - 1) << correct << "/" << total;
}

TEST(IntentClassifierTest, ConfidenceAtLeastHalf) {
  IntentClassifier classifier;
  classifier.Train(GenerateIntentTrainingData(TestSpec(), 100, 5));
  const IntentPrediction p = classifier.Predict("Hello there!");
  EXPECT_GE(p.confidence, 0.5);
  EXPECT_LE(p.confidence, 1.0);
}

// -------------------------------------------------------------- Templates ----

TEST(UtteranceTest, FillTemplateSurfacesRelations) {
  EXPECT_EQ(FillTemplate("The {rel} of {subj} is now {obj}.", "Ashfield",
                         "first_lady", "Vera Xiong"),
            "The first lady of Ashfield is now Vera Xiong.");
}

TEST(UtteranceTest, EditUtteranceCyclesTemplates) {
  const NamedTriple triple{"Ashfield", "governor", "Ada Barker"};
  const std::string first = EditUtterance(triple, 0);
  const std::string wrapped = EditUtterance(triple, EditTemplates().size());
  EXPECT_EQ(first, wrapped);
  EXPECT_NE(first, EditUtterance(triple, 1));
}

TEST(UtteranceTest, TrainingDataBalancedAndDeterministic) {
  const auto data1 = GenerateIntentTrainingData(TestSpec(), 50, 7);
  const auto data2 = GenerateIntentTrainingData(TestSpec(), 50, 7);
  ASSERT_EQ(data1.size(), 150u);  // edit + generate + erase
  size_t edits = 0;
  size_t erases = 0;
  for (const IntentExample& example : data1) {
    edits += example.label == Intent::kEdit;
    erases += example.label == Intent::kErase;
  }
  EXPECT_EQ(edits, 50u);
  EXPECT_EQ(erases, 50u);
  for (size_t i = 0; i < data1.size(); ++i) {
    EXPECT_EQ(data1[i].text, data2[i].text);
  }
  // Different seed gives different data.
  const auto data3 = GenerateIntentTrainingData(TestSpec(), 50, 8);
  bool any_different = false;
  for (size_t i = 0; i < data1.size(); ++i) {
    any_different |= data1[i].text != data3[i].text;
  }
  EXPECT_TRUE(any_different);
}

// -------------------------------------------------------- TripleExtractor ----

class ExtractorTest : public ::testing::Test {
 protected:
  ExtractorTest() {
    extractor_.AddEntity("Ashfield", "Ashfield");
    extractor_.AddEntity("the State of Ashfield", "Ashfield");
    extractor_.AddEntity("Ada Barker", "Ada Barker");
    extractor_.AddEntity("Governor Ada Barker", "Ada Barker");
    extractor_.AddEntity("Hugo Castillo", "Hugo Castillo");
    extractor_.AddEntity("Kira Lockhart", "Kira Lockhart");
    extractor_.AddRelation("governor", "governor");
    extractor_.AddRelation("spouse", "spouse");
    extractor_.AddRelation("first lady", "first_lady");
  }
  TripleExtractor extractor_;
};

TEST_F(ExtractorTest, RelationOfSubjectPattern) {
  const auto triple =
      extractor_.Extract("Change the governor of Ashfield to Hugo Castillo.");
  ASSERT_TRUE(triple.ok());
  EXPECT_EQ(*triple,
            (NamedTriple{"Ashfield", "governor", "Hugo Castillo"}));
}

TEST_F(ExtractorTest, PossessivePattern) {
  const auto triple =
      extractor_.Extract("Ada Barker's spouse is now Kira Lockhart.");
  ASSERT_TRUE(triple.ok());
  EXPECT_EQ(*triple, (NamedTriple{"Ada Barker", "spouse", "Kira Lockhart"}));
}

TEST_F(ExtractorTest, AliasesResolveToCanonical) {
  const auto triple = extractor_.Extract(
      "Governor Ada Barker's spouse is now Kira Lockhart.");
  ASSERT_TRUE(triple.ok());
  EXPECT_EQ(triple->subject, "Ada Barker");
  const auto triple2 = extractor_.Extract(
      "Set the governor of the State of Ashfield to Hugo Castillo.");
  ASSERT_TRUE(triple2.ok());
  EXPECT_EQ(triple2->subject, "Ashfield");
}

TEST_F(ExtractorTest, MultiWordRelation) {
  const auto triple = extractor_.Extract(
      "The first lady of Ashfield is now Kira Lockhart.");
  ASSERT_TRUE(triple.ok());
  EXPECT_EQ(*triple, (NamedTriple{"Ashfield", "first_lady", "Kira Lockhart"}));
}

TEST_F(ExtractorTest, MissingRelationFails) {
  EXPECT_FALSE(extractor_.Extract("Ada Barker met Hugo Castillo.").ok());
}

TEST_F(ExtractorTest, MissingSecondEntityFails) {
  EXPECT_FALSE(extractor_.Extract("Change the governor of Ashfield.").ok());
}

TEST_F(ExtractorTest, ExtractQueryParsesQuestions) {
  const auto query = extractor_.ExtractQuery("Who is the governor of Ashfield?");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->first, "Ashfield");
  EXPECT_EQ(query->second, "governor");

  const auto possessive = extractor_.ExtractQuery("What is Ada Barker's spouse?");
  ASSERT_TRUE(possessive.ok());
  EXPECT_EQ(possessive->first, "Ada Barker");
  EXPECT_EQ(possessive->second, "spouse");

  EXPECT_FALSE(extractor_.ExtractQuery("How do I bake bread?").ok());
}

/// Property sweep: every edit template must round-trip through the extractor.
class TemplateRoundTripTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TemplateRoundTripTest, EditTemplateParses) {
  TripleExtractor extractor;
  extractor.AddEntity("Ashfield", "Ashfield");
  extractor.AddEntity("Hugo Castillo", "Hugo Castillo");
  extractor.AddRelation("governor", "governor");
  const NamedTriple triple{"Ashfield", "governor", "Hugo Castillo"};
  const std::string utterance = EditUtterance(triple, GetParam());
  const auto extracted = extractor.Extract(utterance);
  ASSERT_TRUE(extracted.ok()) << "template " << GetParam() << ": " << utterance;
  EXPECT_EQ(*extracted, triple) << utterance;
}

INSTANTIATE_TEST_SUITE_P(AllEditTemplates, TemplateRoundTripTest,
                         ::testing::Range<size_t>(0, 12));

}  // namespace
}  // namespace oneedit
