// Cost-profiler coverage (docs/observability.md "Graph-cost profiling"):
// sharded-counter correctness under racing writers, ranking math against a
// hand-built KG with known fan-out, top-K stability across aggregation
// cycles, and /profile endpoint self-consistency with the /metrics gauge
// families. The racing-writer tests are part of the TSan matrix.

#include "obs/profiler.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "kg/knowledge_graph.h"
#include "serving/edit_service.h"

namespace oneedit {
namespace {

using obs::CostEntry;
using obs::CostProfiler;
using serving::EditService;
using serving::EditServiceOptions;
using serving::ReadOptions;

/// Every test starts from a quiescent, empty profiler (it is process-wide
/// state shared across the whole test binary).
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CostProfiler::Global().ResetForTesting();
    CostProfiler::Global().SetEnabled(true);
    CostProfiler::Global().SetAggregationIntervalMillis(0);
  }
  void TearDown() override {
    CostProfiler::Global().SetEnabled(false);
    CostProfiler::Global().SetAggregationIntervalMillis(500);
    CostProfiler::Global().ResetForTesting();
  }
};

CostEntry FindEntry(const std::vector<CostEntry>& entries,
                    const std::string& name) {
  for (const CostEntry& e : entries) {
    if (e.name == name) return e;
  }
  return CostEntry{};
}

// --- Sharded counters under racing writers ---------------------------------

TEST_F(ProfilerTest, ShardedCountersSumExactlyUnderFourRacingWriters) {
  CostProfiler& profiler = CostProfiler::Global();
  constexpr int kThreads = 4;
  constexpr int kTicksPerThread = 5000;
  constexpr int kEntities = 8;

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&profiler, t] {
      const std::string object = "object_" + std::to_string(t);
      for (int i = 0; i < kTicksPerThread; ++i) {
        const std::string entity = "entity_" + std::to_string(i % kEntities);
        profiler.RecordRead(entity, "reads", 2);
        profiler.RecordEdit(entity, "edits", object, 3);
      }
    });
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(profiler.dropped(), 0u);
  const std::vector<CostEntry> entities = profiler.HotEntities(64);
  // Every tick records one read (2 us) and one edit (3 us), spread evenly
  // over kEntities subjects. Exact sums — no tick may be lost or doubled.
  constexpr uint64_t kPerEntity =
      static_cast<uint64_t>(kThreads) * kTicksPerThread / kEntities;
  uint64_t total_requests = 0;
  uint64_t total_edits = 0;
  for (int e = 0; e < kEntities; ++e) {
    const CostEntry entry = FindEntry(entities, "entity_" + std::to_string(e));
    EXPECT_EQ(entry.requests, kPerEntity) << entry.name;
    EXPECT_EQ(entry.read_micros, kPerEntity * 2) << entry.name;
    EXPECT_EQ(entry.edits, kPerEntity) << entry.name;
    EXPECT_EQ(entry.edit_micros, kPerEntity * 3) << entry.name;
    total_requests += entry.requests;
    total_edits += entry.edits;
  }
  EXPECT_EQ(total_requests,
            static_cast<uint64_t>(kThreads) * kTicksPerThread);
  EXPECT_EQ(total_edits, total_requests);

  // The relation table saw every tick too.
  const std::vector<CostEntry> relations = profiler.ExpensiveRules(16);
  const CostEntry reads = FindEntry(relations, "reads");
  EXPECT_EQ(reads.requests, total_requests);
  EXPECT_EQ(reads.read_micros, total_requests * 2);
  const CostEntry edits = FindEntry(relations, "edits");
  EXPECT_EQ(edits.edits, total_edits);
  EXPECT_EQ(edits.edit_micros, total_edits * 3);

  // Edit objects are charged churn only (count, no micros).
  for (int t = 0; t < kThreads; ++t) {
    const CostEntry object = FindEntry(entities, "object_" + std::to_string(t));
    EXPECT_EQ(object.edits, static_cast<uint64_t>(kTicksPerThread));
    EXPECT_EQ(object.edit_micros, 0u);
    EXPECT_EQ(object.requests, 0u);
  }
}

// --- Ranking math against a hand-built KG ----------------------------------

TEST_F(ProfilerTest, TotalCostJoinsTrafficWithKnownKgFanOut) {
  // hub: out-degree 3 + in-degree 1 = fan-out 4. leaf: in-degree 1.
  KnowledgeGraph kg;
  const EntityId hub = kg.InternEntity("hub");
  const EntityId leaf = kg.InternEntity("leaf");
  const EntityId a = kg.InternEntity("a");
  const EntityId b = kg.InternEntity("b");
  const RelationId likes = kg.schema().Define("likes", /*functional=*/false);
  ASSERT_TRUE(kg.Add(Triple{hub, likes, a}).ok());
  ASSERT_TRUE(kg.Add(Triple{hub, likes, b}).ok());
  ASSERT_TRUE(kg.Add(Triple{hub, likes, leaf}).ok());
  ASSERT_TRUE(kg.Add(Triple{a, likes, hub}).ok());
  const KgReadView view = kg.SnapshotView();
  ASSERT_EQ(view.FanOut("hub"), 4u);
  ASSERT_EQ(view.FanOut("leaf"), 1u);
  ASSERT_EQ(view.FanOut("no_such_entity"), 0u);

  CostProfiler& profiler = CostProfiler::Global();
  profiler.SetEntityWeightProvider(
      [view](const std::vector<std::string>& names) {
        std::vector<uint64_t> weights;
        weights.reserve(names.size());
        for (const std::string& name : names) {
          weights.push_back(view.FanOut(name));
        }
        return weights;
      });
  profiler.SetRelationWeightProvider(
      [](const std::vector<std::string>& names) {
        // Pretend two Horn rules touch every relation.
        return std::vector<uint64_t>(names.size(), 2);
      });

  // Identical traffic on both entities: only the fan-out separates them.
  for (int i = 0; i < 10; ++i) {
    profiler.RecordRead("hub", "likes", 3);
    profiler.RecordRead("leaf", "likes", 3);
  }

  const std::vector<CostEntry> entities = profiler.HotEntities(8);
  const CostEntry hub_entry = FindEntry(entities, "hub");
  const CostEntry leaf_entry = FindEntry(entities, "leaf");
  // cost = (requests + edits + read_micros + edit_micros) * (1 + weight)
  EXPECT_EQ(hub_entry.weight, 4u);
  EXPECT_DOUBLE_EQ(hub_entry.total_cost, (10 + 30) * (1 + 4.0));
  EXPECT_EQ(leaf_entry.weight, 1u);
  EXPECT_DOUBLE_EQ(leaf_entry.total_cost, (10 + 30) * (1 + 1.0));
  ASSERT_FALSE(entities.empty());
  EXPECT_EQ(entities.front().name, "hub");  // fan-out decides the ranking

  const std::vector<CostEntry> rules = profiler.ExpensiveRules(8);
  const CostEntry likes_entry = FindEntry(rules, "likes");
  EXPECT_EQ(likes_entry.requests, 20u);
  EXPECT_EQ(likes_entry.weight, 2u);
  EXPECT_DOUBLE_EQ(likes_entry.total_cost, (20 + 60) * (1 + 2.0));
}

// --- Top-K stability across aggregation cycles ------------------------------

TEST_F(ProfilerTest, TopKIsStableAcrossAggregationCycles) {
  CostProfiler& profiler = CostProfiler::Global();
  for (int e = 0; e < 20; ++e) {
    for (int i = 0; i <= e; ++i) {
      profiler.RecordRead("entity_" + std::to_string(e), "rel", 1);
    }
  }
  profiler.Aggregate();
  const std::vector<CostEntry> first = profiler.HotEntities(10);
  ASSERT_EQ(first.size(), 10u);
  EXPECT_EQ(first.front().name, "entity_19");

  // No new traffic: further cycles must reproduce the identical ranking
  // (deterministic sort with a name tiebreak, stable totals).
  for (int cycle = 0; cycle < 3; ++cycle) {
    profiler.Aggregate();
    const std::vector<CostEntry> again = profiler.HotEntities(10);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(again[i].name, first[i].name) << "rank " << i;
      EXPECT_DOUBLE_EQ(again[i].total_cost, first[i].total_cost) << i;
    }
  }

  // A cached ranking (long interval) is also stable across queries even
  // when new traffic arrives between them.
  profiler.SetAggregationIntervalMillis(60000);
  const std::vector<CostEntry> cached = profiler.HotEntities(10);
  profiler.RecordRead("entity_0", "rel", 1000);
  const std::vector<CostEntry> still_cached = profiler.HotEntities(10);
  ASSERT_EQ(cached.size(), still_cached.size());
  for (size_t i = 0; i < cached.size(); ++i) {
    EXPECT_EQ(cached[i].name, still_cached[i].name) << i;
  }
}

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing) {
  CostProfiler& profiler = CostProfiler::Global();
  profiler.SetEnabled(false);
  profiler.RecordRead("ghost", "rel", 5);
  profiler.RecordEdit("ghost", "rel", "other", 5);
  profiler.SetEnabled(true);
  EXPECT_TRUE(profiler.HotEntities(8).empty());
  EXPECT_TRUE(profiler.ExpensiveRules(8).empty());
}

TEST_F(ProfilerTest, TableOverflowCountsDropsInsteadOfBlocking) {
  CostProfiler& profiler = CostProfiler::Global();
  // One thread writes far more distinct relation names than one shard's
  // table holds: the tail must land in `dropped`, and the write path must
  // keep returning (never block, never resize).
  const size_t kNames = CostProfiler::kRelationSlots * 4;
  for (size_t i = 0; i < kNames; ++i) {
    profiler.RecordRead("entity", "relation_" + std::to_string(i), 1);
  }
  EXPECT_GT(profiler.dropped(), 0u);
  const CostEntry entity = FindEntry(profiler.HotEntities(4), "entity");
  EXPECT_EQ(entity.requests, static_cast<uint64_t>(kNames));
}

TEST_F(ProfilerTest, OwnerTokenProtectsNewerProviderRegistrations) {
  CostProfiler& profiler = CostProfiler::Global();
  int owner_a = 0;
  int owner_b = 0;
  profiler.SetEntityWeightProvider(
      [](const std::vector<std::string>& names) {
        return std::vector<uint64_t>(names.size(), 7);
      },
      &owner_a);
  // A newer service takes over the registration...
  profiler.SetEntityWeightProvider(
      [](const std::vector<std::string>& names) {
        return std::vector<uint64_t>(names.size(), 9);
      },
      &owner_b);
  // ...and the older one's teardown must not clear it.
  profiler.ClearWeightProviders(&owner_a);
  profiler.RecordRead("survivor", "rel", 1);
  EXPECT_EQ(FindEntry(profiler.HotEntities(4), "survivor").weight, 9u);
}

// --- /profile endpoint self-consistency with /metrics ----------------------

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(ProfilerTest, ProfileEndpointIsSelfConsistentWithMetricsGauges) {
  DatasetOptions dataset_options;
  dataset_options.num_cases = 12;
  Dataset dataset = BuildAmericanPoliticians(dataset_options);
  auto model =
      std::make_unique<LanguageModel>(Gpt2XlSimConfig(), dataset.vocab);
  model->Pretrain(dataset.pretrain_facts);
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  EditServiceOptions options;
  options.expose_metrics = true;
  auto created =
      EditService::Create(&dataset.kg, model.get(), config, options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  std::unique_ptr<EditService> service = std::move(created).value();
  ASSERT_NE(service->metrics_server(), nullptr);
  const uint16_t port = service->metrics_server()->port();

  // Traffic: a few edits and a skewed read set on one subject.
  for (size_t i = 0; i < 4; ++i) {
    const auto result = service->SubmitAndWait(
        EditRequest::Edit(dataset.cases[i].edit, "alice"));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  auto snapshot = service->GetSnapshot(ReadOptions{});
  ASSERT_TRUE(snapshot.ok());
  const std::string hot_subject = dataset.cases[0].edit.subject;
  const std::string hot_relation = dataset.cases[0].edit.relation;
  for (int i = 0; i < 50; ++i) {
    (void)snapshot->Ask(hot_subject, hot_relation);
  }

  // Freeze one aggregation cycle so both expositions serve the same cache.
  CostProfiler::Global().SetAggregationIntervalMillis(60000);
  CostProfiler::Global().Aggregate();

  const std::string metrics = HttpGet(port, "/metrics");
  const std::string profile = HttpGet(port, "/profile?k=10");
  ASSERT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  ASSERT_NE(profile.find("HTTP/1.0 200"), std::string::npos);
  ASSERT_NE(profile.find("application/json"), std::string::npos);

  // The hot keys show up on both surfaces.
  EXPECT_NE(metrics.find("oneedit_profiler_hot_entity_cost{entity=\"" +
                         hot_subject + "\"}"),
            std::string::npos)
      << metrics;
  EXPECT_NE(profile.find("\"name\":\"" + hot_subject + "\""),
            std::string::npos)
      << profile;
  EXPECT_NE(profile.find("\"name\":\"" + hot_relation + "\""),
            std::string::npos)
      << profile;

  // Scalar gauges match the JSON's aggregate counters.
  const auto scrape_gauge = [&metrics](const std::string& name) {
    const std::string needle = "\n" + name + " ";
    const size_t pos = metrics.find(needle);
    EXPECT_NE(pos, std::string::npos) << name;
    if (pos == std::string::npos) return std::string();
    const size_t start = pos + needle.size();
    return metrics.substr(start, metrics.find('\n', start) - start);
  };
  EXPECT_EQ(scrape_gauge("oneedit_profiler_enabled"), "1");
  const std::string tracked = scrape_gauge("oneedit_profiler_entities_tracked");
  EXPECT_NE(profile.find("\"entities_tracked\":" + tracked), std::string::npos)
      << "gauge says " << tracked << " but /profile disagrees: " << profile;

  // The admin API agrees with what the endpoint served: the hot entity's
  // read count covers at least the 50 pinned-snapshot asks, and the JSON
  // row carries the same number.
  const CostEntry hot =
      FindEntry(CostProfiler::Global().HotEntities(10), hot_subject);
  EXPECT_GE(hot.requests, 50u);
  EXPECT_NE(profile.find("\"requests\":" + std::to_string(hot.requests)),
            std::string::npos)
      << profile;

  // Weight comes from the live KG: the subject exists, so its fan-out after
  // four applied edits is at least 1.
  EXPECT_GE(hot.weight, 1u);

  service->Stop();
}

}  // namespace
}  // namespace oneedit
