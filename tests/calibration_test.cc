// Calibration guard-rails: the qualitative shapes EXPERIMENTS.md reports
// (method orderings, signature profiles, figure trends) are asserted here on
// reduced case counts, so a change that silently bends the reproduced curves
// fails the suite instead of shipping.

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "eval/harness.h"

namespace oneedit {
namespace {

class CalibrationTest : public ::testing::Test {
 protected:
  static Harness& SharedHarness() {
    static Harness* const harness = new Harness(
        [] {
          DatasetOptions options;
          options.num_cases = 20;
          return BuildAmericanPoliticians(options);
        },
        GptJSimConfig());
    return *harness;
  }

  static HarnessResult Run(const std::string& method, RunOptions options = {}) {
    const auto result = SharedHarness().Run(*ParseMethodSpec(method), options);
    EXPECT_TRUE(result.ok()) << method;
    return result.ValueOr(HarnessResult{});
  }
};

TEST_F(CalibrationTest, Table1MethodOrderingByAverage) {
  const double ft = Run("FT").scores.Average();
  const double rome = Run("ROME").scores.Average();
  const double memit = Run("MEMIT").scores.Average();
  const double grace = Run("GRACE").scores.Average();
  const double oneedit_grace = Run("OneEdit (GRACE)").scores.Average();
  const double oneedit_memit = Run("OneEdit (MEMIT)").scores.Average();

  // The paper's Table 1 ordering.
  EXPECT_GT(oneedit_grace, memit);
  EXPECT_GT(oneedit_memit, memit);
  EXPECT_GT(memit, rome);
  EXPECT_GT(rome, grace);
  EXPECT_GT(grace, ft);
  EXPECT_GT(oneedit_grace, 0.85);
  EXPECT_GT(oneedit_memit, 0.85);
}

TEST_F(CalibrationTest, GraceSignatureProfile) {
  const MetricScores s = Run("GRACE").scores;
  EXPECT_DOUBLE_EQ(s.reliability, 1.0);
  EXPECT_DOUBLE_EQ(s.locality, 1.0);
  EXPECT_DOUBLE_EQ(s.reverse, 0.0);
  EXPECT_DOUBLE_EQ(s.sub_replace, 0.0);
  EXPECT_LT(s.one_hop, 0.1);
}

TEST_F(CalibrationTest, FtSignatureProfile) {
  const MetricScores s = Run("FT").scores;
  EXPECT_GT(s.reliability, 0.5);  // overfits its own edit
  EXPECT_LT(s.locality, 0.25);    // destroys everything else
}

TEST_F(CalibrationTest, WeightMethodsHaveHighSingleEditLocality) {
  EXPECT_GT(Run("ROME").scores.locality, 0.9);
  EXPECT_GT(Run("MEMIT").scores.locality, 0.9);
}

TEST_F(CalibrationTest, OneEditWinsEveryPortabilityColumn) {
  const MetricScores base = Run("MEMIT").scores;
  const MetricScores wrapped = Run("OneEdit (MEMIT)").scores;
  EXPECT_GT(wrapped.reverse, base.reverse + 0.2);
  EXPECT_GT(wrapped.one_hop, base.one_hop + 0.3);
  EXPECT_GT(wrapped.sub_replace, base.sub_replace + 0.2);
}

TEST_F(CalibrationTest, Table2SequentialDegradationOrdering) {
  RunOptions users3;
  users3.users = 3;
  const double ft = Run("FT", users3).scores.locality;
  const double rome = Run("ROME", users3).scores.locality;
  const double memit = Run("MEMIT", users3).scores.locality;
  const double oneedit = Run("OneEdit (MEMIT)", users3).scores.locality;
  const double grace = Run("GRACE", users3).scores.locality;

  // FT worst, ROME collapsing, MEMIT degrading gracefully, OneEdit held up
  // by rollback, GRACE untouched.
  EXPECT_LT(ft, 0.2);
  EXPECT_LT(rome, memit);
  EXPECT_LT(memit, oneedit + 0.15);
  EXPECT_GT(oneedit, 0.7);
  EXPECT_DOUBLE_EQ(grace, 1.0);
  // Reliability survives for the surgical methods even at users = 3.
  EXPECT_GT(Run("ROME", users3).scores.reliability, 0.9);
  EXPECT_GT(Run("MEMIT", users3).scores.reliability, 0.9);
}

TEST_F(CalibrationTest, Figure3ShapeRisePlateauDecline) {
  const auto one_hop_at = [&](const std::string& method, size_t n) {
    RunOptions options;
    options.controller.num_generation_triples = n;
    return Run(method, options).scores.one_hop;
  };
  // Rise from n=0 to n=8 for both variants.
  const double grace0 = one_hop_at("OneEdit (GRACE)", 0);
  const double grace8 = one_hop_at("OneEdit (GRACE)", 8);
  const double grace32 = one_hop_at("OneEdit (GRACE)", 32);
  EXPECT_GT(grace8, grace0 + 0.4);
  // GRACE plateaus at large n.
  EXPECT_NEAR(grace32, grace8, 0.15);

  const double memit8 = one_hop_at("OneEdit (MEMIT)", 8);
  const double memit32 = one_hop_at("OneEdit (MEMIT)", 32);
  // MEMIT declines at large n (batch dilution).
  EXPECT_LT(memit32, memit8 - 0.3);
}

TEST_F(CalibrationTest, Figure4RulesDriveOneHop) {
  RunOptions no_rules;
  no_rules.controller.use_logical_rules = false;
  const double without = Run("OneEdit (GRACE)", no_rules).scores.one_hop;
  const double with = Run("OneEdit (GRACE)").scores.one_hop;
  EXPECT_GT(with, without + 0.5);
}

TEST_F(CalibrationTest, MemitBeatsRomeOnReverse) {
  // The joint-optimization leak makes MEMIT's reverse scores the strongest
  // among the weight baselines (paper: .58-.67 vs ROME's .10-.23).
  EXPECT_GT(Run("MEMIT").scores.reverse, Run("ROME").scores.reverse + 0.15);
}

}  // namespace
}  // namespace oneedit
