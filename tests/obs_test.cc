// Tests for the observability stack (docs/observability.md): the lock-free
// trace recorder (nesting, wraparound, concurrent drain — designed to run
// clean under ThreadSanitizer), the exponential histogram buckets behind
// Statistics percentiles, the MetricsRegistry expositions, the loopback
// metrics server, and the EditService end-to-end export surface.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/statistics.h"
#include "data/dataset.h"
#include "obs/metrics_registry.h"
#include "obs/metrics_server.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "serving/edit_service.h"

namespace oneedit {
namespace {

using obs::MetricsRegistry;
using obs::MetricsServer;
using obs::SpanRecord;
using obs::TraceContext;
using obs::TraceRecorder;
using obs::TraceScope;
using serving::EditService;
using serving::EditServiceOptions;

// --- Exponential histogram buckets -----------------------------------------

TEST(HistogramBucketsTest, IndexAndBoundRoundTrip) {
  const uint64_t samples[] = {0,    1,    2,       3,       4,
                              5,    7,    8,       15,      16,
                              100,  1000, 123456,  1u << 20, uint64_t{1} << 40};
  for (const uint64_t value : samples) {
    const size_t index = HistogramBucketIndex(value);
    ASSERT_LT(index, kHistogramBucketCount) << value;
    // The bucket's inclusive upper bound covers the value...
    EXPECT_GE(HistogramBucketUpperBound(index), value) << value;
    // ...and the previous bucket does not.
    if (index > 0) {
      EXPECT_LT(HistogramBucketUpperBound(index - 1), value) << value;
    }
  }
}

TEST(HistogramBucketsTest, BoundsAreStrictlyIncreasing) {
  for (size_t i = 1; i < 200; ++i) {
    EXPECT_GT(HistogramBucketUpperBound(i), HistogramBucketUpperBound(i - 1))
        << i;
  }
}

TEST(HistogramBucketsTest, RelativeWidthStaysUnderQuarter) {
  // 4 sub-buckets per power of two caps the percentile error at ~25%.
  for (uint64_t value = 4; value < (1u << 20); value = value * 5 / 4 + 1) {
    const size_t index = HistogramBucketIndex(value);
    const uint64_t hi = HistogramBucketUpperBound(index);
    const uint64_t lo = HistogramBucketUpperBound(index - 1) + 1;
    EXPECT_LE(hi - lo, lo / 4 + 1) << value;
  }
}

TEST(StatisticsTest, PercentilesExactToBucket) {
  Statistics stats;
  for (uint64_t v = 1; v <= 100; ++v) {
    stats.Record(Histogram::kServingReadMicros, v);
  }
  const HistogramSnapshot snapshot =
      stats.GetHistogram(Histogram::kServingReadMicros);
  EXPECT_EQ(snapshot.count, 100u);
  EXPECT_EQ(snapshot.max, 100u);
  // p50's observation is 50, whose bucket tops out at 55.
  EXPECT_GE(snapshot.P50(), 50u);
  EXPECT_LE(snapshot.P50(), 55u);
  // 95 is itself a bucket upper bound, so p95 is exact.
  EXPECT_EQ(snapshot.P95(), 95u);
  // p99's bucket bound (111) clamps to the exactly-tracked max.
  EXPECT_EQ(snapshot.P99(), 100u);
}

TEST(StatisticsTest, SingleValuePercentileIsExactInLowBuckets) {
  Statistics stats;
  for (int i = 0; i < 5; ++i) stats.Record(Histogram::kRollbackMicros, 7);
  EXPECT_EQ(stats.GetHistogram(Histogram::kRollbackMicros).P50(), 7u);
  EXPECT_EQ(stats.GetHistogram(Histogram::kRollbackMicros).P99(), 7u);
}

TEST(StatisticsTest, ToStringSkipsUntouchedAndShowsPercentiles) {
  Statistics stats;
  stats.Add(Ticker::kEditsAccepted);
  stats.Record(Histogram::kServingLatencyMicros, 10);
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("edits_accepted: 1"), std::string::npos) << text;
  EXPECT_NE(text.find("serving_latency_micros: p50 10"), std::string::npos)
      << text;
  EXPECT_NE(text.find("max 10 (1)"), std::string::npos) << text;
  // Untouched tickers and histograms stay out of the way.
  EXPECT_EQ(text.find("utterances"), std::string::npos) << text;
  EXPECT_EQ(text.find("wal_commit_micros"), std::string::npos) << text;
}

// --- Trace recorder --------------------------------------------------------

/// Shared recorder hygiene: tests in this binary all use the global
/// recorder, so each starts from a clean, enabled state.
void ResetRecorder() {
  TraceRecorder::Global().SetEnabled(true);
  TraceRecorder::Global().Clear();
}

std::map<uint64_t, std::vector<SpanRecord>> GroupByTrace(
    const std::vector<SpanRecord>& spans) {
  std::map<uint64_t, std::vector<SpanRecord>> traces;
  for (const SpanRecord& span : spans) traces[span.trace_id].push_back(span);
  return traces;
}

TEST(TraceRecorderTest, DisabledRecorderMintsInactiveContexts) {
  TraceRecorder::Global().Clear();
  TraceRecorder::Global().SetEnabled(false);
  const TraceContext ctx = TraceRecorder::Global().StartTrace();
  EXPECT_FALSE(ctx.active());
  {
    obs::Span noop("noop");  // must not record anything
  }
  EXPECT_TRUE(TraceRecorder::Global().Drain().empty());
  TraceRecorder::Global().SetEnabled(true);
}

TEST(TraceRecorderTest, SpansNestUnderTheAmbientScope) {
  ResetRecorder();
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceContext ctx = recorder.StartTrace();
  {
    TraceScope scope(ctx);
    obs::Span outer("outer");
    {
      obs::Span inner("inner");
    }
  }
  recorder.RecordRoot(ctx, "request", obs::TraceNowNanos());

  const auto traces = GroupByTrace(recorder.Drain());
  ASSERT_EQ(traces.count(ctx.trace_id), 1u);
  const std::vector<SpanRecord>& spans = traces.at(ctx.trace_id);
  ASSERT_EQ(spans.size(), 3u);

  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& span : spans) by_name[span.name] = span;
  ASSERT_EQ(by_name.count("request"), 1u);
  ASSERT_EQ(by_name.count("outer"), 1u);
  ASSERT_EQ(by_name.count("inner"), 1u);

  // Root: span id == trace id, no parent. Children chain under it.
  EXPECT_EQ(by_name["request"].span_id, ctx.trace_id);
  EXPECT_EQ(by_name["request"].parent_id, 0u);
  EXPECT_EQ(by_name["outer"].parent_id, ctx.trace_id);
  EXPECT_EQ(by_name["inner"].parent_id, by_name["outer"].span_id);

  // Ordering: a child's window nests inside its parent's.
  EXPECT_GE(by_name["inner"].start_ns, by_name["outer"].start_ns);
  EXPECT_LE(by_name["inner"].end_ns, by_name["outer"].end_ns);
  EXPECT_LE(by_name["outer"].end_ns, by_name["request"].end_ns);
}

TEST(TraceRecorderTest, SiblingSpansRestoreTheParent) {
  ResetRecorder();
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceContext ctx = recorder.StartTrace();
  {
    TraceScope scope(ctx);
    { obs::Span first("first"); }
    { obs::Span second("second"); }
  }
  const auto traces = GroupByTrace(recorder.Drain());
  const std::vector<SpanRecord>& spans = traces.at(ctx.trace_id);
  ASSERT_EQ(spans.size(), 2u);
  // Both siblings parent under the root, not under each other.
  EXPECT_EQ(spans[0].parent_id, ctx.trace_id);
  EXPECT_EQ(spans[1].parent_id, ctx.trace_id);
  // Drain preserves per-thread recording order.
  EXPECT_STREQ(spans[0].name, "first");
  EXPECT_STREQ(spans[1].name, "second");
}

TEST(TraceRecorderTest, RingWrapsKeepingTheNewestSpans) {
  ResetRecorder();
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceContext ctx = recorder.StartTrace();
  const uint64_t total = 3 * TraceRecorder::kRingCapacity + 17;
  for (uint64_t i = 0; i < total; ++i) {
    recorder.Record(ctx, "wrap", i, i + 1);
  }
  const std::vector<SpanRecord> spans = recorder.Drain();
  ASSERT_EQ(spans.size(), TraceRecorder::kRingCapacity);
  uint64_t min_end = UINT64_MAX;
  uint64_t max_end = 0;
  for (const SpanRecord& span : spans) {
    EXPECT_STREQ(span.name, "wrap");
    min_end = std::min(min_end, span.end_ns);
    max_end = std::max(max_end, span.end_ns);
  }
  // Oldest spans were overwritten; exactly the newest kRingCapacity remain.
  EXPECT_EQ(max_end, total);
  EXPECT_EQ(min_end, total - TraceRecorder::kRingCapacity + 1);
}

TEST(TraceRecorderTest, ConcurrentWritersAndDrainersStayTornFree) {
  ResetRecorder();
  TraceRecorder& recorder = TraceRecorder::Global();
  constexpr int kWriters = 4;
  constexpr int kSpansPerWriter = 20000;
  std::atomic<bool> stop_draining{false};
  std::atomic<uint64_t> drained_total{0};

  // Drainers race the writers: every record they surface must be intact
  // (a known name, a plausible window) — torn slots must be discarded.
  std::thread drainer([&] {
    while (!stop_draining.load(std::memory_order_acquire)) {
      for (const SpanRecord& span : recorder.Drain()) {
        const bool known = std::strcmp(span.name, "chaos-a") == 0 ||
                           std::strcmp(span.name, "chaos-b") == 0;
        if (!known || span.end_ns < span.start_ns || span.trace_id == 0) {
          ADD_FAILURE() << "torn span surfaced: " << span.name;
        }
      }
      drained_total.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      TraceContext ctx = recorder.StartTrace();
      TraceScope scope(ctx);
      for (int i = 0; i < kSpansPerWriter; ++i) {
        obs::Span span((w + i) % 2 == 0 ? "chaos-a" : "chaos-b");
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop_draining.store(true, std::memory_order_release);
  drainer.join();
  EXPECT_GT(drained_total.load(), 0u);
  EXPECT_FALSE(recorder.Drain().empty());
}

TEST(TraceRecorderTest, DumpTracesRendersATree) {
  ResetRecorder();
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceContext ctx = recorder.StartTrace();
  {
    TraceScope scope(ctx);
    obs::Span work("work");
  }
  recorder.RecordRoot(ctx, "request", obs::TraceNowNanos());
  const std::string dump = recorder.DumpTraces(3);
  EXPECT_NE(dump.find("request"), std::string::npos) << dump;
  EXPECT_NE(dump.find("work"), std::string::npos) << dump;
}

// --- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistryTest, TextExpositionCoversEveryKind) {
  MetricsRegistry registry;
  registry.AddCounter("edits", "Edits applied", [] { return 42u; });
  registry.AddGauge("depth", "Queue depth", [] { return 3.0; });
  registry.AddLabeledGauge("health", "Health state", [] {
    return std::vector<std::pair<obs::MetricLabel, double>>{
        {obs::MetricLabel{"state", "healthy"}, 1.0},
        {obs::MetricLabel{"state", "degraded"}, 0.0}};
  });
  registry.AddHistogram("latency", "Latency", [] {
    obs::HistogramExposition h;
    h.count = 10;
    h.sum = 100;
    h.max = 31;
    h.p50 = 9;
    h.p95 = 27;
    h.p99 = 31;
    h.buckets = {{9, 5}, {31, 10}};
    return h;
  });

  const std::string text = registry.ExposeText();
  EXPECT_NE(text.find("# TYPE oneedit_edits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("oneedit_edits_total 42"), std::string::npos);
  EXPECT_NE(text.find("oneedit_depth 3"), std::string::npos);
  EXPECT_NE(text.find("oneedit_health{state=\"healthy\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE oneedit_latency summary"), std::string::npos);
  EXPECT_NE(text.find("oneedit_latency{quantile=\"0.5\"} 9"),
            std::string::npos);
  EXPECT_NE(text.find("oneedit_latency{quantile=\"0.99\"} 31"),
            std::string::npos);
  EXPECT_NE(text.find("oneedit_latency_sum 100"), std::string::npos);
  EXPECT_NE(text.find("oneedit_latency_count 10"), std::string::npos);
  EXPECT_NE(text.find("oneedit_latency_max 31"), std::string::npos);
  EXPECT_NE(text.find("oneedit_latency_buckets_bucket{le=\"9\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("oneedit_latency_buckets_bucket{le=\"+Inf\"} 10"),
            std::string::npos);
}

TEST(MetricsRegistryTest, JsonExpositionIncludesInfoBlobs) {
  MetricsRegistry registry;
  registry.AddCounter("edits", "Edits", [] { return 7u; });
  registry.AddInfo("recovery", [] {
    return std::string("{\"replayed\":3}");
  });
  const std::string json = registry.ExposeJson();
  EXPECT_NE(json.find("\"counters\":{\"edits\":7}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"recovery\":{\"replayed\":3}"), std::string::npos)
      << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, NonFiniteGaugesStayValidInBothExpositions) {
  MetricsRegistry registry;
  registry.AddGauge("bad_ratio", "a gauge gone non-finite",
                    [] { return std::nan(""); });
  registry.AddGauge("bad_rate", "a gauge gone infinite",
                    [] { return std::numeric_limits<double>::infinity(); });

  const std::string text = registry.ExposeText();
  EXPECT_NE(text.find("oneedit_bad_ratio NaN"), std::string::npos) << text;
  EXPECT_NE(text.find("oneedit_bad_rate +Inf"), std::string::npos) << text;

  // JSON has no NaN/Inf literal: non-finite gauges must degrade to null
  // rather than corrupt the whole document.
  const std::string json = registry.ExposeJson();
  EXPECT_NE(json.find("\"bad_ratio\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"bad_rate\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos) << json;
  EXPECT_EQ(json.find("inf"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(MetricsRegistry::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(MetricsRegistry::JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(MetricsRegistryTest, LabelValuesEscapeHostileCharacters) {
  // Prometheus text exposition 0.0.4: label values escape backslash, quote,
  // and newline. A hostile entity name (they flow straight from user edits
  // into profiler top-K labels) must not break the exposition.
  MetricsRegistry registry;
  registry.AddLabeledGauge("hostile", "Hostile label values", [] {
    return std::vector<std::pair<obs::MetricLabel, double>>{
        {obs::MetricLabel{"entity", "back\\slash"}, 1.0},
        {obs::MetricLabel{"entity", "quo\"te"}, 2.0},
        {obs::MetricLabel{"entity", "new\nline"}, 3.0}};
  });
  const std::string text = registry.ExposeText();
  EXPECT_NE(text.find("oneedit_hostile{entity=\"back\\\\slash\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("oneedit_hostile{entity=\"quo\\\"te\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("oneedit_hostile{entity=\"new\\nline\"} 3"),
            std::string::npos)
      << text;
  // No raw newline may survive inside a sample line: every '\n' in the
  // exposition must start a fresh "name{...}" / "# " / blank line, never a
  // continuation of a label value.
  EXPECT_EQ(text.find("new\nline"), std::string::npos) << text;
}

// --- MetricsServer ---------------------------------------------------------

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsServerTest, ServesHandlerResponsesOverLoopback) {
  auto started = MetricsServer::Start(0, [](const std::string& path) {
    MetricsServer::Response response;
    if (path == "/metrics") {
      response.body = "oneedit_up 1\n";
    } else {
      response.status = 404;
      response.body = "nope";
    }
    return response;
  });
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<MetricsServer> server = std::move(*started);
  ASSERT_NE(server->port(), 0);

  const std::string ok = HttpGet(server->port(), "/metrics");
  EXPECT_NE(ok.find("HTTP/1.0 200"), std::string::npos) << ok;
  EXPECT_NE(ok.find("oneedit_up 1"), std::string::npos) << ok;

  const std::string missing = HttpGet(server->port(), "/other");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos) << missing;

  server->Stop();
  server->Stop();  // idempotent
}

TEST(MetricsServerTest, SilentClientCannotWedgeTheAcceptor) {
  auto started = MetricsServer::Start(0, [](const std::string&) {
    MetricsServer::Response response;
    response.body = "oneedit_up 1\n";
    return response;
  });
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<MetricsServer> server = std::move(*started);

  // Connect and send nothing: the server's receive timeout must unstick
  // the acceptor so later scrapes (and Stop) still work.
  const int silent = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(silent, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(silent, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  const std::string ok = HttpGet(server->port(), "/metrics");
  EXPECT_NE(ok.find("HTTP/1.0 200"), std::string::npos) << ok;

  server->Stop();  // must not hang on the still-open silent connection
  ::close(silent);
}

TEST(MetricsServerTest, MidResponseDisconnectDoesNotKillTheProcess) {
  // A big body guarantees the server is still writing when the client
  // vanishes; the resulting EPIPE/ECONNRESET must surface as a failed send,
  // never as SIGPIPE terminating the process.
  auto started = MetricsServer::Start(0, [](const std::string&) {
    MetricsServer::Response response;
    response.body.assign(8u << 20, 'x');
    return response;
  });
  ASSERT_TRUE(started.ok()) << started.status().ToString();
  std::unique_ptr<MetricsServer> server = std::move(*started);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), 0), 0);
  char buffer[1024];
  (void)::recv(fd, buffer, sizeof(buffer), 0);  // response has started
  // Abortive close (RST) so the server's in-flight send fails immediately.
  linger hard_close{};
  hard_close.l_onoff = 1;
  hard_close.l_linger = 0;
  (void)::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard_close,
                     sizeof(hard_close));
  ::close(fd);

  // Surviving to serve another scrape proves no SIGPIPE fired.
  const std::string ok = HttpGet(server->port(), "/metrics");
  EXPECT_NE(ok.find("HTTP/1.0 200"), std::string::npos);
  server->Stop();
}

// --- EditService export surface --------------------------------------------

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

struct ObsWorld {
  explicit ObsWorld(const EditServiceOptions& options = {})
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    OneEditConfig config;
    config.method = EditingMethodKind::kGrace;
    config.interpreter.extraction_error_rate = 0.0;
    auto created =
        EditService::Create(&dataset.kg, model.get(), config, options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

/// Extracts the value of a sample line "name value" from Prometheus text.
uint64_t ScrapeCounter(const std::string& text, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(EditServiceObsTest, WritePathEmitsTheFullSpanSet) {
  ResetRecorder();
  ObsWorld world;
  const EditCase& edit_case = world.dataset.cases.front();
  const auto result = world.service->SubmitAndWait(
      EditRequest::Edit(edit_case.edit, "alice"));
  ASSERT_TRUE(result.ok());

  const auto traces = GroupByTrace(TraceRecorder::Global().Drain());
  // Find the (single) trace that has a root "request" span.
  const std::vector<SpanRecord>* request_spans = nullptr;
  uint64_t trace_id = 0;
  for (const auto& [id, spans] : traces) {
    for (const SpanRecord& span : spans) {
      if (span.parent_id == 0 &&
          std::strcmp(span.name, "request") == 0) {
        request_spans = &spans;
        trace_id = id;
      }
    }
  }
  ASSERT_NE(request_spans, nullptr);

  std::set<std::string> names;
  for (const SpanRecord& span : *request_spans) names.insert(span.name);
  for (const char* expected :
       {"request", "admission", "queue-wait", "guard", "locate", "apply"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }

  // Regression: the root's direct children partition the request's life,
  // so their summed durations can never exceed the end-to-end duration.
  uint64_t root_duration = 0;
  uint64_t child_sum = 0;
  for (const SpanRecord& span : *request_spans) {
    if (span.span_id == trace_id) {
      root_duration = span.duration_ns();
    } else if (span.parent_id == trace_id) {
      child_sum += span.duration_ns();
    }
  }
  ASSERT_GT(root_duration, 0u);
  EXPECT_LE(child_sum, root_duration);
}

TEST(EditServiceObsTest, ReadPathTracesAndRecordsLatency) {
  ResetRecorder();
  ObsWorld world;
  const EditCase& edit_case = world.dataset.cases.front();
  (void)world.service->GetSnapshot()->Ask(edit_case.edit.subject,
                                          edit_case.edit.relation);

  EXPECT_EQ(world.service->statistics()
                .GetHistogram(Histogram::kServingReadMicros)
                .count,
            1u);
  bool found_ask_root = false;
  for (const SpanRecord& span : TraceRecorder::Global().Drain()) {
    if (span.parent_id == 0 && std::strcmp(span.name, "ask") == 0) {
      found_ask_root = true;
    }
  }
  EXPECT_TRUE(found_ask_root);
}

TEST(EditServiceObsTest, QueueWaitHistogramSeparatesFromLatency) {
  ResetRecorder();
  ObsWorld world;
  for (size_t i = 0; i < 4; ++i) {
    const auto result = world.service->SubmitAndWait(
        EditRequest::Edit(world.dataset.cases[i].edit, "alice"));
    ASSERT_TRUE(result.ok());
  }
  const Statistics& stats = world.service->statistics();
  EXPECT_EQ(stats.GetHistogram(Histogram::kServingQueueWaitMicros).count, 4u);
  EXPECT_EQ(stats.GetHistogram(Histogram::kServingLatencyMicros).count, 4u);
  // Queue-wait is a component of end-to-end latency.
  EXPECT_LE(stats.GetHistogram(Histogram::kServingQueueWaitMicros).sum,
            stats.GetHistogram(Histogram::kServingLatencyMicros).sum + 1);
}

TEST(EditServiceObsTest, MetricsEndpointServesConsistentPrometheusText) {
  ResetRecorder();
  EditServiceOptions options;
  options.expose_metrics = true;
  options.metrics_port = 0;  // ephemeral
  ObsWorld world(options);
  ASSERT_NE(world.service->metrics_server(), nullptr);
  const uint16_t port = world.service->metrics_server()->port();

  for (size_t i = 0; i < 4; ++i) {
    const auto result = world.service->SubmitAndWait(
        EditRequest::Edit(world.dataset.cases[i].edit, "alice"));
    ASSERT_TRUE(result.ok());
  }
  (void)world.service->GetSnapshot()->Ask(world.dataset.cases[0].edit.subject,
                           world.dataset.cases[0].edit.relation);

  const std::string response = HttpGet(port, "/metrics");
  ASSERT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  const std::string text = response.substr(response.find("\r\n\r\n") + 4);

  // Every ticker is present as a counter family.
  for (size_t i = 0; i < static_cast<size_t>(Ticker::kTickerCount); ++i) {
    const std::string full =
        "oneedit_" + TickerName(static_cast<Ticker>(i)) + "_total";
    EXPECT_NE(text.find("# TYPE " + full + " counter"), std::string::npos)
        << full;
  }
  // Every histogram exposes its quantiles.
  for (size_t i = 0; i < static_cast<size_t>(Histogram::kHistogramCount);
       ++i) {
    const std::string full =
        "oneedit_" + HistogramName(static_cast<Histogram>(i));
    EXPECT_NE(text.find(full + "{quantile=\"0.95\"}"), std::string::npos)
        << full;
  }
  // Self-consistency: every batch carries at least one accepted edit here.
  const uint64_t accepted = ScrapeCounter(text, "oneedit_edits_accepted_total");
  const uint64_t batches = ScrapeCounter(text, "oneedit_serving_batches_total");
  EXPECT_EQ(accepted, 4u);
  EXPECT_GE(accepted, batches);
  EXPECT_GE(batches, 1u);
  EXPECT_NE(text.find("oneedit_service_health{state=\"healthy\"} 1"),
            std::string::npos);

  // JSON twin and the health/trace admin endpoints.
  const std::string json = HttpGet(port, "/metrics.json");
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(json.find("\"edits_accepted\":4"), std::string::npos);
  EXPECT_NE(json.find("\"health_transitions\":[]"), std::string::npos);

  const std::string health = HttpGet(port, "/health");
  EXPECT_NE(health.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(health.find("healthy"), std::string::npos);

  const std::string traces = HttpGet(port, "/traces?n=2");
  EXPECT_NE(traces.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(traces.find("request"), std::string::npos);

  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404"), std::string::npos);

  world.service->Stop();
  // The listener dies with the service.
  EXPECT_EQ(HttpGet(port, "/metrics").find("HTTP/1.0 200"),
            std::string::npos);
}

TEST(EditServiceObsTest, HostileEntityNamesSurviveTheLabeledGaugePath) {
  // End-to-end regression: an entity name carrying every escaped character
  // reaches the profiler's top-K labeled gauges, and the /metrics scrape
  // stays parseable.
  obs::CostProfiler::Global().ResetForTesting();
  EditServiceOptions options;
  options.expose_metrics = true;
  ObsWorld world(options);
  ASSERT_NE(world.service->metrics_server(), nullptr);
  const uint16_t port = world.service->metrics_server()->port();

  const std::string hostile = "evil\\entity\"with\nnewline";
  obs::CostProfiler::Global().RecordRead(hostile, "hostile_relation", 7);
  obs::CostProfiler::Global().SetAggregationIntervalMillis(60000);
  obs::CostProfiler::Global().Aggregate();

  const std::string response = HttpGet(port, "/metrics");
  ASSERT_NE(response.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(
      response.find("oneedit_profiler_hot_entity_cost{entity="
                    "\"evil\\\\entity\\\"with\\nnewline\"}"),
      std::string::npos)
      << response;
  EXPECT_EQ(response.find("with\nnewline"), std::string::npos) << response;

  // The JSON twin escapes it too.
  const std::string profile = HttpGet(port, "/profile?k=10");
  ASSERT_NE(profile.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(profile.find("evil\\\\entity\\\"with\\nnewline"),
            std::string::npos)
      << profile;

  world.service->Stop();
  obs::CostProfiler::Global().SetAggregationIntervalMillis(500);
  obs::CostProfiler::Global().ResetForTesting();
}

TEST(EditServiceObsTest, CountQueryParamsRejectJunkWith400) {
  EditServiceOptions options;
  options.expose_metrics = true;
  ObsWorld world(options);
  ASSERT_NE(world.service->metrics_server(), nullptr);
  const uint16_t port = world.service->metrics_server()->port();

  // Well-formed requests succeed.
  EXPECT_NE(HttpGet(port, "/traces?n=5").find("HTTP/1.0 200"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "/profile").find("HTTP/1.0 200"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "/profile?k=5").find("HTTP/1.0 200"),
            std::string::npos);

  // Numeric-but-absurd values clamp instead of erroring.
  EXPECT_NE(HttpGet(port, "/traces?n=99999999999999").find("HTTP/1.0 200"),
            std::string::npos);
  EXPECT_NE(HttpGet(port, "/profile?k=99999999999999").find("HTTP/1.0 200"),
            std::string::npos);

  // Junk is a 400, not a silent default.
  for (const std::string path :
       {"/traces?n=abc", "/traces?n=", "/traces?n", "/traces?n=-1",
        "/traces?n=5x", "/profile?k=abc", "/profile?k=", "/profile?k=1.5"}) {
    const std::string response = HttpGet(port, path);
    EXPECT_NE(response.find("HTTP/1.0 400"), std::string::npos)
        << path << " -> " << response;
  }

  world.service->Stop();
}

TEST(EditServiceObsTest, DumpTracesSurfacesSlowRequests) {
  ResetRecorder();
  ObsWorld world;
  const auto result = world.service->SubmitAndWait(
      EditRequest::Edit(world.dataset.cases[0].edit, "alice"));
  ASSERT_TRUE(result.ok());
  const std::string dump = world.service->DumpTraces(5);
  EXPECT_NE(dump.find("request"), std::string::npos) << dump;
  EXPECT_NE(dump.find("apply"), std::string::npos) << dump;
}

}  // namespace
}  // namespace oneedit
