// Tests for the self-healing edit pipeline: post-apply validation (canary
// probes + reliability), transactional rollback, poison-edit bisection and
// quarantine, request deadlines, bounded WAL retry, and degraded-mode
// auto-heal. The bisection property test plants a poison at every position
// of an 8-request batch and requires the healed state to be byte-identical
// to a world that never saw the poison.

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/name_pool.h"
#include "durability/edit_wal.h"
#include "durability/env.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "editing/editor.h"
#include "serving/edit_service.h"
#include "serving/self_healing.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::Env;
using durability::FaultInjectingEnv;
using serving::EditService;
using serving::EditServiceOptions;
using serving::HealedBatch;
using serving::SelfHealer;
using serving::SelfHealOptions;
using serving::ServiceHealth;

// 16 cases so the first 8 (the governor edits) have pairwise-disjoint
// {subject, object} footprints — the invariant the writer's batch admission
// guarantees, which the SelfHealer tests replicate by hand.
DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 16;
  return options;
}

OneEditConfig MemitConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kMemit;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

/// A deterministic MEMIT world. MEMIT is the method under test because its
/// collateral drift scales with the slot's live-edit ledger — the mechanism
/// that turns one request into a poison.
struct MemitWorld {
  MemitWorld()
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    auto created =
        OneEditSystem::Create(&dataset.kg, model.get(), MemitConfig());
    EXPECT_TRUE(created.ok());
    system = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<OneEditSystem> system;
};

/// Turns `slot` into a poison slot: applies `n` edits through the method and
/// removes their weights directly — bypassing NoteRollback — so the
/// live-edit ledger keeps counting them. The next MEMIT edit on the slot
/// then sprays collateral_noise * (1 + repeat_collateral * n) of dense drift
/// across the model, flipping unrelated decodes (the knowledge-distortion
/// pathology of repeated same-slot editing). Deterministic: the drift is
/// fact-seeded and the weight add/subtract sequence is identical in every
/// world that runs the same inflation.
void InflatePoisonLedger(OneEditSystem* system, LanguageModel* model,
                         const NamedTriple& slot, int n) {
  EditingMethod& method = system->editor().method();
  for (int i = 0; i < n; ++i) {
    auto delta = method.ApplyEdit(model, slot);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    ApplyWeightDelta(model, *delta, -1.0);
  }
  EXPECT_EQ(method.LiveEdits(slot), static_cast<size_t>(n));
}

/// Disjoint-footprint edit requests: the governor cases edit (state_i,
/// governor) -> governor_{8+i}, so subjects and objects never collide for
/// i < 8.
std::vector<EditRequest> InnocentRequests(const Dataset& dataset,
                                          size_t count) {
  std::vector<EditRequest> requests;
  for (size_t i = 0; i < count; ++i) {
    requests.push_back(EditRequest::Edit(dataset.cases[i].edit, "alice"));
  }
  return requests;
}

/// A counterfactual edit against a slot in the dataset's extra-states block:
/// no case touches it, so its footprint is disjoint from every innocent.
NamedTriple PoisonTriple() {
  return NamedTriple{names::State(20), "governor", names::Person(42)};
}

constexpr int kPoisonInflation = 3;  // ledger count that makes it toxic
constexpr uint64_t kSeed = 12345;

TEST(SelfHealerTest, CleanMemitBatchPassesValidationUntouched) {
  MemitWorld world;
  const std::vector<EditRequest> requests =
      InnocentRequests(world.dataset, 8);

  SelfHealer healer(world.system.get(), SelfHealOptions{});
  const HealedBatch healed = healer.ApplyValidated(requests, kSeed);

  EXPECT_TRUE(healed.quarantined.empty()) << healed.quarantine_reason;
  EXPECT_EQ(healed.rollbacks, 0u);
  ASSERT_EQ(healed.results.size(), requests.size());
  for (size_t i = 0; i < healed.results.size(); ++i) {
    ASSERT_TRUE(healed.results[i].ok()) << i;
    EXPECT_EQ(healed.results[i]->kind, EditResult::Kind::kEdited) << i;
  }
  const Statistics& stats = world.system->statistics();
  EXPECT_EQ(stats.Get(Ticker::kCanaryFailures), 0u);
  EXPECT_EQ(stats.Get(Ticker::kQuarantinedEdits), 0u);
}

TEST(SelfHealerTest, PoisonAtEveryPositionIsQuarantinedExactly) {
  for (size_t position = 0; position < 8; ++position) {
    SCOPED_TRACE("poison at batch position " + std::to_string(position));

    // Healing world: the poison request rides at `position` inside an
    // otherwise-innocent batch of 8.
    MemitWorld healing;
    const NamedTriple poison = PoisonTriple();
    InflatePoisonLedger(healing.system.get(), healing.model.get(), poison,
                        kPoisonInflation);
    std::vector<EditRequest> requests = InnocentRequests(healing.dataset, 7);
    requests.insert(requests.begin() + static_cast<long>(position),
                    EditRequest::Edit(poison, "mallory"));

    SelfHealer healer(healing.system.get(), SelfHealOptions{});
    const HealedBatch healed = healer.ApplyValidated(requests, kSeed);

    // Exactly the poison is quarantined; every innocent applied.
    ASSERT_EQ(healed.quarantined.size(), 1u) << healed.quarantine_reason;
    EXPECT_EQ(healed.quarantined[0], position);
    EXPECT_GE(healed.rollbacks, 1u);
    ASSERT_EQ(healed.results.size(), 8u);
    for (size_t i = 0; i < 8; ++i) {
      ASSERT_TRUE(healed.results[i].ok()) << i;
      EXPECT_EQ(healed.results[i]->kind,
                i == position ? EditResult::Kind::kQuarantined
                              : EditResult::Kind::kEdited)
          << i;
    }

    // Baseline world: identical construction and inflation, but the poison
    // is never submitted. The healed model must be byte-identical — the
    // transactional rollback left no trace of the poison or of the aborted
    // bisection probes.
    MemitWorld baseline;
    InflatePoisonLedger(baseline.system.get(), baseline.model.get(), poison,
                        kPoisonInflation);
    std::vector<EditRequest> innocents;
    for (size_t i = 0; i < requests.size(); ++i) {
      if (i != position) innocents.push_back(requests[i]);
    }
    for (const auto& result : baseline.system->EditBatch(innocents)) {
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->kind, EditResult::Kind::kEdited);
    }

    EXPECT_TRUE(WeightsEqual(healing.model->SnapshotWeights(),
                             baseline.model->SnapshotWeights()))
        << "healed weights differ from the never-poisoned baseline";
    EXPECT_EQ(healing.system->audit_log().size(),
              baseline.system->audit_log().size());
    EXPECT_EQ(
        healing.system->Ask(poison.subject, poison.relation).entity,
        baseline.system->Ask(poison.subject, poison.relation).entity);

    const Statistics& stats = healing.system->statistics();
    EXPECT_EQ(stats.Get(Ticker::kQuarantinedEdits), 1u);
    EXPECT_GE(stats.Get(Ticker::kRollbackBatches), 1u);
    EXPECT_GE(stats.Get(Ticker::kCanaryFailures), 1u);
    EXPECT_GE(stats.GetHistogram(Histogram::kRollbackMicros).count, 1u);
  }
}

TEST(SelfHealerTest, ValidationDisabledAppliesEverythingIncludingPoison) {
  MemitWorld world;
  const NamedTriple poison = PoisonTriple();
  InflatePoisonLedger(world.system.get(), world.model.get(), poison,
                      kPoisonInflation);
  std::vector<EditRequest> requests = InnocentRequests(world.dataset, 4);
  requests.push_back(EditRequest::Edit(poison, "mallory"));

  SelfHealOptions options;
  options.validate_after_apply = false;
  SelfHealer healer(world.system.get(), options);
  const HealedBatch healed = healer.ApplyValidated(requests, kSeed);

  EXPECT_TRUE(healed.quarantined.empty());
  for (const auto& result : healed.results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->kind, EditResult::Kind::kEdited);
  }
  EXPECT_EQ(world.system->statistics().Get(Ticker::kQuarantinedEdits), 0u);
}

// --------------------------------------------- service-level self-healing ----

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

struct ServedWorld {
  explicit ServedWorld(const EditServiceOptions& options = {},
                       const OneEditConfig& config = GraceConfig())
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    auto created =
        EditService::Create(&dataset.kg, model.get(), config, options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

TEST(ServiceSelfHealTest, PoisonedSubmissionIsQuarantinedAndJournaled) {
  const std::string dir = testing::TempDir() + "/oneedit_heal_quarantine";
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_interval = 0;  // keep every record in the WAL
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());

  EditServiceOptions options;
  options.durability = mgr->get();
  ServedWorld world(options, MemitConfig());
  const NamedTriple poison = PoisonTriple();
  world.service->WithExclusive([&](OneEditSystem& system) {
    InflatePoisonLedger(&system, world.model.get(), poison, kPoisonInflation);
    return 0;
  });

  const auto innocent = world.service->SubmitAndWait(
      EditRequest::Edit(world.dataset.cases[0].edit, "alice"));
  ASSERT_TRUE(innocent.ok());
  EXPECT_EQ(innocent->kind, EditResult::Kind::kEdited);

  const auto poisoned = world.service->SubmitAndWait(
      EditRequest::Edit(poison, "mallory"));
  ASSERT_TRUE(poisoned.ok());  // a policy decision, not a transport error
  EXPECT_EQ(poisoned->kind, EditResult::Kind::kQuarantined);
  EXPECT_TRUE(poisoned->quarantined());

  // The rollback restored the model: the poison never decodes, the service
  // stays healthy, and the verdict reached the WAL.
  EXPECT_EQ(world.service->health(), ServiceHealth::kHealthy);
  const Statistics& stats = world.service->statistics();
  EXPECT_EQ(stats.Get(Ticker::kQuarantinedEdits), 1u);
  EXPECT_GE(stats.Get(Ticker::kRollbackBatches), 1u);

  size_t verdicts = 0;
  ASSERT_TRUE(durability::EditWal::Replay(
                  mgr->get()->wal_path(), nullptr,
                  [&](const durability::EditWalRecord& record) {
                    if (record.quarantine) {
                      ++verdicts;
                      EXPECT_EQ(record.quarantined_sequence, 2u);
                    }
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(verdicts, 1u);
}

TEST(ServiceSelfHealTest, TransientWalFailureIsRetriedWithoutDegrading) {
  const std::string dir = testing::TempDir() + "/oneedit_heal_retry";
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  FaultInjectingEnv fault(Env::Default());
  DurabilityOptions opts;
  opts.dir = dir;
  opts.env = &fault;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());

  EditServiceOptions options;
  options.durability = mgr->get();
  ServedWorld world(options);
  const EditCase& c = world.dataset.cases[0];

  // One transient I/O failure: the WAL append fails once, the retry path
  // checkpoints the torn log away and re-journals, and the edit commits
  // with the service still healthy.
  fault.FailNext(1);
  const auto result =
      world.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kind, EditResult::Kind::kEdited);
  EXPECT_EQ(world.service->health(), ServiceHealth::kHealthy);
  EXPECT_GE(world.service->statistics().Get(Ticker::kWalRetries), 1u);
  EXPECT_EQ(fault.transient_failures(), 1);
  EXPECT_EQ(world.service->GetSnapshot()
                ->Ask(c.edit.subject, c.edit.relation)
                ->entity,
            c.edit.object);
}

TEST(ServiceSelfHealTest, ExhaustedRetriesDegradeThenAutoHealPromotesBack) {
  const std::string dir = testing::TempDir() + "/oneedit_heal_autoheal";
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  FaultInjectingEnv fault(Env::Default());
  DurabilityOptions opts;
  opts.dir = dir;
  opts.env = &fault;
  auto mgr = DurabilityManager::Open(opts);
  ASSERT_TRUE(mgr.ok());

  EditServiceOptions options;
  options.durability = mgr->get();
  options.self_heal.heal_probe_interval = std::chrono::milliseconds(10);
  ServedWorld world(options);

  // Enough failures to exhaust the bounded retry (initial append + each
  // retry's checkpoint/append); the service must degrade.
  fault.FailNext(50);
  const auto rejected = world.service->SubmitAndWait(
      EditRequest::Edit(world.dataset.cases[0].edit, "alice"));
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->kind, EditResult::Kind::kRejected);
  EXPECT_EQ(world.service->health(), ServiceHealth::kReadOnlyDegraded);
  EXPECT_GE(world.service->statistics().Get(Ticker::kWalRetries), 1u);

  // The "disk" comes back; the half-open probe must promote the service
  // without a restart.
  fault.Clear();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (world.service->health() != ServiceHealth::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(world.service->health(), ServiceHealth::kHealthy);

  // Healed for real: writes are accepted and durable again.
  const auto accepted = world.service->SubmitAndWait(
      EditRequest::Edit(world.dataset.cases[1].edit, "bob"));
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->kind, EditResult::Kind::kEdited);

  // The transition log saw each hop exactly once, in order, with
  // monotonically increasing sequence numbers.
  const auto log = world.service->health_log();
  ASSERT_GE(log.size(), 3u);
  EXPECT_EQ(log.front().from, ServiceHealth::kHealthy);
  EXPECT_EQ(log.front().to, ServiceHealth::kReadOnlyDegraded);
  bool promoted = false;
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].sequence, i + 1);
    if (i > 0) {
      EXPECT_EQ(log[i].from, log[i - 1].to);
    }
    if (log[i].to == ServiceHealth::kHealthy) {
      promoted = true;
      EXPECT_EQ(log[i].from, ServiceHealth::kHalfOpenProbing);
    }
  }
  EXPECT_TRUE(promoted);
  EXPECT_EQ(world.service->statistics().Get(Ticker::kHealthTransitions),
            log.size());
}

TEST(ServiceSelfHealTest, ExpiredDeadlineIsRejectedAtTheDoor) {
  ServedWorld world;
  EditRequest request = EditRequest::Edit(world.dataset.cases[0].edit, "a");
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const auto result = world.service->SubmitAndWait(std::move(request));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  EXPECT_EQ(world.service->statistics().Get(Ticker::kDeadlineExpired), 1u);
}

TEST(ServiceSelfHealTest, QueuedRequestExpiresWhileWriterIsBusy) {
  ServedWorld world;
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::promise<void> locked;

  // Hold the exclusive lock so the writer stalls mid-batch while the
  // deadlined request waits in the queue past its deadline.
  std::thread holder([&] {
    world.service->WithExclusive([&](OneEditSystem&) {
      locked.set_value();
      released.wait();
      return 0;
    });
  });
  locked.get_future().wait();

  auto first =
      world.service->Submit(EditRequest::Edit(world.dataset.cases[0].edit,
                                              "alice"));
  // Wait until the writer has popped it (and stalled on the lock) so the
  // deadlined request cannot coalesce into the same batch.
  while (world.service->queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EditRequest doomed = EditRequest::Edit(world.dataset.cases[1].edit, "bob");
  doomed.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  auto expired = world.service->Submit(std::move(doomed));

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  release.set_value();
  holder.join();

  const auto ok = first.get();
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->kind, EditResult::Kind::kEdited);
  const auto dead = expired.get();
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsDeadlineExceeded());
  EXPECT_GE(world.service->statistics().Get(Ticker::kDeadlineExpired), 1u);
}

TEST(ServiceSelfHealTest, BackpressureWaitHonorsTheDeadline) {
  EditServiceOptions options;
  options.queue_capacity = 1;
  ServedWorld world(options);
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::promise<void> locked;
  std::thread holder([&] {
    world.service->WithExclusive([&](OneEditSystem&) {
      locked.set_value();
      released.wait();
      return 0;
    });
  });
  locked.get_future().wait();

  // First request gets popped by the writer (which then stalls on the
  // lock); the second fills the 1-slot queue; the third hits backpressure
  // with a deadline and must give up at the deadline, not block forever.
  auto first = world.service->Submit(
      EditRequest::Edit(world.dataset.cases[0].edit, "alice"));
  while (world.service->queue_depth() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto second = world.service->Submit(
      EditRequest::Edit(world.dataset.cases[1].edit, "bob"));
  EditRequest doomed = EditRequest::Edit(world.dataset.cases[2].edit, "eve");
  doomed.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(40);
  const auto dead = world.service->SubmitAndWait(std::move(doomed));
  ASSERT_FALSE(dead.ok());
  EXPECT_TRUE(dead.status().IsDeadlineExceeded());

  release.set_value();
  holder.join();
  ASSERT_TRUE(first.get().ok());
  ASSERT_TRUE(second.get().ok());
}

}  // namespace
}  // namespace oneedit
