// End-to-end integration scenarios: multi-turn natural-language sessions
// (edit -> query -> conflict -> erase -> undo) driven through the full
// pipeline, swept over every dataset domain and every editing method.

#include <tuple>

#include <gtest/gtest.h>

#include "core/oneedit.h"
#include "data/dataset.h"
#include "nlp/utterance_generator.h"

namespace oneedit {
namespace {

using DatasetFactory = Dataset (*)(const DatasetOptions&);

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 6;
  return options;
}

/// (dataset factory, method name) sweep.
class EndToEndTest
    : public ::testing::TestWithParam<std::tuple<DatasetFactory, std::string>> {
 protected:
  EndToEndTest()
      : dataset_(std::get<0>(GetParam())(TinyOptions())),
        model_(Gpt2XlSimConfig(), dataset_.vocab) {
    model_.Pretrain(dataset_.pretrain_facts);
    OneEditConfig config;
    const auto kind = ParseMethodKind(std::get<1>(GetParam()));
    EXPECT_TRUE(kind.ok());
    config.method = *kind;
    config.interpreter.extraction_error_rate = 0.0;
    auto system = OneEditSystem::Create(&dataset_.kg, &model_, config);
    EXPECT_TRUE(system.ok());
    system_ = std::move(system).value();
  }

  Dataset dataset_;
  LanguageModel model_;
  std::unique_ptr<OneEditSystem> system_;
};

TEST_P(EndToEndTest, FullConversationLifecycle) {
  const EditCase& edit_case = dataset_.cases.front();
  const std::string& subject = edit_case.edit.subject;
  const std::string& relation = edit_case.edit.relation;

  // 1) Ask about ground truth.
  auto response = system_->HandleUtterance(
      QueryUtterance(subject, relation, 0), "reader");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kind, EditResult::Kind::kGenerated);
  EXPECT_NE(response->message.find(edit_case.old_object), std::string::npos)
      << response->message;

  // 2) Edit via natural language.
  response = system_->HandleUtterance(EditUtterance(edit_case.edit, 2),
                                      "editor-1");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->kind, EditResult::Kind::kEdited)
      << response->message;

  // 3) The question now answers the edit.
  response = system_->HandleUtterance(QueryUtterance(subject, relation, 1),
                                      "reader");
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->message.find(edit_case.edit.object), std::string::npos)
      << response->message;

  // 4) A second editor overwrites the slot (coverage conflict).
  ASSERT_FALSE(edit_case.alternative_objects.empty());
  const NamedTriple second{subject, relation,
                           edit_case.alternative_objects.front()};
  response = system_->HandleUtterance(EditUtterance(second, 5), "editor-2");
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->kind, EditResult::Kind::kEdited);
  ASSERT_TRUE(response->report.has_value());
  EXPECT_FALSE(response->plan().rollbacks.empty());
  EXPECT_EQ(system_->Ask(subject, relation).entity, second.object);

  // 5) The KG agrees and holds exactly one object for the slot.
  const auto resolved = dataset_.kg.Resolve(second);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(dataset_.kg.Contains(*resolved));
  const auto relation_id = dataset_.kg.schema().Lookup(relation);
  const auto subject_id = dataset_.kg.LookupEntity(subject);
  EXPECT_EQ(dataset_.kg.Objects(*subject_id, *relation_id).size(), 1u);

  // 6) An administrator reverts editor-2; editor-1's state returns.
  ASSERT_TRUE(system_->RollbackUserEdits("editor-2").ok());
  EXPECT_EQ(system_->Ask(subject, relation).entity, edit_case.edit.object);

  // 7) Finally the fact is erased outright.
  response = system_->HandleUtterance(EraseUtterance(edit_case.edit, 0),
                                      "admin");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->kind, EditResult::Kind::kErased)
      << response->message;
  EXPECT_FALSE(dataset_.kg.Contains(*dataset_.kg.Resolve(edit_case.edit)));

  // 8) Statistics reflect the whole session.
  const Statistics& stats = system_->statistics();
  EXPECT_GE(stats.Get(Ticker::kUtterances), 5u);
  EXPECT_GE(stats.Get(Ticker::kEditsAccepted), 2u);
  EXPECT_EQ(stats.Get(Ticker::kErasures), 1u);
  EXPECT_EQ(stats.Get(Ticker::kUserRollbacks), 1u);
}

TEST_P(EndToEndTest, KgAndModelStayConsistentAcrossAllCases) {
  // Apply every case via NL, then check both stores agree on every slot.
  for (size_t c = 0; c < dataset_.cases.size(); ++c) {
    const auto response = system_->HandleUtterance(
        EditUtterance(dataset_.cases[c].edit, c), "sync-bot");
    ASSERT_TRUE(response.ok());
    ASSERT_EQ(response->kind, EditResult::Kind::kEdited)
        << "case " << c << ": " << response->message;
  }
  size_t model_correct = 0;
  for (const EditCase& edit_case : dataset_.cases) {
    // Symbolic store: always exact.
    const auto resolved = dataset_.kg.Resolve(edit_case.edit);
    ASSERT_TRUE(resolved.ok());
    EXPECT_TRUE(dataset_.kg.Contains(*resolved));
    // Parametric store.
    model_correct +=
        system_->Ask(edit_case.edit.subject, edit_case.edit.relation)
            .entity == edit_case.edit.object;
  }
  // Adaptor methods recall every edit exactly; weight-modifying methods on
  // this deliberately small (GPT-2-XL-sized) substrate may lose a slot to
  // accumulated interference — the capacity effect ablation_substrate
  // measures.
  const std::string& method = std::get<1>(GetParam());
  const bool adaptor_method = method == "GRACE" || method == "SERAC";
  if (adaptor_method) {
    EXPECT_EQ(model_correct, dataset_.cases.size());
  } else {
    EXPECT_GE(model_correct, dataset_.cases.size() - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DomainsByMethods, EndToEndTest,
    ::testing::Combine(::testing::Values(&BuildAmericanPoliticians,
                                         &BuildAcademicFigures,
                                         &BuildTechCompanies),
                       ::testing::Values("GRACE", "MEMIT", "ROME", "SERAC")));

}  // namespace
}  // namespace oneedit
