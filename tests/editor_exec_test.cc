// Unit tests for the Editor execution layer (core/oneedit_editor):
// rollback/cache/liveness semantics of Execute, independent of the
// Controller.

#include <gtest/gtest.h>

#include "core/oneedit_editor.h"
#include "model/model_config.h"

namespace oneedit {
namespace {

ModelConfig SmallConfig() {
  ModelConfig config;
  config.dim = 64;
  config.num_layers = 4;
  config.seed = 7;
  config.junk_fraction = 0.3;
  return config;
}

Vocab SmallVocab() {
  Vocab vocab;
  vocab.entities = {"USA", "France", "Trump", "Biden", "Macron", "Paris"};
  vocab.relations = {{"president", "president_of"}, {"capital", ""}};
  return vocab;
}

class EditorExecTest : public ::testing::Test {
 protected:
  EditorExecTest()
      : model_(SmallConfig(), SmallVocab()),
        editor_(&model_, std::move(MakeEditingMethod("MEMIT")).value()) {
    model_.Pretrain({{"USA", "president", "Trump"},
                     {"France", "president", "Macron"},
                     {"France", "capital", "Paris"}});
  }

  static EditPlan PlanFor(const NamedTriple& edit) {
    EditPlan plan;
    plan.request = edit;
    plan.edits.push_back(edit);
    return plan;
  }

  LanguageModel model_;
  OneEditEditor editor_;
};

TEST_F(EditorExecTest, NoOpPlanDoesNothing) {
  EditPlan plan;
  plan.no_op = true;
  plan.edits.push_back({"USA", "president", "Biden"});  // must be ignored
  const auto outcome = editor_.Execute(plan);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->edits_applied, 0u);
  EXPECT_EQ(model_.Query("USA", "president").entity, "Trump");
}

TEST_F(EditorExecTest, AppliesAndCachesEdits) {
  const NamedTriple edit{"USA", "president", "Biden"};
  const auto outcome = editor_.Execute(PlanFor(edit));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->edits_applied, 1u);
  EXPECT_EQ(outcome->cache_hits, 0u);
  EXPECT_TRUE(editor_.cache().Has(edit));
  EXPECT_TRUE(editor_.IsLive(edit));
  EXPECT_EQ(model_.Query("USA", "president").entity, "Biden");
}

TEST_F(EditorExecTest, ReRequestingLiveEditIsIdempotent) {
  const NamedTriple edit{"USA", "president", "Biden"};
  ASSERT_TRUE(editor_.Execute(PlanFor(edit)).ok());
  const WeightSnapshot after_first = model_.SnapshotWeights();
  const auto outcome = editor_.Execute(PlanFor(edit));
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->cache_hits, 1u);
  EXPECT_EQ(outcome->edits_applied, 0u);  // nothing re-installed
  const WeightSnapshot after_second = model_.SnapshotWeights();
  for (size_t l = 0; l < after_first.size(); ++l) {
    EXPECT_EQ(after_first[l], after_second[l]) << "double-applied delta";
  }
}

TEST_F(EditorExecTest, RollbackThenCachedReapply) {
  const NamedTriple biden{"USA", "president", "Biden"};
  ASSERT_TRUE(editor_.Execute(PlanFor(biden)).ok());

  // Roll Biden back while installing Macron(!) in the slot.
  EditPlan flip = PlanFor({"USA", "president", "Macron"});
  flip.rollbacks.push_back(biden);
  auto outcome = editor_.Execute(flip);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rollbacks_applied, 1u);
  EXPECT_FALSE(editor_.IsLive(biden));
  EXPECT_EQ(model_.Query("USA", "president").entity, "Macron");

  // Flip back: the Biden delta comes from the cache.
  EditPlan back = PlanFor(biden);
  back.rollbacks.push_back({"USA", "president", "Macron"});
  outcome = editor_.Execute(back);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rollbacks_applied, 1u);
  EXPECT_EQ(outcome->cache_hits, 1u);
  EXPECT_EQ(model_.Query("USA", "president").entity, "Biden");
}

TEST_F(EditorExecTest, RollbackOfPretrainedKnowledgeIsSkipped) {
  EditPlan plan = PlanFor({"USA", "president", "Biden"});
  plan.rollbacks.push_back({"USA", "president", "Trump"});  // never edited
  const auto outcome = editor_.Execute(plan);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rollbacks_applied, 0u);
  EXPECT_EQ(outcome->rollbacks_skipped, 1u);
}

TEST_F(EditorExecTest, AugmentationsCountedSeparately) {
  EditPlan plan = PlanFor({"USA", "president", "Biden"});
  plan.augmentations.push_back({"France", "capital", "Paris"});
  plan.augmentations.push_back({"France", "president", "Macron"});
  const auto outcome = editor_.Execute(plan);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->edits_applied, 1u);
  EXPECT_EQ(outcome->augmentations_applied, 2u);
}

TEST_F(EditorExecTest, CacheDisabledStillEditsButNeverReuses) {
  EditorConfig config;
  config.use_cache = false;
  OneEditEditor no_cache(&model_, std::move(MakeEditingMethod("MEMIT")).value(),
                         config);
  const NamedTriple edit{"USA", "president", "Biden"};
  ASSERT_TRUE(no_cache.Execute(PlanFor(edit)).ok());
  EXPECT_EQ(no_cache.cache().size(), 0u);
  EXPECT_EQ(model_.Query("USA", "president").entity, "Biden");
  // A rollback request finds no cached θ.
  EditPlan flip = PlanFor({"USA", "president", "Trump"});
  flip.rollbacks.push_back(edit);
  const auto outcome = no_cache.Execute(flip);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rollbacks_applied, 0u);
  EXPECT_EQ(outcome->rollbacks_skipped, 1u);
}

TEST_F(EditorExecTest, ResetClearsCacheAndLiveness) {
  const NamedTriple edit{"USA", "president", "Biden"};
  ASSERT_TRUE(editor_.Execute(PlanFor(edit)).ok());
  editor_.ResetState();
  EXPECT_EQ(editor_.cache().size(), 0u);
  EXPECT_FALSE(editor_.IsLive(edit));
}

}  // namespace
}  // namespace oneedit
