#include <gtest/gtest.h>

#include "data/dataset.h"
#include "editing/edit_cache.h"
#include "editing/editor.h"
#include "editing/ft.h"
#include "editing/grace.h"
#include "editing/memit.h"
#include "editing/rome.h"
#include "model/language_model.h"
#include "model/model_config.h"

namespace oneedit {
namespace {

ModelConfig SmallConfig() {
  ModelConfig config;
  config.name = "edit-test";
  config.dim = 64;
  config.num_layers = 4;
  config.seed = 99;
  config.junk_fraction = 0.3;
  return config;
}

Vocab SmallVocab() {
  Vocab vocab;
  vocab.entities = {"USA",   "France", "Trump",  "Biden",
                    "Macron", "Berlin", "Paris",  "Tokyo"};
  vocab.relations = {{"president", "president_of"}, {"capital", ""}};
  return vocab;
}

std::vector<NamedTriple> SmallFacts() {
  return {{"USA", "president", "Trump"},
          {"Trump", "president_of", "USA"},
          {"France", "president", "Macron"},
          {"Macron", "president_of", "France"},
          {"France", "capital", "Paris"},
          {"Japan?", "capital", "Tokyo"}};
}

class EditingMethodTest : public ::testing::TestWithParam<std::string> {
 protected:
  EditingMethodTest() : model_(SmallConfig(), SmallVocab()) {
    model_.Pretrain(SmallFacts());
    pristine_ = model_.SnapshotWeights();
  }

  bool WeightsArePristine() const {
    const WeightSnapshot now = model_.SnapshotWeights();
    for (size_t l = 0; l < now.size(); ++l) {
      const auto& a = now[l]->data();
      const auto& b = pristine_[l]->data();
      for (size_t i = 0; i < a.size(); ++i) {
        if (std::abs(a[i] - b[i]) > 1e-9) return false;
      }
    }
    return true;
  }

  LanguageModel model_;
  WeightSnapshot pristine_;
};

TEST_P(EditingMethodTest, FactoryProducesMethod) {
  auto method = MakeEditingMethod(GetParam());
  ASSERT_TRUE(method.ok());
  EXPECT_EQ((*method)->name(), GetParam());
}

TEST_P(EditingMethodTest, EditInstallsNewAnswer) {
  auto method = MakeEditingMethod(GetParam());
  const NamedTriple edit{"USA", "president", "Biden"};
  auto delta = (*method)->ApplyEdit(&model_, edit);
  ASSERT_TRUE(delta.ok());
  EXPECT_FALSE(delta->empty());
  EXPECT_EQ(delta->edit, edit);
  EXPECT_EQ(delta->method, GetParam());
  EXPECT_EQ(model_.Query("USA", "president").entity, "Biden");
  // Unrelated pretrained fact still answered (GRACE/ROME/MEMIT; FT may
  // damage it, so only check for the surgical methods).
  if (GetParam() != "FT") {
    EXPECT_EQ(model_.Query("France", "capital").entity, "Paris");
  }
  (*method)->Reset(&model_);
}

TEST_P(EditingMethodTest, RollbackRestoresModelExactly) {
  auto method = MakeEditingMethod(GetParam());
  const NamedTriple edit{"USA", "president", "Biden"};
  auto delta = (*method)->ApplyEdit(&model_, edit);
  ASSERT_TRUE(delta.ok());
  ASSERT_TRUE((*method)->Rollback(&model_, *delta).ok());
  EXPECT_TRUE(WeightsArePristine());
  EXPECT_EQ(model_.Query("USA", "president").entity, "Trump");
  (*method)->Reset(&model_);
}

TEST_P(EditingMethodTest, ReapplyMatchesOriginalApply) {
  auto method = MakeEditingMethod(GetParam());
  const NamedTriple edit{"USA", "president", "Biden"};
  auto delta = (*method)->ApplyEdit(&model_, edit);
  ASSERT_TRUE(delta.ok());
  const WeightSnapshot after_apply = model_.SnapshotWeights();
  ASSERT_TRUE((*method)->Rollback(&model_, *delta).ok());
  ASSERT_TRUE((*method)->Reapply(&model_, *delta).ok());
  const WeightSnapshot after_reapply = model_.SnapshotWeights();
  for (size_t l = 0; l < after_apply.size(); ++l) {
    const auto& a = after_apply[l]->data();
    const auto& b = after_reapply[l]->data();
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a[i], b[i], 1e-9);
    }
  }
  EXPECT_EQ(model_.Query("USA", "president").entity, "Biden");
  (*method)->Reset(&model_);
}

TEST_P(EditingMethodTest, LiveEditLedgerTracksApplyAndRollback) {
  auto method = MakeEditingMethod(GetParam());
  const NamedTriple edit{"USA", "president", "Biden"};
  EXPECT_EQ((*method)->LiveEdits(edit), 0u);
  auto delta = (*method)->ApplyEdit(&model_, edit);
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ((*method)->LiveEdits(edit), 1u);
  ASSERT_TRUE((*method)->Rollback(&model_, *delta).ok());
  EXPECT_EQ((*method)->LiveEdits(edit), 0u);
  ASSERT_TRUE((*method)->Reapply(&model_, *delta).ok());
  EXPECT_EQ((*method)->LiveEdits(edit), 1u);
  (*method)->Reset(&model_);
  EXPECT_EQ((*method)->LiveEdits(edit), 0u);
}

TEST_P(EditingMethodTest, NullModelRejected) {
  auto method = MakeEditingMethod(GetParam());
  EXPECT_FALSE((*method)->ApplyEdit(nullptr, {"a", "president", "b"}).ok());
}

INSTANTIATE_TEST_SUITE_P(AllMethods, EditingMethodTest,
                         ::testing::Values("FT", "ROME", "MEMIT", "GRACE",
                                           "MEND", "SERAC"));

TEST(EditingFactoryTest, UnknownNameRejected) {
  EXPECT_FALSE(MakeEditingMethod("WISE").ok());
  EXPECT_EQ(RegisteredMethodNames().size(), 6u);
}

// ------------------------------------------------------------------ ROME ----

TEST(RomeTest, LocateLayerDeterministicAndBounded) {
  LanguageModel model(SmallConfig(), SmallVocab());
  const NamedTriple edit{"USA", "president", "Biden"};
  const size_t layer = RomeMethod::LocateLayer(model, edit);
  EXPECT_LT(layer, model.memory().num_layers());
  EXPECT_EQ(layer, RomeMethod::LocateLayer(model, edit));
  // Different slots may locate different layers (not a fixed layer).
  bool any_other = false;
  for (const char* subject : {"France", "Berlin", "Tokyo", "Paris"}) {
    if (RomeMethod::LocateLayer(model, {subject, "president", "x"}) != layer) {
      any_other = true;
    }
  }
  EXPECT_TRUE(any_other);
}

TEST(RomeTest, EditTouchesOnlyLocatedLayer) {
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  const WeightSnapshot before = model.SnapshotWeights();
  RomeMethod rome;
  const NamedTriple edit{"USA", "president", "Biden"};
  const size_t located = RomeMethod::LocateLayer(model, edit);
  ASSERT_TRUE(rome.ApplyEdit(&model, edit).ok());
  const WeightSnapshot after = model.SnapshotWeights();
  for (size_t l = 0; l < before.size(); ++l) {
    if (l == located) continue;
    EXPECT_EQ(before[l], after[l]) << "layer " << l << " changed";
  }
  EXPECT_FALSE(before[located] == after[located]);
}

// ----------------------------------------------------------------- MEMIT ----

TEST(MemitTest, SpreadWindowCenteredAndSized) {
  LanguageModel model(SmallConfig(), SmallVocab());
  MemitMethod memit;
  const std::vector<size_t> window = memit.SpreadWindow(model);
  ASSERT_EQ(window.size(), 3u);
  for (size_t i = 1; i < window.size(); ++i) {
    EXPECT_EQ(window[i], window[i - 1] + 1);
  }
  EXPECT_LT(window.back(), model.memory().num_layers());
}

TEST(MemitTest, BatchDilutesPerFactStrength) {
  // Edit strength (decode score of the new object) must drop when the same
  // edit rides in a large batch — Figure 3's decline mechanism.
  const NamedTriple edit{"USA", "president", "Biden"};

  LanguageModel solo_model(SmallConfig(), SmallVocab());
  solo_model.Pretrain(SmallFacts());
  MemitMethod solo;
  ASSERT_TRUE(solo.ApplyBatch(&solo_model, {edit}).ok());
  const double solo_score = solo_model.Query("USA", "president").score;

  LanguageModel batch_model(SmallConfig(), SmallVocab());
  batch_model.Pretrain(SmallFacts());
  MemitMethod batched;
  std::vector<NamedTriple> batch = {edit};
  for (int i = 0; i < 30; ++i) {
    batch.push_back(NamedTriple{"France", "capital",
                                i % 2 == 0 ? "Berlin" : "Tokyo"});
  }
  ASSERT_TRUE(batched.ApplyBatch(&batch_model, batch).ok());
  const double batch_score = batch_model.Query("USA", "president").score;

  EXPECT_LT(batch_score, solo_score - 0.1);
}

TEST(MemitTest, BatchReturnsDeltaPerEdit) {
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  MemitMethod memit;
  const std::vector<NamedTriple> batch = {
      {"USA", "president", "Biden"}, {"France", "president", "Trump"}};
  auto deltas = memit.ApplyBatch(&model, batch);
  ASSERT_TRUE(deltas.ok());
  ASSERT_EQ(deltas->size(), 2u);
  EXPECT_EQ((*deltas)[0].edit, batch[0]);
  EXPECT_EQ((*deltas)[1].edit, batch[1]);
}

// ----------------------------------------------------------------- GRACE ----

TEST(GraceTest, CodebookInterceptsWithinEpsilonOnly) {
  GraceCodebook codebook(0.2);
  GraceEntry entry;
  entry.key = Normalized(Vec{1.0, 0.0, 0.0, 0.0});
  entry.answer = "Biden";
  codebook.AddEntry(entry);

  std::string answer;
  EXPECT_TRUE(codebook.TryAnswer(entry.key, &answer));
  EXPECT_EQ(answer, "Biden");
  // Just inside the ball.
  EXPECT_TRUE(codebook.TryAnswer(Normalized(Vec{1.0, 0.1, 0.0, 0.0}), &answer));
  // Far outside.
  EXPECT_FALSE(codebook.TryAnswer(Normalized(Vec{0.0, 1.0, 0.0, 0.0}),
                                  &answer));
}

TEST(GraceTest, NearestEntryWins) {
  GraceCodebook codebook(0.5);
  codebook.AddEntry({Vec{1.0, 0.0}, "close"});
  codebook.AddEntry({Vec{0.7, 0.3}, "closer"});
  std::string answer;
  ASSERT_TRUE(codebook.TryAnswer(Vec{0.72, 0.28}, &answer));
  EXPECT_EQ(answer, "closer");
}

TEST(GraceTest, SameKeyReplacesEntry) {
  GraceCodebook codebook(0.2);
  const Vec key = Normalized(Vec{1.0, 2.0, 3.0});
  codebook.AddEntry({key, "first"});
  codebook.AddEntry({key, "second"});
  EXPECT_EQ(codebook.size(), 1u);
  std::string answer;
  ASSERT_TRUE(codebook.TryAnswer(key, &answer));
  EXPECT_EQ(answer, "second");
}

TEST(GraceTest, RemoveEntryByKeyAndAnswer) {
  GraceCodebook codebook(0.2);
  const Vec key = Normalized(Vec{1.0, 2.0, 3.0});
  codebook.AddEntry({key, "Biden"});
  EXPECT_FALSE(codebook.RemoveEntry({key, "Trump"}).ok());
  EXPECT_TRUE(codebook.RemoveEntry({key, "Biden"}).ok());
  EXPECT_EQ(codebook.size(), 0u);
}

TEST(GraceTest, ResetUnregistersAdaptor) {
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  GraceMethod grace;
  ASSERT_TRUE(grace.ApplyEdit(&model, {"USA", "president", "Biden"}).ok());
  EXPECT_EQ(model.num_adaptors(), 1u);
  EXPECT_EQ(model.Query("USA", "president").entity, "Biden");
  grace.Reset(&model);
  EXPECT_EQ(model.num_adaptors(), 0u);
  EXPECT_EQ(model.Query("USA", "president").entity, "Trump");
}

TEST(GraceTest, NeverTouchesWeights) {
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  const WeightSnapshot before = model.SnapshotWeights();
  GraceMethod grace;
  ASSERT_TRUE(grace.ApplyEdit(&model, {"USA", "president", "Biden"}).ok());
  const WeightSnapshot after = model.SnapshotWeights();
  for (size_t l = 0; l < before.size(); ++l) EXPECT_EQ(before[l], after[l]);
  grace.Reset(&model);
}

// -------------------------------------------------------------- reverse leak

TEST(ReverseLeakTest, StrongLeakMovesReverseSlot) {
  // With a huge leak coefficient, editing (USA, president, Biden) must move
  // the reverse slot (Biden, president_of) toward USA.
  RomeConfig config;
  config.leak.mean = 0.95;
  config.leak.stddev = 0.0;
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  RomeMethod rome(config);
  ASSERT_TRUE(rome.ApplyEdit(&model, {"USA", "president", "Biden"}).ok());
  EXPECT_EQ(model.Query("Biden", "president_of").entity, "USA");
}

TEST(ReverseLeakTest, NonReversibleRelationDoesNotLeak) {
  RomeConfig config;
  config.leak.mean = 0.95;
  config.leak.stddev = 0.0;
  LanguageModel model(SmallConfig(), SmallVocab());
  model.Pretrain(SmallFacts());
  RomeMethod rome(config);
  auto delta = rome.ApplyEdit(&model, {"France", "capital", "Berlin"});
  ASSERT_TRUE(delta.ok());
  // Only the primary edit's rank-one updates (one located layer), no
  // reverse write.
  EXPECT_EQ(delta->rank_ones.size(), 1u);
}

// ------------------------------------------------------------------ cache ----

TEST(EditCacheTest, PutGetEraseRoundTrip) {
  EditCache cache;
  EditDelta delta;
  delta.edit = {"USA", "president", "Biden"};
  delta.method = "MEMIT";
  delta.rank_ones.push_back(RankOneUpdate{0, Vec{1, 2}, Vec{3, 4}, 0.5});
  cache.Put(delta);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Has(delta.edit));
  EXPECT_EQ(cache.Get(delta.edit)->method, "MEMIT");
  EXPECT_GT(cache.ApproxBytes(), 0u);
  // Different object -> different entry.
  EXPECT_FALSE(cache.Has({"USA", "president", "Trump"}));
  EXPECT_TRUE(cache.Erase(delta.edit).ok());
  EXPECT_FALSE(cache.Erase(delta.edit).ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(EditCacheTest, PutReplacesSameTriple) {
  EditCache cache;
  EditDelta first;
  first.edit = {"USA", "president", "Biden"};
  first.method = "ROME";
  cache.Put(first);
  EditDelta second = first;
  second.method = "MEMIT";
  cache.Put(second);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(first.edit)->method, "MEMIT");
}

TEST(EditDeltaTest, ApproxBytesCountsPayload) {
  EditDelta delta;
  delta.edit = {"s", "r", "o"};
  const size_t base = delta.ApproxBytes();
  delta.rank_ones.push_back(RankOneUpdate{0, Vec(8, 0.0), Vec(8, 0.0), 1.0});
  EXPECT_GT(delta.ApproxBytes(), base + 100);
  delta.dense.push_back(DenseUpdate{0, Matrix(4, 4)});
  delta.grace_entries.push_back(GraceEntry{Vec(8, 0.0), "answer"});
  EXPECT_GT(delta.ApproxBytes(), base + 100 + 16 * 8);
  EXPECT_FALSE(delta.empty());
}

}  // namespace
}  // namespace oneedit
