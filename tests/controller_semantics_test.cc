// Additional Controller semantics: non-functional relations, DOT export of
// conflict neighborhoods, and end-to-end KG consistency under long edit
// sequences.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/controller.h"
#include "kg/dot_export.h"
#include "kg/knowledge_graph.h"
#include "util/rng.h"

namespace oneedit {
namespace {

class NonFunctionalTest : public ::testing::Test {
 protected:
  NonFunctionalTest() {
    advises_ = kg_.schema().Define("advises", /*functional=*/false);
    field_ = kg_.schema().Define("field", /*functional=*/true);
    prof_ = kg_.InternEntity("Prof");
    alice_ = kg_.InternEntity("Alice");
    bob_ = kg_.InternEntity("Bob");
    EXPECT_TRUE(kg_.Add(Triple{prof_, advises_, alice_}).ok());
  }
  KnowledgeGraph kg_;
  RelationId advises_, field_;
  EntityId prof_, alice_, bob_;
};

TEST_F(NonFunctionalTest, NewObjectCoexistsWithExisting) {
  Controller controller(&kg_);
  const auto plan = controller.Process({"Prof", "advises", "Bob"});
  ASSERT_TRUE(plan.ok());
  // No coverage conflict: the professor now advises both students.
  EXPECT_TRUE(plan->rollbacks.empty());
  EXPECT_TRUE(kg_.Contains({prof_, advises_, alice_}));
  EXPECT_TRUE(kg_.Contains({prof_, advises_, bob_}));
  EXPECT_EQ(kg_.Objects(prof_, advises_).size(), 2u);
}

TEST_F(NonFunctionalTest, FunctionalSlotStillDisplaces) {
  Controller controller(&kg_);
  ASSERT_TRUE(controller.Process({"Prof", "field", "Alice"}).ok());
  const auto plan = controller.Process({"Prof", "field", "Bob"});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->rollbacks.empty());
  EXPECT_EQ(kg_.Objects(prof_, field_).size(), 1u);
}

// ------------------------------------------------------------- DOT export ----

class DotExportTest : public ::testing::Test {
 protected:
  DotExportTest() {
    const RelationId governor = kg_.schema().Define("governor");
    const RelationId spouse = kg_.schema().Define("spouse");
    const EntityId ash = kg_.InternEntity("Ashfield");
    const EntityId ada = kg_.InternEntity("Ada");
    const EntityId kira = kg_.InternEntity("Kira");
    const EntityId far = kg_.InternEntity("Farville");
    const EntityId bruno = kg_.InternEntity("Bruno");
    EXPECT_TRUE(kg_.Add(Triple{ash, governor, ada}).ok());
    EXPECT_TRUE(kg_.Add(Triple{ada, spouse, kira}).ok());
    EXPECT_TRUE(kg_.Add(Triple{far, governor, bruno}).ok());
    kg_.AddAlias(kg_.InternEntity("Gov. Ada"), ada);
  }
  KnowledgeGraph kg_;
};

TEST_F(DotExportTest, WholeGraphContainsAllEdges) {
  const std::string dot = ToDot(kg_);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"Ashfield\" -> \"Ada\" [label=\"governor\"]"),
            std::string::npos);
  EXPECT_NE(dot.find("\"Ada\" -> \"Kira\" [label=\"spouse\"]"),
            std::string::npos);
  EXPECT_NE(dot.find("\"Farville\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // alias edge
}

TEST_F(DotExportTest, CenteredExportExcludesFarNodes) {
  DotOptions options;
  options.center = "Ashfield";
  options.hops = 2;
  const std::string dot = ToDot(kg_, options);
  EXPECT_NE(dot.find("\"Ada\" -> \"Kira\""), std::string::npos);
  EXPECT_EQ(dot.find("Farville"), std::string::npos);
}

TEST_F(DotExportTest, EdgeCapRespected) {
  DotOptions options;
  options.max_edges = 1;
  const std::string dot = ToDot(kg_, options);
  size_t labeled_edges = 0;
  for (size_t pos = dot.find("[label="); pos != std::string::npos;
       pos = dot.find("[label=", pos + 1)) {
    ++labeled_edges;
  }
  EXPECT_EQ(labeled_edges, 1u);
}

TEST_F(DotExportTest, WriteDotCreatesFile) {
  const std::string path = testing::TempDir() + "/oneedit_kg.dot";
  ASSERT_TRUE(WriteDot(kg_, path).ok());
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

// --------------------------------------------- long-sequence KG consistency ----

TEST(ControllerConsistencyTest, LongRandomEditSequenceKeepsInvariants) {
  KnowledgeGraph kg;
  const RelationId president = kg.schema().Define("president");
  const RelationId presides = kg.schema().Define("presides_over");
  ASSERT_TRUE(kg.schema().SetInverse(president, presides).ok());
  std::vector<EntityId> countries, people;
  for (int i = 0; i < 5; ++i) {
    countries.push_back(kg.InternEntity("country" + std::to_string(i)));
  }
  for (int i = 0; i < 8; ++i) {
    people.push_back(kg.InternEntity("person" + std::to_string(i)));
  }
  Controller controller(&kg);
  Rng rng(404);
  for (int step = 0; step < 120; ++step) {
    const EntityId c = countries[rng.NextBelow(countries.size())];
    const EntityId p = people[rng.NextBelow(people.size())];
    const auto plan = controller.Process(
        {kg.EntityName(c), "president", kg.EntityName(p)});
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    // Invariants after every step:
    for (const EntityId country : countries) {
      // (1) at most one president per country;
      const auto presidents = kg.Objects(country, president);
      ASSERT_LE(presidents.size(), 1u);
      // (2) forward and reverse triples are consistent.
      for (const EntityId pres : presidents) {
        ASSERT_TRUE(kg.Contains({pres, presides, country}));
      }
    }
    for (const EntityId person : people) {
      // (3) nobody presides over two countries.
      ASSERT_LE(kg.Objects(person, presides).size(), 1u);
    }
  }
}

}  // namespace
}  // namespace oneedit
