#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/name_pool.h"

namespace oneedit {
namespace {

DatasetOptions SmallOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

// -------------------------------------------------------------- name pool ----

TEST(NamePoolTest, PersonNamesUniqueInUsedRange) {
  std::set<std::string> seen;
  for (size_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(seen.insert(names::Person(i)).second)
        << "duplicate at " << i << ": " << names::Person(i);
  }
}

TEST(NamePoolTest, TieredNamesExtendPools) {
  std::set<std::string> states;
  for (size_t i = 0; i < 2 * names::StateLimit(); ++i) {
    ASSERT_TRUE(states.insert(names::State(i)).second) << i;
  }
  std::set<std::string> universities;
  for (size_t i = 0; i < 2 * names::UniversityLimit(); ++i) {
    ASSERT_TRUE(universities.insert(names::University(i)).second) << i;
  }
  std::set<std::string> cities;
  for (size_t i = 0; i < 2 * names::CityLimit(); ++i) {
    ASSERT_TRUE(cities.insert(names::City(i)).second) << i;
  }
}

// ------------------------------------------------- dataset (parameterized) ----

using DatasetFactory = Dataset (*)(const DatasetOptions&);

class DatasetShapeTest : public ::testing::TestWithParam<DatasetFactory> {
 protected:
  DatasetShapeTest() : dataset_(GetParam()(SmallOptions())) {}
  Dataset dataset_;
};

TEST_P(DatasetShapeTest, HasRequestedCases) {
  EXPECT_EQ(dataset_.cases.size(), SmallOptions().num_cases);
  EXPECT_GT(dataset_.kg.size(), 100u);
  EXPECT_GT(dataset_.pretrain_facts.size(), 100u);
  EXPECT_FALSE(dataset_.locality_pool.empty());
}

TEST_P(DatasetShapeTest, EditsAreCounterfactual) {
  for (const EditCase& edit_case : dataset_.cases) {
    // The new object differs from ground truth, which is still in the KG.
    EXPECT_NE(edit_case.edit.object, edit_case.old_object);
    const auto old_triple = dataset_.kg.Resolve(
        {edit_case.edit.subject, edit_case.edit.relation,
         edit_case.old_object});
    ASSERT_TRUE(old_triple.ok());
    EXPECT_TRUE(dataset_.kg.Contains(*old_triple));
    const auto new_triple = dataset_.kg.Resolve(edit_case.edit);
    if (new_triple.ok()) {
      EXPECT_FALSE(dataset_.kg.Contains(*new_triple));
    }
  }
}

TEST_P(DatasetShapeTest, ProbesArePopulatedAndConsistent) {
  size_t reverse_probes = 0;
  size_t hop_probes = 0;
  size_t sub_probes = 0;
  for (const EditCase& edit_case : dataset_.cases) {
    EXPECT_EQ(edit_case.reliability.subject, edit_case.edit.subject);
    EXPECT_EQ(edit_case.reliability.expected, edit_case.edit.object);
    EXPECT_FALSE(edit_case.locality.empty());
    reverse_probes += edit_case.reverse.size();
    hop_probes += edit_case.one_hop.size();
    sub_probes += edit_case.sub_replace.size();
    for (const Probe& probe : edit_case.reverse) {
      EXPECT_EQ(probe.subject, edit_case.edit.object);
      EXPECT_EQ(probe.expected, edit_case.edit.subject);
    }
    for (const Probe& probe : edit_case.sub_replace) {
      EXPECT_EQ(probe.expected, edit_case.edit.object);
      EXPECT_NE(probe.subject, edit_case.edit.subject);
    }
    // One-hop expectations are true facts about the new object.
    for (const HopProbe& probe : edit_case.one_hop) {
      const auto o_new = dataset_.kg.LookupEntity(edit_case.edit.object);
      ASSERT_TRUE(o_new.ok());
      const auto r2 = dataset_.kg.schema().Lookup(probe.r2);
      ASSERT_TRUE(r2.ok());
      const auto expected = dataset_.kg.ObjectOf(*o_new, *r2);
      ASSERT_TRUE(expected.has_value());
      EXPECT_EQ(dataset_.kg.EntityName(*expected), probe.expected);
    }
  }
  // Every probe family must actually be exercised by the dataset.
  EXPECT_GT(reverse_probes, 0u);
  EXPECT_GT(hop_probes, 0u);
  EXPECT_GT(sub_probes, 0u);
}

TEST_P(DatasetShapeTest, LocalityPoolDisjointFromCaseEntities) {
  std::unordered_set<std::string> in_scope;
  for (const EditCase& edit_case : dataset_.cases) {
    in_scope.insert(edit_case.edit.subject);
    in_scope.insert(edit_case.edit.object);
    in_scope.insert(edit_case.old_object);
  }
  for (const NamedTriple& fact : dataset_.locality_pool) {
    EXPECT_EQ(in_scope.count(fact.subject), 0u) << fact.subject;
    EXPECT_EQ(in_scope.count(fact.object), 0u) << fact.object;
  }
}

TEST_P(DatasetShapeTest, VocabExcludesAliasesFromCandidates) {
  for (const std::string& entity : dataset_.vocab.entities) {
    EXPECT_EQ(dataset_.vocab.alias_of.count(entity), 0u) << entity;
  }
  EXPECT_FALSE(dataset_.vocab.alias_of.empty());
  EXPECT_FALSE(dataset_.vocab.relations.empty());
}

TEST_P(DatasetShapeTest, PretrainFactsIncludeBothDirections) {
  // For every reversible pretrain fact, the reverse is also present.
  std::set<NamedTriple> facts(dataset_.pretrain_facts.begin(),
                              dataset_.pretrain_facts.end());
  size_t reversible = 0;
  for (const NamedTriple& fact : dataset_.pretrain_facts) {
    const std::string inverse = dataset_.vocab.InverseOf(fact.relation);
    if (inverse.empty()) continue;
    ++reversible;
    EXPECT_EQ(facts.count(NamedTriple{fact.object, inverse, fact.subject}),
              1u)
        << "missing reverse of (" << fact.subject << ", " << fact.relation
        << ", " << fact.object << ")";
  }
  EXPECT_GT(reversible, 0u);
}

TEST_P(DatasetShapeTest, DeterministicForSameSeed) {
  Dataset again = GetParam()(SmallOptions());
  ASSERT_EQ(again.cases.size(), dataset_.cases.size());
  for (size_t i = 0; i < again.cases.size(); ++i) {
    EXPECT_EQ(again.cases[i].edit, dataset_.cases[i].edit);
    EXPECT_EQ(again.cases[i].old_object, dataset_.cases[i].old_object);
  }
  EXPECT_EQ(again.pretrain_facts, dataset_.pretrain_facts);
  EXPECT_EQ(again.kg.store().AllTriples(), dataset_.kg.store().AllTriples());
}

TEST_P(DatasetShapeTest, AlternativesSupportMultiUser) {
  size_t with_alternatives = 0;
  for (const EditCase& edit_case : dataset_.cases) {
    with_alternatives += !edit_case.alternative_objects.empty();
    for (const std::string& alt : edit_case.alternative_objects) {
      EXPECT_NE(alt, edit_case.edit.object);
      EXPECT_NE(alt, edit_case.old_object);
    }
  }
  EXPECT_GT(with_alternatives, dataset_.cases.size() / 2);
}

INSTANTIATE_TEST_SUITE_P(AllDomains, DatasetShapeTest,
                         ::testing::Values(&BuildAmericanPoliticians,
                                           &BuildAcademicFigures,
                                           &BuildTechCompanies));

// --------------------------------------------------------- domain details ----

TEST(PoliticiansTest, WorldIsRuleConsistent) {
  const Dataset dataset = BuildAmericanPoliticians(SmallOptions());
  // Spot-check: every governor/spouse pair implies the first_lady fact.
  const auto governor = dataset.kg.schema().Lookup("governor");
  const auto spouse = dataset.kg.schema().Lookup("spouse");
  const auto first_lady = dataset.kg.schema().Lookup("first_lady");
  ASSERT_TRUE(governor.ok() && spouse.ok() && first_lady.ok());
  size_t checked = 0;
  for (const Triple& t : dataset.kg.store().AllTriples()) {
    if (t.relation != *governor) continue;
    const auto wife = dataset.kg.ObjectOf(t.object, *spouse);
    if (!wife.has_value()) continue;
    EXPECT_TRUE(dataset.kg.Contains(Triple{t.subject, *first_lady, *wife}));
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(PoliticiansTest, GovernorRelationIsReversible) {
  const Dataset dataset = BuildAmericanPoliticians(SmallOptions());
  const auto governor = dataset.kg.schema().Lookup("governor");
  ASSERT_TRUE(governor.ok());
  ASSERT_TRUE(dataset.kg.schema().IsReversible(*governor));
  EXPECT_EQ(dataset.kg.schema().Name(dataset.kg.schema().InverseOf(*governor)),
            "governs");
  const auto spouse = dataset.kg.schema().Lookup("spouse");
  ASSERT_TRUE(spouse.ok());
  EXPECT_EQ(dataset.kg.schema().InverseOf(*spouse), *spouse);  // symmetric
}

TEST(AcademicTest, EmploysIsFunctionalOneProfPerUniversity) {
  const Dataset dataset = BuildAcademicFigures(SmallOptions());
  const auto employs = dataset.kg.schema().Lookup("employs");
  ASSERT_TRUE(employs.ok());
  for (const Triple& t : dataset.kg.store().AllTriples()) {
    if (t.relation != *employs) continue;
    EXPECT_EQ(dataset.kg.Objects(t.subject, *employs).size(), 1u)
        << dataset.kg.EntityName(t.subject) << " employs more than one";
  }
}

TEST(AcademicTest, AdvisorPermutationHasNoFixedPoint) {
  const Dataset dataset = BuildAcademicFigures(SmallOptions());
  const auto advisor = dataset.kg.schema().Lookup("advisor");
  ASSERT_TRUE(advisor.ok());
  for (const Triple& t : dataset.kg.store().AllTriples()) {
    if (t.relation != *advisor) continue;
    EXPECT_NE(t.subject, t.object) << "professor advising themselves";
  }
}

TEST(DatasetOptionsTest, CaseCountScales) {
  DatasetOptions big;
  big.num_cases = 40;
  const Dataset dataset = BuildAmericanPoliticians(big);
  EXPECT_EQ(dataset.cases.size(), 40u);
  // Still solvable with a non-empty locality pool.
  EXPECT_FALSE(dataset.locality_pool.empty());
}


TEST(CompaniesTest, CeoHometownRuleConsistent) {
  const Dataset dataset = BuildTechCompanies(SmallOptions());
  const auto ceo = dataset.kg.schema().Lookup("ceo");
  const auto hometown = dataset.kg.schema().Lookup("hometown");
  const auto ceo_hometown = dataset.kg.schema().Lookup("ceo_hometown");
  ASSERT_TRUE(ceo.ok() && hometown.ok() && ceo_hometown.ok());
  size_t checked = 0;
  for (const Triple& t : dataset.kg.store().AllTriples()) {
    if (t.relation != *ceo) continue;
    const auto home = dataset.kg.ObjectOf(t.object, *hometown);
    if (!home.has_value()) continue;
    EXPECT_TRUE(dataset.kg.Contains(Triple{t.subject, *ceo_hometown, *home}));
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(CompaniesTest, HarnessRunsOnThirdDomain) {
  // The whole pipeline generalizes to a domain the paper never saw.
  const Dataset probe_check = BuildTechCompanies(SmallOptions());
  size_t hops = 0;
  for (const EditCase& edit_case : probe_check.cases) {
    hops += edit_case.one_hop.size();
  }
  EXPECT_GT(hops, 0u);
}

}  // namespace
}  // namespace oneedit
