#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "kg/dictionary.h"
#include "kg/graph_query.h"
#include "kg/knowledge_graph.h"
#include "kg/relation_schema.h"
#include "kg/rules.h"
#include "kg/triple_store.h"
#include "kg/wal.h"

namespace oneedit {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------------------------- Dictionary ----

TEST(DictionaryTest, InternAssignsDenseIdsInOrder) {
  Dictionary d;
  EXPECT_EQ(d.Intern("alpha"), 0u);
  EXPECT_EQ(d.Intern("beta"), 1u);
  EXPECT_EQ(d.Intern("alpha"), 0u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Name(1), "beta");
  EXPECT_EQ(d.Name(99), "<invalid>");
}

TEST(DictionaryTest, LookupMissReturnsNotFound) {
  Dictionary d;
  EXPECT_FALSE(d.Lookup("ghost").ok());
  d.Intern("ghost");
  ASSERT_TRUE(d.Lookup("ghost").ok());
  EXPECT_TRUE(d.Contains("ghost"));
}

// ---------------------------------------------------------- RelationSchema ----

TEST(RelationSchemaTest, DefineIsIdempotent) {
  RelationSchema schema;
  const RelationId wife = schema.Define("wife");
  EXPECT_EQ(schema.Define("wife"), wife);
  EXPECT_EQ(schema.size(), 1u);
  EXPECT_TRUE(schema.IsFunctional(wife));
}

TEST(RelationSchemaTest, InverseLinksAreSymmetric) {
  RelationSchema schema;
  const RelationId wife = schema.Define("wife");
  const RelationId husband = schema.Define("husband");
  ASSERT_TRUE(schema.SetInverse(wife, husband).ok());
  EXPECT_TRUE(schema.IsReversible(wife));
  EXPECT_EQ(schema.InverseOf(wife), husband);
  EXPECT_EQ(schema.InverseOf(husband), wife);
  // Re-declaring the same link is fine; a different link is rejected.
  EXPECT_TRUE(schema.SetInverse(wife, husband).ok());
  const RelationId other = schema.Define("other");
  EXPECT_FALSE(schema.SetInverse(wife, other).ok());
}

TEST(RelationSchemaTest, SymmetricRelationIsItsOwnInverse) {
  RelationSchema schema;
  const RelationId spouse = schema.Define("spouse");
  ASSERT_TRUE(schema.SetSymmetric(spouse).ok());
  EXPECT_EQ(schema.InverseOf(spouse), spouse);
}

TEST(RelationSchemaTest, UnknownIdsAreSafe) {
  RelationSchema schema;
  EXPECT_FALSE(schema.IsReversible(5));
  EXPECT_EQ(schema.InverseOf(5), kInvalidId);
  EXPECT_FALSE(schema.IsFunctional(5));
  EXPECT_FALSE(schema.SetInverse(0, 1).ok());
}

// ------------------------------------------------------------- TripleStore ----

TEST(TripleStoreTest, AddRemoveContains) {
  TripleStore store;
  const Triple t{1, 2, 3};
  EXPECT_TRUE(store.Add(t));
  EXPECT_FALSE(store.Add(t));
  EXPECT_TRUE(store.Contains(t));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Remove(t));
  EXPECT_FALSE(store.Remove(t));
  EXPECT_TRUE(store.empty());
}

TEST(TripleStoreTest, PatternLookupsAreSortedAndComplete) {
  TripleStore store;
  store.Add({1, 7, 9});
  store.Add({1, 7, 4});
  store.Add({2, 7, 4});
  store.Add({1, 8, 4});
  EXPECT_EQ(store.Objects(1, 7), (std::vector<EntityId>{4, 9}));
  EXPECT_EQ(store.Subjects(7, 4), (std::vector<EntityId>{1, 2}));
  EXPECT_EQ(store.TriplesWithSubject(1).size(), 3u);
  EXPECT_EQ(store.TriplesWithObject(4).size(), 3u);
  EXPECT_TRUE(store.Objects(9, 7).empty());
}

TEST(TripleStoreTest, RemovePrunesIndexes) {
  TripleStore store;
  store.Add({1, 7, 9});
  store.Add({1, 7, 4});
  store.Remove({1, 7, 9});
  EXPECT_EQ(store.Objects(1, 7), (std::vector<EntityId>{4}));
  store.Remove({1, 7, 4});
  EXPECT_TRUE(store.Objects(1, 7).empty());
  EXPECT_TRUE(store.TriplesWithSubject(1).empty());
}

TEST(TripleStoreTest, AllTriplesSorted) {
  TripleStore store;
  store.Add({3, 1, 1});
  store.Add({1, 2, 3});
  store.Add({1, 1, 1});
  const auto all = store.AllTriples();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_TRUE(all[0] < all[1] && all[1] < all[2]);
}

// ------------------------------------------------------------------- WAL ----

TEST(WalTest, AppendAndReplayRoundTrip) {
  const std::string path = TempPath("oneedit_wal_test.log");
  std::remove(path.c_str());
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    ASSERT_TRUE(wal.Append(WalOp::kAdd, "USA", "president", "Trump").ok());
    ASSERT_TRUE(wal.Append(WalOp::kRemove, "USA", "president", "Trump").ok());
    ASSERT_TRUE(wal.Append(WalOp::kAdd, "USA", "president", "Biden").ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(WriteAheadLog::Replay(path, [&](WalOp op, const std::string& s,
                                              const std::string& r,
                                              const std::string& o) {
                seen.push_back((op == WalOp::kAdd ? "A:" : "D:") + s + "/" +
                               r + "/" + o);
              }).ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "A:USA/president/Trump");
  EXPECT_EQ(seen[2], "A:USA/president/Biden");
  std::remove(path.c_str());
}

TEST(WalTest, EscapesFieldsWithTabsAndNewlines) {
  const std::string path = TempPath("oneedit_wal_tab.log");
  std::remove(path.c_str());
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path).ok());
    // Tabs and newlines are the format's delimiters; Append escapes them so
    // any entity name round-trips instead of corrupting the line framing.
    ASSERT_TRUE(wal.Append(WalOp::kAdd, "bad\tname", "r\nmulti", "o\\x").ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  std::vector<std::string> seen;
  ASSERT_TRUE(WriteAheadLog::Replay(path, [&](WalOp, const std::string& s,
                                              const std::string& r,
                                              const std::string& o) {
                seen.push_back(s);
                seen.push_back(r);
                seen.push_back(o);
              }).ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], "bad\tname");
  EXPECT_EQ(seen[1], "r\nmulti");
  EXPECT_EQ(seen[2], "o\\x");
  std::remove(path.c_str());
}

TEST(WalTest, ReplayToleratesTornFinalLine) {
  const std::string path = TempPath("oneedit_wal_torn.log");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("A\tUSA\tpresident\tTrump\n", f);
    // The process died mid-append: no trailing newline, fields missing.
    std::fputs("A\tUSA\tpres", f);
    std::fclose(f);
  }
  std::vector<std::string> seen;
  const Status s = WriteAheadLog::Replay(
      path, [&](WalOp, const std::string& subject, const std::string&,
                const std::string&) { seen.push_back(subject); });
  EXPECT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "USA");
  std::remove(path.c_str());
}

TEST(WalTest, TruncateDropsAllRecords) {
  const std::string path = TempPath("oneedit_wal_truncate.log");
  std::remove(path.c_str());
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(wal.Append(WalOp::kAdd, "USA", "president", "Trump").ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Truncate().ok());
  size_t count = 0;
  ASSERT_TRUE(WriteAheadLog::Replay(path, [&](WalOp, const std::string&,
                                              const std::string&,
                                              const std::string&) {
                ++count;
              }).ok());
  EXPECT_EQ(count, 0u);
  // The log stays usable after rotation.
  ASSERT_TRUE(wal.Append(WalOp::kAdd, "USA", "president", "Biden").ok());
  ASSERT_TRUE(wal.Sync().ok());
  std::remove(path.c_str());
}

TEST(WalTest, ReplayDetectsCorruption) {
  const std::string path = TempPath("oneedit_wal_corrupt.log");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("A\tUSA\tpresident\tTrump\n", f);
    std::fputs("garbage line\n", f);
    std::fclose(f);
  }
  const Status s = WriteAheadLog::Replay(
      path, [](WalOp, const std::string&, const std::string&,
               const std::string&) {});
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(WalTest, AppendWithoutOpenFails) {
  WriteAheadLog wal;
  EXPECT_FALSE(wal.Append(WalOp::kAdd, "a", "b", "c").ok());
  EXPECT_FALSE(wal.Sync().ok());
}

// ----------------------------------------------------------------- Rules ----

TEST(RuleEngineTest, DeriveFromBindsEitherAtom) {
  TripleStore store;
  // Relations: 0=president_of_country(country, president, person),
  //            1=wife, 2=first_lady.
  RuleEngine rules;
  rules.AddRule(HornRule{"first-lady", 0, 1, 2});
  // (USA=10, president, Biden=11), (Biden, wife, Jill=12).
  store.Add({10, 0, 11});
  store.Add({11, 1, 12});

  // Seeding the president fact derives (USA, first_lady, Jill).
  const auto derived1 = rules.DeriveFrom(store, {10, 0, 11});
  ASSERT_EQ(derived1.size(), 1u);
  EXPECT_EQ(derived1[0], (Triple{10, 2, 12}));

  // Seeding the wife fact derives the same head.
  const auto derived2 = rules.DeriveFrom(store, {11, 1, 12});
  ASSERT_EQ(derived2.size(), 1u);
  EXPECT_EQ(derived2[0], (Triple{10, 2, 12}));
}

TEST(RuleEngineTest, NoMatchNoDerivation) {
  TripleStore store;
  RuleEngine rules;
  rules.AddRule(HornRule{"r", 0, 1, 2});
  store.Add({10, 0, 11});
  EXPECT_TRUE(rules.DeriveFrom(store, {10, 5, 11}).empty());
  EXPECT_TRUE(rules.DeriveFrom(store, {10, 0, 11}).empty());  // no second atom
}

TEST(RuleEngineTest, DeriveAllCoversStoreAndRespectsLimit) {
  TripleStore store;
  RuleEngine rules;
  rules.AddRule(HornRule{"r", 0, 1, 2});
  store.Add({10, 0, 11});
  store.Add({11, 1, 12});
  store.Add({20, 0, 21});
  store.Add({21, 1, 22});
  EXPECT_EQ(rules.DeriveAll(store, 100).size(), 2u);
  EXPECT_EQ(rules.DeriveAll(store, 1).size(), 1u);
}

// ------------------------------------------------------------ GraphQuery ----

TEST(GraphQueryTest, NHopEntitiesExpandsByLayers) {
  TripleStore store;
  // Chain: 1 -> 2 -> 3 -> 4.
  store.Add({1, 0, 2});
  store.Add({2, 0, 3});
  store.Add({3, 0, 4});
  EXPECT_EQ(NHopEntities(store, 1, 1), (std::vector<EntityId>{2}));
  EXPECT_EQ(NHopEntities(store, 1, 2), (std::vector<EntityId>{2, 3}));
  EXPECT_EQ(NHopEntities(store, 1, 3), (std::vector<EntityId>{2, 3, 4}));
  // Undirected: from 3, one hop reaches 2 and 4.
  EXPECT_EQ(NHopEntities(store, 3, 1), (std::vector<EntityId>{2, 4}));
}

TEST(GraphQueryTest, NeighborhoodTriplesNearestFirst) {
  TripleStore store;
  store.Add({1, 0, 2});   // distance-0 edge (incident to center)
  store.Add({2, 0, 3});   // incident to 1-hop node
  store.Add({3, 0, 4});   // incident to 2-hop node
  const auto got = NeighborhoodTriples(store, 1, 2);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (Triple{1, 0, 2}));
  EXPECT_EQ(got[1], (Triple{2, 0, 3}));
  EXPECT_TRUE(NeighborhoodTriples(store, 1, 0).empty());
  // Asking for more than exist returns all, without duplicates.
  EXPECT_EQ(NeighborhoodTriples(store, 1, 50).size(), 3u);
}

TEST(GraphQueryTest, DistanceBfs) {
  TripleStore store;
  store.Add({1, 0, 2});
  store.Add({2, 0, 3});
  store.Add({9, 0, 9});
  EXPECT_EQ(Distance(store, 1, 1), 0u);
  EXPECT_EQ(Distance(store, 1, 3), 2u);
  EXPECT_EQ(Distance(store, 3, 1), 2u);
  EXPECT_EQ(Distance(store, 1, 9), SIZE_MAX);
}

// --------------------------------------------------------- KnowledgeGraph ----

class KnowledgeGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    usa_ = kg_.InternEntity("USA");
    trump_ = kg_.InternEntity("Trump");
    biden_ = kg_.InternEntity("Biden");
    president_ = kg_.schema().Define("president");
  }
  KnowledgeGraph kg_;
  EntityId usa_, trump_, biden_;
  RelationId president_;
};

TEST_F(KnowledgeGraphTest, AddRemoveVersioned) {
  EXPECT_EQ(kg_.version(), 0u);
  ASSERT_TRUE(kg_.Add({usa_, president_, trump_}).ok());
  EXPECT_EQ(kg_.version(), 1u);
  EXPECT_TRUE(kg_.Contains({usa_, president_, trump_}));
  EXPECT_TRUE(kg_.Add({usa_, president_, trump_}).IsAlreadyExists());
  ASSERT_TRUE(kg_.Remove({usa_, president_, trump_}).ok());
  EXPECT_EQ(kg_.version(), 2u);
  EXPECT_TRUE(kg_.Remove({usa_, president_, trump_}).IsNotFound());
}

TEST_F(KnowledgeGraphTest, UpsertReplacesFunctionalSlot) {
  auto first = kg_.Upsert(usa_, president_, trump_);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->has_value());
  auto second = kg_.Upsert(usa_, president_, biden_);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ(**second, trump_);
  EXPECT_EQ(kg_.ObjectOf(usa_, president_), biden_);
  EXPECT_FALSE(kg_.Contains({usa_, president_, trump_}));
  // Upserting the same value is a no-op.
  const uint64_t v = kg_.version();
  auto third = kg_.Upsert(usa_, president_, biden_);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->has_value());
  EXPECT_EQ(kg_.version(), v);
}

TEST_F(KnowledgeGraphTest, RollbackRestoresExactState) {
  ASSERT_TRUE(kg_.Add({usa_, president_, trump_}).ok());
  const uint64_t checkpoint = kg_.version();
  ASSERT_TRUE(kg_.Upsert(usa_, president_, biden_).ok());
  EXPECT_EQ(kg_.ObjectOf(usa_, president_), biden_);
  ASSERT_TRUE(kg_.RollbackTo(checkpoint).ok());
  EXPECT_EQ(kg_.ObjectOf(usa_, president_), trump_);
  EXPECT_EQ(kg_.version(), checkpoint);
  EXPECT_FALSE(kg_.RollbackTo(checkpoint + 100).ok());
}

TEST_F(KnowledgeGraphTest, ResolveAndToNamed) {
  ASSERT_TRUE(kg_.Add({usa_, president_, trump_}).ok());
  const auto t = kg_.Resolve({"USA", "president", "Trump"});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->subject, usa_);
  EXPECT_EQ(kg_.ToNamed(*t),
            (NamedTriple{"USA", "president", "Trump"}));
  EXPECT_EQ(kg_.ToString(*t), "(USA, president, Trump)");
  EXPECT_FALSE(kg_.Resolve({"Narnia", "president", "Trump"}).ok());
}

TEST_F(KnowledgeGraphTest, AliasesResolveToCanonical) {
  const EntityId potus = kg_.InternEntity("POTUS-45");
  kg_.AddAlias(potus, trump_);
  EXPECT_EQ(kg_.Canonical(potus), trump_);
  EXPECT_EQ(kg_.Canonical(trump_), trump_);
  EXPECT_EQ(kg_.AliasesOf(trump_), (std::vector<EntityId>{potus}));
  EXPECT_TRUE(kg_.AliasesOf(biden_).empty());
}

TEST_F(KnowledgeGraphTest, SnapshotRoundTrip) {
  const std::string path = TempPath("oneedit_kg_snapshot.tsv");
  std::remove(path.c_str());
  ASSERT_TRUE(kg_.Add({usa_, president_, trump_}).ok());
  ASSERT_TRUE(kg_.SaveSnapshot(path).ok());

  KnowledgeGraph other;
  ASSERT_TRUE(other.LoadSnapshot(path).ok());
  const auto t = other.Resolve({"USA", "president", "Trump"});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(other.Contains(*t));
  std::remove(path.c_str());
}

TEST_F(KnowledgeGraphTest, WalReplayRestoresGraph) {
  const std::string path = TempPath("oneedit_kg_wal.log");
  std::remove(path.c_str());
  {
    KnowledgeGraph kg;
    ASSERT_TRUE(kg.AttachWal(path, /*replay_existing=*/true).ok());
    const EntityId usa = kg.InternEntity("USA");
    const EntityId trump = kg.InternEntity("Trump");
    const EntityId biden = kg.InternEntity("Biden");
    const RelationId president = kg.schema().Define("president");
    ASSERT_TRUE(kg.Add({usa, president, trump}).ok());
    ASSERT_TRUE(kg.Upsert(usa, president, biden).ok());
  }
  KnowledgeGraph recovered;
  ASSERT_TRUE(recovered.AttachWal(path, /*replay_existing=*/true).ok());
  const auto t = recovered.Resolve({"USA", "president", "Biden"});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(recovered.Contains(*t));
  EXPECT_FALSE(recovered.Resolve({"USA", "president", "Trump"}).ok() &&
               recovered.Contains(*recovered.Resolve(
                   {"USA", "president", "Trump"})));
  std::remove(path.c_str());
}

TEST_F(KnowledgeGraphTest, WalJournalsRollbacksAsCompensation) {
  const std::string path = TempPath("oneedit_kg_wal_rb.log");
  std::remove(path.c_str());
  {
    KnowledgeGraph kg;
    ASSERT_TRUE(kg.AttachWal(path, true).ok());
    const EntityId usa = kg.InternEntity("USA");
    const EntityId trump = kg.InternEntity("Trump");
    const EntityId biden = kg.InternEntity("Biden");
    const RelationId president = kg.schema().Define("president");
    ASSERT_TRUE(kg.Add({usa, president, trump}).ok());
    const uint64_t checkpoint = kg.version();
    ASSERT_TRUE(kg.Upsert(usa, president, biden).ok());
    ASSERT_TRUE(kg.RollbackTo(checkpoint).ok());
  }
  KnowledgeGraph recovered;
  ASSERT_TRUE(recovered.AttachWal(path, true).ok());
  const auto t = recovered.Resolve({"USA", "president", "Trump"});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(recovered.Contains(*t));
  std::remove(path.c_str());
}


TEST_F(KnowledgeGraphTest, TransactionCommitKeepsMutations) {
  {
    KnowledgeGraph::Transaction txn(&kg_);
    ASSERT_TRUE(kg_.Add({usa_, president_, trump_}).ok());
    txn.Commit();
  }
  EXPECT_TRUE(kg_.Contains({usa_, president_, trump_}));
}

TEST_F(KnowledgeGraphTest, TransactionAbortOnScopeExit) {
  ASSERT_TRUE(kg_.Add({usa_, president_, trump_}).ok());
  {
    KnowledgeGraph::Transaction txn(&kg_);
    ASSERT_TRUE(kg_.Upsert(usa_, president_, biden_).ok());
    EXPECT_EQ(kg_.ObjectOf(usa_, president_), biden_);
    // no Commit -> destructor aborts
  }
  EXPECT_EQ(kg_.ObjectOf(usa_, president_), trump_);
}

TEST_F(KnowledgeGraphTest, TransactionExplicitAbortIsIdempotent) {
  KnowledgeGraph::Transaction txn(&kg_);
  ASSERT_TRUE(kg_.Add({usa_, president_, trump_}).ok());
  ASSERT_TRUE(txn.Abort().ok());
  ASSERT_TRUE(txn.Abort().ok());
  EXPECT_FALSE(kg_.Contains({usa_, president_, trump_}));
}

TEST_F(KnowledgeGraphTest, TransactionsNestLifo) {
  KnowledgeGraph::Transaction outer(&kg_);
  ASSERT_TRUE(kg_.Add({usa_, president_, trump_}).ok());
  {
    KnowledgeGraph::Transaction inner(&kg_);
    ASSERT_TRUE(kg_.Upsert(usa_, president_, biden_).ok());
    // inner aborts
  }
  EXPECT_EQ(kg_.ObjectOf(usa_, president_), trump_);
  outer.Commit();
  EXPECT_TRUE(kg_.Contains({usa_, president_, trump_}));
}

}  // namespace
}  // namespace oneedit
