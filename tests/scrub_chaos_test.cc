// Storage-fault chaos: seeded rounds against a live primary+follower pair.
// Each round lands a random bit flip in the primary's journal and then runs
// the disk dry under it, asserting the full storage-fault story end to end:
// the scrubber detects the rot, replica-assisted repair restores the
// byte-identical journal from the follower's repair listener, ENOSPC sheds
// writes into read-only degradation that auto-heals once space frees, and a
// pristine process recovers every acknowledged edit.
//
// Rounds default to 3 locally; CI pins ONEEDIT_SCRUB_ROUNDS=10. A failing
// round prints in the SCOPED_TRACE and replays exactly by re-running with
// the same round count (seeds are derived from the round index).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "durability/env.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "durability/scrubber.h"
#include "serving/edit_service.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::Env;
using durability::FaultInjectingEnv;
using durability::ScrubFinding;
using durability::ScrubOptions;
using durability::Scrubber;
using serving::EditService;
using serving::EditServiceOptions;
using serving::ReplicationRole;
using serving::ServiceHealth;

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bool WaitFor(const std::function<bool()>& done,
             std::chrono::milliseconds deadline =
                 std::chrono::milliseconds(15000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

struct Node {
  Node(DurabilityManager* durability,
       const std::function<void(EditServiceOptions*)>& tweak = {})
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    EditServiceOptions options;
    options.durability = durability;
    options.replication.poll_interval = std::chrono::milliseconds(5);
    if (tweak) tweak(&options);
    auto created =
        EditService::Create(&dataset.kg, model.get(), GraceConfig(), options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  uint16_t replication_port() const {
    const auto* server = service->replication_server();
    return server == nullptr ? 0 : server->port();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

int RoundsFromEnv() {
  const char* rounds = std::getenv("ONEEDIT_SCRUB_ROUNDS");
  if (rounds == nullptr) return 3;
  const int parsed = std::atoi(rounds);
  return parsed > 0 ? parsed : 3;
}

TEST(ScrubChaosTest, SeededRotAndDiskFullRoundsLoseNothing) {
  const int rounds = RoundsFromEnv();
  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    std::mt19937_64 rng(0x5eedull * 1000003u + round);

    // Primary on an injectable disk; large checkpoint interval so the
    // whole history stays in both journals (byte-identical repair).
    const std::string primary_dir =
        TempDirFor("oneedit_scrub_chaos_p" + std::to_string(round));
    FaultInjectingEnv fault(Env::Default());
    DurabilityOptions popts;
    popts.dir = primary_dir;
    popts.env = &fault;
    popts.checkpoint_interval = 1000;
    auto pmgr = DurabilityManager::Open(popts);
    ASSERT_TRUE(pmgr.ok());
    Node primary(pmgr->get(), [](EditServiceOptions* o) {
      o->replication.role = ReplicationRole::kPrimary;
      o->self_heal.heal_probe_interval = std::chrono::milliseconds(10);
    });
    ASSERT_NE(primary.replication_port(), 0);

    const std::string follower_dir =
        TempDirFor("oneedit_scrub_chaos_f" + std::to_string(round));
    DurabilityOptions fopts;
    fopts.dir = follower_dir;
    fopts.checkpoint_interval = 1000;
    auto fmgr = DurabilityManager::Open(fopts);
    ASSERT_TRUE(fmgr.ok());
    const uint16_t port = primary.replication_port();
    Node follower(fmgr->get(), [port](EditServiceOptions* o) {
      o->replication.role = ReplicationRole::kFollower;
      o->replication.primary_port = port;
      o->replication.enable_repair_listener = true;
    });
    ASSERT_NE(follower.service->repair_server(), nullptr);
    primary.service->SetRepairPeers(
        {follower.service->repair_server()->port()});

    // Workload: six acknowledged edits, replica converged.
    std::vector<EditCase> acked;
    for (size_t i = 0; i < 6; ++i) {
      const EditCase& c = primary.dataset.cases[i];
      const auto result =
          primary.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
      ASSERT_TRUE(result.ok());
      ASSERT_TRUE(result->applied());
      acked.push_back(c);
    }
    const uint64_t mid_head = primary.service->applied_sequence();
    ASSERT_TRUE(WaitFor([&] {
      return follower.service->applied_sequence() >= mid_head;
    })) << "follower never converged";

    // Chaos 1 — bit-rot at a random journal offset: detect, then repair
    // byte-identically from the follower's repair listener.
    const std::string follower_wal = ReadFile((*fmgr)->wal_path());
    std::string corrupted = ReadFile((*pmgr)->wal_path());
    ASSERT_EQ(corrupted, follower_wal) << "journals diverged pre-corruption";
    ASSERT_GT(corrupted.size(), 0u);
    const size_t flip_at = rng() % corrupted.size();
    const char flip_mask = static_cast<char>(1u << (rng() % 8));
    corrupted[flip_at] ^= flip_mask;
    WriteFile((*pmgr)->wal_path(), corrupted);

    ScrubOptions sopts;
    sopts.max_bytes_per_second = 0;
    Scrubber scrubber(pmgr->get(), &primary.service->statistics(), sopts,
                      nullptr);
    const std::vector<ScrubFinding> findings = scrubber.ScrubOnce();
    ASSERT_FALSE(findings.empty())
        << "flip at byte " << flip_at << " went undetected";
    const Status repaired =
        primary.service->RepairCorruption(findings.front());
    ASSERT_TRUE(repaired.ok()) << repaired.ToString();
    EXPECT_EQ(ReadFile((*pmgr)->wal_path()), follower_wal)
        << "repair did not restore the byte-identical journal";
    EXPECT_TRUE(scrubber.ScrubOnce().empty());
    EXPECT_GE(primary.service->statistics().Get(Ticker::kRepairsCompleted),
              1u);

    // Chaos 2 — the disk runs dry mid-service: the write is shed typed,
    // reads keep serving, and the service heals once space frees.
    fault.SetDiskBudget(0);
    const EditCase& blocked = primary.dataset.cases[7];
    const auto shed =
        primary.service->SubmitAndWait(EditRequest::Edit(blocked.edit, "bob"));
    ASSERT_TRUE(shed.ok());
    EXPECT_EQ(shed->kind, EditResult::Kind::kRejected);
    // The 10ms heal probe may be mid-flight (kHalfOpenProbing): assert the
    // service is out of full service, not the exact ladder rung.
    EXPECT_NE(primary.service->health(), ServiceHealth::kHealthy);
    EXPECT_GE(primary.service->statistics().Get(Ticker::kEnospcRejects), 1u);
    EXPECT_TRUE(primary.service->GetSnapshot().ok());

    fault.SetDiskBudget(-1);
    ASSERT_TRUE(WaitFor([&] {
      return primary.service->health() == ServiceHealth::kHealthy;
    })) << "primary stuck degraded after the disk freed";
    const auto retried =
        primary.service->SubmitAndWait(EditRequest::Edit(blocked.edit, "bob"));
    ASSERT_TRUE(retried.ok());
    ASSERT_TRUE(retried->applied());
    acked.push_back(blocked);
    const uint64_t head = primary.service->applied_sequence();

    // Teardown, then the final property: zero acknowledged-edit loss.
    follower.service.reset();
    primary.service.reset();
    pmgr->reset();
    DurabilityOptions ropts;
    ropts.dir = primary_dir;
    auto rmgr = DurabilityManager::Open(ropts);
    ASSERT_TRUE(rmgr.ok());
    Dataset rebooted_data = BuildAmericanPoliticians(TinyOptions());
    auto rebooted_model = std::make_unique<LanguageModel>(
        Gpt2XlSimConfig(), rebooted_data.vocab);
    rebooted_model->Pretrain(rebooted_data.pretrain_facts);
    auto rebooted = OneEditSystem::Create(&rebooted_data.kg,
                                          rebooted_model.get(), GraceConfig());
    ASSERT_TRUE(rebooted.ok());
    const auto report = (*rmgr)->Recover(rebooted->get());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_FALSE(report->wal_corruption_detected);
    EXPECT_EQ(report->last_sequence, head);
    for (const EditCase& c : acked) {
      EXPECT_EQ((*rebooted)->Ask(c.edit.subject, c.edit.relation).entity,
                c.edit.object)
          << "acknowledged edit lost: " << c.edit.subject;
    }
  }
}

}  // namespace
}  // namespace oneedit
