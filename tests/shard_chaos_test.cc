// Randomized crash rounds for the sharded fleet (docs/sharding.md): each
// seeded round drives a mix of single-shard and cross-shard edits into a
// two-shard fleet, kills one shard's disk at a random journal failpoint
// mid-workload, restarts the fleet on the surviving journals, and resolves
// in-doubt transactions. Invariants checked every round:
//
//   1. Atomicity — no cross-shard edit is ever half-applied once recovery
//      and resolution settle (subject half applied ⟺ inverse half applied).
//   2. Zero acknowledged loss — every edit acknowledged before the crash is
//      present after recovery, single-shard and cross-shard alike.
//   3. Resolution idempotence — a second RecoverInDoubt pass is a no-op.
//
// Rounds default to 2 for local runs; CI sets ONEEDIT_SHARD_ROUNDS=10.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "durability/env.h"
#include "durability/fault_env.h"
#include "durability/manager.h"
#include "shard/shard_router.h"
#include "util/rng.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::Env;
using durability::FaultInjectingEnv;
using serving::EditService;
using serving::EditServiceOptions;
using shard::ShardRouter;
using shard::ShardRouterOptions;
using shard::ShardSpec;

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

size_t Rounds() {
  const char* env = std::getenv("ONEEDIT_SHARD_ROUNDS");
  if (env == nullptr) return 2;
  const long parsed = std::atol(env);
  return parsed > 0 ? static_cast<size_t>(parsed) : 2;
}

struct ShardWorld {
  explicit ShardWorld(DurabilityManager* durability)
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    EditServiceOptions options;
    options.durability = durability;
    auto created = EditService::Create(&dataset.kg, model.get(),
                                       GraceConfig(), options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

struct Fleet {
  Fleet(const std::string& dir0, const std::string& dir1, Env* env0,
        Env* env1) {
    const std::string dirs[2] = {dir0, dir1};
    Env* envs[2] = {env0, env1};
    for (size_t i = 0; i < 2; ++i) {
      DurabilityOptions opts;
      opts.dir = dirs[i];
      opts.env = envs[i];
      auto mgr = DurabilityManager::Open(opts);
      EXPECT_TRUE(mgr.ok());
      managers.push_back(std::move(*mgr));
      shards.push_back(std::make_unique<ShardWorld>(managers.back().get()));
    }
    ShardRouterOptions options;
    options.vocab = &shards[0]->dataset.vocab;
    std::vector<ShardSpec> specs;
    for (size_t i = 0; i < 2; ++i) {
      specs.push_back(ShardSpec{"shard-" + std::to_string(i),
                                shards[i]->service.get(), managers[i].get(),
                                1.0});
    }
    router = std::make_unique<ShardRouter>(std::move(specs), options);
  }

  bool SubjectApplied(const EditCase& c) const {
    const auto decode = router->Ask(c.edit.subject, c.edit.relation);
    return decode.ok() && decode->entity == c.edit.object;
  }

  bool ObjectApplied(const EditCase& c) const {
    const std::string inverse =
        shards[0]->dataset.vocab.InverseOf(c.edit.relation);
    const auto decode = router->Ask(c.edit.object, inverse);
    return decode.ok() && decode->entity == c.edit.subject;
  }

  bool IsCrossShard(const EditCase& c) const {
    return router->ShardFor(c.edit.subject) !=
               router->ShardFor(c.edit.object) &&
           !shards[0]->dataset.vocab.InverseOf(c.edit.relation).empty();
  }

  std::vector<std::unique_ptr<DurabilityManager>> managers;
  std::vector<std::unique_ptr<ShardWorld>> shards;
  std::unique_ptr<ShardRouter> router;
};

/// Cases whose subject/object entity sets are pairwise disjoint, so each
/// edit owns its KG slots and post-crash presence checks cannot be
/// overwritten by a neighbouring edit in the same round.
std::vector<EditCase> DisjointCases(const Fleet& fleet) {
  std::vector<EditCase> picked;
  std::set<std::string> used;
  for (const EditCase& c : fleet.shards[0]->dataset.cases) {
    if (used.count(c.edit.subject) > 0 || used.count(c.edit.object) > 0) {
      continue;
    }
    used.insert(c.edit.subject);
    used.insert(c.edit.object);
    picked.push_back(c);
  }
  return picked;
}

TEST(ShardChaosTest, SeededCrashRoundsPreserveAtomicityAndAckedEdits) {
  const std::string dir0 = testing::TempDir() + "/oneedit_chaos_0";
  const std::string dir1 = testing::TempDir() + "/oneedit_chaos_1";
  const size_t rounds = Rounds();
  size_t total_acked = 0, total_cross = 0, total_crashed_mid_workload = 0;

  for (size_t round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    Rng rng(/*seed=*/0xC0FFEE ^ (round * 2654435761ULL));
    TempDirFor("oneedit_chaos_0");
    TempDirFor("oneedit_chaos_1");

    std::vector<EditCase> workload;
    std::vector<bool> acked;
    std::vector<bool> cross;
    {
      FaultInjectingEnv fault0(Env::Default());
      FaultInjectingEnv fault1(Env::Default());
      Fleet fleet(dir0, dir1, &fault0, &fault1);
      workload = DisjointCases(fleet);
      ASSERT_GE(workload.size(), 4u);
      acked.assign(workload.size(), false);
      cross.assign(workload.size(), false);

      // Arm one shard's disk to die at a random failpoint somewhere in the
      // middle of the workload (~a handful of journal ops per edit).
      FaultInjectingEnv& victim = rng.NextBool(0.5) ? fault0 : fault1;
      victim.CrashAt(static_cast<long>(
          rng.NextBelow(4 * workload.size()) + 1));

      for (size_t i = 0; i < workload.size(); ++i) {
        cross[i] = fleet.IsCrossShard(workload[i]);
        const auto result = fleet.router->SubmitAndWait(
            EditRequest::Edit(workload[i].edit, "chaos"));
        acked[i] = result.ok() &&
                   (*result).kind == EditResult::Kind::kEdited;
      }
      if (victim.crashed()) ++total_crashed_mid_workload;
      // Fleet torn down mid-protocol: the crash leaves whatever the
      // journals happened to hold.
    }

    // Restart on healthy disks; recover and resolve.
    Fleet fleet(dir0, dir1, nullptr, nullptr);
    ASSERT_TRUE(fleet.shards[0]->service->recovery_status().ok());
    ASSERT_TRUE(fleet.shards[1]->service->recovery_status().ok());
    const auto resolved = fleet.router->RecoverInDoubt();
    ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();

    for (size_t i = 0; i < workload.size(); ++i) {
      SCOPED_TRACE("edit " + std::to_string(i) + " (" +
                   workload[i].edit.subject + ", " +
                   workload[i].edit.relation + ") -> " +
                   workload[i].edit.object +
                   (cross[i] ? " [cross-shard]" : " [single-shard]"));
      const bool subject_applied = fleet.SubjectApplied(workload[i]);
      if (cross[i]) {
        // Atomicity: both halves or neither, never a torn edit.
        EXPECT_EQ(subject_applied, fleet.ObjectApplied(workload[i]));
        ++total_cross;
      }
      // Zero acknowledged loss.
      if (acked[i]) {
        EXPECT_TRUE(subject_applied) << "acknowledged edit lost in crash";
        ++total_acked;
      }
    }

    // Nothing stays in doubt, and a second pass is a no-op.
    for (const auto& mgr : fleet.managers) {
      EXPECT_TRUE(mgr->outstanding_txns().empty());
    }
    const auto second = fleet.router->RecoverInDoubt();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second->committed_applied, 0u);
    EXPECT_EQ(second->presumed_aborts, 0u);
  }

  // The harness only proves something if rounds actually exercised the
  // interesting paths.
  EXPECT_GT(total_acked, 0u);
  EXPECT_GT(total_cross, 0u);
  EXPECT_GT(total_crashed_mid_workload, 0u);
  std::printf("[shard-chaos] rounds=%zu acked=%zu cross_checks=%zu crashes=%zu\n",
              rounds, total_acked, total_cross, total_crashed_mid_workload);
}

}  // namespace
}  // namespace oneedit
