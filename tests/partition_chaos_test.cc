// Deterministic dual-primary chaos (docs/replication.md, "Failure modes"):
// a three-node group is driven through the classic split-brain script —
// partition the primary away mid-edit-storm, promote a follower, write on
// both sides, heal — and the invariants the term machinery exists to hold
// are asserted at the end of every seeded round:
//
//   1. zero acknowledged-edit loss: every edit a client saw acked is
//      readable on the surviving primary and on every caught-up replica;
//   2. no edit is acked by two primaries: the deposed side's post-partition
//      writes are shed as typed rejections (AckPolicy::kFailWrite), never
//      acknowledged;
//   3. the deposed primary demotes: one fenced health transition, writes
//      rejected, and after RejoinAsFollower its journal is byte-identical
//      to the new primary's (the deposed-term suffix truncated + resynced).
//
// Every fault is injected through a seeded FaultInjectingNet — no kernel
// tricks, no sleeps-as-synchronization — so a failing seed replays exactly.
// Round count comes from ONEEDIT_PARTITION_ROUNDS (CI's partition job runs
// 10); the default keeps the default ctest lane fast.

#include <cstdlib>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "durability/manager.h"
#include "replication/server.h"
#include "serving/edit_service.h"
#include "util/net.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using serving::AckPolicy;
using serving::EditService;
using serving::EditServiceOptions;
using serving::ReplicationRole;
using serving::ServiceHealth;

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

bool WaitFor(const std::function<bool()>& done,
             std::chrono::milliseconds deadline =
                 std::chrono::milliseconds(15000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// One group member. Followers route all replication I/O through the
/// round's FaultInjectingNet so the test can partition the primary away;
/// the primary itself stays on the real net (its acceptor is not the side
/// being faulted).
struct ChaosNode {
  ChaosNode(const std::string& dir_name, ReplicationRole role,
            uint16_t primary_port, size_t ack_replicas, net::Net* net)
      : dir(TempDirFor(dir_name)),
        dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.checkpoint_interval = 0;  // only promotion seals; WALs stay whole
    auto mgr = DurabilityManager::Open(dopts);
    EXPECT_TRUE(mgr.ok());
    durability = std::move(mgr).value();

    EditServiceOptions options;
    options.durability = durability.get();
    options.replication.role = role;
    options.replication.primary_port = primary_port;
    options.replication.ack_replicas = ack_replicas;
    // Long enough that a healthy follower's apply always beats it, even
    // ~10x slowed under TSan with the suite running in parallel; it is only
    // ever waited out in the partitioned phase, where the quorum can never
    // form and the policy must reject.
    options.replication.ack_timeout = std::chrono::milliseconds(4000);
    options.replication.poll_interval = std::chrono::milliseconds(5);
    options.replication.net = net;
    auto created =
        EditService::Create(&dataset.kg, model.get(), GraceConfig(), options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  uint16_t replication_port() const {
    const auto* server = service->replication_server();
    return server == nullptr ? 0 : server->port();
  }

  std::string dir;
  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<DurabilityManager> durability;
  std::unique_ptr<EditService> service;
};

using AckedTriple = std::tuple<std::string, std::string, std::string>;

/// Submits cases [first, last) on `node` and records what was ACKED — the
/// client-visible contract the round's invariants are stated over.
void Storm(ChaosNode* node, size_t first, size_t last,
           const std::string& user, std::set<AckedTriple>* acked) {
  for (size_t i = first; i < last; ++i) {
    const EditCase& c = node->dataset.cases[i];
    const auto result =
        node->service->SubmitAndWait(EditRequest::Edit(c.edit, user));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->applied()) {
      acked->insert({c.edit.subject, c.edit.relation, c.edit.object});
    }
  }
}

void RunPartitionRound(int round, uint64_t seed) {
  SCOPED_TRACE("round " + std::to_string(round) + " seed " +
               std::to_string(seed));
  std::mt19937_64 rng(seed);
  const size_t partition_at = 2 + rng() % 3;   // acked on P before the cut
  const size_t orphan_writes = 1 + rng() % 2;  // P's doomed suffix
  const size_t new_writes = 2 + rng() % 2;     // acked on F1 after promotion
  const std::string tag = std::to_string(round);

  net::FaultInjectingNet fnet;
  auto p = std::make_unique<ChaosNode>("oneedit_chaos_p_" + tag,
                                       ReplicationRole::kPrimary,
                                       /*primary_port=*/0,
                                       /*ack_replicas=*/1, nullptr);
  ASSERT_NE(p->replication_port(), 0);
  const uint16_t p_port = p->replication_port();
  ChaosNode f1("oneedit_chaos_f1_" + tag, ReplicationRole::kFollower, p_port,
               /*ack_replicas=*/1, &fnet);
  ChaosNode f2("oneedit_chaos_f2_" + tag, ReplicationRole::kFollower, p_port,
               /*ack_replicas=*/0, &fnet);

  // Acked storm on the healthy group (quorum of 1: either follower).
  std::set<AckedTriple> acked_by_p;
  Storm(p.get(), 0, partition_at, "alice", &acked_by_p);
  ASSERT_EQ(acked_by_p.size(), partition_at);
  const uint64_t shared_head = p->service->applied_sequence();
  ASSERT_TRUE(WaitFor([&] {
    return f1.service->applied_sequence() >= shared_head &&
           f2.service->applied_sequence() >= shared_head;
  }));

  // The cut: both followers lose P mid-storm. P's next writes journal
  // locally but the quorum can never form — the default AckPolicy must
  // refuse to ack them (invariant 2's first half).
  fnet.PartitionPort(p_port);
  std::set<AckedTriple> acked_after_cut;
  Storm(p.get(), partition_at, partition_at + orphan_writes, "mallory",
        &acked_after_cut);
  EXPECT_TRUE(acked_after_cut.empty())
      << acked_after_cut.size() << " writes acked without a quorum";
  const uint64_t orphan_head = p->service->applied_sequence();
  EXPECT_EQ(orphan_head, shared_head + orphan_writes);

  // Failover: F1 wins the next term (its fencer cannot reach P through the
  // partition; it keeps retrying in the background) and F2 re-points at it.
  ASSERT_TRUE(f1.service->Promote().ok());
  EXPECT_EQ(f1.service->primary_term(), 1u);
  ASSERT_NE(f1.replication_port(), 0);
  ASSERT_TRUE(f2.service->RejoinAsFollower(f1.replication_port()).ok());
  // F1 acks against a quorum of 1, so its first post-promotion write races
  // F2's reconnect; wait for the follower to be on the wire first.
  ASSERT_TRUE(WaitFor([&] {
    return f1.service->replication_server() != nullptr &&
           f1.service->replication_server()->followers_connected() >= 1;
  })) << "F2 never connected to the new primary";

  // Acked storm on the new primary — including the very cases P just
  // failed to ack, so the two acked sets collide unless fencing works.
  std::set<AckedTriple> acked_by_f1;
  Storm(&f1, partition_at, partition_at + new_writes, "carol", &acked_by_f1);
  ASSERT_EQ(acked_by_f1.size(), new_writes);
  ASSERT_TRUE(WaitFor([&] {
    return f2.service->applied_sequence() >= f1.service->applied_sequence();
  }));

  // Heal. F1's fencer can now reach the old primary: P must observe the
  // higher term, demote to fenced, and shed writes typed — not acked.
  fnet.HealPort(p_port);
  ASSERT_TRUE(WaitFor([&] {
    return p->service->health() == ServiceHealth::kFenced;
  })) << "deposed primary never fenced after heal";
  EXPECT_EQ(p->service->primary_term(), 1u);
  const auto fenced = p->service->SubmitAndWait(
      EditRequest::Edit(p->dataset.cases[10].edit, "mallory"));
  ASSERT_TRUE(fenced.ok());
  EXPECT_EQ(fenced->kind, EditResult::Kind::kRejected);
  EXPECT_NE(fenced->message.find("fenced"), std::string::npos);
  size_t fenced_transitions = 0;
  for (const auto& t : p->service->health_log()) {
    if (t.to == ServiceHealth::kFenced) ++fenced_transitions;
  }
  EXPECT_EQ(fenced_transitions, 1u);

  // Exactly one writable primary: F1 still acks, P does not.
  std::set<AckedTriple> acked_late;
  Storm(&f1, partition_at + new_writes, partition_at + new_writes + 1,
        "carol", &acked_late);
  ASSERT_EQ(acked_late.size(), 1u);
  acked_by_f1.insert(acked_late.begin(), acked_late.end());

  // Reconciliation: P rejoins, its deposed-term suffix (the orphan writes)
  // is truncated and the journal resynced from F1.
  ASSERT_TRUE(p->service->RejoinAsFollower(f1.replication_port()).ok());
  ASSERT_TRUE(WaitFor([&] {
    return p->service->applied_sequence() >=
               f1.service->applied_sequence() &&
           p->service->replication_lag_batches() == 0;
  })) << "deposed primary never caught up after rejoin";
  EXPECT_GE(
      p->service->statistics().Get(Ticker::kReplDivergenceTruncations), 1u);

  // Invariant 2: no edit acked by two primaries.
  for (const AckedTriple& t : acked_by_p) {
    EXPECT_EQ(acked_by_f1.count(t), 0u) << std::get<0>(t);
  }

  // Invariant 1: zero acknowledged-edit loss — every acked triple answers
  // on the surviving primary and on both caught-up replicas.
  std::set<AckedTriple> all_acked = acked_by_p;
  all_acked.insert(acked_by_f1.begin(), acked_by_f1.end());
  for (ChaosNode* node : {p.get(), &f1, &f2}) {
    const auto view = node->service->GetSnapshot();
    ASSERT_TRUE(view.ok());
    for (const AckedTriple& t : all_acked) {
      const auto decode = view->Ask(std::get<0>(t), std::get<1>(t));
      ASSERT_TRUE(decode.ok()) << std::get<0>(t);
      EXPECT_EQ(decode->entity, std::get<2>(t))
          << std::get<0>(t) << " lost on " << node->dir;
    }
  }

  // Invariant 3: the reconciled journal is byte-identical to the new
  // primary's — nothing of the orphan suffix survives anywhere.
  const std::string p_wal = ReadWholeFile(p->durability->wal_path());
  const std::string f1_wal = ReadWholeFile(f1.durability->wal_path());
  EXPECT_EQ(p_wal, f1_wal);
  EXPECT_FALSE(f1_wal.empty());
}

TEST(ReplicationPartitionTest, DualPrimaryChaosHoldsInvariantsAcrossSeeds) {
  int rounds = 3;
  if (const char* env = std::getenv("ONEEDIT_PARTITION_ROUNDS")) {
    rounds = std::max(1, std::atoi(env));
  }
  for (int round = 0; round < rounds; ++round) {
    RunPartitionRound(round, /*seed=*/0x0edc0000u + round);
    if (testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace oneedit
