#include <cmath>

#include <gtest/gtest.h>

#include "model/assoc_memory.h"
#include "model/embedding.h"
#include "model/language_model.h"
#include "model/model_config.h"
#include "model/vocab.h"
#include "util/math.h"
#include "util/rng.h"

namespace oneedit {
namespace {

Vocab TinyVocab() {
  Vocab v;
  v.entities = {"USA", "France", "Trump", "Biden", "Macron",
                "Melania", "Jill",  "Brigitte"};
  v.alias_of["POTUS-45"] = "Trump";
  v.relations = {{"president", "president_of"},
                 {"wife", "husband"},
                 {"capital", ""}};
  return v;
}

ModelConfig TinyConfig() {
  ModelConfig cfg;
  cfg.name = "tiny";
  cfg.dim = 48;
  cfg.num_layers = 3;
  cfg.seed = 777;
  cfg.junk_fraction = 0.3;
  return cfg;
}

std::vector<NamedTriple> TinyFacts() {
  return {
      {"USA", "president", "Trump"},
      {"Trump", "president_of", "USA"},
      {"France", "president", "Macron"},
      {"Macron", "president_of", "France"},
      {"Trump", "wife", "Melania"},
      {"Melania", "husband", "Trump"},
  };
}

// ----------------------------------------------------------------- Vocab ----

TEST(VocabTest, CanonicalAndInverse) {
  const Vocab v = TinyVocab();
  EXPECT_EQ(v.Canonical("POTUS-45"), "Trump");
  EXPECT_EQ(v.Canonical("Trump"), "Trump");
  EXPECT_EQ(v.InverseOf("president"), "president_of");
  EXPECT_EQ(v.InverseOf("president_of"), "president");
  EXPECT_EQ(v.InverseOf("capital"), "");
  EXPECT_EQ(v.InverseOf("unknown"), "");
}

// ------------------------------------------------------------- Embeddings ----

TEST(EmbeddingTest, DeterministicUnitVectors) {
  const Vocab vocab = TinyVocab();
  EmbeddingTable a(48, 777, 0.35, vocab);
  EmbeddingTable b(48, 777, 0.35, vocab);
  EXPECT_EQ(a.Entity("Trump"), b.Entity("Trump"));
  EXPECT_NEAR(Norm(a.Entity("Trump")), 1.0, 1e-12);
  // Different names give (near-)orthogonal embeddings.
  EXPECT_LT(std::abs(Dot(a.Entity("Trump"), a.Entity("Biden"))), 0.5);
}

TEST(EmbeddingTest, DifferentSeedsDiffer) {
  const Vocab vocab = TinyVocab();
  EmbeddingTable a(48, 1, 0.35, vocab);
  EmbeddingTable b(48, 2, 0.35, vocab);
  EXPECT_NE(a.Entity("Trump"), b.Entity("Trump"));
}

TEST(EmbeddingTest, AliasEmbedsNearCanonical) {
  const Vocab vocab = TinyVocab();
  EmbeddingTable table(48, 777, 0.35, vocab);
  const double cos_alias =
      CosineSimilarity(table.Entity("POTUS-45"), table.Entity("Trump"));
  EXPECT_GT(cos_alias, 0.85);
  EXPECT_LT(cos_alias, 0.9999);
}

TEST(EmbeddingTest, KeysSeparateRelationsAndSubjects) {
  const Vocab vocab = TinyVocab();
  EmbeddingTable table(48, 777, 0.35, vocab);
  const Vec k1 = table.Key(0, "USA", "president");
  const Vec k2 = table.Key(0, "USA", "capital");
  const Vec k3 = table.Key(0, "France", "president");
  EXPECT_NEAR(Norm(k1), 1.0, 1e-12);
  EXPECT_LT(std::abs(Dot(k1, k2)), 0.5);
  EXPECT_LT(std::abs(Dot(k1, k3)), 0.5);
  // Same inputs reproduce exactly.
  EXPECT_EQ(k1, table.Key(0, "USA", "president"));
  // Layer index changes the key.
  EXPECT_NE(k1, table.Key(1, "USA", "president"));
}

TEST(EmbeddingTest, PerturbKeyRadiusControlsDistance) {
  const Vocab vocab = TinyVocab();
  EmbeddingTable table(48, 777, 0.35, vocab);
  const Vec k = table.Key(0, "USA", "president");
  EXPECT_EQ(table.PerturbKey(k, 0.0, 1, 0), k);
  const Vec mild = table.PerturbKey(k, 0.1, 1, 0);
  const Vec wild = table.PerturbKey(k, 0.8, 1, 0);
  EXPECT_GT(Dot(mild, k), Dot(wild, k));
  EXPECT_NEAR(Norm(mild), 1.0, 1e-12);
  // Same seed reproduces, different seed varies.
  EXPECT_EQ(table.PerturbKey(k, 0.3, 5, 0), table.PerturbKey(k, 0.3, 5, 0));
  EXPECT_NE(table.PerturbKey(k, 0.3, 5, 0), table.PerturbKey(k, 0.3, 6, 0));
}

// ------------------------------------------------------------ AssocMemory ----

TEST(AssocMemoryTest, RankOneStoreAndRecall) {
  AssocMemory memory(2, 8);
  Rng rng(3);
  Vec k1(8), k2(8), v(8);
  for (size_t i = 0; i < 8; ++i) {
    k1[i] = rng.NextGaussian();
    k2[i] = rng.NextGaussian();
    v[i] = rng.NextGaussian();
  }
  k1 = Normalized(k1);
  k2 = Normalized(k2);
  memory.AddRankOne(0, v, k1, 0.5);
  memory.AddRankOne(1, v, k2, 0.5);
  const Vec pooled = memory.Recall({k1, k2});
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(pooled[i], v[i], 1e-9);
}

TEST(AssocMemoryTest, SnapshotRestore) {
  AssocMemory memory(1, 4);
  const WeightSnapshot before = memory.Snapshot();
  memory.AddRankOne(0, {1, 0, 0, 0}, {0, 1, 0, 0}, 1.0);
  EXPECT_GT(memory.layer(0).FrobeniusNorm(), 0.0);
  memory.Restore(before);
  EXPECT_EQ(memory.layer(0).FrobeniusNorm(), 0.0);
}

TEST(AssocMemoryTest, ParameterCount) {
  AssocMemory memory(3, 10);
  EXPECT_EQ(memory.ParameterCount(), 300u);
}

// ---------------------------------------------------------- LanguageModel ----

class LanguageModelTest : public ::testing::Test {
 protected:
  LanguageModelTest() : model_(TinyConfig(), TinyVocab()) {
    model_.Pretrain(TinyFacts());
  }
  LanguageModel model_;
};

TEST_F(LanguageModelTest, RecallsPretrainedFactsExactly) {
  EXPECT_EQ(model_.Query("USA", "president").entity, "Trump");
  EXPECT_EQ(model_.Query("France", "president").entity, "Macron");
  EXPECT_EQ(model_.Query("Trump", "wife").entity, "Melania");
}

TEST_F(LanguageModelTest, RecallsUnderMildProbeNoise) {
  QueryOptions options;
  options.key_noise = TinyConfig().reliability_noise;
  int correct = 0;
  for (uint64_t probe = 0; probe < 20; ++probe) {
    options.probe_seed = probe;
    correct += model_.Query("USA", "president", options).entity == "Trump";
  }
  EXPECT_GE(correct, 19);
}

TEST_F(LanguageModelTest, AliasSubjectRecallsCanonicalFact) {
  // Wide pretraining basin covers the alias key.
  EXPECT_EQ(model_.Query("POTUS-45", "wife").entity, "Melania");
}

TEST_F(LanguageModelTest, DecodeMarginIsPositiveForStoredFacts) {
  const Decode d = model_.Query("USA", "president");
  EXPECT_GT(d.margin, 0.1);
  EXPECT_GT(d.score, 0.5);
  EXPECT_FALSE(d.intercepted);
}

TEST_F(LanguageModelTest, ComposedQueryChainsTwoFacts) {
  // "Who is the wife of the president of the USA?" -> Melania.
  int correct = 0;
  for (uint64_t probe = 0; probe < 20; ++probe) {
    const Decode d = model_.QueryComposed("USA", "president", "wife", probe);
    correct += d.entity == "Melania" && d.margin > 0.0;
  }
  // Pretrained knowledge is wide-basin; most compositions succeed.
  EXPECT_GE(correct, 12);
}

TEST_F(LanguageModelTest, PretrainIsDeterministic) {
  LanguageModel other(TinyConfig(), TinyVocab());
  other.Pretrain(TinyFacts());
  EXPECT_EQ(model_.memory().layer(0), other.memory().layer(0));
}

TEST_F(LanguageModelTest, SnapshotRestoreResetsEdits) {
  const WeightSnapshot snapshot = model_.SnapshotWeights();
  // Crude manual "edit": overwrite the USA/president slot with Biden.
  const auto keys = model_.CenterKeys("USA", "president");
  const Vec current = model_.Recall(keys);
  const Vec target = model_.ValueFor("Biden");
  model_.memory().AddRankOne(0, Sub(target, current), keys[0], 1.0);
  EXPECT_EQ(model_.Query("USA", "president").entity, "Biden");
  model_.RestoreWeights(snapshot);
  EXPECT_EQ(model_.Query("USA", "president").entity, "Trump");
}

class EchoAdaptor : public QueryAdaptor {
 public:
  EchoAdaptor(Vec key, std::string answer, double epsilon)
      : key_(std::move(key)), answer_(std::move(answer)), epsilon_(epsilon) {}
  bool TryAnswer(const Vec& layer0_key, std::string* answer) const override {
    if (Norm(Sub(layer0_key, key_)) > epsilon_) return false;
    *answer = answer_;
    return true;
  }

 private:
  Vec key_;
  std::string answer_;
  double epsilon_;
};

TEST_F(LanguageModelTest, AdaptorInterceptsMatchingQueries) {
  const auto keys = model_.CenterKeys("USA", "president");
  model_.AddAdaptor(std::make_shared<EchoAdaptor>(keys[0], "Biden", 0.3));
  const Decode d = model_.Query("USA", "president");
  EXPECT_TRUE(d.intercepted);
  EXPECT_EQ(d.entity, "Biden");
  // Other slots fall through to the weights.
  EXPECT_EQ(model_.Query("France", "president").entity, "Macron");
  // Disabling adaptors bypasses the intercept.
  QueryOptions options;
  options.use_adaptors = false;
  EXPECT_EQ(model_.Query("USA", "president", options).entity, "Trump");
}

TEST_F(LanguageModelTest, RemoveAdaptorRestoresWeightPath) {
  const auto keys = model_.CenterKeys("USA", "president");
  auto adaptor = std::make_shared<EchoAdaptor>(keys[0], "Biden", 0.3);
  model_.AddAdaptor(adaptor);
  EXPECT_EQ(model_.num_adaptors(), 1u);
  model_.RemoveAdaptor(adaptor.get());
  EXPECT_EQ(model_.num_adaptors(), 0u);
  EXPECT_EQ(model_.Query("USA", "president").entity, "Trump");
}


TEST_F(LanguageModelTest, QueryTopKOrdersByScore) {
  const auto top = model_.QueryTopK("USA", "president", 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].entity, "Trump");
  EXPECT_GE(top[0].score, top[1].score);
  EXPECT_GE(top[1].score, top[2].score);
  EXPECT_NEAR(top[0].margin, top[0].score - top[1].score, 1e-12);
  // k larger than the vocabulary clamps.
  EXPECT_EQ(model_.QueryTopK("USA", "president", 999).size(),
            model_.vocab().entities.size());
}

TEST(ModelConfigTest, PresetsDiffer) {
  EXPECT_NE(GptJSimConfig().seed, Qwen2SimConfig().seed);
  EXPECT_GT(Qwen2SimConfig().params_million, GptJSimConfig().params_million);
  EXPECT_LT(Gpt2XlSimConfig().params_million, GptJSimConfig().params_million);
}

}  // namespace
}  // namespace oneedit
