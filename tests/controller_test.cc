#include <gtest/gtest.h>

#include "core/controller.h"
#include "kg/knowledge_graph.h"

namespace oneedit {
namespace {

/// A miniature politics world shared by the controller tests.
class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() {
    president_ = kg_.schema().Define("president");
    presides_ = kg_.schema().Define("presides_over");
    wife_ = kg_.schema().Define("wife");
    husband_ = kg_.schema().Define("husband");
    first_lady_ = kg_.schema().Define("first_lady");
    capital_ = kg_.schema().Define("capital");
    EXPECT_TRUE(kg_.schema().SetInverse(president_, presides_).ok());
    EXPECT_TRUE(kg_.schema().SetInverse(wife_, husband_).ok());
    kg_.rules().AddRule(
        HornRule{"first-lady", president_, wife_, first_lady_});

    usa_ = kg_.InternEntity("USA");
    trump_ = kg_.InternEntity("Trump");
    biden_ = kg_.InternEntity("Biden");
    melania_ = kg_.InternEntity("Melania");
    jill_ = kg_.InternEntity("Jill");
    dc_ = kg_.InternEntity("DC");

    Add(usa_, president_, trump_);
    Add(trump_, presides_, usa_);
    Add(trump_, wife_, melania_);
    Add(melania_, husband_, trump_);
    Add(biden_, wife_, jill_);
    Add(jill_, husband_, biden_);
    Add(usa_, first_lady_, melania_);
    Add(usa_, capital_, dc_);
  }

  void Add(EntityId s, RelationId r, EntityId o) {
    ASSERT_TRUE(kg_.Add(Triple{s, r, o}).ok());
  }

  bool PlanHas(const std::vector<NamedTriple>& list, const char* s,
               const char* r, const char* o) {
    return std::find(list.begin(), list.end(),
                     NamedTriple{s, r, o}) != list.end();
  }

  KnowledgeGraph kg_;
  RelationId president_, presides_, wife_, husband_, first_lady_, capital_;
  EntityId usa_, trump_, biden_, melania_, jill_, dc_;
};

TEST_F(ControllerTest, NoOpWhenTripleAlreadyKnown) {
  Controller controller(&kg_);
  const auto plan = controller.Process({"USA", "president", "Trump"});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->no_op);
  EXPECT_TRUE(plan->edits.empty());
  EXPECT_TRUE(plan->rollbacks.empty());
}

TEST_F(ControllerTest, UnknownRelationRejected) {
  Controller controller(&kg_);
  EXPECT_FALSE(controller.Process({"USA", "prime_minister", "Trump"}).ok());
}

TEST_F(ControllerTest, CoverageConflictReplacesSlotAndCounterpart) {
  Controller controller(&kg_);
  const auto plan = controller.Process({"USA", "president", "Biden"});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->no_op);
  // Algorithm 1: the old triple and its reverse counterpart are rolled back.
  EXPECT_TRUE(PlanHas(plan->rollbacks, "USA", "president", "Trump"));
  EXPECT_TRUE(PlanHas(plan->rollbacks, "Trump", "presides_over", "USA"));
  // The KG was updated.
  EXPECT_FALSE(kg_.Contains({usa_, president_, trump_}));
  EXPECT_TRUE(kg_.Contains({usa_, president_, biden_}));
  // Algorithm 2: the reverse triple is in the edit set and the KG.
  EXPECT_TRUE(PlanHas(plan->edits, "USA", "president", "Biden"));
  EXPECT_TRUE(PlanHas(plan->edits, "Biden", "presides_over", "USA"));
  EXPECT_TRUE(kg_.Contains({biden_, presides_, usa_}));
}

TEST_F(ControllerTest, RuleMaintenanceUpdatesDerivedFacts) {
  Controller controller(&kg_);
  const auto plan = controller.Process({"USA", "president", "Biden"});
  ASSERT_TRUE(plan.ok());
  // first_lady(USA) must now be Jill (Biden's wife), not Melania.
  EXPECT_TRUE(kg_.Contains({usa_, first_lady_, jill_}));
  EXPECT_FALSE(kg_.Contains({usa_, first_lady_, melania_}));
  // The displaced derived fact is scheduled for rollback.
  EXPECT_TRUE(PlanHas(plan->rollbacks, "USA", "first_lady", "Melania"));
  // The fresh derived fact is offered as a generation triple.
  EXPECT_TRUE(PlanHas(plan->augmentations, "USA", "first_lady", "Jill"));
}

TEST_F(ControllerTest, LogicalRulesOffSkipsDerivation) {
  ControllerConfig config;
  config.use_logical_rules = false;
  Controller controller(&kg_, config);
  const auto plan = controller.Process({"USA", "president", "Biden"});
  ASSERT_TRUE(plan.ok());
  // The stale derived fact remains in the KG (and may be offered stale).
  EXPECT_TRUE(kg_.Contains({usa_, first_lady_, melania_}));
  EXPECT_FALSE(PlanHas(plan->augmentations, "USA", "first_lady", "Jill"));
}

TEST_F(ControllerTest, ReverseConflictRollsBackOldMarriage) {
  Controller controller(&kg_);
  // Divorce scenario: Melania's husband becomes Biden(!). The reverse triple
  // (Biden, wife, Melania) conflicts with Biden's existing wife Jill — no;
  // rather the edit slot (Melania, husband) conflicts with Trump.
  const auto plan = controller.Process({"Melania", "husband", "Biden"});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(PlanHas(plan->rollbacks, "Melania", "husband", "Trump"));
  // The reverse slot (Biden, wife) held Jill: Algorithm 2 rolls it back
  // together with its forward counterpart.
  EXPECT_TRUE(PlanHas(plan->rollbacks, "Biden", "wife", "Jill"));
  EXPECT_TRUE(PlanHas(plan->rollbacks, "Jill", "husband", "Biden"));
  EXPECT_TRUE(kg_.Contains({biden_, wife_, melania_}));
  EXPECT_FALSE(kg_.Contains({biden_, wife_, jill_}));
}

TEST_F(ControllerTest, AugmentationRespectsBudget) {
  for (const size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{8}}) {
    KnowledgeGraph fresh;
    // Rebuild the fixture world in a fresh graph via snapshot round-trip.
    ControllerConfig config;
    config.num_generation_triples = n;
    Controller controller(&kg_, config);
    const uint64_t checkpoint = kg_.version();
    const auto plan = controller.Process({"USA", "president", "Biden"});
    ASSERT_TRUE(plan.ok());
    EXPECT_LE(plan->augmentations.size(), n);
    ASSERT_TRUE(kg_.RollbackTo(checkpoint).ok());
  }
}

TEST_F(ControllerTest, AugmentationsNeverDuplicateEdits) {
  Controller controller(&kg_);
  const auto plan = controller.Process({"USA", "president", "Biden"});
  ASSERT_TRUE(plan.ok());
  for (const NamedTriple& aug : plan->augmentations) {
    EXPECT_EQ(std::count(plan->edits.begin(), plan->edits.end(), aug), 0)
        << "(" << aug.subject << ", " << aug.relation << ", " << aug.object
        << ") duplicated";
  }
  // No duplicates within augmentations either.
  for (size_t i = 0; i < plan->augmentations.size(); ++i) {
    for (size_t j = i + 1; j < plan->augmentations.size(); ++j) {
      EXPECT_FALSE(plan->augmentations[i] == plan->augmentations[j]);
    }
  }
}

TEST_F(ControllerTest, AliasRestatementsInEditSet) {
  kg_.AddAlias(kg_.InternEntity("the United States"), usa_);
  Controller controller(&kg_);
  const auto plan = controller.Process({"USA", "president", "Biden"});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(PlanHas(plan->edits, "the United States", "president", "Biden"));
  // And the displaced alias restatement is rolled back.
  EXPECT_TRUE(
      PlanHas(plan->rollbacks, "the United States", "president", "Trump"));
}

TEST_F(ControllerTest, AliasAugmentationDisabled) {
  kg_.AddAlias(kg_.InternEntity("the United States"), usa_);
  ControllerConfig config;
  config.augment_aliases = false;
  Controller controller(&kg_, config);
  const auto plan = controller.Process({"USA", "president", "Biden"});
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(
      PlanHas(plan->edits, "the United States", "president", "Biden"));
}

TEST_F(ControllerTest, VersionBeforeAllowsExactUndo) {
  Controller controller(&kg_);
  const std::vector<Triple> before = kg_.store().AllTriples();
  const auto plan = controller.Process({"USA", "president", "Biden"});
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(kg_.RollbackTo(plan->kg_version_before).ok());
  EXPECT_EQ(kg_.store().AllTriples(), before);
}

TEST_F(ControllerTest, NewEntityInterned) {
  Controller controller(&kg_);
  const auto plan = controller.Process({"USA", "president", "Obama"});
  ASSERT_TRUE(plan.ok());
  const auto obama = kg_.LookupEntity("Obama");
  ASSERT_TRUE(obama.ok());
  EXPECT_TRUE(kg_.Contains({usa_, president_, *obama}));
}

TEST_F(ControllerTest, SequentialEditsChainRollbacks) {
  Controller controller(&kg_);
  ASSERT_TRUE(controller.Process({"USA", "president", "Biden"}).ok());
  const auto plan = controller.Process({"USA", "president", "Trump"});
  ASSERT_TRUE(plan.ok());
  // The second edit must roll back the first user's edit.
  EXPECT_TRUE(PlanHas(plan->rollbacks, "USA", "president", "Biden"));
  EXPECT_TRUE(kg_.Contains({usa_, president_, trump_}));
  EXPECT_EQ(kg_.Objects(usa_, president_).size(), 1u);
}

}  // namespace
}  // namespace oneedit
