#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/net.h"
#include "util/rendezvous_hash.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace oneedit {
namespace {

// ---------------------------------------------------------------- Status ----

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing triple");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing triple");
  EXPECT_EQ(s.ToString(), "NotFound: missing triple");
}

TEST(StatusTest, ConflictAndRejectedPredicates) {
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::Rejected("x").IsRejected());
  EXPECT_FALSE(Status::Conflict("x").IsRejected());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnIfError(int x) {
  ONEEDIT_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(3).ok());
  EXPECT_FALSE(UseReturnIfError(-1).ok());
}

// -------------------------------------------------------------- StatusOr ----

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = ParsePositive(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
  EXPECT_EQ(v.ValueOr(-1), 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ParsePositive(0);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(v.ValueOr(-1), -1);
}

StatusOr<int> DoubleIfPositive(int x) {
  ONEEDIT_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  ASSERT_TRUE(DoubleIfPositive(4).ok());
  EXPECT_EQ(*DoubleIfPositive(4), 8);
  EXPECT_FALSE(DoubleIfPositive(-4).ok());
}

// ------------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = rng.NextBelow(5);
    EXPECT_LT(x, 5u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);  // all residues hit
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, StreamsDecorrelate) {
  Rng a = Rng::ForStream(99, "alpha");
  Rng b = Rng::ForStream(99, "beta");
  EXPECT_NE(a.NextU64(), b.NextU64());
  // Same stream tag reproduces.
  Rng c = Rng::ForStream(99, "alpha");
  Rng d = Rng::ForStream(99, "alpha");
  EXPECT_EQ(c.NextU64(), d.NextU64());
}

TEST(RngTest, HashStringStable) {
  EXPECT_EQ(Rng::HashString("oneedit"), Rng::HashString("oneedit"));
  EXPECT_NE(Rng::HashString("oneedit"), Rng::HashString("onedit"));
}

// ----------------------------------------------------------------- Math ----

TEST(MathTest, DotAndNorm) {
  const Vec v = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Dot(v, v), 25.0);
  EXPECT_DOUBLE_EQ(Norm(v), 5.0);
}

TEST(MathTest, AxpyScaleNormalize) {
  Vec v = {1.0, 2.0};
  Axpy(2.0, {3.0, 4.0}, &v);
  EXPECT_EQ(v, (Vec{7.0, 10.0}));
  Scale(0.5, &v);
  EXPECT_EQ(v, (Vec{3.5, 5.0}));
  EXPECT_NEAR(Norm(Normalized(v)), 1.0, 1e-12);
  const Vec zero = {0.0, 0.0};
  EXPECT_EQ(Normalized(zero), zero);
}

TEST(MathTest, CosineSimilarity) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 1}, {2, 2}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0);
}

TEST(MathTest, MatVecAndTranspose) {
  Matrix m(2, 3);
  // [[1 2 3],[4 5 6]]
  int val = 1;
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 3; ++c) m.At(r, c) = val++;
  const Vec y = m.MatVec({1.0, 0.0, -1.0});
  EXPECT_EQ(y, (Vec{-2.0, -2.0}));
  const Vec z = m.TransposeMatVec({1.0, 1.0});
  EXPECT_EQ(z, (Vec{5.0, 7.0, 9.0}));
}

TEST(MathTest, AddOuterMatchesManual) {
  Matrix m(2, 2);
  m.AddOuter(2.0, {1.0, 3.0}, {4.0, 5.0});
  EXPECT_DOUBLE_EQ(m.At(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 24.0);
  EXPECT_DOUBLE_EQ(m.At(1, 1), 30.0);
}

TEST(MathTest, RankOneRecallIsExact) {
  // After W += v k^T with unit k, W k == v.
  const size_t d = 16;
  Rng rng(5);
  Vec k(d), v(d);
  for (size_t i = 0; i < d; ++i) {
    k[i] = rng.NextGaussian();
    v[i] = rng.NextGaussian();
  }
  k = Normalized(k);
  Matrix w(d, d);
  w.AddOuter(1.0, v, k);
  const Vec got = w.MatVec(k);
  for (size_t i = 0; i < d; ++i) EXPECT_NEAR(got[i], v[i], 1e-12);
}

TEST(MathTest, IdentityAndFrobenius) {
  const Matrix eye = Matrix::Identity(3);
  EXPECT_DOUBLE_EQ(eye.At(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(eye.At(0, 1), 0.0);
  EXPECT_NEAR(eye.FrobeniusNorm(), std::sqrt(3.0), 1e-12);
}

TEST(MathTest, SolveRidgeSolvesSpdSystem) {
  // A = B B^T + I is SPD.
  const size_t n = 8;
  Rng rng(21);
  Matrix b(n, n);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) b.At(r, c) = rng.NextGaussian();
  Matrix a(n, n);
  for (size_t r = 0; r < n; ++r)
    for (size_t c = 0; c < n; ++c) {
      double acc = r == c ? 1.0 : 0.0;
      for (size_t k = 0; k < n; ++k) acc += b.At(r, k) * b.At(c, k);
      a.At(r, c) = acc;
    }
  Vec x_true(n);
  for (size_t i = 0; i < n; ++i) x_true[i] = rng.NextGaussian();
  const Vec rhs = a.MatVec(x_true);
  const auto solved = SolveRidge(a, rhs, 0.0);
  ASSERT_TRUE(solved.ok());
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR((*solved)[i], x_true[i], 1e-8);
}

TEST(MathTest, SolveRidgeRejectsBadShapes) {
  EXPECT_FALSE(SolveRidge(Matrix(2, 3), {1.0, 2.0}, 0.0).ok());
  EXPECT_FALSE(SolveRidge(Matrix(2, 2), {1.0}, 0.0).ok());
}

TEST(MathTest, SolveRidgeRejectsIndefinite) {
  Matrix a(2, 2);
  a.At(0, 0) = -5.0;
  a.At(1, 1) = -5.0;
  EXPECT_FALSE(SolveRidge(a, {1.0, 1.0}, 0.0).ok());
}

// --------------------------------------------------------------- Strings ----

TEST(StringUtilTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  the  quick\tfox \n"),
            (std::vector<std::string>{"the", "quick", "fox"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinLowerStrip) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(StripAsciiWhitespace("  hi \t"), "hi");
}

TEST(StringUtilTest, AffixesAndReplace) {
  EXPECT_TRUE(StartsWith("oneedit", "one"));
  EXPECT_FALSE(StartsWith("one", "oneedit"));
  EXPECT_TRUE(EndsWith("table1", "1"));
  EXPECT_EQ(StrReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(StrReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.9126, 3), "0.913");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

// ----------------------------------------------------------- TablePrinter ----

TEST(TablePrinterTest, AlignsColumnsAndSections) {
  TablePrinter table({"Method", "Reliability"});
  table.AddSection("GPT-J-6B");
  table.AddRow({"ROME", "0.996"});
  table.AddSeparator();
  table.AddRow({"MEMIT", "1.000"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("Method"), std::string::npos);
  EXPECT_NE(out.find("GPT-J-6B"), std::string::npos);
  EXPECT_NE(out.find("ROME"), std::string::npos);
  // Every data line has the same width.
  std::istringstream iss(out);
  std::string line;
  size_t width = 0;
  while (std::getline(iss, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only-one"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

// ------------------------------------------------------------------- net ----

TEST(NetTest, ListenConnectSendRecvRoundTrip) {
  const auto listener = net::ListenLoopback(0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  ASSERT_GT(listener->fd, 0);
  ASSERT_NE(listener->port, 0);  // port 0 resolved to a real ephemeral port

  std::thread server([fd = listener->fd] {
    const int conn = accept(fd, nullptr, nullptr);
    ASSERT_GT(conn, 0);
    net::SetIoTimeouts(conn, 5);
    std::string request;
    ASSERT_TRUE(net::RecvAll(conn, 5, &request).ok());
    EXPECT_EQ(request, "hello");
    EXPECT_TRUE(net::SendAll(conn, "world!").ok());
    close(conn);
  });

  const auto client = net::ConnectLoopback(listener->port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  net::SetIoTimeouts(*client, 5);
  ASSERT_TRUE(net::SendAll(*client, "hello").ok());
  std::string reply;
  ASSERT_TRUE(net::RecvAll(*client, 6, &reply).ok());
  EXPECT_EQ(reply, "world!");
  server.join();
  close(*client);
  close(listener->fd);
}

TEST(NetTest, RecvAllDistinguishesCleanEofFromMidMessageEof) {
  const auto listener = net::ListenLoopback(0);
  ASSERT_TRUE(listener.ok());

  std::thread server([fd = listener->fd] {
    // First connection: close without sending anything (clean EOF).
    int conn = accept(fd, nullptr, nullptr);
    ASSERT_GT(conn, 0);
    close(conn);
    // Second connection: send half a message, then close (torn message).
    conn = accept(fd, nullptr, nullptr);
    ASSERT_GT(conn, 0);
    EXPECT_TRUE(net::SendAll(conn, "hal").ok());
    close(conn);
  });

  auto client = net::ConnectLoopback(listener->port);
  ASSERT_TRUE(client.ok());
  std::string out;
  Status clean = net::RecvAll(*client, 8, &out);
  EXPECT_TRUE(clean.IsUnavailable()) << clean.ToString();
  close(*client);

  client = net::ConnectLoopback(listener->port);
  ASSERT_TRUE(client.ok());
  Status torn = net::RecvAll(*client, 8, &out);
  EXPECT_FALSE(torn.ok());
  EXPECT_FALSE(torn.IsUnavailable()) << torn.ToString();  // IoError, not EOF
  close(*client);
  server.join();
  close(listener->fd);
}

TEST(NetTest, ConnectToClosedPortFails) {
  // Bind then immediately close so the port is (momentarily) free.
  const auto listener = net::ListenLoopback(0);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port;
  close(listener->fd);
  const auto client = net::ConnectLoopback(port);
  EXPECT_FALSE(client.ok());
}

// ------------------------------------------------- fault-injecting net ----

TEST(FaultInjectingNetTest, CountsOpsAndFailsAtTheProgrammedOne) {
  const auto listener = net::ListenLoopback(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([fd = listener->fd] {
    for (int i = 0; i < 2; ++i) {
      const int conn = accept(fd, nullptr, nullptr);
      if (conn > 0) close(conn);
    }
  });

  net::FaultInjectingNet fin;
  auto first = fin.Connect(listener->port);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(fin.ops_seen(), 1u);

  // Arm the NEXT op (op 2): it must fail without touching the socket layer.
  fin.FailAt(1, net::FaultInjectingNet::FaultKind::kReset);
  const auto second = fin.Connect(listener->port);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(fin.ops_seen(), 2u);
  EXPECT_EQ(fin.faults_injected(), 1u);

  // The fault was one-shot: the op after it succeeds again.
  const auto third = fin.Connect(listener->port);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  close(*first);
  close(*third);
  server.join();
  close(listener->fd);
}

TEST(FaultInjectingNetTest, PartitionBlocksConnectsAndBlackHolesSockets) {
  const auto listener = net::ListenLoopback(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([fd = listener->fd] {
    const int conn = accept(fd, nullptr, nullptr);
    if (conn > 0) {
      // Hold the connection open until the client side gives up.
      std::string buffer;
      (void)net::RecvAll(conn, 1, &buffer);
      close(conn);
    }
  });

  net::FaultInjectingNet fin;
  const auto before = fin.Connect(listener->port);
  ASSERT_TRUE(before.ok());

  fin.PartitionPort(listener->port);
  // New connections are refused...
  const auto during = fin.Connect(listener->port);
  ASSERT_FALSE(during.ok());
  EXPECT_TRUE(during.status().IsUnavailable()) << during.status().ToString();
  // ...and the socket established before the partition is black-holed in
  // both directions.
  EXPECT_FALSE(fin.Send(*before, "x").ok());
  std::string out;
  EXPECT_FALSE(fin.Recv(*before, 1, &out).ok());

  fin.HealPort(listener->port);
  EXPECT_TRUE(fin.Send(*before, "y").ok());
  close(*before);
  server.join();
  close(listener->fd);
}

TEST(FaultInjectingNetTest, LossyModeIsDeterministicForAFixedSeed) {
  // No real sockets needed: Send on an fd the injector has no port mapping
  // for counts as an op and passes through only when no fault fires, so
  // use kDrop (which swallows the send) to probe the Bernoulli sequence.
  const auto run = [](uint64_t seed) {
    net::FaultInjectingNet fin;
    fin.SetLossy(0.5, seed, net::FaultInjectingNet::FaultKind::kDrop);
    std::vector<bool> dropped;
    uint64_t faults_before = 0;
    for (int i = 0; i < 64; ++i) {
      // kDrop returns OK while swallowing the payload; the injected-fault
      // counter is the observable.
      (void)fin.Send(-1, "probe");
      const uint64_t faults_now = fin.faults_injected();
      dropped.push_back(faults_now > faults_before);
      faults_before = faults_now;
    }
    return dropped;
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // a different seed draws a different sequence
  // ~50% loss: both halves of the Bernoulli process actually occur.
  const size_t drops = static_cast<size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(drops, 8u);
  EXPECT_LT(drops, 56u);
}

TEST(NetTest, RecvAllZeroBytesIsTrivialOk) {
  const auto listener = net::ListenLoopback(0);
  ASSERT_TRUE(listener.ok());
  std::thread server([fd = listener->fd] {
    const int conn = accept(fd, nullptr, nullptr);
    ASSERT_GT(conn, 0);
    std::string empty;
    EXPECT_TRUE(net::RecvAll(conn, 0, &empty).ok());
    EXPECT_TRUE(empty.empty());
    close(conn);
  });
  const auto client = net::ConnectLoopback(listener->port);
  ASSERT_TRUE(client.ok());
  server.join();
  close(*client);
  close(listener->fd);
}

// ------------------------------------------------------- rendezvous hash ----

std::vector<std::string> RendezvousKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("entity-" + std::to_string(i));
  }
  return keys;
}

TEST(RendezvousHashTest, DeterministicAcrossInstances) {
  util::RendezvousMap a, b;
  for (const char* node : {"alpha", "beta", "gamma"}) {
    a.AddNode(node);
    b.AddNode(node);
  }
  for (const std::string& key : RendezvousKeys(200)) {
    EXPECT_EQ(a.NodeFor(key), b.NodeFor(key)) << key;
  }
}

TEST(RendezvousHashTest, SpreadsKeysRoughlyEvenly) {
  util::RendezvousMap map;
  const size_t nodes = 4;
  for (size_t i = 0; i < nodes; ++i) map.AddNode("node-" + std::to_string(i));
  std::vector<size_t> counts(nodes, 0);
  const size_t keys = 4000;
  for (const std::string& key : RendezvousKeys(keys)) {
    ++counts[map.IndexFor(key)];
  }
  // Expected 1000 per node; allow a generous +/-30% band.
  for (size_t i = 0; i < nodes; ++i) {
    EXPECT_GT(counts[i], keys / nodes * 7 / 10) << "node " << i;
    EXPECT_LT(counts[i], keys / nodes * 13 / 10) << "node " << i;
  }
}

TEST(RendezvousHashTest, WeightBiasesOwnership) {
  util::RendezvousMap map;
  map.AddNode("small", 1.0);
  map.AddNode("big", 3.0);
  size_t big = 0;
  const size_t keys = 4000;
  for (const std::string& key : RendezvousKeys(keys)) {
    if (map.NodeFor(key) == "big") ++big;
  }
  // Expected share 3/4; assert it is clearly past an even split.
  EXPECT_GT(big, keys * 6 / 10);
  EXPECT_LT(big, keys * 9 / 10);
}

TEST(RendezvousHashTest, AddingANodeMovesAtMostItsShare) {
  util::RendezvousMap before;
  for (size_t i = 0; i < 3; ++i) before.AddNode("node-" + std::to_string(i));
  util::RendezvousMap after;
  for (size_t i = 0; i < 4; ++i) after.AddNode("node-" + std::to_string(i));

  const size_t keys = 4000;
  size_t moved = 0;
  for (const std::string& key : RendezvousKeys(keys)) {
    const std::string& was = before.NodeFor(key);
    const std::string& now = after.NodeFor(key);
    if (was != now) {
      // The defining invariant: a key may only move TO the new node —
      // never between surviving nodes.
      EXPECT_EQ(now, "node-3") << key << " moved " << was << " -> " << now;
      ++moved;
    }
  }
  // Expected move fraction 1/4; allow up to 35%.
  EXPECT_LT(moved, keys * 35 / 100);
  EXPECT_GT(moved, 0u);
}

TEST(RendezvousHashTest, RemovingANodeMovesOnlyItsKeys) {
  util::RendezvousMap before;
  for (size_t i = 0; i < 4; ++i) before.AddNode("node-" + std::to_string(i));
  util::RendezvousMap after = before;
  ASSERT_TRUE(after.RemoveNode("node-2"));
  EXPECT_FALSE(after.RemoveNode("node-2"));  // already gone

  for (const std::string& key : RendezvousKeys(2000)) {
    const std::string& was = before.NodeFor(key);
    if (was == "node-2") {
      EXPECT_NE(after.NodeFor(key), "node-2");
    } else {
      // Keys on surviving nodes never move.
      EXPECT_EQ(after.NodeFor(key), was) << key;
    }
  }
}

TEST(RendezvousHashTest, DuplicateAddUpdatesWeight) {
  util::RendezvousMap map;
  map.AddNode("only", 1.0);
  map.AddNode("other", 1.0);
  map.AddNode("only", 5.0);
  ASSERT_EQ(map.size(), 2u);
  size_t only = 0;
  const size_t keys = 2000;
  for (const std::string& key : RendezvousKeys(keys)) {
    if (map.NodeFor(key) == "only") ++only;
  }
  EXPECT_GT(only, keys / 2);  // weight 5 vs 1 clearly dominates
}

}  // namespace
}  // namespace oneedit
