// Tests for the operational surface: statistics tickers, the thread-safe
// wrapper under real concurrency, config parsing, and interpreter fuzzing.

#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent.h"
#include "core/config_io.h"
#include "core/oneedit.h"
#include "core/statistics.h"
#include "data/dataset.h"
#include "nlp/utterance_generator.h"
#include "util/rng.h"

namespace oneedit {
namespace {

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 8;
  return options;
}

// --------------------------------------------------------------- tickers ----

TEST(StatisticsTest, AddGetResetToString) {
  Statistics stats;
  EXPECT_EQ(stats.Get(Ticker::kEditsAccepted), 0u);
  stats.Add(Ticker::kEditsAccepted);
  stats.Add(Ticker::kCacheHits, 5);
  EXPECT_EQ(stats.Get(Ticker::kEditsAccepted), 1u);
  EXPECT_EQ(stats.Get(Ticker::kCacheHits), 5u);
  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("edits_accepted: 1"), std::string::npos);
  EXPECT_NE(rendered.find("cache_hits: 5"), std::string::npos);
  EXPECT_EQ(rendered.find("utterances"), std::string::npos);  // zero hidden
  stats.Reset();
  EXPECT_EQ(stats.ToString(), "(all zero)");
}

TEST(StatisticsTest, SystemBumpsTickersEndToEnd) {
  Dataset dataset = BuildAmericanPoliticians(TinyOptions());
  LanguageModel model(Gpt2XlSimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  auto system = OneEditSystem::Create(&dataset.kg, &model, config);
  ASSERT_TRUE(system.ok());

  const EditCase& edit_case = dataset.cases.front();
  // Accepted edit.
  ASSERT_TRUE((*system)->EditTriple(edit_case.edit, "u").ok());
  // No-op repeat.
  ASSERT_TRUE((*system)->EditTriple(edit_case.edit, "u").ok());
  // Rejected edit.
  (*system)->security().BlockEntity(edit_case.old_object);
  (void)(*system)->EditTriple({edit_case.edit.subject,
                               edit_case.edit.relation,
                               edit_case.old_object},
                              "u");
  // Utterances: one generate, one edit.
  ASSERT_TRUE((*system)
                  ->HandleUtterance("What are the primary colors?", "u")
                  .ok());
  ASSERT_TRUE(
      (*system)
          ->HandleUtterance(EditUtterance(dataset.cases[1].edit, 0), "u")
          .ok());

  const Statistics& stats = (*system)->statistics();
  EXPECT_EQ(stats.Get(Ticker::kEditsAccepted), 2u);
  EXPECT_EQ(stats.Get(Ticker::kEditNoOps), 1u);
  EXPECT_EQ(stats.Get(Ticker::kEditsRejected), 1u);
  EXPECT_EQ(stats.Get(Ticker::kUtterances), 2u);
  EXPECT_EQ(stats.Get(Ticker::kGenerateResponses), 1u);
  EXPECT_GT(stats.Get(Ticker::kModelWrites), 0u);
}

// ------------------------------------------------------------ concurrency ----

TEST(ConcurrentOneEditTest, ParallelEditsOnDistinctSlotsAllLand) {
  Dataset dataset = BuildAmericanPoliticians(TinyOptions());
  auto model = std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                               dataset.vocab);
  model->Pretrain(dataset.pretrain_facts);
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  auto system = OneEditSystem::Create(&dataset.kg, model.get(), config);
  ASSERT_TRUE(system.ok());
  ConcurrentOneEdit concurrent(std::move(system).value());

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t c = t; c < dataset.cases.size(); c += kThreads) {
        const auto report = concurrent.EditTriple(
            dataset.cases[c].edit, "user" + std::to_string(t));
        if (!report.ok()) failures.fetch_add(1);
        // Interleave reads.
        (void)concurrent.Ask(dataset.cases[c].edit.subject,
                             dataset.cases[c].edit.relation);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Every edit landed in both stores.
  for (const EditCase& edit_case : dataset.cases) {
    EXPECT_EQ(concurrent.Ask(edit_case.edit.subject,
                             edit_case.edit.relation)
                  .entity,
              edit_case.edit.object);
    const auto triple = dataset.kg.Resolve(edit_case.edit);
    ASSERT_TRUE(triple.ok());
    EXPECT_TRUE(dataset.kg.Contains(*triple));
  }
  const size_t audit_size = concurrent.WithExclusive(
      [](OneEditSystem& sys) { return sys.audit_log().size(); });
  EXPECT_EQ(audit_size, dataset.cases.size());
}

// ----------------------------------------------------------------- config ----

TEST(ConfigIoTest, ParsesAllKeys) {
  const auto config = ParseOneEditConfig(R"(
# OneEdit deployment config
method = GRACE
controller.num_generation_triples = 16
controller.use_logical_rules = false
controller.augment_aliases = no
controller.neighborhood_hops = 3
editor.use_cache = false
interpreter.extraction_error_rate = 0.1
interpreter.training_examples_per_class = 100
interpreter.seed = 42
)");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->method, EditingMethodKind::kGrace);
  EXPECT_EQ(config->controller.num_generation_triples, 16u);
  EXPECT_FALSE(config->controller.use_logical_rules);
  EXPECT_FALSE(config->controller.augment_aliases);
  EXPECT_EQ(config->controller.neighborhood_hops, 3u);
  EXPECT_FALSE(config->editor.use_cache);
  EXPECT_DOUBLE_EQ(config->interpreter.extraction_error_rate, 0.1);
  EXPECT_EQ(config->interpreter.training_examples_per_class, 100u);
  EXPECT_EQ(config->interpreter.seed, 42u);
}

TEST(ConfigIoTest, DefaultsWhenEmpty) {
  const auto config = ParseOneEditConfig("");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->method, OneEditConfig{}.method);
  EXPECT_EQ(config->controller.num_generation_triples, 8u);
}

TEST(ConfigIoTest, RejectsBadInput) {
  EXPECT_FALSE(ParseOneEditConfig("no equals sign").ok());
  EXPECT_FALSE(ParseOneEditConfig("unknown.key = 1").ok());
  // Typed methods fail at parse time now, not at Create time.
  EXPECT_FALSE(ParseOneEditConfig("method = NOPE").ok());
  EXPECT_FALSE(
      ParseOneEditConfig("controller.num_generation_triples = lots").ok());
  EXPECT_FALSE(ParseOneEditConfig("editor.use_cache = maybe").ok());
}

TEST(ConfigIoTest, RoundTripsThroughToString) {
  OneEditConfig config;
  config.method = EditingMethodKind::kRome;
  config.controller.num_generation_triples = 5;
  config.editor.use_cache = false;
  const auto parsed = ParseOneEditConfig(OneEditConfigToString(config));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method, EditingMethodKind::kRome);
  EXPECT_EQ(parsed->controller.num_generation_triples, 5u);
  EXPECT_FALSE(parsed->editor.use_cache);
}

TEST(ConfigIoTest, LoadFromFile) {
  const std::string path = testing::TempDir() + "/oneedit.conf";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("method = MEMIT\n", f);
    std::fclose(f);
  }
  const auto config = LoadOneEditConfig(path);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->method, EditingMethodKind::kMemit);
  EXPECT_FALSE(LoadOneEditConfig("/no/such/file.conf").ok());
  std::remove(path.c_str());
}

// ------------------------------------------------------------ fuzz-ish NLP ----

TEST(InterpreterFuzzTest, GarbageInputNeverCrashesOrEdits) {
  Dataset dataset = BuildAmericanPoliticians(TinyOptions());
  LanguageModel model(Gpt2XlSimConfig(), dataset.vocab);
  model.Pretrain(dataset.pretrain_facts);
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  auto system = OneEditSystem::Create(&dataset.kg, &model, config);
  ASSERT_TRUE(system.ok());

  Rng rng(2024);
  const uint64_t kg_version = dataset.kg.version();
  for (int i = 0; i < 200; ++i) {
    std::string garbage;
    const size_t length = rng.NextBelow(60);
    for (size_t c = 0; c < length; ++c) {
      garbage += static_cast<char>(32 + rng.NextBelow(95));
    }
    const auto response = (*system)->HandleUtterance(garbage, "fuzz");
    ASSERT_TRUE(response.ok()) << "crashed on: " << garbage;
    // Garbage must never be accepted as an edit.
    EXPECT_NE(response->kind, EditResult::Kind::kEdited) << garbage;
  }
  EXPECT_EQ(dataset.kg.version(), kg_version);  // the KG never moved
}

}  // namespace
}  // namespace oneedit
