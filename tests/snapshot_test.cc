// Tests for the epoch-based snapshot publication layer (src/serving/
// snapshot.h): the SnapshotHub pin protocol and retention window directly,
// and the EditService-integrated lifecycle — publish → pin → retire —
// including a reader/writer torture run designed for ThreadSanitizer
// (scripts/ci.sh snapshot). The torture run asserts the tentpole invariant:
// a pinned handle is one post-batch instant, so its KG lookups and model
// decodes can never mix two edit batches, no matter how hard the writer
// churns underneath.

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "serving/edit_service.h"
#include "serving/snapshot.h"

namespace oneedit {
namespace {

using serving::EditService;
using serving::EditServiceOptions;
using serving::ReadOptions;
using serving::Snapshot;
using serving::SnapshotHub;

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

/// A self-contained world + model + EditService, mirroring serving_test.cc.
struct ServingWorld {
  explicit ServingWorld(const EditServiceOptions& options = {})
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    auto created = EditService::Create(&dataset.kg, model.get(),
                                       GraceConfig(), options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<EditService> service;
};

/// A bare system (no service) for driving a SnapshotHub by hand.
struct SystemWorld {
  SystemWorld()
      : dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    auto created =
        OneEditSystem::Create(&dataset.kg, model.get(), GraceConfig());
    EXPECT_TRUE(created.ok());
    system = std::move(created).value();
  }

  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<OneEditSystem> system;
};

// ---------------------------------------------------------------------------
// SnapshotHub unit tests (hub driven directly, no writer thread)
// ---------------------------------------------------------------------------

TEST(SnapshotHubTest, UnpublishedHubIsUnavailable) {
  SnapshotHub hub;
  EXPECT_EQ(hub.Acquire(), nullptr);
  EXPECT_EQ(hub.epoch(), 0u);
  const auto snapshot = hub.GetSnapshot();
  ASSERT_FALSE(snapshot.ok());
  EXPECT_TRUE(snapshot.status().IsUnavailable());

  // An invalid (default-constructed) handle fails closed.
  Snapshot invalid;
  EXPECT_FALSE(invalid.valid());
  const auto decode = invalid.Ask("subject", "relation");
  ASSERT_FALSE(decode.ok());
  EXPECT_EQ(decode.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SnapshotHubTest, PublishPinAndTimeTravel) {
  SystemWorld world;
  SnapshotHub hub;
  hub.Publish(world.system->SnapshotReadView(), 7);
  hub.Publish(world.system->SnapshotReadView(), 9);
  EXPECT_EQ(hub.epoch(), 2u);
  EXPECT_EQ(hub.sequence(), 9u);

  const auto current = hub.GetSnapshot();
  ASSERT_TRUE(current.ok());
  EXPECT_TRUE(current->valid());
  EXPECT_EQ(current->sequence(), 9u);
  EXPECT_EQ(current->epoch(), 2u);

  // at_sequence lands on the newest state at or before the mark.
  ReadOptions at_exact;
  at_exact.at_sequence = 7;
  ASSERT_TRUE(hub.GetSnapshot(at_exact).ok());
  EXPECT_EQ(hub.GetSnapshot(at_exact)->sequence(), 7u);
  ReadOptions at_between;
  at_between.at_sequence = 8;
  EXPECT_EQ(hub.GetSnapshot(at_between)->sequence(), 7u);

  // Before the retention window: OutOfRange, not a silently-wrong answer.
  ReadOptions too_old;
  too_old.at_sequence = 6;
  const auto out_of_range = hub.GetSnapshot(too_old);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kOutOfRange);

  // Behind min_sequence without a deadline: Unavailable immediately.
  ReadOptions ahead;
  ahead.min_sequence = 10;
  const auto behind = hub.GetSnapshot(ahead);
  ASSERT_FALSE(behind.ok());
  EXPECT_TRUE(behind.status().IsUnavailable());

  // An unsatisfiable combination is an InvalidArgument, not a wait.
  ReadOptions impossible;
  impossible.at_sequence = 9;
  impossible.min_sequence = 10;
  const auto rejected = hub.GetSnapshot(impossible);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotHubTest, RetiredStatesAreFreedAndHandlesKeepTheirsAlive) {
  SystemWorld world;
  SnapshotHub hub(SnapshotHub::kSlots);  // minimum retention window
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    hub.Publish(world.system->SnapshotReadView(), seq);
  }
  // Ring and retention both reference the newest kSlots states; everything
  // older has been destroyed, not leaked.
  EXPECT_EQ(hub.states_retained(), SnapshotHub::kSlots);
  EXPECT_EQ(hub.states_alive(),
            static_cast<int64_t>(SnapshotHub::kSlots));
  EXPECT_EQ(hub.reader_held_states(), 0);

  // A pinned handle keeps its state alive after the window moves past it.
  {
    const Snapshot pinned = *hub.GetSnapshot();
    EXPECT_EQ(pinned.sequence(), 5u);
    for (uint64_t seq = 6; seq <= 12; ++seq) {
      hub.Publish(world.system->SnapshotReadView(), seq);
    }
    EXPECT_EQ(hub.states_alive(),
              static_cast<int64_t>(SnapshotHub::kSlots) + 1);
    EXPECT_EQ(hub.reader_held_states(), 1);
    // The handle still serves its instant even though time travel to it is
    // no longer possible through the hub.
    EXPECT_EQ(pinned.sequence(), 5u);
    ReadOptions evicted;
    evicted.at_sequence = 5;
    EXPECT_EQ(hub.GetSnapshot(evicted).status().code(),
              StatusCode::kOutOfRange);
  }
  // Dropping the last handle retires the state.
  EXPECT_EQ(hub.states_alive(),
            static_cast<int64_t>(SnapshotHub::kSlots));
  EXPECT_EQ(hub.reader_held_states(), 0);
}

TEST(SnapshotHubTest, MinSequenceWaitersWakeOnPublishAndOnStop) {
  SystemWorld world;
  SnapshotHub hub;
  hub.Publish(world.system->SnapshotReadView(), 1);

  // A waiter parked on min_sequence=2 is released by the next publish.
  ReadOptions wait_for_two;
  wait_for_two.min_sequence = 2;
  wait_for_two.deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  auto waiter = std::async(std::launch::async,
                           [&] { return hub.GetSnapshot(wait_for_two); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  hub.Publish(world.system->SnapshotReadView(), 2);
  const auto released = waiter.get();
  ASSERT_TRUE(released.ok());
  EXPECT_GE(released->sequence(), 2u);

  // Stop() releases waiters with Unavailable instead of leaving them to
  // their (far-off) deadline.
  ReadOptions wait_forever;
  wait_forever.min_sequence = 1000;
  wait_forever.deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  auto stuck = std::async(std::launch::async,
                          [&] { return hub.GetSnapshot(wait_forever); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  hub.Stop();
  const auto stopped = stuck.get();
  ASSERT_FALSE(stopped.ok());
  EXPECT_TRUE(stopped.status().IsUnavailable());

  // After Stop the hub still serves pinned reads, but waits fail fast.
  EXPECT_TRUE(hub.GetSnapshot().ok());
  const auto no_wait = hub.GetSnapshot(wait_forever);
  ASSERT_FALSE(no_wait.ok());
  EXPECT_TRUE(no_wait.status().IsUnavailable());
}

// ---------------------------------------------------------------------------
// EditService integration
// ---------------------------------------------------------------------------

TEST(EditServiceSnapshotTest, HandleIsImmutableAcrossLaterEdits) {
  ServingWorld world;
  const EditCase& edit_case = world.dataset.cases.front();
  ASSERT_TRUE(world.service
                  ->SubmitAndWait(EditRequest::Edit(edit_case.edit, "alice"))
                  .ok());

  const Snapshot before = *world.service->GetSnapshot();
  const uint64_t version_before = before.kg_version();
  EXPECT_EQ(before.Ask(edit_case.edit.subject, edit_case.edit.relation)
                ->entity,
            edit_case.edit.object);

  // Flip the fact back; the pinned handle must not notice.
  NamedTriple revert = edit_case.edit;
  revert.object = edit_case.old_object;
  ASSERT_TRUE(
      world.service->SubmitAndWait(EditRequest::Edit(revert, "alice")).ok());

  EXPECT_EQ(before.Ask(edit_case.edit.subject, edit_case.edit.relation)
                ->entity,
            edit_case.edit.object);
  EXPECT_EQ(before.kg_version(), version_before);

  const Snapshot after = *world.service->GetSnapshot();
  EXPECT_EQ(after.Ask(edit_case.edit.subject, edit_case.edit.relation)
                ->entity,
            edit_case.old_object);
  EXPECT_GT(after.epoch(), before.epoch());
  EXPECT_GE(after.sequence(), before.sequence());
}

TEST(EditServiceSnapshotTest, AtSequenceServesThePastUntilRetired) {
  EditServiceOptions options;
  options.snapshot_retention = SnapshotHub::kSlots;
  ServingWorld world(options);
  const EditCase& edit_case = world.dataset.cases.front();

  ASSERT_TRUE(world.service
                  ->SubmitAndWait(EditRequest::Edit(edit_case.edit, "alice"))
                  .ok());
  const uint64_t edited_at = world.service->snapshot_hub().sequence();

  NamedTriple revert = edit_case.edit;
  revert.object = edit_case.old_object;
  ASSERT_TRUE(
      world.service->SubmitAndWait(EditRequest::Edit(revert, "alice")).ok());

  // Time travel to the pre-revert instant.
  ReadOptions past;
  past.at_sequence = edited_at;
  const auto rewound = world.service->GetSnapshot(past);
  ASSERT_TRUE(rewound.ok());
  EXPECT_LE(rewound->sequence(), edited_at);
  EXPECT_EQ(rewound->Ask(edit_case.edit.subject, edit_case.edit.relation)
                ->entity,
            edit_case.edit.object);
  EXPECT_EQ(world.service->GetSnapshot()
                ->Ask(edit_case.edit.subject, edit_case.edit.relation)
                ->entity,
            edit_case.old_object);

  // Push the instant out of the retention window; the hub must refuse
  // rather than serve the nearest-younger state as if it were the past.
  for (size_t round = 0; round < SnapshotHub::kSlots + 2; ++round) {
    NamedTriple triple = edit_case.edit;
    triple.object =
        round % 2 == 0 ? edit_case.edit.object : edit_case.old_object;
    ASSERT_TRUE(
        world.service->SubmitAndWait(EditRequest::Edit(triple, "alice"))
            .ok());
  }
  const auto retired = world.service->GetSnapshot(past);
  ASSERT_FALSE(retired.ok());
  EXPECT_EQ(retired.status().code(), StatusCode::kOutOfRange);
}

TEST(EditServiceSnapshotTest, StaleMinSequenceIsUnavailableAndCounted) {
  ServingWorld world;
  const uint64_t stale_before =
      world.service->statistics().Get(Ticker::kReplStaleReads);
  ReadOptions ahead;
  ahead.min_sequence = world.service->applied_sequence() + 1000;
  const auto behind = world.service->GetSnapshot(ahead);
  ASSERT_FALSE(behind.ok());
  EXPECT_TRUE(behind.status().IsUnavailable());
  EXPECT_EQ(world.service->statistics().Get(Ticker::kReplStaleReads),
            stale_before + 1);
}

/// The TSan torture run. Reader threads continuously pin snapshots while
/// the writer applies flip-flop edit batches over every case. Each pinned
/// handle must be internally consistent: its symbolic (KG) and neural
/// (decode) answers were frozen at the same post-batch instant, so they
/// agree with each other and never change for the life of the handle.
TEST(EditServiceSnapshotTest, TortureReadersPinConsistentStatesUnderEditStorm) {
  ServingWorld world;
  const auto& cases = world.dataset.cases;

  // Round 0 (synchronous): put every case into the "edited" state so each
  // subsequent flip is between two known objects.
  for (const EditCase& edit_case : cases) {
    ASSERT_TRUE(world.service
                    ->SubmitAndWait(EditRequest::Edit(edit_case.edit, "init"))
                    .ok());
  }
  const uint64_t initial_sequence = world.service->snapshot_hub().sequence();

  constexpr int kReaders = 4;
  constexpr int kRounds = 6;
  std::atomic<bool> stop{false};
  std::atomic<int> reads{0};
  std::atomic<int> inconsistencies{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      size_t i = t;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto pinned = world.service->GetSnapshot();
        if (!pinned.ok()) {
          inconsistencies.fetch_add(1);
          continue;
        }
        const Snapshot view = *pinned;
        const uint64_t sequence = view.sequence();
        const uint64_t kg_version = view.kg_version();
        for (size_t probe = 0; probe < 3; ++probe) {
          const EditCase& edit_case = cases[i++ % cases.size()];
          const auto decode =
              view.Ask(edit_case.edit.subject, edit_case.edit.relation);
          if (!decode.ok()) {
            inconsistencies.fetch_add(1);
            continue;
          }
          // The answer is one of the two objects the storm flips between…
          if (decode->entity != edit_case.edit.object &&
              decode->entity != edit_case.old_object) {
            inconsistencies.fetch_add(1);
          }
          // …the KG frozen in the same state agrees with the decode (a torn
          // state — KG from batch N, weights from batch N-1 — fails here)…
          const auto kg_object = view.KgObjectOf(edit_case.edit.subject,
                                                 edit_case.edit.relation);
          if (!kg_object.has_value() || *kg_object != decode->entity) {
            inconsistencies.fetch_add(1);
          }
          // …and re-reading through the same handle is deterministic.
          const auto again =
              view.Ask(edit_case.edit.subject, edit_case.edit.relation);
          if (!again.ok() || again->entity != decode->entity ||
              view.sequence() != sequence ||
              view.kg_version() != kg_version) {
            inconsistencies.fetch_add(1);
          }
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The edit storm: whole-case-set batches, alternating directions.
  for (int round = 1; round <= kRounds; ++round) {
    std::vector<std::future<StatusOr<EditResult>>> futures;
    for (const EditCase& edit_case : cases) {
      NamedTriple triple = edit_case.edit;
      if (round % 2 == 1) triple.object = edit_case.old_object;
      futures.push_back(
          world.service->Submit(EditRequest::Edit(triple, "storm")));
    }
    for (auto& future : futures) {
      const auto result = future.get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
    }
  }
  stop.store(true);
  for (std::thread& reader : readers) reader.join();
  world.service->Drain();

  EXPECT_EQ(inconsistencies.load(), 0);
  EXPECT_GT(reads.load(), 0);

  // Time travel to the pre-storm instant either works (and really is the
  // past) or reports OutOfRange — never a silently-wrong answer.
  ReadOptions past;
  past.at_sequence = initial_sequence;
  const auto rewound = world.service->GetSnapshot(past);
  if (rewound.ok()) {
    EXPECT_LE(rewound->sequence(), initial_sequence);
  } else {
    EXPECT_EQ(rewound.status().code(), StatusCode::kOutOfRange);
  }

  // Retire check: with every reader handle dropped, the only live states
  // are the retained window — nothing leaked, and the gauges agree.
  const SnapshotHub& hub = world.service->snapshot_hub();
  EXPECT_EQ(hub.reader_held_states(), 0);
  EXPECT_EQ(hub.states_alive(), static_cast<int64_t>(hub.states_retained()));
  EXPECT_GE(hub.epoch(), static_cast<uint64_t>(kRounds));
  // The writer is idle, so the published state covers the commit point.
  EXPECT_EQ(hub.sequence(), world.service->applied_sequence());
}

TEST(EditServiceSnapshotTest, ServiceStopWakesWaitersAndKeepsServingPins) {
  ServingWorld world;
  ReadOptions wait_forever;
  wait_forever.min_sequence = world.service->applied_sequence() + 1000;
  wait_forever.deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  auto waiter = std::async(std::launch::async, [&] {
    return world.service->GetSnapshot(wait_forever);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  world.service->Stop();
  const auto stopped = waiter.get();
  ASSERT_FALSE(stopped.ok());
  EXPECT_TRUE(stopped.status().IsUnavailable());
  // Plain pinned reads still work after Stop (drain-then-shutdown serving).
  EXPECT_TRUE(world.service->GetSnapshot().ok());
}

}  // namespace
}  // namespace oneedit
