// Tests for the replication subsystem (docs/replication.md): the CRC-guarded
// wire protocol, WAL shipping from a primary to tailing followers, full
// checkpoint-snapshot install for an empty replica catching up under live
// writes, bounded-staleness reads, quorum acknowledgement, and follower
// promotion at failover.

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "durability/env.h"
#include "durability/manager.h"
#include "replication/follower.h"
#include "replication/server.h"
#include "replication/wire.h"
#include "serving/edit_service.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::Env;
using replication::BatchesReply;
using replication::DecodeMessage;
using replication::FollowerState;
using replication::HeartbeatReply;
using replication::Message;
using replication::MessageType;
using replication::PollRequest;
using replication::ShippedBatch;
using replication::SnapshotReply;
using serving::EditService;
using serving::EditServiceOptions;
using serving::ReadOptions;
using serving::ReplicationRole;
using serving::Snapshot;

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

/// Spins until `done()` or the deadline; replication progress is
/// asynchronous (tail thread + writer thread), so tests wait, not sleep.
bool WaitFor(const std::function<bool()>& done,
             std::chrono::milliseconds deadline =
                 std::chrono::milliseconds(15000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

// ------------------------------------------------------------------- wire ----

TEST(ReplicationWireTest, PollRoundTrip) {
  PollRequest poll;
  poll.from_sequence = 42;
  poll.applied_sequence = 41;
  const auto decoded = DecodeMessage(EncodePoll(poll));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->type, MessageType::kPoll);
  EXPECT_EQ(decoded->poll.from_sequence, 42u);
  EXPECT_EQ(decoded->poll.applied_sequence, 41u);
}

TEST(ReplicationWireTest, BatchesRoundTrip) {
  BatchesReply reply;
  reply.committed_sequence = 9;
  ShippedBatch a;
  a.first_sequence = 3;
  a.last_sequence = 5;
  a.records = 3;
  a.frames = std::string("\x00raw\x7f frames", 11);
  ShippedBatch b;
  b.first_sequence = 6;
  b.last_sequence = 6;
  b.records = 1;
  b.frames = "x";
  reply.batches = {a, b};
  const auto decoded = DecodeMessage(EncodeBatches(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->type, MessageType::kBatches);
  EXPECT_EQ(decoded->batches.committed_sequence, 9u);
  ASSERT_EQ(decoded->batches.batches.size(), 2u);
  EXPECT_EQ(decoded->batches.batches[0].first_sequence, 3u);
  EXPECT_EQ(decoded->batches.batches[0].last_sequence, 5u);
  EXPECT_EQ(decoded->batches.batches[0].records, 3u);
  EXPECT_EQ(decoded->batches.batches[0].frames, a.frames);
  EXPECT_EQ(decoded->batches.batches[1].frames, "x");
}

TEST(ReplicationWireTest, SnapshotAndHeartbeatRoundTrip) {
  SnapshotReply snap;
  snap.checkpoint_sequence = 128;
  snap.bytes = std::string(1024, '\xab');
  const auto s = DecodeMessage(EncodeSnapshot(snap));
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->type, MessageType::kSnapshot);
  EXPECT_EQ(s->snapshot.checkpoint_sequence, 128u);
  EXPECT_EQ(s->snapshot.bytes, snap.bytes);

  HeartbeatReply hb;
  hb.committed_sequence = 77;
  const auto h = DecodeMessage(EncodeHeartbeat(hb));
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->type, MessageType::kHeartbeat);
  EXPECT_EQ(h->heartbeat.committed_sequence, 77u);
}

TEST(ReplicationWireTest, RejectsBitFlipAndTruncation) {
  PollRequest poll;
  poll.from_sequence = 7;
  std::string frame = EncodePoll(poll);
  std::string flipped = frame;
  flipped[frame.size() - 1] ^= 0x01;  // payload bit flip -> CRC mismatch
  EXPECT_EQ(DecodeMessage(flipped).status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(DecodeMessage(frame.substr(0, frame.size() - 2)).ok());
  EXPECT_FALSE(DecodeMessage(frame + "trailing").ok());
}

// ---------------------------------------------------------- service worlds ----

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

/// One replication-group member: its own durability directory, its own
/// deterministic pre-edit world (same dataset options everywhere, exactly
/// what a fleet booted from the same base image looks like), and an
/// EditService wired into the group via ReplicationOptions.
struct Node {
  Node(const std::string& dir_name, ReplicationRole role,
       uint16_t primary_port = 0, size_t ack_replicas = 0,
       uint64_t checkpoint_interval = 64)
      : dir(TempDirFor(dir_name)),
        dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.checkpoint_interval = checkpoint_interval;
    auto mgr = DurabilityManager::Open(dopts);
    EXPECT_TRUE(mgr.ok());
    durability = std::move(mgr).value();

    EditServiceOptions options;
    options.durability = durability.get();
    options.replication.role = role;
    options.replication.primary_port = primary_port;
    options.replication.ack_replicas = ack_replicas;
    options.replication.poll_interval = std::chrono::milliseconds(5);
    auto created =
        EditService::Create(&dataset.kg, model.get(), GraceConfig(), options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  uint16_t replication_port() const {
    const auto* server = service->replication_server();
    return server == nullptr ? 0 : server->port();
  }

  std::string dir;
  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<DurabilityManager> durability;
  std::unique_ptr<EditService> service;
};

// ----------------------------------------------------- shipping + reading ----

TEST(ReplicationTest, FollowerConvergesAndServesPrimaryAnswers) {
  Node primary("oneedit_repl_ship_p", ReplicationRole::kPrimary);
  ASSERT_NE(primary.replication_port(), 0);
  Node follower("oneedit_repl_ship_f", ReplicationRole::kFollower,
                primary.replication_port());

  std::vector<EditCase> cases(primary.dataset.cases.begin(),
                              primary.dataset.cases.begin() + 6);
  for (const EditCase& c : cases) {
    const auto result =
        primary.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->applied());
  }
  const uint64_t head = primary.service->applied_sequence();
  ASSERT_GE(head, cases.size());

  ASSERT_TRUE(WaitFor([&] {
    return follower.service->applied_sequence() >= head;
  })) << "follower stuck at " << follower.service->applied_sequence();

  // The replica answers reads with the primary's post-edit state. One
  // pinned snapshot per side: every case is checked against the same
  // post-convergence instant on both nodes.
  const Snapshot replica_view = *follower.service->GetSnapshot();
  const Snapshot primary_view = *primary.service->GetSnapshot();
  ASSERT_GE(replica_view.sequence(), head);
  for (const EditCase& c : cases) {
    EXPECT_EQ(replica_view.Ask(c.edit.subject, c.edit.relation)->entity,
              primary_view.Ask(c.edit.subject, c.edit.relation)->entity)
        << c.edit.subject;
    EXPECT_EQ(replica_view.Ask(c.edit.subject, c.edit.relation)->entity,
              c.edit.object);
  }

  // The follower's journal is byte-identical to the primary's: shipping
  // re-encodes the same records with the same framing.
  EXPECT_EQ(follower.durability->committed_sequence(), head);

  // Replicas are read-only: writes come back as policy rejections that
  // point at the primary, not as errors.
  const auto rejected = follower.service->SubmitAndWait(
      EditRequest::Edit(cases[0].edit, "bob"));
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->kind, EditResult::Kind::kRejected);

  ASSERT_TRUE(WaitFor([&] {
    return follower.service->replication_lag_batches() == 0;
  }));
  EXPECT_EQ(follower.service->replication_lag_records(), 0u);
  EXPECT_EQ(follower.service->follower_state(), FollowerState::kCaughtUp);
  EXPECT_GT(follower.service->statistics().Get(Ticker::kReplBatchesApplied),
            0u);
}

TEST(ReplicationTest, EmptyFollowerInstallsSnapshotAndCatchesUpLive) {
  // Small checkpoint interval so the WAL rotates and a late-joining
  // follower's position is no longer coverable by tailing alone.
  Node primary("oneedit_repl_snap_p", ReplicationRole::kPrimary,
               /*primary_port=*/0, /*ack_replicas=*/0,
               /*checkpoint_interval=*/4);
  ASSERT_NE(primary.replication_port(), 0);

  std::vector<EditCase> cases = primary.dataset.cases;
  ASSERT_GE(cases.size(), 12u);
  for (size_t i = 0; i < 6; ++i) {
    const auto result = primary.service->SubmitAndWait(
        EditRequest::Edit(cases[i].edit, "alice"));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->applied());
  }
  ASSERT_GT(primary.service->statistics().Get(Ticker::kCheckpoints), 0u);

  // Boot an empty-directory replica while the primary keeps writing: it
  // must install the shipped checkpoint, then tail the live WAL to lag 0.
  Node follower("oneedit_repl_snap_f", ReplicationRole::kFollower,
                primary.replication_port());
  for (size_t i = 6; i < cases.size(); ++i) {
    const auto result = primary.service->SubmitAndWait(
        EditRequest::Edit(cases[i].edit, "alice"));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->applied());
  }
  const uint64_t head = primary.service->applied_sequence();

  ASSERT_TRUE(WaitFor([&] {
    return follower.service->applied_sequence() >= head &&
           follower.service->replication_lag_batches() == 0;
  })) << "follower stuck at " << follower.service->applied_sequence()
      << " of " << head;

  EXPECT_GT(
      follower.service->statistics().Get(Ticker::kReplSnapshotsInstalled),
      0u);
  const Snapshot installed_view = *follower.service->GetSnapshot();
  for (const EditCase& c : cases) {
    EXPECT_EQ(installed_view.Ask(c.edit.subject, c.edit.relation)->entity,
              c.edit.object)
        << c.edit.subject;
  }
}

// ------------------------------------------------ staleness + quorum acks ----

TEST(ReplicationTest, AskAtLeastBoundsStaleness) {
  Node primary("oneedit_repl_stale_p", ReplicationRole::kPrimary);
  ASSERT_NE(primary.replication_port(), 0);
  Node follower("oneedit_repl_stale_f", ReplicationRole::kFollower,
                primary.replication_port());

  const EditCase& c = primary.dataset.cases[0];
  ASSERT_TRUE(
      primary.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice")).ok());
  const uint64_t token = primary.service->applied_sequence();

  // A token from the future is rejected as Unavailable (retry/redirect),
  // never answered stale.
  ReadOptions ahead;
  ahead.min_sequence = token + 1000;
  const auto stale = follower.service->GetSnapshot(ahead);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(follower.service->statistics().Get(Ticker::kReplStaleReads), 0u);

  // Once the replica reaches the write's token, the read is admitted and
  // reflects it (read-your-writes via token passing).
  ASSERT_TRUE(WaitFor([&] {
    return follower.service->applied_sequence() >= token;
  }));
  ReadOptions at_least;
  at_least.min_sequence = token;
  const auto pinned = follower.service->GetSnapshot(at_least);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  ASSERT_GE(pinned->sequence(), token);
  const auto fresh = pinned->Ask(c.edit.subject, c.edit.relation);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->entity, c.edit.object);

  // A waiting read with a deadline also admits once the state lands.
  ReadOptions waiting;
  waiting.min_sequence = token;
  waiting.deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  const auto waited = follower.service->GetSnapshot(waiting);
  ASSERT_TRUE(waited.ok()) << waited.status().ToString();
  EXPECT_EQ(waited->Ask(c.edit.subject, c.edit.relation)->entity,
            c.edit.object);
}

TEST(ReplicationTest, QuorumAckWaitsForFollowerApply) {
  Node primary("oneedit_repl_quorum_p", ReplicationRole::kPrimary,
               /*primary_port=*/0, /*ack_replicas=*/1);
  ASSERT_NE(primary.replication_port(), 0);
  Node follower("oneedit_repl_quorum_f", ReplicationRole::kFollower,
                primary.replication_port());
  ASSERT_TRUE(WaitFor([&] {
    return primary.service->followers_connected() == 1;
  }));

  // With ack_replicas=1 an acknowledged write has already been journaled
  // and applied by the follower — min_follower_applied can't be behind.
  const EditCase& c = primary.dataset.cases[0];
  const auto result =
      primary.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->applied());
  EXPECT_GE(primary.service->min_follower_applied(),
            primary.service->applied_sequence());
  EXPECT_GE(follower.service->applied_sequence(),
            primary.service->applied_sequence());
  EXPECT_EQ(primary.service->statistics().Get(Ticker::kReplAckTimeouts), 0u);
}

// --------------------------------------------------------------- failover ----

TEST(ReplicationTest, PromoteTurnsFollowerIntoWritablePrimary) {
  auto primary = std::make_unique<Node>("oneedit_repl_promo_p",
                                        ReplicationRole::kPrimary);
  ASSERT_NE(primary->replication_port(), 0);
  Node follower("oneedit_repl_promo_f", ReplicationRole::kFollower,
                primary->replication_port());

  std::vector<EditCase> cases(primary->dataset.cases.begin(),
                              primary->dataset.cases.begin() + 4);
  for (const EditCase& c : cases) {
    ASSERT_TRUE(
        primary->service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"))
            .ok());
  }
  const uint64_t head = primary->service->applied_sequence();
  ASSERT_TRUE(WaitFor([&] {
    return follower.service->applied_sequence() >= head;
  }));

  // Promoting while still a follower of a live primary is allowed (the
  // failover driver decides when the primary is dead); here we kill the
  // primary first, as the real sequence would.
  primary->service->Stop();
  primary.reset();

  // A standalone/primary node cannot be promoted.
  Node standalone("oneedit_repl_promo_s", ReplicationRole::kStandalone);
  EXPECT_EQ(standalone.service->Promote().code(),
            StatusCode::kFailedPrecondition);

  const Status promoted = follower.service->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.ToString();
  EXPECT_EQ(follower.service->role(), ReplicationRole::kPrimary);
  EXPECT_EQ(follower.service->follower_state(), FollowerState::kStopped);
  // The new primary opened its own replication listener for survivors.
  EXPECT_NE(follower.replication_port(), 0);

  // Every edit the old primary acknowledged survives the failover...
  const Snapshot survivor_view = *follower.service->GetSnapshot();
  for (const EditCase& c : cases) {
    EXPECT_EQ(survivor_view.Ask(c.edit.subject, c.edit.relation)->entity,
              c.edit.object)
        << c.edit.subject;
  }
  // ...and the promoted node accepts new writes durably.
  const EditCase& next = follower.dataset.cases[5];
  const auto write =
      follower.service->SubmitAndWait(EditRequest::Edit(next.edit, "carol"));
  ASSERT_TRUE(write.ok()) << write.status().ToString();
  ASSERT_TRUE(write->applied());
  EXPECT_EQ(follower.service->GetSnapshot()
                ->Ask(next.edit.subject, next.edit.relation)
                ->entity,
            next.edit.object);
  EXPECT_GT(follower.service->applied_sequence(), head);
}

}  // namespace
}  // namespace oneedit
