// Tests for the replication subsystem (docs/replication.md): the CRC-guarded
// wire protocol, WAL shipping from a primary to tailing followers, full
// checkpoint-snapshot install for an empty replica catching up under live
// writes, bounded-staleness reads, quorum acknowledgement, and follower
// promotion at failover.

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "durability/checkpoint.h"
#include "durability/env.h"
#include "durability/manager.h"
#include "replication/follower.h"
#include "replication/server.h"
#include "replication/wire.h"
#include "serving/edit_service.h"
#include "util/net.h"

namespace oneedit {
namespace {

using durability::DurabilityManager;
using durability::DurabilityOptions;
using durability::Env;
using replication::BatchesReply;
using replication::DecodeMessage;
using replication::FollowerState;
using replication::HeartbeatReply;
using replication::Message;
using replication::MessageType;
using replication::PollRequest;
using replication::RejectReason;
using replication::RejectReply;
using replication::ShippedBatch;
using replication::SnapshotReply;
using serving::AckPolicy;
using serving::EditService;
using serving::EditServiceOptions;
using serving::ReadOptions;
using serving::ReplicationRole;
using serving::ServiceHealth;
using serving::Snapshot;

std::string TempDirFor(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::remove((dir + "/edits.wal").c_str());
  std::remove((dir + "/checkpoint.oedc").c_str());
  std::remove((dir + "/checkpoint.oedc.tmp").c_str());
  return dir;
}

/// Spins until `done()` or the deadline; replication progress is
/// asynchronous (tail thread + writer thread), so tests wait, not sleep.
bool WaitFor(const std::function<bool()>& done,
             std::chrono::milliseconds deadline =
                 std::chrono::milliseconds(15000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return done();
}

// ------------------------------------------------------------------- wire ----

TEST(ReplicationWireTest, PollRoundTrip) {
  PollRequest poll;
  poll.from_sequence = 42;
  poll.applied_sequence = 41;
  poll.term = 7;
  poll.applied_term = 6;
  const auto decoded = DecodeMessage(EncodePoll(poll));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->type, MessageType::kPoll);
  EXPECT_EQ(decoded->poll.from_sequence, 42u);
  EXPECT_EQ(decoded->poll.applied_sequence, 41u);
  EXPECT_EQ(decoded->poll.term, 7u);
  EXPECT_EQ(decoded->poll.applied_term, 6u);
}

TEST(ReplicationWireTest, BatchesRoundTrip) {
  BatchesReply reply;
  reply.committed_sequence = 9;
  ShippedBatch a;
  a.first_sequence = 3;
  a.last_sequence = 5;
  a.records = 3;
  a.frames = std::string("\x00raw\x7f frames", 11);
  ShippedBatch b;
  b.first_sequence = 6;
  b.last_sequence = 6;
  b.records = 1;
  b.frames = "x";
  reply.batches = {a, b};
  reply.term = 3;
  const auto decoded = DecodeMessage(EncodeBatches(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->type, MessageType::kBatches);
  EXPECT_EQ(decoded->batches.committed_sequence, 9u);
  EXPECT_EQ(decoded->batches.term, 3u);
  ASSERT_EQ(decoded->batches.batches.size(), 2u);
  EXPECT_EQ(decoded->batches.batches[0].first_sequence, 3u);
  EXPECT_EQ(decoded->batches.batches[0].last_sequence, 5u);
  EXPECT_EQ(decoded->batches.batches[0].records, 3u);
  EXPECT_EQ(decoded->batches.batches[0].frames, a.frames);
  EXPECT_EQ(decoded->batches.batches[1].frames, "x");
}

TEST(ReplicationWireTest, SnapshotAndHeartbeatRoundTrip) {
  SnapshotReply snap;
  snap.checkpoint_sequence = 128;
  snap.term = 4;
  snap.divergence = 1;
  snap.bytes = std::string(1024, '\xab');
  const auto s = DecodeMessage(EncodeSnapshot(snap));
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->type, MessageType::kSnapshot);
  EXPECT_EQ(s->snapshot.checkpoint_sequence, 128u);
  EXPECT_EQ(s->snapshot.term, 4u);
  EXPECT_EQ(s->snapshot.divergence, 1);
  EXPECT_EQ(s->snapshot.bytes, snap.bytes);

  HeartbeatReply hb;
  hb.committed_sequence = 77;
  hb.term = 2;
  const auto h = DecodeMessage(EncodeHeartbeat(hb));
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->type, MessageType::kHeartbeat);
  EXPECT_EQ(h->heartbeat.committed_sequence, 77u);
  EXPECT_EQ(h->heartbeat.term, 2u);
}

TEST(ReplicationWireTest, RejectRoundTrip) {
  RejectReply reject;
  reject.term = 9;
  reject.reason = RejectReason::kDeposed;
  const auto decoded = DecodeMessage(EncodeReject(reject));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->type, MessageType::kReject);
  EXPECT_EQ(decoded->reject.term, 9u);
  EXPECT_EQ(decoded->reject.reason, RejectReason::kDeposed);
}

TEST(ReplicationWireTest, RejectWithUnknownReasonIsCorruption) {
  // A frame with a valid CRC but an out-of-range reason byte: the decoder
  // must reject the body, not invent a reason.
  RejectReply forged;
  forged.term = 1;
  forged.reason = static_cast<RejectReason>(9);
  EXPECT_EQ(DecodeMessage(EncodeReject(forged)).status().code(),
            StatusCode::kCorruption);

  RejectReply reject;
  reject.term = 1;
  std::string frame = EncodeReject(reject);
  std::string flipped = frame;
  flipped[frame.size() - 1] ^= 0x40;  // payload bit flip -> CRC mismatch
  EXPECT_EQ(DecodeMessage(flipped).status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(DecodeMessage(frame.substr(0, frame.size() - 3)).ok());
  EXPECT_FALSE(DecodeMessage(frame + "x").ok());
}

TEST(ReplicationWireTest, RejectsBitFlipAndTruncation) {
  PollRequest poll;
  poll.from_sequence = 7;
  std::string frame = EncodePoll(poll);
  std::string flipped = frame;
  flipped[frame.size() - 1] ^= 0x01;  // payload bit flip -> CRC mismatch
  EXPECT_EQ(DecodeMessage(flipped).status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(DecodeMessage(frame.substr(0, frame.size() - 2)).ok());
  EXPECT_FALSE(DecodeMessage(frame + "trailing").ok());
}

// ---------------------------------------------------------- service worlds ----

DatasetOptions TinyOptions() {
  DatasetOptions options;
  options.num_cases = 12;
  return options;
}

OneEditConfig GraceConfig() {
  OneEditConfig config;
  config.method = EditingMethodKind::kGrace;
  config.interpreter.extraction_error_rate = 0.0;
  return config;
}

/// One replication-group member: its own durability directory, its own
/// deterministic pre-edit world (same dataset options everywhere, exactly
/// what a fleet booted from the same base image looks like), and an
/// EditService wired into the group via ReplicationOptions.
struct Node {
  Node(const std::string& dir_name, ReplicationRole role,
       uint16_t primary_port = 0, size_t ack_replicas = 0,
       uint64_t checkpoint_interval = 64,
       const std::function<void(EditServiceOptions*)>& tweak = {})
      : dir(TempDirFor(dir_name)),
        dataset(BuildAmericanPoliticians(TinyOptions())),
        model(std::make_unique<LanguageModel>(Gpt2XlSimConfig(),
                                              dataset.vocab)) {
    model->Pretrain(dataset.pretrain_facts);
    DurabilityOptions dopts;
    dopts.dir = dir;
    dopts.checkpoint_interval = checkpoint_interval;
    auto mgr = DurabilityManager::Open(dopts);
    EXPECT_TRUE(mgr.ok());
    durability = std::move(mgr).value();

    EditServiceOptions options;
    options.durability = durability.get();
    options.replication.role = role;
    options.replication.primary_port = primary_port;
    options.replication.ack_replicas = ack_replicas;
    options.replication.poll_interval = std::chrono::milliseconds(5);
    if (tweak) tweak(&options);
    auto created =
        EditService::Create(&dataset.kg, model.get(), GraceConfig(), options);
    EXPECT_TRUE(created.ok());
    service = std::move(created).value();
  }

  uint16_t replication_port() const {
    const auto* server = service->replication_server();
    return server == nullptr ? 0 : server->port();
  }

  std::string dir;
  Dataset dataset;
  std::unique_ptr<LanguageModel> model;
  std::unique_ptr<DurabilityManager> durability;
  std::unique_ptr<EditService> service;
};

// ----------------------------------------------------- shipping + reading ----

TEST(ReplicationTest, FollowerConvergesAndServesPrimaryAnswers) {
  Node primary("oneedit_repl_ship_p", ReplicationRole::kPrimary);
  ASSERT_NE(primary.replication_port(), 0);
  Node follower("oneedit_repl_ship_f", ReplicationRole::kFollower,
                primary.replication_port());

  std::vector<EditCase> cases(primary.dataset.cases.begin(),
                              primary.dataset.cases.begin() + 6);
  for (const EditCase& c : cases) {
    const auto result =
        primary.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->applied());
  }
  const uint64_t head = primary.service->applied_sequence();
  ASSERT_GE(head, cases.size());

  ASSERT_TRUE(WaitFor([&] {
    return follower.service->applied_sequence() >= head;
  })) << "follower stuck at " << follower.service->applied_sequence();

  // The replica answers reads with the primary's post-edit state. One
  // pinned snapshot per side: every case is checked against the same
  // post-convergence instant on both nodes.
  const Snapshot replica_view = *follower.service->GetSnapshot();
  const Snapshot primary_view = *primary.service->GetSnapshot();
  ASSERT_GE(replica_view.sequence(), head);
  for (const EditCase& c : cases) {
    EXPECT_EQ(replica_view.Ask(c.edit.subject, c.edit.relation)->entity,
              primary_view.Ask(c.edit.subject, c.edit.relation)->entity)
        << c.edit.subject;
    EXPECT_EQ(replica_view.Ask(c.edit.subject, c.edit.relation)->entity,
              c.edit.object);
  }

  // The follower's journal is byte-identical to the primary's: shipping
  // re-encodes the same records with the same framing.
  EXPECT_EQ(follower.durability->committed_sequence(), head);

  // Replicas are read-only: writes come back as policy rejections that
  // point at the primary, not as errors.
  const auto rejected = follower.service->SubmitAndWait(
      EditRequest::Edit(cases[0].edit, "bob"));
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(rejected->kind, EditResult::Kind::kRejected);

  ASSERT_TRUE(WaitFor([&] {
    return follower.service->replication_lag_batches() == 0;
  }));
  EXPECT_EQ(follower.service->replication_lag_records(), 0u);
  EXPECT_EQ(follower.service->follower_state(), FollowerState::kCaughtUp);
  EXPECT_GT(follower.service->statistics().Get(Ticker::kReplBatchesApplied),
            0u);
}

TEST(ReplicationTest, EmptyFollowerInstallsSnapshotAndCatchesUpLive) {
  // Small checkpoint interval so the WAL rotates and a late-joining
  // follower's position is no longer coverable by tailing alone.
  Node primary("oneedit_repl_snap_p", ReplicationRole::kPrimary,
               /*primary_port=*/0, /*ack_replicas=*/0,
               /*checkpoint_interval=*/4);
  ASSERT_NE(primary.replication_port(), 0);

  std::vector<EditCase> cases = primary.dataset.cases;
  ASSERT_GE(cases.size(), 12u);
  for (size_t i = 0; i < 6; ++i) {
    const auto result = primary.service->SubmitAndWait(
        EditRequest::Edit(cases[i].edit, "alice"));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->applied());
  }
  ASSERT_GT(primary.service->statistics().Get(Ticker::kCheckpoints), 0u);

  // Boot an empty-directory replica while the primary keeps writing: it
  // must install the shipped checkpoint, then tail the live WAL to lag 0.
  Node follower("oneedit_repl_snap_f", ReplicationRole::kFollower,
                primary.replication_port());
  for (size_t i = 6; i < cases.size(); ++i) {
    const auto result = primary.service->SubmitAndWait(
        EditRequest::Edit(cases[i].edit, "alice"));
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->applied());
  }
  const uint64_t head = primary.service->applied_sequence();

  ASSERT_TRUE(WaitFor([&] {
    return follower.service->applied_sequence() >= head &&
           follower.service->replication_lag_batches() == 0;
  })) << "follower stuck at " << follower.service->applied_sequence()
      << " of " << head;

  EXPECT_GT(
      follower.service->statistics().Get(Ticker::kReplSnapshotsInstalled),
      0u);
  const Snapshot installed_view = *follower.service->GetSnapshot();
  for (const EditCase& c : cases) {
    EXPECT_EQ(installed_view.Ask(c.edit.subject, c.edit.relation)->entity,
              c.edit.object)
        << c.edit.subject;
  }
}

// ------------------------------------------------ staleness + quorum acks ----

TEST(ReplicationTest, AskAtLeastBoundsStaleness) {
  Node primary("oneedit_repl_stale_p", ReplicationRole::kPrimary);
  ASSERT_NE(primary.replication_port(), 0);
  Node follower("oneedit_repl_stale_f", ReplicationRole::kFollower,
                primary.replication_port());

  const EditCase& c = primary.dataset.cases[0];
  ASSERT_TRUE(
      primary.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice")).ok());
  const uint64_t token = primary.service->applied_sequence();

  // A token from the future is rejected as Unavailable (retry/redirect),
  // never answered stale.
  ReadOptions ahead;
  ahead.min_sequence = token + 1000;
  const auto stale = follower.service->GetSnapshot(ahead);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(follower.service->statistics().Get(Ticker::kReplStaleReads), 0u);

  // Once the replica reaches the write's token, the read is admitted and
  // reflects it (read-your-writes via token passing).
  ASSERT_TRUE(WaitFor([&] {
    return follower.service->applied_sequence() >= token;
  }));
  ReadOptions at_least;
  at_least.min_sequence = token;
  const auto pinned = follower.service->GetSnapshot(at_least);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  ASSERT_GE(pinned->sequence(), token);
  const auto fresh = pinned->Ask(c.edit.subject, c.edit.relation);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->entity, c.edit.object);

  // A waiting read with a deadline also admits once the state lands.
  ReadOptions waiting;
  waiting.min_sequence = token;
  waiting.deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  const auto waited = follower.service->GetSnapshot(waiting);
  ASSERT_TRUE(waited.ok()) << waited.status().ToString();
  EXPECT_EQ(waited->Ask(c.edit.subject, c.edit.relation)->entity,
            c.edit.object);
}

TEST(ReplicationTest, QuorumAckWaitsForFollowerApply) {
  Node primary("oneedit_repl_quorum_p", ReplicationRole::kPrimary,
               /*primary_port=*/0, /*ack_replicas=*/1);
  ASSERT_NE(primary.replication_port(), 0);
  Node follower("oneedit_repl_quorum_f", ReplicationRole::kFollower,
                primary.replication_port());
  ASSERT_TRUE(WaitFor([&] {
    return primary.service->followers_connected() == 1;
  }));

  // With ack_replicas=1 an acknowledged write has already been journaled
  // and applied by the follower — min_follower_applied can't be behind.
  const EditCase& c = primary.dataset.cases[0];
  const auto result =
      primary.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->applied());
  EXPECT_GE(primary.service->min_follower_applied(),
            primary.service->applied_sequence());
  EXPECT_GE(follower.service->applied_sequence(),
            primary.service->applied_sequence());
  EXPECT_EQ(primary.service->statistics().Get(Ticker::kReplAckTimeouts), 0u);
}

// --------------------------------------------------------------- failover ----

TEST(ReplicationTest, PromoteTurnsFollowerIntoWritablePrimary) {
  auto primary = std::make_unique<Node>("oneedit_repl_promo_p",
                                        ReplicationRole::kPrimary);
  ASSERT_NE(primary->replication_port(), 0);
  Node follower("oneedit_repl_promo_f", ReplicationRole::kFollower,
                primary->replication_port());

  std::vector<EditCase> cases(primary->dataset.cases.begin(),
                              primary->dataset.cases.begin() + 4);
  for (const EditCase& c : cases) {
    ASSERT_TRUE(
        primary->service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"))
            .ok());
  }
  const uint64_t head = primary->service->applied_sequence();
  ASSERT_TRUE(WaitFor([&] {
    return follower.service->applied_sequence() >= head;
  }));

  // Promoting while still a follower of a live primary is allowed (the
  // failover driver decides when the primary is dead); here we kill the
  // primary first, as the real sequence would.
  primary->service->Stop();
  primary.reset();

  // A standalone/primary node cannot be promoted.
  Node standalone("oneedit_repl_promo_s", ReplicationRole::kStandalone);
  EXPECT_EQ(standalone.service->Promote().code(),
            StatusCode::kFailedPrecondition);

  const Status promoted = follower.service->Promote();
  ASSERT_TRUE(promoted.ok()) << promoted.ToString();
  EXPECT_EQ(follower.service->role(), ReplicationRole::kPrimary);
  EXPECT_EQ(follower.service->follower_state(), FollowerState::kStopped);
  // The new primary opened its own replication listener for survivors.
  EXPECT_NE(follower.replication_port(), 0);

  // Every edit the old primary acknowledged survives the failover...
  const Snapshot survivor_view = *follower.service->GetSnapshot();
  for (const EditCase& c : cases) {
    EXPECT_EQ(survivor_view.Ask(c.edit.subject, c.edit.relation)->entity,
              c.edit.object)
        << c.edit.subject;
  }
  // ...and the promoted node accepts new writes durably.
  const EditCase& next = follower.dataset.cases[5];
  const auto write =
      follower.service->SubmitAndWait(EditRequest::Edit(next.edit, "carol"));
  ASSERT_TRUE(write.ok()) << write.status().ToString();
  ASSERT_TRUE(write->applied());
  EXPECT_EQ(follower.service->GetSnapshot()
                ->Ask(next.edit.subject, next.edit.relation)
                ->entity,
            next.edit.object);
  EXPECT_GT(follower.service->applied_sequence(), head);
}

// ------------------------------------------------------ terms + fencing ----

/// One raw follower-side round trip against a replication server: connect,
/// send the poll, return the decoded reply.
StatusOr<Message> RawPoll(uint16_t port, const PollRequest& poll) {
  StatusOr<int> fd = net::ConnectLoopback(port);
  if (!fd.ok()) return fd.status();
  net::SetIoTimeouts(*fd, 5);
  const Status sent = replication::SendFrame(*fd, EncodePoll(poll));
  StatusOr<Message> reply = sent.ok() ? replication::RecvMessage(*fd)
                                      : StatusOr<Message>(sent);
  close(*fd);
  return reply;
}

TEST(ReplicationTermTest, StalePollIsRejectedWithTheHigherTerm) {
  Node primary("oneedit_term_stale_p", ReplicationRole::kPrimary);
  ASSERT_NE(primary.replication_port(), 0);
  // This primary has won term 3 (as if promoted twice more); a poll still
  // stamped with an older term must get a typed rejection carrying 3, and
  // never data journaled under the newer term.
  primary.durability->BumpTerm();
  primary.durability->BumpTerm();
  primary.durability->BumpTerm();

  PollRequest stale;
  stale.term = 1;
  const auto reply = RawPoll(primary.replication_port(), stale);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, MessageType::kReject);
  EXPECT_EQ(reply->reject.reason, RejectReason::kStaleTerm);
  EXPECT_EQ(reply->reject.term, 3u);
  EXPECT_GE(primary.service->statistics().Get(Ticker::kReplTermRejections),
            1u);
  // The stale poll changed nothing about this primary's authority.
  EXPECT_EQ(primary.service->health(), ServiceHealth::kHealthy);
  EXPECT_EQ(primary.service->role(), ReplicationRole::kPrimary);
}

TEST(ReplicationTermTest, HigherTermPollDeposesAndFencesThePrimary) {
  Node primary("oneedit_term_depose_p", ReplicationRole::kPrimary);
  ASSERT_NE(primary.replication_port(), 0);
  const EditCase& before = primary.dataset.cases[0];
  ASSERT_TRUE(primary.service
                  ->SubmitAndWait(EditRequest::Edit(before.edit, "alice"))
                  ->applied());

  // Someone else won term 5: the next poll carrying it must depose this
  // primary — typed concession on the wire, fenced health off it.
  PollRequest winner;
  winner.term = 5;
  winner.applied_term = 5;
  const auto reply = RawPoll(primary.replication_port(), winner);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, MessageType::kReject);
  EXPECT_EQ(reply->reject.reason, RejectReason::kDeposed);
  EXPECT_EQ(reply->reject.term, 5u);

  ASSERT_TRUE(WaitFor([&] {
    return primary.service->health() == ServiceHealth::kFenced;
  }));
  EXPECT_EQ(primary.service->primary_term(), 5u);
  EXPECT_TRUE(primary.service->replication_server()->deposed());

  // Writes are shed as typed rejections with the fencing tick — not
  // silently acked into a forked history.
  const auto fenced = primary.service->SubmitAndWait(
      EditRequest::Edit(primary.dataset.cases[1].edit, "bob"));
  ASSERT_TRUE(fenced.ok());
  EXPECT_EQ(fenced->kind, EditResult::Kind::kRejected);
  EXPECT_NE(fenced->message.find("fenced"), std::string::npos)
      << fenced->message;
  EXPECT_GE(primary.service->statistics().Get(Ticker::kReplFencedWrites), 1u);

  // Exactly one health transition into kFenced, logged once.
  size_t fenced_transitions = 0;
  for (const auto& t : primary.service->health_log()) {
    if (t.to == ServiceHealth::kFenced) ++fenced_transitions;
  }
  EXPECT_EQ(fenced_transitions, 1u);

  // Reads keep serving the pre-fence state.
  EXPECT_EQ(primary.service->GetSnapshot()
                ->Ask(before.edit.subject, before.edit.relation)
                ->entity,
            before.edit.object);
}

TEST(ReplicationTermTest, PromoteBumpsAndPersistsTheTerm) {
  auto primary = std::make_unique<Node>("oneedit_term_promo_p",
                                        ReplicationRole::kPrimary);
  ASSERT_NE(primary->replication_port(), 0);
  Node follower("oneedit_term_promo_f", ReplicationRole::kFollower,
                primary->replication_port());
  const EditCase& c = primary->dataset.cases[0];
  ASSERT_TRUE(primary->service
                  ->SubmitAndWait(EditRequest::Edit(c.edit, "alice"))
                  ->applied());
  const uint64_t head = primary->service->applied_sequence();
  ASSERT_TRUE(WaitFor([&] {
    return follower.service->applied_sequence() >= head;
  }));
  primary->service->Stop();
  primary.reset();

  EXPECT_EQ(follower.service->primary_term(), 0u);
  ASSERT_TRUE(follower.service->Promote().ok());
  EXPECT_EQ(follower.service->primary_term(), 1u);
  EXPECT_EQ(follower.durability->owned_term(), 1u);

  // The won term rode the promotion seal into the checkpoint header: a
  // restart recovers it instead of booting back into term 0.
  const auto peeked = durability::PeekCheckpointState(
      follower.durability->checkpoint_path(), nullptr);
  ASSERT_TRUE(peeked.ok()) << peeked.status().ToString();
  EXPECT_EQ(peeked->primary_term, 1u);
  EXPECT_EQ(peeked->owned_term, 1u);

  // New writes are journaled under the won term.
  ASSERT_TRUE(follower.service
                  ->SubmitAndWait(
                      EditRequest::Edit(follower.dataset.cases[1].edit, "bob"))
                  ->applied());
  EXPECT_EQ(follower.durability->applied_term(), 1u);
}

// ------------------------------------------------ divergence reconciliation ----

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ReplicationTermTest, DivergedSuffixIsTruncatedAndJournalsReconverge) {
  // P is the original primary; F tails it through a fault-injecting net so
  // the test can partition P away at an exact point.
  net::FaultInjectingNet fnet;
  auto p = std::make_unique<Node>("oneedit_term_div_p",
                                  ReplicationRole::kPrimary);
  ASSERT_NE(p->replication_port(), 0);
  const uint16_t p_port = p->replication_port();
  Node f("oneedit_term_div_f", ReplicationRole::kFollower, p_port,
         /*ack_replicas=*/0, /*checkpoint_interval=*/64,
         [&](EditServiceOptions* options) {
           options->replication.net = &fnet;
         });

  // Shared prefix: 4 edits acknowledged and replicated everywhere.
  std::vector<EditCase>& cases = p->dataset.cases;
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(p->service
                    ->SubmitAndWait(EditRequest::Edit(cases[i].edit, "alice"))
                    ->applied());
  }
  const uint64_t shared_head = p->service->applied_sequence();
  ASSERT_TRUE(WaitFor([&] {
    return f.service->applied_sequence() >= shared_head;
  }));

  // Partition: F can no longer reach P (tail drops, reconnects refused).
  fnet.PartitionPort(p_port);

  // P keeps accepting writes under its old term (0) — the suffix only its
  // own journal will ever hold.
  for (size_t i = 4; i < 6; ++i) {
    ASSERT_TRUE(p->service
                    ->SubmitAndWait(EditRequest::Edit(cases[i].edit, "mallory"))
                    ->applied());
  }
  EXPECT_EQ(p->service->applied_sequence(), shared_head + 2);

  // F wins term 1 (its fencer cannot reach P through the partition — it
  // keeps retrying in the background) and takes new writes of its own.
  ASSERT_TRUE(f.service->Promote().ok());
  EXPECT_EQ(f.service->primary_term(), 1u);
  ASSERT_NE(f.replication_port(), 0);
  std::vector<EditCase>& f_cases = f.dataset.cases;
  for (size_t i = 6; i < 8; ++i) {
    ASSERT_TRUE(f.service
                    ->SubmitAndWait(EditRequest::Edit(f_cases[i].edit, "carol"))
                    ->applied());
  }

  // Heal + rejoin: P's applied position (shared_head + 2, under term 0) is
  // past F's term-1 watermark — the divergence probe must force a
  // truncate-and-resync snapshot, not a tail.
  ASSERT_TRUE(p->service->RejoinAsFollower(f.replication_port()).ok());
  ASSERT_TRUE(WaitFor([&] {
    return p->service->statistics().Get(
               Ticker::kReplDivergenceTruncations) >= 1 &&
           p->service->applied_sequence() >= f.service->applied_sequence() &&
           p->service->replication_lag_batches() == 0;
  })) << "P stuck at " << p->service->applied_sequence() << " of "
      << f.service->applied_sequence();
  EXPECT_EQ(p->service->primary_term(), 1u);

  // The deposed-term suffix is gone: P answers exactly what F answers,
  // including for the subjects P edited alone behind the partition.
  const auto p_view = p->service->GetSnapshot();
  const auto f_view = f.service->GetSnapshot();
  ASSERT_TRUE(p_view.ok() && f_view.ok());
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(p_view->Ask(cases[i].edit.subject, cases[i].edit.relation)
                  ->entity,
              f_view->Ask(cases[i].edit.subject, cases[i].edit.relation)
                  ->entity)
        << cases[i].edit.subject;
  }

  // Byte-identical journals: the resynced WAL holds exactly the frames the
  // new primary journaled under term 1 — nothing of the truncated suffix.
  const std::string p_wal = ReadWholeFile(p->durability->wal_path());
  const std::string f_wal = ReadWholeFile(f.durability->wal_path());
  EXPECT_EQ(p_wal, f_wal);
  EXPECT_FALSE(f_wal.empty());
}

// ----------------------------------------------- ack policy (silent-ack hole) ----

TEST(ReplicationTest, FailWritePolicyRejectsUnreplicatedWrites) {
  // ack_replicas=1 with no follower attached: the quorum can never form,
  // and the default policy must say so instead of acking.
  Node primary("oneedit_ackpol_fail_p", ReplicationRole::kPrimary,
               /*primary_port=*/0, /*ack_replicas=*/1,
               /*checkpoint_interval=*/64, [](EditServiceOptions* options) {
                 options->replication.ack_timeout =
                     std::chrono::milliseconds(200);
               });
  ASSERT_NE(primary.replication_port(), 0);

  const EditCase& c = primary.dataset.cases[0];
  const auto result =
      primary.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->kind, EditResult::Kind::kRejected);
  EXPECT_NE(result->message.find("quorum"), std::string::npos)
      << result->message;
  EXPECT_GE(primary.service->statistics().Get(Ticker::kReplQuorumFailures),
            1u);
  EXPECT_EQ(primary.service->statistics().Get(Ticker::kReplAckTimeouts), 0u);
  // The write IS journaled and applied locally (the documented window that
  // divergence reconciliation truncates after a failover); only the
  // client-visible acknowledgement is withheld.
  EXPECT_GE(primary.service->applied_sequence(), 1u);
}

TEST(ReplicationTest, AckAnywayWarnPolicyKeepsAvailability) {
  Node primary("oneedit_ackpol_warn_p", ReplicationRole::kPrimary,
               /*primary_port=*/0, /*ack_replicas=*/1,
               /*checkpoint_interval=*/64, [](EditServiceOptions* options) {
                 options->replication.ack_timeout =
                     std::chrono::milliseconds(200);
                 options->replication.ack_policy =
                     AckPolicy::kAckAnywayWarn;
               });
  ASSERT_NE(primary.replication_port(), 0);

  const EditCase& c = primary.dataset.cases[0];
  const auto result =
      primary.service->SubmitAndWait(EditRequest::Edit(c.edit, "alice"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->applied());
  EXPECT_GE(primary.service->statistics().Get(Ticker::kReplAckTimeouts), 1u);
  EXPECT_EQ(primary.service->statistics().Get(Ticker::kReplQuorumFailures),
            0u);
}

// ----------------------------------------- server hygiene + follower backoff ----

TEST(ReplicationServerTest, FollowerCapRejectsTypedAndHandlersAreReaped) {
  const std::string dir = TempDirFor("oneedit_srv_cap");
  DurabilityOptions dopts;
  dopts.dir = dir;
  auto mgr = DurabilityManager::Open(dopts);
  ASSERT_TRUE(mgr.ok());
  Statistics stats;
  replication::ReplicationServerOptions options;
  options.max_followers = 1;
  auto server =
      replication::ReplicationServer::Start(mgr->get(), &stats, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const uint16_t port = (*server)->port();

  // First follower occupies the only slot.
  auto first = net::ConnectLoopback(port);
  ASSERT_TRUE(first.ok());
  net::SetIoTimeouts(*first, 5);
  PollRequest poll;
  ASSERT_TRUE(replication::SendFrame(*first, EncodePoll(poll)).ok());
  const auto served = replication::RecvMessage(*first);
  ASSERT_TRUE(served.ok()) << served.status().ToString();

  // Second connection gets a typed rejection, not a silent hang.
  auto second = net::ConnectLoopback(port);
  ASSERT_TRUE(second.ok());
  net::SetIoTimeouts(*second, 5);
  const auto rejected = replication::RecvMessage(*second);
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  ASSERT_EQ(rejected->type, MessageType::kReject);
  EXPECT_EQ(rejected->reject.reason, RejectReason::kTooManyFollowers);
  EXPECT_EQ(stats.Get(Ticker::kReplFollowerLimitRejects), 1u);
  close(*second);
  close(*first);

  // Churn: sequential connect/poll/disconnect cycles must not accumulate
  // handler threads — finished handlers are reaped on later accepts.
  for (int i = 0; i < 5; ++i) {
    auto fd = net::ConnectLoopback(port);
    ASSERT_TRUE(fd.ok());
    net::SetIoTimeouts(*fd, 5);
    ASSERT_TRUE(replication::SendFrame(*fd, EncodePoll(poll)).ok());
    ASSERT_TRUE(replication::RecvMessage(*fd).ok());
    close(*fd);
  }
  ASSERT_TRUE(WaitFor([&] { return (*server)->followers_connected() == 0; }));
  // One more accept triggers the reap of everything that finished above.
  auto last = net::ConnectLoopback(port);
  ASSERT_TRUE(last.ok());
  ASSERT_TRUE(WaitFor([&] { return (*server)->handler_threads() <= 1; }))
      << (*server)->handler_threads() << " handler threads still alive";
  close(*last);
  (*server)->Stop();
}

TEST(ReplicationFollowerTest, ResetStormBacksOffAndStopsPromptly) {
  // A listener that accepts and instantly closes: every session dies
  // before a single reply, which must walk the follower up its backoff
  // ladder instead of busy-spinning the port.
  auto listener = net::ListenLoopback(0);
  ASSERT_TRUE(listener.ok());
  std::atomic<bool> serving{true};
  std::thread storm([fd = listener->fd, &serving] {
    while (serving.load()) {
      const int conn = accept(fd, nullptr, nullptr);
      if (conn < 0) break;
      close(conn);
    }
  });

  Statistics stats;
  replication::FollowerOptions options;
  options.primary_port = listener->port;
  options.reconnect_backoff = std::chrono::milliseconds(5);
  options.reconnect_backoff_cap = std::chrono::milliseconds(50);
  options.backoff_seed = 42;
  replication::FollowerHooks hooks;
  hooks.apply_batch = [](const ShippedBatch&) { return Status::OK(); };
  hooks.install_snapshot = [](uint64_t, const std::string&) {
    return Status::OK();
  };
  hooks.applied_sequence = [] { return uint64_t{0}; };
  auto follower =
      replication::Follower::Start(options, std::move(hooks), &stats);
  std::this_thread::sleep_for(std::chrono::milliseconds(500));

  const uint64_t reconnects = stats.Get(Ticker::kReplReconnects);
  // The ladder is working: it kept retrying (liveness), but far below the
  // thousands/second an unthrottled spin would log (boundedness). With a
  // 5ms base doubling to a 50ms cap, 500ms admits at most ~40 attempts.
  EXPECT_GE(reconnects, 3u);
  EXPECT_LE(reconnects, 100u);

  // Stop() must return promptly even mid-storm (no wedged sleep).
  const auto stop_started = std::chrono::steady_clock::now();
  follower->Stop();
  EXPECT_LT(std::chrono::steady_clock::now() - stop_started,
            std::chrono::seconds(2));
  serving.store(false);
  shutdown(listener->fd, SHUT_RDWR);
  close(listener->fd);
  storm.join();
}

}  // namespace
}  // namespace oneedit
