#ifndef ONEEDIT_KG_DICTIONARY_H_
#define ONEEDIT_KG_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kg/triple.h"
#include "util/statusor.h"

namespace oneedit {

/// Bidirectional string <-> id interning table.
///
/// Ids are dense and assigned in insertion order, so a Dictionary built from
/// the same inputs in the same order is bit-identical — a requirement for the
/// deterministic embedding tables in src/model.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `name`, interning it if new.
  uint32_t Intern(std::string_view name);

  /// Returns the id for `name`, or NotFound if it was never interned.
  StatusOr<uint32_t> Lookup(std::string_view name) const;

  /// True if `name` is interned.
  bool Contains(std::string_view name) const;

  /// Returns the name for `id`; "<invalid>" if out of range.
  const std::string& Name(uint32_t id) const;

  size_t size() const { return names_.size(); }

  /// All interned names in id order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace oneedit

#endif  // ONEEDIT_KG_DICTIONARY_H_
