#ifndef ONEEDIT_KG_PATTERN_QUERY_H_
#define ONEEDIT_KG_PATTERN_QUERY_H_

#include <map>
#include <string>
#include <vector>

#include "kg/knowledge_graph.h"
#include "util/statusor.h"

namespace oneedit {

/// A triple pattern over names: any field starting with '?' is a variable
/// ("?who"), anything else a constant entity/relation name.
struct TriplePattern {
  std::string subject;
  std::string relation;
  std::string object;
};

/// One solution to a conjunctive query: variable name (with '?') -> entity
/// name. Ordered map so results print and compare deterministically.
using Binding = std::map<std::string, std::string>;

/// Evaluates a conjunctive query (a join of triple patterns) against the
/// knowledge graph — the small SPARQL-style query facility a KG library is
/// expected to ship.
///
///   // Which spouses of governors were born in Aldenton?
///   Query(kg, {{"?state", "governor", "?gov"},
///              {"?gov", "spouse", "?spouse"},
///              {"?spouse", "born_in", "Aldenton"}});
///
/// Relations must be constants (a variable relation is rejected). Results
/// are de-duplicated and sorted. Patterns are evaluated left to right with
/// index-backed lookups where a side is bound; fully unbound patterns scan.
StatusOr<std::vector<Binding>> Query(const KnowledgeGraph& kg,
                                     const std::vector<TriplePattern>& patterns,
                                     size_t limit = 10000);

/// Convenience: true if the query has at least one solution.
StatusOr<bool> Ask(const KnowledgeGraph& kg,
                   const std::vector<TriplePattern>& patterns);

}  // namespace oneedit

#endif  // ONEEDIT_KG_PATTERN_QUERY_H_
