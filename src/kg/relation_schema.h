#ifndef ONEEDIT_KG_RELATION_SCHEMA_H_
#define ONEEDIT_KG_RELATION_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "kg/dictionary.h"
#include "kg/triple.h"
#include "util/status.h"
#include "util/statusor.h"

namespace oneedit {

/// Per-relation metadata the Controller relies on.
struct RelationInfo {
  std::string name;
  /// Inverse relation ("wife" <-> "husband"); kInvalidId if not reversible.
  RelationId inverse = kInvalidId;
  /// Functional (single-valued) relations have exactly one object per
  /// subject; coverage conflicts (Eq. 5) are defined on functional slots.
  bool functional = true;
};

/// The relation vocabulary plus the metadata Algorithms 1-2 consult:
/// which relations are reversible (and their inverses) and which are
/// functional.
class RelationSchema {
 public:
  RelationSchema() = default;

  /// Defines (or returns the existing) relation named `name`.
  RelationId Define(std::string_view name, bool functional = true);

  /// Declares `a` and `b` mutual inverses ("wife"/"husband").
  /// Fails if either already has a different inverse.
  Status SetInverse(RelationId a, RelationId b);

  /// Declares `r` its own inverse (symmetric relation, e.g. "spouse").
  Status SetSymmetric(RelationId r);

  bool IsReversible(RelationId r) const;

  /// The inverse of `r`, or kInvalidId if not reversible.
  RelationId InverseOf(RelationId r) const;

  bool IsFunctional(RelationId r) const;

  StatusOr<RelationId> Lookup(std::string_view name) const {
    return dict_.Lookup(name);
  }
  const std::string& Name(RelationId r) const { return dict_.Name(r); }
  size_t size() const { return infos_.size(); }

  const RelationInfo& info(RelationId r) const { return infos_[r]; }

 private:
  Dictionary dict_;
  std::vector<RelationInfo> infos_;
};

}  // namespace oneedit

#endif  // ONEEDIT_KG_RELATION_SCHEMA_H_
