#ifndef ONEEDIT_KG_RULES_H_
#define ONEEDIT_KG_RULES_H_

#include <string>
#include <string_view>
#include <vector>

#include "kg/triple.h"
#include "kg/triple_store.h"
#include "util/statusor.h"

namespace oneedit {

/// A two-atom Horn composition rule:
///   (x, body1, y) ∧ (y, body2, z)  =>  (x, head, z)
///
/// Example (the paper's First-Lady case, §3.4.2):
///   (country, president, p) ∧ (p, wife, w) => (country, first_lady, w)
struct HornRule {
  std::string name;
  RelationId body1 = kInvalidId;
  RelationId body2 = kInvalidId;
  RelationId head = kInvalidId;
};

/// Forward-chaining engine over Horn composition rules.
///
/// The Controller uses DeriveFrom on each edited triple to obtain the
/// logically implied triples (§3.4.2 "logical rules"); the derived triples
/// join the augmentation set written into the model.
class RuleEngine {
 public:
  RuleEngine() = default;

  void AddRule(const HornRule& rule) { rules_.push_back(rule); }

  const std::vector<HornRule>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  /// Triples derivable in one forward-chaining step when `seed` is asserted,
  /// joining against the current contents of `store`. The seed may bind
  /// either atom of each rule. Results are sorted and de-duplicated, and
  /// never include `seed` itself.
  std::vector<Triple> DeriveFrom(const TripleStore& store,
                                 const Triple& seed) const;

  /// One-step closure over every triple in the store (bounded by `limit`
  /// derivations); used by tests and the KG-consistency checker.
  std::vector<Triple> DeriveAll(const TripleStore& store, size_t limit) const;

  /// Forward-chains to a fixpoint starting from `seed`: derived triples are
  /// themselves fed back through the rules (against the store contents plus
  /// everything derived so far) until no new triple appears, `max_depth`
  /// rounds elapse, or `limit` triples have been derived. The returned
  /// triples are in derivation order (round by round), de-duplicated, and
  /// never include `seed` or triples already in the store.
  std::vector<Triple> DeriveToFixpoint(const TripleStore& store,
                                       const Triple& seed,
                                       size_t max_depth = 4,
                                       size_t limit = 64) const;

 private:
  std::vector<HornRule> rules_;
};

/// Parses a rule written in Datalog-ish text against `schema`, defining any
/// unknown relations:
///   "first_lady(x, z) :- governor(x, y), spouse(y, z)"
/// Variables must be exactly x, y, z in the (x,z) :- (x,y), (y,z) shape that
/// HornRule supports. Returns InvalidArgument for anything else.
class RelationSchema;
StatusOr<HornRule> ParseHornRule(std::string_view text,
                                 RelationSchema* schema);

}  // namespace oneedit

#endif  // ONEEDIT_KG_RULES_H_
