#include "kg/wal.h"

#include <cstring>
#include <fstream>

#include "util/string_util.h"

namespace oneedit {

WriteAheadLog::~WriteAheadLog() { Close(); }

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : file_(other.file_), path_(std::move(other.path_)) {
  other.file_ = nullptr;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    path_ = std::move(other.path_);
    other.file_ = nullptr;
  }
  return *this;
}

Status WriteAheadLog::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open WAL at " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

std::string WriteAheadLog::EscapeField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (const char c : field) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool WriteAheadLog::UnescapeField(const std::string& field, std::string* out) {
  out->clear();
  out->reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] != '\\') {
      *out += field[i];
      continue;
    }
    if (i + 1 == field.size()) return false;  // dangling escape
    switch (field[++i]) {
      case '\\':
        *out += '\\';
        break;
      case 't':
        *out += '\t';
        break;
      case 'n':
        *out += '\n';
        break;
      default:
        return false;
    }
  }
  return true;
}

Status WriteAheadLog::Append(WalOp op, const std::string& subject,
                             const std::string& relation,
                             const std::string& object) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  const char tag = op == WalOp::kAdd ? 'A' : 'D';
  if (std::fprintf(file_, "%c\t%s\t%s\t%s\n", tag,
                   EscapeField(subject).c_str(), EscapeField(relation).c_str(),
                   EscapeField(object).c_str()) < 0) {
    return Status::IoError("WAL append failed");
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  if (std::fflush(file_) != 0) return Status::IoError("WAL flush failed");
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IoError("cannot truncate WAL at " + path_ + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

void WriteAheadLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WriteAheadLog::Replay(
    const std::string& path,
    const std::function<void(WalOp, const std::string&, const std::string&,
                             const std::string&)>& apply) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read WAL at " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // getline leaves eofbit set only when the line was not newline-
    // terminated: the signature of a record torn by a crash mid-append.
    const bool torn_tail_candidate = in.eof();
    if (line.empty()) continue;
    const std::vector<std::string> fields = StrSplit(line, '\t');
    std::string subject, relation, object;
    const bool well_formed =
        fields.size() == 4 && fields[0].size() == 1 &&
        (fields[0][0] == 'A' || fields[0][0] == 'D') &&
        UnescapeField(fields[1], &subject) &&
        UnescapeField(fields[2], &relation) &&
        UnescapeField(fields[3], &object);
    if (!well_formed) {
      if (torn_tail_candidate) return Status::OK();  // torn tail: clean EOF
      return Status::Corruption("malformed WAL record at " + path + ":" +
                                std::to_string(lineno));
    }
    const WalOp op = fields[0][0] == 'A' ? WalOp::kAdd : WalOp::kRemove;
    apply(op, subject, relation, object);
  }
  return Status::OK();
}

}  // namespace oneedit
