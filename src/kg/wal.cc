#include "kg/wal.h"

#include <cstring>
#include <fstream>

#include "util/string_util.h"

namespace oneedit {

WriteAheadLog::~WriteAheadLog() { Close(); }

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : file_(other.file_), path_(std::move(other.path_)) {
  other.file_ = nullptr;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    path_ = std::move(other.path_);
    other.file_ = nullptr;
  }
  return *this;
}

Status WriteAheadLog::Open(const std::string& path) {
  Close();
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open WAL at " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  return Status::OK();
}

Status WriteAheadLog::Append(WalOp op, const std::string& subject,
                             const std::string& relation,
                             const std::string& object) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  for (const std::string* name : {&subject, &relation, &object}) {
    if (name->find('\t') != std::string::npos ||
        name->find('\n') != std::string::npos) {
      return Status::InvalidArgument("WAL record field contains tab/newline: " +
                                     *name);
    }
  }
  const char tag = op == WalOp::kAdd ? 'A' : 'D';
  if (std::fprintf(file_, "%c\t%s\t%s\t%s\n", tag, subject.c_str(),
                   relation.c_str(), object.c_str()) < 0) {
    return Status::IoError("WAL append failed");
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  if (std::fflush(file_) != 0) return Status::IoError("WAL flush failed");
  return Status::OK();
}

void WriteAheadLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status WriteAheadLog::Replay(
    const std::string& path,
    const std::function<void(WalOp, const std::string&, const std::string&,
                             const std::string&)>& apply) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read WAL at " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() != 4 || fields[0].size() != 1 ||
        (fields[0][0] != 'A' && fields[0][0] != 'D')) {
      return Status::Corruption("malformed WAL record at " + path + ":" +
                                std::to_string(lineno));
    }
    const WalOp op = fields[0][0] == 'A' ? WalOp::kAdd : WalOp::kRemove;
    apply(op, fields[1], fields[2], fields[3]);
  }
  return Status::OK();
}

}  // namespace oneedit
