#include "kg/triple_store.h"

#include <algorithm>

namespace oneedit {

bool TripleStore::Add(const Triple& t) {
  if (!all_.insert(t).second) return false;
  by_subject_[t.subject][t.relation].insert(t.object);
  by_object_[t.object][t.relation].insert(t.subject);
  return true;
}

bool TripleStore::Remove(const Triple& t) {
  if (all_.erase(t) == 0) return false;
  auto prune = [](auto& outer, EntityId outer_key, RelationId r,
                  EntityId inner_value) {
    auto it = outer.find(outer_key);
    if (it == outer.end()) return;
    auto rit = it->second.find(r);
    if (rit == it->second.end()) return;
    rit->second.erase(inner_value);
    if (rit->second.empty()) it->second.erase(rit);
    if (it->second.empty()) outer.erase(it);
  };
  prune(by_subject_, t.subject, t.relation, t.object);
  prune(by_object_, t.object, t.relation, t.subject);
  return true;
}

std::vector<EntityId> TripleStore::Objects(EntityId s, RelationId r) const {
  auto it = by_subject_.find(s);
  if (it == by_subject_.end()) return {};
  auto rit = it->second.find(r);
  if (rit == it->second.end()) return {};
  return {rit->second.begin(), rit->second.end()};
}

std::vector<EntityId> TripleStore::Subjects(RelationId r, EntityId o) const {
  auto it = by_object_.find(o);
  if (it == by_object_.end()) return {};
  auto rit = it->second.find(r);
  if (rit == it->second.end()) return {};
  return {rit->second.begin(), rit->second.end()};
}

std::vector<Triple> TripleStore::TriplesWithSubject(EntityId s) const {
  std::vector<Triple> out;
  auto it = by_subject_.find(s);
  if (it == by_subject_.end()) return out;
  for (const auto& [r, objects] : it->second) {
    for (const EntityId o : objects) out.push_back(Triple{s, r, o});
  }
  return out;
}

std::vector<Triple> TripleStore::TriplesWithObject(EntityId o) const {
  std::vector<Triple> out;
  auto it = by_object_.find(o);
  if (it == by_object_.end()) return out;
  for (const auto& [r, subjects] : it->second) {
    for (const EntityId s : subjects) out.push_back(Triple{s, r, o});
  }
  return out;
}

std::vector<Triple> TripleStore::AllTriples() const {
  std::vector<Triple> out(all_.begin(), all_.end());
  std::sort(out.begin(), out.end());
  return out;
}

size_t TripleStore::SubjectOutDegree(EntityId s) const {
  auto it = by_subject_.find(s);
  if (it == by_subject_.end()) return 0;
  size_t degree = 0;
  for (const auto& [r, objects] : it->second) degree += objects.size();
  return degree;
}

size_t TripleStore::ObjectInDegree(EntityId o) const {
  auto it = by_object_.find(o);
  if (it == by_object_.end()) return 0;
  size_t degree = 0;
  for (const auto& [r, subjects] : it->second) degree += subjects.size();
  return degree;
}

void TripleStore::Clear() {
  all_.clear();
  by_subject_.clear();
  by_object_.clear();
}

}  // namespace oneedit
