#ifndef ONEEDIT_KG_KNOWLEDGE_GRAPH_H_
#define ONEEDIT_KG_KNOWLEDGE_GRAPH_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kg/dictionary.h"
#include "kg/named_triple.h"
#include "kg/relation_schema.h"
#include "kg/rules.h"
#include "kg/triple.h"
#include "kg/triple_store.h"
#include "kg/wal.h"
#include "util/status.h"
#include "util/statusor.h"

namespace oneedit {

/// An immutable, refcounted capture of the knowledge graph's queryable state
/// (triples, entity dictionary, relation schema, alias links) at one version.
/// Lookups are by name and entirely lock-free; the view stays valid and
/// unchanged no matter what the live graph does afterwards. Copyable and
/// cheap to copy (shared_ptrs only).
class KgReadView {
 public:
  KgReadView() = default;

  /// The graph version (mutation count) this view captured.
  uint64_t version() const { return version_; }

  size_t size() const { return store_ == nullptr ? 0 : store_->size(); }

  /// True if the named triple was present at capture time. Names never
  /// interned are simply absent (false), not an error.
  bool Contains(const NamedTriple& t) const;

  /// The object name of functional slot (subject, relation) at capture time,
  /// or nullopt if the slot was empty or the names unknown.
  std::optional<std::string> ObjectOf(const std::string& subject,
                                      const std::string& relation) const;

  /// Canonical entity name for `name` (identity if it is not an alias or is
  /// unknown).
  std::string Canonical(const std::string& name) const;

  /// Graph fan-out of `name`'s canonical entity at capture time: triples
  /// with it as subject plus triples with it as object. Unknown names are 0.
  /// Cheap (two hash lookups + a small per-relation sum) — the cost
  /// profiler's aggregator calls this for every tracked entity per cycle.
  uint64_t FanOut(const std::string& name) const;

 private:
  friend class KnowledgeGraph;

  std::shared_ptr<const TripleStore> store_;
  std::shared_ptr<const Dictionary> entities_;
  std::shared_ptr<const RelationSchema> schema_;
  std::shared_ptr<const std::unordered_map<EntityId, EntityId>> alias_of_;
  uint64_t version_ = 0;
};

/// The symbolic half of OneEdit: a versioned, WAL-backed knowledge graph.
///
/// Responsibilities (§3.4):
///  * source of truth for conflict detection (coverage + reverse conflicts);
///  * alias registry (entity surface forms used by Sub-Replace probes);
///  * inverse-relation metadata and Horn rules for augmentation;
///  * a version log so any mutation window can be rolled back exactly.
///
/// Every mutation appends an undo record; RollbackTo(v) restores the graph to
/// exactly the state it had at version v. If a WAL is attached, mutations are
/// also journaled for crash recovery.
class KnowledgeGraph {
 public:
  KnowledgeGraph() = default;

  // Non-copyable (owns a WAL handle); movable.
  KnowledgeGraph(const KnowledgeGraph&) = delete;
  KnowledgeGraph& operator=(const KnowledgeGraph&) = delete;
  KnowledgeGraph(KnowledgeGraph&&) = default;
  KnowledgeGraph& operator=(KnowledgeGraph&&) = default;

  // --- Vocabulary -----------------------------------------------------------

  EntityId InternEntity(std::string_view name) {
    if (!entities_.Contains(name)) Touch();
    return entities_.Intern(name);
  }
  StatusOr<EntityId> LookupEntity(std::string_view name) const {
    return entities_.Lookup(name);
  }
  const std::string& EntityName(EntityId e) const { return entities_.Name(e); }
  size_t num_entities() const { return entities_.size(); }

  RelationSchema& schema() { return schema_; }
  const RelationSchema& schema() const { return schema_; }

  RuleEngine& rules() { return rules_; }
  const RuleEngine& rules() const { return rules_; }

  // --- Mutations (versioned) ------------------------------------------------

  /// Adds a triple. AlreadyExists if present.
  Status Add(const Triple& t);

  /// Removes a triple. NotFound if absent.
  Status Remove(const Triple& t);

  /// Sets the functional slot (s, r) to o: removes any existing
  /// (s, r, o') with o' != o, then adds (s, r, o). Returns the replaced
  /// object, if there was one. If (s, r, o) already holds, this is a no-op
  /// returning std::nullopt.
  StatusOr<std::optional<EntityId>> Upsert(EntityId s, RelationId r,
                                           EntityId o);

  // --- Lookups --------------------------------------------------------------

  bool Contains(const Triple& t) const { return store_.Contains(t); }
  std::vector<EntityId> Objects(EntityId s, RelationId r) const {
    return store_.Objects(s, r);
  }
  std::vector<EntityId> Subjects(RelationId r, EntityId o) const {
    return store_.Subjects(r, o);
  }
  /// The unique object of functional slot (s, r), if present.
  std::optional<EntityId> ObjectOf(EntityId s, RelationId r) const;

  const TripleStore& store() const { return store_; }
  size_t size() const { return store_.size(); }

  /// Renders a triple with names, e.g. "(USA, president, Biden)".
  std::string ToString(const Triple& t) const;

  StatusOr<Triple> Resolve(const NamedTriple& named) const;
  NamedTriple ToNamed(const Triple& t) const;

  // --- Aliases --------------------------------------------------------------

  /// Registers `alias` as a surface form of `canonical`
  /// (e.g. "POTUS-45" -> "Donald Trump").
  void AddAlias(EntityId alias, EntityId canonical);

  /// Canonical entity for `e` (identity if `e` has no alias link).
  EntityId Canonical(EntityId e) const;

  /// All registered aliases of `canonical`, in registration order.
  std::vector<EntityId> AliasesOf(EntityId canonical) const;

  // --- Versioning / rollback -------------------------------------------------

  /// Number of mutations applied so far; also the current version.
  uint64_t version() const { return ops_.size(); }

  /// Undoes every mutation after `version` (most recent first).
  Status RollbackTo(uint64_t version);

  // --- Read views (lock-free serving) -----------------------------------------

  /// Captures the current queryable state as an immutable view. Clones the
  /// underlying tables only when something changed since the previous call
  /// (steady-state publication is O(1)). Must be called from the (single)
  /// thread that mutates the graph; the returned view may then be read from
  /// any number of threads concurrently with further mutations.
  KgReadView SnapshotView() const;

  // --- Transactions -----------------------------------------------------------

  /// Scoped transaction over the version log: mutations made between
  /// construction and Commit() are kept; if the Transaction is destroyed
  /// (or Abort()ed) without Commit(), they are rolled back exactly.
  ///
  ///   {
  ///     KnowledgeGraph::Transaction txn(&kg);
  ///     kg.Upsert(s, r, o);
  ///     if (!Validate(kg)) return;   // destructor aborts
  ///     txn.Commit();
  ///   }
  ///
  /// Transactions nest only LIFO (inner commits/aborts before outer).
  class Transaction {
   public:
    explicit Transaction(KnowledgeGraph* kg)
        : kg_(kg), start_version_(kg->version()) {}
    ~Transaction() {
      if (!done_) (void)Abort();
    }

    Transaction(const Transaction&) = delete;
    Transaction& operator=(const Transaction&) = delete;

    /// Keeps the transaction's mutations. Idempotent.
    void Commit() { done_ = true; }

    /// Rolls the graph back to the transaction's start. Idempotent.
    Status Abort() {
      if (done_) return Status::OK();
      done_ = true;
      return kg_->RollbackTo(start_version_);
    }

    uint64_t start_version() const { return start_version_; }

   private:
    KnowledgeGraph* kg_;
    uint64_t start_version_;
    bool done_ = false;
  };

  // --- Persistence ------------------------------------------------------------

  /// Attaches a WAL at `path`. If `replay_existing`, first replays any
  /// records already in the file into this graph.
  Status AttachWal(const std::string& path, bool replay_existing);

  /// Flushes any buffered WAL records; FailedPrecondition if no WAL is
  /// attached.
  Status SyncWal() { return wal_.Sync(); }

  bool HasWal() const { return wal_.is_open(); }

  /// Writes every triple (sorted, names) to `path`.
  Status SaveSnapshot(const std::string& path) const;

  /// Loads triples from a snapshot file produced by SaveSnapshot, adding
  /// them to this graph. Unknown relations are defined as functional.
  Status LoadSnapshot(const std::string& path);

 private:
  struct OpRecord {
    WalOp op;
    Triple triple;
  };

  Status ApplyAdd(const Triple& t, bool log);
  Status ApplyRemove(const Triple& t, bool log);

  /// Marks the queryable state changed, invalidating the cached read view.
  /// Called by every funnel that mutates triples, the dictionary, or the
  /// alias registry. Schema growth is covered separately: the view cache is
  /// also keyed on schema size (relations are only ever defined, never
  /// redefined).
  void Touch() { ++state_stamp_; }

  Dictionary entities_;
  RelationSchema schema_;
  RuleEngine rules_;
  TripleStore store_;
  std::vector<OpRecord> ops_;
  std::unordered_map<EntityId, EntityId> alias_of_;
  std::unordered_map<EntityId, std::vector<EntityId>> aliases_;
  WriteAheadLog wal_;

  /// Read-view cache: rebuilt by SnapshotView when (state_stamp_, schema
  /// size) moved. All mutation and SnapshotView calls are writer-thread-only,
  /// so these need no lock despite `mutable`.
  uint64_t state_stamp_ = 0;
  mutable bool view_valid_ = false;
  mutable uint64_t view_stamp_ = 0;
  mutable size_t view_schema_size_ = 0;
  mutable KgReadView view_cache_;
};

}  // namespace oneedit

#endif  // ONEEDIT_KG_KNOWLEDGE_GRAPH_H_
