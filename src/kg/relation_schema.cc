#include "kg/relation_schema.h"

namespace oneedit {

RelationId RelationSchema::Define(std::string_view name, bool functional) {
  auto existing = dict_.Lookup(name);
  if (existing.ok()) return existing.value();
  const RelationId id = dict_.Intern(name);
  infos_.push_back(RelationInfo{std::string(name), kInvalidId, functional});
  return id;
}

Status RelationSchema::SetInverse(RelationId a, RelationId b) {
  if (a >= infos_.size() || b >= infos_.size()) {
    return Status::InvalidArgument("SetInverse: unknown relation id");
  }
  if (infos_[a].inverse != kInvalidId && infos_[a].inverse != b) {
    return Status::FailedPrecondition("relation '" + infos_[a].name +
                                      "' already has an inverse");
  }
  if (infos_[b].inverse != kInvalidId && infos_[b].inverse != a) {
    return Status::FailedPrecondition("relation '" + infos_[b].name +
                                      "' already has an inverse");
  }
  infos_[a].inverse = b;
  infos_[b].inverse = a;
  return Status::OK();
}

Status RelationSchema::SetSymmetric(RelationId r) { return SetInverse(r, r); }

bool RelationSchema::IsReversible(RelationId r) const {
  return r < infos_.size() && infos_[r].inverse != kInvalidId;
}

RelationId RelationSchema::InverseOf(RelationId r) const {
  if (r >= infos_.size()) return kInvalidId;
  return infos_[r].inverse;
}

bool RelationSchema::IsFunctional(RelationId r) const {
  return r < infos_.size() && infos_[r].functional;
}

}  // namespace oneedit
