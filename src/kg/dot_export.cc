#include "kg/dot_export.h"

#include <fstream>
#include <set>
#include <sstream>
#include <unordered_set>

#include "kg/graph_query.h"
#include "util/string_util.h"

namespace oneedit {
namespace {

std::string Quote(const std::string& name) {
  return "\"" + StrReplaceAll(name, "\"", "\\\"") + "\"";
}

}  // namespace

std::string ToDot(const KnowledgeGraph& kg, const DotOptions& options) {
  // Collect the triples to render.
  std::vector<Triple> triples;
  if (!options.center.empty()) {
    const auto center = kg.LookupEntity(options.center);
    if (center.ok()) {
      std::unordered_set<Triple, TripleHash> seen;
      std::vector<EntityId> nodes = {*center};
      for (const EntityId e :
           NHopEntities(kg.store(), *center, options.hops)) {
        nodes.push_back(e);
      }
      const std::unordered_set<EntityId> in_scope(nodes.begin(), nodes.end());
      for (const EntityId node : nodes) {
        for (const Triple& t : kg.store().TriplesWithSubject(node)) {
          if (in_scope.count(t.object) > 0 && seen.insert(t).second) {
            triples.push_back(t);
          }
        }
      }
    }
  } else {
    triples = kg.store().AllTriples();
  }
  if (triples.size() > options.max_edges) {
    triples.resize(options.max_edges);
  }

  std::ostringstream out;
  out << "digraph " << Quote(options.graph_name) << " {\n";
  out << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";

  std::unordered_set<EntityId> nodes;
  for (const Triple& t : triples) {
    nodes.insert(t.subject);
    nodes.insert(t.object);
  }
  for (const EntityId node : std::set<EntityId>(nodes.begin(), nodes.end())) {
    out << "  " << Quote(kg.EntityName(node)) << ";\n";
  }
  for (const Triple& t : triples) {
    out << "  " << Quote(kg.EntityName(t.subject)) << " -> "
        << Quote(kg.EntityName(t.object)) << " [label="
        << Quote(kg.schema().Name(t.relation)) << "];\n";
  }
  // Alias links, dashed.
  for (const EntityId node : std::set<EntityId>(nodes.begin(), nodes.end())) {
    for (const EntityId alias : kg.AliasesOf(node)) {
      out << "  " << Quote(kg.EntityName(alias)) << " -> "
          << Quote(kg.EntityName(node))
          << " [style=dashed, label=\"alias\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

Status WriteDot(const KnowledgeGraph& kg, const std::string& path,
                const DotOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write DOT at " + path);
  out << ToDot(kg, options);
  if (!out.good()) return Status::IoError("DOT write failed: " + path);
  return Status::OK();
}

}  // namespace oneedit
