#include "kg/dictionary.h"

namespace oneedit {

namespace {
const std::string kInvalidName = "<invalid>";
}  // namespace

uint32_t Dictionary::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

StatusOr<uint32_t> Dictionary::Lookup(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return Status::NotFound("name not interned: " + std::string(name));
  }
  return it->second;
}

bool Dictionary::Contains(std::string_view name) const {
  return ids_.find(std::string(name)) != ids_.end();
}

const std::string& Dictionary::Name(uint32_t id) const {
  if (id >= names_.size()) return kInvalidName;
  return names_[id];
}

}  // namespace oneedit
