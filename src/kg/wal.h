#ifndef ONEEDIT_KG_WAL_H_
#define ONEEDIT_KG_WAL_H_

#include <cstdio>
#include <functional>
#include <string>

#include "util/status.h"

namespace oneedit {

/// Operation kinds recorded in the KG write-ahead log.
enum class WalOp { kAdd, kRemove };

/// Append-only, text-format write-ahead log for the knowledge graph.
///
/// Record format (one per line, tab-separated):
///   A\t<subject>\t<relation>\t<object>
///   D\t<subject>\t<relation>\t<object>
/// Names are logged rather than ids so a log replays correctly into a fresh
/// graph regardless of interning order.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;

  /// Opens (creating if needed) the log at `path` for appending.
  Status Open(const std::string& path);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends one record. The names must not contain tabs or newlines.
  Status Append(WalOp op, const std::string& subject,
                const std::string& relation, const std::string& object);

  /// Flushes buffered records to the OS.
  Status Sync();

  /// Closes the log (idempotent).
  void Close();

  /// Replays every record in `path` through `apply`. Stops at the first
  /// malformed line with a Corruption status.
  static Status Replay(
      const std::string& path,
      const std::function<void(WalOp, const std::string&, const std::string&,
                               const std::string&)>& apply);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace oneedit

#endif  // ONEEDIT_KG_WAL_H_
