#ifndef ONEEDIT_KG_WAL_H_
#define ONEEDIT_KG_WAL_H_

#include <cstdio>
#include <functional>
#include <string>

#include "util/status.h"

namespace oneedit {

/// Operation kinds recorded in the KG write-ahead log.
enum class WalOp { kAdd, kRemove };

/// Append-only, text-format write-ahead log for the knowledge graph.
///
/// Record format (one per line, tab-separated):
///   A\t<subject>\t<relation>\t<object>
///   D\t<subject>\t<relation>\t<object>
/// Names are logged rather than ids so a log replays correctly into a fresh
/// graph regardless of interning order. Tabs, newlines and backslashes
/// inside names are backslash-escaped on write and unescaped on replay, so
/// any entity name round-trips.
///
/// This text log remains as the KG-only compatibility format; the serving
/// pipeline journals whole EditRequests through the binary, CRC-framed
/// durability::EditWal instead (see docs/durability.md).
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;

  /// Opens (creating if needed) the log at `path` for appending.
  Status Open(const std::string& path);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends one record. Names may contain any characters; tabs, newlines
  /// and backslashes are escaped so the record stays one well-formed line.
  Status Append(WalOp op, const std::string& subject,
                const std::string& relation, const std::string& object);

  /// Flushes buffered records to the OS.
  Status Sync();

  /// Discards every record, leaving an empty open log — used by
  /// checkpointing to drop a segment whose effects are now persisted
  /// elsewhere (log rotation). FailedPrecondition if the log is not open.
  Status Truncate();

  /// Closes the log (idempotent).
  void Close();

  /// Replays every record in `path` through `apply`. A malformed *final*
  /// line with no trailing newline is a torn tail from a crashed writer and
  /// is treated as a clean end of log; a malformed line anywhere else stops
  /// the replay with a Corruption status.
  static Status Replay(
      const std::string& path,
      const std::function<void(WalOp, const std::string&, const std::string&,
                               const std::string&)>& apply);

  /// Escapes tabs, newlines and backslashes ("\t", "\n", "\\").
  static std::string EscapeField(const std::string& field);

  /// Inverse of EscapeField. Returns false on a dangling escape.
  static bool UnescapeField(const std::string& field, std::string* out);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace oneedit

#endif  // ONEEDIT_KG_WAL_H_
