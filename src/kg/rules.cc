#include "kg/rules.h"

#include <algorithm>
#include <unordered_set>

#include "kg/relation_schema.h"
#include "util/string_util.h"

namespace oneedit {

std::vector<Triple> RuleEngine::DeriveFrom(const TripleStore& store,
                                           const Triple& seed) const {
  std::vector<Triple> out;
  for (const HornRule& rule : rules_) {
    // Seed binds atom 1: (x=seed.s, body1, y=seed.o); join on (y, body2, z).
    if (seed.relation == rule.body1) {
      for (const EntityId z : store.Objects(seed.object, rule.body2)) {
        out.push_back(Triple{seed.subject, rule.head, z});
      }
    }
    // Seed binds atom 2: (y=seed.s, body2, z=seed.o); join on (x, body1, y).
    if (seed.relation == rule.body2) {
      for (const EntityId x : store.Subjects(rule.body1, seed.subject)) {
        out.push_back(Triple{x, rule.head, seed.object});
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove(out.begin(), out.end(), seed), out.end());
  return out;
}

std::vector<Triple> RuleEngine::DeriveToFixpoint(const TripleStore& store,
                                                 const Triple& seed,
                                                 size_t max_depth,
                                                 size_t limit) const {
  std::vector<Triple> out;
  std::unordered_set<Triple, TripleHash> seen{seed};
  // Derivations join against the store plus everything derived so far.
  TripleStore working;
  for (const Triple& t : store.AllTriples()) working.Add(t);
  working.Add(seed);

  std::vector<Triple> frontier{seed};
  for (size_t depth = 0; depth < max_depth && !frontier.empty(); ++depth) {
    std::vector<Triple> next;
    for (const Triple& t : frontier) {
      for (const Triple& derived : DeriveFrom(working, t)) {
        if (out.size() >= limit) return out;
        if (!seen.insert(derived).second) continue;
        if (store.Contains(derived)) continue;
        out.push_back(derived);
        next.push_back(derived);
      }
    }
    for (const Triple& t : next) working.Add(t);
    frontier = std::move(next);
  }
  return out;
}

std::vector<Triple> RuleEngine::DeriveAll(const TripleStore& store,
                                          size_t limit) const {
  std::vector<Triple> out;
  for (const Triple& t : store.AllTriples()) {
    for (const Triple& derived : DeriveFrom(store, t)) {
      out.push_back(derived);
      if (out.size() >= limit) break;
    }
    if (out.size() >= limit) break;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}


namespace {

/// Parses "name(a, b)" into (name, a, b). Whitespace-tolerant.
Status ParseAtom(std::string_view text, std::string* name, std::string* a,
                 std::string* b) {
  const size_t open = text.find('(');
  const size_t comma = text.find(',', open);
  const size_t close = text.find(')', comma);
  if (open == std::string_view::npos || comma == std::string_view::npos ||
      close == std::string_view::npos) {
    return Status::InvalidArgument("malformed atom: " + std::string(text));
  }
  *name = std::string(StripAsciiWhitespace(text.substr(0, open)));
  *a = std::string(StripAsciiWhitespace(text.substr(open + 1, comma - open - 1)));
  *b = std::string(StripAsciiWhitespace(text.substr(comma + 1, close - comma - 1)));
  if (name->empty() || a->empty() || b->empty()) {
    return Status::InvalidArgument("empty field in atom: " + std::string(text));
  }
  return Status::OK();
}

}  // namespace

StatusOr<HornRule> ParseHornRule(std::string_view text,
                                 RelationSchema* schema) {
  if (schema == nullptr) {
    return Status::InvalidArgument("ParseHornRule: null schema");
  }
  const size_t turnstile = text.find(":-");
  if (turnstile == std::string_view::npos) {
    return Status::InvalidArgument("rule needs ':-': " + std::string(text));
  }
  std::string head_name, head_a, head_b;
  ONEEDIT_RETURN_IF_ERROR(
      ParseAtom(text.substr(0, turnstile), &head_name, &head_a, &head_b));

  // Split the body on the comma *between* atoms (the one after the first ')').
  const std::string_view body = text.substr(turnstile + 2);
  const size_t first_close = body.find(')');
  if (first_close == std::string_view::npos) {
    return Status::InvalidArgument("rule needs two body atoms: " +
                                   std::string(text));
  }
  const size_t separator = body.find(',', first_close);
  if (separator == std::string_view::npos) {
    return Status::InvalidArgument("rule needs two body atoms: " +
                                   std::string(text));
  }
  std::string b1_name, b1_a, b1_b, b2_name, b2_a, b2_b;
  ONEEDIT_RETURN_IF_ERROR(
      ParseAtom(body.substr(0, separator), &b1_name, &b1_a, &b1_b));
  ONEEDIT_RETURN_IF_ERROR(
      ParseAtom(body.substr(separator + 1), &b2_name, &b2_a, &b2_b));

  // Enforce the HornRule variable shape: head(x,z) :- b1(x,y), b2(y,z).
  if (head_a != "x" || head_b != "z" || b1_a != "x" || b1_b != "y" ||
      b2_a != "y" || b2_b != "z") {
    return Status::InvalidArgument(
        "rule must have the shape head(x,z) :- b1(x,y), b2(y,z): " +
        std::string(text));
  }

  HornRule rule;
  rule.name = head_name;
  rule.body1 = schema->Define(b1_name);
  rule.body2 = schema->Define(b2_name);
  rule.head = schema->Define(head_name);
  return rule;
}

}  // namespace oneedit
