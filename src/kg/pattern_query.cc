#include "kg/pattern_query.h"

#include <algorithm>

namespace oneedit {
namespace {

bool IsVariable(const std::string& field) {
  return !field.empty() && field[0] == '?';
}

/// Resolves a field under a binding: returns the constant name, the bound
/// value, or "" if it is an unbound variable.
std::string ResolveField(const std::string& field, const Binding& binding) {
  if (!IsVariable(field)) return field;
  auto it = binding.find(field);
  return it == binding.end() ? std::string() : it->second;
}

}  // namespace

StatusOr<std::vector<Binding>> Query(const KnowledgeGraph& kg,
                                     const std::vector<TriplePattern>& patterns,
                                     size_t limit) {
  if (patterns.empty()) {
    return Status::InvalidArgument("empty query");
  }
  for (const TriplePattern& pattern : patterns) {
    if (IsVariable(pattern.relation)) {
      return Status::InvalidArgument("variable relations are not supported: " +
                                     pattern.relation);
    }
    if (!kg.schema().Lookup(pattern.relation).ok()) {
      return Status::NotFound("unknown relation: " + pattern.relation);
    }
  }

  std::vector<Binding> frontier = {Binding{}};
  for (const TriplePattern& pattern : patterns) {
    const RelationId relation = *kg.schema().Lookup(pattern.relation);
    std::vector<Binding> next;
    for (const Binding& binding : frontier) {
      const std::string subject = ResolveField(pattern.subject, binding);
      const std::string object = ResolveField(pattern.object, binding);

      // Candidate triples for this pattern under the current binding.
      std::vector<Triple> candidates;
      if (!subject.empty()) {
        const auto subject_id = kg.LookupEntity(subject);
        if (!subject_id.ok()) continue;
        for (const EntityId o : kg.Objects(*subject_id, relation)) {
          candidates.push_back(Triple{*subject_id, relation, o});
        }
      } else if (!object.empty()) {
        const auto object_id = kg.LookupEntity(object);
        if (!object_id.ok()) continue;
        for (const EntityId s : kg.Subjects(relation, *object_id)) {
          candidates.push_back(Triple{s, relation, *object_id});
        }
      } else {
        // Fully unbound: scan the relation.
        for (const Triple& t : kg.store().AllTriples()) {
          if (t.relation == relation) candidates.push_back(t);
        }
      }

      for (const Triple& t : candidates) {
        const std::string& s_name = kg.EntityName(t.subject);
        const std::string& o_name = kg.EntityName(t.object);
        if (!subject.empty() && s_name != subject) continue;
        if (!object.empty() && o_name != object) continue;
        Binding extended = binding;
        if (IsVariable(pattern.subject)) extended[pattern.subject] = s_name;
        if (IsVariable(pattern.object)) extended[pattern.object] = o_name;
        next.push_back(std::move(extended));
        if (next.size() > limit) {
          return Status::OutOfRange("query exceeded result limit");
        }
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }

  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());
  return frontier;
}

StatusOr<bool> Ask(const KnowledgeGraph& kg,
                   const std::vector<TriplePattern>& patterns) {
  ONEEDIT_ASSIGN_OR_RETURN(const std::vector<Binding> results,
                           Query(kg, patterns));
  return !results.empty();
}

}  // namespace oneedit
