#ifndef ONEEDIT_KG_TRIPLE_H_
#define ONEEDIT_KG_TRIPLE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace oneedit {

/// Interned identifier for an entity (subject or object).
using EntityId = uint32_t;
/// Interned identifier for a relation type.
using RelationId = uint32_t;

inline constexpr uint32_t kInvalidId = std::numeric_limits<uint32_t>::max();

/// A knowledge triple (s, r, o): subject --relation--> object.
struct Triple {
  EntityId subject = kInvalidId;
  RelationId relation = kInvalidId;
  EntityId object = kInvalidId;

  friend bool operator==(const Triple& a, const Triple& b) = default;
  friend auto operator<=>(const Triple& a, const Triple& b) = default;
};

struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = t.subject;
    h = h * 0x9E3779B97F4A7C15ULL + t.relation;
    h = h * 0x9E3779B97F4A7C15ULL + t.object;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h);
  }
};

/// Key identifying the "slot" of a functional fact: (subject, relation).
struct SubjectRelation {
  EntityId subject = kInvalidId;
  RelationId relation = kInvalidId;

  friend bool operator==(const SubjectRelation& a,
                         const SubjectRelation& b) = default;
  friend auto operator<=>(const SubjectRelation& a,
                          const SubjectRelation& b) = default;
};

struct SubjectRelationHash {
  size_t operator()(const SubjectRelation& k) const {
    uint64_t h = (static_cast<uint64_t>(k.subject) << 32) | k.relation;
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }
};

}  // namespace oneedit

#endif  // ONEEDIT_KG_TRIPLE_H_
