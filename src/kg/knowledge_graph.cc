#include "kg/knowledge_graph.h"

#include <fstream>

#include "util/string_util.h"

namespace oneedit {

bool KgReadView::Contains(const NamedTriple& t) const {
  if (store_ == nullptr) return false;
  const auto s = entities_->Lookup(t.subject);
  const auto r = schema_->Lookup(t.relation);
  const auto o = entities_->Lookup(t.object);
  if (!s.ok() || !r.ok() || !o.ok()) return false;
  return store_->Contains(Triple{s.value(), r.value(), o.value()});
}

std::optional<std::string> KgReadView::ObjectOf(
    const std::string& subject, const std::string& relation) const {
  if (store_ == nullptr) return std::nullopt;
  const auto s = entities_->Lookup(subject);
  const auto r = schema_->Lookup(relation);
  if (!s.ok() || !r.ok()) return std::nullopt;
  const std::vector<EntityId> objects = store_->Objects(s.value(), r.value());
  if (objects.empty()) return std::nullopt;
  return entities_->Name(objects.front());
}

std::string KgReadView::Canonical(const std::string& name) const {
  if (entities_ == nullptr) return name;
  const auto id = entities_->Lookup(name);
  if (!id.ok()) return name;
  const auto it = alias_of_->find(id.value());
  if (it == alias_of_->end()) return name;
  return entities_->Name(it->second);
}

uint64_t KgReadView::FanOut(const std::string& name) const {
  if (store_ == nullptr) return 0;
  auto id = entities_->Lookup(name);
  if (!id.ok()) return 0;
  EntityId e = id.value();
  const auto it = alias_of_->find(e);
  if (it != alias_of_->end()) e = it->second;
  return static_cast<uint64_t>(store_->SubjectOutDegree(e) +
                               store_->ObjectInDegree(e));
}

KgReadView KnowledgeGraph::SnapshotView() const {
  if (!view_valid_ || view_stamp_ != state_stamp_ ||
      view_schema_size_ != schema_.size()) {
    KgReadView view;
    view.store_ = std::make_shared<const TripleStore>(store_);
    view.entities_ = std::make_shared<const Dictionary>(entities_);
    view.schema_ = std::make_shared<const RelationSchema>(schema_);
    view.alias_of_ =
        std::make_shared<const std::unordered_map<EntityId, EntityId>>(
            alias_of_);
    view_cache_ = std::move(view);
    view_stamp_ = state_stamp_;
    view_schema_size_ = schema_.size();
    view_valid_ = true;
  }
  // Restamp on every call: the cached tables are content-addressed by the
  // mutation stamp, but the reported version should always be the live one.
  view_cache_.version_ = version();
  return view_cache_;
}

Status KnowledgeGraph::ApplyAdd(const Triple& t, bool log) {
  if (!store_.Add(t)) {
    return Status::AlreadyExists("triple already present: " + ToString(t));
  }
  Touch();
  if (log) {
    ops_.push_back(OpRecord{WalOp::kAdd, t});
    if (wal_.is_open()) {
      ONEEDIT_RETURN_IF_ERROR(wal_.Append(WalOp::kAdd, EntityName(t.subject),
                                          schema_.Name(t.relation),
                                          EntityName(t.object)));
    }
  }
  return Status::OK();
}

Status KnowledgeGraph::ApplyRemove(const Triple& t, bool log) {
  if (!store_.Remove(t)) {
    return Status::NotFound("triple not present: " + ToString(t));
  }
  Touch();
  if (log) {
    ops_.push_back(OpRecord{WalOp::kRemove, t});
    if (wal_.is_open()) {
      ONEEDIT_RETURN_IF_ERROR(wal_.Append(WalOp::kRemove, EntityName(t.subject),
                                          schema_.Name(t.relation),
                                          EntityName(t.object)));
    }
  }
  return Status::OK();
}

Status KnowledgeGraph::Add(const Triple& t) { return ApplyAdd(t, /*log=*/true); }

Status KnowledgeGraph::Remove(const Triple& t) {
  return ApplyRemove(t, /*log=*/true);
}

StatusOr<std::optional<EntityId>> KnowledgeGraph::Upsert(EntityId s,
                                                         RelationId r,
                                                         EntityId o) {
  if (store_.Contains(Triple{s, r, o})) return std::optional<EntityId>();
  std::optional<EntityId> replaced;
  for (const EntityId old : store_.Objects(s, r)) {
    if (old == o) continue;
    ONEEDIT_RETURN_IF_ERROR(Remove(Triple{s, r, old}));
    replaced = old;
  }
  ONEEDIT_RETURN_IF_ERROR(Add(Triple{s, r, o}));
  return replaced;
}

std::optional<EntityId> KnowledgeGraph::ObjectOf(EntityId s,
                                                 RelationId r) const {
  const std::vector<EntityId> objects = store_.Objects(s, r);
  if (objects.empty()) return std::nullopt;
  return objects.front();
}

std::string KnowledgeGraph::ToString(const Triple& t) const {
  return "(" + EntityName(t.subject) + ", " + schema_.Name(t.relation) + ", " +
         EntityName(t.object) + ")";
}

StatusOr<Triple> KnowledgeGraph::Resolve(const NamedTriple& named) const {
  ONEEDIT_ASSIGN_OR_RETURN(const EntityId s, entities_.Lookup(named.subject));
  ONEEDIT_ASSIGN_OR_RETURN(const RelationId r, schema_.Lookup(named.relation));
  ONEEDIT_ASSIGN_OR_RETURN(const EntityId o, entities_.Lookup(named.object));
  return Triple{s, r, o};
}

NamedTriple KnowledgeGraph::ToNamed(const Triple& t) const {
  return NamedTriple{EntityName(t.subject), schema_.Name(t.relation),
                     EntityName(t.object)};
}

void KnowledgeGraph::AddAlias(EntityId alias, EntityId canonical) {
  alias_of_[alias] = canonical;
  aliases_[canonical].push_back(alias);
  Touch();
}

EntityId KnowledgeGraph::Canonical(EntityId e) const {
  auto it = alias_of_.find(e);
  return it == alias_of_.end() ? e : it->second;
}

std::vector<EntityId> KnowledgeGraph::AliasesOf(EntityId canonical) const {
  auto it = aliases_.find(canonical);
  if (it == aliases_.end()) return {};
  return it->second;
}

Status KnowledgeGraph::RollbackTo(uint64_t version) {
  if (version > ops_.size()) {
    return Status::OutOfRange("rollback target version " +
                              std::to_string(version) + " > current " +
                              std::to_string(ops_.size()));
  }
  while (ops_.size() > version) {
    const OpRecord rec = ops_.back();
    ops_.pop_back();
    // Undo without appending to the version log; journal the compensating
    // operation in the WAL so replay stays faithful.
    Status s;
    if (rec.op == WalOp::kAdd) {
      s = ApplyRemove(rec.triple, /*log=*/false);
      if (s.ok() && wal_.is_open()) {
        s = wal_.Append(WalOp::kRemove, EntityName(rec.triple.subject),
                        schema_.Name(rec.triple.relation),
                        EntityName(rec.triple.object));
      }
    } else {
      s = ApplyAdd(rec.triple, /*log=*/false);
      if (s.ok() && wal_.is_open()) {
        s = wal_.Append(WalOp::kAdd, EntityName(rec.triple.subject),
                        schema_.Name(rec.triple.relation),
                        EntityName(rec.triple.object));
      }
    }
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status KnowledgeGraph::AttachWal(const std::string& path,
                                 bool replay_existing) {
  if (replay_existing) {
    std::ifstream probe(path);
    if (probe.good()) {
      ONEEDIT_RETURN_IF_ERROR(WriteAheadLog::Replay(
          path, [this](WalOp op, const std::string& s, const std::string& r,
                       const std::string& o) {
            const EntityId sid = InternEntity(s);
            const RelationId rid = schema_.Define(r);
            const EntityId oid = InternEntity(o);
            const Triple t{sid, rid, oid};
            if (op == WalOp::kAdd) {
              store_.Add(t);
              ops_.push_back(OpRecord{WalOp::kAdd, t});
            } else {
              store_.Remove(t);
              ops_.push_back(OpRecord{WalOp::kRemove, t});
            }
            Touch();
          }));
    }
  }
  return wal_.Open(path);
}

Status KnowledgeGraph::SaveSnapshot(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot write snapshot at " + path);
  for (const Triple& t : store_.AllTriples()) {
    out << EntityName(t.subject) << '\t' << schema_.Name(t.relation) << '\t'
        << EntityName(t.object) << '\n';
  }
  if (!out.good()) return Status::IoError("snapshot write failed: " + path);
  return Status::OK();
}

Status KnowledgeGraph::LoadSnapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read snapshot at " + path);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() != 3) {
      return Status::Corruption("malformed snapshot line " +
                                std::to_string(lineno) + " in " + path);
    }
    const Triple t{InternEntity(fields[0]), schema_.Define(fields[1]),
                   InternEntity(fields[2])};
    if (!store_.Contains(t)) {
      ONEEDIT_RETURN_IF_ERROR(Add(t));
    }
  }
  return Status::OK();
}

}  // namespace oneedit
