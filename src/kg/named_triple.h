#ifndef ONEEDIT_KG_NAMED_TRIPLE_H_
#define ONEEDIT_KG_NAMED_TRIPLE_H_

#include <string>

namespace oneedit {

/// A human-readable triple, used at API boundaries (Interpreter output,
/// model pretraining corpora, logs).
struct NamedTriple {
  std::string subject;
  std::string relation;
  std::string object;

  friend bool operator==(const NamedTriple& a, const NamedTriple& b) = default;
  friend auto operator<=>(const NamedTriple& a, const NamedTriple& b) = default;
};

}  // namespace oneedit

#endif  // ONEEDIT_KG_NAMED_TRIPLE_H_
