#include "kg/graph_query.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_set>

namespace oneedit {
namespace {

/// Neighbors of `e` over undirected edges, ascending and de-duplicated.
std::vector<EntityId> UndirectedNeighbors(const TripleStore& store,
                                          EntityId e) {
  std::vector<EntityId> out;
  for (const Triple& t : store.TriplesWithSubject(e)) out.push_back(t.object);
  for (const Triple& t : store.TriplesWithObject(e)) out.push_back(t.subject);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

std::vector<EntityId> NHopEntities(const TripleStore& store, EntityId center,
                                   size_t hops) {
  std::vector<EntityId> out;
  std::unordered_set<EntityId> seen{center};
  std::deque<std::pair<EntityId, size_t>> frontier{{center, 0}};
  while (!frontier.empty()) {
    const auto [node, depth] = frontier.front();
    frontier.pop_front();
    if (depth >= hops) continue;
    for (const EntityId next : UndirectedNeighbors(store, node)) {
      if (!seen.insert(next).second) continue;
      out.push_back(next);
      frontier.emplace_back(next, depth + 1);
    }
  }
  return out;
}

std::vector<Triple> NeighborhoodTriples(const TripleStore& store,
                                        EntityId center, size_t max_triples,
                                        size_t max_hops) {
  std::vector<Triple> out;
  if (max_triples == 0) return out;
  std::unordered_set<Triple, TripleHash> emitted;
  std::unordered_set<EntityId> visited{center};
  std::deque<std::pair<EntityId, size_t>> frontier{{center, 0}};
  while (!frontier.empty() && out.size() < max_triples) {
    const auto [node, depth] = frontier.front();
    frontier.pop_front();
    // Emit this node's incident triples (subject side first, then object
    // side), sorted for determinism.
    std::vector<Triple> incident = store.TriplesWithSubject(node);
    const std::vector<Triple> in_edges = store.TriplesWithObject(node);
    incident.insert(incident.end(), in_edges.begin(), in_edges.end());
    std::sort(incident.begin(), incident.end());
    for (const Triple& t : incident) {
      if (out.size() >= max_triples) break;
      if (emitted.insert(t).second) out.push_back(t);
    }
    if (depth >= max_hops) continue;
    for (const EntityId next : UndirectedNeighbors(store, node)) {
      if (visited.insert(next).second) frontier.emplace_back(next, depth + 1);
    }
  }
  return out;
}

size_t Distance(const TripleStore& store, EntityId from, EntityId to) {
  if (from == to) return 0;
  std::unordered_set<EntityId> seen{from};
  std::deque<std::pair<EntityId, size_t>> frontier{{from, 0}};
  while (!frontier.empty()) {
    const auto [node, depth] = frontier.front();
    frontier.pop_front();
    for (const EntityId next : UndirectedNeighbors(store, node)) {
      if (next == to) return depth + 1;
      if (seen.insert(next).second) frontier.emplace_back(next, depth + 1);
    }
  }
  return SIZE_MAX;
}

}  // namespace oneedit
