#ifndef ONEEDIT_KG_GRAPH_QUERY_H_
#define ONEEDIT_KG_GRAPH_QUERY_H_

#include <cstddef>
#include <vector>

#include "kg/triple.h"
#include "kg/triple_store.h"

namespace oneedit {

/// Entities reachable from `center` within `hops` undirected steps
/// (excluding `center` itself), in BFS order with deterministic tie-breaks.
std::vector<EntityId> NHopEntities(const TripleStore& store, EntityId center,
                                   size_t hops);

/// The n triples "nearest" to `center`: BFS over undirected edges, emitting
/// each frontier node's incident triples in sorted order until `max_triples`
/// are collected (§3.4.2's nearest-neighbor generation-triple strategy).
/// `max_hops` bounds the search radius.
std::vector<Triple> NeighborhoodTriples(const TripleStore& store,
                                        EntityId center, size_t max_triples,
                                        size_t max_hops = 3);

/// BFS distance (in undirected hops) from `from` to `to`;
/// returns SIZE_MAX if unreachable.
size_t Distance(const TripleStore& store, EntityId from, EntityId to);

}  // namespace oneedit

#endif  // ONEEDIT_KG_GRAPH_QUERY_H_
