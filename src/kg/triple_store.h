#ifndef ONEEDIT_KG_TRIPLE_STORE_H_
#define ONEEDIT_KG_TRIPLE_STORE_H_

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "kg/triple.h"

namespace oneedit {

/// In-memory triple store with subject- and object-side adjacency indexes.
///
/// Point lookups (Contains) are O(1); pattern lookups (s,r,?) / (?,r,o) /
/// (s,?,?) / (?,?,o) are served from ordered adjacency maps so every result
/// vector is deterministically sorted — experiments must be bit-reproducible.
class TripleStore {
 public:
  TripleStore() = default;

  /// Inserts t. Returns false if it was already present.
  bool Add(const Triple& t);

  /// Removes t. Returns false if it was not present.
  bool Remove(const Triple& t);

  bool Contains(const Triple& t) const { return all_.count(t) > 0; }

  /// All o with (s, r, o) in the store, ascending.
  std::vector<EntityId> Objects(EntityId s, RelationId r) const;

  /// All s with (s, r, o) in the store, ascending.
  std::vector<EntityId> Subjects(RelationId r, EntityId o) const;

  /// All triples whose subject is s, sorted.
  std::vector<Triple> TriplesWithSubject(EntityId s) const;

  /// All triples whose object is o, sorted.
  std::vector<Triple> TriplesWithObject(EntityId o) const;

  /// Every triple, sorted. O(n log n); intended for snapshots and tests.
  std::vector<Triple> AllTriples() const;

  /// Number of triples whose subject is s (the subject-side out-degree).
  /// O(distinct relations of s) — cheap enough for per-scrape aggregation.
  size_t SubjectOutDegree(EntityId s) const;

  /// Number of triples whose object is o (the object-side in-degree).
  size_t ObjectInDegree(EntityId o) const;

  size_t size() const { return all_.size(); }
  bool empty() const { return all_.empty(); }
  void Clear();

 private:
  using RelationMap = std::map<RelationId, std::set<EntityId>>;

  std::unordered_set<Triple, TripleHash> all_;
  std::unordered_map<EntityId, RelationMap> by_subject_;  // s -> r -> {o}
  std::unordered_map<EntityId, RelationMap> by_object_;   // o -> r -> {s}
};

}  // namespace oneedit

#endif  // ONEEDIT_KG_TRIPLE_STORE_H_
