#ifndef ONEEDIT_KG_DOT_EXPORT_H_
#define ONEEDIT_KG_DOT_EXPORT_H_

#include <string>

#include "kg/knowledge_graph.h"
#include "util/status.h"

namespace oneedit {

/// Options for Graphviz export.
struct DotOptions {
  /// Restrict to the BFS neighborhood of this entity (empty = whole graph).
  std::string center;
  /// Neighborhood radius when `center` is set.
  size_t hops = 2;
  /// Hard cap on emitted edges (keeps dot files renderable).
  size_t max_edges = 400;
  /// Graph name in the DOT header.
  std::string graph_name = "oneedit_kg";
};

/// Renders (a neighborhood of) the knowledge graph as a Graphviz digraph:
/// entities become nodes, triples become labeled edges, aliases become
/// dashed edges. Useful for debugging conflict resolution visually:
///   dot -Tsvg kg.dot -o kg.svg
std::string ToDot(const KnowledgeGraph& kg, const DotOptions& options = {});

/// ToDot + write to `path`.
Status WriteDot(const KnowledgeGraph& kg, const std::string& path,
                const DotOptions& options = {});

}  // namespace oneedit

#endif  // ONEEDIT_KG_DOT_EXPORT_H_
