#include "nlp/gazetteer.h"

#include <algorithm>

#include "nlp/tokenizer.h"
#include "util/string_util.h"

namespace oneedit {

void Gazetteer::AddPhrase(const std::string& phrase,
                          const std::string& canonical) {
  const std::vector<std::string> tokens = Tokenize(phrase);
  if (tokens.empty()) return;
  phrases_[StrJoin(tokens, " ")] = canonical;
  max_phrase_tokens_ = std::max(max_phrase_tokens_, tokens.size());
}

std::vector<PhraseMatch> Gazetteer::FindMatches(
    const std::vector<std::string>& tokens) const {
  std::vector<PhraseMatch> matches;
  size_t i = 0;
  while (i < tokens.size()) {
    bool matched = false;
    const size_t longest = std::min(max_phrase_tokens_, tokens.size() - i);
    for (size_t len = longest; len >= 1; --len) {
      std::string candidate = tokens[i];
      for (size_t k = 1; k < len; ++k) candidate += " " + tokens[i + k];
      auto it = phrases_.find(candidate);
      if (it != phrases_.end()) {
        matches.push_back(PhraseMatch{i, i + len, it->second});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) ++i;
  }
  return matches;
}

}  // namespace oneedit
