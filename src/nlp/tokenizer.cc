#include "nlp/tokenizer.h"

#include <cctype>

#include "util/string_util.h"

namespace oneedit {

std::vector<std::string> Tokenize(std::string_view text) {
  std::string normalized;
  normalized.reserve(text.size() + 8);
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const unsigned char uc = static_cast<unsigned char>(c);
    if (c == '\'' || (uc == 0xE2 && i + 2 < text.size() &&
                      static_cast<unsigned char>(text[i + 1]) == 0x80 &&
                      static_cast<unsigned char>(text[i + 2]) == 0x99)) {
      // Apostrophe (ASCII or U+2019): keep possessive as its own token.
      if (uc == 0xE2) i += 2;
      normalized += " '";
      continue;
    }
    if (std::isalnum(uc) || c == '_' || c == '-') {
      normalized += static_cast<char>(std::tolower(uc));
    } else if (std::isspace(uc)) {
      normalized += ' ';
    } else {
      // Punctuation becomes its own token.
      normalized += ' ';
      normalized += c;
      normalized += ' ';
    }
  }
  // Merge "' s" into "'s".
  std::vector<std::string> raw = SplitWhitespace(normalized);
  std::vector<std::string> tokens;
  tokens.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == "'" && i + 1 < raw.size() && raw[i + 1] == "s") {
      tokens.push_back("'s");
      ++i;
    } else {
      tokens.push_back(raw[i]);
    }
  }
  return tokens;
}

std::string Detokenize(const std::vector<std::string>& tokens) {
  return StrJoin(tokens, " ");
}

}  // namespace oneedit
