#include "nlp/utterance_generator.h"

#include "util/rng.h"
#include "util/string_util.h"

namespace oneedit {

const std::vector<std::string>& EditTemplates() {
  static const std::vector<std::string>* const kTemplates =
      new std::vector<std::string>{
          "Change the {rel} of {subj} to {obj}.",
          "Update the {rel} of {subj} to {obj}.",
          "Set the {rel} of {subj} to {obj}.",
          "The {rel} of {subj} is now {obj}.",
          "{subj}'s {rel} is now {obj}.",
          "Please correct the record: the {rel} of {subj} should be {obj}.",
          "From now on, {subj}'s {rel} is {obj}.",
          "Please note that the {rel} of {subj} has changed to {obj}.",
          "Edit: the {rel} of {subj} becomes {obj}.",
          "Revise {subj}'s {rel} to {obj}.",
          "Make a correction: {subj}'s {rel} should be {obj}.",
          "Overwrite the {rel} of {subj} with {obj}.",
      };
  return *kTemplates;
}

const std::vector<std::string>& ChatTemplates() {
  static const std::vector<std::string>* const kTemplates =
      new std::vector<std::string>{
          // Slotted question templates (used by QueryUtterance).
          "What is the {rel} of {subj}?",
          "Who is the {rel} of {subj}?",
          "Can you tell me the {rel} of {subj}?",
          "Do you know the {rel} of {subj}?",
          "I was wondering about the {rel} of {subj}.",
          // Fixed everyday instructions (the Alpaca stand-in).
          "Tell me about {subj}.",
          "Give me three tips for staying healthy.",
          "How do I bake a loaf of sourdough bread?",
          "Write a short poem about the ocean.",
          "Summarize the plot of Romeo and Juliet.",
          "What are the primary colors?",
          "Explain photosynthesis in simple terms.",
          "Recommend a good book about world history.",
          "Translate 'good morning' into French.",
          "What's a fun fact about octopuses?",
      };
  return *kTemplates;
}

const std::vector<std::string>& EraseTemplates() {
  static const std::vector<std::string>* const kTemplates =
      new std::vector<std::string>{
          "Forget that the {rel} of {subj} is {obj}.",
          "Delete the record that {subj}'s {rel} is {obj}.",
          "Remove the fact that the {rel} of {subj} is {obj}.",
          "The {rel} of {subj} is no longer {obj}.",
          "Retract the claim that {subj}'s {rel} is {obj}.",
          "Erase the knowledge that the {rel} of {subj} is {obj}.",
          "{subj}'s {rel} should not be listed as {obj} anymore.",
          "Withdraw the statement that the {rel} of {subj} is {obj}.",
      };
  return *kTemplates;
}

namespace {

std::string SurfaceRelation(const std::string& relation) {
  return StrReplaceAll(relation, "_", " ");
}

}  // namespace

std::string FillTemplate(const std::string& tpl, const std::string& subject,
                         const std::string& relation,
                         const std::string& object) {
  std::string out = StrReplaceAll(tpl, "{subj}", subject);
  out = StrReplaceAll(out, "{rel}", SurfaceRelation(relation));
  out = StrReplaceAll(out, "{obj}", object);
  return out;
}

std::string EditUtterance(const NamedTriple& triple, size_t template_index) {
  const auto& templates = EditTemplates();
  return FillTemplate(templates[template_index % templates.size()],
                      triple.subject, triple.relation, triple.object);
}

std::string EraseUtterance(const NamedTriple& triple, size_t template_index) {
  const auto& templates = EraseTemplates();
  return FillTemplate(templates[template_index % templates.size()],
                      triple.subject, triple.relation, triple.object);
}

std::string QueryUtterance(const std::string& subject,
                           const std::string& relation,
                           size_t template_index) {
  // Only the first five chat templates are slotted questions.
  const auto& templates = ChatTemplates();
  const size_t slotted = 5;
  return FillTemplate(templates[template_index % slotted], subject, relation,
                      "");
}

std::vector<IntentExample> GenerateIntentTrainingData(
    const UtteranceSpec& spec, size_t per_class, uint64_t seed) {
  std::vector<IntentExample> out;
  out.reserve(2 * per_class);
  Rng rng = Rng::ForStream(seed, "intent-train");

  const auto pick = [&rng](const std::vector<std::string>& pool,
                           const char* fallback) -> std::string {
    if (pool.empty()) return fallback;
    return pool[rng.NextBelow(pool.size())];
  };

  const auto& edit_templates = EditTemplates();
  for (size_t i = 0; i < per_class; ++i) {
    const std::string& tpl =
        edit_templates[rng.NextBelow(edit_templates.size())];
    out.push_back(IntentExample{
        FillTemplate(tpl, pick(spec.subjects, "Alice"),
                     pick(spec.relations, "title"),
                     pick(spec.objects, "Director")),
        Intent::kEdit});
  }

  const auto& chat_templates = ChatTemplates();
  for (size_t i = 0; i < per_class; ++i) {
    const std::string& tpl =
        chat_templates[rng.NextBelow(chat_templates.size())];
    out.push_back(IntentExample{
        FillTemplate(tpl, pick(spec.subjects, "Alice"),
                     pick(spec.relations, "title"),
                     pick(spec.objects, "Director")),
        Intent::kGenerate});
  }

  const auto& erase_templates = EraseTemplates();
  for (size_t i = 0; i < per_class; ++i) {
    const std::string& tpl =
        erase_templates[rng.NextBelow(erase_templates.size())];
    out.push_back(IntentExample{
        FillTemplate(tpl, pick(spec.subjects, "Alice"),
                     pick(spec.relations, "title"),
                     pick(spec.objects, "Director")),
        Intent::kErase});
  }
  return out;
}

}  // namespace oneedit
