#ifndef ONEEDIT_NLP_INTENT_CLASSIFIER_H_
#define ONEEDIT_NLP_INTENT_CLASSIFIER_H_

#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace oneedit {

/// User intent recognized by the Interpreter (paper Eq. 4, extended with
/// erasure — the paper's abstract covers "add, modify, or erase").
enum class Intent {
  kEdit,      ///< change knowledge -> extract a triple, edit stores
  kGenerate,  ///< ordinary query/chat -> forward to the LLM
  kErase,     ///< retract knowledge -> extract a triple, remove/suppress
};

std::string IntentName(Intent intent);

/// A labeled training utterance.
struct IntentExample {
  std::string text;
  Intent label = Intent::kGenerate;
};

/// Prediction with a calibrated-ish confidence (posterior probability).
struct IntentPrediction {
  Intent intent = Intent::kGenerate;
  double confidence = 0.5;
};

/// Multinomial naive-Bayes intent classifier over bag-of-words features,
/// over any number of intent classes.
///
/// Stand-in for the paper's instruction-tuned MiniCPM-2B: trained at startup
/// on synthetically generated edit / erase / chat utterances produced by
/// nlp/utterance_generator.
class IntentClassifier {
 public:
  IntentClassifier() = default;

  /// Trains from scratch on `examples` (Laplace smoothing alpha = 1).
  void Train(const std::vector<IntentExample>& examples);

  bool trained() const { return trained_; }

  IntentPrediction Predict(std::string_view text) const;

  size_t vocabulary_size() const { return vocabulary_.size(); }
  size_t num_classes() const { return classes_.size(); }

 private:
  struct ClassStats {
    double log_prior = 0.0;
    std::unordered_map<std::string, double> token_counts;
    double total_tokens = 0.0;
    size_t documents = 0;
  };

  double LogLikelihood(const ClassStats& stats,
                       const std::vector<std::string>& tokens) const;

  std::map<Intent, ClassStats> classes_;
  std::unordered_map<std::string, bool> vocabulary_;
  bool trained_ = false;
};

}  // namespace oneedit

#endif  // ONEEDIT_NLP_INTENT_CLASSIFIER_H_
