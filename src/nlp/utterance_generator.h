#ifndef ONEEDIT_NLP_UTTERANCE_GENERATOR_H_
#define ONEEDIT_NLP_UTTERANCE_GENERATOR_H_

#include <string>
#include <vector>

#include "kg/named_triple.h"
#include "nlp/intent_classifier.h"

namespace oneedit {

/// Edit-intent templates with {subj} / {rel} / {obj} slots — our stand-in
/// for the paper's "ten manual examples expanded with GPT-4" (§3.3).
const std::vector<std::string>& EditTemplates();

/// Generate-intent (chat / question) templates — the Alpaca stand-in. Some
/// use {subj} / {rel}; others are fixed everyday requests.
const std::vector<std::string>& ChatTemplates();

/// Erase-intent templates ("Forget that the {rel} of {subj} is {obj}.").
const std::vector<std::string>& EraseTemplates();

/// Replaces {subj} {rel} {obj} in `tpl`. Relation names are surfaced with
/// underscores turned into spaces ("first_lady" -> "first lady").
std::string FillTemplate(const std::string& tpl, const std::string& subject,
                         const std::string& relation,
                         const std::string& object);

/// Natural-language edit command for `triple` using the template at
/// `template_index` (mod the template count).
std::string EditUtterance(const NamedTriple& triple, size_t template_index);

/// Natural-language erase command for `triple`.
std::string EraseUtterance(const NamedTriple& triple, size_t template_index);

/// Natural-language question "What is the <relation> of <subject>?" style,
/// using the chat template at `template_index` (mod the slotted ones).
std::string QueryUtterance(const std::string& subject,
                           const std::string& relation,
                           size_t template_index);

/// Materials for training-data generation.
struct UtteranceSpec {
  std::vector<std::string> subjects;
  std::vector<std::string> relations;  ///< canonical names (underscored ok)
  std::vector<std::string> objects;
};

/// Builds a balanced labeled training set (edit + generate + erase) of
/// `per_class` examples each, deterministically from `seed`.
std::vector<IntentExample> GenerateIntentTrainingData(
    const UtteranceSpec& spec, size_t per_class, uint64_t seed);

}  // namespace oneedit

#endif  // ONEEDIT_NLP_UTTERANCE_GENERATOR_H_
