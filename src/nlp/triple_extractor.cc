#include "nlp/triple_extractor.h"

#include "nlp/tokenizer.h"

namespace oneedit {

StatusOr<NamedTriple> TripleExtractor::Extract(std::string_view text) const {
  const std::vector<std::string> tokens = Tokenize(text);
  const std::vector<PhraseMatch> relation_matches =
      relations_.FindMatches(tokens);
  if (relation_matches.empty()) {
    return Status::NotFound("no relation phrase in: " + std::string(text));
  }
  const std::vector<PhraseMatch> entity_matches = entities_.FindMatches(tokens);
  if (entity_matches.size() < 2) {
    return Status::NotFound("need two entity mentions in: " +
                            std::string(text));
  }

  // Prefer the relation whose span does not overlap an entity span (entity
  // names may contain relation words).
  const PhraseMatch* relation = &relation_matches.front();
  for (const PhraseMatch& candidate : relation_matches) {
    bool overlaps = false;
    for (const PhraseMatch& entity : entity_matches) {
      if (candidate.begin < entity.end && entity.begin < candidate.end) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) {
      relation = &candidate;
      break;
    }
  }

  // Pattern "{rel} of <entity>": the trailing entity is the subject.
  const PhraseMatch* subject = nullptr;
  if (relation->end < tokens.size() && tokens[relation->end] == "of") {
    for (const PhraseMatch& entity : entity_matches) {
      // Allow an article between "of" and the entity ("of the USA").
      const size_t gap_start = relation->end + 1;
      if (entity.begin == gap_start ||
          (entity.begin == gap_start + 1 && (tokens[gap_start] == "the" ||
                                             tokens[gap_start] == "a" ||
                                             tokens[gap_start] == "an"))) {
        subject = &entity;
        break;
      }
    }
  }
  if (subject == nullptr) {
    // Fall back: first entity mention is the subject.
    subject = &entity_matches.front();
  }

  // Object: the last entity mention that is not the subject.
  const PhraseMatch* object = nullptr;
  for (const PhraseMatch& entity : entity_matches) {
    if (&entity == subject) continue;
    object = &entity;
  }
  if (object == nullptr) {
    return Status::NotFound("could not find an object mention in: " +
                            std::string(text));
  }

  return NamedTriple{subject->canonical, relation->canonical,
                     object->canonical};
}

StatusOr<std::pair<std::string, std::string>> TripleExtractor::ExtractQuery(
    std::string_view text) const {
  const std::vector<std::string> tokens = Tokenize(text);
  const std::vector<PhraseMatch> relation_matches =
      relations_.FindMatches(tokens);
  if (relation_matches.empty()) {
    return Status::NotFound("no relation phrase in question: " +
                            std::string(text));
  }
  const std::vector<PhraseMatch> entity_matches = entities_.FindMatches(tokens);
  if (entity_matches.empty()) {
    return Status::NotFound("no entity mention in question: " +
                            std::string(text));
  }
  const PhraseMatch& relation = relation_matches.front();
  // Prefer the first entity mentioned after the relation ("the governor of
  // Ashfield"); otherwise the first mention overall ("Ashfield's governor").
  for (const PhraseMatch& entity : entity_matches) {
    if (entity.begin >= relation.end) {
      return std::make_pair(entity.canonical, relation.canonical);
    }
  }
  return std::make_pair(entity_matches.front().canonical, relation.canonical);
}

}  // namespace oneedit
