#ifndef ONEEDIT_NLP_TRIPLE_EXTRACTOR_H_
#define ONEEDIT_NLP_TRIPLE_EXTRACTOR_H_

#include <string>
#include <string_view>
#include <utility>

#include "kg/named_triple.h"
#include "nlp/gazetteer.h"
#include "util/statusor.h"

namespace oneedit {

/// Slot-filling triple extractor over the edit-command grammar.
///
/// The extractor holds two gazetteers — entity surface forms (canonical
/// names + aliases) and relation surface forms — and parses an edit
/// utterance into (subject, relation, object):
///
///  1. longest-match relation and entity spans are located;
///  2. if the relation is followed by "of <entity>", that entity is the
///     subject ("the president of the USA ..."), the remaining entity the
///     object;
///  3. otherwise the first entity mention is the subject
///     ("Biden's wife is Jill");
///  4. extraction fails with NotFound if a relation or two entities are
///     missing.
///
/// Returned names are canonical (aliases resolved by the entity gazetteer).
class TripleExtractor {
 public:
  TripleExtractor() = default;

  /// Registers an entity surface form. Call once per name/alias.
  void AddEntity(const std::string& surface, const std::string& canonical) {
    entities_.AddPhrase(surface, canonical);
  }

  /// Registers a relation surface form ("first lady" -> "first_lady").
  void AddRelation(const std::string& surface, const std::string& canonical) {
    relations_.AddPhrase(surface, canonical);
  }

  size_t num_entities() const { return entities_.size(); }
  size_t num_relations() const { return relations_.size(); }

  /// Parses one edit utterance into a canonical triple.
  StatusOr<NamedTriple> Extract(std::string_view text) const;

  /// Parses a question like "What is the governor of Ashfield?" into the
  /// queried slot (subject, relation). Requires exactly one relation phrase
  /// and at least one entity mention; the entity nearest after the relation
  /// (or the first one) is the subject.
  StatusOr<std::pair<std::string, std::string>> ExtractQuery(
      std::string_view text) const;

 private:
  Gazetteer entities_;
  Gazetteer relations_;
};

}  // namespace oneedit

#endif  // ONEEDIT_NLP_TRIPLE_EXTRACTOR_H_
