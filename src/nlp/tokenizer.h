#ifndef ONEEDIT_NLP_TOKENIZER_H_
#define ONEEDIT_NLP_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace oneedit {

/// Lower-cases, separates punctuation, normalizes possessive "'s" into the
/// standalone token "'s", and splits on whitespace.
///
/// "Change the President of the USA to Biden!" ->
/// ["change", "the", "president", "of", "the", "usa", "to", "biden", "!"]
std::vector<std::string> Tokenize(std::string_view text);

/// Joins tokens back with single spaces (for logging / tests).
std::string Detokenize(const std::vector<std::string>& tokens);

}  // namespace oneedit

#endif  // ONEEDIT_NLP_TOKENIZER_H_
