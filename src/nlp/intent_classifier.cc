#include "nlp/intent_classifier.h"

#include <cmath>

#include "nlp/tokenizer.h"

namespace oneedit {

std::string IntentName(Intent intent) {
  switch (intent) {
    case Intent::kEdit:
      return "edit";
    case Intent::kGenerate:
      return "generate";
    case Intent::kErase:
      return "erase";
  }
  return "?";
}

void IntentClassifier::Train(const std::vector<IntentExample>& examples) {
  classes_.clear();
  vocabulary_.clear();

  size_t total_docs = 0;
  for (const IntentExample& example : examples) {
    ClassStats& stats = classes_[example.label];
    stats.documents += 1;
    ++total_docs;
    for (const std::string& token : Tokenize(example.text)) {
      stats.token_counts[token] += 1.0;
      stats.total_tokens += 1.0;
      vocabulary_[token] = true;
    }
  }
  const double denominator =
      static_cast<double>(total_docs) + static_cast<double>(classes_.size());
  for (auto& [intent, stats] : classes_) {
    stats.log_prior = std::log((stats.documents + 1.0) / denominator);
  }
  trained_ = !classes_.empty();
}

double IntentClassifier::LogLikelihood(
    const ClassStats& stats, const std::vector<std::string>& tokens) const {
  const double vocab = static_cast<double>(vocabulary_.size()) + 1.0;
  double ll = stats.log_prior;
  for (const std::string& token : tokens) {
    auto it = stats.token_counts.find(token);
    const double count = it == stats.token_counts.end() ? 0.0 : it->second;
    ll += std::log((count + 1.0) / (stats.total_tokens + vocab));
  }
  return ll;
}

IntentPrediction IntentClassifier::Predict(std::string_view text) const {
  IntentPrediction out;
  if (!trained_) return out;
  const std::vector<std::string> tokens = Tokenize(text);

  // Arg-max posterior with a softmax-style confidence.
  double best_ll = -1e300;
  double max_ll = -1e300;
  std::map<Intent, double> likelihoods;
  for (const auto& [intent, stats] : classes_) {
    const double ll = LogLikelihood(stats, tokens);
    likelihoods[intent] = ll;
    if (ll > best_ll) {
      best_ll = ll;
      out.intent = intent;
    }
    if (ll > max_ll) max_ll = ll;
  }
  double normalizer = 0.0;
  for (const auto& [intent, ll] : likelihoods) {
    normalizer += std::exp(ll - max_ll);
  }
  out.confidence = std::exp(best_ll - max_ll) / normalizer;
  return out;
}

}  // namespace oneedit
