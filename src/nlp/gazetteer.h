#ifndef ONEEDIT_NLP_GAZETTEER_H_
#define ONEEDIT_NLP_GAZETTEER_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace oneedit {

/// A phrase match found in a token sequence.
struct PhraseMatch {
  size_t begin = 0;      ///< first token index
  size_t end = 0;        ///< one past the last token index
  std::string canonical; ///< canonical name the phrase maps to
};

/// Longest-match phrase dictionary over tokenized text.
///
/// The triple extractor uses two gazetteers: one for entity surface forms
/// (canonical names + aliases) and one for relation surface forms
/// ("first lady" -> "first_lady").
class Gazetteer {
 public:
  Gazetteer() = default;

  /// Registers `phrase` (tokenized internally) as a surface form of
  /// `canonical`. Later registrations of the same phrase win.
  void AddPhrase(const std::string& phrase, const std::string& canonical);

  size_t size() const { return phrases_.size(); }

  /// Non-overlapping matches, scanning left to right, preferring the longest
  /// phrase at each position.
  std::vector<PhraseMatch> FindMatches(
      const std::vector<std::string>& tokens) const;

 private:
  // Tokenized phrase joined by ' ' -> canonical.
  std::unordered_map<std::string, std::string> phrases_;
  size_t max_phrase_tokens_ = 0;
};

}  // namespace oneedit

#endif  // ONEEDIT_NLP_GAZETTEER_H_
