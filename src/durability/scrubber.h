#ifndef ONEEDIT_DURABILITY_SCRUBBER_H_
#define ONEEDIT_DURABILITY_SCRUBBER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/statistics.h"
#include "durability/manager.h"

namespace oneedit {
namespace durability {

struct ScrubOptions {
  /// Run the scrubber background thread at all. Off by default: tests and
  /// single-purpose tools opt in; the serving layer turns it on explicitly.
  bool enabled = false;
  /// Pause between verification passes.
  std::chrono::milliseconds interval{1000};
  /// Read-rate ceiling for a pass; 0 = unthrottled. The scrubber reads the
  /// journal in ReadFileRange chunks and sleeps between them so a pass over
  /// a large log never stalls the writer's I/O.
  uint64_t max_bytes_per_second = 8u << 20;
};

/// One piece of bit-rot the scrubber found.
struct ScrubFinding {
  enum class Target { kWal, kCheckpoint };
  Target target = Target::kWal;
  /// WAL only: byte offset of the first bad frame (the repair splice point).
  uint64_t corrupt_offset = 0;
  /// WAL only: highest sequence provably intact below the corruption
  /// (journal records before the bad frame, or the checkpoint's coverage
  /// when the journal's own prefix has none). Repair fetches
  /// [last_intact_sequence + 1 .. committed].
  uint64_t last_intact_sequence = 0;
  std::string detail;
};

/// Background integrity scrubber: periodically re-reads the edit WAL and the
/// checkpoint, re-verifying frame and section CRCs end-to-end, so bit-rot is
/// detected while replicas that can supply a clean copy still exist — not at
/// the next restart, when it is a recovery failure.
///
/// The WAL walk reuses EditWal::Cursor (streaming, rotation-aware), so a
/// concurrent writer is never blocked and a checkpoint rotation mid-pass
/// just restarts the pass. A *final-frame* bit flip is frame-wise
/// indistinguishable from a torn tail, so the pass also cross-checks: any
/// sequence committed before the pass began must be covered by the journal
/// or the checkpoint at the end of it — a shortfall is tail corruption.
class Scrubber {
 public:
  using CorruptionCallback = std::function<void(const ScrubFinding&)>;

  /// `durability` must outlive the scrubber. `on_corruption` (may be null)
  /// runs on the scrubber thread once per finding, after the finding has
  /// been counted — the serving layer hangs replica-assisted repair off it.
  Scrubber(DurabilityManager* durability, Statistics* stats,
           ScrubOptions options, CorruptionCallback on_corruption);
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Launches the background thread (no-op when already running).
  void Start();

  /// Stops and joins the background thread. Safe to call repeatedly.
  void Stop();

  /// One synchronous verification pass (also what the thread runs). Counts
  /// the pass, counts and reports findings, invokes the callback.
  std::vector<ScrubFinding> ScrubOnce();

  uint64_t passes() const { return passes_.load(); }
  uint64_t corruptions_found() const { return corruptions_found_.load(); }

  /// Human-readable detail of the most recent finding; empty while clean.
  /// Cleared when a later pass comes back clean (e.g. after a repair).
  std::string last_finding() const;

 private:
  void Loop();
  /// Rate limit: charge `bytes` read and sleep when over budget.
  void Throttle(uint64_t bytes);
  void ScrubWal(std::vector<ScrubFinding>* findings);
  void ScrubCheckpoint(std::vector<ScrubFinding>* findings);

  DurabilityManager* durability_;
  Statistics* stats_;
  ScrubOptions options_;
  CorruptionCallback on_corruption_;
  Env* env_;

  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> corruptions_found_{0};

  mutable std::mutex mutex_;
  std::string last_finding_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
  /// Throttle bucket: bytes charged since the last sleep.
  uint64_t throttle_bytes_ = 0;
};

}  // namespace durability
}  // namespace oneedit

#endif  // ONEEDIT_DURABILITY_SCRUBBER_H_
