#include "durability/fault_env.h"

#include <cstdlib>

namespace oneedit {
namespace durability {
namespace {

Status InjectedCrash() {
  return Status::IoError("injected crash (FaultInjectingEnv)");
}

}  // namespace

/// Pass-through file that consults the env's failpoint counter on every
/// Append/Sync. Close after a crash silently succeeds without touching the
/// base file: the bytes already written stay, nothing buffered is flushed —
/// exactly the on-disk state a killed process leaves behind.
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(FaultInjectingEnv* env,
                     std::unique_ptr<WritableFile> base)
      : env_(env), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    if (env_->crashed()) return InjectedCrash();
    if (env_->ShouldFail()) {
      // Torn write: half the record reaches the kernel before the "crash".
      (void)base_->Append(data.substr(0, data.size() / 2));
      return InjectedCrash();
    }
    ONEEDIT_RETURN_IF_ERROR(env_->DebitDiskBudget(data.size()));
    return base_->Append(data);
  }

  Status Sync() override {
    if (env_->crashed() || env_->ShouldFail()) return InjectedCrash();
    return base_->Sync();
  }

  Status Close() override {
    if (env_->crashed()) return Status::OK();
    return base_->Close();
  }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

void FaultInjectingEnv::CrashAt(long op) {
  ops_seen_.store(0);
  crashed_.store(false);
  crash_at_.store(op);
}

void FaultInjectingEnv::Clear() {
  ops_seen_.store(0);
  crashed_.store(false);
  crash_at_.store(-1);
  fail_next_.store(0);
  std::lock_guard<std::mutex> lock(intermittent_mutex_);
  intermittent_p_ = 0.0;
}

void FaultInjectingEnv::FailNext(long n) { fail_next_.store(n); }

void FaultInjectingEnv::SetDiskBudget(long bytes) {
  disk_budget_.store(bytes < 0 ? -1 : bytes);
}

void FaultInjectingEnv::AddDiskBudget(long bytes) {
  long current = disk_budget_.load();
  while (current >= 0 &&
         !disk_budget_.compare_exchange_weak(current, current + bytes)) {
  }
}

Status FaultInjectingEnv::DebitDiskBudget(size_t bytes) {
  const long need = static_cast<long>(bytes);
  long current = disk_budget_.load();
  while (current >= 0) {
    if (current < need) {
      // Non-latching, like a real full disk: frees (AddDiskBudget) make
      // subsequent writes succeed again.
      return Status::ResourceExhausted(
          "no space left on device (injected disk budget)");
    }
    if (disk_budget_.compare_exchange_weak(current, current - need)) break;
  }
  return Status::OK();
}

void FaultInjectingEnv::SetIntermittent(double p, uint64_t seed) {
  std::lock_guard<std::mutex> lock(intermittent_mutex_);
  intermittent_p_ = p;
  intermittent_rng_.Seed(seed);
}

bool FaultInjectingEnv::ShouldFail() {
  const long op = ops_seen_.fetch_add(1);
  if (crash_at_.load() >= 0 && op == crash_at_.load()) {
    crashed_.store(true);
    if (exit_on_crash_) std::_Exit(137);
    return true;
  }
  // Transient (non-latching) modes: a bounded burst, then a coin flip.
  long remaining = fail_next_.load();
  while (remaining > 0 &&
         !fail_next_.compare_exchange_weak(remaining, remaining - 1)) {
  }
  if (remaining > 0) {
    transient_failures_.fetch_add(1);
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(intermittent_mutex_);
    if (intermittent_p_ > 0.0 &&
        intermittent_rng_.NextBool(intermittent_p_)) {
      transient_failures_.fetch_add(1);
      return true;
    }
  }
  return false;
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  if (crashed_.load()) return InjectedCrash();
  // A truncating open destroys data (WAL rotation), so it is a failpoint;
  // an appending open is passive and always passes through.
  if (truncate && ShouldFail()) return InjectedCrash();
  ONEEDIT_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectingFile>(this, std::move(file)));
}

Status FaultInjectingEnv::ReadFileToString(const std::string& path,
                                           std::string* out) {
  return base_->ReadFileToString(path, out);
}

Status FaultInjectingEnv::ReadFileRange(const std::string& path,
                                        uint64_t offset, size_t max_bytes,
                                        std::string* out) {
  // Reads are not failpoints (matching ReadFileToString): the chaos and
  // crash harnesses model a dying writer, and the replication reader keeps
  // streaming whatever the dead process left on disk.
  return base_->ReadFileRange(path, offset, max_bytes, out);
}

StatusOr<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (crashed_.load() || ShouldFail()) return InjectedCrash();
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  if (crashed_.load() || ShouldFail()) return InjectedCrash();
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status FaultInjectingEnv::SyncDir(const std::string& path) {
  // A directory fsync is a durability sync point exactly like a file fsync,
  // so it participates in the numbered-failpoint crash schedule.
  if (crashed_.load() || ShouldFail()) return InjectedCrash();
  return base_->SyncDir(path);
}

StatusOr<uint64_t> FaultInjectingEnv::FreeDiskSpace(const std::string& path) {
  const long budget = disk_budget_.load();
  if (budget >= 0) return static_cast<uint64_t>(budget);
  return base_->FreeDiskSpace(path);
}

Status FaultInjectingEnv::ListDir(const std::string& path,
                                  std::vector<std::string>* out) {
  // A read-type op, not a failpoint — keeps crash-schedule numbering stable.
  return base_->ListDir(path, out);
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  // Destroys data (the WAL-repair splice), so it is a failpoint.
  if (crashed_.load() || ShouldFail()) return InjectedCrash();
  return base_->TruncateFile(path, size);
}

}  // namespace durability
}  // namespace oneedit
