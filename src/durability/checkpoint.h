#ifndef ONEEDIT_DURABILITY_CHECKPOINT_H_
#define ONEEDIT_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "core/oneedit.h"
#include "durability/env.h"

namespace oneedit {
namespace durability {

/// Durability metadata stored alongside the snapshot sections.
struct CheckpointState {
  /// Last edit sequence number whose effects the snapshot contains; WAL
  /// records at or below it are redundant after the checkpoint publishes.
  uint64_t last_sequence = 0;
  /// KG mutation counter at snapshot time (diagnostic, reported on load).
  uint64_t kg_version = 0;
  /// Highest primary term (election epoch) this node has observed. Fencing
  /// decisions survive restart through this field: a node whose role says
  /// primary but whose observed term exceeds the term it last won boots
  /// fenced instead of dual-serving.
  uint64_t primary_term = 0;
  /// Highest term this node itself won via Promote (what it stamps into the
  /// records it journals). primary_term > owned_term means the node has
  /// been deposed.
  uint64_t owned_term = 0;
  /// Term of the last record applied/journaled locally — the follower half
  /// of the divergence comparison on reconnect.
  uint64_t applied_term = 0;
  /// Committed sequence at the moment owned_term began: records above it
  /// under an older term were written by a deposed primary and must be
  /// truncated on reconciliation.
  uint64_t term_start_sequence = 0;
};

/// Writes an atomic whole-system checkpoint: model weights + KG triples +
/// edit cache, each section CRC32-framed, serialized to `path + ".tmp"` and
/// atomically renamed onto `path`. A crash at any point leaves either the
/// previous checkpoint or the new one — never a torn file under `path`.
Status SaveSystemCheckpoint(const std::string& path, Env* env,
                            OneEditSystem& system,
                            const CheckpointState& state);

/// Validates every section CRC, then restores `system` to the snapshot:
/// weights are overwritten, the KG is diff-restored to the snapshot's
/// triple set, the edit cache is replaced, and cached adaptor-only deltas
/// (GRACE/SERAC codebooks, which live outside the weights) are re-armed for
/// triples the restored KG still asserts. Fails with Corruption before
/// touching `system` if any section is torn or corrupt.
StatusOr<CheckpointState> LoadSystemCheckpoint(const std::string& path,
                                               Env* env,
                                               OneEditSystem* system);

/// CRC-validates every section of an in-memory checkpoint image without
/// restoring anything. `path` labels error messages only. The repair path
/// verifies peer-fetched images with this before installing them.
StatusOr<CheckpointState> VerifyCheckpointImage(std::string_view image,
                                                const std::string& path);

/// Reads `path` end-to-end and CRC-validates every section without touching
/// any system state — the scrubber's bit-rot detector for checkpoints.
StatusOr<CheckpointState> VerifyCheckpointIntegrity(const std::string& path,
                                                    Env* env);

/// Reads only the checkpoint header (magic, version, sequence metadata)
/// without validating or restoring the sections. The replication server
/// uses this to decide whether a follower behind the WAL head needs a full
/// snapshot install, without paying for a load.
StatusOr<CheckpointState> PeekCheckpointState(const std::string& path,
                                              Env* env);

}  // namespace durability
}  // namespace oneedit

#endif  // ONEEDIT_DURABILITY_CHECKPOINT_H_
