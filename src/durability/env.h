#ifndef ONEEDIT_DURABILITY_ENV_H_
#define ONEEDIT_DURABILITY_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace oneedit {
namespace durability {

/// A sequential append-only file handle. Implementations write through to
/// the kernel on every Append (no user-space buffering), so a process crash
/// ("kill -9") loses at most the bytes of the append in flight — the torn
/// tail the WAL replay path is built to tolerate. Sync additionally fsyncs
/// so the data survives power loss.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The file-ops seam under all durability code (WAL, checkpoints). The
/// default implementation is thin POSIX; tests substitute FaultInjectingEnv
/// to fail or "crash" at any sync point.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide POSIX environment (never null, never deleted).
  static Env* Default();

  /// Opens `path` for writing; truncates when `truncate`, else appends.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Replaces `*out` with the entire contents of `path`.
  virtual Status ReadFileToString(const std::string& path,
                                  std::string* out) = 0;

  /// Replaces `*out` with up to `max_bytes` bytes of `path` starting at byte
  /// `offset`; shorter (possibly empty) at end-of-file. The streaming-read
  /// primitive under EditWal::Cursor — a WAL shipper must not re-read the
  /// whole log on every poll.
  virtual Status ReadFileRange(const std::string& path, uint64_t offset,
                               size_t max_bytes, std::string* out) = 0;

  /// Current size of `path` in bytes. NotFound when it does not exist.
  virtual StatusOr<uint64_t> FileSize(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Atomically renames `from` onto `to` (the checkpoint publish step).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Removes `path`; OK if it does not exist.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Creates `path` (one level); OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Fsyncs the directory `path` itself so a preceding rename of an entry
  /// inside it survives power loss. A temp+rename publish is only durable
  /// once the parent directory's entry table has hit stable storage.
  virtual Status SyncDir(const std::string& path) = 0;

  /// Bytes currently available to unprivileged writers on the filesystem
  /// holding `path`.
  virtual StatusOr<uint64_t> FreeDiskSpace(const std::string& path) = 0;

  /// Replaces `*out` with the entry names (not paths) in directory `path`,
  /// excluding "." and "..".
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* out) = 0;

  /// Truncates `path` to exactly `size` bytes. The splice primitive under
  /// replica-assisted WAL repair: cut at the corrupt frame, then re-append
  /// clean bytes fetched from a peer.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
};

}  // namespace durability
}  // namespace oneedit

#endif  // ONEEDIT_DURABILITY_ENV_H_
