#include "durability/manager.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "durability/checkpoint.h"

namespace oneedit {
namespace durability {
namespace {

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

DurabilityManager::DurabilityManager(const DurabilityOptions& options)
    : options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()),
      wal_path_(options.dir + "/edits.wal"),
      checkpoint_path_(options.dir + "/checkpoint.oedc") {}

StatusOr<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    const DurabilityOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("durability dir must not be empty");
  }
  std::unique_ptr<DurabilityManager> manager(new DurabilityManager(options));
  ONEEDIT_RETURN_IF_ERROR(manager->env_->CreateDir(options.dir));
  // Sweep stale *.tmp files: a crash between checkpoint write and rename
  // leaks its temp file forever (no later save removes a differently-timed
  // leftover, and it eats disk budget). Best-effort — a sweep failure must
  // not stop the service from opening its journal.
  std::vector<std::string> entries;
  if (manager->env_->ListDir(options.dir, &entries).ok()) {
    for (const std::string& name : entries) {
      constexpr std::string_view kTmpSuffix = ".tmp";
      if (name.size() < kTmpSuffix.size() ||
          name.compare(name.size() - kTmpSuffix.size(), kTmpSuffix.size(),
                       kTmpSuffix) != 0) {
        continue;
      }
      if (manager->env_->RemoveFile(options.dir + "/" + name).ok()) {
        ++manager->tmp_files_swept_;
      }
    }
  }
  ONEEDIT_RETURN_IF_ERROR(manager->wal_.Open(manager->wal_path_,
                                             manager->env_));
  return manager;
}

StatusOr<RecoveryReport> DurabilityManager::Recover(
    OneEditSystem* system, const ReplayApplier& applier) {
  if (system == nullptr) return Status::InvalidArgument("null system");
  RecoveryReport report;

  if (env_->FileExists(checkpoint_path_)) {
    ONEEDIT_ASSIGN_OR_RETURN(
        const CheckpointState state,
        LoadSystemCheckpoint(checkpoint_path_, env_, system));
    report.checkpoint_loaded = true;
    report.checkpoint_sequence = state.last_sequence;
    report.checkpoint_kg_version = state.kg_version;
    report.last_sequence = state.last_sequence;
    primary_term_ = state.primary_term;
    owned_term_ = state.owned_term;
    applied_term_ = state.applied_term;
    term_start_sequence_ = state.term_start_sequence;
  }

  // Pass 1: collect quarantine verdicts. A verdict is journaled AFTER the
  // batch whose record it condemns, so a streaming replay would apply the
  // poison before learning its fate; the pre-scan lets pass 2 remove
  // condemned records from their batch up front.
  std::unordered_set<uint64_t> condemned;
  ONEEDIT_RETURN_IF_ERROR(
      EditWal::Replay(wal_path_, env_,
                      [&](const EditWalRecord& record) -> Status {
                        if (record.quarantine) {
                          condemned.insert(record.quarantined_sequence);
                        }
                        return Status::OK();
                      },
                      /*salvage=*/true)
          .status());

  // Pass 2: replay the WAL tail, regrouping records into the writer's
  // original coalesced batches at first_in_batch boundaries so
  // batch-dependent methods (MEMIT joint edits) replay with identical
  // semantics.
  ReplayBatch batch;
  uint64_t prev_sequence = 0;
  bool have_prev = false;
  auto flush = [&]() {
    if (batch.requests.empty()) {
      batch = ReplayBatch{};
      return;
    }
    // Per-slot failures reproduce the original run (e.g. guard rejections)
    // and must not abort recovery.
    if (applier != nullptr) {
      applier(batch);
    } else {
      (void)system->EditBatch(batch.requests);
    }
    batch = ReplayBatch{};
  };
  WalReplayStats wal_stats;
  const Status replay_status = [&] {
    ONEEDIT_ASSIGN_OR_RETURN(
        wal_stats,
        EditWal::Replay(
            wal_path_, env_, [&](const EditWalRecord& record) -> Status {
              if (record.method != system->config().method) {
                return Status::FailedPrecondition(
                    "edit WAL was written with method " +
                    MethodKindName(record.method) +
                    " but the system is configured with " +
                    MethodKindName(system->config().method));
              }
              if (have_prev && record.sequence != prev_sequence + 1) {
                return Status::Corruption(
                    "edit WAL sequence gap: " +
                    std::to_string(prev_sequence) + " -> " +
                    std::to_string(record.sequence) + " in " + wal_path_);
              }
              if (!have_prev && report.checkpoint_loaded &&
                  record.sequence > report.checkpoint_sequence + 1) {
                return Status::Corruption(
                    "edit WAL starts at sequence " +
                    std::to_string(record.sequence) +
                    " but the checkpoint only covers up to " +
                    std::to_string(report.checkpoint_sequence));
              }
              prev_sequence = record.sequence;
              have_prev = true;
              // The WAL tail is newer than the checkpoint's term snapshot;
              // the terms its records carry are part of the durable state.
              applied_term_ = record.term;
              AdoptTerm(record.term);
              // 2PC bookkeeping runs for EVERY record in order — including
              // ones the checkpoint already covers (a crash between the
              // checkpoint rename and the WAL rotation leaves markers below
              // the checkpoint sequence that still name live transactions).
              if (record.txn_marker != TxnMarker::kNone ||
                  record.txn_id != 0) {
                std::lock_guard<std::mutex> lock(txn_mutex_);
                TxnBookkeepingLocked(record);
              }
              if (record.sequence <= report.checkpoint_sequence) {
                ++report.skipped_records;
                return Status::OK();
              }
              if (record.txn_marker != TxnMarker::kNone) {
                // Markers consume a sequence but are never applied; the
                // pending batch stays pending, as with verdicts.
                ++report.txn_markers;
                report.last_sequence = record.sequence;
                return Status::OK();
              }
              if (record.quarantine) {
                // Verdicts consume a sequence but carry no edit; they never
                // open a batch, so the pending batch stays pending.
                ++report.quarantine_records;
                report.last_sequence = record.sequence;
                return Status::OK();
              }
              if (record.first_in_batch) {
                flush();
                batch.first_sequence = record.sequence;
              }
              if (condemned.count(record.sequence) > 0) {
                ++report.quarantined_skipped;
              } else {
                batch.requests.push_back(record.request);
                batch.sequences.push_back(record.sequence);
                ++report.replayed_records;
              }
              report.last_sequence = record.sequence;
              return Status::OK();
            },
            /*salvage=*/true));
    report.torn_bytes_dropped = wal_stats.torn_bytes_dropped;
    // Mid-log bit-rot: the intact prefix above was salvaged; surface the
    // loss so the serving layer starts degraded instead of pretending the
    // abandoned suffix never existed.
    report.wal_corruption_detected = wal_stats.corruption_detected;
    report.wal_corrupt_offset = wal_stats.corrupt_offset;
    report.wal_lost_bytes = wal_stats.lost_bytes;
    return Status::OK();
  }();
  ONEEDIT_RETURN_IF_ERROR(replay_status);
  flush();

  // A torn tail is a clean end of log — but only while it stays the tail.
  // The append handle sits at end-of-file, so leaving the torn bytes in
  // place would entomb every future record behind garbage that the next
  // replay abandons as mid-log corruption. Cut the tail off now, with the
  // same splice discipline as RepairWal: close the handle around the
  // truncate so no stale kernel file offset survives the cut.
  if (wal_stats.torn_bytes_dropped > 0) {
    ONEEDIT_ASSIGN_OR_RETURN(const uint64_t wal_size,
                             env_->FileSize(wal_path_));
    wal_.Close();
    ONEEDIT_RETURN_IF_ERROR(env_->TruncateFile(
        wal_path_, wal_size - wal_stats.torn_bytes_dropped));
    ONEEDIT_RETURN_IF_ERROR(wal_.Open(wal_path_, env_));
  }

  // Integrity check: the recovered commit point must equal the highest
  // durable sequence, cross-checked against the replayer's own independent
  // accounting of the last intact record.
  const uint64_t durable = wal_stats.records > 0
                               ? std::max(wal_stats.last_sequence,
                                          report.checkpoint_sequence)
                               : report.checkpoint_sequence;
  if (durable != report.last_sequence) {
    return Status::Corruption("recovered sequence " +
                              std::to_string(report.last_sequence) +
                              " does not match last durable WAL sequence " +
                              std::to_string(durable));
  }

  next_sequence_ = report.last_sequence + 1;
  committed_sequence_ = report.last_sequence;
  edits_since_checkpoint_ = report.replayed_records;
  system->statistics().Add(Ticker::kRecoveredRecords,
                           report.replayed_records);
  return report;
}

void DurabilityManager::TxnBookkeepingLocked(const EditWalRecord& record) {
  if (record.txn_id != 0 && record.txn_id > max_txn_id_) {
    max_txn_id_ = record.txn_id;
  }
  switch (record.txn_marker) {
    case TxnMarker::kPrepare: {
      PreparedTxn txn;
      txn.txn_id = record.txn_id;
      txn.coordinator_shard = record.txn_coordinator;
      txn.half = record.request;
      txn.half.txn_id = record.txn_id;
      outstanding_[record.txn_id] = std::move(txn);
      return;
    }
    case TxnMarker::kCommitDecision:
      committed_txns_.insert(record.txn_id);
      return;
    case TxnMarker::kAbortDecision:
      outstanding_.erase(record.txn_id);
      return;
    case TxnMarker::kNone:
      // A txn-tagged apply record settles its prepare: the half is durable
      // in sequence order and will replay as a normal edit.
      if (record.txn_id != 0) outstanding_.erase(record.txn_id);
      return;
  }
}

Status DurabilityManager::AppendMarkerLocked(TxnMarker marker,
                                             uint64_t txn_id,
                                             uint32_t coordinator_shard,
                                             const EditRequest* half,
                                             EditingMethodKind method) {
  EditWalRecord record;
  record.sequence = next_sequence_;
  record.term = owned_term_;
  record.first_in_batch = false;
  record.method = method;
  record.txn_marker = marker;
  record.txn_id = txn_id;
  record.txn_coordinator = coordinator_shard;
  if (half != nullptr) {
    record.request = *half;
    record.request.txn_id = txn_id;
  }
  ONEEDIT_RETURN_IF_ERROR(wal_.Append(record));
  ++next_sequence_;
  return Status::OK();
}

Status DurabilityManager::LogPrepare(uint64_t txn_id,
                                     uint32_t coordinator_shard,
                                     const EditRequest& half,
                                     EditingMethodKind method,
                                     Statistics* stats) {
  std::lock_guard<std::mutex> lock(txn_mutex_);
  Status status = CheckFreeSpace();
  if (status.ok()) {
    status = AppendMarkerLocked(TxnMarker::kPrepare, txn_id, coordinator_shard,
                                &half, method);
  }
  // The prepare MUST be fsynced before the coordinator may decide commit:
  // the promise has to survive a participant crash.
  if (status.ok()) status = wal_.Sync();
  if (status.ok()) {
    committed_sequence_ = next_sequence_ - 1;
    applied_term_ = owned_term_.load();
    PreparedTxn txn;
    txn.txn_id = txn_id;
    txn.coordinator_shard = coordinator_shard;
    txn.half = half;
    txn.half.txn_id = txn_id;
    outstanding_[txn_id] = std::move(txn);
    if (txn_id > max_txn_id_) max_txn_id_ = txn_id;
  }
  if (stats != nullptr) {
    if (status.ok()) {
      stats->Add(Ticker::kWalRecords);
      stats->Add(Ticker::kWalCommits);
      stats->Add(Ticker::kTxnPrepares);
    } else {
      stats->Add(Ticker::kWalFailures);
      if (status.IsResourceExhausted()) stats->Add(Ticker::kEnospcRejects);
    }
  }
  return status;
}

Status DurabilityManager::LogTxnDecision(uint64_t txn_id, bool commit,
                                         EditingMethodKind method,
                                         Statistics* stats) {
  std::lock_guard<std::mutex> lock(txn_mutex_);
  Status status = CheckFreeSpace();
  if (status.ok()) {
    status = AppendMarkerLocked(
        commit ? TxnMarker::kCommitDecision : TxnMarker::kAbortDecision,
        txn_id, /*coordinator_shard=*/0, /*half=*/nullptr, method);
  }
  if (status.ok()) status = wal_.Sync();
  if (status.ok()) {
    committed_sequence_ = next_sequence_ - 1;
    applied_term_ = owned_term_.load();
    if (commit) {
      committed_txns_.insert(txn_id);
    } else {
      outstanding_.erase(txn_id);
    }
    if (txn_id > max_txn_id_) max_txn_id_ = txn_id;
  }
  if (stats != nullptr) {
    if (status.ok()) {
      stats->Add(Ticker::kWalRecords);
      stats->Add(Ticker::kWalCommits);
      stats->Add(Ticker::kTxnDecisions);
    } else {
      stats->Add(Ticker::kWalFailures);
      if (status.IsResourceExhausted()) stats->Add(Ticker::kEnospcRejects);
    }
  }
  return status;
}

void DurabilityManager::ForgetTxn(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(txn_mutex_);
  committed_txns_.erase(txn_id);
  outstanding_.erase(txn_id);
}

std::vector<PreparedTxn> DurabilityManager::outstanding_txns() const {
  std::lock_guard<std::mutex> lock(txn_mutex_);
  std::vector<PreparedTxn> out;
  out.reserve(outstanding_.size());
  for (const auto& [id, txn] : outstanding_) out.push_back(txn);
  return out;
}

bool DurabilityManager::txn_committed(uint64_t txn_id) const {
  std::lock_guard<std::mutex> lock(txn_mutex_);
  return committed_txns_.count(txn_id) > 0;
}

std::vector<uint64_t> DurabilityManager::retained_decisions() const {
  std::lock_guard<std::mutex> lock(txn_mutex_);
  return std::vector<uint64_t>(committed_txns_.begin(), committed_txns_.end());
}

uint64_t DurabilityManager::max_txn_id() const {
  std::lock_guard<std::mutex> lock(txn_mutex_);
  return max_txn_id_;
}

Status DurabilityManager::CheckFreeSpace() {
  if (options_.min_free_bytes == 0) return Status::OK();
  const StatusOr<uint64_t> free = env_->FreeDiskSpace(options_.dir);
  // An unmeasurable filesystem must not block writes — the kernel's own
  // ENOSPC (mapped to ResourceExhausted by the Env) is the backstop.
  if (!free.ok()) return Status::OK();
  if (*free < options_.min_free_bytes) {
    return Status::ResourceExhausted(
        "free disk space " + std::to_string(*free) + " below budget " +
        std::to_string(options_.min_free_bytes) + " in " + options_.dir);
  }
  return Status::OK();
}

Status DurabilityManager::LogBatch(const std::vector<EditRequest>& requests,
                                   EditingMethodKind method,
                                   Statistics* stats) {
  const auto start = std::chrono::steady_clock::now();
  Status status = CheckFreeSpace();
  if (status.ok()) {
    obs::Span append_span("wal-append");
    bool first = true;
    for (const EditRequest& request : requests) {
      EditWalRecord record;
      record.sequence = next_sequence_;
      // Stamped with the term this node WON, not merely observed: a deposed
      // node that keeps journaling marks its own suffix as stale, which is
      // exactly what divergence reconciliation later keys on.
      record.term = owned_term_;
      record.first_in_batch = first;
      record.method = method;
      record.request = request;
      record.txn_id = request.txn_id;
      status = wal_.Append(record);
      if (!status.ok()) break;
      ++next_sequence_;
      first = false;
    }
  }
  if (status.ok() && options_.sync_on_commit) {
    obs::Span fsync_span("fsync");
    status = wal_.Sync();
  }
  if (status.ok()) {
    committed_sequence_ = next_sequence_ - 1;
    applied_term_ = owned_term_.load();
    // Txn-tagged halves are now durable in sequence order; their prepares
    // are settled and stop being re-journaled across rotations.
    std::lock_guard<std::mutex> lock(txn_mutex_);
    for (const EditRequest& request : requests) {
      if (request.txn_id != 0) outstanding_.erase(request.txn_id);
    }
  }
  if (stats != nullptr) {
    if (status.ok()) {
      stats->Add(Ticker::kWalRecords, requests.size());
      stats->Add(Ticker::kWalCommits);
      stats->Record(Histogram::kWalCommitMicros, ElapsedMicros(start));
    } else {
      stats->Add(Ticker::kWalFailures);
      if (status.IsResourceExhausted()) stats->Add(Ticker::kEnospcRejects);
    }
  }
  return status;
}

Status DurabilityManager::LogQuarantine(uint64_t quarantined_sequence,
                                        const std::string& reason,
                                        EditingMethodKind method,
                                        Statistics* stats) {
  EditWalRecord record;
  record.sequence = next_sequence_;
  record.term = owned_term_;
  record.first_in_batch = false;
  record.method = method;
  record.quarantine = true;
  record.quarantined_sequence = quarantined_sequence;
  record.quarantine_reason = reason;
  Status status = CheckFreeSpace();
  if (status.ok()) status = wal_.Append(record);
  if (status.ok()) {
    ++next_sequence_;
    if (options_.sync_on_commit) status = wal_.Sync();
  }
  if (status.ok()) {
    committed_sequence_ = next_sequence_ - 1;
    applied_term_ = owned_term_.load();
  }
  if (stats != nullptr) {
    if (status.ok()) {
      stats->Add(Ticker::kWalRecords);
      stats->Add(Ticker::kWalCommits);
    } else {
      stats->Add(Ticker::kWalFailures);
      if (status.IsResourceExhausted()) stats->Add(Ticker::kEnospcRejects);
    }
  }
  return status;
}

Status DurabilityManager::AppendReplicated(std::string_view frames,
                                           uint64_t last_sequence,
                                           uint64_t last_term, size_t records,
                                           Statistics* stats) {
  const auto start = std::chrono::steady_clock::now();
  Status status = wal_.AppendRaw(frames);
  if (status.ok() && options_.sync_on_commit) status = wal_.Sync();
  if (status.ok()) {
    next_sequence_ = last_sequence + 1;
    committed_sequence_ = last_sequence;
    applied_term_ = last_term;
    AdoptTerm(last_term);
    // Keep the follower's 2PC tables current: a promoted follower must know
    // which prepares are outstanding and which commit decisions it retains.
    std::string_view rest = frames;
    std::lock_guard<std::mutex> lock(txn_mutex_);
    while (!rest.empty()) {
      EditWalRecord record;
      size_t frame_bytes = 0;
      if (EditWal::DecodeFrame(rest, &record, &frame_bytes) !=
          EditWal::FrameResult::kRecord) {
        break;  // the caller verified these frames; never split a decode
      }
      if (record.txn_marker != TxnMarker::kNone || record.txn_id != 0) {
        TxnBookkeepingLocked(record);
      }
      rest.remove_prefix(frame_bytes);
    }
  }
  if (stats != nullptr) {
    if (status.ok()) {
      stats->Add(Ticker::kWalRecords, records);
      stats->Add(Ticker::kWalCommits);
      stats->Record(Histogram::kWalCommitMicros, ElapsedMicros(start));
    } else {
      stats->Add(Ticker::kWalFailures);
    }
  }
  return status;
}

StatusOr<uint64_t> DurabilityManager::InstallSnapshotBytes(
    const std::string& bytes, OneEditSystem* system, Statistics* stats) {
  if (system == nullptr) return Status::InvalidArgument("null system");
  // Same publish discipline as SaveSystemCheckpoint: temp + fsync + rename,
  // so a crash mid-install leaves either the old checkpoint or the new one.
  const std::string tmp = checkpoint_path_ + ".tmp";
  {
    ONEEDIT_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             env_->NewWritableFile(tmp, /*truncate=*/true));
    ONEEDIT_RETURN_IF_ERROR(file->Append(bytes));
    ONEEDIT_RETURN_IF_ERROR(file->Sync());
    ONEEDIT_RETURN_IF_ERROR(file->Close());
  }
  ONEEDIT_RETURN_IF_ERROR(env_->RenameFile(tmp, checkpoint_path_));
  // As in SaveSystemCheckpoint: the rename is only power-loss durable once
  // the directory entry itself is fsynced.
  ONEEDIT_RETURN_IF_ERROR(env_->SyncDir(options_.dir));
  // Snapshot install lands on a WARM system that may hold edits PAST this
  // image (a diverged replica rolling back its truncated suffix), so every
  // piece of editor state bound to the model — the adaptor a method
  // registered, its live-edit ledger, the delta cache, the editor's
  // live-triple set — must be dropped before the image is restored.
  // Anything left behind either answers truncated edits (a stale adaptor
  // entry) or silently skips their re-application (a stale live-set entry
  // marking an incoming replayed edit "already installed"). Recovery's
  // LoadSystemCheckpoint does NOT do this: its contract is a freshly built
  // system, where the caller may have deliberately staged method state that
  // checkpoints never persist.
  system->editor().ResetState();
  ONEEDIT_ASSIGN_OR_RETURN(
      const CheckpointState state,
      LoadSystemCheckpoint(checkpoint_path_, env_, system));
  // Everything at or below the snapshot's sequence is covered; the WAL
  // restarts empty, exactly as after a local checkpoint publish.
  ONEEDIT_RETURN_IF_ERROR(wal_.Reset());
  next_sequence_ = state.last_sequence + 1;
  committed_sequence_ = state.last_sequence;
  edits_since_checkpoint_ = 0;
  {
    // The installed image replaces this journal wholesale; live 2PC state
    // is re-learned from the primary's re-journaled markers as the follower
    // tails the post-rotation WAL.
    std::lock_guard<std::mutex> lock(txn_mutex_);
    outstanding_.clear();
    committed_txns_.clear();
  }
  // The image carries the shipping primary's term view; adopt it (but not
  // its term OWNERSHIP — installing a snapshot never makes us a primary).
  applied_term_ = state.applied_term;
  AdoptTerm(state.primary_term);
  AdoptTerm(state.applied_term);
  if (stats != nullptr) stats->Add(Ticker::kCheckpoints);
  return state.last_sequence;
}

void DurabilityManager::AdoptTerm(uint64_t term) {
  uint64_t observed = primary_term_.load();
  while (observed < term &&
         !primary_term_.compare_exchange_weak(observed, term)) {
  }
}

uint64_t DurabilityManager::BumpTerm() {
  const uint64_t won = primary_term_.load() + 1;
  primary_term_ = won;
  owned_term_ = won;
  term_start_sequence_ = committed_sequence_.load();
  return won;
}

Status DurabilityManager::OnBatchApplied(OneEditSystem& system,
                                         size_t applied, Statistics* stats) {
  edits_since_checkpoint_ += applied;
  if (options_.checkpoint_interval == 0 ||
      edits_since_checkpoint_ < options_.checkpoint_interval) {
    return Status::OK();
  }
  return Checkpoint(system, stats);
}

Status DurabilityManager::RepairWalRegion(uint64_t corrupt_offset,
                                          std::string_view frames) {
  // Splice: cut the journal at the first bad frame, then re-append the
  // peer's clean bytes. The append handle is closed around the truncate so
  // no stale kernel file offset survives the cut; a concurrent Cursor that
  // observes the shrink treats it as a rotation and rewinds — safe.
  wal_.Close();
  ONEEDIT_RETURN_IF_ERROR(env_->TruncateFile(wal_path_, corrupt_offset));
  ONEEDIT_RETURN_IF_ERROR(wal_.Open(wal_path_, env_));
  ONEEDIT_RETURN_IF_ERROR(wal_.AppendRaw(frames));
  return wal_.Sync();
}

Status DurabilityManager::ReplaceCheckpointBytes(const std::string& bytes) {
  // File-only replacement (the live system is intact; only the on-disk copy
  // rotted), with the same temp + fsync + rename + dir-fsync publish
  // discipline as every other checkpoint write.
  const std::string tmp = checkpoint_path_ + ".tmp";
  {
    ONEEDIT_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             env_->NewWritableFile(tmp, /*truncate=*/true));
    ONEEDIT_RETURN_IF_ERROR(file->Append(bytes));
    ONEEDIT_RETURN_IF_ERROR(file->Sync());
    ONEEDIT_RETURN_IF_ERROR(file->Close());
  }
  ONEEDIT_RETURN_IF_ERROR(env_->RenameFile(tmp, checkpoint_path_));
  return env_->SyncDir(options_.dir);
}

Status DurabilityManager::Checkpoint(OneEditSystem& system,
                                     Statistics* stats) {
  const auto start = std::chrono::steady_clock::now();
  CheckpointState state;
  state.last_sequence = next_sequence_ - 1;
  state.kg_version = system.kg().version();
  state.primary_term = primary_term_;
  state.owned_term = owned_term_;
  state.applied_term = applied_term_;
  state.term_start_sequence = term_start_sequence_;
  Status status = CheckFreeSpace();
  if (status.ok()) {
    status = SaveSystemCheckpoint(checkpoint_path_, env_, system, state);
  }
  if (status.ok()) {
    // Everything at or below state.last_sequence is now redundant; rotate.
    // A rotation failure leaves stale-but-skippable records, not data loss.
    status = wal_.Reset();
    edits_since_checkpoint_ = 0;
  }
  if (status.ok()) {
    // Carry live 2PC state across the rotation: undecided prepares and
    // retained commit decisions are NOT redundant with the checkpoint (the
    // image holds applied state only) and would otherwise be destroyed by
    // the Reset. Re-journal them with fresh sequence numbers.
    std::lock_guard<std::mutex> lock(txn_mutex_);
    const EditingMethodKind method = system.config().method;
    bool appended = false;
    for (const auto& [id, txn] : outstanding_) {
      status = AppendMarkerLocked(TxnMarker::kPrepare, txn.txn_id,
                                  txn.coordinator_shard, &txn.half, method);
      if (!status.ok()) break;
      appended = true;
    }
    if (status.ok()) {
      for (const uint64_t id : committed_txns_) {
        status = AppendMarkerLocked(TxnMarker::kCommitDecision, id,
                                    /*coordinator_shard=*/0, /*half=*/nullptr,
                                    method);
        if (!status.ok()) break;
        appended = true;
      }
    }
    if (status.ok() && appended) status = wal_.Sync();
    if (status.ok() && appended) {
      committed_sequence_ = next_sequence_ - 1;
      applied_term_ = owned_term_.load();
    }
  }
  if (stats != nullptr) {
    if (status.ok()) {
      stats->Add(Ticker::kCheckpoints);
      stats->Record(Histogram::kCheckpointMicros, ElapsedMicros(start));
    } else {
      stats->Add(Ticker::kCheckpointFailures);
      if (status.IsResourceExhausted()) stats->Add(Ticker::kEnospcRejects);
    }
  }
  return status;
}

}  // namespace durability
}  // namespace oneedit
