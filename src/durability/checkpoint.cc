#include "durability/checkpoint.h"

#include <cstring>
#include <unordered_set>
#include <vector>

#include "editing/cache_io.h"
#include "model/checkpoint.h"
#include "util/crc32.h"

namespace oneedit {
namespace durability {
namespace {

// File layout (little-endian):
//   magic "OEDC", u32 version, u64 last_sequence, u64 kg_version,
//   (v2+) u64 primary_term, u64 owned_term, u64 applied_term,
//         u64 term_start_sequence,
//   u32 num_sections, then per section:
//     u32 kind, u32 size, u32 crc32(bytes), bytes
constexpr char kMagic[4] = {'O', 'E', 'D', 'C'};
// v1 had no term fields; a v1 image loads with all terms zero (a world that
// never saw an election), so pre-term checkpoints stay readable.
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;
constexpr uint32_t kSectionWeights = 1;
constexpr uint32_t kSectionKg = 2;
constexpr uint32_t kSectionCache = 3;
constexpr uint32_t kMaxSectionBytes = 1u << 30;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ConsumeScalar(std::string_view* data, T* v) {
  if (data->size() < sizeof(T)) return false;
  std::memcpy(v, data->data(), sizeof(T));
  data->remove_prefix(sizeof(T));
  return true;
}

void AppendSection(std::string* out, uint32_t kind,
                   const std::string& bytes) {
  AppendU32(out, kind);
  AppendU32(out, static_cast<uint32_t>(bytes.size()));
  AppendU32(out, Crc32(bytes));
  out->append(bytes);
}

std::string TripleKey(const NamedTriple& t) {
  return t.subject + "\x1f" + t.relation + "\x1f" + t.object;
}

void SerializeKg(const KnowledgeGraph& kg, std::string* out) {
  const std::vector<Triple> triples = kg.store().AllTriples();
  AppendU32(out, static_cast<uint32_t>(triples.size()));
  for (const Triple& t : triples) {
    for (const std::string* name :
         {&kg.EntityName(t.subject), &kg.schema().Name(t.relation),
          &kg.EntityName(t.object)}) {
      AppendU32(out, static_cast<uint32_t>(name->size()));
      out->append(*name);
    }
  }
}

Status RestoreKg(std::string_view data, KnowledgeGraph* kg) {
  uint32_t count = 0;
  if (!ConsumeScalar(&data, &count)) {
    return Status::Corruption("KG section truncated in header");
  }
  std::vector<NamedTriple> target;
  target.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    NamedTriple t;
    for (std::string* field : {&t.subject, &t.relation, &t.object}) {
      uint32_t size = 0;
      if (!ConsumeScalar(&data, &size) || data.size() < size) {
        return Status::Corruption("KG section truncated at triple " +
                                  std::to_string(i));
      }
      field->assign(data.data(), size);
      data.remove_prefix(size);
    }
    target.push_back(std::move(t));
  }

  // Diff-restore: the caller hands us the freshly rebuilt pristine world;
  // converge its triple set onto the snapshot's without rebuilding the
  // dictionary, schema, rules or alias registry.
  std::unordered_set<std::string> target_keys;
  for (const NamedTriple& t : target) target_keys.insert(TripleKey(t));

  std::vector<Triple> to_remove;
  std::unordered_set<std::string> current_keys;
  for (const Triple& t : kg->store().AllTriples()) {
    std::string key = TripleKey(kg->ToNamed(t));
    if (target_keys.count(key) == 0) to_remove.push_back(t);
    current_keys.insert(std::move(key));
  }
  for (const Triple& t : to_remove) {
    ONEEDIT_RETURN_IF_ERROR(kg->Remove(t));
  }
  for (const NamedTriple& t : target) {
    if (current_keys.count(TripleKey(t)) > 0) continue;
    const Triple resolved{kg->InternEntity(t.subject),
                          kg->schema().Define(t.relation),
                          kg->InternEntity(t.object)};
    ONEEDIT_RETURN_IF_ERROR(kg->Add(resolved));
  }
  return Status::OK();
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

struct Section {
  uint32_t kind;
  std::string_view bytes;
};

/// Parses and CRC-validates a whole checkpoint image without touching any
/// system state: header fields into `*state`, section views into
/// `*sections`. Shared by the all-or-nothing load and the scrubber's
/// integrity verification.
Status ParseCheckpointImage(std::string_view rest, const std::string& path,
                            CheckpointState* state,
                            std::vector<Section>* sections) {
  char magic[4];
  uint32_t version = 0, num_sections = 0;
  if (rest.size() < sizeof(magic)) {
    return Status::Corruption("not a OneEdit system checkpoint: " + path);
  }
  std::memcpy(magic, rest.data(), sizeof(magic));
  rest.remove_prefix(sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a OneEdit system checkpoint: " + path);
  }
  if (!ConsumeScalar(&rest, &version) || version < kMinVersion ||
      version > kVersion) {
    return Status::Corruption("unsupported system checkpoint version in " +
                              path);
  }
  if (!ConsumeScalar(&rest, &state->last_sequence) ||
      !ConsumeScalar(&rest, &state->kg_version)) {
    return Status::Corruption("system checkpoint header truncated: " + path);
  }
  if (version >= 2 &&
      (!ConsumeScalar(&rest, &state->primary_term) ||
       !ConsumeScalar(&rest, &state->owned_term) ||
       !ConsumeScalar(&rest, &state->applied_term) ||
       !ConsumeScalar(&rest, &state->term_start_sequence))) {
    return Status::Corruption("system checkpoint header truncated: " + path);
  }
  if (!ConsumeScalar(&rest, &num_sections)) {
    return Status::Corruption("system checkpoint header truncated: " + path);
  }
  for (uint32_t i = 0; i < num_sections; ++i) {
    uint32_t kind = 0, size = 0, crc = 0;
    if (!ConsumeScalar(&rest, &kind) || !ConsumeScalar(&rest, &size) ||
        !ConsumeScalar(&rest, &crc) || size > kMaxSectionBytes ||
        rest.size() < size) {
      return Status::Corruption("system checkpoint section " +
                                std::to_string(i) + " truncated: " + path);
    }
    const std::string_view bytes = rest.substr(0, size);
    if (Crc32(bytes) != crc) {
      return Status::Corruption("system checkpoint section " +
                                std::to_string(i) + " CRC mismatch: " + path);
    }
    sections->push_back(Section{kind, bytes});
    rest.remove_prefix(size);
  }
  return Status::OK();
}

/// GRACE/SERAC codebook entries live in the method's adaptor, not in the
/// checkpointed weights. A cached adaptor-only delta is live exactly when
/// the restored KG still asserts its triple, so re-arm those.
Status RearmAdaptors(OneEditSystem* system) {
  Status status = Status::OK();
  system->editor().cache().ForEach([&](const EditDelta& delta) {
    if (!status.ok()) return;
    if (delta.grace_entries.empty() || !delta.rank_ones.empty() ||
        !delta.dense.empty()) {
      return;
    }
    const auto resolved = system->kg().Resolve(delta.edit);
    if (!resolved.ok() || !system->kg().Contains(*resolved)) return;
    status = system->editor().method().Reapply(&system->model(), delta);
  });
  return status;
}

}  // namespace

Status SaveSystemCheckpoint(const std::string& path, Env* env,
                            OneEditSystem& system,
                            const CheckpointState& state) {
  Env* e = env != nullptr ? env : Env::Default();

  std::string image;
  image.append(kMagic, sizeof(kMagic));
  AppendU32(&image, kVersion);
  AppendU64(&image, state.last_sequence);
  AppendU64(&image, state.kg_version);
  AppendU64(&image, state.primary_term);
  AppendU64(&image, state.owned_term);
  AppendU64(&image, state.applied_term);
  AppendU64(&image, state.term_start_sequence);
  AppendU32(&image, 3);

  std::string section;
  SerializeWeights(system.model(), &section);
  AppendSection(&image, kSectionWeights, section);
  section.clear();
  SerializeKg(system.kg(), &section);
  AppendSection(&image, kSectionKg, section);
  section.clear();
  SerializeCache(system.editor().cache(), &section);
  AppendSection(&image, kSectionCache, section);

  const std::string tmp = path + ".tmp";
  ONEEDIT_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           e->NewWritableFile(tmp, /*truncate=*/true));
  ONEEDIT_RETURN_IF_ERROR(file->Append(image));
  ONEEDIT_RETURN_IF_ERROR(file->Sync());
  ONEEDIT_RETURN_IF_ERROR(file->Close());
  ONEEDIT_RETURN_IF_ERROR(e->RenameFile(tmp, path));
  // The rename is only power-loss durable once the parent directory's entry
  // table is on stable storage.
  return e->SyncDir(ParentDir(path));
}

StatusOr<CheckpointState> LoadSystemCheckpoint(const std::string& path,
                                               Env* env,
                                               OneEditSystem* system) {
  if (system == nullptr) return Status::InvalidArgument("null system");
  Env* e = env != nullptr ? env : Env::Default();
  std::string data;
  ONEEDIT_RETURN_IF_ERROR(e->ReadFileToString(path, &data));

  // Validate every section before mutating anything: load is all-or-nothing.
  CheckpointState state;
  std::vector<Section> sections;
  ONEEDIT_RETURN_IF_ERROR(
      ParseCheckpointImage(data, path, &state, &sections));

  for (const Section& section : sections) {
    switch (section.kind) {
      case kSectionWeights:
        ONEEDIT_RETURN_IF_ERROR(
            DeserializeWeights(section.bytes, &system->model()));
        break;
      case kSectionKg:
        ONEEDIT_RETURN_IF_ERROR(RestoreKg(section.bytes, &system->kg()));
        break;
      case kSectionCache:
        system->editor().cache().Clear();
        ONEEDIT_RETURN_IF_ERROR(
            DeserializeCache(section.bytes, &system->editor().cache()));
        break;
      default:
        return Status::Corruption("unknown checkpoint section kind " +
                                  std::to_string(section.kind));
    }
  }
  ONEEDIT_RETURN_IF_ERROR(RearmAdaptors(system));
  return state;
}

StatusOr<CheckpointState> VerifyCheckpointImage(std::string_view image,
                                                const std::string& path) {
  CheckpointState state;
  std::vector<Section> sections;
  ONEEDIT_RETURN_IF_ERROR(
      ParseCheckpointImage(image, path, &state, &sections));
  return state;
}

StatusOr<CheckpointState> VerifyCheckpointIntegrity(const std::string& path,
                                                    Env* env) {
  Env* e = env != nullptr ? env : Env::Default();
  std::string data;
  ONEEDIT_RETURN_IF_ERROR(e->ReadFileToString(path, &data));
  return VerifyCheckpointImage(data, path);
}

StatusOr<CheckpointState> PeekCheckpointState(const std::string& path,
                                              Env* env) {
  Env* e = env != nullptr ? env : Env::Default();
  // Request the v2 header size; ReadFileRange returns the available prefix,
  // so a shorter v1 file still parses through its own (smaller) header.
  constexpr size_t kHeaderBytes =
      sizeof(kMagic) + sizeof(uint32_t) + 6 * sizeof(uint64_t);
  std::string data;
  ONEEDIT_RETURN_IF_ERROR(e->ReadFileRange(path, 0, kHeaderBytes, &data));
  std::string_view rest(data);
  if (rest.size() < sizeof(kMagic) ||
      std::memcmp(rest.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a OneEdit system checkpoint: " + path);
  }
  rest.remove_prefix(sizeof(kMagic));
  uint32_t version = 0;
  CheckpointState state;
  if (!ConsumeScalar(&rest, &version) || version < kMinVersion ||
      version > kVersion || !ConsumeScalar(&rest, &state.last_sequence) ||
      !ConsumeScalar(&rest, &state.kg_version)) {
    return Status::Corruption("system checkpoint header truncated: " + path);
  }
  if (version >= 2 &&
      (!ConsumeScalar(&rest, &state.primary_term) ||
       !ConsumeScalar(&rest, &state.owned_term) ||
       !ConsumeScalar(&rest, &state.applied_term) ||
       !ConsumeScalar(&rest, &state.term_start_sequence))) {
    return Status::Corruption("system checkpoint header truncated: " + path);
  }
  return state;
}

}  // namespace durability
}  // namespace oneedit
