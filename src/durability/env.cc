#include "durability/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

namespace oneedit {
namespace durability {
namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

/// Unbuffered POSIX file: every Append is one write(2), so partially
/// written records — not partially flushed stdio buffers — are the only
/// crash artifact.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    while (!data.empty()) {
      const ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ENOSPC) {
          // Typed so callers can shed writes into read-only degradation
          // instead of burning the generic-IO retry ladder on a full disk.
          return Status::ResourceExhausted("no space left on device: " +
                                           path_);
        }
        return Errno("write failed on", path_);
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::FailedPrecondition("file closed: " + path_);
    if (::fsync(fd_) != 0) return Errno("fsync failed on", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Errno("close failed on", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    const int flags =
        O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("cannot open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot read " + path);
    out->assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
    return Status::OK();
  }

  Status ReadFileRange(const std::string& path, uint64_t offset,
                       size_t max_bytes, std::string* out) override {
    out->clear();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("cannot open", path);
    out->resize(max_bytes);
    size_t got = 0;
    while (got < max_bytes) {
      const ssize_t n = ::pread(fd, out->data() + got, max_bytes - got,
                                static_cast<off_t>(offset + got));
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status status = Errno("pread failed on", path);
        ::close(fd);
        out->clear();
        return status;
      }
      if (n == 0) break;  // end of file
      got += static_cast<size_t>(n);
    }
    ::close(fd);
    out->resize(got);
    return Status::OK();
  }

  StatusOr<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Errno("cannot stat", path);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("cannot rename " + from + " onto", to);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("cannot remove", path);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("cannot create directory", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Errno("cannot open directory", path);
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return Errno("fsync failed on directory", path);
    return Status::OK();
  }

  StatusOr<uint64_t> FreeDiskSpace(const std::string& path) override {
    struct statvfs vfs;
    if (::statvfs(path.c_str(), &vfs) != 0) {
      return Errno("cannot statvfs", path);
    }
    return static_cast<uint64_t>(vfs.f_bavail) *
           static_cast<uint64_t>(vfs.f_frsize);
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* out) override {
    out->clear();
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return Errno("cannot open directory", path);
    errno = 0;
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") out->push_back(name);
      errno = 0;
    }
    const int saved_errno = errno;
    ::closedir(dir);
    if (saved_errno != 0) {
      errno = saved_errno;
      return Errno("cannot read directory", path);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("cannot truncate", path);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace durability
}  // namespace oneedit
