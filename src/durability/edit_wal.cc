#include "durability/edit_wal.h"

#include <cstring>

#include "util/crc32.h"

namespace oneedit {
namespace durability {
namespace {

// Payload layout (little-endian):
//   u64 sequence
//   u64 term (primary election epoch the record was journaled under)
//   u8  flags (bit 0: first_in_batch, bit 1: quarantine verdict,
//              bit 2: 2PC marker record, bit 3: txn-tagged edit record)
//   u8  op (EditRequest::Op)
//   u8  method (EditingMethodKind)
//   5 length-prefixed strings: subject, relation, object, utterance, user
// Quarantine verdict records (flag bit 1) append:
//   u64 quarantined_sequence
//   1 length-prefixed string: reason
// 2PC marker records (flag bit 2) append:
//   u8  marker kind (TxnMarker, 1..3)
//   u64 txn_id
//   u32 coordinator shard (meaningful for kPrepare)
// Txn-tagged edit records (flag bit 3, one half of a cross-shard edit)
// append:
//   u64 txn_id
constexpr size_t kFrameHeaderBytes = 2 * sizeof(uint32_t);
constexpr uint32_t kMaxPayloadBytes = 1u << 24;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

template <typename T>
bool ConsumeScalar(std::string_view* data, T* v) {
  if (data->size() < sizeof(T)) return false;
  std::memcpy(v, data->data(), sizeof(T));
  data->remove_prefix(sizeof(T));
  return true;
}

bool ConsumeString(std::string_view* data, std::string* s) {
  uint32_t size = 0;
  if (!ConsumeScalar(data, &size) || data->size() < size) return false;
  s->assign(data->data(), size);
  data->remove_prefix(size);
  return true;
}

bool DecodePayload(std::string_view payload, EditWalRecord* record) {
  uint8_t flags = 0, op = 0, method = 0;
  if (!ConsumeScalar(&payload, &record->sequence) ||
      !ConsumeScalar(&payload, &record->term) ||
      !ConsumeScalar(&payload, &flags) || !ConsumeScalar(&payload, &op) ||
      !ConsumeScalar(&payload, &method) || op > 2 || method > 5) {
    return false;
  }
  record->first_in_batch = (flags & 1u) != 0;
  record->quarantine = (flags & 2u) != 0;
  record->request.op = static_cast<EditRequest::Op>(op);
  record->method = static_cast<EditingMethodKind>(method);
  if (!ConsumeString(&payload, &record->request.triple.subject) ||
      !ConsumeString(&payload, &record->request.triple.relation) ||
      !ConsumeString(&payload, &record->request.triple.object) ||
      !ConsumeString(&payload, &record->request.utterance) ||
      !ConsumeString(&payload, &record->request.user)) {
    return false;
  }
  if (record->quarantine &&
      (!ConsumeScalar(&payload, &record->quarantined_sequence) ||
       !ConsumeString(&payload, &record->quarantine_reason))) {
    return false;
  }
  record->txn_marker = TxnMarker::kNone;
  record->txn_id = 0;
  record->txn_coordinator = 0;
  if ((flags & 4u) != 0) {
    uint8_t marker = 0;
    if (!ConsumeScalar(&payload, &marker) || marker < 1 || marker > 3 ||
        !ConsumeScalar(&payload, &record->txn_id) ||
        !ConsumeScalar(&payload, &record->txn_coordinator)) {
      return false;
    }
    record->txn_marker = static_cast<TxnMarker>(marker);
  } else if ((flags & 8u) != 0) {
    if (!ConsumeScalar(&payload, &record->txn_id)) return false;
  }
  record->request.txn_id = record->txn_id;
  return payload.empty();
}

}  // namespace

std::string EditWal::Encode(const EditWalRecord& record) {
  std::string payload;
  AppendU64(&payload, record.sequence);
  AppendU64(&payload, record.term);
  const bool marker = record.txn_marker != TxnMarker::kNone;
  const bool tagged = !marker && record.txn_id != 0;
  const uint8_t flags = (record.first_in_batch ? 1u : 0u) |
                        (record.quarantine ? 2u : 0u) | (marker ? 4u : 0u) |
                        (tagged ? 8u : 0u);
  payload.push_back(static_cast<char>(flags));
  payload.push_back(static_cast<char>(record.request.op));
  payload.push_back(static_cast<char>(record.method));
  AppendString(&payload, record.request.triple.subject);
  AppendString(&payload, record.request.triple.relation);
  AppendString(&payload, record.request.triple.object);
  AppendString(&payload, record.request.utterance);
  AppendString(&payload, record.request.user);
  if (record.quarantine) {
    AppendU64(&payload, record.quarantined_sequence);
    AppendString(&payload, record.quarantine_reason);
  }
  if (marker) {
    payload.push_back(static_cast<char>(record.txn_marker));
    AppendU64(&payload, record.txn_id);
    AppendU32(&payload, record.txn_coordinator);
  } else if (tagged) {
    AppendU64(&payload, record.txn_id);
  }

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU32(&frame, Crc32(payload));
  frame.append(payload);
  return frame;
}

Status EditWal::Open(const std::string& path, Env* env) {
  Close();
  env_ = env != nullptr ? env : Env::Default();
  ONEEDIT_ASSIGN_OR_RETURN(file_,
                           env_->NewWritableFile(path, /*truncate=*/false));
  path_ = path;
  return Status::OK();
}

Status EditWal::Append(const EditWalRecord& record) {
  if (file_ == nullptr) return Status::FailedPrecondition("edit WAL not open");
  return file_->Append(Encode(record));
}

Status EditWal::AppendRaw(std::string_view frames) {
  if (file_ == nullptr) return Status::FailedPrecondition("edit WAL not open");
  return file_->Append(frames);
}

EditWal::FrameResult EditWal::DecodeFrame(std::string_view buffer,
                                          EditWalRecord* record,
                                          size_t* frame_bytes) {
  *frame_bytes = 0;
  if (buffer.size() < kFrameHeaderBytes) return FrameResult::kIncomplete;
  uint32_t size = 0, crc = 0;
  std::string_view rest = buffer;
  (void)ConsumeScalar(&rest, &size);
  (void)ConsumeScalar(&rest, &crc);
  // A garbage length that overshoots the buffer is indistinguishable from a
  // frame still being written; both read as "ends mid-frame".
  if (rest.size() < size) return FrameResult::kIncomplete;
  const std::string_view payload = rest.substr(0, size);
  if (size > kMaxPayloadBytes || Crc32(payload) != crc) {
    *frame_bytes = kFrameHeaderBytes + size;
    return FrameResult::kCorrupt;
  }
  *frame_bytes = kFrameHeaderBytes + size;
  if (!DecodePayload(payload, record)) return FrameResult::kBadRecord;
  return FrameResult::kRecord;
}

Status EditWal::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("edit WAL not open");
  return file_->Sync();
}

Status EditWal::Reset() {
  if (env_ == nullptr || path_.empty()) {
    return Status::FailedPrecondition("edit WAL not open");
  }
  // A previous Reset may have closed the file and then failed to reopen it
  // (transient I/O fault between close and open). Tolerating file_ == null
  // here makes Reset the retry point: the degraded service's heal probe
  // checkpoints and Resets again, and must be able to recover the handle
  // once the environment calms down instead of latching "not open" forever.
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
  ONEEDIT_ASSIGN_OR_RETURN(file_,
                           env_->NewWritableFile(path_, /*truncate=*/true));
  return Status::OK();
}

void EditWal::Close() {
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
}

StatusOr<WalReplayStats> EditWal::Replay(
    const std::string& path, Env* env,
    const std::function<Status(const EditWalRecord&)>& apply, bool salvage) {
  Env* e = env != nullptr ? env : Env::Default();
  WalReplayStats stats;
  if (!e->FileExists(path)) return stats;
  std::string data;
  ONEEDIT_RETURN_IF_ERROR(e->ReadFileToString(path, &data));

  std::string_view rest(data);
  while (!rest.empty()) {
    EditWalRecord record;
    size_t frame_bytes = 0;
    const FrameResult result = DecodeFrame(rest, &record, &frame_bytes);
    if (result == FrameResult::kIncomplete) {
      // The frame extends past end-of-file: a torn tail, clean end of log.
      stats.torn_bytes_dropped = rest.size();
      break;
    }
    if (result == FrameResult::kCorrupt) {
      if (frame_bytes == rest.size()) {
        // Fully-written length but torn/garbage payload at the very end.
        stats.torn_bytes_dropped = rest.size();
        break;
      }
      if (salvage) {
        stats.corruption_detected = true;
        stats.corrupt_offset = data.size() - rest.size();
        stats.lost_bytes = rest.size();
        break;
      }
      return Status::Corruption("edit WAL corrupt at byte offset " +
                                std::to_string(data.size() - rest.size()) +
                                " in " + path);
    }
    if (result == FrameResult::kBadRecord) {
      if (salvage) {
        stats.corruption_detected = true;
        stats.corrupt_offset = data.size() - rest.size();
        stats.lost_bytes = rest.size();
        break;
      }
      return Status::Corruption("undecodable edit WAL record at sequence " +
                                std::to_string(stats.last_sequence + 1) +
                                " in " + path);
    }
    ONEEDIT_RETURN_IF_ERROR(apply(record));
    ++stats.records;
    stats.last_sequence = record.sequence;
    rest.remove_prefix(frame_bytes);
  }
  return stats;
}

EditWal::Cursor::Cursor(std::string path, uint64_t start_sequence, Env* env)
    : path_(std::move(path)),
      start_sequence_(start_sequence),
      env_(env != nullptr ? env : Env::Default()) {}

StatusOr<EditWal::Cursor::Poll> EditWal::Cursor::Refill() {
  // A Reset (rotation) truncates the file; a shrink below the cursor is the
  // only way that manifests to a reader, and everything buffered is stale.
  const StatusOr<uint64_t> size = env_->FileSize(path_);
  if (!size.ok()) {
    if (size.status().code() == StatusCode::kNotFound) return Poll::kEndOfLog;
    return size.status();
  }
  if (*size < offset_) {
    offset_ = 0;
    read_offset_ = 0;
    buffer_.clear();
    buffer_pos_ = 0;
    return Poll::kRotated;
  }
  if (*size <= read_offset_) return Poll::kEndOfLog;
  std::string chunk;
  constexpr size_t kReadChunkBytes = 1u << 20;
  ONEEDIT_RETURN_IF_ERROR(
      env_->ReadFileRange(path_, read_offset_, kReadChunkBytes, &chunk));
  if (chunk.empty()) return Poll::kEndOfLog;
  // Compact the consumed prefix before growing the tail.
  if (buffer_pos_ > 0) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
  read_offset_ += chunk.size();
  buffer_.append(chunk);
  return Poll::kRecord;  // "made progress"; the caller re-examines buffer_
}

StatusOr<EditWal::Cursor::Poll> EditWal::Cursor::Next(EditWalRecord* record) {
  for (;;) {
    const std::string_view rest =
        std::string_view(buffer_).substr(buffer_pos_);
    size_t frame_bytes = 0;
    const FrameResult result = rest.empty()
                                   ? FrameResult::kIncomplete
                                   : DecodeFrame(rest, record, &frame_bytes);
    switch (result) {
      case FrameResult::kRecord:
        buffer_pos_ += frame_bytes;
        offset_ += frame_bytes;
        if (record->sequence < start_sequence_) continue;  // skip-ahead
        return Poll::kRecord;
      case FrameResult::kIncomplete: {
        // Maybe the writer appended more since the last refill; maybe the
        // log rotated. Refill decides.
        const uint64_t before = read_offset_;
        ONEEDIT_ASSIGN_OR_RETURN(const Poll refreshed, Refill());
        if (refreshed == Poll::kRotated) return Poll::kRotated;
        if (refreshed == Poll::kEndOfLog || read_offset_ == before) {
          // No new bytes: a torn tail or an append in flight — both read as
          // "end of durable log for now".
          return Poll::kEndOfLog;
        }
        continue;
      }
      case FrameResult::kCorrupt: {
        // A CRC failure with bytes beyond the frame is mid-log corruption.
        // At the very tail it may instead be an append racing our read:
        // refill and re-judge; if no new bytes arrive the tail is torn (or
        // the write is still in flight) — both read as end-of-log for now.
        if (buffer_pos_ + frame_bytes < buffer_.size()) {
          return Status::Corruption("edit WAL corrupt at byte offset " +
                                    std::to_string(offset_) + " in " + path_);
        }
        const uint64_t before = read_offset_;
        ONEEDIT_ASSIGN_OR_RETURN(const Poll refreshed, Refill());
        if (refreshed == Poll::kRotated) return Poll::kRotated;
        if (read_offset_ == before) return Poll::kEndOfLog;
        continue;
      }
      case FrameResult::kBadRecord:
        return Status::Corruption("undecodable edit WAL record at byte "
                                  "offset " +
                                  std::to_string(offset_) + " in " + path_);
    }
  }
}

}  // namespace durability
}  // namespace oneedit
