#include "durability/edit_wal.h"

#include <cstring>

#include "util/crc32.h"

namespace oneedit {
namespace durability {
namespace {

// Payload layout (little-endian):
//   u64 sequence
//   u8  flags (bit 0: first_in_batch, bit 1: quarantine verdict)
//   u8  op (EditRequest::Op)
//   u8  method (EditingMethodKind)
//   5 length-prefixed strings: subject, relation, object, utterance, user
// Quarantine verdict records (flag bit 1) append:
//   u64 quarantined_sequence
//   1 length-prefixed string: reason
constexpr size_t kFrameHeaderBytes = 2 * sizeof(uint32_t);
constexpr uint32_t kMaxPayloadBytes = 1u << 24;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

template <typename T>
bool ConsumeScalar(std::string_view* data, T* v) {
  if (data->size() < sizeof(T)) return false;
  std::memcpy(v, data->data(), sizeof(T));
  data->remove_prefix(sizeof(T));
  return true;
}

bool ConsumeString(std::string_view* data, std::string* s) {
  uint32_t size = 0;
  if (!ConsumeScalar(data, &size) || data->size() < size) return false;
  s->assign(data->data(), size);
  data->remove_prefix(size);
  return true;
}

bool DecodePayload(std::string_view payload, EditWalRecord* record) {
  uint8_t flags = 0, op = 0, method = 0;
  if (!ConsumeScalar(&payload, &record->sequence) ||
      !ConsumeScalar(&payload, &flags) || !ConsumeScalar(&payload, &op) ||
      !ConsumeScalar(&payload, &method) || op > 2 || method > 5) {
    return false;
  }
  record->first_in_batch = (flags & 1u) != 0;
  record->quarantine = (flags & 2u) != 0;
  record->request.op = static_cast<EditRequest::Op>(op);
  record->method = static_cast<EditingMethodKind>(method);
  if (!ConsumeString(&payload, &record->request.triple.subject) ||
      !ConsumeString(&payload, &record->request.triple.relation) ||
      !ConsumeString(&payload, &record->request.triple.object) ||
      !ConsumeString(&payload, &record->request.utterance) ||
      !ConsumeString(&payload, &record->request.user)) {
    return false;
  }
  if (record->quarantine &&
      (!ConsumeScalar(&payload, &record->quarantined_sequence) ||
       !ConsumeString(&payload, &record->quarantine_reason))) {
    return false;
  }
  return payload.empty();
}

}  // namespace

std::string EditWal::Encode(const EditWalRecord& record) {
  std::string payload;
  AppendU64(&payload, record.sequence);
  const uint8_t flags = (record.first_in_batch ? 1u : 0u) |
                        (record.quarantine ? 2u : 0u);
  payload.push_back(static_cast<char>(flags));
  payload.push_back(static_cast<char>(record.request.op));
  payload.push_back(static_cast<char>(record.method));
  AppendString(&payload, record.request.triple.subject);
  AppendString(&payload, record.request.triple.relation);
  AppendString(&payload, record.request.triple.object);
  AppendString(&payload, record.request.utterance);
  AppendString(&payload, record.request.user);
  if (record.quarantine) {
    AppendU64(&payload, record.quarantined_sequence);
    AppendString(&payload, record.quarantine_reason);
  }

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  AppendU32(&frame, Crc32(payload));
  frame.append(payload);
  return frame;
}

Status EditWal::Open(const std::string& path, Env* env) {
  Close();
  env_ = env != nullptr ? env : Env::Default();
  ONEEDIT_ASSIGN_OR_RETURN(file_,
                           env_->NewWritableFile(path, /*truncate=*/false));
  path_ = path;
  return Status::OK();
}

Status EditWal::Append(const EditWalRecord& record) {
  if (file_ == nullptr) return Status::FailedPrecondition("edit WAL not open");
  return file_->Append(Encode(record));
}

Status EditWal::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("edit WAL not open");
  return file_->Sync();
}

Status EditWal::Reset() {
  if (env_ == nullptr || path_.empty()) {
    return Status::FailedPrecondition("edit WAL not open");
  }
  // A previous Reset may have closed the file and then failed to reopen it
  // (transient I/O fault between close and open). Tolerating file_ == null
  // here makes Reset the retry point: the degraded service's heal probe
  // checkpoints and Resets again, and must be able to recover the handle
  // once the environment calms down instead of latching "not open" forever.
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
  ONEEDIT_ASSIGN_OR_RETURN(file_,
                           env_->NewWritableFile(path_, /*truncate=*/true));
  return Status::OK();
}

void EditWal::Close() {
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
}

StatusOr<WalReplayStats> EditWal::Replay(
    const std::string& path, Env* env,
    const std::function<Status(const EditWalRecord&)>& apply) {
  Env* e = env != nullptr ? env : Env::Default();
  WalReplayStats stats;
  if (!e->FileExists(path)) return stats;
  std::string data;
  ONEEDIT_RETURN_IF_ERROR(e->ReadFileToString(path, &data));

  std::string_view rest(data);
  while (!rest.empty()) {
    uint32_t size = 0, crc = 0;
    if (rest.size() < kFrameHeaderBytes) {
      stats.torn_bytes_dropped = rest.size();
      break;
    }
    std::string_view peek = rest;
    (void)ConsumeScalar(&peek, &size);
    (void)ConsumeScalar(&peek, &crc);
    if (peek.size() < size) {
      // The frame extends past end-of-file: a torn tail, clean end of log.
      stats.torn_bytes_dropped = rest.size();
      break;
    }
    const std::string_view payload = peek.substr(0, size);
    const bool is_final_frame = peek.size() == size;
    if (size > kMaxPayloadBytes || Crc32(payload) != crc) {
      if (is_final_frame) {
        // Fully-written length but torn/garbage payload at the very end.
        stats.torn_bytes_dropped = rest.size();
        break;
      }
      return Status::Corruption("edit WAL corrupt at byte offset " +
                                std::to_string(data.size() - rest.size()) +
                                " in " + path);
    }
    EditWalRecord record;
    if (!DecodePayload(payload, &record)) {
      return Status::Corruption("undecodable edit WAL record at sequence " +
                                std::to_string(stats.last_sequence + 1) +
                                " in " + path);
    }
    ONEEDIT_RETURN_IF_ERROR(apply(record));
    ++stats.records;
    stats.last_sequence = record.sequence;
    rest = peek.substr(size);
  }
  return stats;
}

}  // namespace durability
}  // namespace oneedit
