#ifndef ONEEDIT_DURABILITY_MANAGER_H_
#define ONEEDIT_DURABILITY_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/oneedit.h"
#include "durability/edit_wal.h"
#include "durability/env.h"

namespace oneedit {
namespace durability {

struct DurabilityOptions {
  /// Directory holding `edits.wal` and `checkpoint.oedc`; created if absent.
  std::string dir;
  /// File-ops environment; Env::Default() when null. Tests substitute a
  /// FaultInjectingEnv here.
  Env* env = nullptr;
  /// Publish a checkpoint (and rotate the WAL) every N committed edits;
  /// 0 disables automatic checkpoints (manual Checkpoint() only).
  uint64_t checkpoint_interval = 64;
  /// fsync the WAL once per batch before the batch is applied (group
  /// commit). Turning this off trades the durability guarantee for speed.
  bool sync_on_commit = true;
  /// Disk-space budget: when the filesystem holding `dir` has fewer free
  /// bytes than this, journal appends and checkpoints are refused up front
  /// with ResourceExhausted — a typed rejection the serving layer maps into
  /// read-only degradation — instead of running the disk to zero and dying
  /// mid-write. 0 disables the preflight (ENOSPC from the kernel is still
  /// mapped to ResourceExhausted by the Env).
  uint64_t min_free_bytes = 0;
};

/// What startup recovery found and did.
struct RecoveryReport {
  bool checkpoint_loaded = false;
  /// Last sequence whose effects the loaded checkpoint already contained.
  uint64_t checkpoint_sequence = 0;
  /// WAL records replayed (sequence > checkpoint_sequence).
  size_t replayed_records = 0;
  /// WAL records skipped because the checkpoint already contained them.
  size_t skipped_records = 0;
  /// Torn trailing bytes discarded from an in-flight final record.
  size_t torn_bytes_dropped = 0;
  /// Highest committed sequence after recovery; new edits continue from it.
  uint64_t last_sequence = 0;
  /// KG mutation counter recorded in the checkpoint (diagnostic).
  uint64_t checkpoint_kg_version = 0;
  /// Quarantine verdict records found in the log.
  size_t quarantine_records = 0;
  /// 2PC marker records (prepare/decision) found in the log.
  size_t txn_markers = 0;
  /// Edit records NOT replayed because a journaled verdict condemned them.
  size_t quarantined_skipped = 0;
  /// Mid-log WAL corruption was found; the intact prefix was salvaged and
  /// everything from `wal_corrupt_offset` on (`wal_lost_bytes` bytes, which
  /// may include acknowledged edits) was abandoned. The service starts
  /// degraded so the operator — or replica-assisted repair — can react.
  bool wal_corruption_detected = false;
  uint64_t wal_corrupt_offset = 0;
  size_t wal_lost_bytes = 0;
};

/// One regrouped coalesced batch handed to the replay applier. Records whose
/// quarantine verdict was journaled are already removed; `sequences` runs
/// parallel to `requests`, and `first_sequence` is the sequence of the
/// batch's original first record (including any removed one) — the seed the
/// live writer's canary validation used, so a self-healing applier
/// re-derives the exact same verdict.
struct ReplayBatch {
  std::vector<EditRequest> requests;
  std::vector<uint64_t> sequences;
  uint64_t first_sequence = 0;
};

/// One outstanding cross-shard transaction half: a journaled prepare whose
/// edit has not yet been applied (no txn-tagged apply record follows it in
/// this journal) and that no abort decision has settled. Recovery hands
/// these to the ShardRouter, which consults the coordinator's retained
/// decision to resolve commit vs presumed abort (docs/sharding.md).
struct PreparedTxn {
  uint64_t txn_id = 0;
  /// Shard index of the coordinator (the subject shard) — where the commit
  /// decision, if any, is journaled.
  uint32_t coordinator_shard = 0;
  /// This shard's half of the cross-shard edit, txn-tagged.
  EditRequest half;
};

/// Replay hook: applies one batch during recovery. Null = plain
/// OneEditSystem::EditBatch. The serving layer injects its validated
/// (canary + quarantine) applier so a crash that outran the verdict journal
/// still reaches the same post-validation state — validation is a
/// deterministic function of (pre-batch state, first_sequence).
using ReplayApplier = std::function<void(const ReplayBatch&)>;

/// Owns the durability protocol the serving writer follows:
///
///   1. LogBatch: append every request of the coalesced batch to the edit
///      WAL and group-commit with one fsync — BEFORE the batch is applied.
///      Only after LogBatch returns OK may the writer apply and acknowledge.
///   2. OnBatchApplied: count committed edits; every `checkpoint_interval`
///      of them, publish an atomic checkpoint and rotate the WAL.
///
/// and the inverse at startup:
///
///   Recover: load the newest valid checkpoint (if any), replay the WAL
///   tail on top — regrouping coalesced batches via first_in_batch so MEMIT
///   batch semantics replay exactly — tolerate a torn final record, and
///   verify the log's sequence numbers are contiguous and end at the
///   recovered commit point.
///
/// Crash windows: a crash before the WAL fsync loses only unacknowledged
/// edits; between fsync and apply, replay finishes the work; during a
/// checkpoint, the `.tmp` + rename publish means the old checkpoint + full
/// WAL still recover; between rename and WAL rotation, replay skips the
/// records the checkpoint already contains.
class DurabilityManager {
 public:
  /// Creates `options.dir` if needed and opens the edit WAL for appending.
  static StatusOr<std::unique_ptr<DurabilityManager>> Open(
      const DurabilityOptions& options);

  ~DurabilityManager() { wal_.Close(); }

  DurabilityManager(const DurabilityManager&) = delete;
  DurabilityManager& operator=(const DurabilityManager&) = delete;

  /// Restores `system` to the last durable state. Call once, on a freshly
  /// built (pristine) system, before serving. Replay is two-pass: the first
  /// pass collects quarantine verdicts (journaled after their batch in the
  /// log), the second replays edit records through `applier` with condemned
  /// records removed.
  StatusOr<RecoveryReport> Recover(OneEditSystem* system,
                                   const ReplayApplier& applier = nullptr);

  /// Journals one coalesced batch and group-commits it. On failure the
  /// batch MUST NOT be applied or acknowledged (the caller degrades).
  Status LogBatch(const std::vector<EditRequest>& requests,
                  EditingMethodKind method, Statistics* stats);

  /// Journals (and group-commits) the verdict that the edit at
  /// `quarantined_sequence` failed post-apply validation and was rolled
  /// back, so replay skips it instead of resurrecting the poison.
  Status LogQuarantine(uint64_t quarantined_sequence,
                       const std::string& reason, EditingMethodKind method,
                       Statistics* stats);

  // --- Cross-shard 2PC surface (docs/sharding.md) ----------------------------
  //
  // Marker records ride in the same CRC-framed WAL as edits: they consume
  // sequence numbers (keeping the contiguity check intact), never open a
  // batch, and are never applied by replay. The commit protocol:
  //
  //   1. LogPrepare on every participant (fsynced) — the promise.
  //   2. LogTxnDecision(commit) on the coordinator (fsynced) — the commit
  //      point. Commit decisions are RETAINED: re-journaled across WAL
  //      rotations until ForgetTxn, so a participant that crashed before
  //      applying can still learn the outcome from the coordinator.
  //   3. Each half is then applied through a normal txn-tagged LogBatch
  //      record, which replays in sequence order and marks the prepare
  //      settled. Abort decisions settle the prepare without retention —
  //      recovery presumes abort when no commit decision exists anywhere.

  /// Journals (and group-commits) a prepare marker carrying `half`. On
  /// success the transaction is tracked as outstanding: re-journaled across
  /// Checkpoint rotations until a txn-tagged apply or an abort settles it.
  Status LogPrepare(uint64_t txn_id, uint32_t coordinator_shard,
                    const EditRequest& half, EditingMethodKind method,
                    Statistics* stats);

  /// Journals (and group-commits) a decision marker. `commit` retains the
  /// decision until ForgetTxn; abort erases the outstanding prepare and
  /// retains nothing (presumed abort).
  Status LogTxnDecision(uint64_t txn_id, bool commit, EditingMethodKind method,
                        Statistics* stats);

  /// Drops a retained commit decision (and any outstanding prepare) once
  /// the router has confirmed every participant applied its half. Journals
  /// nothing — the decision simply stops being re-journaled at the next
  /// rotation.
  void ForgetTxn(uint64_t txn_id);

  /// Snapshot of the outstanding (prepared, unapplied, unaborted) halves —
  /// what recovery resolution iterates.
  std::vector<PreparedTxn> outstanding_txns() const;

  /// True if a commit decision for `txn_id` is retained in this journal.
  bool txn_committed(uint64_t txn_id) const;

  /// Retained commit decisions (coordinator journal), ascending.
  std::vector<uint64_t> retained_decisions() const;

  /// Highest transaction id seen in this journal — seeds the router's
  /// txn-id counter past anything already durable.
  uint64_t max_txn_id() const;

  /// Replication follower path: journals frames shipped from the primary
  /// verbatim (byte-identical — same CRCs, same torn-tail semantics) and
  /// group-commits them, advancing the sequence counters to
  /// `last_sequence`. As with LogBatch, the caller applies only after this
  /// returns OK, so a follower's acknowledged state is recoverable too.
  Status AppendReplicated(std::string_view frames, uint64_t last_sequence,
                          uint64_t last_term, size_t records,
                          Statistics* stats);

  /// Replication follower path: atomically publishes `bytes` (a checkpoint
  /// image shipped by the primary) as this manager's checkpoint, restores
  /// `system` from it, and rotates the WAL — everything at or below the
  /// snapshot's sequence is covered by the installed image. Returns the
  /// snapshot's last sequence; the commit point jumps to it.
  StatusOr<uint64_t> InstallSnapshotBytes(const std::string& bytes,
                                          OneEditSystem* system,
                                          Statistics* stats);

  /// Tells the manager `applied` edits from the last logged batch were
  /// applied; publishes a checkpoint when the cadence is due. A checkpoint
  /// failure is returned but is not fatal — the WAL still covers the edits.
  Status OnBatchApplied(OneEditSystem& system, size_t applied,
                        Statistics* stats);

  /// Publishes a checkpoint now and rotates the WAL on success.
  Status Checkpoint(OneEditSystem& system, Statistics* stats);

  /// Replica-assisted WAL repair: truncates the journal at `corrupt_offset`
  /// (the first bad frame) and re-appends `frames` — clean, byte-identical
  /// bytes fetched from a peer — restoring the journal end-to-end. The
  /// caller must hold the writer exclusively and must have verified that
  /// `frames` decode contiguously from the last intact record through the
  /// commit point. Counters are untouched: committed state never moved.
  Status RepairWalRegion(uint64_t corrupt_offset, std::string_view frames);

  /// Replica-assisted checkpoint repair: atomically replaces the checkpoint
  /// FILE with `bytes` (a peer's verified image) without restoring any live
  /// state — the live system is intact; only the on-disk copy rotted. The
  /// caller must have verified the image and that its sequence still chains
  /// with this node's WAL.
  Status ReplaceCheckpointBytes(const std::string& bytes);

  /// Stale `*.tmp` files swept from the durability dir at Open (a crash
  /// between checkpoint write and rename leaks them).
  uint64_t tmp_files_swept() const { return tmp_files_swept_; }

  const std::string& wal_path() const { return wal_path_; }
  const std::string& checkpoint_path() const { return checkpoint_path_; }
  /// Sequence number the next logged edit will receive. Advances record by
  /// record DURING LogBatch, so a concurrent reader can observe mid-batch
  /// values; use committed_sequence() for batch-aligned shipping decisions.
  uint64_t next_sequence() const { return next_sequence_; }
  /// Highest sequence whose whole batch is durably group-committed. Only
  /// moves after a successful fsync (or append, when sync_on_commit is
  /// off), and always lands on a batch boundary — the replication server
  /// ships records up to this point and never a half-committed batch.
  uint64_t committed_sequence() const { return committed_sequence_; }
  /// Committed edits since the last published checkpoint — how far the WAL
  /// tail has grown (metrics scrapes read this from another thread).
  uint64_t edits_since_checkpoint() const { return edits_since_checkpoint_; }
  const DurabilityOptions& options() const { return options_; }

  /// Highest primary term (election epoch) observed anywhere: in our own
  /// promotions, in checkpoints, in replicated records, or in fencing
  /// rejections carried back over the wire.
  uint64_t primary_term() const { return primary_term_; }
  /// Highest term this node itself won via a Promote (BumpTerm). New local
  /// records are stamped with it. primary_term() > owned_term() means some
  /// other node has since won an election — this node is deposed.
  uint64_t owned_term() const { return owned_term_; }
  /// Term of the last record journaled locally (logged or replicated) —
  /// the follower half of the divergence comparison on reconnect.
  uint64_t applied_term() const { return applied_term_; }
  /// Committed sequence at the moment owned_term() began. Records above it
  /// journaled under an older term belong to a deposed primary's suffix.
  uint64_t term_start_sequence() const { return term_start_sequence_; }

  /// Raises the observed term to at least `term` (monotonic; never lowers).
  void AdoptTerm(uint64_t term);

  /// Election win (Promote): bumps past every observed term, takes
  /// ownership of the new term, and marks the current commit point as its
  /// start. Persisted by the next checkpoint; callers should publish one
  /// promptly (Promote's WAL seal does). Returns the new term.
  uint64_t BumpTerm();

 private:
  explicit DurabilityManager(const DurabilityOptions& options);

  /// ResourceExhausted when the free-space preflight says the budget is
  /// gone; OK when disabled or unmeasurable.
  Status CheckFreeSpace();

  /// Applies one record's effect on the txn tables (insert prepare, retain
  /// commit, settle on abort or tagged apply). Called with txn_mutex_ held,
  /// for every journaled/replicated/replayed record in order.
  void TxnBookkeepingLocked(const EditWalRecord& record);

  /// Appends one marker record with a fresh sequence (no sync; caller
  /// groups). Advances next_sequence_ on success.
  Status AppendMarkerLocked(TxnMarker marker, uint64_t txn_id,
                            uint32_t coordinator_shard,
                            const EditRequest* half,
                            EditingMethodKind method);

  DurabilityOptions options_;
  Env* env_;
  std::string wal_path_;
  std::string checkpoint_path_;
  EditWal wal_;
  /// Atomic so the metrics scrape thread can sample both while the writer
  /// advances them; only the writer (or startup recovery) mutates them.
  std::atomic<uint64_t> next_sequence_{1};
  std::atomic<uint64_t> committed_sequence_{0};
  std::atomic<uint64_t> edits_since_checkpoint_{0};
  /// Term bookkeeping (see the accessors). primary_term_ may be raised from
  /// replication threads (AdoptTerm is a CAS max); the others are mutated
  /// only by the writer, recovery, or Promote.
  std::atomic<uint64_t> primary_term_{0};
  std::atomic<uint64_t> owned_term_{0};
  std::atomic<uint64_t> applied_term_{0};
  std::atomic<uint64_t> term_start_sequence_{0};
  uint64_t tmp_files_swept_ = 0;

  /// 2PC state (guarded by txn_mutex_; the WAL itself is guarded by the
  /// caller's exclusive lock, as for every other append path).
  mutable std::mutex txn_mutex_;
  /// txn_id -> unapplied prepared half.
  std::map<uint64_t, PreparedTxn> outstanding_;
  /// Retained commit decisions (coordinator journal) until ForgetTxn.
  std::set<uint64_t> committed_txns_;
  uint64_t max_txn_id_ = 0;
};

}  // namespace durability
}  // namespace oneedit

#endif  // ONEEDIT_DURABILITY_MANAGER_H_
