#ifndef ONEEDIT_DURABILITY_EDIT_WAL_H_
#define ONEEDIT_DURABILITY_EDIT_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/oneedit.h"
#include "durability/env.h"

namespace oneedit {
namespace durability {

/// One journaled edit: the full typed EditRequest plus the sequence number
/// the writer assigned, the editing method that will apply it, and whether
/// it opened a coalesced writer batch (so replay regroups batches exactly).
///
/// A record may instead be a *quarantine verdict* (`quarantine` set): it
/// carries no request, names an earlier sequence whose edit failed
/// post-apply validation and was rolled back, and tells replay to skip that
/// record so a poison edit is never resurrected. Verdict records consume a
/// sequence number of their own, keeping the log's contiguity check intact,
/// and never open a batch.
struct EditWalRecord {
  uint64_t sequence = 0;
  bool first_in_batch = true;
  EditingMethodKind method = EditingMethodKind::kMemit;
  EditRequest request;
  bool quarantine = false;
  uint64_t quarantined_sequence = 0;
  std::string quarantine_reason;
};

/// What a replay saw: how many intact records, the highest sequence, and
/// how many torn trailing bytes were discarded.
struct WalReplayStats {
  size_t records = 0;
  uint64_t last_sequence = 0;
  size_t torn_bytes_dropped = 0;
};

/// The unified edit write-ahead log: a binary, CRC32-framed, sequence-
/// numbered journal of typed EditRequests (docs/durability.md has the byte
/// layout). The serving writer appends a batch's records and group-commits
/// them with one Sync *before* applying the batch, so an acknowledged edit
/// is always recoverable. Subsumes the KG-only text WriteAheadLog, which
/// stays as a compatibility reader for old logs.
///
/// Framing: [u32 payload_size][u32 crc32(payload)][payload]. Replay treats
/// an incomplete or CRC-failing *final* frame as a torn tail (clean end of
/// log) and anything malformed earlier as Corruption.
class EditWal {
 public:
  EditWal() = default;
  ~EditWal() { Close(); }

  EditWal(const EditWal&) = delete;
  EditWal& operator=(const EditWal&) = delete;

  /// Opens (creating if needed) the log at `path` for appending through
  /// `env` (Env::Default() when null).
  Status Open(const std::string& path, Env* env = nullptr);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends one framed record (write-through, not yet fsynced).
  Status Append(const EditWalRecord& record);

  /// Group commit: fsyncs everything appended so far.
  Status Sync();

  /// Drops every record (log rotation after a checkpoint made them
  /// redundant). The log stays open and empty. On failure the log may be
  /// left closed (the old handle is gone and the truncating reopen failed);
  /// calling Reset again once I/O recovers reopens it — it never latches.
  Status Reset();

  void Close();

  /// Streams every intact record in `path` through `apply`, stopping with
  /// the first non-OK status `apply` returns. Missing file = empty log.
  static StatusOr<WalReplayStats> Replay(
      const std::string& path, Env* env,
      const std::function<Status(const EditWalRecord&)>& apply);

  /// Encodes `record` as one framed byte string (exposed for tests).
  static std::string Encode(const EditWalRecord& record);

 private:
  Env* env_ = nullptr;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
};

}  // namespace durability
}  // namespace oneedit

#endif  // ONEEDIT_DURABILITY_EDIT_WAL_H_
