#ifndef ONEEDIT_DURABILITY_EDIT_WAL_H_
#define ONEEDIT_DURABILITY_EDIT_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "core/oneedit.h"
#include "durability/env.h"

namespace oneedit {
namespace durability {

/// One journaled edit: the full typed EditRequest plus the sequence number
/// the writer assigned, the editing method that will apply it, and whether
/// it opened a coalesced writer batch (so replay regroups batches exactly).
///
/// A record may instead be a *quarantine verdict* (`quarantine` set): it
/// carries no request, names an earlier sequence whose edit failed
/// post-apply validation and was rolled back, and tells replay to skip that
/// record so a poison edit is never resurrected. Verdict records consume a
/// sequence number of their own, keeping the log's contiguity check intact,
/// and never open a batch.
/// Cross-shard two-phase-commit marker kinds (docs/sharding.md). Marker
/// records — like quarantine verdicts — consume a sequence number, never
/// open a batch, and are never applied by replay; they exist so recovery
/// can resolve a transaction that crashed between its phases.
enum class TxnMarker : uint8_t {
  kNone = 0,
  /// A participant durably promises it can apply its half; carries the half
  /// itself (in `request`) and the coordinator's shard id.
  kPrepare = 1,
  /// The coordinator's commit decision for `txn_id` — the 2PC commit point.
  kCommitDecision = 2,
  /// An abort decision (coordinator abort, or a participant settling a
  /// presumed-abort prepare at recovery).
  kAbortDecision = 3,
};

struct EditWalRecord {
  uint64_t sequence = 0;
  /// Primary term (election epoch) the record was journaled under. Replay
  /// and replication use it to spot a suffix written by a deposed primary.
  uint64_t term = 0;
  bool first_in_batch = true;
  EditingMethodKind method = EditingMethodKind::kMemit;
  EditRequest request;
  bool quarantine = false;
  uint64_t quarantined_sequence = 0;
  std::string quarantine_reason;
  /// kNone for ordinary records. Marker records carry `txn_id` (and, for
  /// kPrepare, `txn_coordinator` + the half in `request`).
  TxnMarker txn_marker = TxnMarker::kNone;
  /// Nonzero for marker records AND for applied records that are one half
  /// of a cross-shard transaction (mirrors request.txn_id on decode).
  uint64_t txn_id = 0;
  /// kPrepare only: shard index of the transaction's coordinator.
  uint32_t txn_coordinator = 0;
};

/// What a replay saw: how many intact records, the highest sequence, and
/// how many torn trailing bytes were discarded.
struct WalReplayStats {
  size_t records = 0;
  uint64_t last_sequence = 0;
  size_t torn_bytes_dropped = 0;
  /// Salvage mode only: mid-log corruption was hit and replay stopped there
  /// cleanly instead of erroring. `corrupt_offset` is the byte offset of the
  /// first bad frame; `lost_bytes` the bytes from there to end-of-file.
  bool corruption_detected = false;
  uint64_t corrupt_offset = 0;
  size_t lost_bytes = 0;
};

/// The unified edit write-ahead log: a binary, CRC32-framed, sequence-
/// numbered journal of typed EditRequests (docs/durability.md has the byte
/// layout). The serving writer appends a batch's records and group-commits
/// them with one Sync *before* applying the batch, so an acknowledged edit
/// is always recoverable. Subsumes the KG-only text WriteAheadLog, which
/// stays as a compatibility reader for old logs.
///
/// Framing: [u32 payload_size][u32 crc32(payload)][payload]. Replay treats
/// an incomplete or CRC-failing *final* frame as a torn tail (clean end of
/// log) and anything malformed earlier as Corruption.
class EditWal {
 public:
  EditWal() = default;
  ~EditWal() { Close(); }

  EditWal(const EditWal&) = delete;
  EditWal& operator=(const EditWal&) = delete;

  /// Opens (creating if needed) the log at `path` for appending through
  /// `env` (Env::Default() when null).
  Status Open(const std::string& path, Env* env = nullptr);

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends one framed record (write-through, not yet fsynced).
  Status Append(const EditWalRecord& record);

  /// Appends pre-encoded frame bytes verbatim (write-through, not yet
  /// fsynced). Replication uses this so a follower's WAL is byte-identical
  /// to the primary's shipped frames — same CRCs, same torn-tail semantics.
  Status AppendRaw(std::string_view frames);

  /// Group commit: fsyncs everything appended so far.
  Status Sync();

  /// Drops every record (log rotation after a checkpoint made them
  /// redundant). The log stays open and empty. On failure the log may be
  /// left closed (the old handle is gone and the truncating reopen failed);
  /// calling Reset again once I/O recovers reopens it — it never latches.
  Status Reset();

  void Close();

  /// Streams every intact record in `path` through `apply`, stopping with
  /// the first non-OK status `apply` returns. Missing file = empty log.
  /// With `salvage` set, mid-log corruption stops the replay cleanly at the
  /// last intact record (reported in the stats) instead of failing — the
  /// recovery path keeps the intact prefix and reports the loss rather than
  /// refusing to start.
  static StatusOr<WalReplayStats> Replay(
      const std::string& path, Env* env,
      const std::function<Status(const EditWalRecord&)>& apply,
      bool salvage = false);

  /// Encodes `record` as one framed byte string (exposed for tests).
  static std::string Encode(const EditWalRecord& record);

  /// What DecodeFrame found at the front of a buffer.
  enum class FrameResult {
    kRecord,      ///< one intact frame decoded; `*frame_bytes` consumed
    kIncomplete,  ///< buffer ends mid-frame (torn tail or in-flight append)
    kCorrupt,     ///< frame bytes all present but the CRC does not match
    kBadRecord,   ///< CRC matches but the payload does not decode
  };

  /// Decodes the frame at the front of `buffer` into `record`, setting
  /// `*frame_bytes` to its total size (header + payload) on kRecord. The
  /// inverse of Encode, shared by Replay, Cursor and the replication
  /// follower (which decodes shipped frames before journaling them).
  static FrameResult DecodeFrame(std::string_view buffer,
                                 EditWalRecord* record, size_t* frame_bytes);

  /// A streaming reader over a WAL that another handle may still be
  /// appending to — the primitive under WAL shipping. Next() returns one
  /// intact record at a time and reports, instead of erroring on, the two
  /// states a live log legitimately hits:
  ///
  ///  - kEndOfLog: no complete frame past the cursor yet. Indistinguishable
  ///    from a torn tail by design — both mean "nothing durable beyond
  ///    here"; poll again after the writer's next group commit.
  ///  - kRotated: the file shrank below the cursor's offset (Reset after a
  ///    checkpoint). The cursor rewinds itself to byte 0; the caller must
  ///    decide whether the new log still covers its target sequence or a
  ///    snapshot is needed.
  ///
  /// Records below `start_sequence` are skipped, so ReadFrom-style
  /// positioning is just construction. Batch regrouping is the same
  /// first_in_batch convention Replay uses; callers that need whole batches
  /// group on that flag (see replication::ReplicationServer).
  class Cursor {
   public:
    /// Reads `path` through `env` (Env::Default() when null), skipping
    /// records with sequence < `start_sequence`. A missing file reads as an
    /// empty log (kEndOfLog), so a cursor can be opened before the writer.
    Cursor(std::string path, uint64_t start_sequence, Env* env = nullptr);

    enum class Poll { kRecord, kEndOfLog, kRotated };

    /// Advances to the next intact record at or above start_sequence.
    /// Corruption before the final frame is an error, as in Replay.
    StatusOr<Poll> Next(EditWalRecord* record);

    /// Byte offset of the next unread frame.
    uint64_t offset() const { return offset_; }

   private:
    /// Tops up buffer_ from the file. Detects rotation (file shrank).
    StatusOr<Poll> Refill();

    std::string path_;
    uint64_t start_sequence_ = 0;
    Env* env_ = nullptr;
    /// File offset of the first byte NOT yet in buffer_.
    uint64_t read_offset_ = 0;
    /// File offset of the next undecoded frame (= read_offset_ minus the
    /// undecoded remainder of buffer_).
    uint64_t offset_ = 0;
    std::string buffer_;
    size_t buffer_pos_ = 0;
  };

 private:
  Env* env_ = nullptr;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
};

}  // namespace durability
}  // namespace oneedit

#endif  // ONEEDIT_DURABILITY_EDIT_WAL_H_
