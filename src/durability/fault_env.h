#ifndef ONEEDIT_DURABILITY_FAULT_ENV_H_
#define ONEEDIT_DURABILITY_FAULT_ENV_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "durability/env.h"
#include "util/rng.h"

namespace oneedit {
namespace durability {

/// An Env decorator that can fail — or "crash" — at any durability sync
/// point. Every Append / Sync / rename / truncating open / remove /
/// directory-fsync / truncate is one numbered failpoint; arming
/// `CrashAt(k)` makes the k-th such operation
/// fail (an armed Append writes only a prefix of its bytes first, modelling
/// a torn page), and every operation after it fails too, as if the process
/// had died at that instant. The files written so far stay on disk exactly
/// as they were — the recovery path's input.
///
/// The crash-safety property test iterates k over every failpoint of a
/// scripted workload; the CI smoke (`examples/recovery_demo --hard-crash`)
/// instead sets `exit_on_crash` so the armed failpoint genuinely
/// `_Exit(137)`s the process mid-edit, like `kill -9`.
class FaultInjectingEnv : public Env {
 public:
  /// Wraps `base` (Env::Default() when null). `base` must outlive this env.
  explicit FaultInjectingEnv(Env* base = nullptr);

  /// Arms a crash at the `op`-th (0-based) durability operation from now.
  /// Resets the counter and any previous crash.
  void CrashAt(long op);

  /// Disarms and clears a triggered crash; subsequent ops pass through.
  /// Also clears the transient modes below.
  void Clear();

  /// Non-latching transient faults: the next `n` durability operations fail
  /// with IoError, then operations succeed again — the bounded-retry path's
  /// test double (a brief I/O stall, not a dead disk). Unlike CrashAt, the
  /// env never latches into the crashed state.
  void FailNext(long n);

  /// Seeded intermittent faults: every durability operation independently
  /// fails with probability `p` (non-latching). `p` = 0 disables. The chaos
  /// CI entry drives serving stress through this mode.
  void SetIntermittent(double p, uint64_t seed = 42);

  /// Disk-budget mode: every Append debits its byte count from `bytes`;
  /// once the budget is exhausted appends fail with ResourceExhausted — a
  /// deterministic full disk. Non-latching: AddDiskBudget (freed space)
  /// makes writes succeed again. Pass a negative value to disable.
  void SetDiskBudget(long bytes);

  /// Frees `bytes` of injected disk space (no-op unless budget mode is on).
  void AddDiskBudget(long bytes);

  /// Remaining injected budget; negative when budget mode is disabled.
  long disk_budget() const { return disk_budget_.load(); }

  /// Transient failures injected so far (FailNext + intermittent).
  long transient_failures() const { return transient_failures_.load(); }

  /// Number of durability operations observed since the last CrashAt/Clear.
  long ops_seen() const { return ops_seen_.load(); }

  bool crashed() const { return crashed_.load(); }

  /// When set, a triggered crash calls std::_Exit(137) instead of returning
  /// IoError — a real mid-edit process death for the recovery smoke test.
  void set_exit_on_crash(bool value) { exit_on_crash_ = value; }

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  Status ReadFileRange(const std::string& path, uint64_t offset,
                       size_t max_bytes, std::string* out) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  StatusOr<uint64_t> FreeDiskSpace(const std::string& path) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* out) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;

 private:
  friend class FaultInjectingFile;

  /// Counts one failpoint; returns true if this op must fail (and marks the
  /// env crashed when it is the armed one).
  bool ShouldFail();

  /// Charges `bytes` against the injected disk budget; ResourceExhausted
  /// when the budget cannot cover them. OK when budget mode is off.
  Status DebitDiskBudget(size_t bytes);

  Env* base_;
  std::atomic<long> ops_seen_{0};
  std::atomic<long> crash_at_{-1};
  std::atomic<bool> crashed_{false};
  std::atomic<long> fail_next_{0};
  std::atomic<long> transient_failures_{0};
  std::atomic<long> disk_budget_{-1};
  bool exit_on_crash_ = false;

  /// Guards the intermittent-mode RNG (serving stress hits the env from the
  /// writer thread while the test thread reconfigures it).
  mutable std::mutex intermittent_mutex_;
  double intermittent_p_ = 0.0;
  Rng intermittent_rng_{42};
};

}  // namespace durability
}  // namespace oneedit

#endif  // ONEEDIT_DURABILITY_FAULT_ENV_H_
