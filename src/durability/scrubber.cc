#include "durability/scrubber.h"

#include <algorithm>

#include "durability/checkpoint.h"
#include "durability/edit_wal.h"

namespace oneedit {
namespace durability {

Scrubber::Scrubber(DurabilityManager* durability, Statistics* stats,
                   ScrubOptions options, CorruptionCallback on_corruption)
    : durability_(durability),
      stats_(stats),
      options_(options),
      on_corruption_(std::move(on_corruption)),
      env_(durability->options().env != nullptr ? durability->options().env
                                                : Env::Default()) {}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Scrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!thread_.joinable()) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

void Scrubber::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, options_.interval,
                          [this] { return stopping_; })) {
      return;
    }
    lock.unlock();
    ScrubOnce();
    lock.lock();
  }
}

void Scrubber::Throttle(uint64_t bytes) {
  if (options_.max_bytes_per_second == 0) return;
  throttle_bytes_ += bytes;
  // Sleep in ~50ms granules so Stop never waits long on a pass in flight.
  const uint64_t granule = std::max<uint64_t>(
      1, options_.max_bytes_per_second / 20);
  if (throttle_bytes_ < granule) return;
  const auto sleep = std::chrono::microseconds(
      throttle_bytes_ * 1000000 / options_.max_bytes_per_second);
  throttle_bytes_ = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  stop_cv_.wait_for(lock, sleep, [this] { return stopping_; });
}

void Scrubber::ScrubWal(std::vector<ScrubFinding>* findings) {
  // A checkpoint publish rotates the WAL mid-pass; the cursor reports the
  // shrink and the pass just starts over (bounded: rotations are rare).
  for (int attempt = 0; attempt < 3; ++attempt) {
    // Snapshot the commit point BEFORE scanning: every sequence committed
    // by now must be accounted for by the time the scan ends, no matter how
    // far the writer advances meanwhile.
    const uint64_t committed_before = durability_->committed_sequence();
    EditWal::Cursor cursor(durability_->wal_path(), 0, env_);
    uint64_t last_sequence = 0;
    uint64_t last_offset = 0;
    bool rotated = false;
    bool corrupt = false;
    for (;;) {
      EditWalRecord record;
      const StatusOr<EditWal::Cursor::Poll> poll = cursor.Next(&record);
      if (!poll.ok()) {
        if (poll.status().code() != StatusCode::kCorruption) return;  // I/O
        ScrubFinding finding;
        finding.target = ScrubFinding::Target::kWal;
        finding.corrupt_offset = cursor.offset();
        finding.last_intact_sequence = last_sequence;
        finding.detail = poll.status().message();
        findings->push_back(std::move(finding));
        corrupt = true;
        break;
      }
      if (*poll == EditWal::Cursor::Poll::kRotated) {
        rotated = true;
        break;
      }
      if (*poll == EditWal::Cursor::Poll::kEndOfLog) break;
      last_sequence = record.sequence;
      Throttle(cursor.offset() - last_offset);
      last_offset = cursor.offset();
    }
    if (rotated) continue;
    if (corrupt) return;

    // Missing-tail rule: a bit flip in the FINAL frame reads as a torn tail
    // (frames cannot tell the difference), but a torn tail only ever holds
    // unacknowledged bytes. Anything committed before the pass started that
    // neither the journal nor the checkpoint covers was acknowledged — and
    // is gone.
    uint64_t checkpointed = 0;
    if (env_->FileExists(durability_->checkpoint_path())) {
      const StatusOr<CheckpointState> peek =
          PeekCheckpointState(durability_->checkpoint_path(), env_);
      if (peek.ok()) checkpointed = peek->last_sequence;
    }
    const uint64_t covered = std::max(last_sequence, checkpointed);
    if (covered < committed_before) {
      ScrubFinding finding;
      finding.target = ScrubFinding::Target::kWal;
      finding.corrupt_offset = cursor.offset();
      finding.last_intact_sequence = last_sequence;
      finding.detail = "committed sequence " +
                       std::to_string(committed_before) +
                       " not covered by journal (last intact " +
                       std::to_string(last_sequence) + ") or checkpoint (" +
                       std::to_string(checkpointed) +
                       "): tail corruption in " + durability_->wal_path();
      findings->push_back(std::move(finding));
    }
    return;
  }
}

void Scrubber::ScrubCheckpoint(std::vector<ScrubFinding>* findings) {
  const std::string& path = durability_->checkpoint_path();
  if (!env_->FileExists(path)) return;
  Status status = VerifyCheckpointIntegrity(path, env_).status();
  if (status.ok()) return;
  if (status.code() != StatusCode::kCorruption) return;  // transient I/O
  // One re-read before declaring rot: the first read may have raced a
  // concurrent temp+rename publish in some unlucky way.
  status = VerifyCheckpointIntegrity(path, env_).status();
  if (status.ok() || status.code() != StatusCode::kCorruption) return;
  ScrubFinding finding;
  finding.target = ScrubFinding::Target::kCheckpoint;
  finding.detail = status.message();
  findings->push_back(std::move(finding));
  // Charge the whole image against the rate budget (it was read twice).
  const StatusOr<uint64_t> size = env_->FileSize(path);
  if (size.ok()) Throttle(*size * 2);
}

std::vector<ScrubFinding> Scrubber::ScrubOnce() {
  std::vector<ScrubFinding> findings;
  ScrubWal(&findings);
  ScrubCheckpoint(&findings);
  passes_.fetch_add(1);
  if (stats_ != nullptr) stats_->Add(Ticker::kScrubPasses);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_finding_ = findings.empty() ? "" : findings.front().detail;
  }
  for (const ScrubFinding& finding : findings) {
    corruptions_found_.fetch_add(1);
    if (stats_ != nullptr) stats_->Add(Ticker::kScrubCorruptionsFound);
    if (on_corruption_) on_corruption_(finding);
  }
  return findings;
}

std::string Scrubber::last_finding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_finding_;
}

}  // namespace durability
}  // namespace oneedit
