#include "model/language_model.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/rng.h"

namespace oneedit {

LanguageModel::LanguageModel(const ModelConfig& config, Vocab vocab)
    : config_(config),
      vocab_(std::make_shared<const Vocab>(std::move(vocab))),
      embeddings_(std::make_shared<const EmbeddingTable>(
          config.dim, config.seed, config.alias_spread, *vocab_)),
      memory_(std::make_unique<AssocMemory>(config.num_layers, config.dim)) {}

void LanguageModel::Pretrain(const std::vector<NamedTriple>& facts) {
  const size_t num_layers = config_.num_layers;
  const int paraphrases = std::max(1, config_.pretrain_paraphrases);
  // Per-layer, per-paraphrase write weight so pooled recall at the center
  // key returns ~pretrain_strength * value.
  const double alpha =
      config_.pretrain_strength / (static_cast<double>(num_layers) * paraphrases);

  // Canonical entity -> its alias surface forms (the corpus mentions facts
  // by alias too, so alias keys get their own storage).
  std::unordered_map<std::string, std::vector<std::string>> aliases_of;
  for (const auto& [alias, canonical] : vocab_->alias_of) {
    aliases_of[canonical].push_back(alias);
  }
  for (auto& [canonical, aliases] : aliases_of) {
    std::sort(aliases.begin(), aliases.end());
  }

  std::unordered_set<std::string> occupied;  // "subject|relation"
  for (const NamedTriple& fact : facts) {
    occupied.insert(fact.subject + "|" + fact.relation);
    const Vec& value = embeddings_->Entity(fact.object);
    const uint64_t fact_seed =
        config_.seed ^
        Rng::HashString("fact:" + fact.subject + "|" + fact.relation + "|" +
                        fact.object);
    for (size_t layer = 0; layer < num_layers; ++layer) {
      const Vec center = embeddings_->Key(layer, fact.subject, fact.relation);
      for (int p = 0; p < paraphrases; ++p) {
        // p == 0 stores at the exact center; others spread the basin.
        const double radius = p == 0 ? 0.0 : config_.paraphrase_spread;
        const Vec key = embeddings_->PerturbKey(
            center, radius, fact_seed + static_cast<uint64_t>(p), layer);
        memory_->AddRankOne(layer, value, key, alpha);
      }
      // Alias surface forms of the subject get their own (weaker) storage.
      auto alias_it = aliases_of.find(fact.subject);
      if (alias_it != aliases_of.end() && config_.alias_basin > 0.0) {
        for (const std::string& alias : alias_it->second) {
          const Vec alias_key =
              embeddings_->Key(layer, alias, fact.relation);
          memory_->AddRankOne(
              layer, value, alias_key,
              config_.alias_basin * config_.pretrain_strength /
                  static_cast<double>(num_layers));
        }
      }
    }
  }

  // Distractor ("hallucination floor") associations in empty slots: a query
  // the model was never trained on still decodes to some confident-looking
  // wrong answer part of the time. Alias slots are eligible too (their true
  // fact then competes with the distractor, as in real models).
  if (config_.junk_strength > 0.0 && !vocab_->entities.empty()) {
    std::vector<std::string> junk_subjects = vocab_->entities;
    for (const auto& [alias, canonical] : vocab_->alias_of) {
      junk_subjects.push_back(alias);
    }
    std::sort(junk_subjects.begin(), junk_subjects.end());
    for (const VocabRelation& rel : vocab_->relations) {
      for (const std::string& entity : junk_subjects) {
        if (occupied.count(entity + "|" + rel.name) > 0) continue;
        Rng slot_rng(config_.seed ^
                     Rng::HashString("junk:" + entity + "|" + rel.name));
        if (!slot_rng.NextBool(config_.junk_fraction)) continue;
        const std::string& distractor =
            vocab_->entities[slot_rng.NextBelow(vocab_->entities.size())];
        const Vec& value = embeddings_->Entity(distractor);
        const double strength =
            slot_rng.NextUniform(0.0, 2.0 * config_.junk_strength);
        for (size_t layer = 0; layer < num_layers; ++layer) {
          const Vec key = embeddings_->Key(layer, entity, rel.name);
          memory_->AddRankOne(layer, value, key,
                              strength / static_cast<double>(num_layers));
        }
      }
    }
  }
  consolidated_ = memory_->Snapshot();
  pretrained_ = true;
}

Decode LanguageModel::DecodeVector(const Vec& pooled) const {
  Decode out;
  double best = -1e300;
  double second = -1e300;
  for (const std::string& candidate : vocab_->entities) {
    const double score = Dot(pooled, embeddings_->Entity(candidate));
    if (score > best) {
      second = best;
      best = score;
      out.entity = candidate;
    } else if (score > second) {
      second = score;
    }
  }
  out.score = best;
  out.margin = vocab_->entities.size() > 1 ? best - second : best;
  return out;
}

Decode LanguageModel::QueryInternal(const std::string& subject,
                                    const std::string& relation,
                                    const QueryOptions& options,
                                    bool attenuate_unconsolidated) const {
  std::vector<Vec> keys;
  keys.reserve(config_.num_layers);
  for (size_t layer = 0; layer < config_.num_layers; ++layer) {
    const Vec center = embeddings_->Key(layer, subject, relation);
    keys.push_back(embeddings_->PerturbKey(center, options.key_noise,
                                           options.probe_seed, layer));
  }

  if (options.use_adaptors) {
    for (const auto& adaptor : adaptors_) {
      std::string answer;
      if (adaptor->TryAnswer(keys[0], &answer)) {
        Decode out;
        out.entity = vocab_->Canonical(answer);
        out.score = 1.0;
        out.margin = 1.0;
        out.intercepted = true;
        return out;
      }
    }
  }

  const Vec pooled =
      attenuate_unconsolidated && pretrained_
          ? memory_->RecallBlended(keys, consolidated_,
                                   config_.hop_edit_attenuation)
          : memory_->Recall(keys);
  return DecodeVector(pooled);
}

Decode LanguageModel::Query(const std::string& subject,
                            const std::string& relation,
                            const QueryOptions& options) const {
  return QueryInternal(subject, relation, options,
                       /*attenuate_unconsolidated=*/false);
}

Decode LanguageModel::QueryComposed(const std::string& subject,
                                    const std::string& r1,
                                    const std::string& r2,
                                    uint64_t probe_seed) const {
  // Multi-hop composition reads the weights through the consolidated
  // pathway: post-pretraining deltas (edits) participate only at
  // hop_edit_attenuation strength (Cheng et al. 2024's multi-hop failure).
  QueryOptions hop1_options;
  hop1_options.key_noise = config_.hop_noise;
  hop1_options.probe_seed = probe_seed ^ Rng::HashString("hop1");
  const Decode hop1 = QueryInternal(subject, r1, hop1_options,
                                    /*attenuate_unconsolidated=*/true);
  if (!hop1.intercepted && hop1.margin < config_.compose_margin) {
    // The model cannot confidently resolve the inner entity; the chain
    // breaks. Surface the (likely wrong) first-hop decode with zero margin.
    Decode failed = hop1;
    failed.margin = 0.0;
    failed.score = 0.0;
    return failed;
  }

  QueryOptions hop2_options;
  hop2_options.key_noise = config_.hop_noise * 0.5;
  hop2_options.probe_seed = probe_seed ^ Rng::HashString("hop2");
  Decode hop2 = QueryInternal(hop1.entity, r2, hop2_options,
                              /*attenuate_unconsolidated=*/true);
  if (!hop2.intercepted) {
    hop2.margin = std::min(hop2.margin, hop1.margin);
  }
  return hop2;
}

std::vector<Decode> LanguageModel::QueryTopK(const std::string& subject,
                                             const std::string& relation,
                                             size_t k,
                                             const QueryOptions& options) const {
  std::vector<Vec> keys;
  keys.reserve(config_.num_layers);
  for (size_t layer = 0; layer < config_.num_layers; ++layer) {
    const Vec center = embeddings_->Key(layer, subject, relation);
    keys.push_back(embeddings_->PerturbKey(center, options.key_noise,
                                           options.probe_seed, layer));
  }
  const Vec pooled = memory_->Recall(keys);

  std::vector<Decode> scored;
  scored.reserve(vocab_->entities.size());
  for (const std::string& candidate : vocab_->entities) {
    Decode decode;
    decode.entity = candidate;
    decode.score = Dot(pooled, embeddings_->Entity(candidate));
    scored.push_back(std::move(decode));
  }
  std::sort(scored.begin(), scored.end(),
            [](const Decode& a, const Decode& b) { return a.score > b.score; });
  if (scored.size() > k) scored.resize(std::max<size_t>(k, 1));
  for (size_t i = 0; i < scored.size(); ++i) {
    scored[i].margin =
        i + 1 < scored.size() ? scored[i].score - scored[i + 1].score : 0.0;
  }
  return scored;
}

std::vector<Vec> LanguageModel::CenterKeys(const std::string& subject,
                                           const std::string& relation) const {
  std::vector<Vec> keys;
  keys.reserve(config_.num_layers);
  for (size_t layer = 0; layer < config_.num_layers; ++layer) {
    keys.push_back(embeddings_->Key(layer, subject, relation));
  }
  return keys;
}

void LanguageModel::AddAdaptor(std::shared_ptr<QueryAdaptor> adaptor) {
  adaptors_.push_back(std::move(adaptor));
}

void LanguageModel::RemoveAdaptor(const QueryAdaptor* adaptor) {
  adaptors_.erase(
      std::remove_if(adaptors_.begin(), adaptors_.end(),
                     [adaptor](const std::shared_ptr<QueryAdaptor>& a) {
                       return a.get() == adaptor;
                     }),
      adaptors_.end());
}

ModelReadView LanguageModel::SnapshotReadView() const {
  ModelReadView view;
  view.config_ = config_;
  view.vocab_ = vocab_;
  view.table_ = embeddings_;
  view.cache_ = embeddings_->SnapshotCache();
  view.layers_ = memory_->Snapshot();
  view.adaptors_.reserve(adaptors_.size());
  for (const auto& adaptor : adaptors_) {
    if (auto frozen = adaptor->Freeze()) {
      view.adaptors_.push_back(std::move(frozen));
    }
  }
  return view;
}

const Vec& ModelReadView::EntityEmbedding(const std::string& name,
                                          Vec* scratch) const {
  auto it = cache_->entities.find(name);
  if (it != cache_->entities.end()) return it->second;
  *scratch = table_->ComputeEntity(name);
  return *scratch;
}

const Vec& ModelReadView::MaskEmbedding(size_t layer,
                                        const std::string& relation,
                                        Vec* scratch) const {
  auto it = cache_->masks.find(EmbeddingTable::MaskKey(layer, relation));
  if (it != cache_->masks.end()) return it->second;
  *scratch = table_->ComputeMask(layer, relation);
  return *scratch;
}

Vec ModelReadView::KeyFor(size_t layer, const std::string& subject,
                          const std::string& relation) const {
  Vec entity_scratch;
  Vec mask_scratch;
  const Vec& e = EntityEmbedding(subject, &entity_scratch);
  const Vec& mask = MaskEmbedding(layer, relation, &mask_scratch);
  Vec key(config_.dim);
  for (size_t i = 0; i < config_.dim; ++i) key[i] = e[i] * mask[i];
  return Normalized(key);
}

Decode ModelReadView::Query(const std::string& subject,
                            const std::string& relation,
                            const QueryOptions& options) const {
  // Mirrors LanguageModel::QueryInternal (non-attenuated pathway) against
  // the captured state; keep the two in sync.
  std::vector<Vec> keys;
  keys.reserve(config_.num_layers);
  for (size_t layer = 0; layer < config_.num_layers; ++layer) {
    const Vec center = KeyFor(layer, subject, relation);
    keys.push_back(table_->PerturbKey(center, options.key_noise,
                                      options.probe_seed, layer));
  }

  if (options.use_adaptors) {
    for (const auto& adaptor : adaptors_) {
      std::string answer;
      if (adaptor->TryAnswer(keys[0], &answer)) {
        Decode out;
        out.entity = vocab_->Canonical(answer);
        out.score = 1.0;
        out.margin = 1.0;
        out.intercepted = true;
        return out;
      }
    }
  }

  Vec pooled(config_.dim, 0.0);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Vec partial = layers_[l]->MatVec(keys[l]);
    for (size_t i = 0; i < config_.dim; ++i) pooled[i] += partial[i];
  }

  Decode out;
  double best = -1e300;
  double second = -1e300;
  Vec scratch;
  for (const std::string& candidate : vocab_->entities) {
    const double score = Dot(pooled, EntityEmbedding(candidate, &scratch));
    if (score > best) {
      second = best;
      best = score;
      out.entity = candidate;
    } else if (score > second) {
      second = score;
    }
  }
  out.score = best;
  out.margin = vocab_->entities.size() > 1 ? best - second : best;
  return out;
}

}  // namespace oneedit
