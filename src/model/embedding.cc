#include "model/embedding.h"

#include <mutex>

#include "util/rng.h"

namespace oneedit {

EmbeddingTable::EmbeddingTable(size_t dim, uint64_t seed, double alias_spread,
                               const Vocab& vocab)
    : dim_(dim), seed_(seed), alias_spread_(alias_spread), vocab_(vocab) {}

Vec EmbeddingTable::SampleUnit(uint64_t stream_seed) const {
  Rng rng(stream_seed);
  Vec v(dim_);
  for (double& x : v) x = rng.NextGaussian();
  return Normalized(v);
}

Vec EmbeddingTable::ComputeEntity(const std::string& name) const {
  auto alias_it = vocab_.alias_of.find(name);
  if (alias_it != vocab_.alias_of.end()) {
    // Alias: canonical embedding plus a deterministic offset.
    const Vec canon = ComputeEntity(alias_it->second);
    const Vec offset = SampleUnit(seed_ ^ Rng::HashString("alias:" + name));
    Vec embedding = canon;
    Axpy(alias_spread_, offset, &embedding);
    return Normalized(embedding);
  }
  return SampleUnit(seed_ ^ Rng::HashString("ent:" + name));
}

Vec EmbeddingTable::ComputeMask(size_t layer,
                                const std::string& relation) const {
  Rng rng(seed_ ^ Rng::HashString("rel:" + MaskKey(layer, relation)));
  Vec mask(dim_);
  for (double& x : mask) x = rng.NextGaussian();
  return mask;
}

const Vec& EmbeddingTable::Entity(const std::string& name) const {
  {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    auto it = entity_cache_.find(name);
    if (it != entity_cache_.end()) return it->second;
  }

  // Compute outside the lock: embeddings are deterministic, so if two
  // threads race here they produce the same vector and emplace keeps the
  // first. (Alias resolution recurses, so it must not hold the
  // non-reentrant mutex.)
  Vec embedding = ComputeEntity(name);
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  auto emplaced = entity_cache_.emplace(name, std::move(embedding));
  if (emplaced.second) ++cache_version_;
  return emplaced.first->second;
}

const Vec& EmbeddingTable::RelationMask(size_t layer,
                                        const std::string& relation) const {
  const std::string cache_key = MaskKey(layer, relation);
  {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    auto it = mask_cache_.find(cache_key);
    if (it != mask_cache_.end()) return it->second;
  }

  Vec mask = ComputeMask(layer, relation);
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  auto emplaced = mask_cache_.emplace(cache_key, std::move(mask));
  if (emplaced.second) ++cache_version_;
  return emplaced.first->second;
}

std::shared_ptr<const EmbeddingSnapshot> EmbeddingTable::SnapshotCache() const {
  std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  if (snapshot_ == nullptr || snapshot_version_ != cache_version_) {
    auto fresh = std::make_shared<EmbeddingSnapshot>();
    fresh->entities = entity_cache_;
    fresh->masks = mask_cache_;
    snapshot_ = std::move(fresh);
    snapshot_version_ = cache_version_;
  }
  return snapshot_;
}

Vec EmbeddingTable::Key(size_t layer, const std::string& subject,
                        const std::string& relation) const {
  const Vec& e = Entity(subject);
  const Vec& mask = RelationMask(layer, relation);
  Vec key(dim_);
  for (size_t i = 0; i < dim_; ++i) key[i] = e[i] * mask[i];
  return Normalized(key);
}

Vec EmbeddingTable::PerturbKey(const Vec& key, double radius,
                               uint64_t noise_seed, size_t layer) const {
  if (radius == 0.0) return key;
  const Vec direction =
      SampleUnit(noise_seed ^ Rng::HashString("noise") ^
                 (0x9E3779B97F4A7C15ULL * (layer + 1)));
  Vec out = key;
  Axpy(radius, direction, &out);
  return Normalized(out);
}

}  // namespace oneedit
