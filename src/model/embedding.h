#ifndef ONEEDIT_MODEL_EMBEDDING_H_
#define ONEEDIT_MODEL_EMBEDDING_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "model/vocab.h"
#include "util/math.h"

namespace oneedit {

/// Immutable capture of the embedding memoization caches at one instant —
/// the lookup table a published read view carries so snapshot readers never
/// touch the live table's mutex. Misses are answered by recomputing (the
/// embeddings are a pure function of (seed, name)), never by inserting.
struct EmbeddingSnapshot {
  std::unordered_map<std::string, Vec> entities;
  std::unordered_map<std::string, Vec> masks;  // keyed "layer|relation"
};

/// Deterministic embedding table for the simulated model.
///
/// Every entity and relation receives a fixed unit vector derived from
/// (seed, name) alone, so two models built with the same seed and vocabulary
/// are bit-identical. Alias entities embed near their canonical entity
/// (offset radius = alias_spread), which is what gives Sub-Replace probes
/// their partial-generalization behaviour.
///
/// Lookups memoize into internal caches under a mutex, so the const read
/// surface (Entity / RelationMask / Key) is safe to call from concurrent
/// reader threads. Returned references stay valid for the table's lifetime
/// (unordered_map values are reference-stable across rehashes). The
/// lock-free serving read path avoids even the shared lock by capturing
/// SnapshotCache() into each published read view.
class EmbeddingTable {
 public:
  EmbeddingTable(size_t dim, uint64_t seed, double alias_spread,
                 const Vocab& vocab);

  size_t dim() const { return dim_; }

  /// Unit embedding of an entity (alias-aware).
  const Vec& Entity(const std::string& name) const;

  /// Per-layer relation mask vector used to form keys (entries ~ N(0,1)).
  const Vec& RelationMask(size_t layer, const std::string& relation) const;

  /// The model's key for (subject, relation) at `layer`:
  ///   normalize(e_subject ⊙ mask(layer, relation)).
  Vec Key(size_t layer, const std::string& subject,
          const std::string& relation) const;

  /// `key` nudged by `radius` along a deterministic direction derived from
  /// (noise_seed, layer); re-normalized. radius = 0 returns `key` unchanged.
  Vec PerturbKey(const Vec& key, double radius, uint64_t noise_seed,
                 size_t layer) const;

  // --- Snapshot surface (lock-free read views) -------------------------------

  /// Pure recomputation of an entity embedding / relation mask — identical
  /// bytes to the memoized value, no cache access. Snapshot readers use
  /// these on a cache miss instead of inserting.
  Vec ComputeEntity(const std::string& name) const;
  Vec ComputeMask(size_t layer, const std::string& relation) const;

  /// An immutable copy of the memoization caches. Clones only when an
  /// insert happened since the previous call; otherwise returns the same
  /// shared capture, so steady-state publication is O(1).
  std::shared_ptr<const EmbeddingSnapshot> SnapshotCache() const;

  static std::string MaskKey(size_t layer, const std::string& relation) {
    return std::to_string(layer) + "|" + relation;
  }

 private:
  Vec SampleUnit(uint64_t stream_seed) const;

  size_t dim_;
  uint64_t seed_;
  double alias_spread_;
  const Vocab& vocab_;
  /// Guards both memoization caches: shared for lookups (the hot path once
  /// warm — decode touches every vocab entity per query, so an exclusive
  /// lock here would serialize concurrent readers), exclusive for inserts.
  /// Embeddings are computed outside the lock (they are deterministic, so a
  /// racing recompute is harmless) and inserted with an emplace that keeps
  /// the first winner.
  mutable std::shared_mutex cache_mutex_;
  mutable std::unordered_map<std::string, Vec> entity_cache_;
  mutable std::unordered_map<std::string, Vec> mask_cache_;  // "layer|rel"
  /// Bumped on every cache insert; lets SnapshotCache reuse its last capture
  /// when nothing changed. All three guarded by cache_mutex_.
  mutable uint64_t cache_version_ = 0;
  mutable uint64_t snapshot_version_ = ~uint64_t{0};
  mutable std::shared_ptr<const EmbeddingSnapshot> snapshot_;
};

}  // namespace oneedit

#endif  // ONEEDIT_MODEL_EMBEDDING_H_
