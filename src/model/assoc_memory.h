#ifndef ONEEDIT_MODEL_ASSOC_MEMORY_H_
#define ONEEDIT_MODEL_ASSOC_MEMORY_H_

#include <cstddef>
#include <vector>

#include "util/math.h"

namespace oneedit {

/// Weight snapshot used to reset a model between experiment cases.
using WeightSnapshot = std::vector<Matrix>;

/// A stack of linear associative memory layers.
///
/// Layer l holds a d×d matrix W_l; a fact is a key→value association written
/// as a rank-one update W_l += α v kᵀ, and recall pools all layers:
/// u = Σ_l W_l k_l. This is the same abstraction ROME/MEMIT use to model
/// transformer MLP layers (Meng et al., 2022).
class AssocMemory {
 public:
  AssocMemory(size_t num_layers, size_t dim);

  size_t num_layers() const { return layers_.size(); }
  size_t dim() const { return dim_; }

  /// W_layer += alpha * value * keyᵀ.
  void AddRankOne(size_t layer, const Vec& value, const Vec& key, double alpha);

  /// W_layer += delta (dense). Used by FT-style updates and cache replay.
  void AddDense(size_t layer, const Matrix& delta);

  /// Recall at a single layer: W_layer * key.
  Vec LayerRecall(size_t layer, const Vec& key) const;

  /// Pooled recall: Σ_l W_l * keys[l]. keys.size() must equal num_layers().
  Vec Recall(const std::vector<Vec>& keys) const;

  /// Pooled recall where weight changes relative to `base` are scaled by
  /// `delta_scale`: Σ_l (B_l + delta_scale * (W_l - B_l)) * keys[l].
  /// Used to model unconsolidated (edited) knowledge participating weakly in
  /// multi-hop composition. `base` must have matching shapes.
  Vec RecallBlended(const std::vector<Vec>& keys, const WeightSnapshot& base,
                    double delta_scale) const;

  const Matrix& layer(size_t l) const { return layers_[l]; }
  Matrix& mutable_layer(size_t l) { return layers_[l]; }

  WeightSnapshot Snapshot() const { return layers_; }
  void Restore(const WeightSnapshot& snapshot) { layers_ = snapshot; }

  /// Total stored parameter count (d*d*L) — used by the cost model.
  size_t ParameterCount() const { return layers_.size() * dim_ * dim_; }

 private:
  size_t dim_;
  std::vector<Matrix> layers_;
};

}  // namespace oneedit

#endif  // ONEEDIT_MODEL_ASSOC_MEMORY_H_
