#ifndef ONEEDIT_MODEL_ASSOC_MEMORY_H_
#define ONEEDIT_MODEL_ASSOC_MEMORY_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "util/math.h"

namespace oneedit {

/// Refcounted handle to one frozen weight layer. Layers reachable through a
/// WeightSnapshot are immutable: the owning AssocMemory clones a layer
/// before its next in-place write (copy-on-write), so every outstanding
/// snapshot keeps the exact bytes it captured.
using LayerView = std::shared_ptr<const Matrix>;

/// Weight snapshot used to reset a model between experiment cases, to roll
/// back transactional batches byte-exactly, and to publish immutable read
/// views for lock-free serving. Taking or restoring one is O(num_layers)
/// pointer copies, not an O(d^2 L) matrix copy; the actual clone cost is
/// deferred to the first post-snapshot write of each touched layer.
///
/// `==` on a WeightSnapshot compares handles (same underlying layers — the
/// sharing tests rely on that); use WeightsEqual for byte-level equality
/// across independently trained models.
using WeightSnapshot = std::vector<LayerView>;

/// Value equality: same number of layers and identical bytes per layer
/// (pointer-equal layers short-circuit the element compare).
inline bool WeightsEqual(const WeightSnapshot& a, const WeightSnapshot& b) {
  if (a.size() != b.size()) return false;
  for (size_t l = 0; l < a.size(); ++l) {
    if (a[l] == b[l]) continue;
    if (a[l] == nullptr || b[l] == nullptr || !(*a[l] == *b[l])) return false;
  }
  return true;
}

/// A stack of linear associative memory layers.
///
/// Layer l holds a d×d matrix W_l; a fact is a key→value association written
/// as a rank-one update W_l += α v kᵀ, and recall pools all layers:
/// u = Σ_l W_l k_l. This is the same abstraction ROME/MEMIT use to model
/// transformer MLP layers (Meng et al., 2022).
///
/// Concurrency contract: mutations (AddRankOne/AddDense/mutable_layer/
/// Restore) and Snapshot() must stay on one thread at a time — the serving
/// writer's exclusive section. Snapshots handed to other threads are safe to
/// read concurrently with later mutations, because a mutation never writes a
/// layer that a live snapshot still references (it clones first).
class AssocMemory {
 public:
  AssocMemory(size_t num_layers, size_t dim);

  size_t num_layers() const { return layers_.size(); }
  size_t dim() const { return dim_; }

  /// W_layer += alpha * value * keyᵀ.
  void AddRankOne(size_t layer, const Vec& value, const Vec& key, double alpha);

  /// W_layer += delta (dense). Used by FT-style updates and cache replay.
  void AddDense(size_t layer, const Matrix& delta);

  /// Recall at a single layer: W_layer * key.
  Vec LayerRecall(size_t layer, const Vec& key) const;

  /// Pooled recall: Σ_l W_l * keys[l]. keys.size() must equal num_layers().
  Vec Recall(const std::vector<Vec>& keys) const;

  /// Pooled recall where weight changes relative to `base` are scaled by
  /// `delta_scale`: Σ_l (B_l + delta_scale * (W_l - B_l)) * keys[l].
  /// Used to model unconsolidated (edited) knowledge participating weakly in
  /// multi-hop composition. `base` must have matching shapes.
  Vec RecallBlended(const std::vector<Vec>& keys, const WeightSnapshot& base,
                    double delta_scale) const;

  const Matrix& layer(size_t l) const { return *layers_[l]; }
  /// Mutable access clones the layer first if a snapshot still shares it.
  Matrix& mutable_layer(size_t l) { return WritableLayer(l); }

  /// O(num_layers): shares the current layers with the caller and freezes
  /// them — the next write to any shared layer copies it first.
  WeightSnapshot Snapshot() const {
    return WeightSnapshot(layers_.begin(), layers_.end());
  }

  /// O(num_layers): adopts the snapshot's layers wholesale. The adopted
  /// layers stay frozen while the snapshot (or any other) still references
  /// them; they are only ever written after an exclusive-ownership clone.
  void Restore(const WeightSnapshot& snapshot);

  /// Total stored parameter count (d*d*L) — used by the cost model.
  size_t ParameterCount() const { return layers_.size() * dim_ * dim_; }

 private:
  /// The single funnel for in-place writes: returns layers_[l], cloning it
  /// first when any snapshot still holds a reference (use_count > 1). The
  /// check is exact, not racy: new references are only ever minted by this
  /// object's own thread (Snapshot/Restore), so a concurrent release can
  /// only lower the count — worst case an unnecessary clone.
  Matrix& WritableLayer(size_t l);

  size_t dim_;
  std::vector<std::shared_ptr<Matrix>> layers_;
};

}  // namespace oneedit

#endif  // ONEEDIT_MODEL_ASSOC_MEMORY_H_
