#ifndef ONEEDIT_MODEL_MODEL_CONFIG_H_
#define ONEEDIT_MODEL_MODEL_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace oneedit {

/// Configuration of a simulated "LLM" (a layered linear associative memory).
///
/// The defaults below are calibrated so the editing methods in src/editing
/// reproduce the qualitative profile the paper measures (see DESIGN.md §1).
/// Three presets stand in for the paper's base models; dimensions only set
/// capacity/noise scale.
struct ModelConfig {
  /// Display name, e.g. "GPT-J-6B(sim)".
  std::string name = "sim";

  /// Embedding dimension d. Keys and values live in R^d.
  size_t dim = 96;

  /// Number of associative memory layers (stand-in for MLP layers).
  size_t num_layers = 6;

  /// Master seed; all embeddings / pretraining noise derive from it.
  uint64_t seed = 0xC0FFEE;

  /// Total association strength a pretrained fact receives at its center key.
  double pretrain_strength = 1.0;

  /// Number of paraphrase keys each pretrained fact is stored under
  /// ("wide basin": pretrained knowledge generalizes; edited knowledge,
  /// written under a single key, does not).
  int pretrain_paraphrases = 3;

  /// Key perturbation radius for the paraphrase keys.
  double paraphrase_spread = 0.25;

  /// Key noise applied to reliability / locality probes (mild rephrasing).
  double reliability_noise = 0.08;

  /// Key noise applied to the first hop of a compositional (one-hop) probe —
  /// the "subject appears in an unfamiliar context" effect.
  double hop_noise = 0.45;

  /// Offset between an alias entity's embedding and its canonical entity
  /// (Sub-Replace probes query through aliases). 1.1 puts alias keys at
  /// cosine ~0.67 from canonical keys: close enough for pretrained knowledge
  /// (stored under alias keys too, see alias_basin) to respond, far enough
  /// that a single-key edit only partially covers them.
  double alias_spread = 1.1;

  /// Relative strength with which pretraining also stores each fact under
  /// its subject's alias keys (the corpus mentions entities by many surface
  /// forms).
  double alias_basin = 0.6;

  /// How strongly *unconsolidated* knowledge (weight changes after
  /// pretraining, i.e. edits) participates in multi-hop composition.
  /// Editing literature finds edited facts fail to drive multi-hop
  /// reasoning (Cheng et al. 2024); 1.0 would make edits compose as well as
  /// pretrained knowledge.
  double hop_edit_attenuation = 0.55;

  /// Minimum top1-minus-top2 cosine margin for a confident decode.
  double decode_margin = 0.04;

  /// First-hop margin required before the model chains to the second hop.
  double compose_margin = 0.10;

  /// Maximum strength of distractor associations baked into empty (s, r)
  /// slots at pretraining time (hallucination floor). Each junk slot draws
  /// its strength uniformly from [0, 2 * junk_strength].
  double junk_strength = 0.45;

  /// Fraction of empty slots that receive a distractor association.
  double junk_fraction = 0.5;

  /// Nominal parameter count in millions — drives the cost model (Table 3).
  size_t params_million = 6053;
};

/// Preset standing in for GPT-J-6B.
ModelConfig GptJSimConfig();
/// Preset standing in for Qwen2-7B.
ModelConfig Qwen2SimConfig();
/// Preset standing in for GPT-2-XL (1.5B), used by the Table 3 bench.
ModelConfig Gpt2XlSimConfig();

}  // namespace oneedit

#endif  // ONEEDIT_MODEL_MODEL_CONFIG_H_
