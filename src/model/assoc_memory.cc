#include "model/assoc_memory.h"

#include <cassert>

namespace oneedit {

AssocMemory::AssocMemory(size_t num_layers, size_t dim) : dim_(dim) {
  layers_.reserve(num_layers);
  for (size_t l = 0; l < num_layers; ++l) {
    layers_.push_back(std::make_shared<Matrix>(dim, dim, 0.0));
  }
}

Matrix& AssocMemory::WritableLayer(size_t l) {
  assert(l < layers_.size());
  if (layers_[l].use_count() > 1) {
    layers_[l] = std::make_shared<Matrix>(*layers_[l]);
  }
  return *layers_[l];
}

void AssocMemory::Restore(const WeightSnapshot& snapshot) {
  layers_.clear();
  layers_.reserve(snapshot.size());
  for (const LayerView& layer : snapshot) {
    // Aliasing a const layer is safe: WritableLayer clones before any write
    // while the snapshot (use_count > 1) still shares it.
    layers_.push_back(std::const_pointer_cast<Matrix>(layer));
  }
}

void AssocMemory::AddRankOne(size_t layer, const Vec& value, const Vec& key,
                             double alpha) {
  WritableLayer(layer).AddOuter(alpha, value, key);
}

void AssocMemory::AddDense(size_t layer, const Matrix& delta) {
  WritableLayer(layer).AddScaled(1.0, delta);
}

Vec AssocMemory::LayerRecall(size_t layer, const Vec& key) const {
  assert(layer < layers_.size());
  return layers_[layer]->MatVec(key);
}

Vec AssocMemory::Recall(const std::vector<Vec>& keys) const {
  assert(keys.size() == layers_.size());
  Vec out(dim_, 0.0);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Vec partial = layers_[l]->MatVec(keys[l]);
    for (size_t i = 0; i < dim_; ++i) out[i] += partial[i];
  }
  return out;
}

Vec AssocMemory::RecallBlended(const std::vector<Vec>& keys,
                               const WeightSnapshot& base,
                               double delta_scale) const {
  assert(keys.size() == layers_.size());
  assert(base.size() == layers_.size());
  Vec out(dim_, 0.0);
  for (size_t l = 0; l < layers_.size(); ++l) {
    const Vec current = layers_[l]->MatVec(keys[l]);
    const Vec consolidated = base[l]->MatVec(keys[l]);
    for (size_t i = 0; i < dim_; ++i) {
      out[i] += consolidated[i] + delta_scale * (current[i] - consolidated[i]);
    }
  }
  return out;
}

}  // namespace oneedit
