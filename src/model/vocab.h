#ifndef ONEEDIT_MODEL_VOCAB_H_
#define ONEEDIT_MODEL_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace oneedit {

/// A relation the simulated model "knows linguistically", with its inverse
/// surface form if one exists ("wife" <-> "husband"). The inverse link is the
/// substrate for bidirectional generalization leakage: gradient-based editing
/// methods partially move the reverse association when writing the forward
/// one (see LanguageModel and editing/common).
struct VocabRelation {
  std::string name;
  std::string inverse;  ///< empty if the relation is not reversible
};

/// The closed world the simulated model is pretrained over: the decode
/// candidate set (canonical entities), known aliases, and the relation
/// vocabulary. Built by the dataset generators in src/data from the same
/// domain spec as the knowledge graph, mirroring how an LLM's latent
/// vocabulary and a curated KG describe the same world.
struct Vocab {
  /// Canonical entities — the decode candidate set.
  std::vector<std::string> entities;

  /// Alias surface form -> canonical entity name.
  std::unordered_map<std::string, std::string> alias_of;

  std::vector<VocabRelation> relations;

  /// Convenience: canonical name for `name` (identity if not an alias).
  const std::string& Canonical(const std::string& name) const {
    auto it = alias_of.find(name);
    return it == alias_of.end() ? name : it->second;
  }

  /// Inverse relation name for `relation`, or "" if not reversible.
  std::string InverseOf(const std::string& relation) const {
    for (const VocabRelation& r : relations) {
      if (r.name == relation) return r.inverse;
      if (!r.inverse.empty() && r.inverse == relation) return r.name;
    }
    return "";
  }
};

}  // namespace oneedit

#endif  // ONEEDIT_MODEL_VOCAB_H_
