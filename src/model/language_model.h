#ifndef ONEEDIT_MODEL_LANGUAGE_MODEL_H_
#define ONEEDIT_MODEL_LANGUAGE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "kg/named_triple.h"
#include "model/assoc_memory.h"
#include "model/embedding.h"
#include "model/model_config.h"
#include "model/vocab.h"
#include "util/math.h"

namespace oneedit {

/// Result of decoding a model query against the candidate entity set.
struct Decode {
  std::string entity;        ///< canonical name of the argmax candidate
  double score = 0.0;        ///< top-1 dot-product score
  double margin = 0.0;       ///< top-1 minus top-2 score
  bool intercepted = false;  ///< answered by a query adaptor (e.g. GRACE)
};

/// Per-query controls. `probe_seed` pins the key perturbation so a probe is
/// identical before and after an edit (locality compares the two decodes).
struct QueryOptions {
  double key_noise = 0.0;
  uint64_t probe_seed = 0;
  bool use_adaptors = true;
};

/// Hook consulted before the weight memory on every query. GRACE-style
/// adaptor methods implement this to intercept queries near their stored
/// edit keys.
class QueryAdaptor {
 public:
  virtual ~QueryAdaptor() = default;

  /// If the adaptor covers `layer0_key`, fills *answer with the canonical
  /// entity to output and returns true.
  virtual bool TryAnswer(const Vec& layer0_key, std::string* answer) const = 0;

  /// An immutable copy of this adaptor for lock-free read views: the frozen
  /// copy's TryAnswer must match this adaptor's behaviour at the instant of
  /// the call and never change afterwards. Returning nullptr (the default)
  /// means "not freezable"; such adaptors are absent from snapshot reads.
  /// Called only from the thread that mutates the adaptor.
  virtual std::shared_ptr<const QueryAdaptor> Freeze() const { return nullptr; }
};

/// An immutable, refcounted capture of everything a model query touches:
/// frozen weight layers, the embedding memoization caches, and frozen query
/// adaptors. Queries through a view are lock-free (embedding cache misses
/// recompute the deterministic value instead of inserting) and always decode
/// against the exact weights captured, no matter how many edits land on the
/// live model afterwards. Copyable and cheap to copy (shared_ptrs only).
class ModelReadView {
 public:
  ModelReadView() = default;

  /// Single-hop query, byte-identical to LanguageModel::Query against the
  /// captured state.
  Decode Query(const std::string& subject, const std::string& relation,
               const QueryOptions& options = {}) const;

  const ModelConfig& config() const { return config_; }
  const Vocab& vocab() const { return *vocab_; }
  size_t num_adaptors() const { return adaptors_.size(); }

 private:
  friend class LanguageModel;

  /// Embedding of `name`: from the captured cache when present, else
  /// recomputed into *scratch (identical bytes either way).
  const Vec& EntityEmbedding(const std::string& name, Vec* scratch) const;
  const Vec& MaskEmbedding(size_t layer, const std::string& relation,
                           Vec* scratch) const;
  Vec KeyFor(size_t layer, const std::string& subject,
             const std::string& relation) const;

  ModelConfig config_;
  std::shared_ptr<const Vocab> vocab_;
  // The live table, used only for its pure compute helpers (no cache access);
  // held shared so a view outliving the model stays valid.
  std::shared_ptr<const EmbeddingTable> table_;
  std::shared_ptr<const EmbeddingSnapshot> cache_;
  WeightSnapshot layers_;
  std::vector<std::shared_ptr<const QueryAdaptor>> adaptors_;
};

/// The simulated LLM: deterministic embeddings + a layered linear
/// associative memory + a decode head over the vocabulary, with an adaptor
/// hook for memory-based editing methods.
///
/// See DESIGN.md §1 for why this substrate stands in for GPT-J/Qwen2 and
/// which phenomena it reproduces.
class LanguageModel {
 public:
  LanguageModel(const ModelConfig& config, Vocab vocab);

  // Movable, not copyable (adaptor registrations hold references).
  LanguageModel(const LanguageModel&) = delete;
  LanguageModel& operator=(const LanguageModel&) = delete;
  LanguageModel(LanguageModel&&) = default;
  LanguageModel& operator=(LanguageModel&&) = default;

  const ModelConfig& config() const { return config_; }
  const Vocab& vocab() const { return *vocab_; }
  const EmbeddingTable& embeddings() const { return *embeddings_; }
  AssocMemory& memory() { return *memory_; }
  const AssocMemory& memory() const { return *memory_; }

  // --- Pretraining ----------------------------------------------------------

  /// Bakes `facts` into the weight memory: each fact is stored under
  /// `pretrain_paraphrases` spread keys per layer (wide basin), then
  /// distractor associations are written into a `junk_fraction` of the empty
  /// (entity, relation) slots. Call once.
  void Pretrain(const std::vector<NamedTriple>& facts);

  bool pretrained() const { return pretrained_; }

  // --- Querying -------------------------------------------------------------

  /// "What is the <relation> of <subject>?" Decodes over canonical entities.
  Decode Query(const std::string& subject, const std::string& relation,
               const QueryOptions& options = {}) const;

  /// Two-step compositional query: "What is the <r2> of the <r1> of
  /// <subject>?" The first hop uses `hop_noise` and must clear
  /// `compose_margin`, else the composition is marked failed (margin 0).
  Decode QueryComposed(const std::string& subject, const std::string& r1,
                       const std::string& r2, uint64_t probe_seed) const;

  /// The k best-scoring candidates for a slot, descending by score (the
  /// "beam" view of a decode). k is clamped to the vocabulary size.
  std::vector<Decode> QueryTopK(const std::string& subject,
                                const std::string& relation, size_t k,
                                const QueryOptions& options = {}) const;

  // --- Editing surface (used by src/editing) ---------------------------------

  /// Exact center key for (subject, relation) at each layer.
  std::vector<Vec> CenterKeys(const std::string& subject,
                              const std::string& relation) const;

  /// Pooled recall u = Σ_l W_l k_l for the given per-layer keys.
  Vec Recall(const std::vector<Vec>& keys) const { return memory_->Recall(keys); }

  /// The value vector an edit should install for `object`.
  const Vec& ValueFor(const std::string& object) const {
    return embeddings_->Entity(object);
  }

  // --- Adaptors ---------------------------------------------------------------

  void AddAdaptor(std::shared_ptr<QueryAdaptor> adaptor);
  void RemoveAdaptor(const QueryAdaptor* adaptor);
  size_t num_adaptors() const { return adaptors_.size(); }

  // --- Reset support for experiment harnesses ---------------------------------

  WeightSnapshot SnapshotWeights() const { return memory_->Snapshot(); }
  void RestoreWeights(const WeightSnapshot& snapshot) {
    memory_->Restore(snapshot);
  }

  // --- Read views (lock-free serving) -----------------------------------------

  /// Captures the current model state as an immutable view. Must be called
  /// from the (single) thread that mutates the model; the returned view may
  /// then be queried from any number of threads concurrently with further
  /// mutations.
  ModelReadView SnapshotReadView() const;

 private:
  Decode DecodeVector(const Vec& pooled) const;

  /// Query with optional attenuation of unconsolidated (post-pretraining)
  /// weight changes — the multi-hop reasoning pathway.
  Decode QueryInternal(const std::string& subject, const std::string& relation,
                       const QueryOptions& options,
                       bool attenuate_unconsolidated) const;

  ModelConfig config_;
  // The vocab and embedding table are shared (not unique) so read views can
  // keep them alive past the model, and heap-allocated so EmbeddingTable's
  // vocab reference survives moves of the LanguageModel. Both are immutable
  // after construction apart from the table's internal memoization, which is
  // thread-safe behind const.
  std::shared_ptr<const Vocab> vocab_;
  std::shared_ptr<const EmbeddingTable> embeddings_;
  std::unique_ptr<AssocMemory> memory_;
  std::vector<std::shared_ptr<QueryAdaptor>> adaptors_;
  /// Weights as of the end of Pretrain(); deltas beyond this are
  /// "unconsolidated" and attenuated in multi-hop composition.
  WeightSnapshot consolidated_;
  bool pretrained_ = false;
};

}  // namespace oneedit

#endif  // ONEEDIT_MODEL_LANGUAGE_MODEL_H_
