#include "model/checkpoint.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/crc32.h"

namespace oneedit {
namespace {

constexpr char kMagic[4] = {'O', 'E', 'W', 'T'};
constexpr uint32_t kVersion = 2;
constexpr uint32_t kLegacyVersion = 1;  // pre-CRC format, still readable

void AppendU32(std::string* out, uint32_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

bool ConsumeU32(std::string_view* data, uint32_t* value) {
  if (data->size() < sizeof(*value)) return false;
  std::memcpy(value, data->data(), sizeof(*value));
  data->remove_prefix(sizeof(*value));
  return true;
}

}  // namespace

void SerializeWeights(const LanguageModel& model, std::string* out) {
  const AssocMemory& memory = model.memory();
  AppendU32(out, static_cast<uint32_t>(memory.num_layers()));
  AppendU32(out, static_cast<uint32_t>(memory.dim()));
  for (size_t l = 0; l < memory.num_layers(); ++l) {
    const auto& data = memory.layer(l).data();
    out->append(reinterpret_cast<const char*>(data.data()),
                data.size() * sizeof(double));
  }
}

Status DeserializeWeights(std::string_view data, LanguageModel* model) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  uint32_t num_layers = 0, dim = 0;
  if (!ConsumeU32(&data, &num_layers) || !ConsumeU32(&data, &dim)) {
    return Status::Corruption("weight payload truncated in header");
  }
  AssocMemory& memory = model->memory();
  if (num_layers != memory.num_layers() || dim != memory.dim()) {
    return Status::InvalidArgument(
        "checkpoint shape (" + std::to_string(num_layers) + "x" +
        std::to_string(dim) + ") does not match model (" +
        std::to_string(memory.num_layers()) + "x" +
        std::to_string(memory.dim()) + ")");
  }
  const size_t layer_bytes = static_cast<size_t>(dim) * dim * sizeof(double);
  if (data.size() < static_cast<size_t>(num_layers) * layer_bytes) {
    return Status::Corruption("weight payload truncated at " +
                              std::to_string(data.size()) + " bytes");
  }
  for (uint32_t l = 0; l < num_layers; ++l) {
    auto& layer = memory.mutable_layer(l).mutable_data();
    std::memcpy(layer.data(), data.data(), layer_bytes);
    data.remove_prefix(layer_bytes);
  }
  return Status::OK();
}

Status SaveCheckpoint(const LanguageModel& model, const std::string& path) {
  std::string payload;
  SerializeWeights(model, &payload);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot write checkpoint at " + tmp);
    out.write(kMagic, sizeof(kMagic));
    const uint32_t version = kVersion;
    const uint32_t crc = Crc32(payload);
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out.good()) {
      return Status::IoError("checkpoint write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot publish checkpoint " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status LoadCheckpoint(const std::string& path, LanguageModel* model) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot read checkpoint at " + path);

  char magic[4];
  uint32_t version = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a OneEdit checkpoint: " + path);
  }
  if (version != kVersion && version != kLegacyVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(version));
  }

  uint32_t expected_crc = 0;
  if (version == kVersion) {
    in.read(reinterpret_cast<char*>(&expected_crc), sizeof(expected_crc));
    if (!in.good()) return Status::Corruption("checkpoint header truncated");
  }
  std::string payload((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  if (version == kVersion && Crc32(payload) != expected_crc) {
    return Status::Corruption("checkpoint CRC mismatch in " + path +
                              " (torn or corrupt file)");
  }
  return DeserializeWeights(payload, model);
}

}  // namespace oneedit
