#include "model/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace oneedit {
namespace {

constexpr char kMagic[4] = {'O', 'E', 'W', 'T'};
constexpr uint32_t kVersion = 1;

}  // namespace

Status SaveCheckpoint(const LanguageModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write checkpoint at " + path);

  const AssocMemory& memory = model.memory();
  const uint32_t num_layers = static_cast<uint32_t>(memory.num_layers());
  const uint32_t dim = static_cast<uint32_t>(memory.dim());
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  out.write(reinterpret_cast<const char*>(&num_layers), sizeof(num_layers));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  for (uint32_t l = 0; l < num_layers; ++l) {
    const auto& data = memory.layer(l).data();
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size() * sizeof(double)));
  }
  if (!out.good()) return Status::IoError("checkpoint write failed: " + path);
  return Status::OK();
}

Status LoadCheckpoint(const std::string& path, LanguageModel* model) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot read checkpoint at " + path);

  char magic[4];
  uint32_t version = 0, num_layers = 0, dim = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  in.read(reinterpret_cast<char*>(&num_layers), sizeof(num_layers));
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a OneEdit checkpoint: " + path);
  }
  if (version != kVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(version));
  }
  AssocMemory& memory = model->memory();
  if (num_layers != memory.num_layers() || dim != memory.dim()) {
    return Status::InvalidArgument(
        "checkpoint shape (" + std::to_string(num_layers) + "x" +
        std::to_string(dim) + ") does not match model (" +
        std::to_string(memory.num_layers()) + "x" +
        std::to_string(memory.dim()) + ")");
  }
  for (uint32_t l = 0; l < num_layers; ++l) {
    auto& data = memory.mutable_layer(l).mutable_data();
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(double)));
    if (!in.good()) {
      return Status::Corruption("checkpoint truncated at layer " +
                                std::to_string(l));
    }
  }
  return Status::OK();
}

}  // namespace oneedit
