#include "model/model_config.h"

namespace oneedit {

ModelConfig GptJSimConfig() {
  ModelConfig cfg;
  cfg.name = "GPT-J-6B(sim)";
  cfg.dim = 96;
  cfg.num_layers = 6;
  cfg.seed = 0x6B6A7074;  // "gptj"
  cfg.params_million = 6053;
  return cfg;
}

ModelConfig Qwen2SimConfig() {
  ModelConfig cfg;
  cfg.name = "Qwen2-7B(sim)";
  cfg.dim = 112;
  cfg.num_layers = 7;
  cfg.seed = 0x7177656E;  // "qwen"
  cfg.params_million = 7616;
  return cfg;
}

ModelConfig Gpt2XlSimConfig() {
  ModelConfig cfg;
  cfg.name = "GPT-2-XL(sim)";
  cfg.dim = 64;
  cfg.num_layers = 4;
  cfg.seed = 0x67707432;  // "gpt2"
  cfg.params_million = 1558;
  return cfg;
}

}  // namespace oneedit
