#ifndef ONEEDIT_MODEL_CHECKPOINT_H_
#define ONEEDIT_MODEL_CHECKPOINT_H_

#include <string>

#include "model/language_model.h"
#include "util/status.h"

namespace oneedit {

/// Binary checkpointing for the simulated model's weights.
///
/// Format: magic "OEWT", version, num_layers, dim, then layer matrices as
/// little-endian doubles. Loading validates the shape against the target
/// model and fails with Corruption/InvalidArgument rather than loading a
/// mismatched file. Pretraining a large world takes ~100x longer than
/// loading a checkpoint, so experiment drivers can persist the pristine
/// weights once and reload across processes.
Status SaveCheckpoint(const LanguageModel& model, const std::string& path);

/// Restores weights saved by SaveCheckpoint into `model` (which must have
/// been built with the same dim / num_layers).
Status LoadCheckpoint(const std::string& path, LanguageModel* model);

}  // namespace oneedit

#endif  // ONEEDIT_MODEL_CHECKPOINT_H_
