#ifndef ONEEDIT_MODEL_CHECKPOINT_H_
#define ONEEDIT_MODEL_CHECKPOINT_H_

#include <string>
#include <string_view>

#include "model/language_model.h"
#include "util/status.h"

namespace oneedit {

/// Binary checkpointing for the simulated model's weights.
///
/// File format (version 2): magic "OEWT", version, CRC32 of the payload,
/// then the payload produced by SerializeWeights. The file is written to a
/// temporary sibling and atomically renamed into place, so a crash mid-save
/// never leaves a torn checkpoint under `path`; loading verifies the CRC
/// and rejects torn/corrupt files with Corruption. Version-1 files (no CRC)
/// from older builds still load. Pretraining a large world takes ~100x
/// longer than loading a checkpoint, so experiment drivers can persist the
/// pristine weights once and reload across processes.
Status SaveCheckpoint(const LanguageModel& model, const std::string& path);

/// Restores weights saved by SaveCheckpoint into `model` (which must have
/// been built with the same dim / num_layers).
Status LoadCheckpoint(const std::string& path, LanguageModel* model);

/// Appends the raw weight payload (num_layers, dim, layer matrices as
/// little-endian doubles) to `*out` — the unit the unified durability
/// checkpoint embeds as its model section.
void SerializeWeights(const LanguageModel& model, std::string* out);

/// Inverse of SerializeWeights. Fails with InvalidArgument on a shape
/// mismatch and Corruption on truncation, leaving `model` untouched in both
/// cases.
Status DeserializeWeights(std::string_view data, LanguageModel* model);

}  // namespace oneedit

#endif  // ONEEDIT_MODEL_CHECKPOINT_H_
