#include "core/config_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace oneedit {
namespace {

StatusOr<bool> ParseBool(const std::string& value, const std::string& key) {
  const std::string lower = ToLower(value);
  if (lower == "true" || lower == "1" || lower == "yes") return true;
  if (lower == "false" || lower == "0" || lower == "no") return false;
  return Status::InvalidArgument("config: bad boolean for " + key + ": " +
                                 value);
}

StatusOr<size_t> ParseSize(const std::string& value, const std::string& key) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("config: bad integer for " + key + ": " +
                                   value);
  }
  return static_cast<size_t>(parsed);
}

StatusOr<double> ParseDouble(const std::string& value,
                             const std::string& key) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("config: bad number for " + key + ": " +
                                   value);
  }
  return parsed;
}

}  // namespace

StatusOr<OneEditConfig> ParseOneEditConfig(const std::string& text) {
  OneEditConfig config;
  std::istringstream in(text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const size_t eq = stripped.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("config: missing '=' on line " +
                                     std::to_string(lineno));
    }
    const std::string key(StripAsciiWhitespace(stripped.substr(0, eq)));
    const std::string value(StripAsciiWhitespace(stripped.substr(eq + 1)));

    if (key == "method") {
      ONEEDIT_ASSIGN_OR_RETURN(config.method, ParseMethodKind(value));
    } else if (key == "controller.num_generation_triples") {
      ONEEDIT_ASSIGN_OR_RETURN(config.controller.num_generation_triples,
                               ParseSize(value, key));
    } else if (key == "controller.use_logical_rules") {
      ONEEDIT_ASSIGN_OR_RETURN(config.controller.use_logical_rules,
                               ParseBool(value, key));
    } else if (key == "controller.augment_aliases") {
      ONEEDIT_ASSIGN_OR_RETURN(config.controller.augment_aliases,
                               ParseBool(value, key));
    } else if (key == "controller.neighborhood_hops") {
      ONEEDIT_ASSIGN_OR_RETURN(config.controller.neighborhood_hops,
                               ParseSize(value, key));
    } else if (key == "editor.use_cache") {
      ONEEDIT_ASSIGN_OR_RETURN(config.editor.use_cache,
                               ParseBool(value, key));
    } else if (key == "interpreter.extraction_error_rate") {
      ONEEDIT_ASSIGN_OR_RETURN(config.interpreter.extraction_error_rate,
                               ParseDouble(value, key));
    } else if (key == "interpreter.training_examples_per_class") {
      ONEEDIT_ASSIGN_OR_RETURN(
          config.interpreter.training_examples_per_class,
          ParseSize(value, key));
    } else if (key == "interpreter.seed") {
      ONEEDIT_ASSIGN_OR_RETURN(const size_t seed, ParseSize(value, key));
      config.interpreter.seed = seed;
    } else {
      return Status::InvalidArgument("config: unknown key '" + key +
                                     "' on line " + std::to_string(lineno));
    }
  }
  return config;
}

StatusOr<OneEditConfig> LoadOneEditConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read config at " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseOneEditConfig(buffer.str());
}

std::string OneEditConfigToString(const OneEditConfig& config) {
  std::ostringstream out;
  out << "method = " << MethodKindName(config.method) << "\n";
  out << "controller.num_generation_triples = "
      << config.controller.num_generation_triples << "\n";
  out << "controller.use_logical_rules = "
      << (config.controller.use_logical_rules ? "true" : "false") << "\n";
  out << "controller.augment_aliases = "
      << (config.controller.augment_aliases ? "true" : "false") << "\n";
  out << "controller.neighborhood_hops = "
      << config.controller.neighborhood_hops << "\n";
  out << "editor.use_cache = "
      << (config.editor.use_cache ? "true" : "false") << "\n";
  out << "interpreter.extraction_error_rate = "
      << config.interpreter.extraction_error_rate << "\n";
  out << "interpreter.training_examples_per_class = "
      << config.interpreter.training_examples_per_class << "\n";
  out << "interpreter.seed = " << config.interpreter.seed << "\n";
  return out.str();
}

}  // namespace oneedit
