#ifndef ONEEDIT_CORE_INTERPRETER_H_
#define ONEEDIT_CORE_INTERPRETER_H_

#include <optional>
#include <string>
#include <vector>

#include "kg/knowledge_graph.h"
#include "kg/named_triple.h"
#include "nlp/intent_classifier.h"
#include "nlp/triple_extractor.h"
#include "util/statusor.h"

namespace oneedit {

/// Interpreter knobs (§3.3).
struct InterpreterConfig {
  /// Synthetic training utterances per intent class.
  size_t training_examples_per_class = 400;
  uint64_t seed = 11;
  /// Probability that extraction corrupts the parsed object — the MiniCPM
  /// extraction noise the paper names as OneEdit's main reliability ceiling
  /// (§4.4). Deterministic per utterance.
  double extraction_error_rate = 0.04;
};

/// The Interpreter's verdict for one utterance (paper Eq. 4).
struct Interpretation {
  Intent intent = Intent::kGenerate;
  double confidence = 0.0;
  /// Set iff intent == kEdit and extraction succeeded.
  std::optional<NamedTriple> triple;
  /// Why extraction failed, when it did.
  Status extraction_status;
};

/// The Interpreter: intent recognition + knowledge extraction.
///
/// Stand-in for the fine-tuned MiniCPM-2B: a naive-Bayes intent classifier
/// trained at construction on synthetic edit/chat utterances, plus a
/// gazetteer-driven triple extractor built from the knowledge graph's
/// entity (and alias) and relation vocabulary.
class Interpreter {
 public:
  /// Builds gazetteers from `kg` and trains the classifier. `kg` must
  /// outlive the interpreter only through this call (names are copied).
  static StatusOr<Interpreter> Create(const KnowledgeGraph& kg,
                                      const InterpreterConfig& config = {});

  /// Classifies the utterance; for edit intent also extracts the triple
  /// (with the configured simulated extraction noise).
  Interpretation Interpret(const std::string& utterance) const;

  /// Nominal interpreter footprint (MiniCPM-2B), for the cost model.
  static size_t SimulatedParamsMillion() { return 2400; }

  const IntentClassifier& classifier() const { return classifier_; }
  const TripleExtractor& extractor() const { return extractor_; }

 private:
  Interpreter() = default;

  InterpreterConfig config_;
  IntentClassifier classifier_;
  TripleExtractor extractor_;
  std::vector<std::string> canonical_entities_;  // for error injection
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_INTERPRETER_H_
