#include "core/security.h"

#include "util/string_util.h"

namespace oneedit {

void SecurityGuard::BlockEntity(const std::string& entity) {
  blocked_entities_.insert(ToLower(entity));
}

void SecurityGuard::BlockPhrase(const std::string& phrase) {
  blocked_phrases_.push_back(ToLower(phrase));
}

Status SecurityGuard::Screen(const NamedTriple& edit) const {
  const std::string object = ToLower(edit.object);
  if (blocked_entities_.count(object) > 0) {
    return Status::Rejected("edit object '" + edit.object +
                            "' is on the blocklist");
  }
  for (const std::string& phrase : blocked_phrases_) {
    if (object.find(phrase) != std::string::npos) {
      return Status::Rejected("edit object '" + edit.object +
                              "' matches blocked phrase '" + phrase + "'");
    }
  }
  return Status::OK();
}

}  // namespace oneedit
