#ifndef ONEEDIT_CORE_COST_MODEL_H_
#define ONEEDIT_CORE_COST_MODEL_H_

#include <cstddef>
#include <string>

namespace oneedit {

/// First-principles cost accounting standing in for the paper's A800/3090
/// measurements (Table 3). See DESIGN.md §1 for the substitution rationale.
///
/// Time: a weight-modifying edit costs optimization passes proportional to
/// model size; a GRACE edit costs an adaptor search/train step; a cache
/// rollback or re-apply is a single parameter add — effectively free on the
/// Table 3 scale. Coefficients are fitted to the paper's reported seconds so
/// the *ratios* (cache reuse ⇒ ~40% / ~70% savings at 2 / 3 users) hold.
///
/// VRAM: base weights + method working set, plus the interpreter's ~6 GB
/// when OneEdit's pipeline is deployed alongside.
class CostModel {
 public:
  /// Estimated seconds for one edit of `method` ("FT"/"ROME"/"MEMIT"/
  /// "GRACE") on a model of `params_million` parameters. `cache_hit` is the
  /// re-apply/rollback fast path.
  static double EditSeconds(const std::string& method, size_t params_million,
                            bool cache_hit);

  /// Estimated peak VRAM (GB) while editing with `method`;
  /// `with_interpreter` adds the OneEdit interpreter deployment.
  static double VramGb(const std::string& method, size_t params_million,
                       bool with_interpreter);

  /// The interpreter's VRAM share (MiniCPM-2B stand-in).
  static double InterpreterVramGb() { return 6.0; }
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_COST_MODEL_H_
