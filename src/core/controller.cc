#include "core/controller.h"

#include <unordered_set>

#include "kg/graph_query.h"
#include "kg/triple.h"

namespace oneedit {
namespace {

struct NamedTripleKey {
  std::string operator()(const NamedTriple& t) const {
    return t.subject + "\x1f" + t.relation + "\x1f" + t.object;
  }
};

}  // namespace

Controller::Controller(KnowledgeGraph* kg, const ControllerConfig& config)
    : kg_(kg), config_(config) {}

StatusOr<EditPlan> Controller::Process(const NamedTriple& request) {
  EditPlan plan;
  plan.request = request;
  plan.kg_version_before = kg_->version();

  ONEEDIT_ASSIGN_OR_RETURN(const RelationId r,
                           kg_->schema().Lookup(request.relation));
  const EntityId s = kg_->InternEntity(request.subject);
  const EntityId o = kg_->InternEntity(request.object);
  const Triple edit{s, r, o};

  // ---------------- Algorithm 1: coverage conflicts ----------------
  if (kg_->Contains(edit)) {
    plan.no_op = true;
    return plan;
  }
  const RelationId r_inv = kg_->schema().InverseOf(r);
  // Coverage conflicts are defined on functional (single-valued) slots;
  // a non-functional relation (a professor's many advisees) accepts the new
  // triple alongside the existing ones.
  const std::vector<EntityId> displaced_objects =
      kg_->schema().IsFunctional(r) ? kg_->Objects(s, r)
                                    : std::vector<EntityId>();
  for (const EntityId old_object : displaced_objects) {
    // (s, r, o') with o' != o: the model's edit concerning it (if any) must
    // be rolled back before the new edit is applied.
    plan.rollbacks.push_back(
        NamedTriple{request.subject, request.relation,
                    kg_->EntityName(old_object)});
    ONEEDIT_RETURN_IF_ERROR(kg_->Remove(Triple{s, r, old_object}));
    // Keep the graph reverse-consistent: the displaced object's reverse
    // counterpart (o', r_inv, s) goes with it.
    if (r_inv != kInvalidId &&
        kg_->Contains(Triple{old_object, r_inv, s})) {
      plan.rollbacks.push_back(
          NamedTriple{kg_->EntityName(old_object),
                      kg_->schema().Name(r_inv), request.subject});
      ONEEDIT_RETURN_IF_ERROR(kg_->Remove(Triple{old_object, r_inv, s}));
    }
    // Alias restatements of the displaced edit must be rolled back too,
    // or repeated multi-user edits would pile up on the alias slots.
    if (config_.augment_aliases) {
      for (const EntityId alias : kg_->AliasesOf(s)) {
        plan.rollbacks.push_back(NamedTriple{kg_->EntityName(alias),
                                             request.relation,
                                             kg_->EntityName(old_object)});
      }
    }
  }
  ONEEDIT_RETURN_IF_ERROR(kg_->Add(edit));
  plan.edits.push_back(request);

  // ---------------- Algorithm 2: reverse conflicts ----------------
  if (r_inv != kInvalidId) {
    const std::string inverse_name = kg_->schema().Name(r_inv);
    const Triple reverse{o, r_inv, s};
    if (!kg_->Contains(reverse)) {
      const std::vector<EntityId> reverse_conflicts =
          kg_->schema().IsFunctional(r_inv) ? kg_->Objects(o, r_inv)
                                            : std::vector<EntityId>();
      for (const EntityId old_subject : reverse_conflicts) {
        // (o, r_inv, s') conflicts with the auto-constructed reverse triple:
        // roll it back, along with its forward counterpart (s', r, o).
        plan.rollbacks.push_back(NamedTriple{
            request.object, inverse_name, kg_->EntityName(old_subject)});
        ONEEDIT_RETURN_IF_ERROR(kg_->Remove(Triple{o, r_inv, old_subject}));
        const Triple forward_counterpart{old_subject, r, o};
        if (kg_->Contains(forward_counterpart)) {
          plan.rollbacks.push_back(NamedTriple{
              kg_->EntityName(old_subject), request.relation, request.object});
          ONEEDIT_RETURN_IF_ERROR(kg_->Remove(forward_counterpart));
        }
      }
      ONEEDIT_RETURN_IF_ERROR(kg_->Add(reverse));
    }
    plan.edits.push_back(
        NamedTriple{request.object, inverse_name, request.subject});
  }

  // Alias restatements of the edit (surface-form expansion).
  if (config_.augment_aliases) {
    for (const EntityId alias : kg_->AliasesOf(s)) {
      plan.edits.push_back(NamedTriple{kg_->EntityName(alias),
                                       request.relation, request.object});
    }
  }

  // ---------------- §3.4.2: knowledge-graph augmentation ----------------
  std::unordered_set<std::string> planned;
  const NamedTripleKey key;
  for (const NamedTriple& t : plan.edits) planned.insert(key(t));

  // (a) rule maintenance first: inference triples implied by the edit (and
  // its auto-constructed reverse) are upserted into the KG, replacing any
  // stale derived facts (the old First Lady), so the symbolic store is
  // rule-consistent before generation triples are selected. Disabled in the
  // Figure 4 ablation.
  if (config_.use_logical_rules) {
    std::vector<Triple> derived = kg_->rules().DeriveFrom(kg_->store(), edit);
    if (r_inv != kInvalidId) {
      for (const Triple& t :
           kg_->rules().DeriveFrom(kg_->store(), Triple{o, r_inv, s})) {
        derived.push_back(t);
      }
    }
    for (const Triple& t : derived) {
      ONEEDIT_ASSIGN_OR_RETURN(const std::optional<EntityId> displaced,
                               kg_->Upsert(t.subject, t.relation, t.object));
      if (displaced.has_value()) {
        // A previously-derived (possibly previously-edited) fact was
        // replaced; schedule its model edit for rollback too.
        plan.rollbacks.push_back(NamedTriple{
            kg_->EntityName(t.subject), kg_->schema().Name(t.relation),
            kg_->EntityName(*displaced)});
      }
    }
  }

  // (b) generation triples: the subject's incident triples first (nearest
  // neighbors — including the fresh rule heads), then the wider BFS
  // neighborhood, truncated to n. At small n the inference triples are cut
  // (Figure 3's pitfall); at large n many neighbors enter the batch, which
  // is what degrades MEMIT there.
  std::vector<NamedTriple> candidates;
  for (const Triple& t :
       NeighborhoodTriples(kg_->store(), s,
                           config_.num_generation_triples +
                               plan.edits.size() + 8,
                           /*max_hops=*/0)) {
    candidates.push_back(kg_->ToNamed(t));
  }
  if (config_.neighborhood_hops > 0) {
    for (const Triple& t : NeighborhoodTriples(
             kg_->store(), s,
             2 * config_.num_generation_triples + plan.edits.size() + 8,
             config_.neighborhood_hops)) {
      candidates.push_back(kg_->ToNamed(t));
    }
  }

  for (const NamedTriple& candidate : candidates) {
    if (plan.augmentations.size() >= config_.num_generation_triples) break;
    if (!planned.insert(key(candidate)).second) continue;
    plan.augmentations.push_back(candidate);
  }
  return plan;
}

StatusOr<EditPlan> Controller::ProcessErase(const NamedTriple& request) {
  EditPlan plan;
  plan.request = request;
  plan.kg_version_before = kg_->version();

  ONEEDIT_ASSIGN_OR_RETURN(const RelationId r,
                           kg_->schema().Lookup(request.relation));
  const auto subject = kg_->LookupEntity(request.subject);
  const auto object = kg_->LookupEntity(request.object);
  if (!subject.ok() || !object.ok() ||
      !kg_->Contains(Triple{*subject, r, *object})) {
    plan.no_op = true;  // nothing to erase
    return plan;
  }
  const EntityId s = *subject;
  const EntityId o = *object;

  // The retraction set: the triple itself, its reverse counterpart, and its
  // alias restatements. Each goes to `rollbacks` (cached θ is subtracted)
  // AND to `suppressions` (pretrained knowledge is zeroed in place).
  const auto retract = [&](const NamedTriple& target) {
    plan.rollbacks.push_back(target);
    plan.suppressions.push_back(target);
  };

  retract(request);
  ONEEDIT_RETURN_IF_ERROR(kg_->Remove(Triple{s, r, o}));

  const RelationId r_inv = kg_->schema().InverseOf(r);
  if (r_inv != kInvalidId && kg_->Contains(Triple{o, r_inv, s})) {
    retract(NamedTriple{request.object, kg_->schema().Name(r_inv),
                        request.subject});
    ONEEDIT_RETURN_IF_ERROR(kg_->Remove(Triple{o, r_inv, s}));
  }
  if (config_.augment_aliases) {
    for (const EntityId alias : kg_->AliasesOf(s)) {
      retract(NamedTriple{kg_->EntityName(alias), request.relation,
                          request.object});
    }
  }

  // Rule maintenance: derived facts that depended on the retracted triple
  // are stale now; remove them from the KG and retract their model edits.
  if (config_.use_logical_rules) {
    for (const HornRule& rule : kg_->rules().rules()) {
      if (rule.body1 != r) continue;
      for (const EntityId z : kg_->Objects(o, rule.body2)) {
        const Triple derived{s, rule.head, z};
        if (!kg_->Contains(derived)) continue;
        retract(kg_->ToNamed(derived));
        ONEEDIT_RETURN_IF_ERROR(kg_->Remove(derived));
      }
    }
  }
  return plan;
}

}  // namespace oneedit
