#include "core/oneedit_editor.h"

namespace oneedit {

OneEditEditor::OneEditEditor(LanguageModel* model,
                             std::unique_ptr<EditingMethod> method,
                             const EditorConfig& config)
    : model_(model), method_(std::move(method)), config_(config) {}

StatusOr<EditOutcome> OneEditEditor::Execute(const EditPlan& plan) {
  ONEEDIT_ASSIGN_OR_RETURN(std::vector<EditOutcome> outcomes,
                           ExecuteBatch({&plan}));
  return outcomes.front();
}

StatusOr<std::vector<EditOutcome>> OneEditEditor::ExecuteBatch(
    const std::vector<const EditPlan*>& plans) {
  std::vector<EditOutcome> outcomes(plans.size());

  // Triples staged for the single joint ApplyBatch call, with the plan that
  // staged each one (for attributing the applied counters afterwards).
  std::vector<NamedTriple> batch;
  struct Attribution {
    size_t plan;
    bool augmentation;
  };
  std::vector<Attribution> attribution;
  std::unordered_set<std::string> staged_keys;

  for (size_t p = 0; p < plans.size(); ++p) {
    const EditPlan& plan = *plans[p];
    EditOutcome& outcome = outcomes[p];
    if (plan.no_op) continue;
    std::unordered_set<std::string> rolled_back;

    // 1) Rollbacks: subtract cached θ for each conflicting prior edit. A miss
    //    means the conflicting knowledge was pretrained, not edited — the
    //    replace-semantics of the upcoming edit overrides it in place.
    for (const NamedTriple& target : plan.rollbacks) {
      const EditDelta* cached =
          config_.use_cache ? cache_.Get(target) : nullptr;
      if (cached == nullptr || !IsLive(target)) {
        ++outcome.rollbacks_skipped;
        continue;
      }
      ONEEDIT_RETURN_IF_ERROR(method_->Rollback(model_, *cached));
      live_.erase(LiveKey(target));
      rolled_back.insert(LiveKey(target));
      ++outcome.rollbacks_applied;
      // The θ stays cached: if this knowledge returns later (§4.8.1's
      // "Trump wins again in 2024"), it is re-applied directly.
    }

    // 1b) Suppressions (erase path): retracted knowledge that was pretrained
    //     rather than edited has no θ to subtract — drive its slot to zero
    //     in place instead.
    for (const NamedTriple& target : plan.suppressions) {
      if (rolled_back.count(LiveKey(target)) > 0) continue;  // already gone
      const std::vector<Vec> keys =
          model_->CenterKeys(target.subject, target.relation);
      const Vec current = model_->Recall(keys);
      const double per_layer = -1.0 / static_cast<double>(keys.size());
      for (size_t layer = 0; layer < keys.size(); ++layer) {
        model_->memory().AddRankOne(layer, current, keys[layer], per_layer);
      }
      ++outcome.suppressions_applied;
    }

    // 2) Edits + augmentations. Cached triples are re-applied (fast path);
    //    the rest are staged for the joint batch.
    const auto stage = [&](const NamedTriple& triple,
                           bool is_augmentation) -> Status {
      if (IsLive(triple) || staged_keys.count(LiveKey(triple)) > 0) {
        // Already installed (or an earlier plan in this batch installs it)
        // and not rolled back — nothing to do.
        ++outcome.cache_hits;
        return Status::OK();
      }
      if (config_.use_cache) {
        if (const EditDelta* cached = cache_.Get(triple)) {
          ONEEDIT_RETURN_IF_ERROR(method_->Reapply(model_, *cached));
          live_.insert(LiveKey(triple));
          ++outcome.cache_hits;
          (is_augmentation ? outcome.augmentations_applied
                           : outcome.edits_applied) += 1;
          return Status::OK();
        }
      }
      batch.push_back(triple);
      attribution.push_back(Attribution{p, is_augmentation});
      staged_keys.insert(LiveKey(triple));
      return Status::OK();
    };
    for (const NamedTriple& triple : plan.edits) {
      ONEEDIT_RETURN_IF_ERROR(stage(triple, /*is_augmentation=*/false));
    }
    for (const NamedTriple& triple : plan.augmentations) {
      ONEEDIT_RETURN_IF_ERROR(stage(triple, /*is_augmentation=*/true));
    }
  }

  // 3) One joint model write for everything staged, across all plans — the
  //    coalescing the serving layer's writer worker relies on.
  if (!batch.empty()) {
    ONEEDIT_ASSIGN_OR_RETURN(std::vector<EditDelta> deltas,
                             method_->ApplyBatch(model_, batch));
    for (size_t i = 0; i < batch.size(); ++i) {
      live_.insert(LiveKey(batch[i]));
      EditOutcome& outcome = outcomes[attribution[i].plan];
      (attribution[i].augmentation ? outcome.augmentations_applied
                                   : outcome.edits_applied) += 1;
    }
    if (config_.use_cache) {
      for (EditDelta& delta : deltas) cache_.Put(std::move(delta));
    }
  }
  return outcomes;
}

void OneEditEditor::ResetState() {
  method_->Reset(model_);
  cache_.Clear();
  live_.clear();
}

void OneEditEditor::BeginTxn() {
  txn_ = std::make_unique<Txn>();
  txn_->method_state = method_->SnapshotMethodState();
  txn_->live = live_;
  cache_.AttachJournal(&txn_->cache_journal);
}

void OneEditEditor::CommitTxn() {
  if (txn_ == nullptr) return;
  cache_.AttachJournal(nullptr);
  txn_->cache_journal.Commit();
  txn_.reset();
}

void OneEditEditor::AbortTxn() {
  if (txn_ == nullptr) return;
  cache_.AttachJournal(nullptr);
  txn_->cache_journal.Abort();
  method_->RestoreMethodState(txn_->method_state);
  live_ = std::move(txn_->live);
  txn_.reset();
}

}  // namespace oneedit
