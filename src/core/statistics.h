#ifndef ONEEDIT_CORE_STATISTICS_H_
#define ONEEDIT_CORE_STATISTICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace oneedit {

/// System-wide ticker counters (RocksDB-style Statistics): cheap atomic
/// counters the OneEditSystem bumps on every operation, for ops dashboards
/// and tests.
enum class Ticker : size_t {
  kUtterances = 0,        ///< HandleUtterance calls
  kGenerateResponses,     ///< utterances routed to generation
  kExtractionFailures,    ///< edit intent but no triple extracted
  kEditsAccepted,         ///< edit requests applied (non-no-op)
  kEditsRejected,         ///< edits blocked by the security guard
  kEditNoOps,             ///< edits whose knowledge was already present
  kRollbacksApplied,      ///< cached θ subtracted during conflict resolution
  kRollbacksSkipped,      ///< rollback targets without cached θ
  kCacheHits,             ///< edits served by re-applying cached θ
  kModelWrites,           ///< fresh model edits (primary + augmentation)
  kUserRollbacks,         ///< administrative RollbackUserEdits calls
  kErasures,              ///< EraseTriple retractions applied
  kServingReads,          ///< EditService::Ask queries (shared-lock path)
  kServingSubmitted,      ///< requests accepted into the serving queue
  kServingRejected,       ///< requests rejected by queue backpressure
  kServingBatches,        ///< writer batches applied by the serving worker
  kWalRecords,            ///< edit WAL records appended
  kWalCommits,            ///< edit WAL group commits (one fsync per batch)
  kWalFailures,           ///< edit WAL append/sync failures
  kCheckpoints,           ///< system checkpoints published
  kCheckpointFailures,    ///< system checkpoint attempts that failed
  kRecoveredRecords,      ///< WAL records replayed during startup recovery
  kDegradedRejects,       ///< writes rejected while the service was degraded
  kQuarantinedEdits,      ///< poison edits isolated by canary validation
  kRollbackBatches,       ///< applied batches undone after canary failure
  kCanaryFailures,        ///< post-apply validations that tripped
  kDeadlineExpired,       ///< requests expired before reaching the writer
  kWalRetries,            ///< transient WAL failures retried with backoff
  kHealthTransitions,     ///< ServiceHealth state changes (any direction)
  kTickerCount,           // sentinel
};

std::string TickerName(Ticker ticker);

/// Value distributions the serving layer records (count/sum/max — enough
/// for mean latency, mean batch size and peak queue depth on a dashboard).
enum class Histogram : size_t {
  kServingBatchSize = 0,     ///< requests coalesced per writer batch
  kServingQueueDepth,        ///< queue depth observed at each admission
  kServingLatencyMicros,     ///< submit -> completion per request
  kWalCommitMicros,          ///< append + fsync time per group commit
  kCheckpointMicros,         ///< time to serialize + publish a checkpoint
  kRollbackMicros,           ///< undo + bisect + re-admit time per rollback
  kHistogramCount,           // sentinel
};

std::string HistogramName(Histogram histogram);

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  double Average() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class Statistics {
 public:
  Statistics() { Reset(); }

  void Add(Ticker ticker, uint64_t count = 1) {
    counters_[static_cast<size_t>(ticker)].fetch_add(
        count, std::memory_order_relaxed);
  }

  uint64_t Get(Ticker ticker) const {
    return counters_[static_cast<size_t>(ticker)].load(
        std::memory_order_relaxed);
  }

  /// Records one observation into a histogram. Thread-safe and lock-free.
  void Record(Histogram histogram, uint64_t value) {
    Cell& cell = cells_[static_cast<size_t>(histogram)];
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = cell.max.load(std::memory_order_relaxed);
    while (seen < value && !cell.max.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot GetHistogram(Histogram histogram) const {
    const Cell& cell = cells_[static_cast<size_t>(histogram)];
    HistogramSnapshot snapshot;
    snapshot.count = cell.count.load(std::memory_order_relaxed);
    snapshot.sum = cell.sum.load(std::memory_order_relaxed);
    snapshot.max = cell.max.load(std::memory_order_relaxed);
    return snapshot;
  }

  void Reset() {
    for (auto& counter : counters_) counter.store(0);
    for (Cell& cell : cells_) {
      cell.count.store(0);
      cell.sum.store(0);
      cell.max.store(0);
    }
  }

  /// "utterances: 12, edits_accepted: 9, ..." — non-zero tickers only,
  /// followed by non-empty histograms as "name: avg X max Y (N)".
  std::string ToString() const;

 private:
  struct Cell {
    std::atomic<uint64_t> count;
    std::atomic<uint64_t> sum;
    std::atomic<uint64_t> max;
  };

  std::array<std::atomic<uint64_t>,
             static_cast<size_t>(Ticker::kTickerCount)>
      counters_;
  std::array<Cell, static_cast<size_t>(Histogram::kHistogramCount)> cells_;
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_STATISTICS_H_
