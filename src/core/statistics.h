#ifndef ONEEDIT_CORE_STATISTICS_H_
#define ONEEDIT_CORE_STATISTICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace oneedit {

/// System-wide ticker counters (RocksDB-style Statistics): cheap atomic
/// counters the OneEditSystem bumps on every operation, for ops dashboards
/// and tests.
enum class Ticker : size_t {
  kUtterances = 0,        ///< HandleUtterance calls
  kGenerateResponses,     ///< utterances routed to generation
  kExtractionFailures,    ///< edit intent but no triple extracted
  kEditsAccepted,         ///< edit requests applied (non-no-op)
  kEditsRejected,         ///< edits blocked by the security guard
  kEditNoOps,             ///< edits whose knowledge was already present
  kRollbacksApplied,      ///< cached θ subtracted during conflict resolution
  kRollbacksSkipped,      ///< rollback targets without cached θ
  kCacheHits,             ///< edits served by re-applying cached θ
  kModelWrites,           ///< fresh model edits (primary + augmentation)
  kUserRollbacks,         ///< administrative RollbackUserEdits calls
  kErasures,              ///< EraseTriple retractions applied
  kTickerCount,           // sentinel
};

std::string TickerName(Ticker ticker);

class Statistics {
 public:
  Statistics() {
    for (auto& counter : counters_) counter.store(0);
  }

  void Add(Ticker ticker, uint64_t count = 1) {
    counters_[static_cast<size_t>(ticker)].fetch_add(
        count, std::memory_order_relaxed);
  }

  uint64_t Get(Ticker ticker) const {
    return counters_[static_cast<size_t>(ticker)].load(
        std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& counter : counters_) counter.store(0);
  }

  /// "utterances: 12, edits_accepted: 9, ..." — non-zero tickers only.
  std::string ToString() const;

 private:
  std::array<std::atomic<uint64_t>,
             static_cast<size_t>(Ticker::kTickerCount)>
      counters_;
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_STATISTICS_H_
