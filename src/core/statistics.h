#ifndef ONEEDIT_CORE_STATISTICS_H_
#define ONEEDIT_CORE_STATISTICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

namespace oneedit {

/// System-wide ticker counters (RocksDB-style Statistics): cheap atomic
/// counters the OneEditSystem bumps on every operation, for ops dashboards
/// and tests.
enum class Ticker : size_t {
  kUtterances = 0,        ///< HandleUtterance calls
  kGenerateResponses,     ///< utterances routed to generation
  kExtractionFailures,    ///< edit intent but no triple extracted
  kEditsAccepted,         ///< edit requests applied (non-no-op)
  kEditsRejected,         ///< edits blocked by the security guard
  kEditNoOps,             ///< edits whose knowledge was already present
  kRollbacksApplied,      ///< cached θ subtracted during conflict resolution
  kRollbacksSkipped,      ///< rollback targets without cached θ
  kCacheHits,             ///< edits served by re-applying cached θ
  kModelWrites,           ///< fresh model edits (primary + augmentation)
  kUserRollbacks,         ///< administrative RollbackUserEdits calls
  kErasures,              ///< EraseTriple retractions applied
  kServingReads,          ///< EditService::Ask queries (shared-lock path)
  kServingSubmitted,      ///< requests accepted into the serving queue
  kServingRejected,       ///< requests rejected by queue backpressure
  kServingBatches,        ///< writer batches applied by the serving worker
  kWalRecords,            ///< edit WAL records appended
  kWalCommits,            ///< edit WAL group commits (one fsync per batch)
  kWalFailures,           ///< edit WAL append/sync failures
  kCheckpoints,           ///< system checkpoints published
  kCheckpointFailures,    ///< system checkpoint attempts that failed
  kRecoveredRecords,      ///< WAL records replayed during startup recovery
  kDegradedRejects,       ///< writes rejected while the service was degraded
  kQuarantinedEdits,      ///< poison edits isolated by canary validation
  kRollbackBatches,       ///< applied batches undone after canary failure
  kCanaryFailures,        ///< post-apply validations that tripped
  kDeadlineExpired,       ///< requests expired before reaching the writer
  kWalRetries,            ///< transient WAL failures retried with backoff
  kHealthTransitions,     ///< ServiceHealth state changes (any direction)
  kReplBatchesShipped,    ///< WAL batches shipped to followers (primary)
  kReplBytesShipped,      ///< frame + snapshot bytes shipped (primary)
  kReplSnapshotsShipped,  ///< full checkpoint installs shipped (primary)
  kReplPollsServed,       ///< follower poll requests answered (primary)
  kReplBatchesApplied,    ///< shipped batches journaled + applied (follower)
  kReplRecordsApplied,    ///< shipped WAL records journaled (follower)
  kReplSnapshotsInstalled,///< checkpoint images installed (follower)
  kReplStaleReads,        ///< AskAtLeast rejections for lagging state
  kReplAckTimeouts,       ///< quorum waits that timed out (primary)
  kReplReconnects,        ///< follower reconnect attempts after a drop
  kReplTermRejections,    ///< frames/polls rejected for a stale term
  kReplFencedWrites,      ///< writes shed because this node is fenced
  kReplDivergenceTruncations,  ///< deposed-term suffixes truncated + resynced
  kReplQuorumFailures,    ///< writes failed by AckPolicy::kFailWrite
  kReplFollowerLimitRejects,   ///< connections rejected at the follower cap
  kSnapshotsPublished,    ///< immutable read states published by the writer
  kScrubPasses,           ///< background integrity scrub passes completed
  kScrubCorruptionsFound, ///< bit-rot findings surfaced by the scrubber
  kRepairsCompleted,      ///< corrupt regions repaired (peer fetch or local)
  kEnospcRejects,         ///< writes shed because the disk budget ran out
  kTmpFilesSwept,         ///< stale *.tmp checkpoint files removed at startup
  kTxnPrepares,           ///< cross-shard 2PC prepare markers journaled
  kTxnDecisions,          ///< cross-shard 2PC decision markers journaled
  kCrossShardTxns,        ///< cross-shard edits committed through 2PC
  kCrossShardAborts,      ///< cross-shard edits aborted (any phase)
  kTxnInDoubtResolved,    ///< in-doubt 2PC halves settled at recovery
  kTenantQuotaRejects,    ///< writes shed by a tenant's admission quota
  kTickerCount,           // sentinel
};

std::string TickerName(Ticker ticker);

/// Value distributions the serving layer records. Implemented as bucketed
/// exponential histograms (4 sub-buckets per power of two), so snapshots
/// answer p50/p95/p99 exact-to-bucket in addition to count/sum/max.
enum class Histogram : size_t {
  kServingBatchSize = 0,     ///< requests coalesced per writer batch
  kServingQueueDepth,        ///< queue depth observed at each admission
  kServingLatencyMicros,     ///< submit -> completion per request
  kServingQueueWaitMicros,   ///< enqueue -> writer dequeue per request
  kServingReadMicros,        ///< Ask latency (shared-lock read path)
  kWalCommitMicros,          ///< append + fsync time per group commit
  kCheckpointMicros,         ///< time to serialize + publish a checkpoint
  kRollbackMicros,           ///< undo + bisect + re-admit time per rollback
  kReplApplyMicros,          ///< journal + apply time per shipped batch
  kServingReadLockWaitMicros,  ///< time a read spent acquiring locks (0 on
                               ///< the snapshot path — asserted by the bench)
  kHistogramCount,           // sentinel
};

std::string HistogramName(Histogram histogram);

/// Exponential bucket layout: values 0..3 get exact buckets, every later
/// power of two splits into 4 sub-buckets (~25% relative bucket width, the
/// bound on percentile error). 64-bit values need 4 + 62*4 buckets.
inline constexpr size_t kHistogramBucketCount = 4 + 62 * 4;

/// Bucket index for a recorded value (constant-time bit twiddling).
inline size_t HistogramBucketIndex(uint64_t value) {
  if (value < 4) return static_cast<size_t>(value);
  const unsigned octave = static_cast<unsigned>(std::bit_width(value)) - 1;
  const uint64_t sub = (value >> (octave - 2)) & 3;
  return 4 + (static_cast<size_t>(octave) - 2) * 4 +
         static_cast<size_t>(sub);
}

/// Inclusive upper bound of a bucket — the value percentiles report
/// ("exact-to-bucket": the true quantile lies within the bucket).
inline uint64_t HistogramBucketUpperBound(size_t index) {
  if (index < 4) return index;
  const uint64_t octave = 2 + (index - 4) / 4;
  const uint64_t sub = (index - 4) % 4;
  // Top bucket wraps to exactly UINT64_MAX via unsigned arithmetic.
  return (uint64_t{1} << octave) + ((sub + 1) << (octave - 2)) - 1;
}

struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  /// Per-bucket counts (index via HistogramBucketIndex).
  std::array<uint64_t, kHistogramBucketCount> buckets{};

  double Average() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of the bucket holding the p-quantile observation
  /// (0 < p <= 1), clamped to the exact max. 0 when empty.
  uint64_t Percentile(double p) const;

  uint64_t P50() const { return Percentile(0.50); }
  uint64_t P95() const { return Percentile(0.95); }
  uint64_t P99() const { return Percentile(0.99); }
};

class Statistics {
 public:
  Statistics() { Reset(); }

  void Add(Ticker ticker, uint64_t count = 1) {
    counters_[static_cast<size_t>(ticker)].fetch_add(
        count, std::memory_order_relaxed);
  }

  uint64_t Get(Ticker ticker) const {
    return counters_[static_cast<size_t>(ticker)].load(
        std::memory_order_relaxed);
  }

  /// Records one observation into a histogram. Thread-safe and lock-free:
  /// count/sum/max plus one bucket increment.
  void Record(Histogram histogram, uint64_t value) {
    Cell& cell = cells_[static_cast<size_t>(histogram)];
    cell.count.fetch_add(1, std::memory_order_relaxed);
    cell.sum.fetch_add(value, std::memory_order_relaxed);
    cell.buckets[HistogramBucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    uint64_t seen = cell.max.load(std::memory_order_relaxed);
    while (seen < value && !cell.max.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot GetHistogram(Histogram histogram) const {
    const Cell& cell = cells_[static_cast<size_t>(histogram)];
    HistogramSnapshot snapshot;
    snapshot.count = cell.count.load(std::memory_order_relaxed);
    snapshot.sum = cell.sum.load(std::memory_order_relaxed);
    snapshot.max = cell.max.load(std::memory_order_relaxed);
    for (size_t i = 0; i < kHistogramBucketCount; ++i) {
      snapshot.buckets[i] = cell.buckets[i].load(std::memory_order_relaxed);
    }
    return snapshot;
  }

  void Reset() {
    for (auto& counter : counters_) counter.store(0);
    for (Cell& cell : cells_) {
      cell.count.store(0);
      cell.sum.store(0);
      cell.max.store(0);
      for (auto& bucket : cell.buckets) bucket.store(0);
    }
  }

  /// "utterances: 12, edits_accepted: 9, ..." — never-touched tickers are
  /// skipped, then non-empty histograms as
  /// "name: p50 X p95 Y p99 Z max M (N)".
  std::string ToString() const;

 private:
  struct Cell {
    std::atomic<uint64_t> count;
    std::atomic<uint64_t> sum;
    std::atomic<uint64_t> max;
    std::array<std::atomic<uint64_t>, kHistogramBucketCount> buckets;
  };

  std::array<std::atomic<uint64_t>,
             static_cast<size_t>(Ticker::kTickerCount)>
      counters_;
  std::array<Cell, static_cast<size_t>(Histogram::kHistogramCount)> cells_;
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_STATISTICS_H_
