#include "core/statistics.h"

#include <algorithm>

namespace oneedit {

std::string TickerName(Ticker ticker) {
  switch (ticker) {
    case Ticker::kUtterances:
      return "utterances";
    case Ticker::kGenerateResponses:
      return "generate_responses";
    case Ticker::kExtractionFailures:
      return "extraction_failures";
    case Ticker::kEditsAccepted:
      return "edits_accepted";
    case Ticker::kEditsRejected:
      return "edits_rejected";
    case Ticker::kEditNoOps:
      return "edit_no_ops";
    case Ticker::kRollbacksApplied:
      return "rollbacks_applied";
    case Ticker::kRollbacksSkipped:
      return "rollbacks_skipped";
    case Ticker::kCacheHits:
      return "cache_hits";
    case Ticker::kModelWrites:
      return "model_writes";
    case Ticker::kUserRollbacks:
      return "user_rollbacks";
    case Ticker::kErasures:
      return "erasures";
    case Ticker::kServingReads:
      return "serving_reads";
    case Ticker::kServingSubmitted:
      return "serving_submitted";
    case Ticker::kServingRejected:
      return "serving_rejected";
    case Ticker::kServingBatches:
      return "serving_batches";
    case Ticker::kWalRecords:
      return "wal_records";
    case Ticker::kWalCommits:
      return "wal_commits";
    case Ticker::kWalFailures:
      return "wal_failures";
    case Ticker::kCheckpoints:
      return "checkpoints";
    case Ticker::kCheckpointFailures:
      return "checkpoint_failures";
    case Ticker::kRecoveredRecords:
      return "recovered_records";
    case Ticker::kDegradedRejects:
      return "degraded_rejects";
    case Ticker::kQuarantinedEdits:
      return "quarantined_edits";
    case Ticker::kRollbackBatches:
      return "rollback_batches";
    case Ticker::kCanaryFailures:
      return "canary_failures";
    case Ticker::kDeadlineExpired:
      return "deadline_expired";
    case Ticker::kWalRetries:
      return "wal_retries";
    case Ticker::kHealthTransitions:
      return "health_transitions";
    case Ticker::kReplBatchesShipped:
      return "repl_batches_shipped";
    case Ticker::kReplBytesShipped:
      return "repl_bytes_shipped";
    case Ticker::kReplSnapshotsShipped:
      return "repl_snapshots_shipped";
    case Ticker::kReplPollsServed:
      return "repl_polls_served";
    case Ticker::kReplBatchesApplied:
      return "repl_batches_applied";
    case Ticker::kReplRecordsApplied:
      return "repl_records_applied";
    case Ticker::kReplSnapshotsInstalled:
      return "repl_snapshots_installed";
    case Ticker::kReplStaleReads:
      return "repl_stale_reads";
    case Ticker::kReplAckTimeouts:
      return "repl_ack_timeouts";
    case Ticker::kReplReconnects:
      return "repl_reconnects";
    case Ticker::kReplTermRejections:
      return "repl_term_rejections";
    case Ticker::kReplFencedWrites:
      return "repl_fenced_writes";
    case Ticker::kReplDivergenceTruncations:
      return "repl_divergence_truncations";
    case Ticker::kReplQuorumFailures:
      return "repl_quorum_failures";
    case Ticker::kReplFollowerLimitRejects:
      return "repl_follower_limit_rejects";
    case Ticker::kSnapshotsPublished:
      return "snapshots_published";
    case Ticker::kScrubPasses:
      return "scrub_passes";
    case Ticker::kScrubCorruptionsFound:
      return "scrub_corruptions_found";
    case Ticker::kRepairsCompleted:
      return "repairs_completed";
    case Ticker::kEnospcRejects:
      return "enospc_rejects";
    case Ticker::kTmpFilesSwept:
      return "tmp_files_swept";
    case Ticker::kTxnPrepares:
      return "txn_prepares";
    case Ticker::kTxnDecisions:
      return "txn_decisions";
    case Ticker::kCrossShardTxns:
      return "cross_shard_txns";
    case Ticker::kCrossShardAborts:
      return "cross_shard_aborts";
    case Ticker::kTxnInDoubtResolved:
      return "txn_in_doubt_resolved";
    case Ticker::kTenantQuotaRejects:
      return "tenant_quota_rejects";
    case Ticker::kTickerCount:
      break;
  }
  return "unknown";
}

std::string HistogramName(Histogram histogram) {
  switch (histogram) {
    case Histogram::kServingBatchSize:
      return "serving_batch_size";
    case Histogram::kServingQueueDepth:
      return "serving_queue_depth";
    case Histogram::kServingLatencyMicros:
      return "serving_latency_micros";
    case Histogram::kServingQueueWaitMicros:
      return "serving_queue_wait_micros";
    case Histogram::kServingReadMicros:
      return "serving_read_micros";
    case Histogram::kWalCommitMicros:
      return "wal_commit_micros";
    case Histogram::kCheckpointMicros:
      return "checkpoint_micros";
    case Histogram::kRollbackMicros:
      return "rollback_micros";
    case Histogram::kReplApplyMicros:
      return "repl_apply_micros";
    case Histogram::kServingReadLockWaitMicros:
      return "serving_read_lock_wait_micros";
    case Histogram::kHistogramCount:
      break;
  }
  return "unknown";
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(count));
  if (static_cast<double>(rank) < p * static_cast<double>(count)) ++rank;
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBucketCount; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // The observed max is exact and tighter than the top bucket's bound.
      return std::min(HistogramBucketUpperBound(i), max);
    }
  }
  return max;
}

std::string Statistics::ToString() const {
  std::string out;
  for (size_t i = 0; i < static_cast<size_t>(Ticker::kTickerCount); ++i) {
    const uint64_t value = counters_[i].load(std::memory_order_relaxed);
    if (value == 0) continue;  // never-touched tickers stay out of the way
    if (!out.empty()) out += ", ";
    out += TickerName(static_cast<Ticker>(i)) + ": " + std::to_string(value);
  }
  for (size_t i = 0; i < static_cast<size_t>(Histogram::kHistogramCount);
       ++i) {
    const HistogramSnapshot snapshot =
        GetHistogram(static_cast<Histogram>(i));
    if (snapshot.count == 0) continue;
    if (!out.empty()) out += ", ";
    out += HistogramName(static_cast<Histogram>(i)) + ": p50 " +
           std::to_string(snapshot.P50()) + " p95 " +
           std::to_string(snapshot.P95()) + " p99 " +
           std::to_string(snapshot.P99()) + " max " +
           std::to_string(snapshot.max) + " (" +
           std::to_string(snapshot.count) + ")";
  }
  return out.empty() ? "(all zero)" : out;
}

}  // namespace oneedit
