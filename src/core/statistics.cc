#include "core/statistics.h"

namespace oneedit {

std::string TickerName(Ticker ticker) {
  switch (ticker) {
    case Ticker::kUtterances:
      return "utterances";
    case Ticker::kGenerateResponses:
      return "generate_responses";
    case Ticker::kExtractionFailures:
      return "extraction_failures";
    case Ticker::kEditsAccepted:
      return "edits_accepted";
    case Ticker::kEditsRejected:
      return "edits_rejected";
    case Ticker::kEditNoOps:
      return "edit_no_ops";
    case Ticker::kRollbacksApplied:
      return "rollbacks_applied";
    case Ticker::kRollbacksSkipped:
      return "rollbacks_skipped";
    case Ticker::kCacheHits:
      return "cache_hits";
    case Ticker::kModelWrites:
      return "model_writes";
    case Ticker::kUserRollbacks:
      return "user_rollbacks";
    case Ticker::kErasures:
      return "erasures";
    case Ticker::kTickerCount:
      break;
  }
  return "unknown";
}

std::string Statistics::ToString() const {
  std::string out;
  for (size_t i = 0; i < static_cast<size_t>(Ticker::kTickerCount); ++i) {
    const uint64_t value = counters_[i].load(std::memory_order_relaxed);
    if (value == 0) continue;
    if (!out.empty()) out += ", ";
    out += TickerName(static_cast<Ticker>(i)) + ": " + std::to_string(value);
  }
  return out.empty() ? "(all zero)" : out;
}

}  // namespace oneedit
