#ifndef ONEEDIT_CORE_ONEEDIT_H_
#define ONEEDIT_CORE_ONEEDIT_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/cost_model.h"
#include "core/interpreter.h"
#include "core/oneedit_editor.h"
#include "core/security.h"
#include "core/statistics.h"
#include "kg/knowledge_graph.h"
#include "obs/trace.h"
#include "model/language_model.h"
#include "util/statusor.h"

namespace oneedit {

/// The underlying editing method (OneEdit(MEMIT) / OneEdit(GRACE) in the
/// tables). Replaces the old stringly-typed `OneEditConfig::method`.
enum class EditingMethodKind {
  kFt,
  kRome,
  kMemit,
  kGrace,
  kMend,
  kSerac,
};

/// Canonical registry name ("FT", "ROME", "MEMIT", ...) for a kind — the
/// string MakeEditingMethod and CostModel accept.
std::string MethodKindName(EditingMethodKind kind);

/// Parses a method name (case-insensitive: "memit", "MEMIT", ...). Unknown
/// names are InvalidArgument.
StatusOr<EditingMethodKind> ParseMethodKind(const std::string& name);

/// All kinds, in canonical registry order.
std::vector<EditingMethodKind> AllMethodKinds();

/// Whole-system configuration (Eq. 2-3 pipeline).
struct OneEditConfig {
  InterpreterConfig interpreter;
  ControllerConfig controller;
  EditorConfig editor;
  /// Underlying editing method. (The pre-enum stringly path and its
  /// `SetMethodName` compatibility shim are gone; parse names with
  /// ParseMethodKind.)
  EditingMethodKind method = EditingMethodKind::kMemit;
};

/// Everything that happened for one accepted edit request.
struct EditReport {
  EditPlan plan;
  EditOutcome outcome;
  /// Cost-model seconds for the primary edit (interpreter overhead and
  /// cache fast paths included) — the quantity Table 3 reports.
  double simulated_seconds = 0.0;
};

/// One request against the system, whatever the entry point: a programmatic
/// triple edit/erase or a raw natural-language utterance. This is the unit
/// the serving layer queues and coalesces.
struct EditRequest {
  enum class Op {
    kEdit,       ///< apply `triple` through Controller + Editor
    kErase,      ///< retract `triple` from both stores
    kUtterance,  ///< interpret `utterance` (edit / erase / generate intent)
  };
  Op op = Op::kEdit;
  NamedTriple triple;     ///< kEdit / kErase payload
  std::string utterance;  ///< kUtterance payload
  std::string user = "anonymous";
  /// Cross-shard 2PC tag (docs/sharding.md): nonzero when this request is
  /// one half of a distributed transaction. Persisted to the WAL — replay
  /// and recovery resolution use the tag to tell "this half was applied"
  /// from "this half is still in doubt". 0 for ordinary edits; the tag has
  /// no effect on how the edit itself is applied.
  uint64_t txn_id = 0;
  /// Optional deadline: a request still waiting (queued, or blocked at
  /// admission) past this instant resolves DeadlineExceeded without ever
  /// occupying the writer. Not persisted to the WAL — a request is only
  /// journaled once it has been admitted, at which point it runs.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Request-scoped trace identity (docs/observability.md). Assigned by
  /// EditService::Submit when tracing is enabled; inactive (all zeros)
  /// otherwise. Not persisted to the WAL — traces are in-process telemetry.
  obs::TraceContext trace;

  bool expired(std::chrono::steady_clock::time_point now) const {
    return deadline.has_value() && now >= *deadline;
  }

  static EditRequest Edit(NamedTriple triple, std::string user = "anonymous");
  static EditRequest Erase(NamedTriple triple, std::string user = "anonymous");
  static EditRequest Utterance(std::string utterance,
                               std::string user = "anonymous");
};

/// The one result shape every entry point returns (HandleUtterance,
/// EditTriple, EraseTriple, EditBatch, EditService::Submit). Callers branch
/// on `kind`; `report` carries the Controller/Editor details when the
/// request reached them.
struct EditResult {
  enum class Kind {
    kEdited,            ///< edit applied
    kNoOp,              ///< edit/erase, nothing to change
    kRejected,          ///< blocked by the security guard
    kExtractionFailed,  ///< edit/erase intent, triple extraction failed
    kGenerated,         ///< generate intent, answered by the LLM
    kErased,            ///< knowledge retracted
    kQuarantined,       ///< applied, failed post-apply validation, undone
  };
  Kind kind = Kind::kGenerated;
  std::string message;
  std::optional<EditReport> report;  ///< set for kEdited / kNoOp / kErased

  bool applied() const { return kind == Kind::kEdited || kind == Kind::kErased; }
  bool no_op() const { return kind == Kind::kNoOp; }
  bool rejected() const { return kind == Kind::kRejected; }
  bool quarantined() const { return kind == Kind::kQuarantined; }
  /// Unchecked conveniences — only valid when `report` is set.
  const EditPlan& plan() const { return report->plan; }
  const EditOutcome& outcome() const { return report->outcome; }
  double simulated_seconds() const {
    return report.has_value() ? report->simulated_seconds : 0.0;
  }
};

/// "edited", "no_op", "rejected", ... — for logs and messages.
std::string EditResultKindName(EditResult::Kind kind);

/// Deprecated alias from before the unified result surface; HandleUtterance
/// used to return a differently-shaped struct than EditTriple. Will be
/// removed one release after the EditResult migration.
using UtteranceResponse = EditResult;

/// One accepted edit in the multi-user audit log.
struct AuditRecord {
  std::string user;
  NamedTriple request;
  /// The object the slot held before this edit (empty if the slot was new) —
  /// what an administrative undo restores.
  std::string previous_object;
  /// True if this record retracted knowledge (EraseTriple); undo re-asserts
  /// the triple instead of restoring a previous object.
  bool was_erase = false;
};

/// An immutable, refcounted capture of both halves of the system — the
/// neural read path (frozen weights + embeddings + adaptors) and the
/// symbolic one (KG triples/aliases) — plus the edit-cache generation they
/// were consistent with. Every lookup through one view observes the same
/// post-batch instant: a KG answer and a model decode from the same view can
/// never mix two different edit batches. Copyable and cheap to copy.
struct SystemReadView {
  ModelReadView model;
  KgReadView kg;
  /// KnowledgeGraph::version() at capture.
  uint64_t kg_version = 0;
  /// EditCache::generation() at capture.
  uint64_t cache_generation = 0;

  /// Mirror of OneEditSystem::Ask against the captured state (same
  /// reliability noise and probe seeding), lock-free and thread-safe.
  Decode Ask(const std::string& subject, const std::string& relation) const;
};

/// OneEdit: the neural-symbolic collaborative knowledge-editing system
/// (Figure 1). Wires Interpreter -> Controller -> Editor over a caller-owned
/// KnowledgeGraph and LanguageModel.
class OneEditSystem {
 public:
  /// `kg` and `model` must outlive the system.
  static StatusOr<std::unique_ptr<OneEditSystem>> Create(
      KnowledgeGraph* kg, LanguageModel* model, const OneEditConfig& config);

  // --- Natural-language entry point (Eq. 4) ---------------------------------

  StatusOr<EditResult> HandleUtterance(const std::string& utterance,
                                       const std::string& user = "anonymous");

  // --- Programmatic entry points --------------------------------------------

  /// Edits one triple through Controller + Editor (bypassing the
  /// Interpreter). Guard-blocked edits return kRejected in the result (not
  /// an error Status); only genuine failures are errors.
  StatusOr<EditResult> EditTriple(const NamedTriple& triple,
                                  const std::string& user = "anonymous");

  /// Retracts one triple from both stores ("erase"): cached edits are
  /// rolled back, pretrained knowledge is suppressed in place, the KG slot
  /// and its reverse/alias/derived dependents are removed.
  StatusOr<EditResult> EraseTriple(const NamedTriple& triple,
                                   const std::string& user = "anonymous");

  /// Uniform dispatch over every entry point — what EditService executes.
  StatusOr<EditResult> Apply(const EditRequest& request);

  /// Applies several requests, coalescing runs of kEdit requests with
  /// disjoint entity footprints into a single EditingMethod::ApplyBatch call
  /// (MEMIT's joint-edit design). Requests whose footprint overlaps an
  /// earlier request in the batch — and kErase/kUtterance requests — split
  /// the batch, so results always match sequential Apply calls per slot.
  /// Per-request failures land in that request's StatusOr slot; they do not
  /// abort the rest of the batch.
  std::vector<StatusOr<EditResult>> EditBatch(
      const std::vector<EditRequest>& requests);

  /// Direct model query for a slot. Const and lock-free: safe to call from
  /// several threads as long as no thread is mutating the system (the
  /// serving layer's snapshot path instead reads through SnapshotReadView,
  /// which stays valid during mutation).
  Decode Ask(const std::string& subject, const std::string& relation) const;

  /// Captures both halves of the system as an immutable view. Must be
  /// called from the (single) mutating thread — in serving, the writer at a
  /// batch boundary; the view may then be read from any number of threads
  /// concurrently with further edits.
  SystemReadView SnapshotReadView() const;

  // --- Crowdsourced-editing administration -----------------------------------

  /// Reverts every accepted edit by `user`, newest first, by re-editing each
  /// touched slot back to its previous object (or removing it when the slot
  /// was new). Uses cached θ where available, so reverts are cheap.
  Status RollbackUserEdits(const std::string& user);

  const std::vector<AuditRecord>& audit_log() const { return audit_log_; }

  // --- Transactional batches (self-healing rollback) -------------------------

  /// Everything EditBatch can mutate, captured before the batch so a failed
  /// post-apply validation can undo it byte-exactly:
  ///
  ///  - model weights: a full WeightSnapshot, because floating-point delta
  ///    subtraction ((x + d) - d) is not bit-exact;
  ///  - symbolic store: the KG version (KnowledgeGraph::RollbackTo);
  ///  - editor state: ledger / adaptor / live-set snapshot + cache journal
  ///    (OneEditEditor::BeginTxn);
  ///  - the audit log length.
  ///
  /// Statistics tickers are intentionally NOT rolled back — they count
  /// attempted work, and quarantine keeps its own counters.
  struct BatchTxn {
    WeightSnapshot weights;
    uint64_t kg_version = 0;
    size_t audit_log_size = 0;
    bool active = false;
  };

  /// Opens a transaction. Transactions do not nest; the serving writer holds
  /// the exclusive lock for the whole apply-validate-commit window.
  BatchTxn BeginBatchTxn();

  /// Keeps everything applied since BeginBatchTxn.
  void CommitBatchTxn(BatchTxn* txn);

  /// Restores the system to the exact state captured by BeginBatchTxn.
  Status AbortBatchTxn(BatchTxn* txn);

  // --- Components -------------------------------------------------------------

  SecurityGuard& security() { return security_; }
  Statistics& statistics() { return statistics_; }
  const Statistics& statistics() const { return statistics_; }
  Controller& controller() { return *controller_; }
  OneEditEditor& editor() { return *editor_; }
  const Interpreter& interpreter() const { return *interpreter_; }
  KnowledgeGraph& kg() { return *kg_; }
  LanguageModel& model() { return *model_; }
  const OneEditConfig& config() const { return config_; }

 private:
  OneEditSystem() = default;

  /// The slot's current object (empty if the slot is new) — captured before
  /// an edit for administrative undo.
  std::string CurrentObject(const NamedTriple& triple) const;

  /// Statistics + audit log + message for one executed edit plan.
  EditResult FinishEdit(const NamedTriple& triple, const std::string& user,
                        EditPlan plan, const EditOutcome& outcome,
                        std::string previous_object);

  KnowledgeGraph* kg_ = nullptr;
  LanguageModel* model_ = nullptr;
  OneEditConfig config_;
  std::unique_ptr<Interpreter> interpreter_;
  std::unique_ptr<Controller> controller_;
  std::unique_ptr<OneEditEditor> editor_;
  SecurityGuard security_;
  Statistics statistics_;
  std::vector<AuditRecord> audit_log_;
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_ONEEDIT_H_
