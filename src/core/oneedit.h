#ifndef ONEEDIT_CORE_ONEEDIT_H_
#define ONEEDIT_CORE_ONEEDIT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/cost_model.h"
#include "core/interpreter.h"
#include "core/oneedit_editor.h"
#include "core/security.h"
#include "core/statistics.h"
#include "kg/knowledge_graph.h"
#include "model/language_model.h"
#include "util/statusor.h"

namespace oneedit {

/// Whole-system configuration (Eq. 2-3 pipeline).
struct OneEditConfig {
  InterpreterConfig interpreter;
  ControllerConfig controller;
  EditorConfig editor;
  /// Underlying editing method: "FT", "ROME", "MEMIT", "GRACE", "MEND" or
  /// "SERAC" (OneEdit(MEMIT) / OneEdit(GRACE) in the tables).
  std::string method = "MEMIT";
};

/// Everything that happened for one accepted edit request.
struct EditReport {
  EditPlan plan;
  EditOutcome outcome;
  /// Cost-model seconds for the primary edit (interpreter overhead and
  /// cache fast paths included) — the quantity Table 3 reports.
  double simulated_seconds = 0.0;
};

/// Result of HandleUtterance.
struct UtteranceResponse {
  enum class Kind {
    kEdited,            ///< edit intent, applied
    kNoOp,              ///< edit/erase intent, nothing to change
    kRejected,          ///< edit intent, blocked by the security guard
    kExtractionFailed,  ///< edit/erase intent, triple extraction failed
    kGenerated,         ///< generate intent, answered by the LLM
    kErased,            ///< erase intent, knowledge retracted
  };
  Kind kind = Kind::kGenerated;
  std::string message;
  std::optional<EditReport> report;  ///< set for kEdited / kNoOp
};

/// One accepted edit in the multi-user audit log.
struct AuditRecord {
  std::string user;
  NamedTriple request;
  /// The object the slot held before this edit (empty if the slot was new) —
  /// what an administrative undo restores.
  std::string previous_object;
  /// True if this record retracted knowledge (EraseTriple); undo re-asserts
  /// the triple instead of restoring a previous object.
  bool was_erase = false;
};

/// OneEdit: the neural-symbolic collaborative knowledge-editing system
/// (Figure 1). Wires Interpreter -> Controller -> Editor over a caller-owned
/// KnowledgeGraph and LanguageModel.
class OneEditSystem {
 public:
  /// `kg` and `model` must outlive the system.
  static StatusOr<std::unique_ptr<OneEditSystem>> Create(
      KnowledgeGraph* kg, LanguageModel* model, const OneEditConfig& config);

  // --- Natural-language entry point (Eq. 4) ---------------------------------

  StatusOr<UtteranceResponse> HandleUtterance(const std::string& utterance,
                                              const std::string& user = "anonymous");

  // --- Programmatic entry points --------------------------------------------

  /// Edits one triple through Controller + Editor (bypassing the
  /// Interpreter). Rejected edits return kRejected in the report status.
  StatusOr<EditReport> EditTriple(const NamedTriple& triple,
                                  const std::string& user = "anonymous");

  /// Retracts one triple from both stores ("erase"): cached edits are
  /// rolled back, pretrained knowledge is suppressed in place, the KG slot
  /// and its reverse/alias/derived dependents are removed.
  StatusOr<EditReport> EraseTriple(const NamedTriple& triple,
                                   const std::string& user = "anonymous");

  /// Direct model query for a slot.
  Decode Ask(const std::string& subject, const std::string& relation) const;

  // --- Crowdsourced-editing administration -----------------------------------

  /// Reverts every accepted edit by `user`, newest first, by re-editing each
  /// touched slot back to its previous object (or removing it when the slot
  /// was new). Uses cached θ where available, so reverts are cheap.
  Status RollbackUserEdits(const std::string& user);

  const std::vector<AuditRecord>& audit_log() const { return audit_log_; }

  // --- Components -------------------------------------------------------------

  SecurityGuard& security() { return security_; }
  Statistics& statistics() { return statistics_; }
  const Statistics& statistics() const { return statistics_; }
  Controller& controller() { return *controller_; }
  OneEditEditor& editor() { return *editor_; }
  const Interpreter& interpreter() const { return *interpreter_; }
  KnowledgeGraph& kg() { return *kg_; }
  LanguageModel& model() { return *model_; }
  const OneEditConfig& config() const { return config_; }

 private:
  OneEditSystem() = default;

  KnowledgeGraph* kg_ = nullptr;
  LanguageModel* model_ = nullptr;
  OneEditConfig config_;
  std::unique_ptr<Interpreter> interpreter_;
  std::unique_ptr<Controller> controller_;
  std::unique_ptr<OneEditEditor> editor_;
  SecurityGuard security_;
  Statistics statistics_;
  std::vector<AuditRecord> audit_log_;
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_ONEEDIT_H_
