#ifndef ONEEDIT_CORE_CONTROLLER_H_
#define ONEEDIT_CORE_CONTROLLER_H_

#include <string>
#include <vector>

#include "kg/knowledge_graph.h"
#include "kg/named_triple.h"
#include "util/statusor.h"

namespace oneedit {

/// Controller knobs (§3.4).
struct ControllerConfig {
  /// n — the number of generation (knowledge-augmentation) triples passed to
  /// the Editor. The paper's default is 8 (Table 1 caption); Figure 3 sweeps
  /// this.
  size_t num_generation_triples = 8;

  /// Expand augmentation with Horn-rule inference triples (§3.4.2 "logical
  /// rules"; ablated in Figure 4).
  bool use_logical_rules = true;

  /// Also restate the edit through the subject's aliases (feeds Sub-Replace
  /// generalization).
  bool augment_aliases = true;

  /// BFS radius for the nearest-neighbor generation triples.
  size_t neighborhood_hops = 2;
};

/// What the Controller decided for one edit request (Eq. 2):
/// 𝒯_r (rollbacks), 𝒯_e (edits), 𝒯_a (augmentations).
struct EditPlan {
  NamedTriple request;

  /// 𝒯_r — previously edited triples that must be removed from the model
  /// (coverage conflicts, Algorithm 1; reverse conflicts, Algorithm 2).
  std::vector<NamedTriple> rollbacks;

  /// 𝒯_e — the triples to edit in: the request, its auto-constructed reverse
  /// (Algorithm 2), and alias restatements.
  std::vector<NamedTriple> edits;

  /// 𝒯_a — generation triples: nearest-neighbor knowledge around the edited
  /// subject first, rule-derived inference triples after, truncated to n.
  /// (The nearest-first ordering is exactly the pitfall Figure 3 measures:
  /// at small n the inference triples are the ones cut.)
  std::vector<NamedTriple> augmentations;

  /// Triples whose associations must be driven to zero in the model —
  /// erased knowledge that was pretrained (never edited, so there is no
  /// cached θ to subtract). Produced by ProcessErase only.
  std::vector<NamedTriple> suppressions;

  /// True when the KG already contained the requested triple — no model
  /// action is taken (Algorithm 1, line 13).
  bool no_op = false;

  /// KG version before this plan mutated the graph (for audit/undo).
  uint64_t kg_version_before = 0;
};

/// The Controller: resolves knowledge conflicts against the KG and derives
/// the rollback/edit/augmentation triple sets (Algorithms 1 and 2).
///
/// The KG is the arbiter: it is mutated in place (slot upserts, reverse
/// upserts, rule-derived maintenance), and every mutation is versioned, so a
/// failed downstream edit can restore it exactly.
class Controller {
 public:
  Controller(KnowledgeGraph* kg, const ControllerConfig& config = {});

  /// Runs conflict resolution + augmentation for one edit request, mutating
  /// the KG. Unknown relations are InvalidArgument; unknown entities are
  /// interned (new knowledge may introduce new objects).
  StatusOr<EditPlan> Process(const NamedTriple& request);

  /// Plans the retraction of `request` ("erase" in the paper's abstract):
  /// removes the triple, its reverse counterpart, its alias restatements and
  /// stale derived facts from the KG, and schedules them for model rollback
  /// (cached edits) or suppression (pretrained knowledge). no_op when the
  /// triple is not in the KG.
  StatusOr<EditPlan> ProcessErase(const NamedTriple& request);

  const ControllerConfig& config() const { return config_; }
  ControllerConfig& mutable_config() { return config_; }

 private:
  KnowledgeGraph* kg_;
  ControllerConfig config_;
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_CONTROLLER_H_
