#ifndef ONEEDIT_CORE_SECURITY_H_
#define ONEEDIT_CORE_SECURITY_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "kg/named_triple.h"
#include "util/status.h"

namespace oneedit {

/// Guard against toxic-knowledge attacks in crowdsourced editing (§3.4.1).
///
/// Two defenses:
///  * a blocklist of entities/phrases that may never be written as an edit
///    object (screening);
///  * the Controller's rollback machinery, which lets an administrator
///    revert any user's accepted edits after the fact (see
///    OneEditSystem::RollbackUserEdits).
class SecurityGuard {
 public:
  SecurityGuard() = default;

  /// Blocks any edit whose object equals `entity` (case-insensitive).
  void BlockEntity(const std::string& entity);

  /// Blocks any edit whose object *contains* `phrase` (case-insensitive).
  void BlockPhrase(const std::string& phrase);

  size_t num_rules() const { return blocked_entities_.size() + blocked_phrases_.size(); }

  /// OK if the edit passes screening; Rejected with an explanation if not.
  Status Screen(const NamedTriple& edit) const;

 private:
  std::unordered_set<std::string> blocked_entities_;  // lower-cased
  std::vector<std::string> blocked_phrases_;          // lower-cased
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_SECURITY_H_
