#include "core/cost_model.h"

namespace oneedit {
namespace {

struct LinearFit {
  double intercept;
  double per_billion;
};

// Coefficients fitted to Table 3's reported numbers (seconds per edit /
// peak GB as a function of parameter count in billions).
LinearFit TimeFit(const std::string& method) {
  if (method == "GRACE") return {6.0, 1.9};
  if (method == "SERAC") return {5.5, 1.7};
  if (method == "MEND") return {4.5, 0.6};
  if (method == "MEMIT") return {6.2, 0.5};
  if (method == "ROME") return {5.5, 0.45};
  return {4.0, 0.8};  // FT and anything else
}

LinearFit VramFit(const std::string& method) {
  if (method == "GRACE") return {0.8, 3.45};
  if (method == "SERAC") return {1.0, 3.5};
  if (method == "MEND") return {-1.0, 4.2};
  if (method == "MEMIT") return {-2.9, 4.6};
  if (method == "ROME") return {-2.5, 4.5};
  return {1.0, 3.2};  // FT
}

}  // namespace

double CostModel::EditSeconds(const std::string& method,
                              size_t params_million, bool cache_hit) {
  if (cache_hit) {
    // A cached θ re-apply / rollback is one parameter addition.
    return 0.05;
  }
  const LinearFit fit = TimeFit(method);
  const double billions = static_cast<double>(params_million) / 1000.0;
  return fit.intercept + fit.per_billion * billions;
}

double CostModel::VramGb(const std::string& method, size_t params_million,
                         bool with_interpreter) {
  const LinearFit fit = VramFit(method);
  const double billions = static_cast<double>(params_million) / 1000.0;
  double gb = fit.intercept + fit.per_billion * billions;
  if (gb < 1.0) gb = 1.0;
  if (with_interpreter) gb += InterpreterVramGb();
  return gb;
}

}  // namespace oneedit
