#ifndef ONEEDIT_CORE_CONCURRENT_H_
#define ONEEDIT_CORE_CONCURRENT_H_

#include <memory>
#include <mutex>
#include <string>

#include "core/oneedit.h"

namespace oneedit {

/// Thread-safe facade over OneEditSystem: one coarse mutex serializes every
/// operation, reads included.
///
/// This is the simplest correct granularity, and it is kept as the baseline
/// the serving benchmarks compare against — but it means concurrent Ask
/// queries contend with each other and with edits. Prefer
/// serving::EditService (src/serving/edit_service.h) for real deployments:
/// it separates readers from the writer with a shared_mutex and coalesces
/// queued edits into batches, so queries only block during weight
/// application.
class ConcurrentOneEdit {
 public:
  /// Takes ownership of a configured system.
  explicit ConcurrentOneEdit(std::unique_ptr<OneEditSystem> system)
      : system_(std::move(system)) {}

  StatusOr<EditResult> HandleUtterance(const std::string& utterance,
                                       const std::string& user) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->HandleUtterance(utterance, user);
  }

  StatusOr<EditResult> EditTriple(const NamedTriple& triple,
                                  const std::string& user) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->EditTriple(triple, user);
  }

  StatusOr<EditResult> EraseTriple(const NamedTriple& triple,
                                   const std::string& user) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->EraseTriple(triple, user);
  }

  StatusOr<EditResult> Apply(const EditRequest& request) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->Apply(request);
  }

  Decode Ask(const std::string& subject, const std::string& relation) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->Ask(subject, relation);
  }

  /// An immutable view of the system, captured under the coarse lock. Reads
  /// through the view afterwards take no lock at all and stay mutually
  /// consistent, no matter how many edits land in between.
  SystemReadView ReadView() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->SnapshotReadView();
  }

  Status RollbackUserEdits(const std::string& user) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->RollbackUserEdits(user);
  }

  /// Statistics are internally atomic, so reading them does not need the
  /// coarse lock.
  const Statistics& statistics() const { return system_->statistics(); }
  Statistics& statistics() { return system_->statistics(); }

  /// Runs `fn` with exclusive access to the underlying system — for
  /// inspection (audit log) or administrative surgery.
  template <typename Fn>
  auto WithExclusive(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    return fn(*system_);
  }

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<OneEditSystem> system_;
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_CONCURRENT_H_
