#ifndef ONEEDIT_CORE_CONCURRENT_H_
#define ONEEDIT_CORE_CONCURRENT_H_

#include <memory>
#include <mutex>
#include <string>

#include "core/oneedit.h"

namespace oneedit {

/// Thread-safe facade over OneEditSystem for genuinely concurrent
/// crowdsourced editing (the paper's multi-user scenario is sequential; this
/// extension makes simultaneous requests safe).
///
/// Edits are serialized under one mutex — conflict resolution against the KG
/// is inherently a read-modify-write over shared state, so a coarse lock is
/// the correct granularity; queries take the same lock because adaptor
/// registries and weights may be mid-update otherwise. Throughput remains
/// far above the cost model's per-edit seconds, so the lock is never the
/// bottleneck in practice.
class ConcurrentOneEdit {
 public:
  /// Takes ownership of a configured system.
  explicit ConcurrentOneEdit(std::unique_ptr<OneEditSystem> system)
      : system_(std::move(system)) {}

  StatusOr<UtteranceResponse> HandleUtterance(const std::string& utterance,
                                              const std::string& user) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->HandleUtterance(utterance, user);
  }

  StatusOr<EditReport> EditTriple(const NamedTriple& triple,
                                  const std::string& user) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->EditTriple(triple, user);
  }

  Decode Ask(const std::string& subject, const std::string& relation) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->Ask(subject, relation);
  }

  Status RollbackUserEdits(const std::string& user) {
    std::lock_guard<std::mutex> lock(mutex_);
    return system_->RollbackUserEdits(user);
  }

  /// Runs `fn` with exclusive access to the underlying system — for
  /// inspection (audit log, statistics) or administrative surgery.
  template <typename Fn>
  auto WithExclusive(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    return fn(*system_);
  }

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<OneEditSystem> system_;
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_CONCURRENT_H_
