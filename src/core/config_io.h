#ifndef ONEEDIT_CORE_CONFIG_IO_H_
#define ONEEDIT_CORE_CONFIG_IO_H_

#include <string>

#include "core/oneedit.h"
#include "util/statusor.h"

namespace oneedit {

/// Parses a OneEditConfig from simple `key = value` text (comments start
/// with '#'). Recognized keys:
///
///   method = MEMIT            # FT | ROME | MEMIT | GRACE | MEND | SERAC
///   controller.num_generation_triples = 8
///   controller.use_logical_rules = true
///   controller.augment_aliases = true
///   controller.neighborhood_hops = 2
///   editor.use_cache = true
///   interpreter.extraction_error_rate = 0.04
///   interpreter.training_examples_per_class = 400
///   interpreter.seed = 11
///
/// Unknown keys and malformed lines fail with InvalidArgument (configs
/// should not silently half-apply). An unrecognized method name fails at
/// parse time too, now that `method` is a typed EditingMethodKind.
StatusOr<OneEditConfig> ParseOneEditConfig(const std::string& text);

/// ParseOneEditConfig over a file's contents.
StatusOr<OneEditConfig> LoadOneEditConfig(const std::string& path);

/// Renders a config in the same key = value format (round-trips through
/// ParseOneEditConfig).
std::string OneEditConfigToString(const OneEditConfig& config);

}  // namespace oneedit

#endif  // ONEEDIT_CORE_CONFIG_IO_H_
