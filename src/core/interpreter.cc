#include "core/interpreter.h"

#include <unordered_set>

#include "nlp/utterance_generator.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace oneedit {

StatusOr<Interpreter> Interpreter::Create(const KnowledgeGraph& kg,
                                          const InterpreterConfig& config) {
  Interpreter interpreter;
  interpreter.config_ = config;

  // Entity gazetteer: every interned entity maps to its canonical form.
  std::unordered_set<std::string> is_alias;
  for (size_t id = 0; id < kg.num_entities(); ++id) {
    const EntityId entity = static_cast<EntityId>(id);
    const std::string& name = kg.EntityName(entity);
    const EntityId canonical = kg.Canonical(entity);
    interpreter.extractor_.AddEntity(name, kg.EntityName(canonical));
    if (canonical != entity) is_alias.insert(name);
  }
  for (size_t id = 0; id < kg.num_entities(); ++id) {
    const std::string& name = kg.EntityName(static_cast<EntityId>(id));
    if (is_alias.count(name) == 0) {
      interpreter.canonical_entities_.push_back(name);
    }
  }

  // Relation gazetteer: canonical name + underscores-to-spaces surface form.
  UtteranceSpec spec;
  const RelationSchema& schema = kg.schema();
  for (size_t r = 0; r < schema.size(); ++r) {
    const std::string& name = schema.Name(static_cast<RelationId>(r));
    interpreter.extractor_.AddRelation(name, name);
    interpreter.extractor_.AddRelation(StrReplaceAll(name, "_", " "), name);
    spec.relations.push_back(name);
  }

  // Train the intent classifier on synthetic data drawn from this world.
  spec.subjects = interpreter.canonical_entities_;
  spec.objects = interpreter.canonical_entities_;
  interpreter.classifier_.Train(GenerateIntentTrainingData(
      spec, config.training_examples_per_class, config.seed));

  if (interpreter.canonical_entities_.empty()) {
    return Status::InvalidArgument("interpreter needs a non-empty KG");
  }
  return interpreter;
}

Interpretation Interpreter::Interpret(const std::string& utterance) const {
  Interpretation out;
  const IntentPrediction prediction = classifier_.Predict(utterance);
  out.intent = prediction.intent;
  out.confidence = prediction.confidence;
  if (out.intent == Intent::kGenerate) return out;
  // Edit and erase intents both carry a knowledge triple.

  StatusOr<NamedTriple> extracted = extractor_.Extract(utterance);
  if (!extracted.ok()) {
    out.extraction_status = extracted.status();
    return out;
  }

  // Simulated extraction noise: deterministically corrupt a small fraction
  // of parses (the paper's Interpreter error ceiling, §4.4).
  NamedTriple triple = std::move(extracted).value();
  Rng noise(Rng::HashString(utterance) ^ config_.seed);
  if (noise.NextBool(config_.extraction_error_rate) &&
      !canonical_entities_.empty()) {
    triple.object =
        canonical_entities_[noise.NextBelow(canonical_entities_.size())];
  }
  out.triple = std::move(triple);
  return out;
}

}  // namespace oneedit
