#include "core/oneedit.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "util/rng.h"
#include "util/string_util.h"

namespace oneedit {

std::string MethodKindName(EditingMethodKind kind) {
  switch (kind) {
    case EditingMethodKind::kFt:
      return "FT";
    case EditingMethodKind::kRome:
      return "ROME";
    case EditingMethodKind::kMemit:
      return "MEMIT";
    case EditingMethodKind::kGrace:
      return "GRACE";
    case EditingMethodKind::kMend:
      return "MEND";
    case EditingMethodKind::kSerac:
      return "SERAC";
  }
  return "MEMIT";
}

StatusOr<EditingMethodKind> ParseMethodKind(const std::string& name) {
  const std::string upper = [&] {
    std::string out;
    for (const char c : name) {
      out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    return out;
  }();
  for (const EditingMethodKind kind : AllMethodKinds()) {
    if (upper == MethodKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown editing method: " + name);
}

std::vector<EditingMethodKind> AllMethodKinds() {
  return {EditingMethodKind::kFt,    EditingMethodKind::kRome,
          EditingMethodKind::kMemit, EditingMethodKind::kGrace,
          EditingMethodKind::kMend,  EditingMethodKind::kSerac};
}

EditRequest EditRequest::Edit(NamedTriple triple, std::string user) {
  EditRequest request;
  request.op = Op::kEdit;
  request.triple = std::move(triple);
  request.user = std::move(user);
  return request;
}

EditRequest EditRequest::Erase(NamedTriple triple, std::string user) {
  EditRequest request;
  request.op = Op::kErase;
  request.triple = std::move(triple);
  request.user = std::move(user);
  return request;
}

EditRequest EditRequest::Utterance(std::string utterance, std::string user) {
  EditRequest request;
  request.op = Op::kUtterance;
  request.utterance = std::move(utterance);
  request.user = std::move(user);
  return request;
}

std::string EditResultKindName(EditResult::Kind kind) {
  switch (kind) {
    case EditResult::Kind::kEdited:
      return "edited";
    case EditResult::Kind::kNoOp:
      return "no_op";
    case EditResult::Kind::kRejected:
      return "rejected";
    case EditResult::Kind::kExtractionFailed:
      return "extraction_failed";
    case EditResult::Kind::kGenerated:
      return "generated";
    case EditResult::Kind::kErased:
      return "erased";
    case EditResult::Kind::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

namespace {

std::string TripleText(const NamedTriple& triple) {
  return "(" + triple.subject + ", " + triple.relation + ", " + triple.object +
         ")";
}

}  // namespace

StatusOr<std::unique_ptr<OneEditSystem>> OneEditSystem::Create(
    KnowledgeGraph* kg, LanguageModel* model, const OneEditConfig& config) {
  if (kg == nullptr || model == nullptr) {
    return Status::InvalidArgument("OneEditSystem needs a KG and a model");
  }
  auto system = std::unique_ptr<OneEditSystem>(new OneEditSystem());
  system->kg_ = kg;
  system->model_ = model;
  system->config_ = config;

  ONEEDIT_ASSIGN_OR_RETURN(Interpreter interpreter,
                           Interpreter::Create(*kg, config.interpreter));
  system->interpreter_ =
      std::make_unique<Interpreter>(std::move(interpreter));
  system->controller_ = std::make_unique<Controller>(kg, config.controller);
  ONEEDIT_ASSIGN_OR_RETURN(std::unique_ptr<EditingMethod> method,
                           MakeEditingMethod(MethodKindName(config.method)));
  system->editor_ = std::make_unique<OneEditEditor>(model, std::move(method),
                                                    config.editor);
  return system;
}

std::string OneEditSystem::CurrentObject(const NamedTriple& triple) const {
  const auto relation = kg_->schema().Lookup(triple.relation);
  const auto subject = kg_->LookupEntity(triple.subject);
  if (!relation.ok() || !subject.ok()) return "";
  const auto current = kg_->ObjectOf(*subject, *relation);
  return current.has_value() ? kg_->EntityName(*current) : "";
}

EditResult OneEditSystem::FinishEdit(const NamedTriple& triple,
                                     const std::string& user, EditPlan plan,
                                     const EditOutcome& outcome,
                                     std::string previous_object) {
  EditReport report;
  report.plan = std::move(plan);
  report.outcome = outcome;

  // Cost-model accounting: interpreter pass + one primary edit (cache hits
  // and rollbacks ride the fast path).
  const size_t params = model_->config().params_million;
  const bool all_cached = outcome.edits_applied > 0 &&
                          outcome.cache_hits >= outcome.edits_applied;
  report.simulated_seconds =
      report.plan.no_op
          ? 0.0
          : CostModel::EditSeconds(MethodKindName(config_.method), params,
                                   all_cached) +
                0.05 * outcome.rollbacks_applied;

  EditResult result;
  result.kind =
      report.plan.no_op ? EditResult::Kind::kNoOp : EditResult::Kind::kEdited;
  if (report.plan.no_op) {
    statistics_.Add(Ticker::kEditNoOps);
    result.message = "Already known: " + TripleText(triple);
  } else {
    statistics_.Add(Ticker::kEditsAccepted);
    statistics_.Add(Ticker::kRollbacksApplied, outcome.rollbacks_applied);
    statistics_.Add(Ticker::kRollbacksSkipped, outcome.rollbacks_skipped);
    statistics_.Add(Ticker::kCacheHits, outcome.cache_hits);
    const uint64_t installs =
        outcome.edits_applied + outcome.augmentations_applied;
    const uint64_t writes =
        installs - std::min<uint64_t>(outcome.cache_hits, installs);
    statistics_.Add(Ticker::kModelWrites, writes);
    audit_log_.push_back(
        AuditRecord{user, triple, std::move(previous_object)});
    result.message = "Updated (" + triple.subject + ", " + triple.relation +
                     ") to " + triple.object + ".";
  }
  result.report = std::move(report);
  return result;
}

StatusOr<EditResult> OneEditSystem::EditTriple(const NamedTriple& triple,
                                               const std::string& user) {
  auto results = EditBatch({EditRequest::Edit(triple, user)});
  return std::move(results.front());
}

std::vector<StatusOr<EditResult>> OneEditSystem::EditBatch(
    const std::vector<EditRequest>& requests) {
  std::vector<StatusOr<EditResult>> results(requests.size());

  struct Staged {
    size_t index;
    EditPlan plan;
    std::string previous_object;
  };
  std::vector<Staged> staged;
  std::unordered_set<std::string> footprint;

  const auto flush = [&] {
    if (staged.empty()) return;
    std::vector<const EditPlan*> plans;
    plans.reserve(staged.size());
    for (const Staged& item : staged) plans.push_back(&item.plan);
    // "apply" covers the weight write itself (editor + method), the slice
    // ROME-style causal tracing attributes edit effect to.
    obs::Span apply_span("apply");
    StatusOr<std::vector<EditOutcome>> outcomes =
        editor_->ExecuteBatch(plans);
    if (!outcomes.ok()) {
      // Put the symbolic store back in sync with the model for every plan in
      // the failed batch (versions ascend, so the earliest covers all).
      (void)kg_->RollbackTo(staged.front().plan.kg_version_before);
      for (const Staged& item : staged) results[item.index] = outcomes.status();
    } else {
      for (size_t i = 0; i < staged.size(); ++i) {
        Staged& item = staged[i];
        results[item.index] = FinishEdit(
            requests[item.index].triple, requests[item.index].user,
            std::move(item.plan), (*outcomes)[i],
            std::move(item.previous_object));
      }
    }
    staged.clear();
    footprint.clear();
  };

  for (size_t i = 0; i < requests.size(); ++i) {
    const EditRequest& request = requests[i];
    if (request.op != EditRequest::Op::kEdit) {
      // Erases and utterances never coalesce; run them at their sequential
      // position.
      flush();
      results[i] = Apply(request);
      continue;
    }
    const NamedTriple& triple = request.triple;

    const Status screened = [&] {
      obs::Span guard_span("guard");
      return security_.Screen(triple);
    }();
    if (!screened.ok()) {
      if (screened.IsRejected()) {
        statistics_.Add(Ticker::kEditsRejected);
        EditResult rejected;
        rejected.kind = EditResult::Kind::kRejected;
        rejected.message = screened.message();
        results[i] = std::move(rejected);
      } else {
        results[i] = screened;
      }
      continue;
    }

    // Per-subject admission: an edit whose entity footprint overlaps an
    // already-staged request must observe that request's outcome, so it
    // splits the coalesced batch and serializes behind it. The object is
    // part of the footprint because reverse edits (Algorithm 2) write the
    // object's slot too.
    if (footprint.count(triple.subject) > 0 ||
        footprint.count(triple.object) > 0) {
      flush();
    }

    std::string previous_object = CurrentObject(triple);
    // "locate": the Controller resolving where (and whether) this edit
    // lands — conflict detection, KG planning, slot resolution.
    StatusOr<EditPlan> plan = [&] {
      obs::Span locate_span("locate");
      return controller_->Process(triple);
    }();
    if (!plan.ok()) {
      results[i] = plan.status();
      continue;
    }
    if (plan->no_op) {
      results[i] = FinishEdit(triple, request.user, std::move(*plan),
                              EditOutcome{}, std::move(previous_object));
      continue;
    }
    footprint.insert(triple.subject);
    footprint.insert(triple.object);
    staged.push_back(
        Staged{i, std::move(*plan), std::move(previous_object)});
  }
  flush();
  return results;
}

StatusOr<EditResult> OneEditSystem::EraseTriple(const NamedTriple& triple,
                                                const std::string& user) {
  StatusOr<EditPlan> planned = [&] {
    obs::Span locate_span("locate");
    return controller_->ProcessErase(triple);
  }();
  ONEEDIT_RETURN_IF_ERROR(planned.status());
  EditPlan plan = std::move(*planned);
  const StatusOr<EditOutcome> outcome = [&] {
    obs::Span apply_span("apply");
    return editor_->Execute(plan);
  }();
  if (!outcome.ok()) {
    ONEEDIT_RETURN_IF_ERROR(kg_->RollbackTo(plan.kg_version_before));
    return outcome.status();
  }

  EditReport report;
  report.plan = std::move(plan);
  report.outcome = *outcome;

  EditResult result;
  if (report.plan.no_op) {
    result.kind = EditResult::Kind::kNoOp;
    result.message =
        "Nothing to erase: " + TripleText(triple) + " is not recorded.";
  } else {
    statistics_.Add(Ticker::kErasures);
    statistics_.Add(Ticker::kRollbacksApplied, report.outcome.rollbacks_applied);
    AuditRecord record;
    record.user = user;
    record.request = triple;
    record.was_erase = true;
    audit_log_.push_back(std::move(record));
    report.simulated_seconds = 0.1;  // rollback/suppression fast path
    result.kind = EditResult::Kind::kErased;
    result.message = "Erased " + TripleText(triple) + ".";
  }
  result.report = std::move(report);
  return result;
}

StatusOr<EditResult> OneEditSystem::Apply(const EditRequest& request) {
  switch (request.op) {
    case EditRequest::Op::kEdit:
      return EditTriple(request.triple, request.user);
    case EditRequest::Op::kErase:
      return EraseTriple(request.triple, request.user);
    case EditRequest::Op::kUtterance:
      return HandleUtterance(request.utterance, request.user);
  }
  return Status::InvalidArgument("unknown EditRequest op");
}

StatusOr<EditResult> OneEditSystem::HandleUtterance(
    const std::string& utterance, const std::string& user) {
  EditResult response;
  statistics_.Add(Ticker::kUtterances);
  const Interpretation interpretation = [&] {
    obs::Span interpret_span("interpret");
    return interpreter_->Interpret(utterance);
  }();

  if (interpretation.intent == Intent::kGenerate) {
    statistics_.Add(Ticker::kGenerateResponses);
    // <generate>: forward to the LLM. If the question names a slot we can
    // parse, decode it; otherwise reply generically.
    response.kind = EditResult::Kind::kGenerated;
    const auto query = interpreter_->extractor().ExtractQuery(utterance);
    if (query.ok()) {
      const Decode decode = Ask(query->first, query->second);
      response.message = "The " + query->second + " of " + query->first +
                         " is " + decode.entity + ".";
    } else {
      response.message =
          "I'm a knowledge assistant; ask me about the entities I know or "
          "tell me about a change in the world.";
    }
    return response;
  }

  // <edit> / <erase> both need an extracted triple.
  if (!interpretation.triple.has_value()) {
    statistics_.Add(Ticker::kExtractionFailures);
    response.kind = EditResult::Kind::kExtractionFailed;
    response.message = "Could not extract a knowledge triple: " +
                       interpretation.extraction_status.ToString();
    return response;
  }

  if (interpretation.intent == Intent::kErase) {
    return EraseTriple(*interpretation.triple, user);
  }
  return EditTriple(*interpretation.triple, user);
}

Decode OneEditSystem::Ask(const std::string& subject,
                          const std::string& relation) const {
  QueryOptions options;
  options.key_noise = model_->config().reliability_noise;
  options.probe_seed = Rng::HashString("ask:" + subject + "|" + relation);
  return model_->Query(subject, relation, options);
}

Decode SystemReadView::Ask(const std::string& subject,
                           const std::string& relation) const {
  // Keep the noise and probe seeding identical to OneEditSystem::Ask so a
  // snapshot read and a live read of the same state decode identically.
  QueryOptions options;
  options.key_noise = model.config().reliability_noise;
  options.probe_seed = Rng::HashString("ask:" + subject + "|" + relation);
  return model.Query(subject, relation, options);
}

SystemReadView OneEditSystem::SnapshotReadView() const {
  SystemReadView view;
  view.model = model_->SnapshotReadView();
  view.kg = kg_->SnapshotView();
  view.kg_version = kg_->version();
  view.cache_generation = editor_->cache().generation();
  return view;
}

OneEditSystem::BatchTxn OneEditSystem::BeginBatchTxn() {
  BatchTxn txn;
  txn.weights = model_->SnapshotWeights();
  txn.kg_version = kg_->version();
  txn.audit_log_size = audit_log_.size();
  txn.active = true;
  editor_->BeginTxn();
  return txn;
}

void OneEditSystem::CommitBatchTxn(BatchTxn* txn) {
  if (txn == nullptr || !txn->active) return;
  editor_->CommitTxn();
  txn->active = false;
}

Status OneEditSystem::AbortBatchTxn(BatchTxn* txn) {
  if (txn == nullptr || !txn->active) {
    return Status::FailedPrecondition("no active batch transaction");
  }
  editor_->AbortTxn();
  model_->RestoreWeights(txn->weights);
  ONEEDIT_RETURN_IF_ERROR(kg_->RollbackTo(txn->kg_version));
  audit_log_.resize(txn->audit_log_size);
  txn->active = false;
  return Status::OK();
}

Status OneEditSystem::RollbackUserEdits(const std::string& user) {
  statistics_.Add(Ticker::kUserRollbacks);
  // Snapshot the user's records first — restoring a slot goes through
  // EditTriple, which appends to the audit log we would otherwise be
  // iterating.
  std::vector<AuditRecord> to_undo;
  for (auto it = audit_log_.rbegin(); it != audit_log_.rend(); ++it) {
    if (it->user == user) to_undo.push_back(*it);
  }
  // Administrative restores must land; a guard-blocked restore is an error
  // here, not a value.
  const auto restore_edit = [&](const NamedTriple& triple) -> Status {
    ONEEDIT_ASSIGN_OR_RETURN(const EditResult result,
                             EditTriple(triple, "admin"));
    if (result.rejected()) return Status::Rejected(result.message);
    return Status::OK();
  };
  for (const AuditRecord& record : to_undo) {
    const NamedTriple& applied = record.request;
    if (record.was_erase) {
      // Undo of an erase: re-assert the retracted knowledge.
      ONEEDIT_RETURN_IF_ERROR(restore_edit(applied));
    } else if (!record.previous_object.empty()) {
      const NamedTriple restore{applied.subject, applied.relation,
                                record.previous_object};
      ONEEDIT_RETURN_IF_ERROR(restore_edit(restore));
    } else {
      // The slot did not exist before: remove it from the KG and subtract
      // the cached θ from the model.
      const auto resolved = kg_->Resolve(applied);
      if (resolved.ok() && kg_->Contains(*resolved)) {
        ONEEDIT_RETURN_IF_ERROR(kg_->Remove(*resolved));
      }
      if (const EditDelta* cached = editor_->cache().Get(applied)) {
        ONEEDIT_RETURN_IF_ERROR(
            editor_->method().Rollback(model_, *cached));
        ONEEDIT_RETURN_IF_ERROR(editor_->cache().Erase(applied));
      }
    }
  }
  // Drop the user's records (and any admin restores they triggered stay).
  std::vector<AuditRecord> kept;
  for (AuditRecord& record : audit_log_) {
    if (record.user != user) kept.push_back(std::move(record));
  }
  audit_log_ = std::move(kept);
  return Status::OK();
}

}  // namespace oneedit
