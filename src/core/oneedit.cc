#include "core/oneedit.h"

#include <algorithm>

#include "util/rng.h"

namespace oneedit {

StatusOr<std::unique_ptr<OneEditSystem>> OneEditSystem::Create(
    KnowledgeGraph* kg, LanguageModel* model, const OneEditConfig& config) {
  if (kg == nullptr || model == nullptr) {
    return Status::InvalidArgument("OneEditSystem needs a KG and a model");
  }
  auto system = std::unique_ptr<OneEditSystem>(new OneEditSystem());
  system->kg_ = kg;
  system->model_ = model;
  system->config_ = config;

  ONEEDIT_ASSIGN_OR_RETURN(Interpreter interpreter,
                           Interpreter::Create(*kg, config.interpreter));
  system->interpreter_ =
      std::make_unique<Interpreter>(std::move(interpreter));
  system->controller_ = std::make_unique<Controller>(kg, config.controller);
  ONEEDIT_ASSIGN_OR_RETURN(std::unique_ptr<EditingMethod> method,
                           MakeEditingMethod(config.method));
  system->editor_ = std::make_unique<OneEditEditor>(model, std::move(method),
                                                    config.editor);
  return system;
}

StatusOr<EditReport> OneEditSystem::EditTriple(const NamedTriple& triple,
                                               const std::string& user) {
  const Status screened = security_.Screen(triple);
  if (!screened.ok()) {
    if (screened.IsRejected()) statistics_.Add(Ticker::kEditsRejected);
    return screened;
  }

  // Capture the slot's current object for administrative undo.
  std::string previous_object;
  {
    const auto relation = kg_->schema().Lookup(triple.relation);
    const auto subject = kg_->LookupEntity(triple.subject);
    if (relation.ok() && subject.ok()) {
      const auto current = kg_->ObjectOf(*subject, *relation);
      if (current.has_value()) previous_object = kg_->EntityName(*current);
    }
  }

  ONEEDIT_ASSIGN_OR_RETURN(EditPlan plan, controller_->Process(triple));
  const StatusOr<EditOutcome> outcome = editor_->Execute(plan);
  if (!outcome.ok()) {
    // Put the symbolic store back in sync with the (unchanged) model.
    ONEEDIT_RETURN_IF_ERROR(kg_->RollbackTo(plan.kg_version_before));
    return outcome.status();
  }

  EditReport report;
  report.plan = std::move(plan);
  report.outcome = *outcome;

  // Cost-model accounting: interpreter pass + one primary edit (cache hits
  // and rollbacks ride the fast path).
  const size_t params = model_->config().params_million;
  const bool all_cached = report.outcome.edits_applied > 0 &&
                          report.outcome.cache_hits >=
                              report.outcome.edits_applied;
  report.simulated_seconds =
      report.plan.no_op
          ? 0.0
          : CostModel::EditSeconds(config_.method, params, all_cached) +
                0.05 * report.outcome.rollbacks_applied;

  if (report.plan.no_op) {
    statistics_.Add(Ticker::kEditNoOps);
  } else {
    statistics_.Add(Ticker::kEditsAccepted);
    statistics_.Add(Ticker::kRollbacksApplied,
                    report.outcome.rollbacks_applied);
    statistics_.Add(Ticker::kRollbacksSkipped,
                    report.outcome.rollbacks_skipped);
    statistics_.Add(Ticker::kCacheHits, report.outcome.cache_hits);
    const uint64_t writes = report.outcome.edits_applied +
                            report.outcome.augmentations_applied -
                            std::min<uint64_t>(report.outcome.cache_hits,
                                               report.outcome.edits_applied +
                                                   report.outcome
                                                       .augmentations_applied);
    statistics_.Add(Ticker::kModelWrites, writes);
    audit_log_.push_back(AuditRecord{user, triple, previous_object});
  }
  return report;
}

StatusOr<EditReport> OneEditSystem::EraseTriple(const NamedTriple& triple,
                                                const std::string& user) {
  ONEEDIT_ASSIGN_OR_RETURN(EditPlan plan, controller_->ProcessErase(triple));
  const StatusOr<EditOutcome> outcome = editor_->Execute(plan);
  if (!outcome.ok()) {
    ONEEDIT_RETURN_IF_ERROR(kg_->RollbackTo(plan.kg_version_before));
    return outcome.status();
  }

  EditReport report;
  report.plan = std::move(plan);
  report.outcome = *outcome;
  if (!report.plan.no_op) {
    statistics_.Add(Ticker::kErasures);
    statistics_.Add(Ticker::kRollbacksApplied,
                    report.outcome.rollbacks_applied);
    AuditRecord record;
    record.user = user;
    record.request = triple;
    record.was_erase = true;
    audit_log_.push_back(std::move(record));
    report.simulated_seconds = 0.1;  // rollback/suppression fast path
  }
  return report;
}

StatusOr<UtteranceResponse> OneEditSystem::HandleUtterance(
    const std::string& utterance, const std::string& user) {
  UtteranceResponse response;
  statistics_.Add(Ticker::kUtterances);
  const Interpretation interpretation = interpreter_->Interpret(utterance);

  if (interpretation.intent == Intent::kGenerate) {
    statistics_.Add(Ticker::kGenerateResponses);
    // <generate>: forward to the LLM. If the question names a slot we can
    // parse, decode it; otherwise reply generically.
    response.kind = UtteranceResponse::Kind::kGenerated;
    const auto query = interpreter_->extractor().ExtractQuery(utterance);
    if (query.ok()) {
      const Decode decode = Ask(query->first, query->second);
      response.message = "The " + query->second + " of " + query->first +
                         " is " + decode.entity + ".";
    } else {
      response.message =
          "I'm a knowledge assistant; ask me about the entities I know or "
          "tell me about a change in the world.";
    }
    return response;
  }

  if (interpretation.intent == Intent::kErase) {
    if (!interpretation.triple.has_value()) {
      statistics_.Add(Ticker::kExtractionFailures);
      response.kind = UtteranceResponse::Kind::kExtractionFailed;
      response.message = "Could not extract a knowledge triple: " +
                         interpretation.extraction_status.ToString();
      return response;
    }
    ONEEDIT_ASSIGN_OR_RETURN(EditReport report,
                             EraseTriple(*interpretation.triple, user));
    if (report.plan.no_op) {
      response.kind = UtteranceResponse::Kind::kNoOp;
      response.message = "Nothing to erase: (" +
                         interpretation.triple->subject + ", " +
                         interpretation.triple->relation + ", " +
                         interpretation.triple->object + ") is not recorded.";
    } else {
      response.kind = UtteranceResponse::Kind::kErased;
      response.message = "Erased (" + interpretation.triple->subject + ", " +
                         interpretation.triple->relation + ", " +
                         interpretation.triple->object + ").";
    }
    response.report = std::move(report);
    return response;
  }

  // <edit>
  if (!interpretation.triple.has_value()) {
    statistics_.Add(Ticker::kExtractionFailures);
    response.kind = UtteranceResponse::Kind::kExtractionFailed;
    response.message = "Could not extract a knowledge triple: " +
                       interpretation.extraction_status.ToString();
    return response;
  }
  StatusOr<EditReport> report = EditTriple(*interpretation.triple, user);
  if (!report.ok()) {
    if (report.status().IsRejected()) {
      response.kind = UtteranceResponse::Kind::kRejected;
      response.message = report.status().message();
      return response;
    }
    return report.status();
  }
  if (report->plan.no_op) {
    response.kind = UtteranceResponse::Kind::kNoOp;
    response.message = "Already known: (" + interpretation.triple->subject +
                       ", " + interpretation.triple->relation + ", " +
                       interpretation.triple->object + ")";
  } else {
    response.kind = UtteranceResponse::Kind::kEdited;
    response.message = "Updated (" + interpretation.triple->subject + ", " +
                       interpretation.triple->relation + ") to " +
                       interpretation.triple->object + ".";
  }
  response.report = std::move(report).value();
  return response;
}

Decode OneEditSystem::Ask(const std::string& subject,
                          const std::string& relation) const {
  QueryOptions options;
  options.key_noise = model_->config().reliability_noise;
  options.probe_seed = Rng::HashString("ask:" + subject + "|" + relation);
  return model_->Query(subject, relation, options);
}

Status OneEditSystem::RollbackUserEdits(const std::string& user) {
  statistics_.Add(Ticker::kUserRollbacks);
  // Snapshot the user's records first — restoring a slot goes through
  // EditTriple, which appends to the audit log we would otherwise be
  // iterating.
  std::vector<AuditRecord> to_undo;
  for (auto it = audit_log_.rbegin(); it != audit_log_.rend(); ++it) {
    if (it->user == user) to_undo.push_back(*it);
  }
  for (const AuditRecord& record : to_undo) {
    const NamedTriple& applied = record.request;
    if (record.was_erase) {
      // Undo of an erase: re-assert the retracted knowledge.
      ONEEDIT_RETURN_IF_ERROR(EditTriple(applied, "admin").status());
    } else if (!record.previous_object.empty()) {
      const NamedTriple restore{applied.subject, applied.relation,
                                record.previous_object};
      ONEEDIT_RETURN_IF_ERROR(EditTriple(restore, "admin").status());
    } else {
      // The slot did not exist before: remove it from the KG and subtract
      // the cached θ from the model.
      const auto resolved = kg_->Resolve(applied);
      if (resolved.ok() && kg_->Contains(*resolved)) {
        ONEEDIT_RETURN_IF_ERROR(kg_->Remove(*resolved));
      }
      if (const EditDelta* cached = editor_->cache().Get(applied)) {
        ONEEDIT_RETURN_IF_ERROR(
            editor_->method().Rollback(model_, *cached));
        ONEEDIT_RETURN_IF_ERROR(editor_->cache().Erase(applied));
      }
    }
  }
  // Drop the user's records (and any admin restores they triggered stay).
  std::vector<AuditRecord> kept;
  for (AuditRecord& record : audit_log_) {
    if (record.user != user) kept.push_back(std::move(record));
  }
  audit_log_ = std::move(kept);
  return Status::OK();
}

}  // namespace oneedit
