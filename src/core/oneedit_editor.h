#ifndef ONEEDIT_CORE_ONEEDIT_EDITOR_H_
#define ONEEDIT_CORE_ONEEDIT_EDITOR_H_

#include <memory>
#include <unordered_set>
#include <string>
#include <vector>

#include "core/controller.h"
#include "editing/edit_cache.h"
#include "editing/editor.h"
#include "model/language_model.h"
#include "util/statusor.h"

namespace oneedit {

/// Editor knobs (§3.5).
struct EditorConfig {
  /// Store θ after every edit and reuse it for rollbacks / re-edits
  /// (the space-for-time strategy; ablated in the Table 3 bench).
  bool use_cache = true;
};

/// What the Editor did for one plan — feeds the cost model and Table 3.
struct EditOutcome {
  size_t rollbacks_applied = 0;
  /// Rollback targets with no cached θ (knowledge that was only ever
  /// pretrained, never edited) — nothing to subtract.
  size_t rollbacks_skipped = 0;
  size_t edits_applied = 0;
  /// Edits satisfied by re-applying a cached θ instead of recomputing.
  size_t cache_hits = 0;
  size_t augmentations_applied = 0;
  /// Pretrained slots zeroed by the erase path.
  size_t suppressions_applied = 0;
};

/// The Editor (§3.5): executes a Controller plan against the model through
/// one EditingMethod, maintaining the edit cache.
///
/// Order of operations: rollbacks (cache lookups, exact subtraction) first,
/// then 𝒯_e and 𝒯_a as one batch (so MEMIT's batch behaviour — dilution and
/// crosstalk growing with n — is exercised exactly as Figure 3 expects).
class OneEditEditor {
 public:
  OneEditEditor(LanguageModel* model, std::unique_ptr<EditingMethod> method,
                const EditorConfig& config = {});

  StatusOr<EditOutcome> Execute(const EditPlan& plan);

  /// Executes several plans, coalescing every triple they stage for a fresh
  /// model write into ONE EditingMethod::ApplyBatch call (per-plan rollbacks,
  /// suppressions and cache fast paths still run in plan order). Plans must
  /// have disjoint entity footprints — OneEditSystem::EditBatch enforces
  /// this; triples shared across plans (overlapping augmentations) are
  /// installed once and count as cache hits for the later plan, matching
  /// sequential execution. Returns one outcome per plan, same order.
  StatusOr<std::vector<EditOutcome>> ExecuteBatch(
      const std::vector<const EditPlan*>& plans);

  EditingMethod& method() { return *method_; }
  EditCache& cache() { return cache_; }
  const EditCache& cache() const { return cache_; }
  const EditorConfig& config() const { return config_; }

  /// Clears method-local state and the cache (experiment-harness reset; the
  /// caller restores the model weights separately).
  void ResetState();

  // --- Transactional batch support ------------------------------------------
  //
  // BeginTxn snapshots editor-local state (the method's live-edit ledger and
  // adaptor state, the live-triple set) and journals cache mutations;
  // AbortTxn restores all of it exactly, CommitTxn keeps it. The model's
  // weights are NOT covered — the caller (OneEditSystem::BeginBatchTxn)
  // snapshots and restores those, because floating-point delta subtraction
  // is not byte-exact. Transactions do not nest.

  void BeginTxn();
  void CommitTxn();
  void AbortTxn();
  bool in_txn() const { return txn_ != nullptr; }

  /// True if `triple` is currently installed in the model by this editor.
  bool IsLive(const NamedTriple& triple) const {
    return live_.count(LiveKey(triple)) > 0;
  }

 private:
  static std::string LiveKey(const NamedTriple& triple) {
    return triple.subject + "\x1f" + triple.relation + "\x1f" + triple.object;
  }

  LanguageModel* model_;
  std::unique_ptr<EditingMethod> method_;
  EditorConfig config_;
  EditCache cache_;
  /// Triples applied and not rolled back — re-requesting one is a no-op
  /// (prevents double-installing cached deltas across multi-user plans).
  std::unordered_set<std::string> live_;

  struct Txn {
    EditingMethod::MethodState method_state;
    std::unordered_set<std::string> live;
    UndoJournal cache_journal;
  };
  std::unique_ptr<Txn> txn_;
};

}  // namespace oneedit

#endif  // ONEEDIT_CORE_ONEEDIT_EDITOR_H_
