#ifndef ONEEDIT_SHARD_SHARD_ROUTER_H_
#define ONEEDIT_SHARD_SHARD_ROUTER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/oneedit.h"
#include "model/vocab.h"
#include "obs/metrics_registry.h"
#include "obs/metrics_server.h"
#include "serving/edit_service.h"
#include "util/rendezvous_hash.h"

namespace oneedit {
namespace shard {

/// One shard behind the router: an independent EditService (its own writer,
/// WAL, checkpoint directory and optional replicas). Non-owning — the shards
/// must outlive the router.
struct ShardSpec {
  /// Stable shard id — the rendezvous-hash node id. Renaming a shard moves
  /// its whole keyspace, so treat the name as part of the data layout.
  std::string name;
  serving::EditService* service = nullptr;
  /// The shard's durability manager (the same one its service uses). Null
  /// for an in-memory shard, which then cannot participate in cross-shard
  /// two-phase commit (such edits fall back to subject-shard-only routing).
  durability::DurabilityManager* durability = nullptr;
  /// Rendezvous weight: a shard with weight 2 owns ~twice the keyspace.
  double weight = 1.0;
};

/// Token-bucket write quota for one tenant, applied at router admission.
struct TenantQuota {
  /// Sustained edit admissions per second; 0 disables the quota.
  double edits_per_sec = 0.0;
  /// Bucket capacity (instantaneous burst); clamped to >= 1 when limited.
  double burst = 1.0;
};

struct ShardRouterOptions {
  /// Alias canonicalization for routing keys ("Mrs. Smith" and "Jane Smith"
  /// must land on the same shard) and the entity set that decides whether
  /// an edit's object is routable (cross-shard) or a literal. Optional;
  /// without it routing keys are the raw names and no edit is cross-shard.
  const Vocab* vocab = nullptr;
  /// Tenant assumed when a call does not name one.
  std::string default_tenant = "default";
  /// Allow cross-shard two-phase commit (subject and object on different
  /// shards). When false such edits route by subject only — the object
  /// shard never learns the reverse reference.
  bool cross_shard_edits = true;
  /// Start a loopback HTTP listener owned by the router: GET /metrics,
  /// /metrics.json, /health, /placement.
  bool expose_metrics = false;
  /// 0 picks an ephemeral port (read back via metrics_server()->port()).
  uint16_t metrics_port = 0;
};

/// One scatter-gather answer; `shard` is the shard that served it.
struct ScatterAnswer {
  std::string subject;
  std::string relation;
  size_t shard = 0;
  StatusOr<Decode> decode = Status::Internal("unanswered");
};

/// What RecoverInDoubt did across the fleet (docs/sharding.md).
struct InDoubtReport {
  /// Prepared halves whose transaction had a retained commit decision
  /// somewhere: re-applied through the normal submit path.
  size_t committed_applied = 0;
  /// Prepared halves with no commit decision anywhere: settled with a local
  /// abort marker (presumed abort).
  size_t presumed_aborts = 0;
  /// Retained commit decisions whose every half is now applied: forgotten.
  size_t decisions_forgotten = 0;
};

/// ShardRouter: horizontal scale-out over N independent EditService shards
/// (docs/sharding.md).
///
///  - Placement is weighted rendezvous hashing over tenant-scoped routing
///    keys (`tenant \x1f canonical(entity)`), so adding a shard moves an
///    expected 1/N of the keyspace and nothing else.
///  - Single-shard requests (the common case) are routed and forwarded —
///    the router adds one hash and two counter ticks to the hot path.
///  - An edit whose subject and object live on different shards runs
///    cross-shard two-phase commit: prepare markers fsynced on both
///    participants, the commit decision journaled on the coordinator (the
///    subject shard), then both txn-tagged halves applied through each
///    shard's normal writer. RecoverInDoubt resolves transactions a crash
///    left between phases.
///  - Tenants share the fleet: routing keys are tenant-prefixed (two
///    tenants' "Paris" usually land on different shards), audit identities
///    are tenant-scoped (per-tenant rollback), and per-tenant token buckets
///    shed write floods at admission as typed kRejected results.
///
/// Thread-safe: Submit/reads may be called from any thread; the tenant
/// buckets and counters take short internal locks. Topology is fixed at
/// construction.
class ShardRouter {
 public:
  ShardRouter(std::vector<ShardSpec> shards,
              const ShardRouterOptions& options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  size_t shard_count() const { return shards_.size(); }
  const ShardSpec& shard(size_t index) const { return shards_[index]; }
  const ShardRouterOptions& options() const { return options_; }

  /// Index of the shard owning `entity` for `tenant` (default tenant when
  /// empty). Deterministic: a pure function of (tenant, canonical entity,
  /// shard names/weights).
  size_t ShardFor(const std::string& entity,
                  const std::string& tenant = "") const;

  // --- Writes ----------------------------------------------------------------

  /// Routes `request` to its subject's shard (utterances hash on the
  /// utterance text — see docs/sharding.md for the limitation) and submits
  /// it there. The tenant is folded into the audit identity
  /// (`tenant \x1f user`), so rollback and quota stay tenant-scoped. A
  /// tenant over its token-bucket quota resolves kRejected immediately
  /// (kTenantQuotaRejects). An edit whose object lives on another shard
  /// runs two-phase commit inline and resolves once both halves applied.
  std::future<StatusOr<EditResult>> Submit(EditRequest request,
                                           const std::string& tenant = "");

  StatusOr<EditResult> SubmitAndWait(EditRequest request,
                                     const std::string& tenant = "") {
    return Submit(std::move(request), tenant).get();
  }

  // --- Reads -----------------------------------------------------------------

  /// Pins a snapshot on the shard owning `subject`. All reads for entities
  /// co-located on that shard may share the handle.
  StatusOr<serving::Snapshot> GetSnapshot(
      const std::string& subject, const std::string& tenant = "",
      const serving::ReadOptions& read_options = {}) const;

  /// One-shot read: route, pin, ask.
  StatusOr<Decode> Ask(const std::string& subject, const std::string& relation,
                       const std::string& tenant = "") const;

  /// Scatter-gather: groups (subject, relation) queries by owning shard,
  /// pins ONE snapshot per touched shard (each shard's answers are mutually
  /// consistent; cross-shard answers may straddle edits, as documented),
  /// and answers in input order.
  std::vector<ScatterAnswer> ScatterAsk(
      const std::vector<std::pair<std::string, std::string>>& queries,
      const std::string& tenant = "") const;

  // --- Tenant administration -------------------------------------------------

  /// Installs (or, with a zero rate, removes) `tenant`'s write quota.
  void SetTenantQuota(const std::string& tenant, TenantQuota quota);

  /// Reverts every accepted edit by `tenant`'s `user` across the fleet —
  /// each shard only touches its own audit log, so the revert is naturally
  /// scoped to the shards that hold the tenant's entities.
  Status RollbackTenant(const std::string& tenant, const std::string& user);

  // --- Cross-shard recovery --------------------------------------------------

  /// Resolves every in-doubt transaction a crash left behind: a prepared
  /// half whose transaction has a retained commit decision on ANY shard is
  /// re-applied; one with no decision anywhere is settled with a local
  /// abort (presumed abort); fully-applied decisions are forgotten.
  /// Idempotent — a second pass finds nothing and journals nothing.
  StatusOr<InDoubtReport> RecoverInDoubt();

  // --- Placement / observability ---------------------------------------------

  /// JSON placement hints joining CostProfiler::HotEntities(k) with the
  /// routing map (schema in docs/observability.md): which shard owns each
  /// hot entity and what it costs — the operator's rebalancing signal.
  std::string PlacementHints(size_t k = 16) const;

  /// Aggregate + per-shard health as JSON (served as GET /health).
  std::string HealthJson() const;

  /// Registers the router surface on `registry`: per-shard labeled counter
  /// families (shard_requests, shard_edits), shard_health labeled gauges,
  /// cross_shard_txns / cross_shard_aborts counters, per-tenant
  /// tenant_quota_rejects, and the placement info blob.
  void ExportMetrics(obs::MetricsRegistry* registry);

  /// The owned metrics listener (null unless options.expose_metrics and the
  /// bind succeeded).
  const obs::MetricsServer* metrics_server() const {
    return metrics_server_.get();
  }

  // --- Counters (tests / scrapes) --------------------------------------------

  uint64_t shard_requests(size_t shard) const {
    return requests_[shard]->load(std::memory_order_relaxed);
  }
  uint64_t shard_edits(size_t shard) const {
    return edits_[shard]->load(std::memory_order_relaxed);
  }
  uint64_t cross_shard_txns() const {
    return cross_shard_txns_.load(std::memory_order_relaxed);
  }
  uint64_t cross_shard_aborts() const {
    return cross_shard_aborts_.load(std::memory_order_relaxed);
  }
  uint64_t tenant_quota_rejects(const std::string& tenant) const;

 private:
  struct TenantBucket {
    TenantQuota quota;
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
  };

  /// `tenant \x1f canonical(entity)` — the rendezvous key. The separator
  /// cannot appear in entity names, so tenants can never alias each other.
  std::string RoutingKey(const std::string& entity,
                         const std::string& tenant) const;
  const std::string& TenantOrDefault(const std::string& tenant) const {
    return tenant.empty() ? options_.default_tenant : tenant;
  }
  static std::string ScopedUser(const std::string& tenant,
                                const std::string& user) {
    return tenant + '\x1f' + user;
  }

  /// The entity whose shard owns `request` (subject for edits/erases, the
  /// utterance text as a pseudo-entity for utterances).
  static const std::string& RoutingEntity(const EditRequest& request);

  /// True when the edit's object is a routable entity (in the vocab's
  /// decode set) rather than a literal.
  bool ObjectRoutable(const std::string& object) const;

  /// Token-bucket admission; false = over quota (caller rejects).
  bool AdmitTenant(const std::string& tenant);

  /// The 2PC coordinator path, run inline in the caller's thread.
  StatusOr<EditResult> SubmitCrossShard(EditRequest request, size_t subject_shard,
                                        size_t object_shard);

  obs::MetricsServer::Response ServeHttp(const std::string& path);

  std::vector<ShardSpec> shards_;
  ShardRouterOptions options_;
  util::RendezvousMap placement_;
  std::unordered_set<std::string> entity_set_;

  /// Fleet-unique transaction ids, seeded past every id already durable in
  /// any shard's journal so a restart never reuses one.
  std::atomic<uint64_t> next_txn_id_{1};

  /// Per-shard traffic counters (unique_ptr: atomics are not movable).
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> requests_;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> edits_;
  std::atomic<uint64_t> cross_shard_txns_{0};
  std::atomic<uint64_t> cross_shard_aborts_{0};

  mutable std::mutex tenant_mutex_;
  std::map<std::string, TenantBucket> tenant_buckets_;
  std::map<std::string, uint64_t> tenant_rejects_;

  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::MetricsServer> metrics_server_;
};

}  // namespace shard
}  // namespace oneedit

#endif  // ONEEDIT_SHARD_SHARD_ROUTER_H_
