#include "shard/shard_router.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "obs/profiler.h"
#include "util/logging.h"

namespace oneedit {
namespace shard {
namespace {

/// A ready future carrying one result — the router's immediate-resolution
/// path (quota shedding, cross-shard transactions run inline).
std::future<StatusOr<EditResult>> Ready(StatusOr<EditResult> result) {
  std::promise<StatusOr<EditResult>> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

EditResult Rejection(std::string message) {
  EditResult result;
  result.kind = EditResult::Kind::kRejected;
  result.message = std::move(message);
  return result;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

ShardRouter::ShardRouter(std::vector<ShardSpec> shards,
                         const ShardRouterOptions& options)
    : shards_(std::move(shards)), options_(options) {
  for (const ShardSpec& shard : shards_) {
    placement_.AddNode(shard.name, shard.weight);
    requests_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    edits_.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  if (options_.vocab != nullptr) {
    entity_set_.insert(options_.vocab->entities.begin(),
                       options_.vocab->entities.end());
  }
  // Seed the transaction-id counter past every id already durable anywhere,
  // so a restarted router never reuses an id a journal still remembers.
  uint64_t max_seen = 0;
  for (const ShardSpec& shard : shards_) {
    if (shard.durability != nullptr) {
      max_seen = std::max(max_seen, shard.durability->max_txn_id());
    }
  }
  next_txn_id_.store(max_seen + 1, std::memory_order_relaxed);

  if (options_.expose_metrics) {
    registry_ = std::make_unique<obs::MetricsRegistry>();
    ExportMetrics(registry_.get());
    auto server = obs::MetricsServer::Start(
        options_.metrics_port,
        [this](const std::string& path) { return ServeHttp(path); });
    if (server.ok()) {
      metrics_server_ = std::move(*server);
    } else {
      ONEEDIT_LOG(Warning) << "shard router metrics listener failed to start: "
                           << server.status().ToString();
    }
  }
}

ShardRouter::~ShardRouter() {
  // The server's handler captures `this`; stop it before anything else dies.
  metrics_server_.reset();
}

std::string ShardRouter::RoutingKey(const std::string& entity,
                                    const std::string& tenant) const {
  const std::string& canonical =
      options_.vocab != nullptr ? options_.vocab->Canonical(entity) : entity;
  return tenant + '\x1f' + canonical;
}

size_t ShardRouter::ShardFor(const std::string& entity,
                             const std::string& tenant) const {
  return placement_.IndexFor(RoutingKey(entity, TenantOrDefault(tenant)));
}

const std::string& ShardRouter::RoutingEntity(const EditRequest& request) {
  // Utterances hash on their text: the subject is unknown until the owning
  // shard's Interpreter runs (docs/sharding.md documents the limitation).
  return request.op == EditRequest::Op::kUtterance ? request.utterance
                                                   : request.triple.subject;
}

bool ShardRouter::ObjectRoutable(const std::string& object) const {
  if (object.empty() || options_.vocab == nullptr) return false;
  return entity_set_.count(options_.vocab->Canonical(object)) > 0;
}

bool ShardRouter::AdmitTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(tenant_mutex_);
  auto it = tenant_buckets_.find(tenant);
  if (it == tenant_buckets_.end()) return true;
  TenantBucket& bucket = it->second;
  const auto now = std::chrono::steady_clock::now();
  const double capacity = std::max(bucket.quota.burst, 1.0);
  const double elapsed =
      std::chrono::duration<double>(now - bucket.last_refill).count();
  bucket.tokens = std::min(
      capacity, bucket.tokens + elapsed * bucket.quota.edits_per_sec);
  bucket.last_refill = now;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  ++tenant_rejects_[tenant];
  return false;
}

void ShardRouter::SetTenantQuota(const std::string& tenant,
                                 TenantQuota quota) {
  std::lock_guard<std::mutex> lock(tenant_mutex_);
  if (quota.edits_per_sec <= 0.0) {
    tenant_buckets_.erase(tenant);
    return;
  }
  TenantBucket bucket;
  bucket.quota = quota;
  bucket.tokens = std::max(quota.burst, 1.0);
  bucket.last_refill = std::chrono::steady_clock::now();
  tenant_buckets_[tenant] = bucket;
  // Seed the reject counter so the labeled family has a member for every
  // quota-limited tenant from the moment the quota exists.
  tenant_rejects_.emplace(tenant, 0);
}

uint64_t ShardRouter::tenant_quota_rejects(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(tenant_mutex_);
  auto it = tenant_rejects_.find(tenant);
  return it == tenant_rejects_.end() ? 0 : it->second;
}

std::future<StatusOr<EditResult>> ShardRouter::Submit(
    EditRequest request, const std::string& tenant) {
  const std::string& resolved = TenantOrDefault(tenant);
  const std::string& entity = RoutingEntity(request);
  const size_t subject_shard = placement_.IndexFor(RoutingKey(entity, resolved));
  if (!AdmitTenant(resolved)) {
    shards_[subject_shard].service->statistics().Add(
        Ticker::kTenantQuotaRejects);
    return Ready(Rejection("tenant '" + resolved +
                           "' is over its edit quota (load shed)"));
  }
  // Tenant-scoped audit identity: rollback and the audit log see
  // "tenant \x1f user", so tenants can never touch each other's edits.
  request.user = ScopedUser(resolved, request.user);
  edits_[subject_shard]->fetch_add(1, std::memory_order_relaxed);

  if (request.op == EditRequest::Op::kEdit && options_.cross_shard_edits &&
      ObjectRoutable(request.triple.object) &&
      !options_.vocab->InverseOf(request.triple.relation).empty()) {
    const size_t object_shard =
        placement_.IndexFor(RoutingKey(request.triple.object, resolved));
    if (object_shard != subject_shard &&
        shards_[subject_shard].durability != nullptr &&
        shards_[object_shard].durability != nullptr) {
      return Ready(
          SubmitCrossShard(std::move(request), subject_shard, object_shard));
    }
  }
  return shards_[subject_shard].service->Submit(std::move(request));
}

StatusOr<EditResult> ShardRouter::SubmitCrossShard(EditRequest request,
                                                   size_t subject_shard,
                                                   size_t object_shard) {
  serving::EditService& coordinator = *shards_[subject_shard].service;
  serving::EditService& participant = *shards_[object_shard].service;
  const uint64_t txn = next_txn_id_.fetch_add(1, std::memory_order_relaxed);

  EditRequest subject_half = request;
  subject_half.txn_id = txn;
  // The object shard's half: the INVERSE slot under the object ("governs"
  // for "governor"), so the shard that owns the object entity serves the
  // reverse association exactly — the cross-shard analogue of the
  // bidirectional-generalization leakage a single-shard edit gets for free.
  // (The relation vocabulary is closed; only reversible relations reach
  // this path — Submit checked InverseOf already.)
  EditRequest object_half = EditRequest::Edit(
      {request.triple.object,
       options_.vocab->InverseOf(request.triple.relation),
       request.triple.subject},
      request.user);
  object_half.txn_id = txn;

  // Phase 1: fsynced prepares, coordinator first. A refusal before any
  // marker exists needs no abort; after the coordinator prepared, its
  // prepare must be settled with a journaled abort so recovery does not
  // find a dangling promise.
  Status prepared = coordinator.Prepare2pc(
      txn, static_cast<uint32_t>(subject_shard), subject_half);
  if (!prepared.ok()) {
    cross_shard_aborts_.fetch_add(1, std::memory_order_relaxed);
    coordinator.statistics().Add(Ticker::kCrossShardAborts);
    return Rejection("cross-shard prepare refused by coordinator: " +
                     prepared.ToString());
  }
  prepared = participant.Prepare2pc(txn, static_cast<uint32_t>(subject_shard),
                                    object_half);
  if (!prepared.ok()) {
    coordinator.Decide2pc(txn, /*commit=*/false);
    cross_shard_aborts_.fetch_add(1, std::memory_order_relaxed);
    coordinator.statistics().Add(Ticker::kCrossShardAborts);
    return Rejection("cross-shard prepare refused by participant: " +
                     prepared.ToString());
  }

  // Phase 2: the commit point. A failed decision write must NOT be
  // contradicted with an abort — the decision may have reached disk before
  // the error — so the transaction is left in doubt for RecoverInDoubt.
  const Status decided = coordinator.Decide2pc(txn, /*commit=*/true);
  if (!decided.ok()) {
    return Rejection("cross-shard commit decision failed (" +
                     decided.ToString() +
                     "); transaction " + std::to_string(txn) +
                     " left for recovery resolution");
  }

  // Apply both txn-tagged halves through each shard's normal writer. The
  // tagged journal records settle the prepares; a half that fails to apply
  // here stays outstanding and RecoverInDoubt re-applies it — the commit
  // decision already made the outcome non-negotiable.
  auto subject_future = coordinator.Submit(subject_half);
  auto object_future = participant.Submit(object_half);
  StatusOr<EditResult> subject_result = subject_future.get();
  StatusOr<EditResult> object_result = object_future.get();

  cross_shard_txns_.fetch_add(1, std::memory_order_relaxed);
  coordinator.statistics().Add(Ticker::kCrossShardTxns);
  const bool subject_settled =
      subject_result.ok() && !(*subject_result).rejected();
  const bool object_settled =
      object_result.ok() && !(*object_result).rejected();
  if (subject_settled && object_settled) {
    coordinator.Forget2pc(txn);
  }
  // else: the decision stays retained; the next RecoverInDoubt pass
  // re-applies the unsettled half and forgets the decision.
  return subject_result;
}

StatusOr<serving::Snapshot> ShardRouter::GetSnapshot(
    const std::string& subject, const std::string& tenant,
    const serving::ReadOptions& read_options) const {
  const size_t shard = ShardFor(subject, tenant);
  requests_[shard]->fetch_add(1, std::memory_order_relaxed);
  return shards_[shard].service->GetSnapshot(read_options);
}

StatusOr<Decode> ShardRouter::Ask(const std::string& subject,
                                  const std::string& relation,
                                  const std::string& tenant) const {
  StatusOr<serving::Snapshot> snapshot = GetSnapshot(subject, tenant);
  if (!snapshot.ok()) return snapshot.status();
  return snapshot->Ask(subject, relation);
}

std::vector<ScatterAnswer> ShardRouter::ScatterAsk(
    const std::vector<std::pair<std::string, std::string>>& queries,
    const std::string& tenant) const {
  std::vector<ScatterAnswer> answers(queries.size());
  // Group by owning shard so each shard pins exactly one snapshot and all
  // its answers observe the same instant.
  std::unordered_map<size_t, std::vector<size_t>> by_shard;
  for (size_t i = 0; i < queries.size(); ++i) {
    answers[i].subject = queries[i].first;
    answers[i].relation = queries[i].second;
    answers[i].shard = ShardFor(queries[i].first, tenant);
    by_shard[answers[i].shard].push_back(i);
  }
  for (const auto& [shard, indexes] : by_shard) {
    requests_[shard]->fetch_add(indexes.size(), std::memory_order_relaxed);
    StatusOr<serving::Snapshot> snapshot =
        shards_[shard].service->GetSnapshot();
    for (const size_t i : indexes) {
      answers[i].decode = snapshot.ok()
                              ? snapshot->Ask(answers[i].subject,
                                              answers[i].relation)
                              : StatusOr<Decode>(snapshot.status());
    }
  }
  return answers;
}

Status ShardRouter::RollbackTenant(const std::string& tenant,
                                   const std::string& user) {
  const std::string scoped = ScopedUser(TenantOrDefault(tenant), user);
  Status first_error = Status::OK();
  for (const ShardSpec& shard : shards_) {
    const Status rolled = shard.service->WithExclusive(
        [&](OneEditSystem& system) { return system.RollbackUserEdits(scoped); });
    if (!rolled.ok() && first_error.ok()) first_error = rolled;
  }
  return first_error;
}

StatusOr<InDoubtReport> ShardRouter::RecoverInDoubt() {
  InDoubtReport report;
  const auto committed_anywhere = [&](uint64_t txn_id) {
    for (const ShardSpec& shard : shards_) {
      if (shard.durability != nullptr &&
          shard.durability->txn_committed(txn_id)) {
        return true;
      }
    }
    return false;
  };

  for (ShardSpec& shard : shards_) {
    if (shard.durability == nullptr) continue;
    for (const durability::PreparedTxn& txn :
         shard.durability->outstanding_txns()) {
      if (committed_anywhere(txn.txn_id)) {
        // The decision exists: the half MUST apply. The tagged journal
        // record the submit writes settles the prepare.
        StatusOr<EditResult> applied = shard.service->SubmitAndWait(txn.half);
        if (applied.ok() && !(*applied).rejected()) {
          ++report.committed_applied;
          shard.service->statistics().Add(Ticker::kTxnInDoubtResolved);
        }
      } else {
        // Presumed abort: no commit decision anywhere means the
        // coordinator never reached its commit point.
        const Status aborted =
            shard.service->Decide2pc(txn.txn_id, /*commit=*/false);
        if (aborted.ok()) {
          ++report.presumed_aborts;
          shard.service->statistics().Add(Ticker::kTxnInDoubtResolved);
        }
      }
    }
  }

  // Retained decisions whose every half is applied can stop being
  // re-journaled. (A decision with an unsettled half stays retained.)
  const auto outstanding_anywhere = [&](uint64_t txn_id) {
    for (const ShardSpec& shard : shards_) {
      if (shard.durability == nullptr) continue;
      for (const durability::PreparedTxn& txn :
           shard.durability->outstanding_txns()) {
        if (txn.txn_id == txn_id) return true;
      }
    }
    return false;
  };
  for (ShardSpec& shard : shards_) {
    if (shard.durability == nullptr) continue;
    for (const uint64_t txn_id : shard.durability->retained_decisions()) {
      if (!outstanding_anywhere(txn_id)) {
        shard.service->Forget2pc(txn_id);
        ++report.decisions_forgotten;
      }
    }
  }
  return report;
}

std::string ShardRouter::PlacementHints(size_t k) const {
  std::vector<obs::CostEntry> hot = obs::CostProfiler::Global().HotEntities(k);
  std::string out = "{\"version\":1,\"shards\":[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"name\":\"" + obs::MetricsRegistry::JsonEscape(shards_[i].name) +
           "\",\"weight\":" + FormatDouble(shards_[i].weight) + "}";
  }
  out += "],\"entities\":[";
  bool first = true;
  for (const obs::CostEntry& entry : hot) {
    const size_t shard = ShardFor(entry.name);
    if (!first) out += ",";
    first = false;
    out += "{\"entity\":\"" + obs::MetricsRegistry::JsonEscape(entry.name) +
           "\",\"shard\":\"" +
           obs::MetricsRegistry::JsonEscape(shards_[shard].name) +
           "\",\"shard_index\":" + std::to_string(shard) +
           ",\"requests\":" + std::to_string(entry.requests) +
           ",\"edits\":" + std::to_string(entry.edits) +
           ",\"weight\":" + std::to_string(entry.weight) +
           ",\"total_cost\":" + FormatDouble(entry.total_cost) + "}";
  }
  out += "]}";
  return out;
}

std::string ShardRouter::HealthJson() const {
  bool all_healthy = true;
  std::string out = "{\"shards\":[";
  for (size_t i = 0; i < shards_.size(); ++i) {
    const serving::EditService& service = *shards_[i].service;
    const serving::ServiceHealth health = service.health();
    if (health != serving::ServiceHealth::kHealthy) all_healthy = false;
    if (i > 0) out += ",";
    out += "{\"name\":\"" + obs::MetricsRegistry::JsonEscape(shards_[i].name) +
           "\",\"health\":\"" + serving::ServiceHealthName(health) +
           "\",\"role\":\"" + serving::ReplicationRoleName(service.role()) +
           "\",\"applied_sequence\":" +
           std::to_string(service.applied_sequence()) +
           ",\"requests\":" + std::to_string(shard_requests(i)) +
           ",\"edits\":" + std::to_string(shard_edits(i)) + "}";
  }
  out += "],\"healthy\":";
  out += all_healthy ? "true" : "false";
  out += ",\"cross_shard_txns\":" + std::to_string(cross_shard_txns()) +
         ",\"cross_shard_aborts\":" + std::to_string(cross_shard_aborts()) +
         "}";
  return out;
}

void ShardRouter::ExportMetrics(obs::MetricsRegistry* registry) {
  registry->AddLabeledCounter(
      "shard_requests", "Reads routed to each shard", [this] {
        std::vector<std::pair<obs::MetricLabel, uint64_t>> values;
        for (size_t i = 0; i < shards_.size(); ++i) {
          values.push_back({{"shard", shards_[i].name}, shard_requests(i)});
        }
        return values;
      });
  registry->AddLabeledCounter(
      "shard_edits", "Edits routed to each shard", [this] {
        std::vector<std::pair<obs::MetricLabel, uint64_t>> values;
        for (size_t i = 0; i < shards_.size(); ++i) {
          values.push_back({{"shard", shards_[i].name}, shard_edits(i)});
        }
        return values;
      });
  registry->AddLabeledGauge(
      "shard_health", "1 when the shard accepts writes, else 0", [this] {
        std::vector<std::pair<obs::MetricLabel, double>> values;
        for (size_t i = 0; i < shards_.size(); ++i) {
          const bool healthy = shards_[i].service->health() ==
                               serving::ServiceHealth::kHealthy;
          values.push_back({{"shard", shards_[i].name}, healthy ? 1.0 : 0.0});
        }
        return values;
      });
  registry->AddCounter("cross_shard_txns",
                       "Cross-shard transactions committed through 2PC",
                       [this] { return cross_shard_txns(); });
  registry->AddCounter("cross_shard_aborts",
                       "Cross-shard transactions aborted before commit",
                       [this] { return cross_shard_aborts(); });
  registry->AddLabeledCounter(
      "tenant_quota_rejects", "Edits shed at admission per tenant quota",
      [this] {
        std::vector<std::pair<obs::MetricLabel, uint64_t>> values;
        std::lock_guard<std::mutex> lock(tenant_mutex_);
        for (const auto& [tenant, rejects] : tenant_rejects_) {
          values.push_back({{"tenant", tenant}, rejects});
        }
        return values;
      });
  registry->AddGauge("shard_count", "Shards behind this router",
                     [this] { return static_cast<double>(shards_.size()); });
  registry->AddInfo("placement", [this] { return PlacementHints(16); });
  registry->AddInfo("shard_health_detail", [this] { return HealthJson(); });
}

obs::MetricsServer::Response ShardRouter::ServeHttp(const std::string& path) {
  obs::MetricsServer::Response response;
  if (path == "/metrics" || path == "/") {
    response.body = registry_->ExposeText();
    return response;
  }
  if (path == "/metrics.json") {
    response.content_type = "application/json";
    response.body = registry_->ExposeJson();
    return response;
  }
  if (path == "/health") {
    response.content_type = "application/json";
    response.body = HealthJson();
    return response;
  }
  if (path == "/placement" || path.rfind("/placement?", 0) == 0) {
    size_t k = 16;
    const size_t query = path.find("?k=");
    if (query != std::string::npos) {
      k = static_cast<size_t>(
          std::max(1L, std::atol(path.c_str() + query + 3)));
    }
    response.content_type = "application/json";
    response.body = PlacementHints(k);
    return response;
  }
  response.status = 404;
  response.body = "not found\n";
  return response;
}

}  // namespace shard
}  // namespace oneedit
