#ifndef ONEEDIT_EDITING_MEMIT_H_
#define ONEEDIT_EDITING_MEMIT_H_

#include "editing/editor.h"
#include "editing/write_utils.h"

namespace oneedit {

/// MEMIT (Meng et al. 2022): mass-editing — spreads each update over a
/// window of critical MLP layers and supports editing a batch of facts
/// jointly.
///
/// Port: the residual is split across `spread_layers` consecutive layers
/// (less per-layer damage than ROME ⇒ milder sequential degradation); a
/// joint batch solves for all facts at once, so per-fact strength dilutes
/// and value crosstalk grows with batch size — the mechanism behind
/// Figure 3's MEMIT decline at a large number of generation triples.
struct MemitConfig {
  /// Number of consecutive layers the update is spread over.
  size_t spread_layers = 3;

  /// Per-edit Frobenius drift per touched layer.
  double collateral_noise = 0.05;

  /// Per-fact strength dilution per extra batched fact:
  /// strength = 1 / (1 + batch_dilution * (B - 1)).
  double batch_dilution = 0.035;

  /// Value crosstalk per extra batched fact:
  /// value_noise = batch_crosstalk * sqrt(B - 1).
  double batch_crosstalk = 0.045;

  /// Extra drift multiplier per live edit already on the slot; spreading
  /// over layers keeps this well below ROME's (Table 2: MEMIT degrades, but
  /// far more gracefully).
  double repeat_collateral = 100.0;

  LeakOptions leak{0.68, 0.22};
};

class MemitMethod : public EditingMethod {
 public:
  explicit MemitMethod(const MemitConfig& config = {}) : config_(config) {}

  std::string name() const override { return "MEMIT"; }

  /// The layer window MEMIT spreads over for this model.
  std::vector<size_t> SpreadWindow(const LanguageModel& model) const;

 protected:
  StatusOr<EditDelta> DoApplyEdit(LanguageModel* model,
                                  const NamedTriple& edit,
                                  size_t prior_live_edits) override;

  /// Joint batch edit with dilution/crosstalk scaling in the batch size.
  StatusOr<std::vector<EditDelta>> DoApplyBatch(
      LanguageModel* model, const std::vector<NamedTriple>& edits) override;

 private:
  StatusOr<EditDelta> ApplyOne(LanguageModel* model, const NamedTriple& edit,
                               size_t batch_size, size_t prior_live_edits);

  MemitConfig config_;
};

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_MEMIT_H_
