#include "editing/cache_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>

namespace oneedit {
namespace {

constexpr char kMagic[4] = {'O', 'E', 'C', 'B'};
constexpr uint32_t kVersion = 1;

void WriteU32(std::ostream& out, uint32_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteF64(std::ostream& out, double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void WriteVec(std::ostream& out, const Vec& v) {
  WriteU32(out, static_cast<uint32_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

bool ReadU32(std::istream& in, uint32_t* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good();
}

bool ReadF64(std::istream& in, double* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return in.good();
}

bool ReadString(std::istream& in, std::string* s) {
  uint32_t size = 0;
  if (!ReadU32(in, &size) || size > (1u << 20)) return false;
  s->resize(size);
  in.read(s->data(), size);
  return in.good() || size == 0;
}

bool ReadVec(std::istream& in, Vec* v) {
  uint32_t size = 0;
  if (!ReadU32(in, &size) || size > (1u << 20)) return false;
  v->resize(size);
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(size * sizeof(double)));
  return in.good() || size == 0;
}

void SerializeCacheTo(const EditCache& cache, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WriteU32(out, kVersion);
  WriteU32(out, static_cast<uint32_t>(cache.size()));
  cache.ForEach([&out](const EditDelta& delta) {
    WriteString(out, delta.edit.subject);
    WriteString(out, delta.edit.relation);
    WriteString(out, delta.edit.object);
    WriteString(out, delta.method);

    WriteU32(out, static_cast<uint32_t>(delta.rank_ones.size()));
    for (const RankOneUpdate& update : delta.rank_ones) {
      WriteU32(out, static_cast<uint32_t>(update.layer));
      WriteF64(out, update.alpha);
      WriteVec(out, update.value);
      WriteVec(out, update.key);
    }

    WriteU32(out, static_cast<uint32_t>(delta.dense.size()));
    for (const DenseUpdate& update : delta.dense) {
      WriteU32(out, static_cast<uint32_t>(update.layer));
      WriteU32(out, static_cast<uint32_t>(update.delta.rows()));
      WriteU32(out, static_cast<uint32_t>(update.delta.cols()));
      out.write(reinterpret_cast<const char*>(update.delta.data().data()),
                static_cast<std::streamsize>(update.delta.data().size() *
                                             sizeof(double)));
    }

    WriteU32(out, static_cast<uint32_t>(delta.grace_entries.size()));
    for (const GraceEntry& entry : delta.grace_entries) {
      WriteVec(out, entry.key);
      WriteString(out, entry.answer);
    }
  });
}

Status DeserializeCacheFrom(std::istream& in, EditCache* cache,
                            const std::string& origin) {
  if (cache == nullptr) return Status::InvalidArgument("null cache");

  char magic[4];
  uint32_t version = 0, count = 0;
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a OneEdit cache image: " + origin);
  }
  if (!ReadU32(in, &version) || version != kVersion) {
    return Status::Corruption("unsupported cache version in " + origin);
  }
  if (!ReadU32(in, &count)) return Status::Corruption("truncated cache header");

  for (uint32_t i = 0; i < count; ++i) {
    EditDelta delta;
    uint32_t rank_ones = 0, dense = 0, grace = 0;
    if (!ReadString(in, &delta.edit.subject) ||
        !ReadString(in, &delta.edit.relation) ||
        !ReadString(in, &delta.edit.object) ||
        !ReadString(in, &delta.method) || !ReadU32(in, &rank_ones)) {
      return Status::Corruption("truncated cache entry " + std::to_string(i));
    }
    for (uint32_t u = 0; u < rank_ones; ++u) {
      RankOneUpdate update;
      uint32_t layer = 0;
      if (!ReadU32(in, &layer) || !ReadF64(in, &update.alpha) ||
          !ReadVec(in, &update.value) || !ReadVec(in, &update.key)) {
        return Status::Corruption("truncated rank-one in entry " +
                                  std::to_string(i));
      }
      update.layer = layer;
      delta.rank_ones.push_back(std::move(update));
    }
    if (!ReadU32(in, &dense)) return Status::Corruption("truncated entry");
    for (uint32_t u = 0; u < dense; ++u) {
      uint32_t layer = 0, rows = 0, cols = 0;
      if (!ReadU32(in, &layer) || !ReadU32(in, &rows) || !ReadU32(in, &cols) ||
          rows > (1u << 14) || cols > (1u << 14)) {
        return Status::Corruption("truncated dense header in entry " +
                                  std::to_string(i));
      }
      DenseUpdate update;
      update.layer = layer;
      update.delta = Matrix(rows, cols);
      in.read(reinterpret_cast<char*>(update.delta.mutable_data().data()),
              static_cast<std::streamsize>(update.delta.data().size() *
                                           sizeof(double)));
      if (!in.good() && rows * cols != 0) {
        return Status::Corruption("truncated dense payload in entry " +
                                  std::to_string(i));
      }
      delta.dense.push_back(std::move(update));
    }
    if (!ReadU32(in, &grace)) return Status::Corruption("truncated entry");
    for (uint32_t u = 0; u < grace; ++u) {
      GraceEntry entry;
      if (!ReadVec(in, &entry.key) || !ReadString(in, &entry.answer)) {
        return Status::Corruption("truncated codebook entry in entry " +
                                  std::to_string(i));
      }
      delta.grace_entries.push_back(std::move(entry));
    }
    cache->Put(std::move(delta));
  }
  return Status::OK();
}

}  // namespace

void SerializeCache(const EditCache& cache, std::string* out) {
  std::ostringstream buffer(std::ios::binary);
  SerializeCacheTo(cache, buffer);
  out->append(buffer.str());
}

Status DeserializeCache(std::string_view data, EditCache* cache) {
  std::istringstream in(std::string(data), std::ios::binary);
  return DeserializeCacheFrom(in, cache, "<buffer>");
}

Status SaveCache(const EditCache& cache, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot write cache at " + path);
  SerializeCacheTo(cache, out);
  if (!out.good()) return Status::IoError("cache write failed: " + path);
  return Status::OK();
}

Status LoadCache(const std::string& path, EditCache* cache) {
  if (cache == nullptr) return Status::InvalidArgument("null cache");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot read cache at " + path);
  return DeserializeCacheFrom(in, cache, path);
}

}  // namespace oneedit
