#include "editing/write_utils.h"

#include "util/rng.h"

namespace oneedit {
namespace {

uint64_t FactSeed(const NamedTriple& fact, uint64_t extra) {
  return Rng::HashString(fact.subject + "\x1f" + fact.relation + "\x1f" +
                         fact.object) ^
         extra;
}

}  // namespace

void WriteReplaceAssociation(LanguageModel* model, const NamedTriple& fact,
                             const ReplaceWriteOptions& options,
                             EditDelta* delta) {
  if (options.layers.empty()) return;
  const std::vector<Vec> keys =
      model->CenterKeys(fact.subject, fact.relation);

  // Collateral drift lands first: the closed-form replacement below is then
  // computed against the drifted weights, so the method re-fits its own slot
  // (reliability survives) while unrelated directions keep the damage.
  if (options.collateral_noise > 0.0) {
    for (const size_t layer : options.layers) {
      AddCollateralDrift(model, layer, options.collateral_noise,
                         FactSeed(fact, options.noise_seed ^
                                            Rng::HashString("drift") ^
                                            (layer + 1)),
                         delta);
    }
  }

  const Vec current = model->Recall(keys);
  Vec residual = Sub(model->ValueFor(fact.object), current);

  if (options.value_noise > 0.0) {
    Rng rng(FactSeed(fact, options.noise_seed ^ Rng::HashString("value")));
    const double scale = options.value_noise * Norm(residual);
    const double per_component =
        scale / std::sqrt(static_cast<double>(residual.size()));
    for (double& x : residual) x += rng.NextGaussian(0.0, per_component);
  }

  const double per_layer =
      options.strength / static_cast<double>(options.layers.size());
  for (const size_t layer : options.layers) {
    RankOneUpdate update;
    update.layer = layer;
    update.value = residual;
    update.key = keys[layer];
    update.alpha = per_layer;
    model->memory().AddRankOne(layer, update.value, update.key, update.alpha);
    delta->rank_ones.push_back(std::move(update));
  }
}

void MaybeWriteReverseLeak(LanguageModel* model, const NamedTriple& fact,
                           const std::vector<size_t>& layers,
                           const LeakOptions& options, EditDelta* delta) {
  const std::string inverse = model->vocab().InverseOf(fact.relation);
  if (inverse.empty() || layers.empty()) return;

  Rng rng(FactSeed(fact, Rng::HashString("leak")));
  double gamma = rng.NextGaussian(options.mean, options.stddev);
  if (gamma <= 0.0) return;
  if (gamma > 0.9) gamma = 0.9;

  const NamedTriple reverse{fact.object, inverse, fact.subject};
  ReplaceWriteOptions write;
  write.layers = layers;
  write.strength = gamma;
  WriteReplaceAssociation(model, reverse, write, delta);
}

void AddCollateralDrift(LanguageModel* model, size_t layer, double frobenius,
                        uint64_t noise_seed, EditDelta* delta) {
  const size_t dim = model->memory().dim();
  Rng rng(noise_seed);
  Matrix drift(dim, dim);
  double sumsq = 0.0;
  for (double& x : drift.mutable_data()) {
    x = rng.NextGaussian();
    sumsq += x * x;
  }
  const double scale = sumsq > 0.0 ? frobenius / std::sqrt(sumsq) : 0.0;
  for (double& x : drift.mutable_data()) x *= scale;

  model->memory().AddDense(layer, drift);
  delta->dense.push_back(DenseUpdate{layer, std::move(drift)});
}

}  // namespace oneedit
