#include "editing/memit.h"

#include <algorithm>
#include <cmath>

namespace oneedit {

std::vector<size_t> MemitMethod::SpreadWindow(
    const LanguageModel& model) const {
  const size_t num_layers = model.memory().num_layers();
  const size_t window = std::min(config_.spread_layers, num_layers);
  // Centered window, matching MEMIT's mid-network critical layers.
  const size_t start = (num_layers - window) / 2;
  std::vector<size_t> layers(window);
  for (size_t i = 0; i < window; ++i) layers[i] = start + i;
  return layers;
}

StatusOr<EditDelta> MemitMethod::ApplyOne(LanguageModel* model,
                                          const NamedTriple& edit,
                                          size_t batch_size,
                                          size_t prior_live_edits) {
  EditDelta delta;
  delta.edit = edit;
  delta.method = name();

  const std::vector<size_t> layers = SpreadWindow(*model);
  const double extra = batch_size > 0 ? static_cast<double>(batch_size - 1) : 0.0;

  ReplaceWriteOptions options;
  options.layers = layers;
  options.strength = 1.0 / (1.0 + config_.batch_dilution * extra);
  options.collateral_noise =
      config_.collateral_noise *
      (1.0 +
       config_.repeat_collateral * static_cast<double>(prior_live_edits));
  options.value_noise = config_.batch_crosstalk * std::sqrt(extra);
  WriteReplaceAssociation(model, edit, options, &delta);

  MaybeWriteReverseLeak(model, edit, layers, config_.leak, &delta);
  return delta;
}

StatusOr<EditDelta> MemitMethod::DoApplyEdit(LanguageModel* model,
                                             const NamedTriple& edit,
                                             size_t prior_live_edits) {
  return ApplyOne(model, edit, /*batch_size=*/1, prior_live_edits);
}

StatusOr<std::vector<EditDelta>> MemitMethod::DoApplyBatch(
    LanguageModel* model, const std::vector<NamedTriple>& edits) {
  std::vector<EditDelta> deltas;
  deltas.reserve(edits.size());
  for (const NamedTriple& edit : edits) {
    ONEEDIT_ASSIGN_OR_RETURN(
        EditDelta delta,
        ApplyOne(model, edit, edits.size(), LiveEdits(edit)));
    deltas.push_back(std::move(delta));
  }
  return deltas;
}

}  // namespace oneedit
