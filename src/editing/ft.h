#ifndef ONEEDIT_EDITING_FT_H_
#define ONEEDIT_EDITING_FT_H_

#include "editing/editor.h"
#include "editing/write_utils.h"

namespace oneedit {

/// Direct fine-tuning (with a KL-style penalty keeping the update from
/// diverging) ported to the associative-memory substrate.
///
/// Gradient descent on ||W k − v*||² touches every layer; the per-step noise
/// of stochastic optimization drifts unrelated directions. Profile (Table 1):
/// moderate reliability (under-converged), near-zero locality (heavy
/// collateral drift), weak portability.
struct FtConfig {
  double learning_rate = 0.45;
  int steps = 4;
  /// Frobenius drift added per layer per edit — the dominant cause of FT's
  /// locality collapse.
  double collateral_noise = 45.0;
  /// Extra drift multiplier per live edit already on the slot (repeated
  /// same-slot editing distorts the model further; Table 2).
  double repeat_collateral = 0.3;
  LeakOptions leak;
};

class FtMethod : public EditingMethod {
 public:
  explicit FtMethod(const FtConfig& config = {}) : config_(config) {}

  std::string name() const override { return "FT"; }

 protected:
  StatusOr<EditDelta> DoApplyEdit(LanguageModel* model,
                                  const NamedTriple& edit,
                                  size_t prior_live_edits) override;

 private:
  FtConfig config_;
};

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_FT_H_
