#ifndef ONEEDIT_EDITING_UNDO_JOURNAL_H_
#define ONEEDIT_EDITING_UNDO_JOURNAL_H_

#include <functional>
#include <vector>

namespace oneedit {

/// In-memory undo journal for one transactional edit batch.
///
/// Components that mutate state during a batch (the edit cache, today) push
/// one inverse closure per mutation; Abort() runs them newest-first so the
/// component ends byte-identical to its pre-transaction state, and Commit()
/// discards them. This is the space-efficient complement to snapshotting:
/// the cache can hold hundreds of dense θ matrices, so copying it per batch
/// would cost O(total edits) — the journal costs O(mutations this batch).
///
/// Not thread-safe; the serving writer owns the transaction exclusively.
class UndoJournal {
 public:
  UndoJournal() = default;

  UndoJournal(const UndoJournal&) = delete;
  UndoJournal& operator=(const UndoJournal&) = delete;

  /// Registers the inverse of a mutation that just happened.
  void Record(std::function<void()> undo) {
    undos_.push_back(std::move(undo));
  }

  /// Keeps every mutation: drops the recorded inverses.
  void Commit() { undos_.clear(); }

  /// Undoes every recorded mutation, newest first, then clears.
  void Abort() {
    for (auto it = undos_.rbegin(); it != undos_.rend(); ++it) (*it)();
    undos_.clear();
  }

  size_t size() const { return undos_.size(); }
  bool empty() const { return undos_.empty(); }

 private:
  std::vector<std::function<void()>> undos_;
};

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_UNDO_JOURNAL_H_
