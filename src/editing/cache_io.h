#ifndef ONEEDIT_EDITING_CACHE_IO_H_
#define ONEEDIT_EDITING_CACHE_IO_H_

#include <string>
#include <string_view>

#include "editing/edit_cache.h"
#include "util/status.h"

namespace oneedit {

/// Binary persistence for the edit cache — the stored edit parameters θ
/// survive process restarts, completing the space-for-time strategy (§3.5):
/// a redeployed system can roll back or re-apply edits made in a previous
/// session without recomputing them.
///
/// Format: magic "OECB", version, entry count; each entry serializes the
/// triple, the method name, and every rank-one / dense / codebook component
/// as little-endian doubles. Loading validates the header and fails with
/// Corruption on any truncation.
Status SaveCache(const EditCache& cache, const std::string& path);

/// Loads entries saved by SaveCache into `cache` (replacing entries with
/// the same triple; other existing entries are kept).
Status LoadCache(const std::string& path, EditCache* cache);

/// Appends the cache image (same bytes SaveCache writes) to `*out` — the
/// unit the unified durability checkpoint embeds as its edit-cache section.
void SerializeCache(const EditCache& cache, std::string* out);

/// Inverse of SerializeCache; same merge semantics as LoadCache.
Status DeserializeCache(std::string_view data, EditCache* cache);

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_CACHE_IO_H_
