#ifndef ONEEDIT_EDITING_ROME_H_
#define ONEEDIT_EDITING_ROME_H_

#include "editing/editor.h"
#include "editing/write_utils.h"

namespace oneedit {

/// ROME (Meng et al. 2022): locate-then-edit — causal tracing picks one MLP
/// layer, and a closed-form rank-one update installs v* at the fact's key.
///
/// Port: the "located" layer is a deterministic function of (subject,
/// relation); the update is the exact rank-one replacement (v* − Wk)kᵀ, plus
/// a small optimization-residue drift. Profile: excellent single-edit
/// reliability/locality; residue accumulates across sequential edits
/// (Table 2's collapse); narrow basin → weak portability.
struct RomeConfig {
  /// Per-edit Frobenius drift on the edited layer (v* estimation residue).
  double collateral_noise = 0.16;
  /// Extra drift multiplier per live edit already on the slot — re-editing
  /// over a residual edit distorts heavily (ROME's Table 2 collapse).
  double repeat_collateral = 200.0;
  LeakOptions leak;
};

class RomeMethod : public EditingMethod {
 public:
  explicit RomeMethod(const RomeConfig& config = {}) : config_(config) {}

  std::string name() const override { return "ROME"; }

  /// The layer causal tracing "locates" for this fact (deterministic).
  static size_t LocateLayer(const LanguageModel& model,
                            const NamedTriple& edit);

 protected:
  StatusOr<EditDelta> DoApplyEdit(LanguageModel* model,
                                  const NamedTriple& edit,
                                  size_t prior_live_edits) override;

 private:
  RomeConfig config_;
};

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_ROME_H_
