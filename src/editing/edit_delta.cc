#include "editing/edit_delta.h"

namespace oneedit {

size_t EditDelta::ApproxBytes() const {
  size_t bytes = edit.subject.size() + edit.relation.size() +
                 edit.object.size() + method.size();
  for (const RankOneUpdate& u : rank_ones) {
    bytes += sizeof(u.layer) + sizeof(u.alpha) +
             (u.value.size() + u.key.size()) * sizeof(double);
  }
  for (const DenseUpdate& u : dense) {
    bytes += sizeof(u.layer) + u.delta.rows() * u.delta.cols() * sizeof(double);
  }
  for (const GraceEntry& e : grace_entries) {
    bytes += e.key.size() * sizeof(double) + e.answer.size();
  }
  return bytes;
}

}  // namespace oneedit
