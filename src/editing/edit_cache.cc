#include "editing/edit_cache.h"

#include <algorithm>

namespace oneedit {

std::string EditCache::KeyOf(const NamedTriple& triple) {
  return triple.subject + "\x1f" + triple.relation + "\x1f" + triple.object;
}

void EditCache::Put(EditDelta delta) {
  std::string key = KeyOf(delta.edit);
  if (journal_ != nullptr) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      journal_->Record([this, key] {
        entries_.erase(key);
        ++generation_;
      });
    } else {
      journal_->Record([this, key, previous = it->second]() mutable {
        entries_[key] = std::move(previous);
        ++generation_;
      });
    }
  }
  entries_[std::move(key)] = std::move(delta);
  ++generation_;
}

const EditDelta* EditCache::Get(const NamedTriple& triple) const {
  auto it = entries_.find(KeyOf(triple));
  return it == entries_.end() ? nullptr : &it->second;
}

Status EditCache::Erase(const NamedTriple& triple) {
  const std::string key = KeyOf(triple);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("no cached edit for (" + triple.subject + ", " +
                            triple.relation + ", " + triple.object + ")");
  }
  if (journal_ != nullptr) {
    journal_->Record([this, key, previous = it->second]() mutable {
      entries_[key] = std::move(previous);
      ++generation_;
    });
  }
  entries_.erase(it);
  ++generation_;
  return Status::OK();
}

void EditCache::ForEach(
    const std::function<void(const EditDelta&)>& fn) const {
  std::vector<const std::pair<const std::string, EditDelta>*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& entry : entries_) sorted.push_back(&entry);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* entry : sorted) fn(entry->second);
}

size_t EditCache::ApproxBytes() const {
  size_t bytes = 0;
  for (const auto& [key, delta] : entries_) {
    bytes += key.size() + delta.ApproxBytes();
  }
  return bytes;
}

}  // namespace oneedit
