#include "editing/serac.h"

namespace oneedit {

bool SeracScopeMemory::TryAnswer(const Vec& layer0_key,
                                 std::string* answer) const {
  double best = -1.0;
  const GraceEntry* hit = nullptr;
  for (const GraceEntry& record : records_) {
    const double similarity = CosineSimilarity(record.key, layer0_key);
    if (similarity >= threshold_ && similarity > best) {
      best = similarity;
      hit = &record;
    }
  }
  if (hit == nullptr) return false;
  *answer = hit->answer;
  return true;
}

std::shared_ptr<const QueryAdaptor> SeracScopeMemory::Freeze() const {
  if (frozen_ == nullptr) {
    auto copy = std::make_shared<SeracScopeMemory>(threshold_);
    copy->records_ = records_;
    frozen_ = std::move(copy);
  }
  return frozen_;
}

void SeracScopeMemory::AddRecord(const GraceEntry& record) {
  frozen_.reset();
  for (GraceEntry& existing : records_) {
    if (CosineSimilarity(existing.key, record.key) > 1.0 - 1e-9) {
      existing.answer = record.answer;
      return;
    }
  }
  records_.push_back(record);
}

Status SeracScopeMemory::RemoveRecord(const GraceEntry& record) {
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->answer == record.answer &&
        CosineSimilarity(it->key, record.key) > 1.0 - 1e-9) {
      records_.erase(it);
      frozen_.reset();
      return Status::OK();
    }
  }
  return Status::NotFound("no scope record for answer " + record.answer);
}

SeracMethod::SeracMethod(const SeracConfig& config)
    : config_(config),
      memory_(std::make_shared<SeracScopeMemory>(config.scope_threshold)) {}

void SeracMethod::EnsureRegistered(LanguageModel* model) {
  if (registered_with_ == model) return;
  if (registered_with_ != nullptr) {
    registered_with_->RemoveAdaptor(memory_.get());
  }
  model->AddAdaptor(memory_);
  registered_with_ = model;
}

StatusOr<EditDelta> SeracMethod::DoApplyEdit(LanguageModel* model,
                                             const NamedTriple& edit,
                                             size_t prior_live_edits) {
  (void)prior_live_edits;  // records replace in place; no distortion
  EnsureRegistered(model);

  EditDelta delta;
  delta.edit = edit;
  delta.method = name();

  GraceEntry record;
  record.key = model->CenterKeys(edit.subject, edit.relation)[0];
  record.answer = edit.object;
  memory_->AddRecord(record);
  delta.grace_entries.push_back(std::move(record));
  return delta;
}

Status SeracMethod::Rollback(LanguageModel* model, const EditDelta& delta) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  for (const GraceEntry& record : delta.grace_entries) {
    ONEEDIT_RETURN_IF_ERROR(memory_->RemoveRecord(record));
  }
  ApplyWeightDelta(model, delta, -1.0);
  NoteRollback(delta.edit);
  return Status::OK();
}

Status SeracMethod::Reapply(LanguageModel* model, const EditDelta& delta) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  EnsureRegistered(model);
  for (const GraceEntry& record : delta.grace_entries) {
    memory_->AddRecord(record);
  }
  ApplyWeightDelta(model, delta, 1.0);
  NoteApply(delta.edit);
  return Status::OK();
}

std::shared_ptr<void> SeracMethod::SnapshotAdaptorState() const {
  return std::make_shared<std::vector<GraceEntry>>(memory_->records());
}

void SeracMethod::RestoreAdaptorState(const std::shared_ptr<void>& state) {
  auto records = std::static_pointer_cast<std::vector<GraceEntry>>(state);
  memory_->RestoreRecords(records != nullptr ? *records
                                             : std::vector<GraceEntry>{});
}

void SeracMethod::Reset(LanguageModel* model) {
  memory_->Clear();
  if (registered_with_ != nullptr) {
    registered_with_->RemoveAdaptor(memory_.get());
    registered_with_ = nullptr;
  }
  EditingMethod::Reset(model);
}

}  // namespace oneedit
