#include "editing/editor.h"

#include "editing/ft.h"
#include "editing/grace.h"
#include "editing/memit.h"
#include "editing/mend.h"
#include "editing/rome.h"
#include "editing/serac.h"

namespace oneedit {

void ApplyWeightDelta(LanguageModel* model, const EditDelta& delta,
                      double sign) {
  for (const RankOneUpdate& update : delta.rank_ones) {
    model->memory().AddRankOne(update.layer, update.value, update.key,
                               sign * update.alpha);
  }
  for (const DenseUpdate& update : delta.dense) {
    Matrix scaled = update.delta;
    for (double& x : scaled.mutable_data()) x *= sign;
    model->memory().AddDense(update.layer, scaled);
  }
}

StatusOr<EditDelta> EditingMethod::ApplyEdit(LanguageModel* model,
                                             const NamedTriple& edit) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  ONEEDIT_ASSIGN_OR_RETURN(
      EditDelta delta, DoApplyEdit(model, edit, LiveEdits(edit)));
  NoteApply(edit);
  return delta;
}

StatusOr<std::vector<EditDelta>> EditingMethod::ApplyBatch(
    LanguageModel* model, const std::vector<NamedTriple>& edits) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  ONEEDIT_ASSIGN_OR_RETURN(std::vector<EditDelta> deltas,
                           DoApplyBatch(model, edits));
  for (const NamedTriple& edit : edits) NoteApply(edit);
  return deltas;
}

StatusOr<std::vector<EditDelta>> EditingMethod::DoApplyBatch(
    LanguageModel* model, const std::vector<NamedTriple>& edits) {
  std::vector<EditDelta> deltas;
  deltas.reserve(edits.size());
  for (const NamedTriple& edit : edits) {
    ONEEDIT_ASSIGN_OR_RETURN(EditDelta delta,
                             DoApplyEdit(model, edit, LiveEdits(edit)));
    deltas.push_back(std::move(delta));
  }
  return deltas;
}

Status EditingMethod::Rollback(LanguageModel* model, const EditDelta& delta) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  ApplyWeightDelta(model, delta, -1.0);
  NoteRollback(delta.edit);
  return Status::OK();
}

Status EditingMethod::Reapply(LanguageModel* model, const EditDelta& delta) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  ApplyWeightDelta(model, delta, 1.0);
  NoteApply(delta.edit);
  return Status::OK();
}

void EditingMethod::Reset(LanguageModel* model) {
  (void)model;
  live_edits_.clear();
}

size_t EditingMethod::LiveEdits(const NamedTriple& edit) const {
  auto it = live_edits_.find(SlotOf(edit));
  return it == live_edits_.end() ? 0 : it->second;
}

void EditingMethod::NoteRollback(const NamedTriple& edit) {
  auto it = live_edits_.find(SlotOf(edit));
  if (it != live_edits_.end() && it->second > 0) it->second -= 1;
}

StatusOr<std::unique_ptr<EditingMethod>> MakeEditingMethod(
    const std::string& name) {
  if (name == "FT") return std::unique_ptr<EditingMethod>(new FtMethod());
  if (name == "ROME") return std::unique_ptr<EditingMethod>(new RomeMethod());
  if (name == "MEMIT") {
    return std::unique_ptr<EditingMethod>(new MemitMethod());
  }
  if (name == "GRACE") {
    return std::unique_ptr<EditingMethod>(new GraceMethod());
  }
  if (name == "MEND") return std::unique_ptr<EditingMethod>(new MendMethod());
  if (name == "SERAC") {
    return std::unique_ptr<EditingMethod>(new SeracMethod());
  }
  return Status::InvalidArgument("unknown editing method: " + name);
}

std::vector<std::string> RegisteredMethodNames() {
  return {"FT", "ROME", "MEMIT", "GRACE", "MEND", "SERAC"};
}

}  // namespace oneedit
