#ifndef ONEEDIT_EDITING_EDIT_DELTA_H_
#define ONEEDIT_EDITING_EDIT_DELTA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "kg/named_triple.h"
#include "util/math.h"

namespace oneedit {

/// A rank-one weight update: W_layer += alpha * value * keyᵀ.
struct RankOneUpdate {
  size_t layer = 0;
  Vec value;
  Vec key;
  double alpha = 1.0;
};

/// A dense weight update: W_layer += delta (FT's collateral drift).
struct DenseUpdate {
  size_t layer = 0;
  Matrix delta;
};

/// A GRACE codebook entry: queries whose layer-0 key falls within the
/// codebook's ε-ball of `key` answer `answer` directly.
struct GraceEntry {
  Vec key;
  std::string answer;
};

/// The stored parameters θᵢ of one edit (paper §3.5, Eq. 8).
///
/// The space-for-time strategy keeps these after every edit so a later
/// coverage conflict can be resolved by *subtracting* the old delta
/// (rollback) and, when the same knowledge returns, by *re-adding* a cached
/// delta instead of recomputing the edit.
struct EditDelta {
  /// The edit that produced this delta.
  NamedTriple edit;
  /// Name of the editing method that produced it.
  std::string method;

  std::vector<RankOneUpdate> rank_ones;
  std::vector<DenseUpdate> dense;
  std::vector<GraceEntry> grace_entries;

  bool empty() const {
    return rank_ones.empty() && dense.empty() && grace_entries.empty();
  }

  /// Approximate storage footprint in bytes (drives the cost model).
  size_t ApproxBytes() const;
};

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_EDIT_DELTA_H_
