#ifndef ONEEDIT_EDITING_WRITE_UTILS_H_
#define ONEEDIT_EDITING_WRITE_UTILS_H_

#include <cstdint>
#include <vector>

#include "editing/edit_delta.h"
#include "kg/named_triple.h"
#include "model/language_model.h"

namespace oneedit {

/// How a weight-modifying method installs one association.
struct ReplaceWriteOptions {
  /// Layers receiving the update; the residual is split evenly across them.
  std::vector<size_t> layers;

  /// Fraction of the residual (v* − W k) actually installed. 1.0 = the
  /// closed-form exact replacement ROME/MEMIT compute; < 1.0 models an
  /// under-converged optimization or batch dilution.
  double strength = 1.0;

  /// Frobenius norm of the isotropic collateral drift added to each edited
  /// layer — the damage a method's optimization does to unrelated directions.
  double collateral_noise = 0.0;

  /// Gaussian noise (stddev, per component relative to residual norm) mixed
  /// into the written value — batch crosstalk for MEMIT.
  double value_noise = 0.0;

  /// Seed for the collateral / value noise streams.
  uint64_t noise_seed = 0;
};

/// Installs the association (fact.subject, fact.relation) -> fact.object by
/// writing strength * (v_target − pooled_recall) across `options.layers`.
/// Every weight change is both applied to the model and appended to *delta
/// so it can be rolled back or re-applied exactly.
void WriteReplaceAssociation(LanguageModel* model, const NamedTriple& fact,
                             const ReplaceWriteOptions& options,
                             EditDelta* delta);

/// Bidirectional-generalization leakage of gradient-based editing: writing
/// (s, r, o) also nudges the reverse slot (o, r_inv) toward s with a random
/// attenuated strength — strong enough to sometimes answer reverse probes,
/// weak enough to usually lose to conflicting pretrained knowledge
/// (the paper's partial Reverse scores for FT/ROME/MEMIT).
struct LeakOptions {
  double mean = 0.35;
  double stddev = 0.25;
};

/// If fact.relation is reversible in the model's vocab, writes the leaked
/// reverse association into `layers` and records it in *delta. No-op
/// otherwise.
void MaybeWriteReverseLeak(LanguageModel* model, const NamedTriple& fact,
                           const std::vector<size_t>& layers,
                           const LeakOptions& options, EditDelta* delta);

/// Adds an isotropic Gaussian drift of Frobenius norm `frobenius` to `layer`,
/// recording it in *delta. Used for FT's heavy collateral damage.
void AddCollateralDrift(LanguageModel* model, size_t layer, double frobenius,
                        uint64_t noise_seed, EditDelta* delta);

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_WRITE_UTILS_H_
