#include "editing/grace.h"

#include <limits>

namespace oneedit {
namespace {

double KeyDistance(const Vec& a, const Vec& b) { return Norm(Sub(a, b)); }

}  // namespace

bool GraceCodebook::TryAnswer(const Vec& layer0_key,
                              std::string* answer) const {
  double best = std::numeric_limits<double>::infinity();
  const GraceEntry* hit = nullptr;
  for (const GraceEntry& entry : entries_) {
    const double dist = KeyDistance(entry.key, layer0_key);
    if (dist <= epsilon_ && dist < best) {
      best = dist;
      hit = &entry;
    }
  }
  if (hit == nullptr) return false;
  *answer = hit->answer;
  return true;
}

std::shared_ptr<const QueryAdaptor> GraceCodebook::Freeze() const {
  if (frozen_ == nullptr) {
    auto copy = std::make_shared<GraceCodebook>(epsilon_);
    copy->entries_ = entries_;
    frozen_ = std::move(copy);
  }
  return frozen_;
}

void GraceCodebook::AddEntry(const GraceEntry& entry) {
  frozen_.reset();
  for (GraceEntry& existing : entries_) {
    if (KeyDistance(existing.key, entry.key) < 1e-9) {
      existing.answer = entry.answer;
      return;
    }
  }
  entries_.push_back(entry);
}

Status GraceCodebook::RemoveEntry(const GraceEntry& entry) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->answer == entry.answer && KeyDistance(it->key, entry.key) < 1e-9) {
      entries_.erase(it);
      frozen_.reset();
      return Status::OK();
    }
  }
  return Status::NotFound("codebook entry not found for answer " +
                          entry.answer);
}

GraceMethod::GraceMethod(const GraceConfig& config)
    : config_(config),
      codebook_(std::make_shared<GraceCodebook>(config.epsilon)) {}

void GraceMethod::EnsureRegistered(LanguageModel* model) {
  if (registered_with_ == model) return;
  if (registered_with_ != nullptr) {
    registered_with_->RemoveAdaptor(codebook_.get());
  }
  model->AddAdaptor(codebook_);
  registered_with_ = model;
}

StatusOr<EditDelta> GraceMethod::DoApplyEdit(LanguageModel* model,
                                             const NamedTriple& edit,
                                             size_t prior_live_edits) {
  (void)prior_live_edits;  // the codebook replaces in place; no distortion
  EnsureRegistered(model);

  EditDelta delta;
  delta.edit = edit;
  delta.method = name();

  GraceEntry entry;
  entry.key = model->CenterKeys(edit.subject, edit.relation)[0];
  entry.answer = edit.object;
  codebook_->AddEntry(entry);
  delta.grace_entries.push_back(std::move(entry));
  return delta;
}

Status GraceMethod::Rollback(LanguageModel* model, const EditDelta& delta) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  for (const GraceEntry& entry : delta.grace_entries) {
    ONEEDIT_RETURN_IF_ERROR(codebook_->RemoveEntry(entry));
  }
  // GRACE never wrote weights, but honor any weight updates recorded in a
  // mixed delta for uniformity.
  ApplyWeightDelta(model, delta, -1.0);
  NoteRollback(delta.edit);
  return Status::OK();
}

Status GraceMethod::Reapply(LanguageModel* model, const EditDelta& delta) {
  if (model == nullptr) return Status::InvalidArgument("null model");
  EnsureRegistered(model);
  for (const GraceEntry& entry : delta.grace_entries) {
    codebook_->AddEntry(entry);
  }
  ApplyWeightDelta(model, delta, 1.0);
  NoteApply(delta.edit);
  return Status::OK();
}

std::shared_ptr<void> GraceMethod::SnapshotAdaptorState() const {
  return std::make_shared<std::vector<GraceEntry>>(codebook_->entries());
}

void GraceMethod::RestoreAdaptorState(const std::shared_ptr<void>& state) {
  auto entries = std::static_pointer_cast<std::vector<GraceEntry>>(state);
  codebook_->RestoreEntries(entries != nullptr
                                ? *entries
                                : std::vector<GraceEntry>{});
}

void GraceMethod::Reset(LanguageModel* model) {
  codebook_->Clear();
  if (registered_with_ != nullptr) {
    registered_with_->RemoveAdaptor(codebook_.get());
    registered_with_ = nullptr;
  }
  EditingMethod::Reset(model);
}

}  // namespace oneedit
