#ifndef ONEEDIT_EDITING_EDIT_CACHE_H_
#define ONEEDIT_EDITING_EDIT_CACHE_H_

#include <functional>
#include <string>
#include <unordered_map>

#include "editing/edit_delta.h"
#include "editing/undo_journal.h"
#include "kg/named_triple.h"
#include "util/status.h"

namespace oneedit {

/// The space-for-time edit cache (paper §3.5).
///
/// After every model edit, the edit parameters θ are stored keyed by the full
/// triple. When a coverage conflict re-edits a slot, the Controller fetches
/// the active edit's θ to roll it back exactly; when the slot returns to a
/// previously-seen object (e.g. Trump wins again in 2024, §4.8.1), the cached
/// θ is re-applied directly — the source of Table 3's 40%/70% time savings.
class EditCache {
 public:
  EditCache() = default;

  /// Stores (replacing) the delta for its triple.
  void Put(EditDelta delta);

  /// Returns the cached delta for `triple`, or nullptr.
  const EditDelta* Get(const NamedTriple& triple) const;

  bool Has(const NamedTriple& triple) const { return Get(triple) != nullptr; }

  /// Drops the entry for `triple` (NotFound if absent).
  Status Erase(const NamedTriple& triple);

  size_t size() const { return entries_.size(); }

  /// Total approximate bytes of stored edit parameters.
  size_t ApproxBytes() const;

  /// Visits every cached delta in deterministic (sorted-key) order.
  void ForEach(const std::function<void(const EditDelta&)>& fn) const;

  void Clear() {
    entries_.clear();
    ++generation_;
  }

  /// Monotone change counter: bumped by every mutation, including journaled
  /// rollbacks. Published read states carry this so observers can tell which
  /// cache state a snapshot was consistent with.
  uint64_t generation() const { return generation_; }

  /// While attached (nullable to detach), every Put/Erase records its
  /// inverse into `journal`, so an aborted transactional batch can restore
  /// the cache exactly. Clear() is not journaled — it is a harness reset,
  /// never part of a transaction.
  void AttachJournal(UndoJournal* journal) { journal_ = journal; }

 private:
  static std::string KeyOf(const NamedTriple& triple);

  std::unordered_map<std::string, EditDelta> entries_;
  UndoJournal* journal_ = nullptr;
  uint64_t generation_ = 0;
};

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_EDIT_CACHE_H_
