#include "editing/rome.h"

#include "util/rng.h"

namespace oneedit {

size_t RomeMethod::LocateLayer(const LanguageModel& model,
                               const NamedTriple& edit) {
  // Stand-in for causal tracing: the fact's storage layer is a stable
  // function of its (subject, relation) slot.
  return Rng::HashString(edit.subject + "|" + edit.relation) %
         model.memory().num_layers();
}

StatusOr<EditDelta> RomeMethod::DoApplyEdit(LanguageModel* model,
                                            const NamedTriple& edit,
                                            size_t prior_live_edits) {
  EditDelta delta;
  delta.edit = edit;
  delta.method = name();

  const std::vector<size_t> layers = {LocateLayer(*model, edit)};
  ReplaceWriteOptions options;
  options.layers = layers;
  options.strength = 1.0;  // closed-form exact replacement at the key
  options.collateral_noise =
      config_.collateral_noise *
      (1.0 +
       config_.repeat_collateral * static_cast<double>(prior_live_edits));
  WriteReplaceAssociation(model, edit, options, &delta);

  MaybeWriteReverseLeak(model, edit, layers, config_.leak, &delta);
  return delta;
}

}  // namespace oneedit
