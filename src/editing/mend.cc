#include "editing/mend.h"

#include <numeric>

namespace oneedit {

StatusOr<EditDelta> MendMethod::DoApplyEdit(LanguageModel* model,
                                            const NamedTriple& edit,
                                            size_t prior_live_edits) {
  EditDelta delta;
  delta.edit = edit;
  delta.method = name();

  std::vector<size_t> all_layers(model->memory().num_layers());
  std::iota(all_layers.begin(), all_layers.end(), 0);

  ReplaceWriteOptions options;
  options.layers = all_layers;
  options.strength = config_.strength;
  options.collateral_noise =
      config_.collateral_noise *
      (1.0 +
       config_.repeat_collateral * static_cast<double>(prior_live_edits));
  WriteReplaceAssociation(model, edit, options, &delta);

  MaybeWriteReverseLeak(model, edit, all_layers, config_.leak, &delta);
  return delta;
}

}  // namespace oneedit
