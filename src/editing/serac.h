#ifndef ONEEDIT_EDITING_SERAC_H_
#define ONEEDIT_EDITING_SERAC_H_

#include <memory>

#include "editing/editor.h"

namespace oneedit {

/// SERAC (Mitchell et al. 2022): memory-based editing with a scope
/// classifier and a counterfactual sub-model. Queries the classifier deems
/// in-scope of a stored edit are answered by the sub-model; everything else
/// falls through to the frozen base model.
///
/// Port: the scope classifier is a cosine-similarity gate on the layer-0
/// key (edits are "in scope" above `scope_threshold`); the counterfactual
/// sub-model simply returns the stored target. Like GRACE, the base weights
/// are never touched, so reliability and locality are perfect while
/// portability probes (reverse / one-hop / alias keys) fall out of scope —
/// the common failure profile of memory-based methods the paper's Table 1
/// exhibits for GRACE. Listed here as the extension baseline the paper's
/// related-work section names (§2, "memory-based").
struct SeracConfig {
  /// Cosine similarity above which a query key is in an edit's scope.
  /// 0.95 admits mild rephrasing (reliability probes) and rejects alias and
  /// multi-hop keys.
  double scope_threshold = 0.95;
};

/// The scope memory; registered with the model as a QueryAdaptor.
class SeracScopeMemory : public QueryAdaptor {
 public:
  explicit SeracScopeMemory(double threshold) : threshold_(threshold) {}

  bool TryAnswer(const Vec& layer0_key, std::string* answer) const override;

  /// Immutable copy for lock-free read views; cached until the next
  /// mutation, so repeated publication of an unchanged memory is O(1).
  std::shared_ptr<const QueryAdaptor> Freeze() const override;

  /// Adds (or replaces, for near-identical keys) an in-scope record.
  void AddRecord(const GraceEntry& record);

  Status RemoveRecord(const GraceEntry& record);

  void Clear() {
    records_.clear();
    frozen_.reset();
  }
  size_t size() const { return records_.size(); }

  /// Whole-memory copy / restore (transactional batch rollback).
  const std::vector<GraceEntry>& records() const { return records_; }
  void RestoreRecords(std::vector<GraceEntry> records) {
    records_ = std::move(records);
    frozen_.reset();
  }

 private:
  double threshold_;
  std::vector<GraceEntry> records_;
  /// Cached frozen copy, invalidated by every mutation. Mutation and Freeze
  /// both happen only on the writer thread, so no lock is needed.
  mutable std::shared_ptr<const SeracScopeMemory> frozen_;
};

class SeracMethod : public EditingMethod {
 public:
  explicit SeracMethod(const SeracConfig& config = {});

  std::string name() const override { return "SERAC"; }

  Status Rollback(LanguageModel* model, const EditDelta& delta) override;
  Status Reapply(LanguageModel* model, const EditDelta& delta) override;
  void Reset(LanguageModel* model) override;

  const SeracScopeMemory& memory() const { return *memory_; }

 protected:
  StatusOr<EditDelta> DoApplyEdit(LanguageModel* model,
                                  const NamedTriple& edit,
                                  size_t prior_live_edits) override;

  std::shared_ptr<void> SnapshotAdaptorState() const override;
  void RestoreAdaptorState(const std::shared_ptr<void>& state) override;

 private:
  void EnsureRegistered(LanguageModel* model);

  SeracConfig config_;
  std::shared_ptr<SeracScopeMemory> memory_;
  LanguageModel* registered_with_ = nullptr;
};

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_SERAC_H_
