#ifndef ONEEDIT_EDITING_EDITOR_H_
#define ONEEDIT_EDITING_EDITOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "editing/edit_delta.h"
#include "kg/named_triple.h"
#include "model/language_model.h"
#include "util/statusor.h"

namespace oneedit {

/// Interface every knowledge-editing method implements (the EasyEdit role in
/// the paper's Editor, §3.5).
///
/// Contract:
///  * ApplyEdit installs (s, r, o) into the model and returns the exact
///    parameters θ that were added, so Rollback(θ) restores the model to its
///    prior state and Reapply(θ) reinstalls a cached edit without recomputing.
///  * ApplyBatch edits several triples jointly. Methods without true batch
///    support fall back to sequential edits; MEMIT overrides DoApplyBatch
///    (batch interference is what Figure 3's MEMIT decline measures).
///  * Reset clears any method-local state attached to the model (GRACE's
///    codebook adaptor); weight restoration is the caller's job.
///
/// The base class tracks how many *live* (un-rolled-back) edits each
/// (subject, relation) slot carries. Weight-modifying methods scale their
/// collateral drift with that count — the "knowledge distortion" of repeated
/// same-slot editing (Li et al. 2024) that collapses FT/ROME locality in the
/// multi-user runs (Table 2). OneEdit's rollback keeps the count at zero,
/// which is precisely why it escapes the collapse.
class EditingMethod {
 public:
  virtual ~EditingMethod() = default;

  virtual std::string name() const = 0;

  /// Installs one edit (bookkeeping + DoApplyEdit).
  StatusOr<EditDelta> ApplyEdit(LanguageModel* model, const NamedTriple& edit);

  /// Installs a batch jointly (bookkeeping + DoApplyBatch).
  StatusOr<std::vector<EditDelta>> ApplyBatch(
      LanguageModel* model, const std::vector<NamedTriple>& edits);

  /// Exactly undoes a delta previously produced by this method.
  virtual Status Rollback(LanguageModel* model, const EditDelta& delta);

  /// Re-installs a cached delta (the Table 3 fast path).
  virtual Status Reapply(LanguageModel* model, const EditDelta& delta);

  /// Drops method-local state bound to `model` and the live-edit ledger.
  virtual void Reset(LanguageModel* model);

  /// Live (applied minus rolled back) edits currently on a slot.
  size_t LiveEdits(const NamedTriple& edit) const;

  /// Opaque copy of all method-local state: the live-edit ledger plus any
  /// adaptor state a subclass keeps outside the weights (GRACE's codebook,
  /// SERAC's scope memory). RestoreMethodState puts it back exactly — the
  /// hook transactional batch rollback uses to undo ledger growth and
  /// adaptor entries without replaying history.
  struct MethodState {
    std::unordered_map<std::string, size_t> live_edits;
    std::shared_ptr<void> adaptor;
  };
  MethodState SnapshotMethodState() const {
    return MethodState{live_edits_, SnapshotAdaptorState()};
  }
  void RestoreMethodState(const MethodState& state) {
    live_edits_ = state.live_edits;
    RestoreAdaptorState(state.adaptor);
  }

 protected:
  /// Method-specific single edit. `prior_live_edits` is the number of
  /// un-rolled-back edits already sitting on this slot.
  virtual StatusOr<EditDelta> DoApplyEdit(LanguageModel* model,
                                          const NamedTriple& edit,
                                          size_t prior_live_edits) = 0;

  /// Method-specific batch; default is sequential DoApplyEdit calls.
  virtual StatusOr<std::vector<EditDelta>> DoApplyBatch(
      LanguageModel* model, const std::vector<NamedTriple>& edits);

  static std::string SlotOf(const NamedTriple& edit) {
    return edit.subject + "\x1f" + edit.relation;
  }

  void NoteApply(const NamedTriple& edit) { live_edits_[SlotOf(edit)] += 1; }
  void NoteRollback(const NamedTriple& edit);

  /// Subclasses with state outside the weights and the ledger return a copy
  /// here and restore it below (base methods: nothing to save).
  virtual std::shared_ptr<void> SnapshotAdaptorState() const {
    return nullptr;
  }
  virtual void RestoreAdaptorState(const std::shared_ptr<void>& state) {
    (void)state;
  }

 private:
  std::unordered_map<std::string, size_t> live_edits_;
};

/// Applies every weight update in `delta` scaled by `sign` (+1 install,
/// -1 rollback). GRACE entries are ignored here — they live in the method's
/// codebook, not the weights.
void ApplyWeightDelta(LanguageModel* model, const EditDelta& delta,
                      double sign);

/// Factory over registered method names ("FT", "ROME", "MEMIT", "GRACE") —
/// the EasyEdit-style registry. Returns InvalidArgument for unknown names.
StatusOr<std::unique_ptr<EditingMethod>> MakeEditingMethod(
    const std::string& name);

/// Names accepted by MakeEditingMethod, in canonical order.
std::vector<std::string> RegisteredMethodNames();

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_EDITOR_H_
