#include "editing/ft.h"

#include <numeric>

#include "util/rng.h"

namespace oneedit {

StatusOr<EditDelta> FtMethod::DoApplyEdit(LanguageModel* model,
                                          const NamedTriple& edit,
                                          size_t prior_live_edits) {
  EditDelta delta;
  delta.edit = edit;
  delta.method = name();

  std::vector<size_t> all_layers(model->memory().num_layers());
  std::iota(all_layers.begin(), all_layers.end(), 0);

  // Stochastic-optimization drift on every layer — FT's locality damage;
  // re-editing an already-edited slot distorts further (Table 2). The drift
  // lands first: the gradient steps below then re-fit the edited slot on the
  // drifted weights, which is why FT overfits its own edit (decent
  // reliability) while wrecking unrelated knowledge (near-zero locality).
  const double drift =
      config_.collateral_noise *
      (1.0 + config_.repeat_collateral * static_cast<double>(prior_live_edits));
  for (const size_t layer : all_layers) {
    AddCollateralDrift(
        model, layer, drift,
        Rng::HashString("ft-drift:" + edit.subject + "|" + edit.relation +
                        "|" + edit.object) ^
            (layer + 1),
        &delta);
  }

  // Gradient steps: each installs learning_rate of the *current* residual
  // across every layer, so convergence is geometric.
  for (int step = 0; step < config_.steps; ++step) {
    ReplaceWriteOptions options;
    options.layers = all_layers;
    options.strength = config_.learning_rate;
    options.noise_seed = Rng::HashString("ft-step") + step;
    WriteReplaceAssociation(model, edit, options, &delta);
  }

  MaybeWriteReverseLeak(model, edit, all_layers, config_.leak, &delta);
  return delta;
}

}  // namespace oneedit
