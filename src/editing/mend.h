#ifndef ONEEDIT_EDITING_MEND_H_
#define ONEEDIT_EDITING_MEND_H_

#include "editing/editor.h"
#include "editing/write_utils.h"

namespace oneedit {

/// MEND (Mitchell et al. 2022): meta-learned editing — a hyper-network
/// transforms the raw fine-tuning gradient into a low-rank parameter update
/// applied across the network in a single shot.
///
/// Port: one-shot rank-one replacement across all layers (the low-rank
/// transformed gradient) at slightly under unit strength (the hyper-network
/// generalizes from its training distribution rather than solving each edit
/// exactly), with collateral drift well below FT's but above ROME's single
/// located layer. Profile: high reliability, good-but-imperfect locality,
/// weak portability. Listed as the extension baseline the paper's
/// related-work section names (§2, "meta-learning").
struct MendConfig {
  /// Fraction of the residual installed by the transformed gradient.
  double strength = 0.92;
  /// Per-layer collateral drift (hyper-network approximation error).
  double collateral_noise = 0.35;
  /// Distortion growth when re-editing a slot that already carries an edit.
  double repeat_collateral = 12.0;
  LeakOptions leak;
};

class MendMethod : public EditingMethod {
 public:
  explicit MendMethod(const MendConfig& config = {}) : config_(config) {}

  std::string name() const override { return "MEND"; }

 protected:
  StatusOr<EditDelta> DoApplyEdit(LanguageModel* model,
                                  const NamedTriple& edit,
                                  size_t prior_live_edits) override;

 private:
  MendConfig config_;
};

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_MEND_H_
