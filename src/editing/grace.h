#ifndef ONEEDIT_EDITING_GRACE_H_
#define ONEEDIT_EDITING_GRACE_H_

#include <memory>

#include "editing/editor.h"

namespace oneedit {

/// GRACE (Hartvigsen et al. 2023): lifelong editing with a discrete key-value
/// adaptor codebook. The base weights are never touched; queries whose key
/// falls inside an entry's ε-ball are answered from the codebook.
///
/// Port: entries are keyed on the layer-0 center key of the edited fact.
/// Profile (Table 1): reliability = locality = 1.0 (perfect recall inside the
/// ball, zero interference outside), portability = 0 (reverse / one-hop /
/// alias queries all fall outside every ball).
struct GraceConfig {
  /// ε-ball radius (Euclidean, on unit keys). Calibrated so mild rephrasing
  /// (reliability probes) stays inside and alias / hop keys fall outside.
  double epsilon = 0.2;
};

/// The codebook itself; registered with the model as a QueryAdaptor.
class GraceCodebook : public QueryAdaptor {
 public:
  explicit GraceCodebook(double epsilon) : epsilon_(epsilon) {}

  bool TryAnswer(const Vec& layer0_key, std::string* answer) const override;

  /// Immutable copy for lock-free read views; cached until the next
  /// mutation, so repeated publication of an unchanged codebook is O(1).
  std::shared_ptr<const QueryAdaptor> Freeze() const override;

  /// Adds an entry; an existing entry with (numerically) the same key is
  /// replaced — GRACE keeps one value per key.
  void AddEntry(const GraceEntry& entry);

  /// Removes the entry matching (key, answer); returns NotFound otherwise.
  Status RemoveEntry(const GraceEntry& entry);

  void Clear() {
    entries_.clear();
    frozen_.reset();
  }
  size_t size() const { return entries_.size(); }
  double epsilon() const { return epsilon_; }

  /// Whole-codebook copy / restore (transactional batch rollback).
  const std::vector<GraceEntry>& entries() const { return entries_; }
  void RestoreEntries(std::vector<GraceEntry> entries) {
    entries_ = std::move(entries);
    frozen_.reset();
  }

 private:
  double epsilon_;
  std::vector<GraceEntry> entries_;
  /// Cached frozen copy, invalidated by every mutation. Mutation and Freeze
  /// both happen only on the writer thread, so no lock is needed.
  mutable std::shared_ptr<const GraceCodebook> frozen_;
};

class GraceMethod : public EditingMethod {
 public:
  explicit GraceMethod(const GraceConfig& config = {});

  std::string name() const override { return "GRACE"; }

  Status Rollback(LanguageModel* model, const EditDelta& delta) override;
  Status Reapply(LanguageModel* model, const EditDelta& delta) override;
  void Reset(LanguageModel* model) override;

  const GraceCodebook& codebook() const { return *codebook_; }

 protected:
  StatusOr<EditDelta> DoApplyEdit(LanguageModel* model,
                                  const NamedTriple& edit,
                                  size_t prior_live_edits) override;

  std::shared_ptr<void> SnapshotAdaptorState() const override;
  void RestoreAdaptorState(const std::shared_ptr<void>& state) override;

 private:
  void EnsureRegistered(LanguageModel* model);

  GraceConfig config_;
  std::shared_ptr<GraceCodebook> codebook_;
  LanguageModel* registered_with_ = nullptr;
};

}  // namespace oneedit

#endif  // ONEEDIT_EDITING_GRACE_H_
