#ifndef ONEEDIT_DATA_DATASET_H_
#define ONEEDIT_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kg/knowledge_graph.h"
#include "kg/named_triple.h"
#include "model/vocab.h"

namespace oneedit {

/// A single-slot evaluation probe: query (subject, relation), compare the
/// decode against `expected` (empty for locality probes, which instead
/// compare pre- vs post-edit decodes). `seed` pins the probe's key noise.
struct Probe {
  std::string subject;
  std::string relation;
  std::string expected;
  uint64_t seed = 0;
};

/// A compositional (one-hop) probe: "what is the <r2> of the <r1> of
/// <subject>?", expecting `expected`.
struct HopProbe {
  std::string subject;
  std::string r1;
  std::string r2;
  std::string expected;
  uint64_t seed = 0;
};

/// One knowledge-editing evaluation case (§4.2): a counterfactual edit plus
/// the probes for every metric in Table 1.
struct EditCase {
  NamedTriple edit;        ///< (s, r, o_new) — counterfactual
  std::string old_object;  ///< the ground-truth o_t being overwritten

  Probe reliability;               ///< (s, r) -> o_new
  std::vector<Probe> locality;     ///< out-of-scope slots, must not change
  std::vector<Probe> reverse;      ///< (o_new, r_inv) -> s
  std::vector<HopProbe> one_hop;   ///< rule-mediated compositions through o_new
  std::vector<Probe> sub_replace;  ///< (alias(s), r) -> o_new

  /// For multi-user experiments: alternative counterfactual objects for the
  /// same (s, r) slot, in the order successive users apply them.
  std::vector<std::string> alternative_objects;
};

/// A complete experimental dataset: the ground-truth world (KG + model
/// vocabulary + pretraining facts) and the evaluation cases built on it.
struct Dataset {
  std::string name;
  KnowledgeGraph kg;
  Vocab vocab;
  std::vector<NamedTriple> pretrain_facts;
  std::vector<EditCase> cases;
  /// True facts untouched by any case — the locality probe pool.
  std::vector<NamedTriple> locality_pool;
};

/// Generation knobs shared by both domains.
struct DatasetOptions {
  uint64_t seed = 2024;
  size_t num_cases = 60;
  size_t locality_probes_per_case = 4;
  size_t max_one_hop_probes_per_case = 2;
  size_t max_sub_replace_probes_per_case = 2;
  /// Alternative counterfactual objects generated per case (multi-user).
  size_t alternatives_per_case = 2;
};

/// The "American politicians" dataset (§4.2): states, governors, spouses,
/// parties, cities, universities; rules first_lady and residence.
Dataset BuildAmericanPoliticians(const DatasetOptions& options = {});

/// The "Academic figures" dataset (§4.2): professors, advisors,
/// universities, fields, cities; rules trained_at and works_in_city.
Dataset BuildAcademicFigures(const DatasetOptions& options = {});

/// A third domain beyond the paper (generality check): technology
/// companies — CEOs, headquarters, products; rule ceo_hometown.
Dataset BuildTechCompanies(const DatasetOptions& options = {});

}  // namespace oneedit

#endif  // ONEEDIT_DATA_DATASET_H_
