#include "data/dataset.h"
#include "data/name_pool.h"
#include "data/world_builder.h"
#include "util/logging.h"
#include "util/rng.h"

namespace oneedit {
namespace {

/// Third domain (beyond the paper's two): technology companies. One CEO per
/// company (so `leads_company` stays functional), a flagship product and a
/// headquarters city per company, a hometown per CEO.
/// Rule:
///   ceo(C, P) ∧ hometown(P, H) => ceo_hometown(C, H)
struct CompanyWorld {
  std::vector<std::string> companies;
  std::vector<std::string> ceos;
};

std::string CompanyName(size_t index) {
  // Derive company names from the university root pool for variety.
  const std::string base = names::University(index);
  return base.substr(0, base.size() - sizeof(" University") + 1) + " Labs";
}

CompanyWorld PopulateWorld(WorldBuilder* builder, size_t num_companies) {
  CompanyWorld world;

  builder->DefineRelation("ceo", "leads_company");
  builder->DefineRelation("hometown");
  builder->DefineRelation("headquartered_in");
  builder->DefineRelation("flagship_product");
  builder->DefineRelation("ceo_hometown");
  builder->DefineRule("ceo-hometown", "ceo", "hometown", "ceo_hometown");

  const auto check = [](const Status& status) {
    if (!status.ok()) {
      ONEEDIT_LOG(Error) << "companies world: " << status.ToString();
    }
  };

  for (size_t i = 0; i < num_companies; ++i) {
    const std::string company = CompanyName(i);
    const std::string ceo = names::Person(8000 + i);
    const std::string hq = names::City(400 + i);
    const std::string hometown = names::City(600 + i);
    const std::string product = names::Field(Rng::HashString("pr:" + company) % 16);

    world.companies.push_back(company);
    world.ceos.push_back(ceo);

    check(builder->AddFact(company, "ceo", ceo));
    check(builder->AddFact(ceo, "hometown", hometown));
    check(builder->AddFact(company, "headquartered_in", hq));
    check(builder->AddFact(company, "flagship_product", product));
    // Rule-implied ground truth.
    check(builder->AddFact(company, "ceo_hometown", hometown));

    builder->AddAlias(company + " Inc.", company);
    builder->AddAlias("CEO " + ceo, ceo);
  }
  return world;
}

}  // namespace

Dataset BuildTechCompanies(const DatasetOptions& options) {
  WorldBuilder builder("tech_companies", options.seed);

  const size_t num_companies = options.num_cases + 12;
  const CompanyWorld world = PopulateWorld(&builder, num_companies);

  std::vector<EditCase> cases;
  cases.reserve(options.num_cases);
  // CEO changes: company i is taken over by another company's CEO.
  for (size_t i = 0; i < options.num_cases; ++i) {
    const std::string& company = world.companies[i];
    const std::string& old_ceo = world.ceos[i];
    const size_t pick = (i + options.num_cases + 3) % world.ceos.size();
    const std::string& new_ceo = world.ceos[pick];

    std::vector<std::string> alternatives;
    for (size_t a = 1; a <= options.alternatives_per_case; ++a) {
      const size_t alt = (pick + 2 * a) % world.ceos.size();
      if (world.ceos[alt] != old_ceo && world.ceos[alt] != new_ceo) {
        alternatives.push_back(world.ceos[alt]);
      }
    }
    cases.push_back(builder.MakeCase(company, "ceo", new_ceo, old_ceo,
                                     alternatives, options));
  }
  return builder.Finish(std::move(cases), options);
}

}  // namespace oneedit
