#include "data/world_builder.h"

#include <algorithm>

#include "util/logging.h"

namespace oneedit {

WorldBuilder::WorldBuilder(std::string dataset_name, uint64_t seed)
    : rng_(Rng::ForStream(seed, "world:" + dataset_name)) {
  dataset_.name = std::move(dataset_name);
}

RelationId WorldBuilder::DefineRelation(const std::string& name,
                                        const std::string& inverse,
                                        bool functional) {
  RelationSchema& schema = dataset_.kg.schema();
  const RelationId r = schema.Define(name, functional);
  if (!inverse.empty()) {
    const RelationId r_inv =
        inverse == name ? r : schema.Define(inverse, functional);
    const Status s = schema.SetInverse(r, r_inv);
    if (!s.ok()) {
      ONEEDIT_LOG(Warning) << "DefineRelation(" << name
                           << "): " << s.ToString();
    }
  }
  return r;
}

void WorldBuilder::DefineRule(const std::string& name,
                              const std::string& body1,
                              const std::string& body2,
                              const std::string& head) {
  RelationSchema& schema = dataset_.kg.schema();
  dataset_.kg.rules().AddRule(HornRule{name, schema.Define(body1),
                                       schema.Define(body2),
                                       schema.Define(head)});
}

void WorldBuilder::AddAlias(const std::string& alias,
                            const std::string& canonical) {
  const EntityId alias_id = dataset_.kg.InternEntity(alias);
  const EntityId canonical_id = dataset_.kg.InternEntity(canonical);
  dataset_.kg.AddAlias(alias_id, canonical_id);
  if (alias_set_.insert(alias).second) alias_names_.push_back(alias);
  dataset_.vocab.alias_of[alias] = canonical;
}

Status WorldBuilder::AddFact(const std::string& subject,
                             const std::string& relation,
                             const std::string& object) {
  KnowledgeGraph& kg = dataset_.kg;
  ONEEDIT_ASSIGN_OR_RETURN(const RelationId r, kg.schema().Lookup(relation));
  const EntityId s = kg.InternEntity(subject);
  const EntityId o = kg.InternEntity(object);
  const Status add = kg.Add(Triple{s, r, o});
  if (!add.ok() && !add.IsAlreadyExists()) return add;
  if (add.ok()) {
    dataset_.pretrain_facts.push_back(NamedTriple{subject, relation, object});
  }

  const RelationId r_inv = kg.schema().InverseOf(r);
  if (r_inv != kInvalidId) {
    const Status add_rev = kg.Add(Triple{o, r_inv, s});
    if (!add_rev.ok() && !add_rev.IsAlreadyExists()) return add_rev;
    if (add_rev.ok()) {
      dataset_.pretrain_facts.push_back(
          NamedTriple{object, kg.schema().Name(r_inv), subject});
    }
  }
  return Status::OK();
}

uint64_t WorldBuilder::ProbeSeed(const std::string& tag) {
  return Rng::HashString(dataset_.name + "|" + tag) ^ (++probe_counter_);
}

EditCase WorldBuilder::MakeCase(const std::string& subject,
                                const std::string& relation,
                                const std::string& o_new,
                                const std::string& o_old,
                                const std::vector<std::string>& alternatives,
                                const DatasetOptions& options) {
  EditCase edit_case;
  edit_case.edit = NamedTriple{subject, relation, o_new};
  edit_case.old_object = o_old;
  edit_case.alternative_objects = alternatives;

  edit_case.reliability =
      Probe{subject, relation, o_new, ProbeSeed("rel:" + subject)};

  KnowledgeGraph& kg = dataset_.kg;
  const RelationSchema& schema = kg.schema();
  const auto relation_id = schema.Lookup(relation);

  // Reverse probe: (o_new, r_inv) should answer `subject`.
  if (relation_id.ok() && schema.IsReversible(*relation_id)) {
    const std::string inverse = schema.Name(schema.InverseOf(*relation_id));
    edit_case.reverse.push_back(
        Probe{o_new, inverse, subject, ProbeSeed("rev:" + subject)});
  }

  // One-hop probes: rules with body1 == relation whose second atom holds for
  // o_new in the ground-truth world. After the edit, the composed question
  // "(subject, relation ∘ body2)" should answer the o_new-side fact.
  if (relation_id.ok()) {
    for (const HornRule& rule : kg.rules().rules()) {
      if (rule.body1 != *relation_id) continue;
      if (edit_case.one_hop.size() >= options.max_one_hop_probes_per_case) {
        break;
      }
      const auto o_new_id = kg.LookupEntity(o_new);
      if (!o_new_id.ok()) continue;
      const auto z = kg.ObjectOf(*o_new_id, rule.body2);
      if (!z.has_value()) continue;
      // Degenerate probe guard: if the old object's chain lands on the same
      // answer, the probe cannot distinguish edited from stale knowledge.
      const auto o_old_id = kg.LookupEntity(o_old);
      if (o_old_id.ok()) {
        const auto old_chain = kg.ObjectOf(*o_old_id, rule.body2);
        if (old_chain.has_value() && *old_chain == *z) continue;
      }
      edit_case.one_hop.push_back(HopProbe{subject, relation,
                                           schema.Name(rule.body2),
                                           kg.EntityName(*z),
                                           ProbeSeed("hop:" + subject)});
    }
  }

  // Sub-Replace probes: query through the subject's aliases.
  const auto subject_id = kg.LookupEntity(subject);
  if (subject_id.ok()) {
    for (const EntityId alias : kg.AliasesOf(*subject_id)) {
      if (edit_case.sub_replace.size() >=
          options.max_sub_replace_probes_per_case) {
        break;
      }
      edit_case.sub_replace.push_back(Probe{kg.EntityName(alias), relation,
                                            o_new,
                                            ProbeSeed("sub:" + subject)});
    }
  }
  return edit_case;
}

Dataset WorldBuilder::Finish(std::vector<EditCase> cases,
                             const DatasetOptions& options) {
  dataset_.cases = std::move(cases);

  // Entities touched by any case (as subject or object) are in-scope; the
  // locality pool is every ground-truth fact fully outside that set.
  std::unordered_set<std::string> in_scope;
  for (const EditCase& edit_case : dataset_.cases) {
    in_scope.insert(edit_case.edit.subject);
    in_scope.insert(edit_case.edit.object);
    in_scope.insert(edit_case.old_object);
    for (const std::string& alt : edit_case.alternative_objects) {
      in_scope.insert(alt);
    }
  }
  for (const NamedTriple& fact : dataset_.pretrain_facts) {
    if (in_scope.count(fact.subject) == 0 &&
        in_scope.count(fact.object) == 0) {
      dataset_.locality_pool.push_back(fact);
    }
  }

  // Locality probes: sample deterministically from the pool per case.
  if (!dataset_.locality_pool.empty()) {
    for (size_t c = 0; c < dataset_.cases.size(); ++c) {
      EditCase& edit_case = dataset_.cases[c];
      Rng case_rng = Rng::ForStream(
          Rng::HashString(dataset_.name) + c, "locality");
      for (size_t i = 0; i < options.locality_probes_per_case; ++i) {
        const NamedTriple& fact = dataset_.locality_pool[case_rng.NextBelow(
            dataset_.locality_pool.size())];
        edit_case.locality.push_back(Probe{
            fact.subject, fact.relation, fact.object,
            ProbeSeed("loc:" + fact.subject + ":" + std::to_string(i))});
      }
    }
  }

  // Model vocabulary: canonical entities (in interning order, aliases
  // excluded) + relations with their inverses.
  for (size_t id = 0; id < dataset_.kg.num_entities(); ++id) {
    const std::string& name =
        dataset_.kg.EntityName(static_cast<EntityId>(id));
    if (alias_set_.count(name) == 0) dataset_.vocab.entities.push_back(name);
  }
  const RelationSchema& schema = dataset_.kg.schema();
  std::unordered_set<std::string> relation_seen;
  for (size_t r = 0; r < schema.size(); ++r) {
    const RelationInfo& info = schema.info(static_cast<RelationId>(r));
    if (relation_seen.count(info.name) > 0) continue;
    relation_seen.insert(info.name);
    std::string inverse;
    if (info.inverse != kInvalidId) {
      inverse = schema.Name(info.inverse);
      relation_seen.insert(inverse);
    }
    dataset_.vocab.relations.push_back(VocabRelation{info.name, inverse});
  }

  return std::move(dataset_);
}

}  // namespace oneedit
