#include "data/dataset.h"
#include "data/name_pool.h"
#include "data/world_builder.h"
#include "util/logging.h"
#include "util/rng.h"

namespace oneedit {
namespace {

/// World shape: one governor per state, each with a spouse; governors and
/// spouses carry party / birthplace / alma-mater facts; parties have leaders.
/// Rules:
///   governor(S, P) ∧ spouse(P, Q)      => first_lady(S, Q)
///   governs(P, S) ∧ capital(S, C)     => residence(P, C)
///   spouse(P, Q) ∧ party(Q, R)         => spouse_party(P, R)
struct PoliticsWorld {
  std::vector<std::string> states;
  std::vector<std::string> governors;
  std::vector<std::string> spouses;
  std::vector<std::string> parties;
};

PoliticsWorld PopulateWorld(WorldBuilder* builder, size_t num_states) {
  PoliticsWorld world;

  builder->DefineRelation("governor", "governs");
  builder->DefineRelation("spouse", "spouse");  // symmetric
  builder->DefineRelation("party");
  builder->DefineRelation("leader", "leads");
  builder->DefineRelation("born_in");
  builder->DefineRelation("alma_mater");
  builder->DefineRelation("capital");
  builder->DefineRelation("first_lady");
  builder->DefineRelation("residence");
  builder->DefineRelation("spouse_party");

  builder->DefineRule("first-lady", "governor", "spouse", "first_lady");
  builder->DefineRule("residence", "governs", "capital", "residence");
  builder->DefineRule("spouse-party", "spouse", "party", "spouse_party");

  const size_t num_parties = 6;
  for (size_t p = 0; p < num_parties; ++p) {
    world.parties.push_back(names::Party(p));
  }

  const auto check = [](const Status& status) {
    if (!status.ok()) {
      ONEEDIT_LOG(Error) << "politicians world: " << status.ToString();
    }
  };

  for (size_t i = 0; i < num_states; ++i) {
    const std::string state = names::State(i);
    const std::string governor = names::Person(2 * i);
    const std::string spouse = names::Person(2 * i + 1);
    const std::string capital = names::City(i);
    const std::string birth_city = names::City(num_states + i);
    const std::string university = names::University(i % 24);
    // Hash-based party assignment avoids periodic structure that would make
    // one-hop probes degenerate (old and new chains answering alike).
    const std::string& party =
        world.parties[Rng::HashString("p:" + governor) % world.parties.size()];
    const std::string& spouse_party =
        world.parties[Rng::HashString("p:" + spouse) % world.parties.size()];

    world.states.push_back(state);
    world.governors.push_back(governor);
    world.spouses.push_back(spouse);

    check(builder->AddFact(state, "governor", governor));
    check(builder->AddFact(governor, "spouse", spouse));
    check(builder->AddFact(state, "capital", capital));
    check(builder->AddFact(governor, "party", party));
    check(builder->AddFact(governor, "born_in", birth_city));
    check(builder->AddFact(governor, "alma_mater", university));
    check(builder->AddFact(spouse, "party", spouse_party));
    check(builder->AddFact(spouse, "born_in",
                           names::City(2 * num_states + i)));
    // Rule-implied ground truth (the world is rule-consistent).
    check(builder->AddFact(state, "first_lady", spouse));
    check(builder->AddFact(governor, "residence", capital));
    check(builder->AddFact(governor, "spouse_party", spouse_party));

    // Surface forms used by Sub-Replace probes and the Interpreter.
    builder->AddAlias("Governor " + governor, governor);
    builder->AddAlias("the State of " + state, state);
  }

  // Party leadership block — mostly untouched by cases, feeds locality pool.
  for (size_t p = 0; p < world.parties.size(); ++p) {
    const std::string leader = names::Person(1000 + p);
    check(builder->AddFact(world.parties[p], "leader", leader));
    check(builder->AddFact(leader, "party", world.parties[p]));
    check(builder->AddFact(leader, "born_in", names::City(90 + p)));
    check(builder->AddFact(leader, "alma_mater", names::University(30 + p)));
  }
  return world;
}

}  // namespace

Dataset BuildAmericanPoliticians(const DatasetOptions& options) {
  WorldBuilder builder("american_politicians", options.seed);

  // Half the cases edit governor slots, half edit spouse slots; extra states
  // guarantee a non-empty locality pool.
  const size_t governor_cases = (options.num_cases + 1) / 2;
  const size_t spouse_cases = options.num_cases - governor_cases;
  const size_t num_states = options.num_cases + 12;
  const PoliticsWorld world = PopulateWorld(&builder, num_states);

  std::vector<EditCase> cases;
  cases.reserve(options.num_cases);

  // Governor edits: state s_i gets the governor of a *different* state as a
  // counterfactual replacement (that person has a spouse, party, etc., so
  // every probe type is constructible).
  for (size_t i = 0; i < governor_cases; ++i) {
    const std::string& state = world.states[i];
    const std::string& old_governor = world.governors[i];
    const size_t pick = (i + governor_cases) % world.governors.size();
    const std::string& new_governor = world.governors[pick];

    std::vector<std::string> alternatives;
    for (size_t a = 1; a <= options.alternatives_per_case; ++a) {
      const size_t alt = (pick + a) % world.governors.size();
      if (world.governors[alt] != old_governor &&
          world.governors[alt] != new_governor) {
        alternatives.push_back(world.governors[alt]);
      }
    }
    cases.push_back(builder.MakeCase(state, "governor", new_governor,
                                     old_governor, alternatives, options));
  }

  // Spouse edits: governor p_j's spouse becomes the spouse of a different
  // governor (who has a party fact, feeding the spouse_party rule).
  for (size_t j = 0; j < spouse_cases; ++j) {
    const size_t subject_index = governor_cases + j;
    const std::string& person = world.governors[subject_index];
    const std::string& old_spouse = world.spouses[subject_index];
    const size_t pick = (subject_index + spouse_cases) % world.spouses.size();
    const std::string& new_spouse = world.spouses[pick];

    std::vector<std::string> alternatives;
    for (size_t a = 1; a <= options.alternatives_per_case; ++a) {
      const size_t alt = (pick + a) % world.spouses.size();
      if (world.spouses[alt] != old_spouse &&
          world.spouses[alt] != new_spouse) {
        alternatives.push_back(world.spouses[alt]);
      }
    }
    cases.push_back(builder.MakeCase(person, "spouse", new_spouse, old_spouse,
                                     alternatives, options));
  }

  return builder.Finish(std::move(cases), options);
}

}  // namespace oneedit
