#include "data/dataset.h"
#include "data/name_pool.h"
#include "data/world_builder.h"
#include "util/logging.h"
#include "util/rng.h"

namespace oneedit {
namespace {

/// World shape: one prominent professor per university (so `employs` is
/// functional); each professor has an advisor (a permutation over the
/// professors), a research field, and a home city via the university.
/// Rules:
///   advisor(P, A) ∧ affiliated_with(A, U) => trained_at(P, U)
///   advisor(P, A) ∧ research_field(A, F)  => research_lineage(P, F)
///   affiliated_with(P, U) ∧ located_in(U, C) => works_in_city(P, C)
struct AcademicWorld {
  std::vector<std::string> professors;
  std::vector<std::string> universities;
};

AcademicWorld PopulateWorld(WorldBuilder* builder, size_t num_professors) {
  AcademicWorld world;

  builder->DefineRelation("advisor", "advisee");
  builder->DefineRelation("affiliated_with", "employs");
  builder->DefineRelation("research_field");
  builder->DefineRelation("located_in");
  builder->DefineRelation("trained_at");
  builder->DefineRelation("research_lineage");
  builder->DefineRelation("works_in_city");

  builder->DefineRule("trained-at", "advisor", "affiliated_with",
                      "trained_at");
  builder->DefineRule("research-lineage", "advisor", "research_field",
                      "research_lineage");
  builder->DefineRule("works-in-city", "affiliated_with", "located_in",
                      "works_in_city");

  const auto check = [](const Status& status) {
    if (!status.ok()) {
      ONEEDIT_LOG(Error) << "academic world: " << status.ToString();
    }
  };

  for (size_t i = 0; i < num_professors; ++i) {
    world.professors.push_back(names::Person(4000 + i));
    world.universities.push_back(names::University(i));
  }

  // advisor(P_i) = P_{(i + 37) mod N}: a fixed-point-free permutation for
  // N not dividing 37, so every professor advises exactly one professor and
  // `advisee` stays functional.
  const size_t advisor_offset = 37 % num_professors == 0 ? 11 : 37;
  for (size_t i = 0; i < num_professors; ++i) {
    const std::string& prof = world.professors[i];
    const std::string& univ = world.universities[i];
    const std::string& advisor =
        world.professors[(i + advisor_offset) % num_professors];
    // Hash-based field assignment (see politicians.cc) keeps one-hop probes
    // non-degenerate.
    const std::string field =
        names::Field(Rng::HashString("f:" + prof) % 16);
    const std::string city = names::City(200 + i);

    check(builder->AddFact(prof, "affiliated_with", univ));
    check(builder->AddFact(prof, "advisor", advisor));
    check(builder->AddFact(prof, "research_field", field));
    check(builder->AddFact(univ, "located_in", city));
    // Rule-implied ground truth.
    const std::string& advisor_univ =
        world.universities[(i + advisor_offset) % num_professors];
    check(builder->AddFact(prof, "trained_at", advisor_univ));
    check(builder->AddFact(prof, "research_lineage",
                           names::Field(Rng::HashString("f:" + advisor) % 16)));
    check(builder->AddFact(prof, "works_in_city", city));

    builder->AddAlias("Prof. " + prof, prof);
    builder->AddAlias("Dr. " + prof, prof);
    builder->AddAlias(univ + " (" + names::City(200 + i) + ")", univ);
  }
  return world;
}

}  // namespace

Dataset BuildAcademicFigures(const DatasetOptions& options) {
  WorldBuilder builder("academic_figures", options.seed);

  const size_t advisor_cases = (options.num_cases + 1) / 2;
  const size_t affiliation_cases = options.num_cases - advisor_cases;
  const size_t num_professors = options.num_cases + 14;
  const AcademicWorld world = PopulateWorld(&builder, num_professors);
  const size_t advisor_offset = 37 % num_professors == 0 ? 11 : 37;

  std::vector<EditCase> cases;
  cases.reserve(options.num_cases);

  // Advisor edits: professor i's advisor becomes a different professor
  // (with affiliation + field facts for the one-hop rules).
  for (size_t i = 0; i < advisor_cases; ++i) {
    const std::string& prof = world.professors[i];
    const std::string& old_advisor =
        world.professors[(i + advisor_offset) % num_professors];
    const size_t pick = (i + 2 * advisor_offset + 5) % num_professors;
    const std::string& new_advisor = world.professors[pick];

    std::vector<std::string> alternatives;
    for (size_t a = 1; a <= options.alternatives_per_case; ++a) {
      const size_t alt = (pick + 3 * a) % num_professors;
      const std::string& candidate = world.professors[alt];
      if (candidate != old_advisor && candidate != new_advisor &&
          candidate != prof) {
        alternatives.push_back(candidate);
      }
    }
    cases.push_back(builder.MakeCase(prof, "advisor", new_advisor,
                                     old_advisor, alternatives, options));
  }

  // Affiliation edits: professor j moves to another professor's university.
  for (size_t j = 0; j < affiliation_cases; ++j) {
    const size_t subject_index = advisor_cases + j;
    const std::string& prof = world.professors[subject_index];
    const std::string& old_univ = world.universities[subject_index];
    const size_t pick = (subject_index + affiliation_cases + 7) %
                        world.universities.size();
    const std::string& new_univ = world.universities[pick];

    std::vector<std::string> alternatives;
    for (size_t a = 1; a <= options.alternatives_per_case; ++a) {
      const size_t alt = (pick + 5 * a) % world.universities.size();
      const std::string& candidate = world.universities[alt];
      if (candidate != old_univ && candidate != new_univ) {
        alternatives.push_back(candidate);
      }
    }
    cases.push_back(builder.MakeCase(prof, "affiliated_with", new_univ,
                                     old_univ, alternatives, options));
  }

  return builder.Finish(std::move(cases), options);
}

}  // namespace oneedit
