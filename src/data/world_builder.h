#ifndef ONEEDIT_DATA_WORLD_BUILDER_H_
#define ONEEDIT_DATA_WORLD_BUILDER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "kg/knowledge_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace oneedit {

/// Shared machinery for the domain generators: accumulates a ground-truth
/// world (KG + pretraining facts + aliases), then derives a Dataset with
/// per-case probes.
class WorldBuilder {
 public:
  WorldBuilder(std::string dataset_name, uint64_t seed);

  KnowledgeGraph& kg() { return dataset_.kg; }
  Rng& rng() { return rng_; }

  /// Defines a relation (and optionally its inverse) in the KG schema.
  RelationId DefineRelation(const std::string& name,
                            const std::string& inverse = "",
                            bool functional = true);

  /// Registers a composition rule body1 ∘ body2 => head.
  void DefineRule(const std::string& name, const std::string& body1,
                  const std::string& body2, const std::string& head);

  /// Registers `alias` as a surface form of `canonical`.
  void AddAlias(const std::string& alias, const std::string& canonical);

  /// Asserts a ground-truth fact: inserts it into the KG and the pretraining
  /// corpus; if the relation is reversible, the reverse fact is asserted too.
  Status AddFact(const std::string& subject, const std::string& relation,
                 const std::string& object);

  /// Builds an EditCase for the counterfactual (subject, relation, o_new)
  /// replacing ground-truth `o_old`, deriving reverse / one-hop /
  /// sub-replace probes from the KG, rules and aliases. `alternatives` are
  /// further counterfactual objects for multi-user runs.
  EditCase MakeCase(const std::string& subject, const std::string& relation,
                    const std::string& o_new, const std::string& o_old,
                    const std::vector<std::string>& alternatives,
                    const DatasetOptions& options);

  /// Finalizes: computes the locality pool (facts not touched by any case),
  /// attaches locality probes to every case, builds the model vocabulary,
  /// and moves the Dataset out. The builder must not be reused afterwards.
  Dataset Finish(std::vector<EditCase> cases, const DatasetOptions& options);

 private:
  uint64_t ProbeSeed(const std::string& tag);

  Dataset dataset_;
  Rng rng_;
  std::vector<std::string> alias_names_;  // insertion order
  std::unordered_set<std::string> alias_set_;
  uint64_t probe_counter_ = 0;
};

}  // namespace oneedit

#endif  // ONEEDIT_DATA_WORLD_BUILDER_H_
