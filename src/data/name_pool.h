#ifndef ONEEDIT_DATA_NAME_POOL_H_
#define ONEEDIT_DATA_NAME_POOL_H_

#include <cstddef>
#include <string>
#include <vector>

namespace oneedit {

/// Deterministic synthetic name pools for the dataset generators. Index-based
/// so generated worlds are reproducible and names never collide.
namespace names {

/// "Ada Barker", "Hugo Castillo", ... unique for index < FirstNameCount() *
/// LastNameCount() when stepped with a coprime stride (the generators use
/// sequential indices, far below the limit).
std::string Person(size_t index);

/// "Ashfield", "Brookmont", ... synthetic US-style state names.
std::string State(size_t index);

/// "Port Alden", "Fairview", ... city names.
std::string City(size_t index);

/// "Northgate University", ... university names.
std::string University(size_t index);

/// "Unity Party", ... party names.
std::string Party(size_t index);

/// "Quantum Materials", ... research field names.
std::string Field(size_t index);

size_t PersonLimit();
size_t StateLimit();
size_t CityLimit();
size_t UniversityLimit();
size_t PartyLimit();
size_t FieldLimit();

}  // namespace names
}  // namespace oneedit

#endif  // ONEEDIT_DATA_NAME_POOL_H_
