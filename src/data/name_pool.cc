#include "data/name_pool.h"

#include <array>

namespace oneedit {
namespace names {
namespace {

constexpr std::array kFirstNames = {
    "Ada",    "Bruno",  "Clara",  "Dmitri", "Elena",  "Felix",  "Greta",
    "Hugo",   "Iris",   "Jonas",  "Kira",   "Lionel", "Mara",   "Nils",
    "Opal",   "Pavel",  "Quinn",  "Rosa",   "Stefan", "Talia",  "Ulric",
    "Vera",   "Wesley", "Xenia",  "Yusuf",  "Zelda",  "Amos",   "Beata",
    "Cyrus",  "Delia",  "Emil",   "Freya",  "Gideon", "Hana",   "Ivo",
    "Jade",   "Kasper", "Livia",  "Mateo",  "Nadia",
};

constexpr std::array kLastNames = {
    "Barker",   "Castillo", "Dunmore",  "Eastman",  "Fenwick", "Garland",
    "Holloway", "Ibarra",   "Jasper",   "Kendrick", "Lockhart", "Merrick",
    "Norwood",  "Okafor",   "Prescott", "Quimby",   "Radcliffe", "Sandoval",
    "Thackeray", "Underhill", "Vasquez", "Winslow",  "Xiong",   "Yarrow",
    "Zimmer",   "Ashford",  "Bellamy",  "Crowe",    "Drummond", "Ellsworth",
    "Fairbanks", "Goddard", "Hathaway", "Ingram",   "Jellicoe", "Kessler",
    "Lowell",   "Mansfield", "Nightingale", "Oakes",
};

constexpr std::array kStateRoots = {
    "Ashfield",  "Brookmont", "Caldera",   "Dunhaven",  "Elmsworth",
    "Farrowgate", "Glenrock",  "Harborview", "Ironvale",  "Junewood",
    "Kestrel",   "Larkspur",  "Mistral",   "Northmarch", "Ostermere",
    "Pinecrest", "Quarryton", "Ravenhall", "Silverbrook", "Thornbury",
    "Umberfield", "Valewood",  "Westmere",  "Yellowpine", "Zephyrine",
    "Ambergate", "Blackforge", "Cinderholm", "Dovercliff", "Emberlyn",
    "Foxhollow", "Graymoor",  "Hollybrook", "Ivorydale",  "Jadecrest",
    "Kingsreach", "Lunaris",  "Mapleshade", "Nimbuston",  "Oakenfell",
    "Palewater", "Quillshore", "Rustmere",  "Snowhaven",  "Tidegrove",
    "Umbermoor", "Violetfen", "Willowmere", "Yondermoor", "Zincford",
};

constexpr std::array kCityRoots = {
    "Alden",   "Briar",   "Cedar",  "Dray",    "Ember",  "Fern",
    "Gable",   "Hollow",  "Inlet",  "Juniper", "Knoll",  "Linden",
    "Moss",    "Nook",    "Orchard", "Pebble",  "Quay",   "Reed",
    "Sable",   "Thistle", "Umber",  "Vine",    "Wren",   "Yew",
    "Zinnia",  "Aster",   "Birch",  "Clove",   "Dew",    "Elm",
};

constexpr std::array kCitySuffixes = {"ton", "ville", "port", "field", "gate"};

constexpr std::array kUniversityRoots = {
    "Northgate", "Southvale", "Eastbrook", "Westholm",  "Midlands",
    "Lakeshore", "Highland",  "Riverside", "Summit",    "Meadowlark",
    "Stonebridge", "Clearwater", "Ironwood", "Goldcrest", "Bluefern",
    "Redmount",  "Silverpine", "Greenfell", "Whitmore",  "Blackwell",
    "Ambrose",   "Beaufort",  "Carlisle",  "Davenport", "Ellington",
    "Fairmont",  "Grantham",  "Hollis",    "Inverness", "Jefferson",
    "Kingsley",  "Lancaster", "Montrose",  "Newbury",   "Oxley",
    "Pemberton", "Quincy",    "Rutherford", "Sheffield", "Thornton",
};

constexpr std::array kPartyNames = {
    "Unity Party",      "Meridian Alliance", "Concord Coalition",
    "Vanguard League",  "Heritage Union",    "Progress Front",
    "Liberty Assembly", "Commonwealth Bloc",
};

constexpr std::array kFieldNames = {
    "Quantum Materials",     "Computational Linguistics",
    "Marine Biology",        "Plasma Physics",
    "Medieval History",      "Organic Chemistry",
    "Number Theory",         "Cognitive Science",
    "Structural Engineering", "Astrobiology",
    "Microeconomics",        "Paleoclimatology",
    "Neuroimaging",          "Cryptography",
    "Volcanology",           "Ethnomusicology",
};

}  // namespace

std::string Person(size_t index) {
  const size_t first = index % kFirstNames.size();
  const size_t last = (index / kFirstNames.size() + index) % kLastNames.size();
  return std::string(kFirstNames[first]) + " " + kLastNames[last];
}

namespace {

// Appends a tier suffix once a pool wraps, keeping names unique for any index.
std::string Tiered(std::string base, size_t tier) {
  static constexpr std::array kTiers = {"", " Nova", " Prime", " Alta",
                                        " Vista"};
  return base + kTiers[tier % kTiers.size()];
}

}  // namespace

std::string State(size_t index) {
  return Tiered(std::string(kStateRoots[index % kStateRoots.size()]),
                index / kStateRoots.size());
}

std::string City(size_t index) {
  const size_t root = index % kCityRoots.size();
  const size_t suffix = (index / kCityRoots.size()) % kCitySuffixes.size();
  return Tiered(std::string(kCityRoots[root]) + kCitySuffixes[suffix],
                index / (kCityRoots.size() * kCitySuffixes.size()));
}

std::string University(size_t index) {
  return Tiered(std::string(kUniversityRoots[index % kUniversityRoots.size()]),
                index / kUniversityRoots.size()) +
         " University";
}

std::string Party(size_t index) {
  return std::string(kPartyNames[index % kPartyNames.size()]);
}

std::string Field(size_t index) {
  return std::string(kFieldNames[index % kFieldNames.size()]);
}

size_t PersonLimit() { return kFirstNames.size() * kLastNames.size(); }
size_t StateLimit() { return kStateRoots.size(); }
size_t CityLimit() { return kCityRoots.size() * kCitySuffixes.size(); }
size_t UniversityLimit() { return kUniversityRoots.size(); }
size_t PartyLimit() { return kPartyNames.size(); }
size_t FieldLimit() { return kFieldNames.size(); }

}  // namespace names
}  // namespace oneedit
